/**
 * @file
 * Multi-instruction-sequence lifting — the paper's §7 future work
 * made concrete: "In practice, however, emulators may themselves
 * compose individual instructions incorrectly, especially in the case
 * of QEMU, which performs dynamic binary translation for
 * multi-instruction sequences."
 *
 * This example explores instruction *pairs* jointly (flag producer +
 * conditional consumer; stack writer + stack consumer; segment load +
 * access through it), lifts each joint path into a sequence test
 * program, and three-way compares. Joint exploration constrains the
 * *relation* between the instructions (e.g. jz's direction is driven
 * by the preceding subtraction's operands, not by a free ZF bit).
 */
#include <cstdio>

#include "explore/state_explorer.h"
#include "harness/filter.h"
#include "harness/runner.h"
#include "testgen/testgen.h"

using namespace pokeemu;

namespace {

arch::DecodedInsn
decode_insn(std::initializer_list<u8> bytes)
{
    std::vector<u8> buf(bytes);
    buf.resize(arch::kMaxInsnLength, 0);
    arch::DecodedInsn insn;
    if (arch::decode(buf.data(), buf.size(), insn) !=
        arch::DecodeStatus::Ok) {
        std::fprintf(stderr, "bad encoding in example\n");
        std::exit(1);
    }
    return insn;
}

} // namespace

int
main()
{
    symexec::VarPool summary_pool;
    const symexec::Summary summary =
        hifi::summarize_descriptor_load(summary_pool);
    const explore::StateSpec spec(testgen::baseline_cpu_state(),
                                  testgen::baseline_ram_after_init(),
                                  &summary);

    const std::vector<
        std::pair<const char *, std::vector<arch::DecodedInsn>>>
        pairs = {
            {"sub eax,ecx ; jz",
             {decode_insn({0x29, 0xc8}), decode_insn({0x74, 0x10})}},
            {"push eax ; pop ebx",
             {decode_insn({0x50}), decode_insn({0x5b})}},
            {"mov ds,ax ; mov [ebx],cl",
             {decode_insn({0x8e, 0xd8}), decode_insn({0x88, 0x0b})}},
            {"leave ; ret",
             {decode_insn({0xc9}), decode_insn({0xc3})}},
            {"cmpxchg [ebx],ecx ; jz",
             {decode_insn({0x0f, 0xb1, 0x0b}),
              decode_insn({0x74, 0x04})}},
        };

    harness::TestRunner runner;
    for (const auto &[name, insns] : pairs) {
        explore::StateExploreOptions options;
        options.max_paths = 48;
        explore::StateExploreResult explored =
            explore_sequence(insns, spec, &summary, options);

        unsigned generated = 0, lofi_diffs = 0, hifi_diffs = 0,
                 diverged = 0;
        for (const auto &path : explored.paths) {
            if (path.halt_code == hifi::kHaltDiverged)
                ++diverged;
            const testgen::GenResult gen =
                testgen::generate_sequence_test_program(
                    insns, path.assignment, spec, explored.pool);
            if (gen.status != testgen::GenStatus::Ok)
                continue;
            ++generated;
            const harness::ThreeWayResult r =
                runner.run(gen.program.code);
            if (!arch::diff_snapshots(r.lofi.snapshot, r.hw.snapshot)
                     .empty()) {
                ++lofi_diffs;
            }
            if (!arch::diff_snapshots(r.hifi.snapshot, r.hw.snapshot)
                     .empty()) {
                ++hifi_diffs;
            }
        }
        std::printf(
            "%-28s %3llu joint paths (%u branch-diverged), %u tests: "
            "lofi diffs %u, hifi diffs %u%s\n",
            name,
            static_cast<unsigned long long>(explored.stats.paths),
            diverged, generated, lofi_diffs, hifi_diffs,
            explored.stats.complete ? "" : " (capped)");
    }
    std::printf("\n(joint paths couple the instructions: the branch "
                "direction after sub is decided by the operand "
                "relation, the pop reads exactly what the push wrote, "
                "and the store goes through the freshly loaded "
                "descriptor)\n");
    return 0;
}
