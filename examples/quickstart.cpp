/**
 * @file
 * Quickstart: path-exploration lifting end to end for one instruction,
 * reproducing the paper's running example (push %eax, Figure 5).
 *
 *   1. Explore the Hi-Fi emulator's implementation of push %eax over
 *      the symbolic machine state (paper §3.3, Figure 1(2)).
 *   2. Turn each explored path into a test program (Figure 1(3), §4).
 *   3. Run every test on the Hi-Fi emulator, the Lo-Fi emulator, and
 *      the hardware oracle (Figure 1(4), §5).
 *   4. Compare the final states (Figure 1(5), §6).
 */
#include <cstdio>

#include "explore/state_explorer.h"
#include "harness/filter.h"
#include "harness/runner.h"
#include "testgen/testgen.h"

using namespace pokeemu;

int
main()
{
    // The test instruction: push %eax encoded as ff f0, exactly as in
    // the paper's Figure 5.
    u8 bytes[arch::kMaxInsnLength] = {0xff, 0xf0};
    arch::DecodedInsn insn;
    if (arch::decode(bytes, sizeof bytes, insn) !=
        arch::DecodeStatus::Ok) {
        std::fprintf(stderr, "decode failed\n");
        return 1;
    }
    std::printf("test instruction: %s\n\n",
                arch::to_string(insn).c_str());

    // --- Stage 2: machine-state-space exploration. ---
    symexec::VarPool summary_pool;
    const symexec::Summary summary =
        hifi::summarize_descriptor_load(summary_pool);
    std::printf("descriptor-load summary: %llu paths folded "
                "(paper: Bochs' cache update had 23)\n",
                static_cast<unsigned long long>(summary.paths));

    const explore::StateSpec spec(testgen::baseline_cpu_state(),
                                  testgen::baseline_ram_after_init(),
                                  &summary);
    std::printf("\n%s\n", spec.to_string().c_str());

    explore::StateExploreOptions options;
    options.max_paths = 64;
    explore::StateExploreResult explored =
        explore_instruction(insn, spec, &summary, options);
    std::printf("explored %llu paths (complete coverage: %s)\n\n",
                static_cast<unsigned long long>(explored.stats.paths),
                explored.stats.complete ? "yes" : "no");

    // --- Stage 3 + 4 + 5 per path. ---
    harness::TestRunner runner;
    unsigned differences = 0;
    for (std::size_t i = 0; i < explored.paths.size(); ++i) {
        const explore::ExploredPath &path = explored.paths[i];
        testgen::GenResult gen = testgen::generate_test_program(
            insn, path.assignment, spec, explored.pool);
        if (gen.status != testgen::GenStatus::Ok) {
            std::printf("path %zu: generation failed\n", i);
            continue;
        }
        std::printf("--- path %zu (halt 0x%x, %u gadgets) ---\n%s", i,
                    path.halt_code, gen.program.gadget_count,
                    gen.program.to_string().c_str());

        const harness::ThreeWayResult result =
            runner.run(gen.program.code);
        const arch::SnapshotDiff lofi_diff = arch::diff_snapshots(
            result.lofi.snapshot, result.hw.snapshot);
        const arch::SnapshotDiff hifi_diff = arch::diff_snapshots(
            result.hifi.snapshot, result.hw.snapshot);
        std::printf("    hw:   exception=%s\n",
                    result.hw.snapshot.cpu.exception.present()
                        ? std::to_string(
                              result.hw.snapshot.cpu.exception.vector)
                              .c_str()
                        : "none");
        if (lofi_diff.empty() && hifi_diff.empty()) {
            std::printf("    all three backends agree\n\n");
            continue;
        }
        ++differences;
        if (!lofi_diff.empty()) {
            std::printf("    lofi differs from hardware:\n%s",
                        lofi_diff.to_string().c_str());
        }
        if (!hifi_diff.empty()) {
            std::printf("    hifi differs from hardware:\n%s",
                        hifi_diff.to_string().c_str());
        }
        std::printf("\n");
    }
    std::printf("=> %u of %zu tests triggered behaviour differences\n",
                differences, explored.paths.size());
    return 0;
}
