/**
 * @file
 * The paper's headline use case: sweep a set of instructions through
 * the full pipeline, three-way compare, filter undefined behaviour,
 * and print the clustered root causes (paper §6.2). Every root cause
 * printed corresponds to a bug class the paper found in QEMU 0.14.
 *
 * Usage: find_lofi_bugs [max_instructions] [paths_per_insn]
 */
#include <cstdio>
#include <cstdlib>

#include "pokeemu/pipeline.h"

using namespace pokeemu;

int
main(int argc, char **argv)
{
    PipelineOptions options;
    options.max_instructions = argc > 1
        ? static_cast<std::size_t>(std::atoi(argv[1]))
        : 40;
    options.max_paths_per_insn =
        argc > 2 ? static_cast<u64>(std::atoi(argv[2])) : 32;

    std::printf("exploring up to %zu instructions, %llu paths each\n",
                options.max_instructions,
                static_cast<unsigned long long>(
                    options.max_paths_per_insn));

    Pipeline pipeline(options);
    const PipelineStats &stats = pipeline.run();
    std::printf("%s\n", stats.to_string().c_str());

    // Exit nonzero when the seeded bug classes were NOT recovered, so
    // this example doubles as an integration check.
    const auto clusters = stats.lofi_clusters.clusters();
    const bool found_segment_bug = std::any_of(
        clusters.begin(), clusters.end(), [](const auto &c) {
            return c.root_cause ==
                   "segment-limits-and-rights-not-enforced";
        });
    if (!found_segment_bug && stats.tests_executed > 100) {
        std::fprintf(stderr,
                     "expected the segment-check bug cluster!\n");
        return 1;
    }
    return 0;
}
