/**
 * @file
 * Reverse lifting (paper §7, "Symbolic Execution of JIT Compilers"):
 * the paper notes that path-exploration lifting also works in the
 * opposite direction — generate tests from the lower-fidelity artifact
 * and see how the high-fidelity one behaves on the cases the Lo-Fi
 * developers implemented.
 *
 * Here the direction flip is realized at the fidelity-configuration
 * level: we build a Hi-Fi-style exploration of *the Lo-Fi emulator's
 * semantics* (the same IR generator configured with the Lo-Fi fetch
 * order — the Lo-Fi behaviours expressible at exploration level), lift
 * its tests, and use the LO-FI emulator as the reference in the
 * comparison. Differences now read as "where the Hi-Fi emulator
 * departs from the Lo-Fi implementation", the mirror of the main
 * experiment; cross-checking against hardware shows which side is
 * right (paper: "this would produce only a few more differences ...
 * but it is important if there are cases where QEMU implements a check
 * and Bochs fails to").
 */
#include <cstdio>

#include "explore/state_explorer.h"
#include "harness/runner.h"
#include "testgen/testgen.h"

using namespace pokeemu;

int
main()
{
    // Instructions where the two emulators genuinely differ.
    const std::vector<std::vector<u8>> targets = {
        {0x0f, 0xb4, 0x03}, // lfs: fetch-order difference.
        {0xc9},             // leave: atomicity difference.
        {0xcf},             // iret: pop-order difference.
    };

    symexec::VarPool summary_pool;
    const symexec::Summary summary =
        hifi::summarize_descriptor_load(summary_pool);
    const explore::StateSpec spec(testgen::baseline_cpu_state(),
                                  testgen::baseline_ram_after_init(),
                                  &summary);

    harness::TestRunner runner;
    unsigned hifi_departures = 0, hw_agrees_with_lofi = 0,
             hw_agrees_with_hifi = 0;
    u64 tests = 0;

    for (const auto &target : targets) {
        std::vector<u8> buf = target;
        buf.resize(arch::kMaxInsnLength, 0);
        arch::DecodedInsn insn;
        if (arch::decode(buf.data(), buf.size(), insn) !=
            arch::DecodeStatus::Ok) {
            continue;
        }

        // Reverse direction: explore with the LO-FI fetch order, i.e.
        // the exploration artifact now behaves like the Lo-Fi
        // implementation where that is expressible.
        explore::StateExploreOptions options;
        options.max_paths = 48;
        options.hifi_far_fetch_order = false; // Lo-Fi/hardware order.
        explore::StateExploreResult explored =
            explore_instruction(insn, spec, &summary, options);

        for (const explore::ExploredPath &path : explored.paths) {
            testgen::GenResult gen = testgen::generate_test_program(
                insn, path.assignment, spec, explored.pool);
            if (gen.status != testgen::GenStatus::Ok)
                continue;
            ++tests;
            const harness::ThreeWayResult r =
                runner.run(gen.program.code);
            // Lo-Fi as the reference: where does Hi-Fi depart?
            const auto diff = arch::diff_snapshots(r.hifi.snapshot,
                                                   r.lofi.snapshot);
            if (diff.empty())
                continue;
            ++hifi_departures;
            // Arbitration by hardware.
            if (arch::diff_snapshots(r.lofi.snapshot, r.hw.snapshot)
                    .empty()) {
                ++hw_agrees_with_lofi;
            }
            if (arch::diff_snapshots(r.hifi.snapshot, r.hw.snapshot)
                    .empty()) {
                ++hw_agrees_with_hifi;
            }
        }
    }

    std::printf("reverse lifting over %llu tests:\n",
                static_cast<unsigned long long>(tests));
    std::printf("  hifi departs from the lofi reference on %u tests\n",
                hifi_departures);
    std::printf("  of those, hardware sides with lofi on %u and with "
                "hifi on %u\n",
                hw_agrees_with_lofi, hw_agrees_with_hifi);
    std::printf("(the paper expected the converse direction to add "
                "only a few differences; the asymmetric counts above "
                "show most checks live in the Hi-Fi emulator)\n");
    return 0;
}
