/**
 * @file
 * Developer tool: symbolically explore a single instruction and dump
 * every path — its outcome classification, the minimized test state
 * (which bits of the machine state matter and what they must be), and
 * the generated initializer. Give it instruction bytes in hex.
 *
 * Usage: symbolic_explorer [hex bytes...]    (default: 0f b4 03 = lfs)
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "explore/state_explorer.h"
#include "testgen/testgen.h"

using namespace pokeemu;

int
main(int argc, char **argv)
{
    u8 bytes[arch::kMaxInsnLength] = {0x0f, 0xb4, 0x03};
    if (argc > 1) {
        std::memset(bytes, 0, sizeof bytes);
        for (int i = 1; i < argc && i <= 15; ++i)
            bytes[i - 1] = static_cast<u8>(
                std::strtoul(argv[i], nullptr, 16));
    }
    arch::DecodedInsn insn;
    if (arch::decode(bytes, sizeof bytes, insn) !=
        arch::DecodeStatus::Ok) {
        std::fprintf(stderr, "not a valid instruction\n");
        return 1;
    }
    std::printf("instruction: %s\n", arch::to_string(insn).c_str());

    symexec::VarPool summary_pool;
    const symexec::Summary summary =
        hifi::summarize_descriptor_load(summary_pool);
    const explore::StateSpec spec(testgen::baseline_cpu_state(),
                                  testgen::baseline_ram_after_init(),
                                  &summary);

    explore::StateExploreOptions options;
    options.max_paths = 128;
    explore::StateExploreResult result =
        explore_instruction(insn, spec, &summary, options);
    std::printf("%llu paths, complete=%s, %llu solver queries\n\n",
                static_cast<unsigned long long>(result.stats.paths),
                result.stats.complete ? "yes" : "no",
                static_cast<unsigned long long>(
                    result.stats.solver_queries));

    const arch::CpuState &base = spec.baseline_cpu();
    u8 base_image[arch::layout::kCpuStateSize];
    arch::pack_cpu_state(base, base_image);

    for (std::size_t i = 0; i < result.paths.size(); ++i) {
        const explore::ExploredPath &path = result.paths[i];
        std::printf("path %zu: ", i);
        if (path.halt_code == hifi::kHaltOk)
            std::printf("completes normally");
        else if (path.halt_code == hifi::kHaltStop)
            std::printf("halts");
        else
            std::printf("raises exception vector %u",
                        path.halt_code & 0xff);
        std::printf(" (%llu semantic steps)\n",
                    static_cast<unsigned long long>(path.steps));

        // Dump the minimized test state: only bits that differ from
        // the baseline (paper Figure 5(a)).
        for (const auto &var : result.pool.all()) {
            const auto loc = spec.locate(var->name());
            if (!loc)
                continue;
            const u8 value = static_cast<u8>(
                path.assignment.get(var->var_id()) & loc->mask);
            const u8 baseline =
                (loc->kind == explore::VarLocation::Kind::CpuByte
                     ? base_image[loc->addr]
                     : spec.baseline_ram()[loc->addr]) &
                loc->mask;
            if (value != baseline) {
                std::printf("    %-16s : 0x%02x (baseline 0x%02x)\n",
                            var->name().c_str(), value, baseline);
            }
        }
        testgen::GenResult gen = testgen::generate_test_program(
            insn, path.assignment, spec, result.pool);
        if (gen.status == testgen::GenStatus::Ok) {
            std::printf("  initializer (%u gadgets):\n%s",
                        gen.program.gadget_count,
                        gen.program.to_string().c_str());
        }
        std::printf("\n");
    }
    return 0;
}
