/**
 * @file
 * Nightly-regression workflow (paper §6: test execution "is already
 * fast enough to use for nightly regression testing", and §6.2: the
 * generated tests "can be used again in the future to validate the
 * implementation").
 *
 * Usage:
 *   nightly_regression generate <corpus-file> [n_insns] [paths]
 *       Run the expensive exploration once and save the corpus.
 *   nightly_regression check <corpus-file> [--fixed]
 *       Replay the corpus against the emulator build under test
 *       (seeded-bugs build by default; --fixed simulates the patched
 *       emulator and must report zero differences).
 */
#include <cstdio>
#include <cstring>
#include <fstream>

#include "pokeemu/corpus.h"

using namespace pokeemu;

int
main(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: %s generate|check <corpus> [...]\n",
                     argv[0]);
        return 2;
    }
    const std::string mode = argv[1];
    const std::string path = argv[2];

    if (mode == "generate") {
        PipelineOptions options;
        options.max_instructions =
            argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3]))
                     : 60;
        options.max_paths_per_insn =
            argc > 4 ? static_cast<u64>(std::atoi(argv[4])) : 24;
        for (std::size_t i = 0; i < arch::insn_table().size(); ++i)
            options.instruction_filter.push_back(static_cast<int>(i));
        Pipeline pipeline(options);
        pipeline.explore_and_generate();
        std::ofstream out(path);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
            return 1;
        }
        save_corpus(out, pipeline.tests());
        std::printf("saved %zu tests to %s\n",
                    pipeline.tests().size(), path.c_str());
        return 0;
    }

    if (mode == "check") {
        std::ifstream in(path);
        if (!in) {
            std::fprintf(stderr, "cannot read %s\n", path.c_str());
            return 1;
        }
        const auto tests = load_corpus(in);
        const bool fixed =
            argc > 3 && std::strcmp(argv[3], "--fixed") == 0;
        const lofi::BugConfig bugs =
            fixed ? lofi::BugConfig::none() : lofi::BugConfig{};
        const ReplayStats stats = replay_corpus(tests, bugs);
        std::printf("replayed %llu tests against the %s build:\n",
                    static_cast<unsigned long long>(stats.tests),
                    fixed ? "patched" : "buggy");
        std::printf("  lofi differences: %llu\n",
                    static_cast<unsigned long long>(stats.lofi_diffs));
        std::printf("  hifi differences: %llu\n",
                    static_cast<unsigned long long>(stats.hifi_diffs));
        if (stats.lofi_diffs) {
            std::printf("%s",
                        stats.lofi_clusters.to_string().c_str());
        }
        if (fixed && stats.lofi_diffs != 0) {
            std::fprintf(stderr,
                         "regression: the patched build still "
                         "differs!\n");
            return 1;
        }
        return 0;
    }

    std::fprintf(stderr, "unknown mode %s\n", mode.c_str());
    return 2;
}
