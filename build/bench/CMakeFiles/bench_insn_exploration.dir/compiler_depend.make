# Empty compiler generated dependencies file for bench_insn_exploration.
# This may be replaced when dependencies are built.
