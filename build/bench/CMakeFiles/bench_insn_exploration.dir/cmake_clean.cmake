file(REMOVE_RECURSE
  "CMakeFiles/bench_insn_exploration.dir/bench_insn_exploration.cpp.o"
  "CMakeFiles/bench_insn_exploration.dir/bench_insn_exploration.cpp.o.d"
  "bench_insn_exploration"
  "bench_insn_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_insn_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
