file(REMOVE_RECURSE
  "CMakeFiles/bench_differences.dir/bench_differences.cpp.o"
  "CMakeFiles/bench_differences.dir/bench_differences.cpp.o.d"
  "bench_differences"
  "bench_differences.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_differences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
