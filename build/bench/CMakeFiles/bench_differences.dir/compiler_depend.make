# Empty compiler generated dependencies file for bench_differences.
# This may be replaced when dependencies are built.
