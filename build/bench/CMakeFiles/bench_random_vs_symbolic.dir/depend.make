# Empty dependencies file for bench_random_vs_symbolic.
# This may be replaced when dependencies are built.
