file(REMOVE_RECURSE
  "CMakeFiles/bench_random_vs_symbolic.dir/bench_random_vs_symbolic.cpp.o"
  "CMakeFiles/bench_random_vs_symbolic.dir/bench_random_vs_symbolic.cpp.o.d"
  "bench_random_vs_symbolic"
  "bench_random_vs_symbolic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_random_vs_symbolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
