# Empty dependencies file for bench_root_causes.
# This may be replaced when dependencies are built.
