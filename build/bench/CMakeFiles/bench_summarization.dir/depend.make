# Empty dependencies file for bench_summarization.
# This may be replaced when dependencies are built.
