file(REMOVE_RECURSE
  "CMakeFiles/bench_summarization.dir/bench_summarization.cpp.o"
  "CMakeFiles/bench_summarization.dir/bench_summarization.cpp.o.d"
  "bench_summarization"
  "bench_summarization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_summarization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
