
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_arch.cpp" "tests/CMakeFiles/pokeemu_tests.dir/test_arch.cpp.o" "gcc" "tests/CMakeFiles/pokeemu_tests.dir/test_arch.cpp.o.d"
  "/root/repo/tests/test_backends.cpp" "tests/CMakeFiles/pokeemu_tests.dir/test_backends.cpp.o" "gcc" "tests/CMakeFiles/pokeemu_tests.dir/test_backends.cpp.o.d"
  "/root/repo/tests/test_corpus.cpp" "tests/CMakeFiles/pokeemu_tests.dir/test_corpus.cpp.o" "gcc" "tests/CMakeFiles/pokeemu_tests.dir/test_corpus.cpp.o.d"
  "/root/repo/tests/test_equivalence.cpp" "tests/CMakeFiles/pokeemu_tests.dir/test_equivalence.cpp.o" "gcc" "tests/CMakeFiles/pokeemu_tests.dir/test_equivalence.cpp.o.d"
  "/root/repo/tests/test_explore.cpp" "tests/CMakeFiles/pokeemu_tests.dir/test_explore.cpp.o" "gcc" "tests/CMakeFiles/pokeemu_tests.dir/test_explore.cpp.o.d"
  "/root/repo/tests/test_harness.cpp" "tests/CMakeFiles/pokeemu_tests.dir/test_harness.cpp.o" "gcc" "tests/CMakeFiles/pokeemu_tests.dir/test_harness.cpp.o.d"
  "/root/repo/tests/test_hifi_semantics.cpp" "tests/CMakeFiles/pokeemu_tests.dir/test_hifi_semantics.cpp.o" "gcc" "tests/CMakeFiles/pokeemu_tests.dir/test_hifi_semantics.cpp.o.d"
  "/root/repo/tests/test_ir.cpp" "tests/CMakeFiles/pokeemu_tests.dir/test_ir.cpp.o" "gcc" "tests/CMakeFiles/pokeemu_tests.dir/test_ir.cpp.o.d"
  "/root/repo/tests/test_pipeline.cpp" "tests/CMakeFiles/pokeemu_tests.dir/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/pokeemu_tests.dir/test_pipeline.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/pokeemu_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/pokeemu_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_sequence.cpp" "tests/CMakeFiles/pokeemu_tests.dir/test_sequence.cpp.o" "gcc" "tests/CMakeFiles/pokeemu_tests.dir/test_sequence.cpp.o.d"
  "/root/repo/tests/test_solver.cpp" "tests/CMakeFiles/pokeemu_tests.dir/test_solver.cpp.o" "gcc" "tests/CMakeFiles/pokeemu_tests.dir/test_solver.cpp.o.d"
  "/root/repo/tests/test_support.cpp" "tests/CMakeFiles/pokeemu_tests.dir/test_support.cpp.o" "gcc" "tests/CMakeFiles/pokeemu_tests.dir/test_support.cpp.o.d"
  "/root/repo/tests/test_symexec.cpp" "tests/CMakeFiles/pokeemu_tests.dir/test_symexec.cpp.o" "gcc" "tests/CMakeFiles/pokeemu_tests.dir/test_symexec.cpp.o.d"
  "/root/repo/tests/test_testgen.cpp" "tests/CMakeFiles/pokeemu_tests.dir/test_testgen.cpp.o" "gcc" "tests/CMakeFiles/pokeemu_tests.dir/test_testgen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pokeemu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
