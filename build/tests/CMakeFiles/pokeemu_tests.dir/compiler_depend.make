# Empty compiler generated dependencies file for pokeemu_tests.
# This may be replaced when dependencies are built.
