# Empty dependencies file for nightly_regression.
# This may be replaced when dependencies are built.
