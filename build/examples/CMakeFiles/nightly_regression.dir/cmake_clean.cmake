file(REMOVE_RECURSE
  "CMakeFiles/nightly_regression.dir/nightly_regression.cpp.o"
  "CMakeFiles/nightly_regression.dir/nightly_regression.cpp.o.d"
  "nightly_regression"
  "nightly_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nightly_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
