# Empty dependencies file for reverse_lifting.
# This may be replaced when dependencies are built.
