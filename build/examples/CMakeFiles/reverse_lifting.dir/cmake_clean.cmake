file(REMOVE_RECURSE
  "CMakeFiles/reverse_lifting.dir/reverse_lifting.cpp.o"
  "CMakeFiles/reverse_lifting.dir/reverse_lifting.cpp.o.d"
  "reverse_lifting"
  "reverse_lifting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reverse_lifting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
