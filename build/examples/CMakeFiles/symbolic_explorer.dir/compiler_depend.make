# Empty compiler generated dependencies file for symbolic_explorer.
# This may be replaced when dependencies are built.
