file(REMOVE_RECURSE
  "CMakeFiles/symbolic_explorer.dir/symbolic_explorer.cpp.o"
  "CMakeFiles/symbolic_explorer.dir/symbolic_explorer.cpp.o.d"
  "symbolic_explorer"
  "symbolic_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symbolic_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
