# Empty dependencies file for sequence_lifting.
# This may be replaced when dependencies are built.
