file(REMOVE_RECURSE
  "CMakeFiles/sequence_lifting.dir/sequence_lifting.cpp.o"
  "CMakeFiles/sequence_lifting.dir/sequence_lifting.cpp.o.d"
  "sequence_lifting"
  "sequence_lifting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequence_lifting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
