file(REMOVE_RECURSE
  "CMakeFiles/find_lofi_bugs.dir/find_lofi_bugs.cpp.o"
  "CMakeFiles/find_lofi_bugs.dir/find_lofi_bugs.cpp.o.d"
  "find_lofi_bugs"
  "find_lofi_bugs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/find_lofi_bugs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
