# Empty compiler generated dependencies file for find_lofi_bugs.
# This may be replaced when dependencies are built.
