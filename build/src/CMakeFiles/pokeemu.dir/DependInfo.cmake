
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/assembler.cpp" "src/CMakeFiles/pokeemu.dir/arch/assembler.cpp.o" "gcc" "src/CMakeFiles/pokeemu.dir/arch/assembler.cpp.o.d"
  "/root/repo/src/arch/decoder.cpp" "src/CMakeFiles/pokeemu.dir/arch/decoder.cpp.o" "gcc" "src/CMakeFiles/pokeemu.dir/arch/decoder.cpp.o.d"
  "/root/repo/src/arch/descriptors.cpp" "src/CMakeFiles/pokeemu.dir/arch/descriptors.cpp.o" "gcc" "src/CMakeFiles/pokeemu.dir/arch/descriptors.cpp.o.d"
  "/root/repo/src/arch/insn_table.cpp" "src/CMakeFiles/pokeemu.dir/arch/insn_table.cpp.o" "gcc" "src/CMakeFiles/pokeemu.dir/arch/insn_table.cpp.o.d"
  "/root/repo/src/arch/paging.cpp" "src/CMakeFiles/pokeemu.dir/arch/paging.cpp.o" "gcc" "src/CMakeFiles/pokeemu.dir/arch/paging.cpp.o.d"
  "/root/repo/src/arch/snapshot.cpp" "src/CMakeFiles/pokeemu.dir/arch/snapshot.cpp.o" "gcc" "src/CMakeFiles/pokeemu.dir/arch/snapshot.cpp.o.d"
  "/root/repo/src/arch/state.cpp" "src/CMakeFiles/pokeemu.dir/arch/state.cpp.o" "gcc" "src/CMakeFiles/pokeemu.dir/arch/state.cpp.o.d"
  "/root/repo/src/backend/direct_cpu.cpp" "src/CMakeFiles/pokeemu.dir/backend/direct_cpu.cpp.o" "gcc" "src/CMakeFiles/pokeemu.dir/backend/direct_cpu.cpp.o.d"
  "/root/repo/src/backend/direct_ops.cpp" "src/CMakeFiles/pokeemu.dir/backend/direct_ops.cpp.o" "gcc" "src/CMakeFiles/pokeemu.dir/backend/direct_ops.cpp.o.d"
  "/root/repo/src/explore/insn_explorer.cpp" "src/CMakeFiles/pokeemu.dir/explore/insn_explorer.cpp.o" "gcc" "src/CMakeFiles/pokeemu.dir/explore/insn_explorer.cpp.o.d"
  "/root/repo/src/explore/state_explorer.cpp" "src/CMakeFiles/pokeemu.dir/explore/state_explorer.cpp.o" "gcc" "src/CMakeFiles/pokeemu.dir/explore/state_explorer.cpp.o.d"
  "/root/repo/src/explore/state_spec.cpp" "src/CMakeFiles/pokeemu.dir/explore/state_spec.cpp.o" "gcc" "src/CMakeFiles/pokeemu.dir/explore/state_spec.cpp.o.d"
  "/root/repo/src/harness/cluster.cpp" "src/CMakeFiles/pokeemu.dir/harness/cluster.cpp.o" "gcc" "src/CMakeFiles/pokeemu.dir/harness/cluster.cpp.o.d"
  "/root/repo/src/harness/filter.cpp" "src/CMakeFiles/pokeemu.dir/harness/filter.cpp.o" "gcc" "src/CMakeFiles/pokeemu.dir/harness/filter.cpp.o.d"
  "/root/repo/src/harness/runner.cpp" "src/CMakeFiles/pokeemu.dir/harness/runner.cpp.o" "gcc" "src/CMakeFiles/pokeemu.dir/harness/runner.cpp.o.d"
  "/root/repo/src/hifi/decoder_ir.cpp" "src/CMakeFiles/pokeemu.dir/hifi/decoder_ir.cpp.o" "gcc" "src/CMakeFiles/pokeemu.dir/hifi/decoder_ir.cpp.o.d"
  "/root/repo/src/hifi/hifi_emulator.cpp" "src/CMakeFiles/pokeemu.dir/hifi/hifi_emulator.cpp.o" "gcc" "src/CMakeFiles/pokeemu.dir/hifi/hifi_emulator.cpp.o.d"
  "/root/repo/src/hifi/semantics_core.cpp" "src/CMakeFiles/pokeemu.dir/hifi/semantics_core.cpp.o" "gcc" "src/CMakeFiles/pokeemu.dir/hifi/semantics_core.cpp.o.d"
  "/root/repo/src/hifi/semantics_ops.cpp" "src/CMakeFiles/pokeemu.dir/hifi/semantics_ops.cpp.o" "gcc" "src/CMakeFiles/pokeemu.dir/hifi/semantics_ops.cpp.o.d"
  "/root/repo/src/hifi/semantics_ops2.cpp" "src/CMakeFiles/pokeemu.dir/hifi/semantics_ops2.cpp.o" "gcc" "src/CMakeFiles/pokeemu.dir/hifi/semantics_ops2.cpp.o.d"
  "/root/repo/src/hifi/sequence.cpp" "src/CMakeFiles/pokeemu.dir/hifi/sequence.cpp.o" "gcc" "src/CMakeFiles/pokeemu.dir/hifi/sequence.cpp.o.d"
  "/root/repo/src/hw/vmm.cpp" "src/CMakeFiles/pokeemu.dir/hw/vmm.cpp.o" "gcc" "src/CMakeFiles/pokeemu.dir/hw/vmm.cpp.o.d"
  "/root/repo/src/ir/builder.cpp" "src/CMakeFiles/pokeemu.dir/ir/builder.cpp.o" "gcc" "src/CMakeFiles/pokeemu.dir/ir/builder.cpp.o.d"
  "/root/repo/src/ir/eval.cpp" "src/CMakeFiles/pokeemu.dir/ir/eval.cpp.o" "gcc" "src/CMakeFiles/pokeemu.dir/ir/eval.cpp.o.d"
  "/root/repo/src/ir/expr.cpp" "src/CMakeFiles/pokeemu.dir/ir/expr.cpp.o" "gcc" "src/CMakeFiles/pokeemu.dir/ir/expr.cpp.o.d"
  "/root/repo/src/ir/printer.cpp" "src/CMakeFiles/pokeemu.dir/ir/printer.cpp.o" "gcc" "src/CMakeFiles/pokeemu.dir/ir/printer.cpp.o.d"
  "/root/repo/src/ir/stmt.cpp" "src/CMakeFiles/pokeemu.dir/ir/stmt.cpp.o" "gcc" "src/CMakeFiles/pokeemu.dir/ir/stmt.cpp.o.d"
  "/root/repo/src/lofi/lofi_emulator.cpp" "src/CMakeFiles/pokeemu.dir/lofi/lofi_emulator.cpp.o" "gcc" "src/CMakeFiles/pokeemu.dir/lofi/lofi_emulator.cpp.o.d"
  "/root/repo/src/pokeemu/corpus.cpp" "src/CMakeFiles/pokeemu.dir/pokeemu/corpus.cpp.o" "gcc" "src/CMakeFiles/pokeemu.dir/pokeemu/corpus.cpp.o.d"
  "/root/repo/src/pokeemu/pipeline.cpp" "src/CMakeFiles/pokeemu.dir/pokeemu/pipeline.cpp.o" "gcc" "src/CMakeFiles/pokeemu.dir/pokeemu/pipeline.cpp.o.d"
  "/root/repo/src/pokeemu/random_tester.cpp" "src/CMakeFiles/pokeemu.dir/pokeemu/random_tester.cpp.o" "gcc" "src/CMakeFiles/pokeemu.dir/pokeemu/random_tester.cpp.o.d"
  "/root/repo/src/solver/bitblast.cpp" "src/CMakeFiles/pokeemu.dir/solver/bitblast.cpp.o" "gcc" "src/CMakeFiles/pokeemu.dir/solver/bitblast.cpp.o.d"
  "/root/repo/src/solver/sat.cpp" "src/CMakeFiles/pokeemu.dir/solver/sat.cpp.o" "gcc" "src/CMakeFiles/pokeemu.dir/solver/sat.cpp.o.d"
  "/root/repo/src/solver/solver.cpp" "src/CMakeFiles/pokeemu.dir/solver/solver.cpp.o" "gcc" "src/CMakeFiles/pokeemu.dir/solver/solver.cpp.o.d"
  "/root/repo/src/support/logging.cpp" "src/CMakeFiles/pokeemu.dir/support/logging.cpp.o" "gcc" "src/CMakeFiles/pokeemu.dir/support/logging.cpp.o.d"
  "/root/repo/src/support/rng.cpp" "src/CMakeFiles/pokeemu.dir/support/rng.cpp.o" "gcc" "src/CMakeFiles/pokeemu.dir/support/rng.cpp.o.d"
  "/root/repo/src/symexec/decision_tree.cpp" "src/CMakeFiles/pokeemu.dir/symexec/decision_tree.cpp.o" "gcc" "src/CMakeFiles/pokeemu.dir/symexec/decision_tree.cpp.o.d"
  "/root/repo/src/symexec/equivalence.cpp" "src/CMakeFiles/pokeemu.dir/symexec/equivalence.cpp.o" "gcc" "src/CMakeFiles/pokeemu.dir/symexec/equivalence.cpp.o.d"
  "/root/repo/src/symexec/explorer.cpp" "src/CMakeFiles/pokeemu.dir/symexec/explorer.cpp.o" "gcc" "src/CMakeFiles/pokeemu.dir/symexec/explorer.cpp.o.d"
  "/root/repo/src/symexec/memory.cpp" "src/CMakeFiles/pokeemu.dir/symexec/memory.cpp.o" "gcc" "src/CMakeFiles/pokeemu.dir/symexec/memory.cpp.o.d"
  "/root/repo/src/symexec/minimize.cpp" "src/CMakeFiles/pokeemu.dir/symexec/minimize.cpp.o" "gcc" "src/CMakeFiles/pokeemu.dir/symexec/minimize.cpp.o.d"
  "/root/repo/src/symexec/summarize.cpp" "src/CMakeFiles/pokeemu.dir/symexec/summarize.cpp.o" "gcc" "src/CMakeFiles/pokeemu.dir/symexec/summarize.cpp.o.d"
  "/root/repo/src/testgen/baseline.cpp" "src/CMakeFiles/pokeemu.dir/testgen/baseline.cpp.o" "gcc" "src/CMakeFiles/pokeemu.dir/testgen/baseline.cpp.o.d"
  "/root/repo/src/testgen/testgen.cpp" "src/CMakeFiles/pokeemu.dir/testgen/testgen.cpp.o" "gcc" "src/CMakeFiles/pokeemu.dir/testgen/testgen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
