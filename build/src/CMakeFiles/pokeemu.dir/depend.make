# Empty dependencies file for pokeemu.
# This may be replaced when dependencies are built.
