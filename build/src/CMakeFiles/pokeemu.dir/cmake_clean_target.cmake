file(REMOVE_RECURSE
  "libpokeemu.a"
)
