/**
 * @file
 * Shared helpers for the experiment benches: scale knobs via the
 * environment and the standard paper-vs-measured table header.
 *
 * Scale note (see EXPERIMENTS.md): the paper ran 880 instructions x up
 * to 8192 paths on EC2 (~545 CPU-hours of generation). These benches
 * default to the full VX86 instruction table with a smaller path cap
 * so the whole suite finishes in minutes; POKEEMU_PATHS / POKEEMU_INSNS
 * scale it up.
 */
#ifndef POKEEMU_BENCH_COMMON_H
#define POKEEMU_BENCH_COMMON_H

#include <cstdio>
#include <cstdlib>
#include <string>

#include "pokeemu/pipeline.h"

namespace pokeemu::bench {

inline u64
env_u64(const char *name, u64 fallback)
{
    const char *value = std::getenv(name);
    return value ? std::strtoull(value, nullptr, 10) : fallback;
}

/** Pipeline options for a full-table sweep at bench scale. */
inline PipelineOptions
sweep_options()
{
    PipelineOptions options;
    options.max_paths_per_insn = env_u64("POKEEMU_PATHS", 48);
    // The sweep selects every table row directly (canonical
    // encodings); bench_insn_exploration reproduces stage 1 itself.
    for (std::size_t i = 0; i < arch::insn_table().size(); ++i)
        options.instruction_filter.push_back(static_cast<int>(i));
    const u64 max_insns = env_u64("POKEEMU_INSNS", 0);
    if (max_insns)
        options.max_instructions = max_insns;
    return options;
}

/** Run (and memoize per process) the standard sweep. */
inline Pipeline &
sweep_pipeline()
{
    static Pipeline *instance = [] {
        auto *p = new Pipeline(sweep_options());
        p->run();
        return p;
    }();
    return *instance;
}

inline void
header(const char *experiment, const char *paper_artifact)
{
    std::printf("==================================================\n");
    std::printf("%s — reproduces %s\n", experiment, paper_artifact);
    std::printf("==================================================\n");
}

} // namespace pokeemu::bench

#endif // POKEEMU_BENCH_COMMON_H
