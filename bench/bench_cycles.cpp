/**
 * @file
 * Experiment E15 (cycle-fidelity model, DESIGN.md §16): what does
 * cycle accounting cost on the Hi-Fi replay hot path? Emits
 * BENCH_cycles.json.
 *
 * The cost model is a static per-(row, operand form) table lookup
 * plus an add per retirement, so enabling it must be nearly free —
 * the gate holds the measured overhead at or under 5% for both
 * dispatch modes (interpreted and compiled), measured as the ratio of
 * best-of-N wall times over the same generated test set. Two
 * correctness properties ride along: with timing on, interpreted and
 * compiled dispatch must report the same nonzero cycle total (the
 * model is dispatch-invariant), and with timing off every snapshot
 * must carry zero cycles.
 *
 * Scale knobs: POKEEMU_PATHS (test-set size), POKEEMU_REPS
 * (repetitions per configuration; best-of is reported).
 */
#include <algorithm>
#include <chrono>
#include <cstring>
#include <vector>

#include "bench_common.h"
#include "harness/runner.h"
#include "hifi/compiled.h"

using namespace pokeemu;

namespace {

double
seconds_since(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

int
index_of(std::initializer_list<u8> bytes)
{
    std::vector<u8> buf(bytes);
    buf.resize(arch::kMaxInsnLength, 0);
    arch::DecodedInsn insn;
    if (arch::decode(buf.data(), buf.size(), insn) !=
        arch::DecodeStatus::Ok) {
        return -1;
    }
    return insn.table_index;
}

struct Measurement
{
    double best_seconds = 0;
    u64 cycles = 0; ///< Summed over all runs of one repetition.
};

/** Best-of-@p reps wall time for the whole test set on one backend. */
Measurement
measure(harness::TestRunner &runner, harness::Backend backend,
        const std::vector<testgen::TestProgram> &programs, u64 reps)
{
    Measurement m;
    harness::BackendRun run;
    for (u64 r = 0; r < reps; ++r) {
        u64 cycles = 0;
        const auto t0 = std::chrono::steady_clock::now();
        for (const testgen::TestProgram &program : programs) {
            runner.run_one_into(backend, program.code, run);
            cycles += run.snapshot.cycles;
        }
        const double t = seconds_since(t0);
        if (r == 0 || t < m.best_seconds)
            m.best_seconds = t;
        m.cycles = cycles;
    }
    return m;
}

double
overhead(const Measurement &off, const Measurement &on)
{
    if (off.best_seconds <= 0)
        return 0.0;
    return std::max(0.0, on.best_seconds / off.best_seconds - 1.0);
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }

    bench::header("E15: cycle-accounting overhead",
                  "DESIGN.md §16 (timing-fidelity observable)");

    // The generated test set: the standard small-workload filter.
    PipelineOptions options;
    options.instruction_filter = {
        index_of({0x50}),       // push eax
        index_of({0xc9}),       // leave
        index_of({0x74, 0x00}), // jz
        index_of({0xd3, 0xe0}), // shl eax, cl
        index_of({0x01, 0x08}), // add [eax], ecx
    };
    options.max_paths_per_insn =
        bench::env_u64("POKEEMU_PATHS", smoke ? 8 : 24);
    Pipeline pipeline(options);
    pipeline.explore_and_generate();
    std::vector<testgen::TestProgram> programs;
    for (const GeneratedTest &test : pipeline.tests())
        programs.push_back(test.program);
    const u64 reps = bench::env_u64("POKEEMU_REPS", smoke ? 5 : 9);

    // Four Hi-Fi configurations: {interpreted, compiled} x {off, on},
    // plus the Lo-Fi (DirectCpu) pair for the report.
    struct Config
    {
        const char *name;
        hifi::CompiledExec compiled;
        bool timing;
        harness::Backend backend;
    };
    const Config configs[] = {
        {"interp_off", hifi::CompiledExec::Off, false,
         harness::Backend::HiFi},
        {"interp_on", hifi::CompiledExec::Off, true,
         harness::Backend::HiFi},
        {"compiled_off", hifi::CompiledExec::On, false,
         harness::Backend::HiFi},
        {"compiled_on", hifi::CompiledExec::On, true,
         harness::Backend::HiFi},
        {"lofi_off", hifi::CompiledExec::Off, false,
         harness::Backend::LoFi},
        {"lofi_on", hifi::CompiledExec::Off, true,
         harness::Backend::LoFi},
    };
    Measurement results[6];
    for (int c = 0; c < 6; ++c) {
        harness::TestRunner::Config cfg;
        cfg.hifi_options.compiled = configs[c].compiled;
        cfg.timing = configs[c].timing;
        harness::TestRunner runner(cfg);
        results[c] =
            measure(runner, configs[c].backend, programs, reps);
    }

    const double interp_overhead = overhead(results[0], results[1]);
    const double compiled_overhead = overhead(results[2], results[3]);
    const double lofi_overhead = overhead(results[4], results[5]);
    constexpr double kOverheadCap = 0.05;

    // Correctness ride-alongs.
    const bool off_charges_nothing =
        results[0].cycles == 0 && results[2].cycles == 0 &&
        results[4].cycles == 0;
    const bool dispatch_invariant =
        results[1].cycles > 0 && results[1].cycles == results[3].cycles;

    std::printf("test set: %zu programs, best of %llu reps\n",
                programs.size(),
                static_cast<unsigned long long>(reps));
    for (int c = 0; c < 6; ++c) {
        std::printf("  %-12s %.4fs  %llu cycles\n", configs[c].name,
                    results[c].best_seconds,
                    static_cast<unsigned long long>(results[c].cycles));
    }
    std::printf(
        "overhead: interpreted %.2f%%, compiled %.2f%%, lofi %.2f%% "
        "(cap %.0f%%)\n",
        interp_overhead * 100, compiled_overhead * 100,
        lofi_overhead * 100, kOverheadCap * 100);
    std::printf("timing-off charges nothing: %s\n",
                off_charges_nothing ? "PASS" : "FAIL");
    std::printf("dispatch-invariant totals: %s\n",
                dispatch_invariant ? "PASS" : "FAIL");

    const bool ok = interp_overhead <= kOverheadCap &&
        compiled_overhead <= kOverheadCap && off_charges_nothing &&
        dispatch_invariant;

    {
        std::FILE *out = std::fopen("BENCH_cycles.json", "w");
        if (out == nullptr) {
            std::fprintf(stderr, "cannot write BENCH_cycles.json\n");
            return 1;
        }
        std::fprintf(out, "{\n  \"bench\": \"cycles\",\n");
        std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
        std::fprintf(out, "  \"tests\": %zu,\n", programs.size());
        std::fprintf(out, "  \"reps\": %llu,\n",
                     static_cast<unsigned long long>(reps));
        for (int c = 0; c < 6; ++c) {
            std::fprintf(out, "  \"seconds_%s\": %.6f,\n",
                         configs[c].name, results[c].best_seconds);
        }
        std::fprintf(out, "  \"cycles_total\": %llu,\n",
                     static_cast<unsigned long long>(results[1].cycles));
        std::fprintf(out, "  \"overhead_interpreted\": %.4f,\n",
                     interp_overhead);
        std::fprintf(out, "  \"overhead_compiled\": %.4f,\n",
                     compiled_overhead);
        std::fprintf(out, "  \"overhead_lofi\": %.4f,\n",
                     lofi_overhead);
        std::fprintf(out, "  \"overhead_cap\": %.2f,\n", kOverheadCap);
        std::fprintf(out, "  \"off_charges_nothing\": %s,\n",
                     off_charges_nothing ? "true" : "false");
        std::fprintf(out, "  \"dispatch_invariant\": %s,\n",
                     dispatch_invariant ? "true" : "false");
        std::fprintf(out, "  \"ok\": %s\n}\n", ok ? "true" : "false");
        std::fclose(out);
    }
    std::printf("wrote BENCH_cycles.json\n");
    return ok ? 0 : 1;
}
