/**
 * @file
 * Path-cover scheduling bench: explore the capped multi-path workload
 * under PathCoverFirst (minimal-path-cover guided, PR 10) vs
 * UncoveredEdgeFirst (the PR 4 frontier scheduler) at the same path
 * cap and compare the block/edge coverage the surviving paths achieve,
 * emitting BENCH_pathcover.json.
 *
 * This gates the tentpole claim: the static path-cover scaffold must
 * buy at least as much IR coverage as the frontier heuristic for the
 * same budget (and the exit status enforces blocks + edges >=, so the
 * ctest smoke run catches regressions where the chain scores steer
 * exploration *away* from new structure).
 *
 * Scale knobs: POKEEMU_INSNS (workload size, default 12) and
 * POKEEMU_PATHS (per-instruction cap, default 6; low on purpose —
 * the cap must truncate for scheduling to matter).
 */
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "explore/state_explorer.h"
#include "testgen/baseline.h"

using namespace pokeemu;

namespace {

/** The multi-path families (shared with bench_coverage): iret, string
 *  moves, far-pointer loads, stack ops, shifts — instructions whose
 *  path trees overflow a small cap. */
constexpr int kWorkload[] = {
    274, // iret: deepest path tree in the table
    201, // movsd
    266, // les
    80,  // push r
    181, // pop r/m
    206, // stosb
    267, // lds
    340, // lss
    245, // shl r/m,cl
    81,  // push r
    341, // lfs
    342, // lgs
};

struct Row
{
    const char *schedule = "";
    u64 covered_blocks = 0;
    u64 total_blocks = 0;
    u64 covered_edges = 0;
    u64 total_edges = 0;
    u64 paths = 0;
    u64 truncated = 0;
    double wall_seconds = 0;
};

Row
sweep(coverage::SchedulePolicy schedule, const explore::StateSpec &spec,
      const symexec::Summary &summary, std::size_t insns, u64 cap)
{
    Row row;
    row.schedule = coverage::schedule_policy_name(schedule);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < insns; ++i) {
        const std::vector<u8> bytes =
            arch::canonical_encoding(kWorkload[i]);
        arch::DecodedInsn insn;
        if (arch::decode(bytes.data(), bytes.size(), insn) !=
            arch::DecodeStatus::Ok) {
            continue;
        }
        explore::StateExploreOptions options;
        options.max_paths = cap;
        options.schedule = schedule;
        options.minimize = false;
        const explore::StateExploreResult result =
            explore_instruction(insn, spec, &summary, options);
        row.covered_blocks += result.stats.covered_blocks;
        row.total_blocks += result.stats.total_blocks;
        row.covered_edges += result.stats.covered_edges;
        row.total_edges += result.stats.total_edges;
        row.paths += result.stats.paths;
        row.truncated += result.stats.truncation !=
            coverage::TruncationReason::None;
    }
    row.wall_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--smoke")
            smoke = true;
    }

    bench::header("bench_pathcover",
                  "coverage at a path cap: path-cover vs frontier "
                  "scheduling");
    const std::size_t insns = static_cast<std::size_t>(std::min<u64>(
        bench::env_u64("POKEEMU_INSNS", smoke ? 8 : 12),
        std::size(kWorkload)));
    const u64 cap = bench::env_u64("POKEEMU_PATHS", 6);
    std::printf("workload: %zu instructions, %llu paths/insn cap\n",
                insns, static_cast<unsigned long long>(cap));

    symexec::VarPool summary_pool;
    const symexec::Summary summary =
        hifi::summarize_descriptor_load(summary_pool);
    const explore::StateSpec spec(testgen::baseline_cpu_state(),
                                  testgen::baseline_ram_after_init(),
                                  &summary);

    const Row pathcover =
        sweep(coverage::SchedulePolicy::PathCoverFirst, spec, summary,
              insns, cap);
    const Row frontier =
        sweep(coverage::SchedulePolicy::UncoveredEdgeFirst, spec,
              summary, insns, cap);

    std::printf("schedule   blocks        edges         paths  "
                "truncated  wall(s)\n");
    for (const Row *row : {&pathcover, &frontier}) {
        std::printf("%-9s  %5llu/%-5llu  %5llu/%-5llu  %5llu  %9llu  "
                    "%7.3f\n",
                    row->schedule,
                    static_cast<unsigned long long>(row->covered_blocks),
                    static_cast<unsigned long long>(row->total_blocks),
                    static_cast<unsigned long long>(row->covered_edges),
                    static_cast<unsigned long long>(row->total_edges),
                    static_cast<unsigned long long>(row->paths),
                    static_cast<unsigned long long>(row->truncated),
                    row->wall_seconds);
    }
    const u64 pathcover_total =
        pathcover.covered_blocks + pathcover.covered_edges;
    const u64 frontier_total =
        frontier.covered_blocks + frontier.covered_edges;
    const bool pathcover_wins = pathcover_total >= frontier_total;
    std::printf("path-cover coverage gain at the cap: %+lld blocks, "
                "%+lld edges (%s)\n",
                static_cast<long long>(pathcover.covered_blocks) -
                    static_cast<long long>(frontier.covered_blocks),
                static_cast<long long>(pathcover.covered_edges) -
                    static_cast<long long>(frontier.covered_edges),
                pathcover_total > frontier_total ? "strictly higher"
                : pathcover_wins                 ? "equal"
                                                 : "LOWER");

    {
        std::FILE *out = std::fopen("BENCH_pathcover.json", "w");
        if (out == nullptr) {
            std::fprintf(stderr, "cannot write BENCH_pathcover.json\n");
            return 1;
        }
        std::fprintf(out, "{\n  \"bench\": \"pathcover\",\n");
        std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
        std::fprintf(out, "  \"instructions\": %zu,\n", insns);
        std::fprintf(out, "  \"path_cap\": %llu,\n",
                     static_cast<unsigned long long>(cap));
        std::fprintf(out, "  \"pathcover_at_least_frontier\": %s,\n",
                     pathcover_wins ? "true" : "false");
        std::fprintf(out, "  \"runs\": [\n");
        const Row *rows[] = {&pathcover, &frontier};
        for (std::size_t i = 0; i < 2; ++i) {
            const Row *row = rows[i];
            std::fprintf(
                out,
                "    {\"schedule\": \"%s\", "
                "\"covered_blocks\": %llu, \"total_blocks\": %llu, "
                "\"covered_edges\": %llu, \"total_edges\": %llu, "
                "\"paths\": %llu, \"truncated\": %llu, "
                "\"wall_seconds\": %.6f}%s\n",
                row->schedule,
                static_cast<unsigned long long>(row->covered_blocks),
                static_cast<unsigned long long>(row->total_blocks),
                static_cast<unsigned long long>(row->covered_edges),
                static_cast<unsigned long long>(row->total_edges),
                static_cast<unsigned long long>(row->paths),
                static_cast<unsigned long long>(row->truncated),
                row->wall_seconds, i == 0 ? "," : "");
        }
        std::fprintf(out, "  ]\n}\n");
        std::fclose(out);
    }
    std::printf("wrote BENCH_pathcover.json\n");
    return pathcover_wins ? 0 : 1;
}
