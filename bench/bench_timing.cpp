/**
 * @file
 * Experiment E6 (paper §6 cost accounting): wall time per pipeline
 * stage and per backend. The paper reports 545.4 CPU-hours for test
 * generation, 198.7/391.9/48.5 CPU-hours for execution on QEMU, Bochs
 * and hardware, and 175.9 CPU-hours for comparison (~$235 of 2011 EC2
 * time). Absolute numbers scale with the substrate; the shapes to
 * check are:
 *   - generation (symbolic exploration) dominates execution;
 *   - the interpreter-style Hi-Fi backend is the slowest executor and
 *     the hardware oracle the fastest (paper: Bochs 391.9h > QEMU
 *     198.7h > hardware 48.5h);
 *   - comparison is cheaper than execution.
 */
#include "bench_common.h"

using namespace pokeemu;

int
main()
{
    bench::header("E6: cost accounting", "paper §6 CPU-hour table");

    Pipeline &pipeline = bench::sweep_pipeline();
    const PipelineStats &s = pipeline.stats();

    const double generation =
        s.t_state_exploration + s.t_generation;
    std::printf("stage                    paper (CPU-h)  this repro (s)\n");
    std::printf("test generation          545.4          %.2f\n",
                generation);
    std::printf("execution on lo-fi       198.7 (QEMU)   %.2f\n",
                s.t_execution_lofi);
    std::printf("execution on hi-fi       391.9 (Bochs)  %.2f\n",
                s.t_execution_hifi);
    std::printf("execution on hardware    48.5 (KVM)     %.2f\n",
                s.t_execution_hw);
    std::printf("results comparison       175.9          %.2f\n",
                s.t_comparison);
    std::printf("tests                    610,516        %llu\n",
                static_cast<unsigned long long>(s.tests_executed));
    std::printf("per-test execution cost: hifi %.2fms, lofi %.2fms, "
                "hw %.2fms\n",
                1e3 * s.t_execution_hifi / s.tests_executed,
                1e3 * s.t_execution_lofi / s.tests_executed,
                1e3 * s.t_execution_hw / s.tests_executed);

    const bool gen_dominates = generation > s.t_execution_lofi;
    const bool hifi_slowest =
        s.t_execution_hifi > s.t_execution_lofi &&
        s.t_execution_hifi > s.t_execution_hw;
    // The hardware oracle and the Lo-Fi emulator share the direct
    // execution core (DESIGN.md §2), so "hardware is fastest" can only
    // be checked up to noise: the real 4x KVM-vs-QEMU gap came from
    // native execution, which a software oracle cannot reproduce.
    const bool hw_fastest =
        s.t_execution_hw <= s.t_execution_lofi * 1.15;
    std::printf("\nshape checks:\n");
    std::printf("  hi-fi (interpreter) slowest executor: %s\n",
                hifi_slowest ? "PASS" : "FAIL");
    std::printf("  hardware oracle not slower than lo-fi (see "
                "comment): %s\n",
                hw_fastest ? "PASS" : "FAIL");
    // Informational: the paper's generation/execution ratio needs the
    // full 8192-path cap to reproduce (documented in EXPERIMENTS.md);
    // with the scaled-down default, execution dominates instead.
    std::printf("  generation dominates execution (only at paper "
                "scale): %s\n",
                gen_dominates ? "yes" : "no (expected at bench scale)");
    return (hifi_slowest && hw_fastest) ? 0 : 1;
}
