/**
 * @file
 * Experiment E6 (paper §6 cost accounting) plus E14 (compiled
 * semantics): wall time per pipeline stage and per backend, and the
 * interpreter-vs-compiled concrete-replay speedup. Emits
 * BENCH_timing.json.
 *
 * The paper reports 545.4 CPU-hours for test generation,
 * 198.7/391.9/48.5 CPU-hours for execution on QEMU, Bochs and
 * hardware, and 175.9 CPU-hours for comparison (~$235 of 2011 EC2
 * time). Absolute numbers scale with the substrate; the shapes to
 * check are:
 *   - generation (symbolic exploration) dominates execution;
 *   - the interpreter-style Hi-Fi backend is the slowest executor and
 *     the hardware oracle the fastest (paper: Bochs 391.9h > QEMU
 *     198.7h > hardware 48.5h);
 *   - comparison is cheaper than execution.
 *
 * The compiled-replay measurements (hifi/compiled.h):
 *   - microbench: every compiled unit's program replayed from many
 *     initial states, IR interpreter vs generated native handler,
 *     over identical flat-array worlds — the concrete-replay hot path
 *     in isolation (floor 5x, target 10x);
 *   - end to end: the Hi-Fi backend re-executing a generated test set
 *     with CompiledExec Off vs On (fetch/decode/dispatch included).
 *
 * The smoke ctest run gates the contract: the compiled path must be
 * at least as fast as the interpreter on the microbench, and both
 * worlds must remain byte-identical after the full sweep.
 *
 * Scale knobs: POKEEMU_STATES (microbench replay rounds),
 * POKEEMU_PATHS / POKEEMU_INSNS (full-mode E6 sweep).
 */
#include <chrono>
#include <cstring>
#include <vector>

#include "bench_common.h"
#include "harness/runner.h"
#include "hifi/compiled.h"

using namespace pokeemu;
namespace layout = arch::layout;

namespace {

double
seconds_since(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/**
 * Flat-array IR address space mirroring HiFiEmulator's backing store
 * (CPU state image, scratch, wrapped guest physical RAM), seeded with
 * a deterministic byte pattern. Unlike hifi::ReplayMemory (a sparse
 * overlay for differential testing) this measures the memory cost the
 * real emulator pays. Two instances fed identical run sequences stay
 * byte-identical iff handlers match the interpreter, so the sweep
 * doubles as an end-of-run divergence check.
 */
class FlatMemory final : public ir::ConcreteMemory
{
  public:
    FlatMemory()
        : state_(layout::kCpuStateSize), scratch_(0x100),
          ram_(arch::kPhysMemSize)
    {
        fill(state_, 1);
        fill(scratch_, 2);
        fill(ram_, 3);
    }

    u64 load(u32 addr, unsigned size) override
    {
        u64 v = 0;
        for (unsigned i = 0; i < size; ++i)
            v |= static_cast<u64>(*at(addr + i)) << (8 * i);
        return v;
    }

    void store(u32 addr, unsigned size, u64 value) override
    {
        for (unsigned i = 0; i < size; ++i)
            *at(addr + i) = static_cast<u8>(value >> (8 * i));
    }

    bool operator==(const FlatMemory &o) const
    {
        return state_ == o.state_ && scratch_ == o.scratch_ &&
            ram_ == o.ram_;
    }

  private:
    static void fill(std::vector<u8> &v, u64 salt)
    {
        for (std::size_t i = 0; i < v.size(); ++i) {
            u64 z = salt + 0x9e3779b97f4a7c15ull * (i + 1);
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            v[i] = static_cast<u8>(z ^ (z >> 31));
        }
    }

    u8 *at(u32 a)
    {
        if (a >= layout::kGuestPhysBase) {
            return &ram_[(a - layout::kGuestPhysBase) &
                         (arch::kPhysMemSize - 1)];
        }
        if (a >= layout::kInsnBufBase &&
            a < layout::kInsnBufBase + 0x100) {
            return &scratch_[a - layout::kInsnBufBase];
        }
        if (a >= layout::kCpuBase &&
            a < layout::kCpuBase + layout::kCpuStateSize) {
            return &state_[a - layout::kCpuBase];
        }
        return &sink_; // Out-of-region addresses are unreachable from
                       // generated programs; absorb defensively.
    }

    std::vector<u8> state_, scratch_, ram_;
    u8 sink_ = 0;
};

int
index_of(std::initializer_list<u8> bytes)
{
    std::vector<u8> buf(bytes);
    buf.resize(arch::kMaxInsnLength, 0);
    arch::DecodedInsn insn;
    if (arch::decode(buf.data(), buf.size(), insn) !=
        arch::DecodeStatus::Ok) {
        return -1;
    }
    return insn.table_index;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }

    bench::header("E6 + E14: cost accounting and compiled replay",
                  "paper §6 CPU-hour table");

    // ------------------------------------------------------------------
    // Microbench: the concrete-replay hot path in isolation. Both
    // sides execute the identical workload (the worlds evolve in
    // lockstep because handlers mirror the interpreter exactly), so
    // wall-clock ratio is the per-statement speedup.
    // ------------------------------------------------------------------
    const u64 rounds = bench::env_u64("POKEEMU_STATES", smoke ? 64 : 256);
    const auto &units = hifi::compiled_units();
    const hifi::CompiledTable &table = hifi::compiled_table();
    if (table.semantics_hash != hifi::compiled_expected_hash() ||
        table.num_entries != units.size()) {
        std::fprintf(stderr, "stale compiled table — regenerate\n");
        return 1;
    }

    FlatMemory interp_world, compiled_world;
    u64 micro_insns = 0;
    u64 micro_stmts = 0;
    double t_interp = 0;
    {
        const auto t0 = std::chrono::steady_clock::now();
        for (u64 r = 0; r < rounds; ++r) {
            for (const hifi::CompiledUnit &unit : units) {
                micro_stmts +=
                    ir::run_concrete(unit.program, interp_world).steps;
                ++micro_insns;
            }
        }
        t_interp = seconds_since(t0);
    }
    double t_compiled = 0;
    u64 compiled_stmts = 0;
    {
        const auto t0 = std::chrono::steady_clock::now();
        for (u64 r = 0; r < rounds; ++r) {
            for (std::size_t u = 0; u < units.size(); ++u) {
                compiled_stmts +=
                    table.entries[u].handler(compiled_world, 1u << 22)
                        .steps;
            }
        }
        t_compiled = seconds_since(t0);
    }
    const bool micro_identical = interp_world == compiled_world &&
        micro_stmts == compiled_stmts;
    const double micro_speedup =
        t_compiled == 0 ? 0.0 : t_interp / t_compiled;
    std::printf(
        "microbench: %zu units x %llu states, %llu replays, %llu IR "
        "stmts\n  interpreter %.3fs (%.0f stmts/s), compiled %.3fs "
        "(%.0f stmts/s)\n  speedup %.2fx (floor 5x, target 10x), "
        "worlds %s\n",
        units.size(), static_cast<unsigned long long>(rounds),
        static_cast<unsigned long long>(micro_insns),
        static_cast<unsigned long long>(micro_stmts), t_interp,
        t_interp == 0 ? 0.0 : static_cast<double>(micro_stmts) / t_interp,
        t_compiled,
        t_compiled == 0
            ? 0.0
            : static_cast<double>(compiled_stmts) / t_compiled,
        micro_speedup, micro_identical ? "identical" : "DIVERGED");

    // ------------------------------------------------------------------
    // End to end: Hi-Fi backend re-executing a generated test set,
    // CompiledExec Off vs On (fetch, IR decode and dispatch included).
    // ------------------------------------------------------------------
    std::vector<testgen::TestProgram> programs;
    double t_e6_table = 0;
    const PipelineStats *sweep_stats = nullptr;
    if (smoke) {
        PipelineOptions options;
        options.instruction_filter = {
            index_of({0x50}),       // push eax
            index_of({0xc9}),       // leave
            index_of({0x74, 0x00}), // jz
            index_of({0xd3, 0xe0}), // shl eax, cl
            index_of({0x01, 0x08}), // add [eax], ecx
        };
        options.max_paths_per_insn = 8;
        Pipeline pipeline(options);
        pipeline.explore_and_generate();
        for (const GeneratedTest &test : pipeline.tests())
            programs.push_back(test.program);
    } else {
        const auto t0 = std::chrono::steady_clock::now();
        Pipeline &pipeline = bench::sweep_pipeline();
        t_e6_table = seconds_since(t0);
        sweep_stats = &pipeline.stats();
        for (const GeneratedTest &test : pipeline.tests())
            programs.push_back(test.program);
    }

    double t_e2e_off = 0, t_e2e_on = 0;
    u64 e2e_insns_off = 0, e2e_insns_on = 0;
    u64 hits_off = 0, hits_on = 0;
    {
        harness::TestRunner::Config cfg;
        harness::TestRunner off_runner(cfg);
        cfg.hifi_options.compiled = hifi::CompiledExec::On;
        harness::TestRunner on_runner(cfg);
        harness::BackendRun run;
        auto t0 = std::chrono::steady_clock::now();
        for (const testgen::TestProgram &program : programs) {
            off_runner.run_one_into(harness::Backend::HiFi,
                                    program.code, run);
            e2e_insns_off += run.insns;
        }
        t_e2e_off = seconds_since(t0);
        hits_off = off_runner.hifi().compiled_hits();

        t0 = std::chrono::steady_clock::now();
        for (const testgen::TestProgram &program : programs) {
            on_runner.run_one_into(harness::Backend::HiFi,
                                   program.code, run);
            e2e_insns_on += run.insns;
        }
        t_e2e_on = seconds_since(t0);
        hits_on = on_runner.hifi().compiled_hits();
    }
    const double e2e_speedup =
        t_e2e_on == 0 ? 0.0 : t_e2e_off / t_e2e_on;
    std::printf(
        "end to end: %zu tests, %llu insns\n  interpreter %.3fs "
        "(%.0f insns/s), compiled %.3fs (%.0f insns/s), speedup "
        "%.2fx\n  dispatch: %llu compiled of %llu retired (off-mode "
        "hits: %llu)\n",
        programs.size(), static_cast<unsigned long long>(e2e_insns_off),
        t_e2e_off,
        t_e2e_off == 0
            ? 0.0
            : static_cast<double>(e2e_insns_off) / t_e2e_off,
        t_e2e_on,
        t_e2e_on == 0 ? 0.0
                      : static_cast<double>(e2e_insns_on) / t_e2e_on,
        e2e_speedup, static_cast<unsigned long long>(hits_on),
        static_cast<unsigned long long>(e2e_insns_on),
        static_cast<unsigned long long>(hits_off));
    const bool e2e_identical = e2e_insns_off == e2e_insns_on;
    const bool dispatch_used = hits_on > 0 && hits_off == 0;

    // ------------------------------------------------------------------
    // E6 cost table (full mode: needs the whole sweep executed).
    // ------------------------------------------------------------------
    bool hifi_slowest = true;
    bool hw_fastest = true;
    if (sweep_stats != nullptr) {
        const PipelineStats &s = *sweep_stats;
        const double generation =
            s.t_state_exploration + s.t_generation;
        std::printf(
            "\nstage                    paper (CPU-h)  this repro (s)\n");
        std::printf("test generation          545.4          %.2f\n",
                    generation);
        std::printf("execution on lo-fi       198.7 (QEMU)   %.2f\n",
                    s.t_execution_lofi);
        std::printf("execution on hi-fi       391.9 (Bochs)  %.2f\n",
                    s.t_execution_hifi);
        std::printf("execution on hardware    48.5 (KVM)     %.2f\n",
                    s.t_execution_hw);
        std::printf("results comparison       175.9          %.2f\n",
                    s.t_comparison);
        std::printf("tests                    610,516        %llu\n",
                    static_cast<unsigned long long>(s.tests_executed));
        hifi_slowest = s.t_execution_hifi > s.t_execution_lofi &&
            s.t_execution_hifi > s.t_execution_hw;
        // The hardware oracle and the Lo-Fi emulator share the direct
        // execution core (DESIGN.md §2), so "hardware is fastest" can
        // only be checked up to noise: the real 4x KVM-vs-QEMU gap
        // came from native execution, which a software oracle cannot
        // reproduce.
        hw_fastest = s.t_execution_hw <= s.t_execution_lofi * 1.15;
        std::printf("\nshape checks:\n");
        std::printf("  hi-fi (interpreter) slowest executor: %s\n",
                    hifi_slowest ? "PASS" : "FAIL");
        std::printf("  hardware oracle not slower than lo-fi (see "
                    "comment): %s\n",
                    hw_fastest ? "PASS" : "FAIL");
        std::printf("  generation dominates execution (only at paper "
                    "scale): %s\n",
                    generation > s.t_execution_lofi
                        ? "yes"
                        : "no (expected at bench scale)");
    }
    (void)t_e6_table;

    // The gate: compiled must never be slower than the interpreter on
    // the hot path, and the worlds must match byte for byte.
    const bool ok = micro_identical && e2e_identical && dispatch_used &&
        micro_speedup >= 1.0 && hifi_slowest && hw_fastest;

    {
        std::FILE *out = std::fopen("BENCH_timing.json", "w");
        if (out == nullptr) {
            std::fprintf(stderr, "cannot write BENCH_timing.json\n");
            return 1;
        }
        std::fprintf(out, "{\n  \"bench\": \"timing\",\n");
        std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
        std::fprintf(out, "  \"replay_units\": %zu,\n", units.size());
        std::fprintf(out, "  \"replay_states_per_unit\": %llu,\n",
                     static_cast<unsigned long long>(rounds));
        std::fprintf(out, "  \"replay_insns\": %llu,\n",
                     static_cast<unsigned long long>(micro_insns));
        std::fprintf(out, "  \"replay_ir_stmts\": %llu,\n",
                     static_cast<unsigned long long>(micro_stmts));
        std::fprintf(out, "  \"replay_seconds_interpreter\": %.6f,\n",
                     t_interp);
        std::fprintf(out, "  \"replay_seconds_compiled\": %.6f,\n",
                     t_compiled);
        std::fprintf(
            out, "  \"replay_insns_per_sec_interpreter\": %.0f,\n",
            t_interp == 0
                ? 0.0
                : static_cast<double>(micro_insns) / t_interp);
        std::fprintf(
            out, "  \"replay_insns_per_sec_compiled\": %.0f,\n",
            t_compiled == 0
                ? 0.0
                : static_cast<double>(micro_insns) / t_compiled);
        std::fprintf(out, "  \"replay_speedup\": %.3f,\n",
                     micro_speedup);
        std::fprintf(out, "  \"replay_speedup_floor\": 5.0,\n");
        std::fprintf(out, "  \"replay_speedup_target\": 10.0,\n");
        std::fprintf(out, "  \"replay_worlds_identical\": %s,\n",
                     micro_identical ? "true" : "false");
        std::fprintf(out, "  \"e2e_tests\": %zu,\n", programs.size());
        std::fprintf(out, "  \"e2e_insns\": %llu,\n",
                     static_cast<unsigned long long>(e2e_insns_off));
        std::fprintf(out, "  \"e2e_seconds_interpreter\": %.6f,\n",
                     t_e2e_off);
        std::fprintf(out, "  \"e2e_seconds_compiled\": %.6f,\n",
                     t_e2e_on);
        std::fprintf(out, "  \"e2e_speedup\": %.3f,\n", e2e_speedup);
        std::fprintf(out, "  \"e2e_compiled_hits\": %llu,\n",
                     static_cast<unsigned long long>(hits_on));
        if (sweep_stats != nullptr) {
            const PipelineStats &s = *sweep_stats;
            std::fprintf(out, "  \"e6_generation_seconds\": %.3f,\n",
                         s.t_state_exploration + s.t_generation);
            std::fprintf(out, "  \"e6_execution_hifi_seconds\": %.3f,\n",
                         s.t_execution_hifi);
            std::fprintf(out, "  \"e6_execution_lofi_seconds\": %.3f,\n",
                         s.t_execution_lofi);
            std::fprintf(out, "  \"e6_execution_hw_seconds\": %.3f,\n",
                         s.t_execution_hw);
            std::fprintf(out, "  \"e6_comparison_seconds\": %.3f,\n",
                         s.t_comparison);
        }
        std::fprintf(out, "  \"ok\": %s\n}\n", ok ? "true" : "false");
        std::fclose(out);
    }
    std::printf("wrote BENCH_timing.json\n");
    return ok ? 0 : 1;
}
