/**
 * @file
 * Experiment E4 (paper §6.2 root-cause analysis): cluster every
 * surviving behaviour difference by root cause. The paper's clusters
 * for QEMU were: missing segment limit/rights enforcement (the
 * majority), atomicity violations (leave, cmpxchg), iret pop order,
 * missing #GP on invalid rdmsr, rejected valid encodings, missing
 * accessed-flag updates, and undefined-flag divergences; for Bochs,
 * the lfs fetch order and undefined flags. The shape to check: every
 * seeded class recovered, segment checks dominating the Lo-Fi counts,
 * and the Hi-Fi clusters confined to fetch order + flags.
 */
#include "bench_common.h"

using namespace pokeemu;

int
main()
{
    bench::header("E4: root-cause clustering", "paper §6.2 analysis");

    Pipeline &pipeline = bench::sweep_pipeline();
    const PipelineStats &s = pipeline.stats();

    std::printf("lo-fi (QEMU-analog) vs hardware — %llu differences:\n%s\n",
                static_cast<unsigned long long>(s.lofi_diffs),
                s.lofi_clusters.to_string().c_str());
    std::printf("hi-fi (Bochs-analog) vs hardware — %llu differences:\n%s\n",
                static_cast<unsigned long long>(s.hifi_diffs),
                s.hifi_clusters.to_string().c_str());

    // Shape: the seeded classes must be recovered.
    std::set<std::string> lofi_causes;
    for (const auto &c : s.lofi_clusters.clusters())
        lofi_causes.insert(c.root_cause);
    const char *expected[] = {
        "segment-limits-and-rights-not-enforced",
        "rdmsr-no-gp-on-invalid-msr",
        "rejects-valid-encoding",
    };
    bool ok = true;
    for (const char *cause : expected) {
        const bool found = lofi_causes.count(cause) != 0;
        std::printf("seeded cause %-45s %s\n", cause,
                    found ? "RECOVERED" : "MISSING");
        ok &= found;
    }
    const auto lofi_clusters = s.lofi_clusters.clusters();
    const bool segment_dominates =
        !lofi_clusters.empty() &&
        lofi_clusters.front().root_cause ==
            "segment-limits-and-rights-not-enforced";
    std::printf("segment checks dominate (as in the paper): %s\n",
                segment_dominates ? "yes" : "no");

    std::printf("\nshape check: %s\n",
                ok && segment_dominates ? "PASS" : "FAIL");
    return ok && segment_dominates ? 0 : 1;
}
