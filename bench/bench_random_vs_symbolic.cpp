/**
 * @file
 * Experiment E5 (paper §6.2 last paragraph + §8): path-exploration
 * lifting vs random testing at an equal test budget. The paper argues
 * that the ISSTA'09/'10 random-testing studies could not find the
 * order/alignment-sensitive differences ("the difference in iret read
 * ordering can be significant only if the values read lie on different
 * pages or across a segment boundary, either of which would have a
 * very low probability if the address and segment limit were chosen
 * uniformly at random"), while random generation itself is cheaper.
 *
 * Shape to check: at the same test count, symbolic tests recover
 * strictly more root-cause classes, including the order-sensitive
 * ones; random testing finds only the blunt classes.
 */
#include "bench_common.h"

#include "pokeemu/random_tester.h"

using namespace pokeemu;

int
main()
{
    bench::header("E5: symbolic vs random testing",
                  "paper §6.2/§8 comparison with ISSTA'09-style fuzzing");

    Pipeline &pipeline = bench::sweep_pipeline();
    const PipelineStats &s = pipeline.stats();

    RandomTesterOptions options;
    options.num_tests = s.tests_executed; // Equal budget.
    const RandomTesterStats random = run_random_testing(options);

    auto causes_of = [](const harness::RootCauseClusterer &c) {
        std::set<std::string> out;
        for (const auto &cluster : c.clusters())
            out.insert(cluster.root_cause);
        return out;
    };
    const auto symbolic_causes = causes_of(s.lofi_clusters);
    const auto random_causes = causes_of(random.lofi_clusters);

    std::printf("tests per method: %llu\n\n",
                static_cast<unsigned long long>(s.tests_executed));
    std::printf("%-46s %-9s %s\n", "root cause", "symbolic", "random");
    std::set<std::string> all;
    all.insert(symbolic_causes.begin(), symbolic_causes.end());
    all.insert(random_causes.begin(), random_causes.end());
    for (const auto &cause : all) {
        std::printf("%-46s %-9s %s\n", cause.c_str(),
                    symbolic_causes.count(cause) ? "found" : "-",
                    random_causes.count(cause) ? "found" : "-");
    }
    std::printf("\ndifference-triggering tests: symbolic %llu, "
                "random %llu\n",
                static_cast<unsigned long long>(s.lofi_diffs),
                static_cast<unsigned long long>(random.lofi_diffs));

    // The order-sensitive classes the paper highlights.
    const char *order_sensitive[] = {"iret-pop-order",
                                     "far-pointer-fetch-order"};
    bool symbolic_finds_order = false;
    bool random_misses_order = true;
    for (const char *cause : order_sensitive) {
        symbolic_finds_order |= symbolic_causes.count(cause) != 0;
        random_misses_order &= random_causes.count(cause) == 0;
    }
    const bool more_classes =
        symbolic_causes.size() > random_causes.size();
    std::printf("\nshape checks:\n");
    std::printf("  symbolic finds an order-sensitive class: %s\n",
                symbolic_finds_order ? "PASS" : "FAIL");
    std::printf("  random misses the order-sensitive classes: %s\n",
                random_misses_order ? "PASS" : "FAIL");
    std::printf("  symbolic recovers more classes overall: %s\n",
                more_classes ? "PASS" : "FAIL");
    return (symbolic_finds_order && random_misses_order &&
            more_classes)
        ? 0
        : 1;
}
