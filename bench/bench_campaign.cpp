/**
 * @file
 * Sharded-campaign scaling bench: run the same campaign workload at
 * 1, 2 and 4 workers, verify the merged reports are byte-identical,
 * and emit machine-readable results to BENCH_campaign.json —
 * wall-clock, paths/s, tests/s, solver-memo hit rate, and speedup vs
 * 1 worker — so perf numbers accumulate per PR.
 *
 * Scale knobs: POKEEMU_INSNS (workload size, default 12) and
 * POKEEMU_PATHS (per-instruction cap, default 24). `--smoke` shrinks
 * both so the ctest registration finishes in seconds. Note the
 * speedup column only means something on a multi-core machine; the
 * JSON records nproc so single-core CI numbers are not misread.
 */
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "pokeemu/shard.h"

using namespace pokeemu;

namespace {

struct Row
{
    u32 shards = 0;
    double wall_seconds = 0;
    double paths_per_second = 0;
    double tests_per_second = 0;
    double cache_hit_rate = 0;
    double speedup_vs_1 = 0;
    u64 paths = 0;
    u64 tests = 0;
};

CampaignOptions
base_options(bool smoke)
{
    CampaignOptions options;
    options.pipeline.max_paths_per_insn =
        bench::env_u64("POKEEMU_PATHS", smoke ? 16 : 24);
    // Solver-bound workload: the table's leading entries are
    // straight-line ALU ops that explore one or two paths and barely
    // touch the solver, so a table-prefix workload would measure the
    // decoder, not the campaign hot loop. Sample the multi-path
    // families instead — iret, string moves, far-pointer loads,
    // stack ops, shifts — where feasibility queries dominate.
    static constexpr int kWorkload[] = {
        274, // iret: deepest path tree in the table
        201, // movsd
        266, // les
        80,  // push r
        181, // pop r/m
        206, // stosb
        267, // lds
        340, // lss
        245, // shl r/m,cl
        81,  // push r
        341, // lfs
        342, // lgs
    };
    for (int index : kWorkload)
        options.pipeline.instruction_filter.push_back(index);
    options.pipeline.max_instructions = static_cast<std::size_t>(
        bench::env_u64("POKEEMU_INSNS", smoke ? 4 : 12));
    return options;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--smoke")
            smoke = true;
    }

    bench::header("bench_campaign",
                  "§6 campaign throughput (sharded driver)");
    const CampaignOptions base = base_options(smoke);
    std::printf("workload: %zu instructions, %llu paths/insn cap, "
                "%u hardware threads\n",
                base.pipeline.max_instructions,
                static_cast<unsigned long long>(
                    base.pipeline.max_paths_per_insn),
                std::thread::hardware_concurrency());

    std::vector<Row> rows;
    std::string reference_report;
    bool identical = true;
    for (u32 shards : {1u, 2u, 4u}) {
        CampaignOptions options = base;
        options.shards = shards;
        const CampaignResult result = run_campaign(options);
        Row row;
        row.shards = shards;
        row.wall_seconds = result.wall_seconds;
        row.paths = result.merged.total_paths;
        row.tests = result.merged.tests_executed;
        if (result.wall_seconds > 0) {
            row.paths_per_second = static_cast<double>(row.paths) /
                result.wall_seconds;
            row.tests_per_second = static_cast<double>(row.tests) /
                result.wall_seconds;
        }
        const u64 memo_total = result.merged.solver_cache_hits +
            result.merged.solver_cache_misses;
        if (memo_total != 0) {
            row.cache_hit_rate =
                static_cast<double>(result.merged.solver_cache_hits) /
                static_cast<double>(memo_total);
        }
        if (shards == 1)
            reference_report = result.report();
        else if (result.report() != reference_report)
            identical = false;
        rows.push_back(row);
    }
    for (Row &row : rows) {
        row.speedup_vs_1 = row.wall_seconds > 0
            ? rows[0].wall_seconds / row.wall_seconds
            : 0.0;
    }

    std::printf("shards  wall(s)  paths/s  tests/s  memo-hit  "
                "speedup\n");
    for (const Row &row : rows) {
        std::printf("%6u  %7.3f  %7.1f  %7.1f  %7.1f%%  %6.2fx\n",
                    row.shards, row.wall_seconds,
                    row.paths_per_second, row.tests_per_second,
                    row.cache_hit_rate * 100.0, row.speedup_vs_1);
    }
    std::printf("merged reports byte-identical across shard counts: "
                "%s\n",
                identical ? "yes" : "NO");

    {
        std::FILE *out = std::fopen("BENCH_campaign.json", "w");
        if (out == nullptr) {
            std::fprintf(stderr, "cannot write BENCH_campaign.json\n");
            return 1;
        }
        std::fprintf(out, "{\n  \"bench\": \"campaign\",\n");
        std::fprintf(out, "  \"smoke\": %s,\n",
                     smoke ? "true" : "false");
        std::fprintf(out, "  \"hardware_threads\": %u,\n",
                     std::thread::hardware_concurrency());
        std::fprintf(out, "  \"reports_identical\": %s,\n",
                     identical ? "true" : "false");
        std::fprintf(out, "  \"runs\": [\n");
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const Row &row = rows[i];
            std::fprintf(
                out,
                "    {\"shards\": %u, \"wall_seconds\": %.6f, "
                "\"paths\": %llu, \"tests\": %llu, "
                "\"paths_per_second\": %.2f, "
                "\"tests_per_second\": %.2f, "
                "\"solver_cache_hit_rate\": %.4f, "
                "\"speedup_vs_1\": %.3f}%s\n",
                row.shards, row.wall_seconds,
                static_cast<unsigned long long>(row.paths),
                static_cast<unsigned long long>(row.tests),
                row.paths_per_second, row.tests_per_second,
                row.cache_hit_rate, row.speedup_vs_1,
                i + 1 < rows.size() ? "," : "");
        }
        std::fprintf(out, "  ]\n}\n");
        std::fclose(out);
    }
    std::printf("wrote BENCH_campaign.json\n");
    return identical ? 0 : 1;
}
