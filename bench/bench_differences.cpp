/**
 * @file
 * Experiment E3 (paper §6.2 headline numbers): out of all generated
 * test programs, how many trigger behaviour differences in the Lo-Fi
 * emulator and in the Hi-Fi emulator, compared against hardware.
 *
 * Paper: 610,516 tests; 60,770 distinguish QEMU (~10.0%); 15,219
 * distinguish Bochs (~2.5%). The absolute counts scale with the ISA
 * subset; the shape to check is lofi >> hifi > 0, with the Lo-Fi rate
 * an order of magnitude above the Hi-Fi rate.
 */
#include "bench_common.h"

using namespace pokeemu;

int
main()
{
    bench::header("E3: behaviour-difference counts",
                  "paper §6.2 (60,770 / 15,219 of 610,516)");

    Pipeline &pipeline = bench::sweep_pipeline();
    const PipelineStats &s = pipeline.stats();

    const double lofi_rate = s.tests_executed
        ? 100.0 * static_cast<double>(s.lofi_diffs) /
              static_cast<double>(s.tests_executed)
        : 0.0;
    const double hifi_rate = s.tests_executed
        ? 100.0 * static_cast<double>(s.hifi_diffs) /
              static_cast<double>(s.tests_executed)
        : 0.0;

    std::printf("                         paper            this repro\n");
    std::printf("test programs            610,516          %llu\n",
                static_cast<unsigned long long>(s.tests_executed));
    std::printf("lo-fi differences        60,770 (10.0%%)   %llu (%.1f%%)\n",
                static_cast<unsigned long long>(s.lofi_diffs),
                lofi_rate);
    std::printf("hi-fi differences        15,219 (2.5%%)    %llu (%.1f%%)\n",
                static_cast<unsigned long long>(s.hifi_diffs),
                hifi_rate);
    std::printf("filtered (undefined)     (script-filtered) %llu\n",
                static_cast<unsigned long long>(s.filtered_undefined));
    std::printf("timeouts                 n/a              %llu\n",
                static_cast<unsigned long long>(s.timeouts));

    const bool shape_ok = s.lofi_diffs > s.hifi_diffs &&
                          s.hifi_diffs > 0 && s.lofi_diffs > 0;
    std::printf("\nshape check (lofi >> hifi > 0): %s\n",
                shape_ok ? "PASS" : "FAIL");
    return shape_ok ? 0 : 1;
}
