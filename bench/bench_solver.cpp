/**
 * @file
 * Experiment E9 (paper §3.1.2): decision-procedure performance. The
 * paper's claim about STP/Z3 — "their results are precise but produced
 * quickly, with most queries completing in a fraction of a second" —
 * must hold for this repository's from-scratch bit-vector solver too,
 * or the whole exploration strategy collapses. This bench uses
 * google-benchmark on exploration-shaped queries and reports the
 * aggregate latency observed during a real exploration.
 */
#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace pokeemu;
namespace E = ir::E;

namespace {

/** Segment-limit + page-walk shaped feasibility query. */
void
BM_PathConditionQuery(benchmark::State &state)
{
    for (auto _ : state) {
        solver::Solver solver;
        auto esp = E::var(1, "esp", 32);
        auto limit = E::var(2, "limit", 32);
        auto pte = E::var(3, "pte", 8);
        auto addr = E::sub(esp, E::constant(32, 4));
        std::vector<ir::ExprRef> conds = {
            E::ule(addr, limit),
            E::eq(E::extract(pte, 0, 1), E::bool_const(true)),
            E::ult(E::constant(32, 0x200000), addr),
        };
        benchmark::DoNotOptimize(solver.check(conds));
    }
}
BENCHMARK(BM_PathConditionQuery);

/** Incremental re-query with a growing path condition. */
void
BM_IncrementalQueries(benchmark::State &state)
{
    for (auto _ : state) {
        solver::Solver solver;
        auto x = E::var(1, "x", 32);
        std::vector<ir::ExprRef> conds;
        for (u32 i = 0; i < 24; ++i) {
            conds.push_back(
                E::ne(E::band(x, E::constant(32, 1u << i)),
                      E::constant(32, 0)));
            benchmark::DoNotOptimize(solver.check(conds));
        }
    }
}
BENCHMARK(BM_IncrementalQueries);

/** Flags-heavy query (adder + parity circuits). */
void
BM_FlagsQuery(benchmark::State &state)
{
    for (auto _ : state) {
        solver::Solver solver;
        auto a = E::var(1, "a", 32);
        auto b = E::var(2, "b", 32);
        auto sum = E::add(a, b);
        std::vector<ir::ExprRef> conds = {
            E::eq(sum, E::constant(32, 0)),
            E::ne(a, E::constant(32, 0)),
            E::eq(E::extract(a, 31, 1), E::extract(b, 31, 1)),
        };
        benchmark::DoNotOptimize(solver.check(conds));
    }
}
BENCHMARK(BM_FlagsQuery);

/** 64-bit division circuit (the heaviest op in div semantics). */
void
BM_DivisionQuery(benchmark::State &state)
{
    for (auto _ : state) {
        solver::Solver solver;
        auto num = E::var(1, "num", 64);
        auto den = E::var(2, "den", 32);
        auto q = E::binop(ir::BinOpKind::UDiv, num, E::zext(den, 64));
        std::vector<ir::ExprRef> conds = {
            E::ne(den, E::constant(32, 0)),
            E::ult(E::constant(64, 0xffffffffull), q),
        };
        benchmark::DoNotOptimize(solver.check(conds));
    }
}
BENCHMARK(BM_DivisionQuery);

} // namespace

int
main(int argc, char **argv)
{
    bench::header("E9: decision-procedure latency",
                  "paper §3.1.2 (queries in a fraction of a second)");

    // Aggregate latency during a real exploration.
    symexec::VarPool summary_pool;
    const symexec::Summary summary =
        hifi::summarize_descriptor_load(summary_pool);
    const explore::StateSpec spec(testgen::baseline_cpu_state(),
                                  testgen::baseline_ram_after_init(),
                                  &summary);
    std::vector<u8> bytes = {0xcf}; // iret: query-heavy.
    bytes.resize(arch::kMaxInsnLength, 0);
    arch::DecodedInsn insn;
    arch::decode(bytes.data(), bytes.size(), insn);
    explore::StateExploreOptions options;
    options.max_paths = 128;

    // Re-run the exploration to harvest solver statistics.
    symexec::VarPool pool;
    hifi::SemanticsOptions sem_options;
    sem_options.descriptor_summary = &summary;
    const ir::Program semantics =
        hifi::build_semantics(insn, sem_options);
    symexec::ExplorerConfig config;
    config.max_paths = options.max_paths;
    config.preconditions = spec.preconditions(pool);
    symexec::PathExplorer explorer(semantics, pool,
                                   spec.initial_fn(pool), config);
    explorer.explore([](const symexec::PathInfo &,
                        symexec::SymbolicMemory &) {});
    const solver::SolverStats &stats = explorer.solver_stats();
    std::printf("iret exploration: %llu queries, %.3fms mean, "
                "%.1fms max, %llu sat / %llu unsat\n\n",
                static_cast<unsigned long long>(stats.queries),
                1e3 * stats.total_seconds /
                    std::max<u64>(1, stats.queries),
                1e3 * stats.max_seconds,
                static_cast<unsigned long long>(stats.sat),
                static_cast<unsigned long long>(stats.unsat));
    const bool shape_ok = stats.max_seconds < 1.0;
    std::printf("shape check (every query under a second): %s\n\n",
                shape_ok ? "PASS" : "FAIL");

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return shape_ok ? 0 : 1;
}
