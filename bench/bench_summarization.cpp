/**
 * @file
 * Experiment E8 (paper §3.3.2): summarizing common computations.
 * Bochs' segment-descriptor cache update had 23 paths; executing it
 * inline inside each of six segment loads would multiply the search
 * space by 23^6 ~ 1.48e8, so the paper pre-explores it once and
 * substitutes a single formula. This bench explores the
 * segment-register-load instructions with and without the summary and
 * compares path counts, completeness and time.
 */
#include <chrono>

#include "bench_common.h"

using namespace pokeemu;

namespace {

struct Side
{
    u64 paths = 0;
    u64 queries = 0;
    u64 complete = 0;
    u64 insns = 0;
    double seconds = 0;
};

Side
run_side(bool use_summary, const symexec::Summary &summary,
         const explore::StateSpec &spec)
{
    // The segment-load instructions: mov sreg and the far loads.
    const std::vector<std::vector<u8>> encodings = {
        {0x8e, 0xd8},       // mov ds, ax
        {0x8e, 0xd0},       // mov ss, ax
        {0x8e, 0xe0},       // mov fs, ax
        {0xc4, 0x03},       // les eax, [ebx]
        {0xc5, 0x03},       // lds eax, [ebx]
        {0x0f, 0xb2, 0x03}, // lss eax, [ebx]
        {0x0f, 0xb4, 0x03}, // lfs eax, [ebx]
        {0x0f, 0xb5, 0x03}, // lgs eax, [ebx]
    };
    Side side;
    for (const auto &enc : encodings) {
        std::vector<u8> buf = enc;
        buf.resize(arch::kMaxInsnLength, 0);
        arch::DecodedInsn insn;
        if (arch::decode(buf.data(), buf.size(), insn) !=
            arch::DecodeStatus::Ok) {
            continue;
        }
        explore::StateExploreOptions options;
        options.max_paths = 512;
        options.use_descriptor_summary = use_summary;
        const auto t0 = std::chrono::steady_clock::now();
        const explore::StateExploreResult r =
            explore_instruction(insn, spec, &summary, options);
        side.seconds += std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
        side.paths += r.stats.paths;
        side.queries += r.stats.solver_queries;
        side.complete += r.stats.complete ? 1 : 0;
        ++side.insns;
    }
    return side;
}

} // namespace

int
main()
{
    bench::header("E8: descriptor-load summarization ablation",
                  "paper §3.3.2 (23-path cache update, x23^6 avoided)");

    symexec::VarPool summary_pool;
    const symexec::Summary summary =
        hifi::summarize_descriptor_load(summary_pool);
    std::printf("helper paths folded into the summary: %llu "
                "(complete: %s; paper's Bochs helper had 23)\n\n",
                static_cast<unsigned long long>(summary.paths),
                summary.complete ? "yes" : "no");

    const explore::StateSpec spec(testgen::baseline_cpu_state(),
                                  testgen::baseline_ram_after_init(),
                                  &summary);

    const Side with = run_side(true, summary, spec);
    const Side without = run_side(false, summary, spec);

    std::printf("                          summarized     inline\n");
    std::printf("segment-load insns        %-14llu %llu\n",
                static_cast<unsigned long long>(with.insns),
                static_cast<unsigned long long>(without.insns));
    std::printf("paths                     %-14llu %llu\n",
                static_cast<unsigned long long>(with.paths),
                static_cast<unsigned long long>(without.paths));
    std::printf("fully explored            %-14llu %llu\n",
                static_cast<unsigned long long>(with.complete),
                static_cast<unsigned long long>(without.complete));
    std::printf("solver queries            %-14llu %llu\n",
                static_cast<unsigned long long>(with.queries),
                static_cast<unsigned long long>(without.queries));
    std::printf("time                      %-13.2fs %.2fs\n",
                with.seconds, without.seconds);

    const bool shape_ok = with.paths < without.paths &&
                          with.complete == with.insns;
    std::printf("\nshape check (summary shrinks the path space and "
                "keeps loads fully explored): %s\n",
                shape_ok ? "PASS" : "FAIL");
    return shape_ok ? 0 : 1;
}
