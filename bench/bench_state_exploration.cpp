/**
 * @file
 * Experiment E2 + Figure 3 (paper §6.1): machine-state-space
 * exploration. Prints the symbolic-state specification (the Figure 3
 * analog) and sweeps every instruction, reporting paths explored and
 * the fraction with complete path coverage.
 *
 * Paper: 610,516 paths across 880 instructions, complete coverage for
 * ~95% of instructions under a path cap of 8192. The shape to check:
 * a large majority of instructions explored to completion, with the
 * incomplete ones concentrated in the iteration-count (rep-prefixed)
 * class.
 */
#include <algorithm>
#include <chrono>

#include "bench_common.h"

using namespace pokeemu;

int
main()
{
    bench::header("E2: machine-state-space exploration",
                  "paper §6.1 (610,516 paths; >=95% complete) + Fig.3");

    Pipeline &pipeline = bench::sweep_pipeline();
    const PipelineStats &s = pipeline.stats();

    std::printf("%s\n", pipeline.spec().to_string().c_str());

    const double complete_pct = s.instructions_explored
        ? 100.0 * static_cast<double>(s.instructions_complete) /
              static_cast<double>(s.instructions_explored)
        : 0.0;
    std::printf("                         paper          this repro\n");
    std::printf("instructions explored    880            %llu\n",
                static_cast<unsigned long long>(
                    s.instructions_explored));
    std::printf("total paths              610,516        %llu\n",
                static_cast<unsigned long long>(s.total_paths));
    std::printf("complete path coverage   ~95%%           %.1f%%\n",
                complete_pct);
    std::printf("path cap                 8192           %llu "
                "(POKEEMU_PATHS)\n",
                static_cast<unsigned long long>(
                    bench::env_u64("POKEEMU_PATHS", 48)));
    std::printf("solver queries           n/a            %llu\n",
                static_cast<unsigned long long>(s.solver_queries));
    std::printf("exploration time         545.4 CPU-h*   %.1fs\n",
                s.t_state_exploration);
    std::printf("(* includes the paper's whole generation phase)\n");

    // Distribution of paths per instruction (the paper notes the count
    // "mainly depends on the type of instruction and operands").
    std::map<int, u64> paths_per_insn;
    for (const GeneratedTest &t : pipeline.tests())
        ++paths_per_insn[t.table_index];
    std::vector<std::pair<u64, int>> ranked;
    for (const auto &[index, count] : paths_per_insn)
        ranked.emplace_back(count, index);
    std::sort(ranked.rbegin(), ranked.rend());
    std::printf("\npath-richest instructions:\n");
    for (std::size_t i = 0; i < ranked.size() && i < 10; ++i) {
        const auto &d = arch::insn_table()[ranked[i].second];
        std::printf("  %-8s (opcode %03x%s)  %llu paths\n", d.mnemonic,
                    d.opcode,
                    d.group_reg >= 0
                        ? (" /" + std::to_string(d.group_reg)).c_str()
                        : "",
                    static_cast<unsigned long long>(ranked[i].first));
    }

    const bool shape_ok =
        complete_pct >= 90.0 && s.total_paths > 500;
    std::printf("\nshape check (>=90%% complete coverage): %s\n",
                shape_ok ? "PASS" : "FAIL");
    return shape_ok ? 0 : 1;
}
