/**
 * @file
 * Experiment E1 (paper §6.1): instruction-set exploration. Symbolic
 * execution of the Hi-Fi emulator's decoder with the first three
 * instruction bytes symbolic enumerates candidate byte sequences and
 * selects one representative per per-instruction code.
 *
 * Paper: 68,977 candidate sequences -> 880 unique instructions, from a
 * 2^24 three-byte space (a ~4.4 order-of-magnitude reduction). The
 * shape to check: several-orders reduction and 100% coverage of the
 * implementation's instruction table.
 *
 * POKEEMU_DECODER_PATHS caps the exploration (0 = run to exhaustion,
 * the default, ~4-5 minutes).
 */
#include "bench_common.h"

#include "explore/insn_explorer.h"

using namespace pokeemu;

int
main()
{
    bench::header("E1: instruction-set exploration",
                  "paper §6.1 (68,977 candidates -> 880 unique)");

    explore::InsnSetOptions options;
    const u64 cap = bench::env_u64("POKEEMU_DECODER_PATHS", 0);
    if (cap)
        options.max_paths = cap;

    const auto t0 = std::chrono::steady_clock::now();
    const explore::InsnSetResult r =
        explore::explore_instruction_set(options);
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();

    const std::size_t table = arch::insn_table().size();
    std::printf("                         paper          this repro\n");
    std::printf("3-byte sequence space    16,777,216     16,777,216\n");
    std::printf("candidate sequences      68,977         %llu\n",
                static_cast<unsigned long long>(
                    r.candidate_sequences));
    std::printf("unique instructions      880            %zu\n",
                r.representatives.size());
    std::printf("table coverage           ~100%%          %.1f%% "
                "(%zu/%zu)\n",
                100.0 * static_cast<double>(r.representatives.size()) /
                    static_cast<double>(table),
                r.representatives.size(), table);
    std::printf("decoder paths            n/a            %llu "
                "(+%llu infeasible)\n",
                static_cast<unsigned long long>(r.stats.paths),
                static_cast<unsigned long long>(r.stats.infeasible));
    std::printf("rejected as #UD          n/a            %llu\n",
                static_cast<unsigned long long>(r.invalid_sequences));
    std::printf("exploration complete     yes            %s\n",
                r.stats.complete ? "yes" : "no (capped)");
    std::printf("solver queries           n/a            %llu\n",
                static_cast<unsigned long long>(
                    r.stats.solver_queries));
    std::printf("wall time                545.4 CPU-h*   %.1fs\n",
                secs);
    std::printf("(* the paper's figure covers all of test generation)\n");

    const bool shape_ok =
        r.representatives.size() == table &&
        r.candidate_sequences > 20 * r.representatives.size();
    std::printf("\nshape check (full table coverage, >=20x grouping "
                "reduction): %s\n",
                shape_ok ? "PASS" : "FAIL");
    return shape_ok ? 0 : 1;
}
