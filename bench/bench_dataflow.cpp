/**
 * @file
 * Dataflow-pruning bench: run the solver-bound campaign workload with
 * static branch pruning Off, On and CrossCheck, and compare solver
 * traffic, emitting BENCH_dataflow.json.
 *
 * The claims gated by the smoke ctest run:
 *  - the explored path sets (halt codes, assignments, step counts)
 *    are identical in all three modes — pruning removes queries, never
 *    paths or ordering;
 *  - `solver_queries_avoided` is nonzero with pruning on, and the
 *    dispatched query count strictly decreases;
 *  - queries(Off) == queries(On) + avoided(On): every avoided probe
 *    accounts for exactly one query Off would have dispatched;
 *  - CrossCheck validates every skipped probe on the side solver
 *    (crosscheck_queries == avoided) without panicking, i.e. every
 *    static decision exercised by the workload is sound.
 *
 * Also reports per-unit analysis time: the fixpoint over each
 * instruction's semantics runs once per unit, so it must stay
 * negligible next to exploration.
 *
 * Scale knobs: POKEEMU_INSNS (workload size, default 12) and
 * POKEEMU_PATHS (per-instruction cap, default 24).
 */
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "explore/state_explorer.h"
#include "hifi/semantics.h"
#include "testgen/baseline.h"

using namespace pokeemu;

namespace {

/** The multi-path families (shared with bench_campaign/bench_coverage):
 *  instructions whose exploration is dominated by solver probes. */
constexpr int kWorkload[] = {
    274, // iret: deepest path tree in the table
    201, // movsd
    266, // les
    80,  // push r
    181, // pop r/m
    206, // stosb
    267, // lds
    340, // lss
    245, // shl r/m,cl
    81,  // push r
    341, // lfs
    342, // lgs
};

struct Row
{
    const char *mode = "";
    u64 solver_queries = 0;
    u64 avoided = 0;
    u64 crosscheck = 0;
    u64 static_decisions = 0;
    u64 paths = 0;
    double wall_seconds = 0;
    /** Canonical rendering of every explored path, for cross-mode
     *  byte-identity comparison. */
    std::string path_digest;
};

void
digest_paths(std::ostringstream &os,
             const explore::StateExploreResult &result)
{
    for (const auto &p : result.paths) {
        os << p.halt_code << '/' << p.steps << '/' << p.step_limited;
        std::vector<std::pair<u32, u64>> values(
            p.assignment.values().begin(), p.assignment.values().end());
        std::sort(values.begin(), values.end());
        for (const auto &[id, value] : values)
            os << ' ' << id << '=' << value;
        os << '\n';
    }
}

Row
sweep(analysis::PruneMode mode, const explore::StateSpec &spec,
      const symexec::Summary &summary, std::size_t insns, u64 cap)
{
    Row row;
    row.mode = analysis::prune_mode_name(mode);
    std::ostringstream digest;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < insns; ++i) {
        const std::vector<u8> bytes =
            arch::canonical_encoding(kWorkload[i]);
        arch::DecodedInsn insn;
        if (arch::decode(bytes.data(), bytes.size(), insn) !=
            arch::DecodeStatus::Ok) {
            continue;
        }
        explore::StateExploreOptions options;
        options.max_paths = cap;
        options.minimize = false;
        options.prune = mode;
        const explore::StateExploreResult result =
            explore_instruction(insn, spec, &summary, options);
        digest << "insn " << kWorkload[i] << '\n';
        digest_paths(digest, result);
        row.solver_queries += result.stats.solver_queries;
        row.avoided += result.stats.solver_queries_avoided;
        row.crosscheck += result.stats.crosscheck_queries;
        row.static_decisions += result.stats.static_decisions;
        row.paths += result.stats.paths;
    }
    row.wall_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
    row.path_digest = digest.str();
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--smoke")
            smoke = true;
    }

    bench::header("bench_dataflow",
                  "static branch pruning: solver traffic off/on/crosscheck");
    const std::size_t insns = static_cast<std::size_t>(std::min<u64>(
        bench::env_u64("POKEEMU_INSNS", smoke ? 8 : 12),
        std::size(kWorkload)));
    const u64 cap = bench::env_u64("POKEEMU_PATHS", 24);
    std::printf("workload: %zu instructions, %llu paths/insn cap\n",
                insns, static_cast<unsigned long long>(cap));

    symexec::VarPool summary_pool;
    const symexec::Summary summary =
        hifi::summarize_descriptor_load(summary_pool);
    const explore::StateSpec spec(testgen::baseline_cpu_state(),
                                  testgen::baseline_ram_after_init(),
                                  &summary);

    // Per-unit analysis cost, measured in isolation (pure fixpoint,
    // no exploration).
    double analysis_seconds = 0;
    u64 analyzed_units = 0;
    for (std::size_t i = 0; i < insns; ++i) {
        const std::vector<u8> bytes =
            arch::canonical_encoding(kWorkload[i]);
        arch::DecodedInsn insn;
        if (arch::decode(bytes.data(), bytes.size(), insn) !=
            arch::DecodeStatus::Ok) {
            continue;
        }
        hifi::SemanticsOptions sem_options;
        sem_options.descriptor_summary = &summary;
        const ir::Program semantics =
            hifi::build_semantics(insn, sem_options);
        const auto t0 = std::chrono::steady_clock::now();
        const analysis::Cfg cfg = analysis::Cfg::build(semantics);
        const analysis::ProgramFacts facts =
            analysis::analyze_program(semantics, cfg);
        analysis_seconds += std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
        analyzed_units += facts.analyzed;
    }

    const Row off = sweep(analysis::PruneMode::Off, spec, summary,
                          insns, cap);
    const Row on = sweep(analysis::PruneMode::On, spec, summary, insns,
                         cap);
    const Row cross = sweep(analysis::PruneMode::CrossCheck, spec,
                            summary, insns, cap);

    std::printf("mode        queries  avoided  crosscheck  decisions  "
                "paths  wall(s)\n");
    for (const Row *row : {&off, &on, &cross}) {
        std::printf("%-10s  %7llu  %7llu  %10llu  %9llu  %5llu  %7.3f\n",
                    row->mode,
                    static_cast<unsigned long long>(row->solver_queries),
                    static_cast<unsigned long long>(row->avoided),
                    static_cast<unsigned long long>(row->crosscheck),
                    static_cast<unsigned long long>(row->static_decisions),
                    static_cast<unsigned long long>(row->paths),
                    row->wall_seconds);
    }
    std::printf("analysis: %llu/%zu units converged, %.6f s total\n",
                static_cast<unsigned long long>(analyzed_units), insns,
                analysis_seconds);

    const bool paths_identical = off.path_digest == on.path_digest &&
                                 on.path_digest == cross.path_digest;
    const bool avoided_nonzero = on.avoided > 0;
    const bool queries_decrease = on.solver_queries < off.solver_queries;
    const bool sum_invariant =
        off.solver_queries == on.solver_queries + on.avoided &&
        off.avoided == 0;
    const bool crosscheck_covers = cross.crosscheck == cross.avoided &&
                                   cross.avoided == on.avoided &&
                                   cross.solver_queries == on.solver_queries;
    const double pct = off.solver_queries == 0
        ? 0.0
        : 100.0 * static_cast<double>(on.avoided) /
            static_cast<double>(off.solver_queries);
    std::printf("paths identical across modes: %s\n",
                paths_identical ? "yes" : "NO");
    std::printf("queries avoided: %llu (%.1f%% of the off-mode total); "
                "sum invariant %s; crosscheck %s\n",
                static_cast<unsigned long long>(on.avoided), pct,
                sum_invariant ? "holds" : "VIOLATED",
                crosscheck_covers ? "covers every skip" : "INCOMPLETE");

    const bool ok = paths_identical && avoided_nonzero &&
                    queries_decrease && sum_invariant && crosscheck_covers;

    {
        std::FILE *out = std::fopen("BENCH_dataflow.json", "w");
        if (out == nullptr) {
            std::fprintf(stderr, "cannot write BENCH_dataflow.json\n");
            return 1;
        }
        std::fprintf(out, "{\n  \"bench\": \"dataflow\",\n");
        std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
        std::fprintf(out, "  \"instructions\": %zu,\n", insns);
        std::fprintf(out, "  \"path_cap\": %llu,\n",
                     static_cast<unsigned long long>(cap));
        std::fprintf(out, "  \"analysis_seconds\": %.6f,\n",
                     analysis_seconds);
        std::fprintf(out, "  \"analysis_seconds_per_unit\": %.6f,\n",
                     insns == 0 ? 0.0 : analysis_seconds / insns);
        std::fprintf(out, "  \"queries_avoided_pct\": %.2f,\n", pct);
        std::fprintf(out, "  \"paths_identical\": %s,\n",
                     paths_identical ? "true" : "false");
        std::fprintf(out, "  \"ok\": %s,\n", ok ? "true" : "false");
        std::fprintf(out, "  \"runs\": [\n");
        const Row *rows[] = {&off, &on, &cross};
        for (std::size_t i = 0; i < 3; ++i) {
            const Row *row = rows[i];
            std::fprintf(
                out,
                "    {\"mode\": \"%s\", \"solver_queries\": %llu, "
                "\"solver_queries_avoided\": %llu, "
                "\"crosscheck_queries\": %llu, "
                "\"static_decisions\": %llu, \"paths\": %llu, "
                "\"wall_seconds\": %.6f}%s\n",
                row->mode,
                static_cast<unsigned long long>(row->solver_queries),
                static_cast<unsigned long long>(row->avoided),
                static_cast<unsigned long long>(row->crosscheck),
                static_cast<unsigned long long>(row->static_decisions),
                static_cast<unsigned long long>(row->paths),
                row->wall_seconds, i == 2 ? "" : ",");
        }
        std::fprintf(out, "  ]\n}\n");
        std::fclose(out);
    }
    std::printf("wrote BENCH_dataflow.json\n");
    return ok ? 0 : 1;
}
