/**
 * @file
 * Defect-corpus bench (EXPERIMENTS.md E13): run the pipeline against
 * mutation-derived Lo-Fi variant backends and score detection and
 * containment, then prove the robustness contract the defect matrix
 * rests on:
 *
 *  1. Recall: every detectable single-defect variant in the run set is
 *     detected (an expected root-cause cluster appears).
 *  2. Containment: the crash / hang / snapshot-corruption variants
 *     complete their campaigns with every test either executed or
 *     ledgered at Stage::Backend — zero pipeline aborts.
 *  3. Determinism under misbehaviour: a misbehaving variant's merged
 *     campaign report is byte-identical across 1/2/4 shards and across
 *     an interrupted + resumed campaign.
 *
 * `--smoke` restricts to a fast subset for the ctest registration
 * (defect_matrix_smoke); the full run covers the whole catalogue plus
 * seeded defect pairs. Writes BENCH_defects.json either way.
 */
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "defects/defects.h"

using namespace pokeemu;

namespace {

/** Fresh, empty scratch directory under the system temp dir. */
std::filesystem::path
scratch_dir(const std::string &name)
{
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("pokeemu_defects_" + name);
    std::filesystem::remove_all(dir);
    return dir;
}

defects::MatrixOptions
base_options(bool smoke)
{
    defects::MatrixOptions options;
    options.max_paths = bench::env_u64("POKEEMU_PATHS", smoke ? 12 : 24);
    if (smoke) {
        // A fast cross-section: one defect per mechanism family
        // (segment checks, pop order, descriptor write-back, MSR
        // validation, page walk) plus all three misbehaviour classes.
        options.only = {
            "no-segment-checks", "iret-pop-order", "no-accessed-flag",
            "rdmsr-no-gp",       "pte-ad-dropped", "backend-crash",
            "backend-hang",      "snapshot-corruption",
        };
    } else {
        options.include_pairs = true;
        options.pair_count = 4;
    }
    return options;
}

/** Campaign for one misbehaving variant at a given shard count. */
CampaignOptions
misbehaving_campaign(const char *variant_name, u32 shards,
                     const defects::MatrixOptions &matrix)
{
    const defects::DefectSpec *spec = defects::find_defect(variant_name);
    if (spec == nullptr)
        panic("bench_defects: unknown variant");
    std::size_t index = 0;
    for (; index < defects::catalogue().size(); ++index) {
        if (defects::catalogue()[index].name == variant_name)
            break;
    }
    defects::MatrixOptions scaled = matrix;
    scaled.shards = shards;
    return defects::variant_campaign({variant_name, {index}}, scaled);
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--smoke")
            smoke = true;
    }

    bench::header("bench_defects",
                  "§6.2 seeded-bug detection, scored over a "
                  "mutation-derived defect corpus");

    const defects::MatrixOptions options = base_options(smoke);
    const defects::MatrixResult result = defects::run_matrix(options);
    std::fputs(defects::matrix_table(result).c_str(), stdout);

    bool ok = true;
    if (!result.recall_complete()) {
        std::printf("FAIL: a detectable defect class was missed\n");
        ok = false;
    }
    if (!result.containment_complete()) {
        std::printf("FAIL: a variant escaped per-unit containment\n");
        ok = false;
    }

    // Determinism under misbehaviour: byte-identical merged reports
    // for a crashing variant across shard counts...
    std::string reference_report;
    bool identical = true;
    for (u32 shards : {1u, 2u, 4u}) {
        const CampaignResult crash = run_campaign(
            misbehaving_campaign("backend-crash", shards, options));
        if (!crash.complete)
            identical = false;
        if (shards == 1)
            reference_report = crash.report();
        else if (crash.report() != reference_report)
            identical = false;
    }
    std::printf("crash-variant reports byte-identical across "
                "1/2/4 shards: %s\n",
                identical ? "yes" : "NO");
    ok = ok && identical;

    // ...and across an interrupted + resumed campaign of a hanging
    // variant (every hang is caught by the per-run watchdog, so the
    // quarantine ledger must survive the checkpoint round trip).
    bool resume_identical = false;
    {
        const CampaignResult whole = run_campaign(
            misbehaving_campaign("backend-hang", 2, options));

        const std::filesystem::path dir = scratch_dir("resume");
        CampaignOptions interrupted =
            misbehaving_campaign("backend-hang", 2, options);
        interrupted.checkpoint_dir = dir.string();
        interrupted.explore_slice_units = 1;
        interrupted.execute_slice_tests = 4;
        interrupted.max_sessions_per_shard = 1;
        const CampaignResult first = run_campaign(interrupted);

        interrupted.max_sessions_per_shard = 0;
        interrupted.resume = true;
        const CampaignResult resumed = run_campaign(interrupted);
        resume_identical = !first.complete && resumed.complete &&
            resumed.report() == whole.report();
        std::filesystem::remove_all(dir);
    }
    std::printf("hang-variant report identical after interruption + "
                "resume: %s\n",
                resume_identical ? "yes" : "NO");
    ok = ok && resume_identical;

    {
        std::FILE *out = std::fopen("BENCH_defects.json", "w");
        if (out == nullptr) {
            std::fprintf(stderr, "cannot write BENCH_defects.json\n");
            return 1;
        }
        std::fprintf(out, "{\n  \"bench\": \"defects\",\n");
        std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
        std::fprintf(out, "  \"shard_reports_identical\": %s,\n",
                     identical ? "true" : "false");
        std::fprintf(out, "  \"resume_report_identical\": %s,\n",
                     resume_identical ? "true" : "false");
        defects::write_matrix_json(out, result);
        std::fprintf(out, "\n}\n");
        std::fclose(out);
    }
    std::printf("wrote BENCH_defects.json\n");
    return ok ? 0 : 1;
}
