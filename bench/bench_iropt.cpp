/**
 * @file
 * IR-optimizer bench: optimize instruction semantics across the table
 * and measure what the optimizer buys, emitting BENCH_iropt.json.
 *
 * Three measurements:
 *  - statement reduction: executable-statement counts before/after
 *    optimization, summed over the workload (the headline % that
 *    EXPERIMENTS.md quotes);
 *  - concrete replay wall-clock: every program is interpreted from
 *    many deterministic pseudo-random initial states, original vs
 *    optimized (the OptMode::On stage-4 speedup, isolated from the
 *    rest of the pipeline);
 *  - translation validation wall-clock: the OptMode::Validated cost of
 *    proving each (original, optimized) pair with the solver, plus the
 *    failure count.
 *
 * The smoke ctest run gates the optimizer contract: strictly positive
 * statement reduction over the workload, byte-identical replay outputs
 * on every sampled state, and zero validation failures.
 *
 * Scale knobs: POKEEMU_INSNS (workload stride cap; default full
 * table), POKEEMU_STATES (replay states per program).
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "analysis/equiv.h"
#include "analysis/optimize.h"
#include "arch/decoder.h"
#include "bench_common.h"
#include "explore/state_spec.h"
#include "harness/filter.h"
#include "hifi/semantics.h"
#include "ir/eval.h"
#include "testgen/testgen.h"

using namespace pokeemu;
namespace E = ir::E;
namespace layout = arch::layout;

namespace {

double
seconds_since(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Deterministic hashed initial state with a write overlay; same seed
 *  => same initial bytes, so overlays compare program outputs. ECX is
 *  pinned small so rep-prefixed programs terminate. */
class HashedMemory final : public ir::ConcreteMemory
{
  public:
    explicit HashedMemory(u64 seed) : seed_(seed) {}

    u64 load(u32 addr, unsigned size) override
    {
        u64 v = 0;
        for (unsigned i = 0; i < size; ++i)
            v |= static_cast<u64>(byte(addr + i)) << (8 * i);
        return v;
    }

    void store(u32 addr, unsigned size, u64 value) override
    {
        for (unsigned i = 0; i < size; ++i)
            written_[addr + i] = static_cast<u8>(value >> (8 * i));
    }

    const std::map<u32, u8> &written() const { return written_; }

  private:
    u8 byte(u32 addr) const
    {
        const auto it = written_.find(addr);
        if (it != written_.end())
            return it->second;
        const u32 ecx = layout::gpr_addr(1);
        if (addr == ecx)
            return mix(addr) & 3;
        if (addr > ecx && addr < ecx + 4)
            return 0;
        return mix(addr);
    }

    u8 mix(u32 addr) const
    {
        u64 x = seed_ ^
            (static_cast<u64>(addr) * 0x9e3779b97f4a7c15ULL);
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdULL;
        x ^= x >> 33;
        return static_cast<u8>(x);
    }

    u64 seed_;
    std::map<u32, u8> written_;
};

struct Unit
{
    int index = 0;
    ir::Program original;
    ir::Program optimized;
};

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }

    bench::header("bench_iropt",
                  "IR optimization + translation validation (§7 "
                  "equivalence checking, aimed inward)");

    const int table_size = static_cast<int>(arch::insn_table().size());
    const int stride = smoke ? 8 : 1;
    const u64 states =
        bench::env_u64("POKEEMU_STATES", smoke ? 64 : 256);
    const u64 max_insns =
        bench::env_u64("POKEEMU_INSNS", static_cast<u64>(table_size));

    symexec::VarPool summary_pool;
    const symexec::Summary summary =
        hifi::summarize_descriptor_load(summary_pool);
    const explore::StateSpec spec(testgen::baseline_cpu_state(),
                                  testgen::baseline_ram_after_init(),
                                  &summary);

    // Phase 1: optimize the workload and sum the statement stats.
    std::vector<Unit> units;
    u64 exec_before = 0;
    u64 exec_after = 0;
    double t_optimize = 0;
    for (int i = 0; i < table_size && units.size() < max_insns;
         i += stride) {
        const std::vector<u8> bytes = arch::canonical_encoding(i);
        arch::DecodedInsn insn;
        if (arch::decode(bytes.data(), bytes.size(), insn) !=
            arch::DecodeStatus::Ok) {
            continue;
        }
        hifi::SemanticsOptions sem_options;
        sem_options.descriptor_summary = &summary;
        Unit u;
        u.index = i;
        u.original = hifi::build_semantics(insn, sem_options);
        const auto t0 = std::chrono::steady_clock::now();
        analysis::OptResult r = analysis::optimize_program(u.original);
        t_optimize += seconds_since(t0);
        exec_before += r.stats.exec_before;
        exec_after += r.stats.exec_after;
        u.optimized = std::move(r.program);
        units.push_back(std::move(u));
    }
    const double reduction_pct = exec_before == 0
        ? 0.0
        : 100.0 *
            (1.0 -
             static_cast<double>(exec_after) /
                 static_cast<double>(exec_before));
    std::printf("workload: %zu programs, %llu -> %llu executable "
                "statements (%.1f%% reduction), optimize %.3fs\n",
                units.size(),
                static_cast<unsigned long long>(exec_before),
                static_cast<unsigned long long>(exec_after),
                reduction_pct, t_optimize);

    // Phase 2: concrete replay, original vs optimized, with a
    // byte-for-byte output cross-check on every state.
    u64 replay_mismatches = 0;
    u64 steps_original = 0;
    u64 steps_optimized = 0;
    double t_replay_off = 0;
    double t_replay_on = 0;
    for (const Unit &u : units) {
        for (u64 seed = 0; seed < states; ++seed) {
            HashedMemory ma(seed);
            auto t0 = std::chrono::steady_clock::now();
            const ir::RunResult ra = ir::run_concrete(u.original, ma);
            t_replay_off += seconds_since(t0);
            steps_original += ra.steps;

            HashedMemory mb(seed);
            t0 = std::chrono::steady_clock::now();
            const ir::RunResult rb =
                ir::run_concrete(u.optimized, mb);
            t_replay_on += seconds_since(t0);
            steps_optimized += rb.steps;

            const bool agree = ra.status == rb.status &&
                (ra.status != ir::RunStatus::Halted ||
                 ra.halt_code == rb.halt_code) &&
                ma.written() == mb.written();
            if (!agree) {
                ++replay_mismatches;
                std::printf("MISMATCH: insn %d seed %llu\n", u.index,
                            static_cast<unsigned long long>(seed));
            }
        }
    }
    const double speedup =
        t_replay_on == 0 ? 0.0 : t_replay_off / t_replay_on;
    std::printf("replay: %llu states/program, %.3fs original vs "
                "%.3fs optimized (%.2fx), steps %llu -> %llu, "
                "%llu mismatches\n",
                static_cast<unsigned long long>(states), t_replay_off,
                t_replay_on, speedup,
                static_cast<unsigned long long>(steps_original),
                static_cast<unsigned long long>(steps_optimized),
                static_cast<unsigned long long>(replay_mismatches));

    // Phase 3: translation validation (the OptMode::Validated cost).
    u64 validated = 0;
    u64 proven = 0;
    u64 validation_failures = 0;
    const auto tv = std::chrono::steady_clock::now();
    for (const Unit &u : units) {
        const arch::InsnDesc &desc = arch::insn_table()[u.index];
        symexec::VarPool pool;
        analysis::EquivOptions eq;
        eq.preconditions = spec.preconditions(pool);
        eq.eflags_addr = layout::kEflagsAddr;
        eq.eflags_ignore_mask = harness::undefined_flags_mask(desc.op);
        const symexec::InitialByteFn initial = spec.initial_fn(pool);
        const std::vector<u8> bytes = arch::canonical_encoding(u.index);
        arch::DecodedInsn insn;
        (void)arch::decode(bytes.data(), bytes.size(), insn);
        if (insn.rep || insn.repne) {
            const u32 ecx = layout::gpr_addr(1);
            for (u32 k = 1; k < 4; ++k) {
                eq.preconditions.push_back(
                    E::eq(initial(ecx + k), E::constant(8, 0)));
            }
            eq.preconditions.push_back(
                E::ule(initial(ecx), E::constant(8, 2)));
        }
        const analysis::EquivResult res =
            analysis::validate_translation(u.original, u.optimized,
                                           pool, initial, eq);
        ++validated;
        proven += res.equivalent && res.proven;
        validation_failures += !res.equivalent;
    }
    const double t_validation = seconds_since(tv);
    std::printf("validation: %llu programs, %llu proven, %llu "
                "failures, %.3fs (%.1f ms/program)\n",
                static_cast<unsigned long long>(validated),
                static_cast<unsigned long long>(proven),
                static_cast<unsigned long long>(validation_failures),
                t_validation,
                units.empty()
                    ? 0.0
                    : 1000.0 * t_validation /
                        static_cast<double>(units.size()));

    const bool ok = exec_after < exec_before &&
        replay_mismatches == 0 && validation_failures == 0;

    {
        std::FILE *out = std::fopen("BENCH_iropt.json", "w");
        if (out == nullptr) {
            std::fprintf(stderr, "cannot write BENCH_iropt.json\n");
            return 1;
        }
        std::fprintf(out, "{\n  \"bench\": \"iropt\",\n");
        std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
        std::fprintf(out, "  \"programs\": %zu,\n", units.size());
        std::fprintf(out, "  \"exec_before\": %llu,\n",
                     static_cast<unsigned long long>(exec_before));
        std::fprintf(out, "  \"exec_after\": %llu,\n",
                     static_cast<unsigned long long>(exec_after));
        std::fprintf(out, "  \"reduction_pct\": %.2f,\n", reduction_pct);
        std::fprintf(out, "  \"optimize_seconds\": %.6f,\n", t_optimize);
        std::fprintf(out, "  \"replay_states_per_program\": %llu,\n",
                     static_cast<unsigned long long>(states));
        std::fprintf(out, "  \"replay_seconds_original\": %.6f,\n",
                     t_replay_off);
        std::fprintf(out, "  \"replay_seconds_optimized\": %.6f,\n",
                     t_replay_on);
        std::fprintf(out, "  \"replay_speedup\": %.3f,\n", speedup);
        std::fprintf(out, "  \"replay_steps_original\": %llu,\n",
                     static_cast<unsigned long long>(steps_original));
        std::fprintf(out, "  \"replay_steps_optimized\": %llu,\n",
                     static_cast<unsigned long long>(steps_optimized));
        std::fprintf(out, "  \"replay_mismatches\": %llu,\n",
                     static_cast<unsigned long long>(replay_mismatches));
        std::fprintf(out, "  \"validated\": %llu,\n",
                     static_cast<unsigned long long>(validated));
        std::fprintf(out, "  \"proven\": %llu,\n",
                     static_cast<unsigned long long>(proven));
        std::fprintf(out, "  \"validation_failures\": %llu,\n",
                     static_cast<unsigned long long>(validation_failures));
        std::fprintf(out, "  \"validation_seconds\": %.6f,\n",
                     t_validation);
        std::fprintf(out, "  \"ok\": %s\n}\n", ok ? "true" : "false");
        std::fclose(out);
    }
    std::printf("wrote BENCH_iropt.json\n");
    return ok ? 0 : 1;
}
