/**
 * @file
 * Tests for test-program generation (paper §4): Figure-5 shape,
 * gadget ordering, and — the key soundness property — that running the
 * generated initializer really drives the machine into the explored
 * test state.
 */
#include <gtest/gtest.h>

#include "arch/paging.h"
#include "backend/direct_cpu.h"
#include "explore/state_explorer.h"
#include "testgen/testgen.h"

namespace pokeemu::testgen {
namespace {

namespace layout = arch::layout;

arch::DecodedInsn
decode_insn(std::initializer_list<u8> bytes)
{
    std::vector<u8> buf(bytes);
    buf.resize(arch::kMaxInsnLength, 0);
    arch::DecodedInsn insn;
    EXPECT_EQ(arch::decode(buf.data(), buf.size(), insn),
              arch::DecodeStatus::Ok);
    return insn;
}

struct Env
{
    symexec::VarPool summary_pool;
    symexec::Summary summary;
    explore::StateSpec spec;

    Env()
        : summary(hifi::summarize_descriptor_load(summary_pool)),
          spec(baseline_cpu_state(), baseline_ram_after_init(),
               &summary)
    {
    }
};

Env &
env()
{
    static Env instance;
    return instance;
}

TEST(TestGen, EmptyStateYieldsBareTest)
{
    // An assignment equal to the baseline needs no gadgets at all.
    const arch::DecodedInsn insn = decode_insn({0x90}); // nop
    symexec::VarPool pool;
    solver::Assignment assignment; // Empty = baseline everywhere.
    const GenResult gen =
        generate_test_program(insn, assignment, env().spec, pool);
    ASSERT_EQ(gen.status, GenStatus::Ok);
    EXPECT_EQ(gen.program.gadget_count, 0u);
    EXPECT_EQ(gen.program.test_insn_offset, 0u);
    // nop + hlt.
    EXPECT_EQ(gen.program.code.size(), 2u);
}

TEST(TestGen, ProgramDecodesEndToEnd)
{
    // Whatever the gadgets emit must be a valid instruction stream.
    const arch::DecodedInsn insn = decode_insn({0x50});
    explore::StateExploreOptions options;
    options.max_paths = 32;
    explore::StateExploreResult r = explore_instruction(
        insn, env().spec, &env().summary, options);
    ASSERT_FALSE(r.paths.empty());
    for (const auto &path : r.paths) {
        const GenResult gen = generate_test_program(
            insn, path.assignment, env().spec, r.pool);
        ASSERT_EQ(gen.status, GenStatus::Ok);
        const auto &code = gen.program.code;
        std::size_t pos = 0;
        while (pos < code.size()) {
            u8 buf[arch::kMaxInsnLength] = {};
            std::copy_n(code.begin() + pos,
                        std::min<std::size_t>(arch::kMaxInsnLength,
                                              code.size() - pos),
                        buf);
            arch::DecodedInsn step;
            ASSERT_EQ(arch::decode(buf, sizeof buf, step),
                      arch::DecodeStatus::Ok)
                << "offset " << pos;
            pos += step.length;
        }
        EXPECT_EQ(pos, code.size());
    }
}

TEST(TestGen, GadgetOrderRespectsDependencies)
{
    // Force a state that needs: eflags, a GDT poke + SS reload, a PTE
    // poke, ESP, and EAX. Verify the emission order.
    const arch::DecodedInsn insn = decode_insn({0x50});
    symexec::VarPool pool;
    solver::Assignment assignment;
    // EFLAGS: set CF.
    assignment.set(pool.get("eflags_b0", 8)->var_id(),
                   testgen::kBaselineEflags | arch::kFlagCf);
    // GDT entry 10, byte 5: flip a type bit (stays loadable data RW).
    assignment.set(pool.get("gdt10_b5", 8)->var_id(), 0x97);
    // PTE 0: clear present (poke must come after the GDT write).
    assignment.set(pool.get("pte_00000000", 8)->var_id(), 0x66);
    // ESP and EAX.
    const u32 esp_val = 0x002007dc; // The paper's Figure 5 value.
    for (unsigned i = 0; i < 4; ++i) {
        assignment.set(
            pool.get("gpr_esp_b" + std::to_string(i), 8)->var_id(),
            (esp_val >> (8 * i)) & 0xff);
        assignment.set(
            pool.get("gpr_eax_b" + std::to_string(i), 8)->var_id(),
            0);
    }

    const GenResult gen =
        generate_test_program(insn, assignment, env().spec, pool);
    ASSERT_EQ(gen.status, GenStatus::Ok);
    const auto &lst = gen.program.listing;
    auto find_line = [&](const std::string &needle) {
        for (std::size_t i = 0; i < lst.size(); ++i) {
            if (lst[i].find(needle) != std::string::npos)
                return static_cast<int>(i);
        }
        return -1;
    };
    const int popfd = find_line("eflags");
    const int gdt_poke = find_line("0x00008055");
    const int reload = find_line("mov ss");
    const int pte = find_line("(pte)");
    const int esp = find_line("mov esp");
    const int eax = find_line("restore killed eax");
    const int test = find_line("the test instruction");
    ASSERT_GE(popfd, 0);
    ASSERT_GE(gdt_poke, 0);
    ASSERT_GE(reload, 0);
    ASSERT_GE(pte, 0);
    ASSERT_GE(esp, 0);
    ASSERT_GE(eax, 0);
    ASSERT_GE(test, 0);
    // Figure-5 ordering constraints (paper §4.2): the GDT bytes are
    // written before the reload that consumes them; the flags gadget
    // uses the baseline stack so it precedes the PTE poke; the PTE
    // poke is DS-relative, so it precedes the reload that may give DS
    // a non-flat explored descriptor; EAX is restored last, just
    // before the test instruction.
    EXPECT_LT(popfd, pte);
    EXPECT_LT(gdt_poke, pte);
    EXPECT_LT(pte, reload);
    EXPECT_LT(esp, eax);
    EXPECT_LT(eax, test);
}

TEST(TestGen, InitializerReachesTheExploredState)
{
    // The soundness property behind the whole pipeline: truncate each
    // generated program just before the test instruction, run it on
    // the hardware oracle, and check that every located variable's
    // value matches the (minimized) test state.
    const std::vector<arch::DecodedInsn> insns = {
        decode_insn({0x50}),             // push eax
        decode_insn({0xcf}),             // iret
        decode_insn({0x0f, 0xb4, 0x03}), // lfs
        decode_insn({0x01, 0x08}),       // add [eax], ecx
    };
    u64 checked_tests = 0, checked_vars = 0, skipped = 0;
    for (const arch::DecodedInsn &insn : insns) {
        explore::StateExploreOptions options;
        options.max_paths = 24;
        explore::StateExploreResult r = explore_instruction(
            insn, env().spec, &env().summary, options);
        for (const auto &path : r.paths) {
            const GenResult gen = generate_test_program(
                insn, path.assignment, env().spec, r.pool);
            ASSERT_EQ(gen.status, GenStatus::Ok);

            // Replace the test instruction with hlt.
            std::vector<u8> code(
                gen.program.code.begin(),
                gen.program.code.begin() +
                    gen.program.test_insn_offset);
            code.push_back(0xf4);

            backend::DirectCpu hw(backend::hardware_behavior());
            hw.reset(make_reset_state(), make_test_image(code));
            if (hw.run(1024) != backend::StopReason::Halted) {
                ++skipped; // Degenerate state (e.g. unmapped stack).
                continue;
            }
            const arch::Snapshot snap = hw.snapshot();
            u8 image[layout::kCpuStateSize];
            arch::pack_cpu_state(snap.cpu, image);

            ++checked_tests;
            for (const auto &var : r.pool.all()) {
                const auto loc = env().spec.locate(var->name());
                if (!loc)
                    continue;
                // Segment caches and EIP change as side effects of the
                // initializer itself; check the directly-settable
                // state: GPRs, EFLAGS, CRs, MSRs, RAM bytes.
                u8 actual;
                if (loc->kind == explore::VarLocation::Kind::CpuByte) {
                    if (loc->addr >= layout::kOffSeg &&
                        loc->addr < layout::kOffSeg +
                                        arch::kNumSegs *
                                            layout::kSegStride) {
                        continue;
                    }
                    actual = image[loc->addr];
                } else {
                    // Page-table A/D bits change under the
                    // initializer's own accesses; mask them out.
                    actual = snap.ram[loc->addr];
                    if (loc->addr >= layout::kPhysPageDir &&
                        loc->addr <
                            layout::kPhysPageTable + 0x1000) {
                        actual &= ~(arch::kPteAccessed |
                                    arch::kPteDirty);
                    }
                }
                u8 expected = static_cast<u8>(
                    path.assignment.get(var->var_id()) & loc->mask);
                const u8 baseline_bits =
                    (loc->kind == explore::VarLocation::Kind::CpuByte
                         ? [&] {
                               u8 base[layout::kCpuStateSize];
                               arch::pack_cpu_state(
                                   env().spec.baseline_cpu(), base);
                               return base[loc->addr];
                           }()
                         : env().spec.baseline_ram()[loc->addr]) &
                    ~loc->mask;
                expected |= baseline_bits;
                if (loc->kind == explore::VarLocation::Kind::RamByte &&
                    loc->addr >= layout::kPhysPageDir &&
                    loc->addr < layout::kPhysPageTable + 0x1000) {
                    expected &=
                        ~(arch::kPteAccessed | arch::kPteDirty);
                }
                EXPECT_EQ(actual, expected)
                    << var->name() << " for "
                    << arch::to_string(insn) << "\n"
                    << gen.program.to_string();
                ++checked_vars;
            }
        }
    }
    std::printf("[ info ] checked_tests=%llu checked_vars=%llu "
                "skipped=%llu\n",
                static_cast<unsigned long long>(checked_tests),
                static_cast<unsigned long long>(checked_vars),
                static_cast<unsigned long long>(skipped));
    EXPECT_GT(checked_tests, 10u);
    EXPECT_GT(checked_vars, 1000u);
}

TEST(TestGen, OversizedStateFailsGracefully)
{
    // Constrain every GDT byte and thousands of memory bytes: the
    // initializer exceeds the test-code page and generation reports
    // TooLarge instead of corrupting memory.
    const arch::DecodedInsn insn = decode_insn({0x90});
    symexec::VarPool pool;
    solver::Assignment assignment;
    for (unsigned i = 0; i < 700; ++i) {
        char name[32];
        std::snprintf(name, sizeof name, "mem_%08x", 0x00300000 + i);
        assignment.set(pool.get(name, 8)->var_id(), 0xaa);
    }
    const GenResult gen =
        generate_test_program(insn, assignment, env().spec, pool);
    EXPECT_EQ(gen.status, GenStatus::TooLarge);
}

} // namespace
} // namespace pokeemu::testgen
