/**
 * @file
 * Tests for the abstract-interpretation dataflow engine (analysis/
 * domains + analysis/dataflow) and its three consumers: transfer
 * functions and the over-approximation property, fixpoint behaviour on
 * straight-line and looping programs, static pruning of explorer
 * solver probes, the derived EFLAGS write oracle, and the dataflow-
 * backed lint passes.
 */
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/dataflow.h"
#include "analysis/domains.h"
#include "analysis/passes.h"
#include "ir/builder.h"
#include "support/rng.h"
#include "symexec/explorer.h"

namespace pokeemu::analysis {
namespace {

using ir::BinOpKind;
using ir::ExprRef;
using ir::IrBuilder;
using ir::Label;
using ir::UnOpKind;
using pokeemu::Rng;
namespace E = ir::E;

// ---------------------------------------------------------------------
// Fact domain: constructors, normalize, join/meet, decide.
// ---------------------------------------------------------------------

TEST(FactDomain, ConstantRoundTrip)
{
    const Fact f = Fact::constant(32, 0xdeadbeef);
    EXPECT_TRUE(f.is_constant());
    EXPECT_EQ(f.value(), 0xdeadbeefu);
    EXPECT_TRUE(f.contains(0xdeadbeef));
    EXPECT_FALSE(f.contains(0xdeadbee0));
}

TEST(FactDomain, NormalizeDerivesIntervalFromKnownBits)
{
    // Bit 7 known one, everything else unknown: lo must be >= 0x80.
    const Fact f = Fact::known(8, 0, 0x80).normalize();
    EXPECT_GE(f.lo, 0x80u);
    EXPECT_EQ(f.hi, 0xffu);
    EXPECT_FALSE(f.contains(0x7f));
    EXPECT_TRUE(f.contains(0x80));
}

TEST(FactDomain, NormalizeDerivesKnownBitsFromInterval)
{
    // [0x80, 0xff]: the shared leading bit becomes known one.
    const Fact f = Fact::range(8, 0x80, 0xff).normalize();
    EXPECT_NE(f.ones & 0x80u, 0u);
}

TEST(FactDomain, MeetContradictionIsBottom)
{
    const Fact a = Fact::constant(8, 3);
    const Fact b = Fact::constant(8, 4);
    EXPECT_TRUE(a.meet(b).bottom);
}

TEST(FactDomain, JoinContainsBothSides)
{
    const Fact j = Fact::constant(8, 3).join(Fact::constant(8, 12));
    EXPECT_TRUE(j.contains(3));
    EXPECT_TRUE(j.contains(12));
    EXPECT_FALSE(j.bottom);
}

TEST(FactDomain, DecideOneBit)
{
    EXPECT_EQ(Fact::constant(1, 1).decide(), std::optional<bool>(true));
    EXPECT_EQ(Fact::constant(1, 0).decide(), std::optional<bool>(false));
    EXPECT_EQ(Fact::top(1).decide(), std::nullopt);
}

// ---------------------------------------------------------------------
// Transfer functions.
// ---------------------------------------------------------------------

TEST(FactTransfer, ConstantsFoldThroughEveryBinop)
{
    const Fact a = Fact::constant(32, 100);
    const Fact b = Fact::constant(32, 7);
    EXPECT_EQ(Fact::binop(BinOpKind::Add, a, b).value(), 107u);
    EXPECT_EQ(Fact::binop(BinOpKind::Sub, a, b).value(), 93u);
    EXPECT_EQ(Fact::binop(BinOpKind::Mul, a, b).value(), 700u);
    EXPECT_EQ(Fact::binop(BinOpKind::And, a, b).value(), 100u & 7u);
    EXPECT_EQ(Fact::binop(BinOpKind::Or, a, b).value(), 100u | 7u);
    EXPECT_EQ(Fact::binop(BinOpKind::Xor, a, b).value(), 100u ^ 7u);
    EXPECT_EQ(Fact::binop(BinOpKind::Shl, a, b).value(), 100u << 7);
    EXPECT_EQ(Fact::binop(BinOpKind::LShr, a, b).value(), 100u >> 7);
    EXPECT_EQ(Fact::binop(BinOpKind::ULt, b, a).value(), 1u);
    EXPECT_EQ(Fact::binop(BinOpKind::Eq, a, a).value(), 1u);
}

TEST(FactTransfer, IntervalAddPropagatesBounds)
{
    const Fact a = Fact::range(32, 10, 20);
    const Fact b = Fact::range(32, 1, 2);
    const Fact s = Fact::binop(BinOpKind::Add, a, b);
    EXPECT_TRUE(s.contains(11));
    EXPECT_TRUE(s.contains(22));
    EXPECT_FALSE(s.contains(10));
    EXPECT_FALSE(s.contains(23));
}

TEST(FactTransfer, KnownZeroBitsSurviveAnd)
{
    // Low nibble known zero, AND with anything keeps it zero.
    const Fact a = Fact::known(8, 0x0f, 0);
    const Fact r = Fact::binop(BinOpKind::And, a, Fact::top(8));
    EXPECT_EQ(r.zeros & 0x0fu, 0x0fu);
}

TEST(FactTransfer, ComparisonDecidedByDisjointIntervals)
{
    const Fact lo = Fact::range(32, 0, 9);
    const Fact hi = Fact::range(32, 100, 200);
    EXPECT_EQ(Fact::binop(BinOpKind::ULt, lo, hi).decide(),
              std::optional<bool>(true));
    EXPECT_EQ(Fact::binop(BinOpKind::ULt, hi, lo).decide(),
              std::optional<bool>(false));
    EXPECT_EQ(Fact::binop(BinOpKind::Eq, lo, hi).decide(),
              std::optional<bool>(false));
}

TEST(FactTransfer, WidthCasts)
{
    EXPECT_EQ(Fact::zext_to(Fact::constant(8, 0xff), 32).value(), 0xffu);
    EXPECT_EQ(Fact::sext_to(Fact::constant(8, 0x80), 32).value(),
              0xffffff80u);
    EXPECT_EQ(Fact::sext_to(Fact::constant(8, 0x7f), 32).value(), 0x7fu);
    EXPECT_EQ(Fact::extract_from(Fact::constant(32, 0xabcd), 8, 8)
                  .value(),
              0xabu);
    // Zext keeps interval bounds.
    const Fact z = Fact::zext_to(Fact::range(8, 3, 5), 32);
    EXPECT_TRUE(z.contains(3) && z.contains(5));
    EXPECT_FALSE(z.contains(6));
}

TEST(FactTransfer, FlagBitExtraction)
{
    // Bit 7 known one: extracting it yields constant 1; bit 0 unknown.
    const Fact f = Fact::known(32, 0, 0x80);
    EXPECT_EQ(Fact::extract_from(f, 7, 1).decide(),
              std::optional<bool>(true));
    EXPECT_EQ(Fact::extract_from(f, 0, 1).decide(), std::nullopt);
}

TEST(FactTransfer, UnopsFoldConstants)
{
    EXPECT_EQ(Fact::unop(UnOpKind::Not, Fact::constant(8, 0x0f)).value(),
              0xf0u);
    EXPECT_EQ(Fact::unop(UnOpKind::Neg, Fact::constant(8, 1)).value(),
              0xffu);
}

TEST(FactTransfer, IteJoinsArmsUnderUnknownCondition)
{
    const Fact r = Fact::ite(Fact::top(1), Fact::constant(8, 3),
                             Fact::constant(8, 9));
    EXPECT_TRUE(r.contains(3) && r.contains(9));
    const Fact t = Fact::ite(Fact::constant(1, 1), Fact::constant(8, 3),
                             Fact::constant(8, 9));
    EXPECT_EQ(t.value(), 3u);
}

// ---------------------------------------------------------------------
// FactEnv: assume mining and memoized evaluation.
// ---------------------------------------------------------------------

TEST(FactEnv, AssumeMinesEqualityAndBounds)
{
    const ExprRef x = E::var(1, "x", 32);
    const ExprRef y = E::var(2, "y", 32);
    FactEnv env;
    env.assume(E::eq(x, E::constant(32, 42)));
    env.assume(E::ult(y, E::constant(32, 10)));
    EXPECT_EQ(env.eval(x).value(), 42u);
    const Fact fy = env.eval(y);
    EXPECT_TRUE(fy.contains(9));
    EXPECT_FALSE(fy.contains(10));
}

TEST(FactEnv, AssumeMinesConjunctionsAndBitShapes)
{
    const ExprRef x = E::var(1, "x", 32);
    const ExprRef y = E::var(2, "y", 32);
    FactEnv env;
    env.assume(E::land(
        E::eq(E::band(x, E::constant(32, 0xff)), E::constant(32, 0x80)),
        E::ule(y, E::constant(32, 5))));
    // Low byte of x pinned to 0x80.
    EXPECT_EQ(env.eval(E::band(x, E::constant(32, 0xff))).value(), 0x80u);
    EXPECT_FALSE(env.eval(y).contains(6));
}

TEST(FactEnv, EvalCombinesVarFactsThroughExpressions)
{
    const ExprRef x = E::var(1, "x", 32);
    FactEnv env;
    env.assume(E::ult(x, E::constant(32, 10)));
    // x < 10 implies x + 5 < 15 and (x < 20) decides true.
    const Fact sum = env.eval(E::add(x, E::constant(32, 5)));
    EXPECT_FALSE(sum.contains(15));
    EXPECT_EQ(env.eval(E::ult(x, E::constant(32, 20))).decide(),
              std::optional<bool>(true));
}

// ---------------------------------------------------------------------
// Over-approximation property: for random expressions and concrete
// valuations consistent with the environment, the evaluated fact
// contains the concrete value (the soundness contract in domains.h).
// ---------------------------------------------------------------------

ExprRef
random_expr(Rng &rng, const std::vector<ExprRef> &vars, unsigned depth)
{
    if (depth == 0 || rng.below(4) == 0) {
        if (rng.below(2) == 0)
            return vars[rng.below(vars.size())];
        return E::constant(32, rng.next() & 0xffffffffu);
    }
    const ExprRef a = random_expr(rng, vars, depth - 1);
    const ExprRef b = random_expr(rng, vars, depth - 1);
    switch (rng.below(12)) {
      case 0: return E::add(a, b);
      case 1: return E::sub(a, b);
      case 2: return E::mul(a, b);
      case 3: return E::band(a, b);
      case 4: return E::bor(a, b);
      case 5: return E::bxor(a, b);
      case 6: return E::shl(a, E::constant(32, rng.below(32)));
      case 7: return E::lshr(a, E::constant(32, rng.below(32)));
      case 8: return E::bnot(a);
      case 9: return E::zext(E::extract(a, rng.below(24), 8), 32);
      case 10: return E::sext(E::extract(a, rng.below(24), 8), 32);
      default: return E::ite(E::ult(a, b), a, b);
    }
}

TEST(FactEnv, EvalOverApproximatesConcreteEvaluation)
{
    const std::vector<ExprRef> vars = {
        E::var(1, "a", 32), E::var(2, "b", 32), E::var(3, "c", 32)};
    Rng rng(0x5eed);
    for (int round = 0; round < 300; ++round) {
        FactEnv env;
        // Var 1 interval-bounded, var 2 with known-zero low bits,
        // var 3 unconstrained.
        env.assume(E::ult(vars[0], E::constant(32, 1000)));
        env.assume(E::eq(E::band(vars[1], E::constant(32, 0xf)),
                         E::constant(32, 0)));
        const u64 va = rng.below(1000);
        const u64 vb = (rng.next() & 0xffffffffu) & ~u64{0xf};
        const u64 vc = rng.next() & 0xffffffffu;
        const ExprRef e = random_expr(rng, vars, 4);
        const Fact fact = env.eval(e);
        const std::function<u64(const ir::Expr &)> lookup =
            [&](const ir::Expr &leaf) -> u64 {
            switch (leaf.var_id()) {
              case 1: return va;
              case 2: return vb;
              default: return vc;
            }
        };
        const u64 concrete = ir::eval_expr(e, &lookup);
        ASSERT_TRUE(fact.contains(concrete))
            << "round " << round << ": fact " << fact.to_string()
            << " omits " << concrete;
    }
}

// ---------------------------------------------------------------------
// analyze_program: decisions, reachability, write summaries, loops.
// ---------------------------------------------------------------------

TEST(Dataflow, AssumeImpliedBranchIsDecided)
{
    // Single-byte load: the value is one analysis variable, so the
    // assume is minable for an interval fact (a multi-byte load is a
    // concat of byte variables, beyond the assume miner).
    IrBuilder b("decided");
    const ExprRef x = b.load(IrBuilder::imm32(0x1000), 1);
    b.assume(E::ult(x, IrBuilder::imm8(10)));
    Label t = b.label(), f = b.label();
    b.cjmp(E::ult(x, IrBuilder::imm8(20)), t, f);
    b.bind(t);
    b.halt(1);
    b.bind(f);
    b.halt(2);
    const ir::Program p = b.finish();

    const Cfg cfg = Cfg::build(p);
    const ProgramFacts facts = analyze_program(p, cfg);
    ASSERT_TRUE(facts.analyzed);
    EXPECT_TRUE(facts.converged);
    EXPECT_EQ(facts.decided_cjmps, 1u);
    bool saw = false;
    for (u32 i = 0; i < p.stmts.size(); ++i) {
        if (p.stmts[i].kind != ir::StmtKind::CJmp)
            continue;
        EXPECT_EQ(facts.decision(i), Decision::AlwaysTrue);
        saw = true;
    }
    EXPECT_TRUE(saw);
}

TEST(Dataflow, ReachabilityRefinedThroughDecidedBranch)
{
    IrBuilder b("dead-arm");
    const ExprRef x = b.load(IrBuilder::imm32(0x1000), 1);
    b.assume(E::ult(x, IrBuilder::imm8(10)));
    Label t = b.label(), f = b.label();
    b.cjmp(E::ult(x, IrBuilder::imm8(20)), t, f);
    b.bind(f);
    b.store(IrBuilder::imm32(0x3000), 4, IrBuilder::imm32(1));
    b.halt(2);
    b.bind(t);
    b.halt(1);
    const ir::Program p = b.finish();

    const Cfg cfg = Cfg::build(p);
    const ProgramFacts facts = analyze_program(p, cfg);
    ASSERT_TRUE(facts.analyzed);
    // The false arm's store never runs: not a may-write, statement
    // unreachable under the facts though the CFG reaches it.
    EXPECT_FALSE(facts.writes.may_write(0x3000));
    bool dead_block_found = false;
    for (BlockId blk = 0; blk < cfg.blocks().size(); ++blk) {
        if (cfg.reachable(blk) && !facts.block_reachable[blk])
            dead_block_found = true;
    }
    EXPECT_TRUE(dead_block_found);
}

TEST(Dataflow, WriteSummaryMayVersusMust)
{
    IrBuilder b("writes");
    const ExprRef x = b.load(IrBuilder::imm32(0x1000), 4);
    Label t = b.label(), f = b.label(), join = b.label();
    b.cjmp(E::ult(x, IrBuilder::imm32(10)), t, f);
    b.bind(t);
    b.store(IrBuilder::imm32(0x2000), 4, IrBuilder::imm32(1));
    b.store(IrBuilder::imm32(0x3000), 4, IrBuilder::imm32(2));
    b.jmp(join);
    b.bind(f);
    b.store(IrBuilder::imm32(0x2000), 4, IrBuilder::imm32(3));
    b.jmp(join);
    b.bind(join);
    b.halt(0);
    const ir::Program p = b.finish();

    const ProgramFacts facts = analyze_program(p, Cfg::build(p));
    ASSERT_TRUE(facts.analyzed);
    EXPECT_TRUE(facts.writes.must_write(0x2000));
    EXPECT_TRUE(facts.writes.may_write(0x3000));
    EXPECT_FALSE(facts.writes.must_write(0x3000));
    EXPECT_FALSE(facts.writes.may_write(0x4000));
}

/** A counting loop: i goes 0,1,..,4 through memory cell 0x2000. */
ir::Program
loop_program()
{
    IrBuilder b("loop");
    b.store(IrBuilder::imm32(0x2000), 4, IrBuilder::imm32(0));
    Label head = b.label(), body = b.label(), exit_l = b.label();
    b.bind(head);
    const ExprRef i = b.load(IrBuilder::imm32(0x2000), 4);
    b.cjmp(E::ult(i, IrBuilder::imm32(5)), body, exit_l);
    b.bind(body);
    b.store(IrBuilder::imm32(0x2000), 4,
            E::add(i, IrBuilder::imm32(1)));
    b.jmp(head);
    b.bind(exit_l);
    b.halt(0);
    return b.finish();
}

TEST(Dataflow, LoopConvergesViaWidening)
{
    const ir::Program p = loop_program();
    const ProgramFacts facts = analyze_program(p, Cfg::build(p));
    ASSERT_TRUE(facts.analyzed);
    EXPECT_TRUE(facts.converged);
    // The loop-carried branch is cycle-tainted: no decision reported
    // even though individual iterations would decide it.
    for (u32 i = 0; i < p.stmts.size(); ++i)
        EXPECT_EQ(facts.decision(i), Decision::Unknown) << "stmt " << i;
    EXPECT_TRUE(facts.writes.may_write(0x2000));
}

// ---------------------------------------------------------------------
// Explorer pruning: decided probes skip solver queries without
// changing the explored path set, in any PruneMode.
// ---------------------------------------------------------------------

/**
 * One genuinely symbolic branch plus one assume-implied (decided)
 * branch per arm: pruning has queries to skip on every path while real
 * exploration still happens.
 */
ir::Program
prunable_program()
{
    IrBuilder b("prunable");
    const ExprRef x = b.load(IrBuilder::imm32(0x1000), 1);
    b.assume(E::ult(x, IrBuilder::imm8(100)));
    Label lo = b.label(), hi = b.label();
    b.cjmp(E::ult(x, IrBuilder::imm8(50)), lo, hi);
    b.bind(lo);
    {
        Label t = b.label(), f = b.label();
        b.cjmp(E::ult(x, IrBuilder::imm8(200)), t, f); // Decided true.
        b.bind(f);
        b.halt(3);
        b.bind(t);
        b.halt(1);
    }
    b.bind(hi);
    {
        Label t = b.label(), f = b.label();
        b.cjmp(E::ult(x, IrBuilder::imm8(250)), t, f); // Decided true.
        b.bind(f);
        b.halt(4);
        b.bind(t);
        b.halt(2);
    }
    return b.finish();
}

struct PruneRun
{
    std::vector<u32> halt_codes; ///< In completion order.
    symexec::ExploreStats stats;
};

PruneRun
explore_with(const ir::Program &p, const ProgramFacts *facts,
             PruneMode mode)
{
    symexec::VarPool pool;
    symexec::InitialByteFn init = [&pool](u32 addr) -> ExprRef {
        if (addr >= 0x1000 && addr < 0x1004) {
            char name[32];
            std::snprintf(name, sizeof name, "mem_%08x", addr);
            return pool.get(name, 8);
        }
        return E::constant(8, 0);
    };
    symexec::ExplorerConfig config;
    config.seed = 7;
    config.facts = facts;
    config.prune = mode;
    symexec::PathExplorer ex(p, pool, init, config);
    PruneRun run;
    run.stats = ex.explore(
        [&](const symexec::PathInfo &info, symexec::SymbolicMemory &) {
            run.halt_codes.push_back(info.halt_code);
        });
    return run;
}

TEST(ExplorerPruning, DecidedProbesSkipQueriesWithoutChangingPaths)
{
    const ir::Program p = prunable_program();
    const ProgramFacts facts = analyze_program(p, Cfg::build(p));
    ASSERT_TRUE(facts.analyzed);
    ASSERT_EQ(facts.decided_cjmps, 2u);

    const PruneRun off = explore_with(p, &facts, PruneMode::Off);
    const PruneRun on = explore_with(p, &facts, PruneMode::On);
    const PruneRun cross = explore_with(p, &facts, PruneMode::CrossCheck);

    // Identical path sets, in identical order, in every mode.
    EXPECT_EQ(off.halt_codes, on.halt_codes);
    EXPECT_EQ(off.halt_codes, cross.halt_codes);
    EXPECT_EQ(std::set<u32>(off.halt_codes.begin(),
                            off.halt_codes.end()),
              (std::set<u32>{1, 2}));

    // Off answers every probe with the solver; On skips the decided
    // ones. The sum is the invariant the reports print.
    EXPECT_EQ(off.stats.solver_queries_avoided, 0u);
    EXPECT_GT(on.stats.solver_queries_avoided, 0u);
    EXPECT_EQ(off.stats.solver_queries,
              on.stats.solver_queries + on.stats.solver_queries_avoided);
    EXPECT_LT(on.stats.solver_queries, off.stats.solver_queries);

    // CrossCheck validates every skipped probe on the side solver and
    // matches On on the main stream.
    EXPECT_EQ(cross.stats.solver_queries, on.stats.solver_queries);
    EXPECT_EQ(cross.stats.solver_queries_avoided,
              on.stats.solver_queries_avoided);
    EXPECT_EQ(cross.stats.crosscheck_queries,
              cross.stats.solver_queries_avoided);
    EXPECT_EQ(on.stats.crosscheck_queries, 0u);

    // static_decisions reports the facts' property in every mode.
    EXPECT_EQ(off.stats.static_decisions, on.stats.static_decisions);
    EXPECT_GT(on.stats.static_decisions, 0u);
}

TEST(ExplorerPruning, NoFactsMeansNoSkips)
{
    const ir::Program p = prunable_program();
    const PruneRun bare = explore_with(p, nullptr, PruneMode::On);
    EXPECT_EQ(bare.stats.solver_queries_avoided, 0u);
    EXPECT_EQ(bare.stats.static_decisions, 0u);
    EXPECT_EQ(std::set<u32>(bare.halt_codes.begin(),
                            bare.halt_codes.end()),
              (std::set<u32>{1, 2}));
}

// ---------------------------------------------------------------------
// flag_write_summary: written / conditionally-kept / untouched bits.
// ---------------------------------------------------------------------

TEST(FlagOracle, ClassifiesWrittenKeptAndUntouched)
{
    constexpr u32 kFlags = 0x100;
    // CF (bit 0) written on every completing path; ZF (bit 6) written
    // on one arm only (kept on the other); everything else untouched.
    IrBuilder b("flags");
    const ExprRef fl = b.load(IrBuilder::imm32(kFlags), 4);
    const ExprRef x = b.load(IrBuilder::imm32(0x1000), 4);
    const ExprRef cf_set =
        E::bor(E::band(fl, IrBuilder::imm32(~u64{1} & 0xffffffff)),
               IrBuilder::imm32(1));
    Label t = b.label(), f = b.label();
    b.cjmp(E::ult(x, IrBuilder::imm32(10)), t, f);
    b.bind(t);
    b.store(IrBuilder::imm32(kFlags), 4,
            E::bor(E::band(cf_set,
                           IrBuilder::imm32(~u64{0x40} & 0xffffffff)),
                   IrBuilder::imm32(0x40)));
    b.halt(0);
    b.bind(f);
    b.store(IrBuilder::imm32(kFlags), 4, cf_set);
    b.halt(0);
    const ir::Program p = b.finish();

    const FlagSummary s = flag_write_summary(p, kFlags);
    ASSERT_TRUE(s.analyzed);
    EXPECT_FALSE(s.capped);
    EXPECT_EQ(s.ok_exits, 2u);
    EXPECT_EQ(s.must & 0x1u, 0x1u);  // CF on every path.
    EXPECT_EQ(s.may & 0x40u, 0x40u); // ZF on some path...
    EXPECT_EQ(s.must & 0x40u, 0u);   // ...but not every path.
    EXPECT_EQ(s.may & 0x4u, 0u);     // PF untouched.
}

TEST(FlagOracle, ConditionalKeepViaIteIsMayNotMust)
{
    constexpr u32 kFlags = 0x100;
    // The shift-instruction shape: ite(count == 0, old CF, computed).
    IrBuilder b("ite-keep");
    const ExprRef fl = b.load(IrBuilder::imm32(kFlags), 4);
    const ExprRef count = b.load(IrBuilder::imm32(0x1000), 4);
    const ExprRef old_cf = E::extract(fl, 0, 1);
    const ExprRef kept = E::ite(E::eq(count, IrBuilder::imm32(0)),
                                old_cf, E::extract(count, 3, 1));
    b.store(IrBuilder::imm32(kFlags), 4,
            E::bor(E::band(fl, IrBuilder::imm32(~u64{1} & 0xffffffff)),
                   E::zext(kept, 32)));
    b.halt(0);
    const ir::Program p = b.finish();

    const FlagSummary s = flag_write_summary(p, kFlags);
    ASSERT_TRUE(s.analyzed);
    EXPECT_EQ(s.may & 0x1u, 0x1u);
    EXPECT_EQ(s.must & 0x1u, 0u);
}

TEST(FlagOracle, NoCompletingExitCaps)
{
    IrBuilder b("never-ok");
    b.halt(5);
    const FlagSummary s = flag_write_summary(b.finish(), 0x100);
    EXPECT_TRUE(s.analyzed);
    EXPECT_TRUE(s.capped);
    EXPECT_EQ(s.ok_exits, 0u);
}

// ---------------------------------------------------------------------
// Dataflow-backed lint passes and suppression markers.
// ---------------------------------------------------------------------

TEST(DataflowLint, ConstBranchWarns)
{
    IrBuilder b("const-branch");
    const ExprRef x = b.load(IrBuilder::imm32(0x1000), 1);
    b.assume(E::ult(x, IrBuilder::imm8(10)));
    Label t = b.label(), f = b.label();
    b.cjmp(E::ult(x, IrBuilder::imm8(20)), t, f);
    b.bind(t);
    b.halt(1);
    b.bind(f);
    b.halt(2);
    const Report report = run_pipeline(b.finish());
    bool found = false;
    for (const Diagnostic &d : report.diagnostics())
        if (d.pass == "const-branch" &&
            d.severity == Severity::Warning &&
            d.message.find("always true") != std::string::npos)
            found = true;
    EXPECT_TRUE(found) << report.to_string();
}

TEST(DataflowLint, ConstBranchSuppressedByMarkerNote)
{
    IrBuilder b("const-branch-allowed");
    const ExprRef x = b.load(IrBuilder::imm32(0x1000), 1);
    b.assume(E::ult(x, IrBuilder::imm8(10)));
    Label t = b.label(), f = b.label();
    b.cjmp(E::ult(x, IrBuilder::imm8(20)), t, f,
           "known; lint: allow-const-branch");
    b.bind(t);
    b.halt(1);
    b.bind(f);
    b.halt(2);
    const Report report = run_pipeline(b.finish());
    for (const Diagnostic &d : report.diagnostics())
        EXPECT_NE(d.pass, "const-branch") << d.to_string();
}

TEST(DataflowLint, RedundantAssumeNotesAndUnsatisfiableWarns)
{
    IrBuilder b("assumes");
    const ExprRef x = b.load(IrBuilder::imm32(0x1000), 1);
    b.assume(E::ult(x, IrBuilder::imm8(10)));
    b.assume(E::ult(x, IrBuilder::imm8(20))); // Implied: note.
    b.assume(E::eq(x, IrBuilder::imm8(15)));  // Contradicts: warning.
    b.halt(0);
    const Report report = run_pipeline(b.finish());
    bool note = false, warning = false;
    for (const Diagnostic &d : report.diagnostics()) {
        if (d.pass != "redundant-assume")
            continue;
        note = note || d.severity == Severity::Note;
        warning = warning || d.severity == Severity::Warning;
    }
    EXPECT_TRUE(note) << report.to_string();
    EXPECT_TRUE(warning) << report.to_string();
}

TEST(DataflowLint, DataflowUnreachableWarnsAtRegionEntryOnly)
{
    IrBuilder b("df-unreachable");
    const ExprRef x = b.load(IrBuilder::imm32(0x1000), 1);
    b.assume(E::ult(x, IrBuilder::imm8(10)));
    Label t = b.label(), f = b.label(), deeper = b.label();
    b.cjmp(E::ult(x, IrBuilder::imm8(20)), t, f);
    b.bind(f); // Dead region entry...
    b.store(IrBuilder::imm32(0x2000), 4, IrBuilder::imm32(1));
    b.jmp(deeper);
    b.bind(deeper); // ...and its interior: no second warning.
    b.halt(2);
    b.bind(t);
    b.halt(1);
    const Report report = run_pipeline(b.finish());
    std::size_t warnings = 0;
    for (const Diagnostic &d : report.diagnostics())
        if (d.pass == "dataflow-unreachable")
            ++warnings;
    EXPECT_EQ(warnings, 1u) << report.to_string();
}

TEST(DataflowLint, SuppressionMarkerInCommentAboveApplies)
{
    IrBuilder b("comment-marker");
    const ExprRef x = b.load(IrBuilder::imm32(0x1000), 1);
    b.assume(E::ult(x, IrBuilder::imm8(10)));
    Label t = b.label(), f = b.label();
    b.cjmp(E::ult(x, IrBuilder::imm8(20)), t, f);
    b.bind(f);
    b.comment("dead by construction; lint: allow-dataflow-unreachable");
    b.halt(2);
    b.bind(t);
    b.halt(1);
    const Report report = run_pipeline(b.finish());
    for (const Diagnostic &d : report.diagnostics())
        EXPECT_NE(d.pass, "dataflow-unreachable") << d.to_string();
}

TEST(DataflowLint, CrossBlockDeadStoreWarns)
{
    // The first store is overwritten on *both* arms before any read:
    // dead across blocks, which the within-block scan cannot see.
    IrBuilder b("dead-store");
    const ExprRef x = b.load(IrBuilder::imm32(0x1000), 4);
    b.store(IrBuilder::imm32(0x2000), 4, IrBuilder::imm32(1));
    Label t = b.label(), f = b.label(), join = b.label();
    b.cjmp(E::ult(x, IrBuilder::imm32(10)), t, f);
    b.bind(t);
    b.store(IrBuilder::imm32(0x2000), 4, IrBuilder::imm32(2));
    b.jmp(join);
    b.bind(f);
    b.store(IrBuilder::imm32(0x2000), 4, IrBuilder::imm32(3));
    b.jmp(join);
    b.bind(join);
    b.halt(0);
    const Report report = run_pipeline(b.finish());
    bool found = false;
    for (const Diagnostic &d : report.diagnostics())
        if (d.severity == Severity::Warning &&
            d.message.find("dead store") != std::string::npos)
            found = true;
    EXPECT_TRUE(found) << report.to_string();
}

TEST(DataflowLint, LoadOnOneArmKeepsStoreAlive)
{
    IrBuilder b("live-store");
    const ExprRef x = b.load(IrBuilder::imm32(0x1000), 4);
    b.store(IrBuilder::imm32(0x2000), 4, IrBuilder::imm32(1));
    Label t = b.label(), f = b.label(), join = b.label();
    b.cjmp(E::ult(x, IrBuilder::imm32(10)), t, f);
    b.bind(t);
    // This arm reads the stored value before overwriting it.
    const ExprRef v = b.load(IrBuilder::imm32(0x2000), 4);
    b.store(IrBuilder::imm32(0x3000), 4, v);
    b.jmp(join);
    b.bind(f);
    b.store(IrBuilder::imm32(0x2000), 4, IrBuilder::imm32(3));
    b.jmp(join);
    b.bind(join);
    b.halt(0);
    const Report report = run_pipeline(b.finish());
    for (const Diagnostic &d : report.diagnostics())
        EXPECT_EQ(d.message.find("dead store"), std::string::npos)
            << d.to_string();
}

TEST(DataflowLint, LintAllowedChecksOwnNoteAndCommentRun)
{
    IrBuilder b("allowed");
    b.comment("first; lint: allow-alpha");
    b.comment("second");
    b.store(IrBuilder::imm32(0x2000), 4, IrBuilder::imm32(1),
            "lint: allow-beta");
    b.halt(0);
    const ir::Program p = b.finish();
    // Find the store statement.
    u32 store_idx = 0;
    for (u32 i = 0; i < p.stmts.size(); ++i)
        if (p.stmts[i].kind == ir::StmtKind::Store)
            store_idx = i;
    EXPECT_TRUE(lint_allowed(p, store_idx, "beta"));  // Own note.
    EXPECT_TRUE(lint_allowed(p, store_idx, "alpha")); // Comment run.
    EXPECT_FALSE(lint_allowed(p, store_idx, "gamma"));
}

} // namespace
} // namespace pokeemu::analysis
