/**
 * @file
 * Cross-cutting property tests:
 *  - solver soundness on random expression trees (a model returned for
 *    a satisfiable query must evaluate the constraints to true);
 *  - a parameterized per-instruction differential sweep: every table
 *    row is executed with randomized state on the Hi-Fi emulator and
 *    the (aligned) hardware model, and the final snapshots must agree.
 */
#include <gtest/gtest.h>

#include "arch/paging.h"
#include "backend/direct_cpu.h"
#include "hifi/hifi_emulator.h"
#include "solver/solver.h"
#include "support/rng.h"
#include "testgen/baseline.h"

namespace pokeemu {
namespace {

namespace layout = arch::layout;
namespace E = ir::E;

/** Random expression-tree generator over a fixed variable set. */
ir::ExprRef
random_expr(Rng &rng, const std::vector<ir::ExprRef> &vars,
            unsigned depth)
{
    if (depth == 0 || rng.below(4) == 0) {
        if (rng.flip())
            return vars[rng.below(vars.size())];
        return E::constant(vars[0]->width(),
                           rng.next());
    }
    const ir::BinOpKind ops[] = {
        ir::BinOpKind::Add, ir::BinOpKind::Sub, ir::BinOpKind::Mul,
        ir::BinOpKind::And, ir::BinOpKind::Or, ir::BinOpKind::Xor,
        ir::BinOpKind::Shl, ir::BinOpKind::LShr, ir::BinOpKind::AShr,
    };
    switch (rng.below(4)) {
      case 0: {
        auto a = random_expr(rng, vars, depth - 1);
        return rng.flip() ? E::bnot(a) : E::neg(a);
      }
      case 1: {
        auto a = random_expr(rng, vars, depth - 1);
        const unsigned w = a->width();
        const unsigned lo = static_cast<unsigned>(rng.below(w));
        const unsigned width =
            1 + static_cast<unsigned>(rng.below(w - lo));
        auto ex = E::extract(a, lo, width);
        return E::zext(ex, w); // Back to uniform width.
      }
      case 2: {
        auto c = E::eq(random_expr(rng, vars, depth - 1),
                       random_expr(rng, vars, depth - 1));
        return E::ite(c, random_expr(rng, vars, depth - 1),
                      random_expr(rng, vars, depth - 1));
      }
      default:
        return E::binop(ops[rng.below(std::size(ops))],
                        random_expr(rng, vars, depth - 1),
                        random_expr(rng, vars, depth - 1));
    }
}

TEST(SolverSoundness, ModelsSatisfyRandomConstraints)
{
    Rng rng(0xfeed);
    for (int trial = 0; trial < 120; ++trial) {
        const unsigned width = trial % 2 ? 16 : 8;
        std::vector<ir::ExprRef> vars = {
            E::var(1, "p", width),
            E::var(2, "q", width),
            E::var(3, "r", width),
        };
        auto lhs = random_expr(rng, vars, 4);
        auto rhs = random_expr(rng, vars, 4);
        // Constrain lhs == value-of-lhs-under-random-assignment: that
        // is satisfiable by construction.
        solver::Assignment witness;
        witness.set(1, rng.next());
        witness.set(2, rng.next());
        witness.set(3, rng.next());
        const u64 value = witness.eval(lhs);
        std::vector<ir::ExprRef> conds = {
            E::eq(lhs, E::constant(width, value)),
        };
        // Optionally add an extra relation; keep it satisfiable by
        // evaluating it too.
        const u64 rv = witness.eval(rhs);
        conds.push_back(E::eq(rhs, E::constant(width, rv)));

        solver::Solver solver;
        ASSERT_EQ(solver.check(conds), solver::CheckResult::Sat)
            << "trial " << trial;
        // The returned model must itself satisfy the constraints.
        solver::Assignment model;
        for (const auto &v : vars)
            model.set(v->var_id(), solver.model_value(v));
        EXPECT_TRUE(model.satisfies(conds)) << "trial " << trial;
    }
}

TEST(SolverSoundness, UnsatNegationOfTautology)
{
    Rng rng(0xbead);
    for (int trial = 0; trial < 60; ++trial) {
        std::vector<ir::ExprRef> vars = {
            E::var(1, "p", 8),
            E::var(2, "q", 8),
        };
        auto e = random_expr(rng, vars, 3);
        // (e ^ e) == 0 is a tautology; its negation must be UNSAT.
        auto taut = E::eq(E::bxor(e, e), E::constant(8, 0));
        solver::Solver solver;
        EXPECT_EQ(solver.check({E::lnot(taut)}),
                  solver::CheckResult::Unsat)
            << "trial " << trial;
    }
}

// ---------------------------------------------------------------------
// Per-instruction differential sweep.
// ---------------------------------------------------------------------

struct SweepCase
{
    int table_index;
};

class InstructionSweep : public ::testing::TestWithParam<int>
{
  protected:
    static hifi::HiFiEmulator &
    hifi_emu()
    {
        static hifi::HiFiEmulator emu({false, nullptr});
        return emu;
    }

    static backend::DirectCpu &
    hw_cpu()
    {
        static backend::DirectCpu cpu([] {
            backend::Behavior b = backend::hardware_behavior();
            b.shift_clears_af = true;
            return b;
        }());
        return cpu;
    }
};

TEST_P(InstructionSweep, HiFiMatchesHardwareOnRandomStates)
{
    const int index = GetParam();
    const std::vector<u8> bytes = arch::canonical_encoding(index);
    arch::DecodedInsn insn;
    ASSERT_EQ(arch::decode(bytes.data(), bytes.size(), insn),
              arch::DecodeStatus::Ok);

    Rng rng(0x5eed ^ static_cast<u64>(index));
    for (int trial = 0; trial < 3; ++trial) {
        arch::CpuState start = testgen::baseline_cpu_state();
        std::vector<u8> image = testgen::baseline_ram_after_init();
        for (unsigned r = 0; r < arch::kNumGprs; ++r) {
            start.gpr[r] = rng.flip()
                ? static_cast<u32>(rng.next())
                : static_cast<u32>(rng.below(0x400000));
        }
        start.eflags =
            (start.eflags & ~0xcd5u) |
            (static_cast<u32>(rng.next()) & 0xcd5);
        // Occasionally poke descriptor/page-table state so the
        // protection paths are exercised too.
        if (rng.below(3) == 0) {
            image[layout::kPhysGdt + 8 * 2 + 5] =
                static_cast<u8>(rng.next() | 0x10);
        }
        if (rng.below(3) == 0) {
            image[layout::kPhysPageTable +
                  4 * (rng.next() & 0x3ff)] &= ~arch::kPtePresent;
        }
        std::copy(bytes.begin(), bytes.begin() + insn.length,
                  image.begin() + layout::kPhysTestCode);
        image[layout::kPhysTestCode + insn.length] = 0xf4;

        hifi_emu().reset(start, image);
        hifi_emu().run(8);
        hw_cpu().reset(start, image);
        hw_cpu().run(8);
        const auto diff = arch::diff_snapshots(hifi_emu().snapshot(),
                                               hw_cpu().snapshot());
        EXPECT_TRUE(diff.empty())
            << arch::to_string(insn) << " trial " << trial << "\n"
            << diff.to_string();
    }
}

std::vector<int>
all_table_indices()
{
    std::vector<int> out;
    for (std::size_t i = 0; i < arch::insn_table().size(); ++i)
        out.push_back(static_cast<int>(i));
    return out;
}

INSTANTIATE_TEST_SUITE_P(
    AllInstructions, InstructionSweep,
    ::testing::ValuesIn(all_table_indices()),
    [](const ::testing::TestParamInfo<int> &info) {
        const auto &d = arch::insn_table()[info.param];
        std::string name = std::to_string(info.param);
        name += "_";
        name += d.mnemonic;
        for (auto &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

} // namespace
} // namespace pokeemu
