/**
 * @file
 * Unit tests for the fault-isolation layer: Deadline budgets,
 * Guarded/try_run containment, deterministic fault injection, the
 * quarantine ledger, checkpoint serialization, and the per-site
 * fault-injection matrix over a small pipeline (each injectable site,
 * asserting which stage quarantines and what survives).
 */
#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "harness/runner.h"
#include "pokeemu/pipeline.h"
#include "support/fault.h"
#include "testgen/testgen.h"

namespace pokeemu {
namespace {

using support::Deadline;
using support::FaultClass;
using support::FaultError;
using support::FaultInjector;
using support::FaultPlan;
using support::FaultSite;
using support::Stage;

// ---------------------------------------------------------------------
// Deadline.
// ---------------------------------------------------------------------

TEST(Deadline, DefaultIsUnlimited)
{
    Deadline d;
    EXPECT_FALSE(d.limited());
    for (int i = 0; i < 1000; ++i)
        EXPECT_FALSE(d.consume());
    EXPECT_FALSE(d.expired());
}

TEST(Deadline, StepBudgetExpiresDeterministically)
{
    Deadline d = Deadline::steps(10);
    EXPECT_TRUE(d.limited());
    for (int i = 0; i < 10; ++i)
        EXPECT_FALSE(d.consume()) << "step " << i;
    EXPECT_TRUE(d.consume());
    EXPECT_TRUE(d.expired());
    EXPECT_EQ(d.steps_used(), 11u);
}

TEST(Deadline, ZeroMillisecondsExpiresImmediately)
{
    Deadline d = Deadline::after_ms(0);
    EXPECT_TRUE(d.limited());
    EXPECT_TRUE(d.expired());
    EXPECT_TRUE(d.consume()); // First consume samples the wall clock.
}

TEST(Deadline, WithZeroZeroIsUnlimited)
{
    Deadline d = Deadline::with(0, 0);
    EXPECT_FALSE(d.limited());
    EXPECT_FALSE(d.consume(1u << 20));
}

// ---------------------------------------------------------------------
// Guarded / try_run.
// ---------------------------------------------------------------------

TEST(TryRun, CapturesValue)
{
    auto g = support::try_run([] { return 41 + 1; });
    ASSERT_TRUE(g.ok());
    EXPECT_EQ(*g, 42);
}

TEST(TryRun, CapturesFaultErrorWithClass)
{
    auto g = support::try_run([]() -> int {
        throw FaultError(FaultClass::SolverTimeout, "too slow");
    });
    EXPECT_FALSE(g.ok());
    EXPECT_EQ(g.cls, FaultClass::SolverTimeout);
    EXPECT_EQ(g.message, "too slow");
}

TEST(TryRun, ClassifiesForeignExceptionsAsInternal)
{
    auto g = support::try_run(
        []() -> int { throw std::logic_error("pokeemu panic: oops"); });
    EXPECT_FALSE(g.ok());
    EXPECT_EQ(g.cls, FaultClass::Internal);
}

// ---------------------------------------------------------------------
// FaultInjector.
// ---------------------------------------------------------------------

TEST(FaultInjector, DisabledByDefault)
{
    FaultInjector inj;
    EXPECT_FALSE(inj.enabled());
    for (int i = 0; i < 100; ++i)
        EXPECT_NO_THROW(inj.maybe_fail(FaultSite::SolverQuery, "x"));
    EXPECT_EQ(inj.total_injected(), 0u);
}

TEST(FaultInjector, CertainFaultAlwaysThrowsInjected)
{
    FaultInjector inj(FaultPlan::only(FaultSite::Generation, 1.0));
    try {
        inj.maybe_fail(FaultSite::Generation, "here");
        FAIL() << "expected FaultError";
    } catch (const FaultError &e) {
        EXPECT_EQ(e.fault_class(), FaultClass::Injected);
    }
    EXPECT_EQ(inj.injected(FaultSite::Generation), 1u);
    EXPECT_EQ(inj.occurrences(FaultSite::Generation), 1u);
}

TEST(FaultInjector, DisarmedSiteNeverFails)
{
    // only() arms exactly one site; the others see occurrences but
    // never fault even at probability 1.
    FaultInjector inj(FaultPlan::only(FaultSite::Generation, 1.0));
    for (int i = 0; i < 50; ++i)
        EXPECT_NO_THROW(inj.maybe_fail(FaultSite::BackendHw, "x"));
    EXPECT_EQ(inj.occurrences(FaultSite::BackendHw), 50u);
    EXPECT_EQ(inj.injected(FaultSite::BackendHw), 0u);
}

/** Which occurrence indices of @p site fault under @p plan. */
std::vector<int>
faulting_occurrences(const FaultPlan &plan, FaultSite site, int n)
{
    FaultInjector inj(plan);
    std::vector<int> out;
    for (int i = 0; i < n; ++i) {
        try {
            inj.maybe_fail(site, "probe");
        } catch (const FaultError &) {
            out.push_back(i);
        }
    }
    return out;
}

TEST(FaultInjector, StreamsAreDeterministicAndSeedDependent)
{
    FaultPlan plan;
    plan.probability = 0.2;
    plan.seed = 7;
    const auto a =
        faulting_occurrences(plan, FaultSite::Exploration, 200);
    const auto b =
        faulting_occurrences(plan, FaultSite::Exploration, 200);
    EXPECT_EQ(a, b) << "same seed must fault the same occurrences";
    EXPECT_FALSE(a.empty());
    EXPECT_LT(a.size(), 200u);

    plan.seed = 8;
    const auto c =
        faulting_occurrences(plan, FaultSite::Exploration, 200);
    EXPECT_NE(a, c) << "different seed must pick different occurrences";
}

TEST(FaultInjector, StreamsArePerSiteIndependent)
{
    // Interleaving other sites' occurrences must not shift a site's
    // stream: occurrence i of site s always draws the same hash.
    FaultPlan plan;
    plan.probability = 0.2;
    plan.seed = 3;
    const auto pure =
        faulting_occurrences(plan, FaultSite::BackendLoFi, 100);

    FaultInjector inj(plan);
    std::vector<int> interleaved;
    for (int i = 0; i < 100; ++i) {
        try {
            inj.maybe_fail(FaultSite::SolverQuery, "noise");
        } catch (const FaultError &) {
        }
        try {
            inj.maybe_fail(FaultSite::BackendLoFi, "probe");
        } catch (const FaultError &) {
            interleaved.push_back(i);
        }
    }
    EXPECT_EQ(pure, interleaved);
}

TEST(FaultInjector, UnitKeyedDecisionsIgnoreOccurrenceOrder)
{
    // key_by_unit hashes the `where` string: the verdict for a unit is
    // the same no matter how many occurrences preceded it — the
    // property that makes chaos plans reproducible across shard
    // layouts and resumed sessions.
    FaultPlan plan;
    plan.probability = 0.5;
    plan.seed = 9;
    plan.key_by_unit = true;

    const auto fails = [&](FaultInjector &inj, const std::string &w) {
        try {
            inj.maybe_fail(FaultSite::Exploration, w);
            return false;
        } catch (const FaultError &) {
            return true;
        }
    };

    std::vector<std::string> units;
    for (int i = 0; i < 64; ++i)
        units.push_back("insn " + std::to_string(i));

    FaultInjector forward(plan);
    FaultInjector backward(plan);
    std::map<std::string, bool> verdict_fwd, verdict_bwd;
    for (const std::string &u : units)
        verdict_fwd[u] = fails(forward, u);
    for (auto it = units.rbegin(); it != units.rend(); ++it)
        verdict_bwd[*it] = fails(backward, *it);
    EXPECT_EQ(verdict_fwd, verdict_bwd);

    // Both verdicts occur at p=0.5 over 64 units (overwhelmingly).
    bool any_fail = false, any_pass = false;
    for (const auto &[unit, failed] : verdict_fwd) {
        any_fail |= failed;
        any_pass |= !failed;
    }
    EXPECT_TRUE(any_fail);
    EXPECT_TRUE(any_pass);

    // Re-asking about the same unit repeats its verdict.
    FaultInjector again(plan);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(fails(again, "insn 0"), verdict_fwd["insn 0"]);
}

TEST(FaultInjector, UnitKeyedMessageOmitsOccurrenceNumber)
{
    // The injected message must be occurrence-free so a resumed
    // session's re-attempt dedups against the persisted ledger entry.
    FaultPlan plan = FaultPlan::only(FaultSite::Exploration, 1.0, 1);
    plan.key_by_unit = true;
    FaultInjector inj(plan);
    std::string first, second;
    try {
        inj.maybe_fail(FaultSite::Exploration, "insn 7 (iret)");
    } catch (const FaultError &e) {
        first = e.what();
    }
    try {
        inj.maybe_fail(FaultSite::Exploration, "insn 7 (iret)");
    } catch (const FaultError &e) {
        second = e.what();
    }
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
    EXPECT_EQ(first.find("occurrence"), std::string::npos);
    EXPECT_NE(first.find("insn 7 (iret)"), std::string::npos);
}

// ---------------------------------------------------------------------
// QuarantineReport.
// ---------------------------------------------------------------------

TEST(QuarantineReport, CountsByStageAndClass)
{
    support::QuarantineReport report;
    report.add(Stage::StateExploration, "insn 1",
               FaultClass::SolverTimeout, "m1");
    report.add(Stage::StateExploration, "insn 2", FaultClass::Decode,
               "m2");
    report.add(Stage::Execution, "test 9", FaultClass::Injected, "m3");
    EXPECT_EQ(report.total(), 3u);
    EXPECT_EQ(report.count(Stage::StateExploration), 2u);
    EXPECT_EQ(report.count(Stage::Execution), 1u);
    EXPECT_EQ(report.count(Stage::Generation), 0u);
    EXPECT_EQ(report.count(FaultClass::SolverTimeout), 1u);
    EXPECT_EQ(report.count(FaultClass::Internal), 0u);
    const std::string text = report.to_string();
    EXPECT_NE(text.find("insn 2"), std::string::npos);
    EXPECT_NE(text.find("solver-timeout"), std::string::npos);
}

// ---------------------------------------------------------------------
// Checkpoint serialization.
// ---------------------------------------------------------------------

Checkpoint
sample_checkpoint()
{
    Checkpoint cp;
    cp.fingerprint = 0xdeadbeefcafeULL;
    CheckpointUnit unit;
    unit.table_index = 50;
    unit.complete = true;
    unit.paths = 9;
    unit.solver_queries = 17;
    unit.solver_queries_avoided = 5;
    unit.minimize_bits_before = 300;
    unit.minimize_bits_after = 40;
    unit.generation_failures = 1;
    CheckpointTest test;
    test.id = 4;
    test.table_index = 50;
    test.test_insn_offset = 2;
    test.halt_code = 0xb0;
    test.code = {0x90, 0x90, 0x50, 0xf4};
    unit.tests.push_back(test);
    cp.explored.push_back(unit);
    cp.execution.executed_count = 1;
    cp.execution.tests_executed = 1;
    cp.execution.lofi_diffs = 1;
    cp.execution.lofi_raw_diffs = 1;
    arch::DecodedInsn insn;
    EXPECT_EQ(arch::decode(test.code.data() + 2, 2, insn),
              arch::DecodeStatus::Ok);
    cp.execution.lofi_clusters.add_named(4, insn, "test-cause");
    return cp;
}

TEST(Checkpoint, SaveLoadRoundTrip)
{
    const Checkpoint cp = sample_checkpoint();
    std::stringstream ss;
    save_checkpoint(ss, cp);
    const Checkpoint back = load_checkpoint(ss);

    EXPECT_EQ(back.fingerprint, cp.fingerprint);
    ASSERT_EQ(back.explored.size(), 1u);
    const CheckpointUnit &unit = back.explored[0];
    EXPECT_EQ(unit.table_index, 50);
    EXPECT_TRUE(unit.complete);
    EXPECT_FALSE(unit.budget_incomplete);
    EXPECT_EQ(unit.paths, 9u);
    EXPECT_EQ(unit.solver_queries, 17u);
    EXPECT_EQ(unit.solver_queries_avoided, 5u);
    EXPECT_EQ(unit.minimize_bits_before, 300u);
    EXPECT_EQ(unit.minimize_bits_after, 40u);
    EXPECT_EQ(unit.generation_failures, 1u);
    ASSERT_EQ(unit.tests.size(), 1u);
    EXPECT_EQ(unit.tests[0].id, 4u);
    EXPECT_EQ(unit.tests[0].test_insn_offset, 2u);
    EXPECT_EQ(unit.tests[0].halt_code, 0xb0u);
    EXPECT_EQ(unit.tests[0].code, cp.explored[0].tests[0].code);
    EXPECT_EQ(back.execution.executed_count, 1u);
    EXPECT_EQ(back.execution.lofi_diffs, 1u);
    ASSERT_EQ(back.execution.lofi_clusters.clusters().size(), 1u);
    EXPECT_EQ(back.execution.lofi_clusters.clusters()[0].root_cause,
              "test-cause");
    EXPECT_NE(back.find_unit(50), nullptr);
    EXPECT_EQ(back.find_unit(51), nullptr);
}

TEST(Checkpoint, MalformedInputRejected)
{
    const auto load_from = [](const std::string &text) {
        std::istringstream in(text);
        return load_checkpoint(in);
    };
    EXPECT_THROW(load_from(""), std::logic_error);
    EXPECT_THROW(load_from("not-a-checkpoint v9"), std::logic_error);
    // Truncated: header promises a unit that never follows.
    EXPECT_THROW(
        load_from("pokeemu-checkpoint-v1\nfingerprint 1\nexplored 1\n"),
        std::logic_error);

    // A valid stream with the trailing 'end' clipped off.
    std::stringstream ss;
    save_checkpoint(ss, sample_checkpoint());
    std::string text = ss.str();
    text.resize(text.rfind("end"));
    EXPECT_THROW(load_from(text), std::logic_error);
}

TEST(Checkpoint, OldVersionRefusedByName)
{
    // A v2 (or v1) header is a recognized-but-stale format: the error
    // must name the found version and the current one so the operator
    // knows to restart rather than suspect corruption.
    std::istringstream in("pokeemu-checkpoint-v2\nfingerprint 1\n");
    try {
        load_checkpoint(in);
        FAIL() << "expected refusal of v2 checkpoint";
    } catch (const std::logic_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("pokeemu-checkpoint-v2"), std::string::npos)
            << what;
        EXPECT_NE(what.find("pokeemu-checkpoint-v5"), std::string::npos)
            << what;
    }
}

TEST(Checkpoint, MissingFileIsNotAnError)
{
    EXPECT_FALSE(
        load_checkpoint_file("/nonexistent/path/pokeemu.cp"));
}

// ---------------------------------------------------------------------
// Oversized test programs are a quarantinable fault, not UB.
// ---------------------------------------------------------------------

TEST(Runner, OversizedTestProgramIsTypedFault)
{
    harness::TestRunner runner{harness::TestRunner::Config{}};
    harness::BackendRun run;
    const std::vector<u8> huge(testgen::kMaxTestProgramBytes + 1,
                               0x90);
    try {
        runner.run_one_into(harness::Backend::HiFi, huge, run);
        FAIL() << "expected FaultError";
    } catch (const FaultError &e) {
        EXPECT_EQ(e.fault_class(), FaultClass::Execution);
        EXPECT_NE(std::string(e.what()).find("exceeds"),
                  std::string::npos);
    }
}

// ---------------------------------------------------------------------
// Fault-injection matrix: each site, through the full pipeline.
// ---------------------------------------------------------------------

int
index_of(std::initializer_list<u8> bytes)
{
    std::vector<u8> buf(bytes);
    buf.resize(arch::kMaxInsnLength, 0);
    arch::DecodedInsn insn;
    EXPECT_EQ(arch::decode(buf.data(), buf.size(), insn),
              arch::DecodeStatus::Ok);
    return insn.table_index;
}

PipelineOptions
small_options()
{
    PipelineOptions options;
    options.instruction_filter = {
        index_of({0x50}),       // push eax
        index_of({0xc9}),       // leave
        index_of({0x74, 0x00}), // jz
    };
    options.max_paths_per_insn = 8;
    return options;
}

class FaultMatrix : public ::testing::Test
{
  protected:
    /** Fault-free reference run, shared across the matrix. */
    static const PipelineStats &
    reference()
    {
        static const PipelineStats stats = [] {
            Pipeline p(small_options());
            return p.run();
        }();
        return stats;
    }

    static std::size_t
    n_insns()
    {
        return small_options().instruction_filter.size();
    }
};

TEST_F(FaultMatrix, ReferenceIsFaultFree)
{
    EXPECT_EQ(reference().quarantine.total(), 0u);
    EXPECT_EQ(reference().instructions_explored, n_insns());
    EXPECT_GT(reference().test_programs, 0u);
}

/** Run the small pipeline with a single certain-fault site. */
PipelineStats
run_with_certain_fault(FaultSite site)
{
    PipelineOptions options = small_options();
    options.resilience.faults = FaultPlan::only(site, 1.0);
    Pipeline p(options);
    PipelineStats stats = p.run(); // Must not throw: containment.
    EXPECT_EQ(stats.quarantine.total(),
              p.injector().total_injected());
    for (const support::QuarantinedUnit &q : stats.quarantine.units())
        EXPECT_EQ(q.cls, FaultClass::Injected);
    return stats;
}

TEST_F(FaultMatrix, SolverQueryFaultsQuarantineExploration)
{
    const PipelineStats s =
        run_with_certain_fault(FaultSite::SolverQuery);
    // Every unit needs the solver, so every unit is quarantined at
    // the state-exploration stage; nothing reaches later stages.
    EXPECT_EQ(s.quarantine.count(Stage::StateExploration), n_insns());
    EXPECT_EQ(s.instructions_explored, 0u);
    EXPECT_EQ(s.test_programs, 0u);
    EXPECT_EQ(s.tests_executed, 0u);
}

TEST_F(FaultMatrix, ExplorationFaultsQuarantineWholeUnits)
{
    const PipelineStats s =
        run_with_certain_fault(FaultSite::Exploration);
    EXPECT_EQ(s.quarantine.count(Stage::StateExploration), n_insns());
    EXPECT_EQ(s.instructions_explored, 0u);
    EXPECT_EQ(s.test_programs, 0u);
}

TEST_F(FaultMatrix, GenerationFaultsQuarantinePathsOnly)
{
    const PipelineStats s =
        run_with_certain_fault(FaultSite::Generation);
    // Exploration itself is untouched; every path's generation is
    // quarantined individually.
    EXPECT_EQ(s.instructions_explored, n_insns());
    EXPECT_EQ(s.total_paths, reference().total_paths);
    EXPECT_EQ(s.quarantine.count(Stage::Generation),
              reference().total_paths);
    EXPECT_EQ(s.test_programs, 0u);
    EXPECT_EQ(s.tests_executed, 0u);
}

TEST_F(FaultMatrix, BackendFaultsQuarantineIndividualTests)
{
    for (const FaultSite site :
         {FaultSite::BackendHiFi, FaultSite::BackendLoFi,
          FaultSite::BackendHw}) {
        const PipelineStats s = run_with_certain_fault(site);
        // Stages 1-3 are untouched; every test's three-way execution
        // is quarantined.
        EXPECT_EQ(s.instructions_explored, n_insns());
        EXPECT_EQ(s.test_programs, reference().test_programs);
        EXPECT_EQ(s.quarantine.count(Stage::Execution),
                  reference().test_programs);
        EXPECT_EQ(s.tests_executed, 0u);
        EXPECT_EQ(s.lofi_diffs, 0u);
        EXPECT_EQ(s.hifi_diffs, 0u);
    }
}

TEST_F(FaultMatrix, PartialFaultsLeaveSurvivorsIntact)
{
    // Moderate exploration-fault rate: the quarantined and surviving
    // units must exactly partition the sweep, and survivors behave as
    // in the fault-free run (every surviving path still generates and
    // executes).
    PipelineOptions options = small_options();
    options.resilience.faults =
        FaultPlan::only(FaultSite::Exploration, 0.5, 11);
    Pipeline p(options);
    const PipelineStats &s = p.run();
    const u64 quarantined =
        s.quarantine.count(Stage::StateExploration);
    EXPECT_EQ(s.instructions_explored + quarantined, n_insns());
    EXPECT_LE(s.total_paths, reference().total_paths);
    EXPECT_EQ(s.test_programs + s.generation_failures, s.total_paths);
    EXPECT_EQ(s.tests_executed, s.test_programs);
}

// ---------------------------------------------------------------------
// Budgets through the pipeline.
// ---------------------------------------------------------------------

TEST(Budgets, SolverStepBudgetQuarantinesAsSolverTimeout)
{
    PipelineOptions options = small_options();
    options.resilience.budgets.solver_query_steps = 1;
    options.resilience.budgets.escalation = 1.0; // No retry.
    Pipeline p(options);
    const PipelineStats &s = p.run();
    EXPECT_EQ(s.quarantine.count(FaultClass::SolverTimeout),
              small_options().instruction_filter.size());
    EXPECT_EQ(s.budget_retries, 0u);
    EXPECT_EQ(s.instructions_explored, 0u);
}

TEST(Budgets, ExplorationStepBudgetDegradesGracefully)
{
    // A tiny exploration budget with no escalation: units keep the
    // paths they found (possibly zero) and are marked
    // budget-incomplete, never quarantined.
    PipelineOptions options = small_options();
    options.resilience.budgets.insn_exploration_steps = 5;
    options.resilience.budgets.escalation = 1.0;
    Pipeline p(options);
    const PipelineStats &s = p.run();
    EXPECT_EQ(s.quarantine.total(), 0u);
    EXPECT_EQ(s.budget_incomplete,
              small_options().instruction_filter.size());
    EXPECT_EQ(s.instructions_complete, 0u);
}

TEST_F(FaultMatrix, EscalationRetryRecoversSmallBudget)
{
    // 1x budget is too small, but the escalated retry is generous:
    // the run must match the unbudgeted reference, with the retries
    // counted.
    PipelineOptions options = small_options();
    options.resilience.budgets.insn_exploration_steps = 5;
    options.resilience.budgets.escalation = 1e6;
    Pipeline p(options);
    const PipelineStats &s = p.run();
    EXPECT_GT(s.budget_retries, 0u);
    EXPECT_EQ(s.budget_incomplete, 0u);
    EXPECT_EQ(s.quarantine.total(), 0u);
    EXPECT_EQ(s.instructions_explored,
              reference().instructions_explored);
    EXPECT_EQ(s.instructions_complete,
              reference().instructions_complete);
    EXPECT_EQ(s.total_paths, reference().total_paths);
    EXPECT_EQ(s.test_programs, reference().test_programs);
}

} // namespace
} // namespace pokeemu
