/**
 * @file
 * Sharded campaign driver tests (pokeemu/shard.h): the partition plan,
 * the byte-identical merged report across shard counts and scheduling
 * modes, quarantine merging, interrupt/resume fidelity, and the
 * manifest's refusal to mix incompatible layouts.
 */
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "arch/decoder.h"
#include "pokeemu/shard.h"

namespace pokeemu {
namespace {

int
index_of(std::initializer_list<u8> bytes)
{
    std::vector<u8> buf(bytes);
    buf.resize(arch::kMaxInsnLength, 0);
    arch::DecodedInsn insn;
    EXPECT_EQ(arch::decode(buf.data(), buf.size(), insn),
              arch::DecodeStatus::Ok);
    return insn.table_index;
}

/** The shared small workload: every test that compares reports uses
 *  exactly these options so one 1-shard reference serves them all. */
CampaignOptions
base_campaign()
{
    CampaignOptions options;
    options.pipeline.instruction_filter = {
        index_of({0x50}),       // push eax
        index_of({0xc9}),       // leave
        index_of({0x74, 0x00}), // jz
        index_of({0xd3, 0xe0}), // shl eax, cl
    };
    options.pipeline.max_paths_per_insn = 8;
    return options;
}

/** 1-shard reference report, computed once per process. */
const std::string &
reference_report()
{
    static const std::string report = [] {
        return run_campaign(base_campaign()).report();
    }();
    return report;
}

/** Fresh, empty scratch directory under the system temp dir. */
std::filesystem::path
scratch_dir(const std::string &name)
{
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("pokeemu_shard_" + name);
    std::filesystem::remove_all(dir);
    return dir;
}

TEST(ShardPlan, InterleavesByCampaignPosition)
{
    const std::vector<int> indices = {10, 11, 12, 13, 14};
    const ShardPlan plan = plan_shards(indices, 2);
    EXPECT_EQ(plan.campaign_order, indices);
    ASSERT_EQ(plan.assignments.size(), 2u);
    EXPECT_EQ(plan.assignments[0], (std::vector<int>{10, 12, 14}));
    EXPECT_EQ(plan.assignments[1], (std::vector<int>{11, 13}));
}

TEST(ShardPlan, MoreShardsThanWorkLeavesEmptyShards)
{
    const ShardPlan plan = plan_shards({7, 8}, 4);
    ASSERT_EQ(plan.assignments.size(), 4u);
    EXPECT_EQ(plan.assignments[0], std::vector<int>{7});
    EXPECT_EQ(plan.assignments[1], std::vector<int>{8});
    EXPECT_TRUE(plan.assignments[2].empty());
    EXPECT_TRUE(plan.assignments[3].empty());
}

TEST(ShardPlan, ZeroShardsThrows)
{
    EXPECT_THROW(plan_shards({1, 2}, 0), std::logic_error);
}

TEST(Campaign, ReportByteIdenticalAcrossShardCounts)
{
    // 8 > workload size also exercises empty shard workers.
    for (u32 shards : {2u, 4u, 8u}) {
        CampaignOptions options = base_campaign();
        options.shards = shards;
        const CampaignResult result = run_campaign(options);
        EXPECT_TRUE(result.complete);
        EXPECT_EQ(result.report(), reference_report())
            << "shards=" << shards;
    }
}

TEST(Campaign, SequentialSchedulingMatchesParallel)
{
    CampaignOptions options = base_campaign();
    options.shards = 2;
    options.parallel = false;
    const CampaignResult result = run_campaign(options);
    EXPECT_TRUE(result.complete);
    EXPECT_EQ(result.report(), reference_report());
}

TEST(Campaign, MergedCheckpointRenumbersTestsSequentially)
{
    CampaignOptions options = base_campaign();
    options.shards = 3;
    const CampaignResult result = run_campaign(options);
    u64 expected = 0;
    for (const CheckpointUnit &unit :
         result.merged_checkpoint.explored) {
        for (const CheckpointTest &test : unit.tests)
            EXPECT_EQ(test.id, expected++);
    }
    EXPECT_EQ(expected, result.merged.test_programs);
    EXPECT_EQ(result.merged_checkpoint.explored.size(),
              base_campaign().pipeline.instruction_filter.size());
}

TEST(Campaign, QuarantinedUnitsMergeIdentically)
{
    // Deterministic (unit-keyed) exploration faults: the same units
    // quarantine no matter which shard attempts them, so the merged
    // ledger — and the whole report — must not depend on the layout.
    CampaignOptions chaos = base_campaign();
    chaos.pipeline.resilience.faults =
        support::FaultPlan::only(support::FaultSite::Exploration, 0.6,
                                 11);
    chaos.pipeline.resilience.faults.key_by_unit = true;

    const CampaignResult mono = run_campaign(chaos);
    ASSERT_GE(mono.merged.quarantine.total(), 1u)
        << "chaos seed injected nothing; pick another seed";
    EXPECT_LT(mono.merged.instructions_explored,
              base_campaign().pipeline.instruction_filter.size());

    for (u32 shards : {2u, 4u}) {
        CampaignOptions options = chaos;
        options.shards = shards;
        const CampaignResult result = run_campaign(options);
        EXPECT_EQ(result.report(), mono.report())
            << "shards=" << shards;
    }
}

TEST(Campaign, InterruptedShardsResumeToIdenticalReport)
{
    const std::filesystem::path dir = scratch_dir("resume");
    CampaignOptions options = base_campaign();
    options.shards = 2;
    options.checkpoint_dir = dir.string();
    options.explore_slice_units = 1;
    options.execute_slice_tests = 3;
    options.max_sessions_per_shard = 1;

    // One session per shard is not enough for this workload.
    const CampaignResult interrupted = run_campaign(options);
    EXPECT_FALSE(interrupted.complete);
    EXPECT_LT(interrupted.merged.tests_executed,
              run_campaign(base_campaign()).merged.tests_executed);

    // Resume with unbounded sessions: the completed campaign's report
    // must match an uninterrupted 1-shard run byte for byte.
    options.max_sessions_per_shard = 0;
    options.resume = true;
    const CampaignResult resumed = run_campaign(options);
    EXPECT_TRUE(resumed.complete);
    EXPECT_GT(resumed.sessions, 2u);
    EXPECT_EQ(resumed.report(), reference_report());
    std::filesystem::remove_all(dir);
}

TEST(Campaign, QuarantinedUnitsSurviveInterruptAndResume)
{
    // The hardest determinism case: deterministic faults + slicing.
    // Quarantined units never enter the checkpoint, so each resumed
    // session re-attempts them; the dedup'd ledger plus the fresh-unit
    // quota refund must still converge to the monolithic report.
    CampaignOptions chaos = base_campaign();
    chaos.pipeline.resilience.faults =
        support::FaultPlan::only(support::FaultSite::Exploration, 0.6,
                                 11);
    chaos.pipeline.resilience.faults.key_by_unit = true;
    const std::string mono_report = run_campaign(chaos).report();

    const std::filesystem::path dir = scratch_dir("chaos_resume");
    CampaignOptions options = chaos;
    options.shards = 2;
    options.checkpoint_dir = dir.string();
    options.explore_slice_units = 1;
    options.execute_slice_tests = 3;
    CampaignResult result = run_campaign(options);
    EXPECT_TRUE(result.complete);
    EXPECT_GT(result.sessions, 2u);
    EXPECT_EQ(result.report(), mono_report);
    std::filesystem::remove_all(dir);
}

TEST(Campaign, ResumeRefusesDifferentShardCount)
{
    const std::filesystem::path dir = scratch_dir("mismatch");
    CampaignOptions options = base_campaign();
    options.shards = 2;
    options.checkpoint_dir = dir.string();
    run_campaign(options);

    CampaignOptions other = options;
    other.shards = 3;
    other.resume = true;
    EXPECT_THROW(run_campaign(other), std::logic_error);

    // The original layout resumes fine (and restores everything).
    options.resume = true;
    const CampaignResult resumed = run_campaign(options);
    EXPECT_TRUE(resumed.complete);
    EXPECT_EQ(resumed.report(), reference_report());
    std::filesystem::remove_all(dir);
}

TEST(Campaign, SlicingWithoutCheckpointDirThrows)
{
    CampaignOptions options = base_campaign();
    options.explore_slice_units = 1;
    EXPECT_THROW(run_campaign(options), std::logic_error);

    CampaignOptions resume_options = base_campaign();
    resume_options.resume = true;
    EXPECT_THROW(run_campaign(resume_options), std::logic_error);
}

// ---------------------------------------------------------------------
// Cycle fidelity across shards (DESIGN.md §16): the merged report with
// timing on is as deterministic as the state-only one.
// ---------------------------------------------------------------------

/** base_campaign with the cycle-fidelity model enabled. */
CampaignOptions
timing_campaign()
{
    CampaignOptions options = base_campaign();
    options.pipeline.timing = true;
    return options;
}

/** 1-shard timing-on reference report, computed once per process. */
const std::string &
timing_reference_report()
{
    static const std::string report = [] {
        return run_campaign(timing_campaign()).report();
    }();
    return report;
}

TEST(Campaign, TimingReportByteIdenticalAcrossShardCounts)
{
    // The reference report must actually carry the new observable —
    // otherwise byte-identity would hold vacuously.
    EXPECT_NE(timing_reference_report().find("cycle totals:"),
              std::string::npos);
    for (u32 shards : {2u, 4u}) {
        CampaignOptions options = timing_campaign();
        options.shards = shards;
        const CampaignResult result = run_campaign(options);
        EXPECT_TRUE(result.complete);
        EXPECT_EQ(result.report(), timing_reference_report())
            << "shards=" << shards;
    }
}

TEST(Campaign, TimingSurvivesInterruptAndResume)
{
    const std::filesystem::path dir = scratch_dir("timing_resume");
    CampaignOptions options = timing_campaign();
    options.shards = 2;
    options.checkpoint_dir = dir.string();
    options.explore_slice_units = 1;
    options.execute_slice_tests = 3;
    options.max_sessions_per_shard = 1;

    const CampaignResult interrupted = run_campaign(options);
    EXPECT_FALSE(interrupted.complete);

    // Cycle counters cross the checkpoint boundary: the resumed
    // campaign's totals must match the uninterrupted reference bytes.
    options.max_sessions_per_shard = 0;
    options.resume = true;
    const CampaignResult resumed = run_campaign(options);
    EXPECT_TRUE(resumed.complete);
    EXPECT_EQ(resumed.report(), timing_reference_report());
    std::filesystem::remove_all(dir);
}

TEST(Campaign, ResumeRefusesDifferentTimingMode)
{
    // timing is part of the options fingerprint: a checkpoint written
    // with it off must not resume with it on (the resumed half would
    // charge cycles the first half never counted).
    const std::filesystem::path dir = scratch_dir("timing_mismatch");
    CampaignOptions options = base_campaign();
    options.shards = 2;
    options.checkpoint_dir = dir.string();
    run_campaign(options);

    CampaignOptions other = options;
    other.pipeline.timing = true;
    other.resume = true;
    EXPECT_THROW(run_campaign(other), std::logic_error);
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace pokeemu
