/**
 * @file
 * Tests for multi-instruction-sequence exploration (the paper's §7
 * "Multiple-Instruction Sequences" extension).
 */
#include <gtest/gtest.h>

#include <set>

#include "explore/state_explorer.h"
#include "arch/paging.h"
#include "harness/runner.h"
#include "hifi/hifi_emulator.h"
#include "ir/eval.h"
#include "testgen/testgen.h"

namespace pokeemu {
namespace {

namespace layout = arch::layout;

arch::DecodedInsn
decode_insn(std::initializer_list<u8> bytes)
{
    std::vector<u8> buf(bytes);
    buf.resize(arch::kMaxInsnLength, 0);
    arch::DecodedInsn insn;
    EXPECT_EQ(arch::decode(buf.data(), buf.size(), insn),
              arch::DecodeStatus::Ok);
    return insn;
}

struct Env
{
    symexec::VarPool summary_pool;
    symexec::Summary summary;
    explore::StateSpec spec;

    Env()
        : summary(hifi::summarize_descriptor_load(summary_pool)),
          spec(testgen::baseline_cpu_state(),
               testgen::baseline_ram_after_init(), &summary)
    {
    }
};

Env &
env()
{
    static Env instance;
    return instance;
}

TEST(Sequence, ComposedProgramRunsConcretely)
{
    // inc eax ; inc eax: the composed semantics must add two when
    // interpreted concretely on the Hi-Fi emulator's state image.
    const std::vector<arch::DecodedInsn> insns = {
        decode_insn({0x40}), decode_insn({0x40})};
    const ir::Program program =
        hifi::build_sequence_semantics(insns);

    hifi::HiFiEmulator emu;
    arch::CpuState start = testgen::baseline_cpu_state();
    start.gpr[arch::kEax] = 10;
    emu.reset(start, testgen::baseline_ram_after_init());
    const ir::RunResult r = ir::run_concrete(program, emu);
    ASSERT_EQ(r.status, ir::RunStatus::Halted);
    EXPECT_EQ(hifi::halt_base_code(r.halt_code), hifi::kHaltOk);
    EXPECT_EQ(hifi::halt_insn_index(r.halt_code), 1u);
    EXPECT_EQ(emu.cpu().gpr[arch::kEax], 12u);
    EXPECT_EQ(emu.cpu().eip, start.eip + 2);
}

TEST(Sequence, FaultTaggedWithInstructionIndex)
{
    // mov ecx, [ebx] after unmapping: the second instruction faults.
    const std::vector<arch::DecodedInsn> insns = {
        decode_insn({0x40}),       // inc eax
        decode_insn({0x8b, 0x0b}), // mov ecx, [ebx]
    };
    const ir::Program program =
        hifi::build_sequence_semantics(insns);

    hifi::HiFiEmulator emu;
    arch::CpuState start = testgen::baseline_cpu_state();
    start.gpr[arch::kEbx] = 0x300000;
    std::vector<u8> ram = testgen::baseline_ram_after_init();
    ram[layout::kPhysPageTable + 4 * 0x300] &= ~arch::kPtePresent;
    emu.reset(start, ram);
    const ir::RunResult r = ir::run_concrete(program, emu);
    ASSERT_EQ(r.status, ir::RunStatus::Halted);
    EXPECT_EQ(hifi::halt_base_code(r.halt_code),
              hifi::halt_exception_code(arch::kExcPf));
    EXPECT_EQ(hifi::halt_insn_index(r.halt_code), 1u);
    // The first instruction's effect is committed.
    EXPECT_EQ(emu.cpu().gpr[arch::kEax],
              testgen::baseline_cpu_state().gpr[arch::kEax] + 1);
}

TEST(Sequence, BranchDivergenceDetected)
{
    // jz +2 ; inc eax: on the taken path the sequence diverges.
    const std::vector<arch::DecodedInsn> insns = {
        decode_insn({0x74, 0x02}), // jz +2
        decode_insn({0x40}),       // inc eax
    };
    const ir::Program program =
        hifi::build_sequence_semantics(insns);

    hifi::HiFiEmulator emu;
    arch::CpuState start = testgen::baseline_cpu_state();
    start.eflags |= arch::kFlagZf;
    emu.reset(start, testgen::baseline_ram_after_init());
    ir::RunResult r = ir::run_concrete(program, emu);
    ASSERT_EQ(r.status, ir::RunStatus::Halted);
    EXPECT_EQ(r.halt_code, hifi::kHaltDiverged);

    start.eflags &= ~arch::kFlagZf;
    emu.reset(start, testgen::baseline_ram_after_init());
    r = ir::run_concrete(program, emu);
    EXPECT_EQ(hifi::halt_base_code(r.halt_code), hifi::kHaltOk);
}

TEST(Sequence, ExplorationCoversJointPathSpace)
{
    // sub eax, ecx ; jz rel8 — the flag producer and the consumer
    // explored jointly: both ZF outcomes must appear, driven by the
    // relation between EAX and ECX (not by a free ZF bit).
    const std::vector<arch::DecodedInsn> insns = {
        decode_insn({0x29, 0xc8}), // sub eax, ecx
        decode_insn({0x74, 0x10}), // jz +16
    };
    explore::StateExploreOptions options;
    options.max_paths = 16;
    explore::StateExploreResult r = explore_sequence(
        insns, env().spec, &env().summary, options);
    EXPECT_TRUE(r.stats.complete);
    // Both jz directions complete the pair normally (jz is the final
    // instruction, so there is no divergence exit); the joint
    // exploration must produce at least the taken and not-taken
    // variants, with ZF *derived from the subtraction* — i.e. the test
    // states must include both EAX == ECX and EAX != ECX.
    ASSERT_GE(r.paths.size(), 2u);
    auto reg_of = [&](const explore::ExploredPath &p,
                      const char *reg) {
        u32 v = 0;
        for (unsigned i = 0; i < 4; ++i) {
            v |= static_cast<u32>(
                     p.assignment.get(
                         r.pool
                             .get(std::string("gpr_") + reg + "_b" +
                                      std::to_string(i),
                                  8)
                             ->var_id()) &
                     0xff)
                 << (8 * i);
        }
        return v;
    };
    bool saw_equal = false, saw_unequal = false;
    for (const auto &p : r.paths) {
        if (hifi::halt_base_code(p.halt_code) != hifi::kHaltOk)
            continue;
        EXPECT_EQ(hifi::halt_insn_index(p.halt_code), 1u);
        if (reg_of(p, "eax") == reg_of(p, "ecx"))
            saw_equal = true;
        else
            saw_unequal = true;
    }
    EXPECT_TRUE(saw_equal);
    EXPECT_TRUE(saw_unequal);
}

TEST(Sequence, GeneratedPairTestsRunThreeWay)
{
    // Full loop: explore a pair, generate sequence tests, run them on
    // all backends; with all Lo-Fi bugs fixed there must be no
    // differences (composition is faithful end to end).
    const std::vector<arch::DecodedInsn> insns = {
        decode_insn({0x01, 0x08}), // add [eax], ecx
        decode_insn({0x74, 0x04}), // jz +4
    };
    explore::StateExploreOptions options;
    options.max_paths = 24;
    explore::StateExploreResult r = explore_sequence(
        insns, env().spec, &env().summary, options);
    ASSERT_GE(r.paths.size(), 3u);

    harness::TestRunner::Config cfg;
    cfg.bugs = lofi::BugConfig::none();
    harness::TestRunner runner(cfg);
    u64 ran = 0;
    for (const auto &path : r.paths) {
        const testgen::GenResult gen =
            testgen::generate_sequence_test_program(
                insns, path.assignment, env().spec, r.pool);
        ASSERT_EQ(gen.status, testgen::GenStatus::Ok);
        const auto result = runner.run(gen.program.code);
        EXPECT_TRUE(arch::diff_snapshots(result.hifi.snapshot,
                                         result.hw.snapshot)
                        .empty());
        EXPECT_TRUE(arch::diff_snapshots(result.lofi.snapshot,
                                         result.hw.snapshot)
                        .empty());
        ++ran;
    }
    EXPECT_GE(ran, 3u);
}

TEST(Sequence, PairFindsLoFiBugsToo)
{
    // leave ; inc eax with the seeded Lo-Fi bugs on: the pair tests
    // still expose the leave atomicity difference.
    const std::vector<arch::DecodedInsn> insns = {
        decode_insn({0xc9}), // leave
        decode_insn({0x40}), // inc eax
    };
    explore::StateExploreOptions options;
    options.max_paths = 24;
    explore::StateExploreResult r = explore_sequence(
        insns, env().spec, &env().summary, options);

    harness::TestRunner runner;
    u64 diffs = 0;
    for (const auto &path : r.paths) {
        const testgen::GenResult gen =
            testgen::generate_sequence_test_program(
                insns, path.assignment, env().spec, r.pool);
        if (gen.status != testgen::GenStatus::Ok)
            continue;
        const auto result = runner.run(gen.program.code);
        if (!arch::diff_snapshots(result.lofi.snapshot,
                                  result.hw.snapshot)
                 .empty()) {
            ++diffs;
        }
    }
    EXPECT_GT(diffs, 0u);
}

} // namespace
} // namespace pokeemu
