/** @file Unit and property tests for the IR layer. */
#include <gtest/gtest.h>

#include <map>

#include "ir/builder.h"
#include "ir/eval.h"
#include "ir/printer.h"
#include "support/rng.h"

namespace pokeemu::ir {
namespace {

TEST(Expr, ConstantFolding)
{
    auto a = E::constant(32, 20);
    auto b = E::constant(32, 22);
    auto sum = E::add(a, b);
    ASSERT_TRUE(sum->is_const());
    EXPECT_EQ(sum->value(), 42u);
}

TEST(Expr, ConstantTruncation)
{
    auto x = E::constant(8, 0x1ff);
    EXPECT_EQ(x->value(), 0xffu);
    auto sum = E::add(E::constant(8, 0xff), E::constant(8, 1));
    EXPECT_EQ(sum->value(), 0u);
}

TEST(Expr, IdentityRules)
{
    auto x = E::var(1, "x", 32);
    EXPECT_EQ(E::add(x, E::constant(32, 0)).get(), x.get());
    EXPECT_EQ(E::mul(x, E::constant(32, 1)).get(), x.get());
    EXPECT_TRUE(E::mul(x, E::constant(32, 0))->is_const(0));
    EXPECT_TRUE(E::band(x, E::constant(32, 0))->is_const(0));
    EXPECT_EQ(E::band(x, E::constant(32, 0xffffffff)).get(), x.get());
    EXPECT_EQ(E::bor(x, E::constant(32, 0)).get(), x.get());
    EXPECT_EQ(E::bxor(x, E::constant(32, 0)).get(), x.get());
}

TEST(Expr, SameOperandRules)
{
    auto x = E::var(1, "x", 32);
    EXPECT_TRUE(E::sub(x, x)->is_const(0));
    EXPECT_TRUE(E::bxor(x, x)->is_const(0));
    EXPECT_TRUE(E::eq(x, x)->is_const(1));
    EXPECT_TRUE(E::ne(x, x)->is_const(0));
    EXPECT_TRUE(E::ult(x, x)->is_const(0));
}

TEST(Expr, AddChainFolding)
{
    auto x = E::var(1, "x", 32);
    auto e = E::add(E::add(x, E::constant(32, 5)), E::constant(32, 7));
    ASSERT_EQ(e->kind(), ExprKind::BinOp);
    EXPECT_EQ(e->binop(), BinOpKind::Add);
    EXPECT_EQ(e->a().get(), x.get());
    EXPECT_TRUE(e->b()->is_const(12));

    auto f = E::sub(e, E::constant(32, 12));
    EXPECT_EQ(f.get(), x.get());
}

TEST(Expr, DoubleNegation)
{
    auto x = E::var(1, "x", 32);
    EXPECT_EQ(E::bnot(E::bnot(x)).get(), x.get());
    EXPECT_EQ(E::neg(E::neg(x)).get(), x.get());
}

TEST(Expr, ExtractComposition)
{
    auto x = E::var(1, "x", 32);
    auto mid = E::extract(x, 8, 16);
    auto low = E::extract(mid, 0, 8);
    ASSERT_EQ(low->kind(), ExprKind::Cast);
    EXPECT_EQ(low->extract_lo(), 8u);
    EXPECT_EQ(low->a().get(), x.get());
}

TEST(Expr, ConcatOfAdjacentExtractsFuses)
{
    auto x = E::var(1, "x", 32);
    auto hi = E::extract(x, 8, 8);
    auto lo = E::extract(x, 0, 8);
    auto joined = E::concat(hi, lo);
    ASSERT_EQ(joined->kind(), ExprKind::Cast);
    EXPECT_EQ(joined->cast(), CastKind::Extract);
    EXPECT_EQ(joined->extract_lo(), 0u);
    EXPECT_EQ(joined->width(), 16u);
}

TEST(Expr, ConcatOfFullWidthExtractsIsIdentity)
{
    auto x = E::var(1, "x", 32);
    auto joined = E::concat(E::extract(x, 16, 16), E::extract(x, 0, 16));
    EXPECT_EQ(joined.get(), x.get());
}

TEST(Expr, ExtractOfConcatResolves)
{
    auto hi = E::var(1, "hi", 8);
    auto lo = E::var(2, "lo", 8);
    auto joined = E::concat(hi, lo);
    EXPECT_EQ(E::extract(joined, 0, 8).get(), lo.get());
    EXPECT_EQ(E::extract(joined, 8, 8).get(), hi.get());
}

TEST(Expr, IteSimplification)
{
    auto c = E::var(1, "c", 1);
    auto t = E::constant(32, 5);
    EXPECT_EQ(E::ite(E::bool_const(true), t, E::constant(32, 9)).get(),
              t.get());
    EXPECT_EQ(E::ite(c, t, t).get(), t.get());
    EXPECT_EQ(E::ite(c, E::bool_const(true), E::bool_const(false)).get(),
              c.get());
}

TEST(Expr, StructuralEquality)
{
    auto x = E::var(1, "x", 32);
    auto a = E::add(x, E::constant(32, 3));
    auto b = E::add(x, E::constant(32, 3));
    EXPECT_TRUE(Expr::equal(a, b));
    auto c = E::add(x, E::constant(32, 4));
    EXPECT_FALSE(Expr::equal(a, c));
}

TEST(Expr, CollectVars)
{
    auto x = E::var(1, "x", 32);
    auto y = E::var(2, "y", 32);
    auto e = E::add(E::mul(x, y), x);
    std::vector<ExprRef> vars;
    Expr::collect_vars(e, vars);
    EXPECT_EQ(vars.size(), 2u);
}

TEST(Expr, EvalMatchesFoldRandomized)
{
    Rng rng(99);
    auto x = E::var(1, "x", 32);
    auto y = E::var(2, "y", 32);
    const BinOpKind ops[] = {
        BinOpKind::Add, BinOpKind::Sub, BinOpKind::Mul, BinOpKind::UDiv,
        BinOpKind::URem, BinOpKind::SDiv, BinOpKind::SRem,
        BinOpKind::And, BinOpKind::Or, BinOpKind::Xor, BinOpKind::Shl,
        BinOpKind::LShr, BinOpKind::AShr, BinOpKind::Eq, BinOpKind::Ne,
        BinOpKind::ULt, BinOpKind::ULe, BinOpKind::SLt, BinOpKind::SLe,
    };
    for (BinOpKind op : ops) {
        for (int trial = 0; trial < 50; ++trial) {
            const u32 va = static_cast<u32>(rng.next());
            const u32 vb = static_cast<u32>(
                trial % 4 == 0 ? rng.below(40) : rng.next());
            auto symbolic = E::binop(op, x, y);
            std::function<u64(const Expr &)> lookup =
                [&](const Expr &leaf) {
                    return leaf.var_id() == 1 ? va : vb;
                };
            const u64 sym_val = eval_expr(symbolic, &lookup);
            auto folded = E::binop(op, E::constant(32, va),
                                   E::constant(32, vb));
            ASSERT_TRUE(folded->is_const());
            EXPECT_EQ(sym_val, folded->value())
                << binop_name(op) << " a=" << va << " b=" << vb;
        }
    }
}

TEST(Expr, SubstituteReplacesVars)
{
    auto x = E::var(1, "x", 32);
    auto e = E::add(x, E::constant(32, 1));
    auto replaced = substitute(e, [&](const Expr &leaf) -> ExprRef {
        if (leaf.kind() == ExprKind::Var && leaf.var_id() == 1)
            return E::constant(32, 41);
        return nullptr;
    });
    ASSERT_TRUE(replaced->is_const());
    EXPECT_EQ(replaced->value(), 42u);
}

TEST(Printer, RendersNestedExpr)
{
    auto x = E::var(1, "x", 32);
    auto e = E::add(x, E::constant(32, 7));
    const std::string s = to_string(e);
    EXPECT_NE(s.find("add"), std::string::npos);
    EXPECT_NE(s.find("x"), std::string::npos);
}

/** Simple flat memory for evaluator tests. */
class MapMemory : public ConcreteMemory
{
  public:
    u64
    load(u32 addr, unsigned size) override
    {
        u64 v = 0;
        for (unsigned i = 0; i < size; ++i) {
            const auto it = bytes_.find(addr + i);
            const u64 byte = it == bytes_.end() ? 0 : it->second;
            v |= byte << (8 * i);
        }
        return v;
    }

    void
    store(u32 addr, unsigned size, u64 value) override
    {
        for (unsigned i = 0; i < size; ++i)
            bytes_[addr + i] = static_cast<u8>(value >> (8 * i));
    }

  private:
    std::map<u32, u8> bytes_;
};

TEST(Builder, StraightLineProgram)
{
    IrBuilder b("straight");
    auto x = b.load(IrBuilder::imm32(0x100), 4);
    auto y = b.assign(E::add(x, IrBuilder::imm32(5)));
    b.store(IrBuilder::imm32(0x200), 4, y);
    b.halt(7);
    Program p = b.finish();

    MapMemory mem;
    mem.store(0x100, 4, 37);
    RunResult r = run_concrete(p, mem);
    EXPECT_EQ(r.status, RunStatus::Halted);
    EXPECT_EQ(r.halt_code, 7u);
    EXPECT_EQ(mem.load(0x200, 4), 42u);
}

TEST(Builder, ConditionalBranches)
{
    // Compute max(a, b) of two memory words.
    IrBuilder b("max");
    auto a = b.load(IrBuilder::imm32(0x0), 4);
    auto c = b.load(IrBuilder::imm32(0x4), 4);
    Label use_a = b.label(), use_b = b.label();
    b.cjmp(E::ult(a, c), use_b, use_a);
    b.bind(use_a);
    b.store(IrBuilder::imm32(0x8), 4, a);
    b.halt(1);
    b.bind(use_b);
    b.store(IrBuilder::imm32(0x8), 4, c);
    b.halt(2);
    Program p = b.finish();

    {
        MapMemory mem;
        mem.store(0x0, 4, 50);
        mem.store(0x4, 4, 8);
        RunResult r = run_concrete(p, mem);
        EXPECT_EQ(r.halt_code, 1u);
        EXPECT_EQ(mem.load(0x8, 4), 50u);
    }
    {
        MapMemory mem;
        mem.store(0x0, 4, 3);
        mem.store(0x4, 4, 8);
        RunResult r = run_concrete(p, mem);
        EXPECT_EQ(r.halt_code, 2u);
        EXPECT_EQ(mem.load(0x8, 4), 8u);
    }
}

TEST(Builder, LoopWithMemoryState)
{
    // Sum the value at 0x0 down to zero into 0x4 (guest-visible loop
    // state lives in memory, as in rep-prefixed semantics).
    IrBuilder b("loop");
    Label head = b.here();
    auto n = b.load(IrBuilder::imm32(0x0), 4);
    Label done = b.label();
    b.if_goto(E::eq(n, IrBuilder::imm32(0)), done);
    auto acc = b.load(IrBuilder::imm32(0x4), 4);
    b.store(IrBuilder::imm32(0x4), 4, E::add(acc, n));
    b.store(IrBuilder::imm32(0x0), 4,
            E::sub(n, IrBuilder::imm32(1)));
    b.jmp(head);
    b.bind(done);
    b.halt(0);
    Program p = b.finish();

    MapMemory mem;
    mem.store(0x0, 4, 10);
    RunResult r = run_concrete(p, mem);
    EXPECT_EQ(r.status, RunStatus::Halted);
    EXPECT_EQ(mem.load(0x4, 4), 55u);
}

TEST(Builder, AssumeFailureStopsRun)
{
    IrBuilder b("assume");
    auto x = b.load(IrBuilder::imm32(0x0), 4);
    b.assume(E::eq(x, IrBuilder::imm32(1)));
    b.halt(0);
    Program p = b.finish();

    MapMemory mem;
    mem.store(0x0, 4, 2);
    RunResult r = run_concrete(p, mem);
    EXPECT_EQ(r.status, RunStatus::AssumeFailed);
}

TEST(Builder, StepLimitDetectsRunaway)
{
    IrBuilder b("spin");
    Label head = b.here();
    b.jmp(head);
    Program p = b.finish();
    MapMemory mem;
    RunResult r = run_concrete(p, mem, 1000);
    EXPECT_EQ(r.status, RunStatus::StepLimit);
}

TEST(Builder, ValidateCatchesWidthMismatch)
{
    IrBuilder b("bad");
    // Store an 8-bit value with size 4: validate must reject.
    b.store(IrBuilder::imm32(0), 4, E::constant(8, 1));
    EXPECT_THROW(b.finish(), std::logic_error);
}

TEST(Builder, ProgramPrinterIncludesLabels)
{
    IrBuilder b("printme");
    Label l = b.here();
    b.comment("spin");
    b.jmp(l);
    Program p = b.finish();
    const std::string s = to_string(p);
    EXPECT_NE(s.find("L0:"), std::string::npos);
    EXPECT_NE(s.find("jmp"), std::string::npos);
}

} // namespace
} // namespace pokeemu::ir
