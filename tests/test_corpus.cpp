/** @file Tests for the persistent test corpus (nightly regression). */
#include <gtest/gtest.h>

#include <sstream>

#include "pokeemu/corpus.h"

namespace pokeemu {
namespace {

int
index_of(std::initializer_list<u8> bytes)
{
    std::vector<u8> buf(bytes);
    buf.resize(arch::kMaxInsnLength, 0);
    arch::DecodedInsn insn;
    EXPECT_EQ(arch::decode(buf.data(), buf.size(), insn),
              arch::DecodeStatus::Ok);
    return insn.table_index;
}

Pipeline &
small_pipeline()
{
    static Pipeline *instance = [] {
        PipelineOptions options;
        options.instruction_filter = {
            index_of({0x50}),             // push eax
            index_of({0xc9}),             // leave
            index_of({0x0f, 0x32}),       // rdmsr
        };
        options.max_paths_per_insn = 16;
        auto *p = new Pipeline(options);
        p->explore_and_generate();
        return p;
    }();
    return *instance;
}

TEST(Corpus, SaveLoadRoundTrip)
{
    const auto &tests = small_pipeline().tests();
    ASSERT_FALSE(tests.empty());
    std::stringstream buffer;
    save_corpus(buffer, tests);
    const auto loaded = load_corpus(buffer);
    ASSERT_EQ(loaded.size(), tests.size());
    for (std::size_t i = 0; i < tests.size(); ++i) {
        EXPECT_EQ(loaded[i].id, tests[i].id);
        EXPECT_EQ(loaded[i].code, tests[i].program.code);
        EXPECT_EQ(loaded[i].test_insn_offset,
                  tests[i].program.test_insn_offset);
        EXPECT_EQ(loaded[i].mnemonic, tests[i].insn.desc->mnemonic);
    }
}

TEST(Corpus, MalformedInputRejected)
{
    std::stringstream empty("not-a-corpus\n");
    EXPECT_THROW(load_corpus(empty), std::logic_error);

    std::stringstream truncated("pokeemu-corpus-v1\n3\n1 0 push ff\n");
    EXPECT_THROW(load_corpus(truncated), std::logic_error);

    std::stringstream bad_hex("pokeemu-corpus-v1\n1\n1 0 push zz\n");
    EXPECT_THROW(load_corpus(bad_hex), std::logic_error);

    std::stringstream no_count("pokeemu-corpus-v1\n");
    EXPECT_THROW(load_corpus(no_count), std::logic_error);

    std::stringstream odd_hex("pokeemu-corpus-v1\n1\n1 0 push fff\n");
    EXPECT_THROW(load_corpus(odd_hex), std::logic_error);
}

TEST(Corpus, MalformedInputIsADocumentedErrorNotAPanic)
{
    // A corrupt corpus file is a caller-input problem, not an internal
    // invariant failure: the message must identify the corpus loader,
    // not claim a pokeemu panic.
    std::stringstream bad("pokeemu-corpus-v1\n1\n1 0 push zz\n");
    try {
        load_corpus(bad);
        FAIL() << "expected std::logic_error";
    } catch (const std::logic_error &e) {
        const std::string what = e.what();
        EXPECT_EQ(what.rfind("corpus:", 0), 0u) << what;
        EXPECT_EQ(what.find("panic"), std::string::npos) << what;
    }
}

TEST(Corpus, ReplayFindsSeededBugsAndPassesWhenFixed)
{
    const auto &tests = small_pipeline().tests();
    std::stringstream buffer;
    save_corpus(buffer, tests);
    const auto loaded = load_corpus(buffer);

    const ReplayStats buggy = replay_corpus(loaded, lofi::BugConfig{});
    EXPECT_EQ(buggy.tests, loaded.size());
    EXPECT_GT(buggy.lofi_diffs, 0u);

    const ReplayStats fixed =
        replay_corpus(loaded, lofi::BugConfig::none());
    EXPECT_EQ(fixed.lofi_diffs, 0u);
    EXPECT_EQ(fixed.timeouts, 0u);
}

TEST(Corpus, SingleBugConfigsAreDistinguishable)
{
    // Replay with only one bug enabled at a time: each configuration
    // must produce a subset of the all-bugs differences, and the
    // per-bug counts must sum to at least the all-bugs count (bug
    // triggers are mostly disjoint per instruction class).
    const auto &tests = small_pipeline().tests();
    std::stringstream buffer;
    save_corpus(buffer, tests);
    const auto loaded = load_corpus(buffer);

    lofi::BugConfig only_seg = lofi::BugConfig::none();
    only_seg.no_segment_checks = true;
    lofi::BugConfig only_leave = lofi::BugConfig::none();
    only_leave.leave_nonatomic = true;
    lofi::BugConfig only_rdmsr = lofi::BugConfig::none();
    only_rdmsr.rdmsr_no_gp = true;

    const u64 seg = replay_corpus(loaded, only_seg).lofi_diffs;
    const u64 leave = replay_corpus(loaded, only_leave).lofi_diffs;
    const u64 rdmsr = replay_corpus(loaded, only_rdmsr).lofi_diffs;
    const u64 all =
        replay_corpus(loaded, lofi::BugConfig{}).lofi_diffs;

    EXPECT_GT(seg, 0u);   // push/leave tests cross segment checks.
    EXPECT_GT(leave, 0u); // leave atomicity.
    EXPECT_GT(rdmsr, 0u); // rdmsr #GP.
    EXPECT_GE(seg + leave + rdmsr, all);
}

} // namespace
} // namespace pokeemu
