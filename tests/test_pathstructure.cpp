/**
 * @file
 * Property tests for the path-structure analysis
 * (analysis/pathstructure.h): dominators, post-dominators, DAG
 * classification, feasible-path counts, and the minimal path cover are
 * each cross-checked against independent brute-force computations on
 * randomly generated small CFGs (250 seeds), plus targeted tests for
 * dataflow-pruned edges, the same-target-cjmp lint, the incremental
 * distance-to-uncovered maintenance, and PathCoverFirst scheduling
 * determinism.
 */
#include <algorithm>
#include <cstdio>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/passes.h"
#include "analysis/pathstructure.h"
#include "coverage/coverage.h"
#include "ir/builder.h"
#include "ir/printer.h"
#include "symexec/explorer.h"

namespace pokeemu {
namespace {

using analysis::BlockId;
using analysis::Cfg;
using analysis::kNoBlock;
using analysis::kNoChain;
using analysis::kVirtualExit;
using analysis::PathStructure;
using coverage::CoverageMap;
using ir::ExprRef;
using ir::IrBuilder;
using ir::Label;
namespace E = ir::E;

/**
 * A random structurally-valid program: n labelled regions, each a
 * Comment leader plus one random terminator (halt / jmp / cjmp with
 * random targets, same-target cjmps included on purpose). The last
 * region always halts so an exit exists.
 */
ir::Program
random_program(u64 seed)
{
    std::mt19937_64 rng(seed);
    const unsigned n = 2 + static_cast<unsigned>(rng() % 7); // 2..8
    IrBuilder b("rand" + std::to_string(seed));
    std::vector<Label> labels;
    for (unsigned i = 0; i < n; ++i)
        labels.push_back(b.label());
    for (unsigned i = 0; i < n; ++i) {
        b.bind(labels[i]);
        b.comment("region " + std::to_string(i));
        const unsigned kind = i + 1 == n ? 0 : rng() % 3;
        if (kind == 0) {
            b.halt(i);
        } else if (kind == 1) {
            b.jmp(labels[rng() % n]);
        } else {
            b.cjmp(IrBuilder::imm(1, 1), labels[rng() % n],
                   labels[rng() % n]);
        }
    }
    return b.finish();
}

/** Blocks reachable from @p from, never entering @p avoid (pass
 *  kNoBlock to disable); edge filter optional. */
std::vector<bool>
brute_reachable(const Cfg &cfg, BlockId from, BlockId avoid)
{
    std::vector<bool> seen(cfg.num_blocks(), false);
    if (from == avoid)
        return seen;
    std::vector<BlockId> stack{from};
    seen[from] = true;
    while (!stack.empty()) {
        const BlockId b = stack.back();
        stack.pop_back();
        for (BlockId s : cfg.blocks()[b].succs) {
            if (s == avoid || seen[s])
                continue;
            seen[s] = true;
            stack.push_back(s);
        }
    }
    return seen;
}

bool
is_exit(const Cfg &cfg, BlockId b)
{
    return cfg.blocks()[b].succs.empty();
}

/** Can @p b reach any exit block without entering @p avoid? */
bool
brute_reaches_exit(const Cfg &cfg, BlockId b, BlockId avoid)
{
    const std::vector<bool> seen = brute_reachable(cfg, b, avoid);
    for (BlockId x = 0; x < cfg.num_blocks(); ++x) {
        if (seen[x] && is_exit(cfg, x))
            return true;
    }
    return false;
}

/** Maximum bipartite matching on @p adj by exhaustive recursion — the
 *  independent check for the path cover's minimality. */
unsigned
brute_max_matching(const std::vector<std::vector<unsigned>> &adj,
                   unsigned u, u32 used_right)
{
    if (u == adj.size())
        return 0;
    unsigned best = brute_max_matching(adj, u + 1, used_right);
    for (const unsigned v : adj[u]) {
        if (used_right & (u32{1} << v))
            continue;
        best = std::max(best, 1 + brute_max_matching(
                                      adj, u + 1,
                                      used_right | (u32{1} << v)));
    }
    return best;
}

TEST(PathStructureProperty, BruteForceOnRandomCfgs)
{
    for (u64 seed = 1; seed <= 250; ++seed) {
        const ir::Program p = random_program(seed);
        const Cfg cfg = Cfg::build(p);
        const PathStructure ps = PathStructure::build(p, cfg);
        const u32 n = cfg.num_blocks();
        const std::vector<bool> reach =
            brute_reachable(cfg, cfg.entry(), kNoBlock);

        // --- Dominators: a dom b iff removing a cuts b off from the
        // entry (a, b reachable; reflexive).
        std::vector<std::set<BlockId>> doms(n);
        for (BlockId a = 0; a < n; ++a) {
            if (!reach[a])
                continue;
            const std::vector<bool> without =
                brute_reachable(cfg, cfg.entry(), a);
            for (BlockId b = 0; b < n; ++b) {
                if (!reach[b])
                    continue;
                const bool brute = a == b || !without[b];
                EXPECT_EQ(ps.dominates(a, b), brute)
                    << "seed " << seed << " dom " << a << "," << b;
                if (brute)
                    doms[b].insert(a);
            }
        }
        // idom(b) = the strict dominator with the largest dominator
        // set (the closest one).
        for (BlockId b = 0; b < n; ++b) {
            if (!reach[b]) {
                EXPECT_EQ(ps.idom(b), kNoBlock) << "seed " << seed;
                continue;
            }
            if (b == cfg.entry()) {
                EXPECT_EQ(ps.idom(b), b) << "seed " << seed;
                continue;
            }
            BlockId best = kNoBlock;
            for (const BlockId a : doms[b]) {
                if (a == b)
                    continue;
                if (best == kNoBlock ||
                    doms[a].size() > doms[best].size())
                    best = a;
            }
            EXPECT_EQ(ps.idom(b), best)
                << "seed " << seed << " idom " << b;
        }

        // --- Post-dominators: a pdom b iff every b->exit path passes
        // through a. Only meaningful when b reaches an exit at all.
        for (BlockId b = 0; b < n; ++b) {
            if (!reach[b] || !brute_reaches_exit(cfg, b, kNoBlock))
                continue;
            EXPECT_TRUE(ps.post_dominates(kVirtualExit, b));
            std::set<BlockId> pdoms;
            for (BlockId a = 0; a < n; ++a) {
                if (!reach[a])
                    continue;
                const bool brute =
                    a == b || !brute_reaches_exit(cfg, b, a);
                EXPECT_EQ(ps.post_dominates(a, b), brute)
                    << "seed " << seed << " pdom " << a << "," << b;
                if (brute && a != b)
                    pdoms.insert(a);
            }
            // ipdom(b) = the strict post-dominator post-dominated by
            // every other; none -> the virtual exit.
            BlockId best = kVirtualExit;
            for (const BlockId a : pdoms) {
                bool closest = true;
                for (const BlockId other : pdoms) {
                    if (other != a && !ps.post_dominates(other, a)) {
                        closest = false;
                        break;
                    }
                }
                if (closest)
                    best = a;
            }
            EXPECT_EQ(ps.ipdom(b), best)
                << "seed " << seed << " ipdom " << b;
        }

        // --- The non-back subgraph is acyclic (Kahn's algorithm
        // consumes every visited block).
        const auto dag_edges = [&](BlockId b) {
            std::vector<BlockId> out;
            const auto &succs = cfg.blocks()[b].succs;
            for (std::size_t s = 0; s < succs.size(); ++s) {
                if (!ps.back_edge(b, s) && !ps.edge_pruned(b, s))
                    out.push_back(succs[s]);
            }
            return out;
        };
        {
            std::vector<u32> indeg(n, 0);
            std::vector<BlockId> visited;
            for (BlockId b = 0; b < n; ++b) {
                if (!reach[b])
                    continue;
                visited.push_back(b);
                for (BlockId s : dag_edges(b))
                    ++indeg[s];
            }
            std::vector<BlockId> ready;
            for (BlockId b : visited) {
                if (indeg[b] == 0)
                    ready.push_back(b);
            }
            std::size_t consumed = 0;
            while (!ready.empty()) {
                const BlockId b = ready.back();
                ready.pop_back();
                ++consumed;
                for (BlockId s : dag_edges(b)) {
                    if (--indeg[s] == 0)
                        ready.push_back(s);
                }
            }
            EXPECT_EQ(consumed, visited.size())
                << "seed " << seed << ": back-edge removal left a "
                << "cycle";
        }

        // --- Path counts: brute DFS enumeration over the DAG.
        {
            std::vector<u64> in_count(n, 0), out_count(n, 0);
            in_count[cfg.entry()] = 1;
            // Count in topological order by repeated relaxation (the
            // graph is tiny; quadratic is fine and independent of the
            // unit under test's own topo order).
            for (u32 round = 0; round < n; ++round) {
                std::vector<u64> next_in(n, 0);
                next_in[cfg.entry()] = 1;
                for (BlockId b = 0; b < n; ++b) {
                    for (BlockId s : dag_edges(b))
                        next_in[s] += in_count[b];
                }
                in_count = next_in;
            }
            for (u32 round = 0; round < n; ++round) {
                std::vector<u64> next_out(n, 0);
                for (BlockId b = 0; b < n; ++b) {
                    if (reach[b] && is_exit(cfg, b)) {
                        next_out[b] = 1;
                        continue;
                    }
                    for (BlockId s : dag_edges(b))
                        next_out[b] += out_count[s];
                }
                out_count = next_out;
            }
            for (BlockId b = 0; b < n; ++b) {
                if (!reach[b])
                    continue;
                EXPECT_EQ(ps.paths_from_entry(b), in_count[b])
                    << "seed " << seed << " paths_in " << b;
                EXPECT_EQ(ps.paths_to_exit(b), out_count[b])
                    << "seed " << seed << " paths_out " << b;
            }
        }

        // --- Minimal path cover: chains partition the DAG-visited
        // blocks, consecutive chain entries are DAG edges, and the
        // chain count matches |V| - max-matching (König).
        {
            std::vector<BlockId> visited;
            std::vector<int> left_index(n, -1);
            for (BlockId b = 0; b < n; ++b) {
                if (ps.chain_of(b) != kNoChain) {
                    left_index[b] = static_cast<int>(visited.size());
                    visited.push_back(b);
                }
            }
            std::set<BlockId> seen_in_chains;
            for (const analysis::CoverChain &chain : ps.chains()) {
                ASSERT_FALSE(chain.blocks.empty());
                for (std::size_t i = 0; i < chain.blocks.size(); ++i) {
                    EXPECT_TRUE(
                        seen_in_chains.insert(chain.blocks[i]).second)
                        << "seed " << seed << ": block in two chains";
                    if (i + 1 == chain.blocks.size())
                        continue;
                    const auto edges = dag_edges(chain.blocks[i]);
                    EXPECT_TRUE(std::find(edges.begin(), edges.end(),
                                          chain.blocks[i + 1]) !=
                                edges.end())
                        << "seed " << seed
                        << ": chain step is not a DAG edge";
                }
            }
            EXPECT_EQ(seen_in_chains.size(), visited.size())
                << "seed " << seed << ": chains are not a partition";
            std::vector<std::vector<unsigned>> adj(visited.size());
            for (const BlockId b : visited) {
                for (BlockId s : dag_edges(b))
                    adj[left_index[b]].push_back(
                        static_cast<unsigned>(left_index[s]));
            }
            const unsigned matching =
                brute_max_matching(adj, 0, 0);
            EXPECT_EQ(ps.num_chains(), visited.size() - matching)
                << "seed " << seed << ": path cover is not minimal";
        }

        // --- Reachable-chain bitsets vs brute reachability over
        // non-pruned edges (back edges included).
        for (BlockId b = 0; b < n; ++b) {
            if (ps.chain_of(b) == kNoChain)
                continue;
            const std::vector<bool> seen =
                brute_reachable(cfg, b, kNoBlock);
            std::set<u32> expect;
            for (BlockId x = 0; x < n; ++x) {
                if (seen[x] && ps.chain_of(x) != kNoChain)
                    expect.insert(ps.chain_of(x));
            }
            const std::vector<u64> &bits = ps.reachable_chains(b);
            std::set<u32> got;
            for (std::size_t w = 0; w < bits.size(); ++w) {
                for (unsigned bit = 0; bit < 64; ++bit) {
                    if (bits[w] & (u64{1} << bit))
                        got.insert(static_cast<u32>(w * 64 + bit));
                }
            }
            EXPECT_EQ(got, expect)
                << "seed " << seed << " reachable chains of " << b;
        }
    }
}

// ---------------------------------------------------------------------
// Dataflow-pruned edges.
// ---------------------------------------------------------------------

/** if (1 < 2) halt 0 else {dead: halt 1} — the false edge is decided
 *  infeasible by the dataflow facts. */
ir::Program
decided_branch_program()
{
    IrBuilder b("decided");
    Label live = b.label(), dead = b.label();
    b.cjmp(E::ult(IrBuilder::imm32(1), IrBuilder::imm32(2)), live,
           dead);
    b.bind(live);
    b.halt(0);
    b.bind(dead);
    b.halt(1);
    return b.finish();
}

TEST(PathStructureFacts, DecidedEdgesArePruned)
{
    const ir::Program p = decided_branch_program();
    const Cfg cfg = Cfg::build(p);
    const analysis::ProgramFacts facts =
        analysis::analyze_program(p, cfg);
    ASSERT_TRUE(facts.analyzed);

    const PathStructure unpruned = PathStructure::build(p, cfg);
    const PathStructure pruned = PathStructure::build(p, cfg, &facts);
    EXPECT_EQ(unpruned.total_paths(), 2u);
    EXPECT_EQ(pruned.total_paths(), 1u);

    // The entry block's edge to the dead halt is pruned; the dead
    // block leaves the cover (kNoChain) and the live path keeps it
    // minimal: one chain.
    bool saw_pruned = false;
    const BlockId entry = cfg.entry();
    for (std::size_t s = 0; s < cfg.blocks()[entry].succs.size();
         ++s) {
        saw_pruned = saw_pruned || pruned.edge_pruned(entry, s);
    }
    EXPECT_TRUE(saw_pruned);
    EXPECT_EQ(pruned.num_chains(), 1u);
    EXPECT_LE(pruned.num_chains(), unpruned.num_chains());
}

// ---------------------------------------------------------------------
// same-target-cjmp lint.
// ---------------------------------------------------------------------

bool
has_same_target_warning(const ir::Program &p)
{
    const analysis::Report report = analysis::run_pipeline(p);
    for (const analysis::Diagnostic &d : report.diagnostics()) {
        if (d.pass == "same-target-cjmp" &&
            d.severity == analysis::Severity::Warning)
            return true;
    }
    return false;
}

TEST(SameTargetCjmpLint, FlagsBothTargetsSameBlock)
{
    IrBuilder b("same");
    auto x = b.load(IrBuilder::imm32(0x1000), 1);
    Label t = b.label();
    b.cjmp(E::eq(x, IrBuilder::imm8(0)), t, t);
    b.bind(t);
    b.halt(0);
    EXPECT_TRUE(has_same_target_warning(b.finish()));
}

TEST(SameTargetCjmpLint, FlagsEffectFreeDiamond)
{
    IrBuilder b("diamond");
    auto x = b.load(IrBuilder::imm32(0x1000), 1);
    Label t = b.label(), f = b.label(), join = b.label();
    b.cjmp(E::eq(x, IrBuilder::imm8(0)), t, f);
    b.bind(t);
    b.comment("empty arm");
    b.jmp(join);
    b.bind(f);
    b.comment("other empty arm");
    b.jmp(join);
    b.bind(join);
    b.halt(0);
    EXPECT_TRUE(has_same_target_warning(b.finish()));
}

TEST(SameTargetCjmpLint, EffectfulArmIsClean)
{
    IrBuilder b("effectful");
    auto x = b.load(IrBuilder::imm32(0x1000), 1);
    Label t = b.label(), f = b.label(), join = b.label();
    b.cjmp(E::eq(x, IrBuilder::imm8(0)), t, f);
    b.bind(t);
    b.store(IrBuilder::imm32(0x2000), 1, IrBuilder::imm8(1));
    b.jmp(join);
    b.bind(f);
    b.comment("empty arm");
    b.jmp(join);
    b.bind(join);
    b.halt(0);
    EXPECT_FALSE(has_same_target_warning(b.finish()));
}

TEST(SameTargetCjmpLint, AllowMarkerSuppresses)
{
    IrBuilder b("allowed");
    auto x = b.load(IrBuilder::imm32(0x1000), 1);
    Label t = b.label();
    b.comment("lint: allow-same-target-cjmp");
    b.cjmp(E::eq(x, IrBuilder::imm8(0)), t, t);
    b.bind(t);
    b.halt(0);
    EXPECT_FALSE(has_same_target_warning(b.finish()));
}

TEST(SameTargetCjmpLint, DistinctLeafTargetsAreClean)
{
    IrBuilder b("leaves");
    auto x = b.load(IrBuilder::imm32(0x1000), 1);
    Label t = b.label(), f = b.label();
    b.cjmp(E::eq(x, IrBuilder::imm8(0)), t, f);
    b.bind(t);
    b.halt(1);
    b.bind(f);
    b.halt(2);
    EXPECT_FALSE(has_same_target_warning(b.finish()));
}

// ---------------------------------------------------------------------
// Incremental distance-to-uncovered maintenance.
// ---------------------------------------------------------------------

/** All feasible block traces of length <= limit from the entry, for
 *  replaying coverage in a brute-force order. */
void
enumerate_traces(const Cfg &cfg, std::vector<BlockId> &cur,
                 std::vector<std::vector<BlockId>> &out,
                 std::size_t limit)
{
    const BlockId b = cur.back();
    if (cfg.blocks()[b].succs.empty() || cur.size() == limit) {
        out.push_back(cur);
        return;
    }
    for (BlockId s : cfg.blocks()[b].succs) {
        cur.push_back(s);
        enumerate_traces(cfg, cur, out, limit);
        cur.pop_back();
    }
}

TEST(IncrementalDistance, MatchesFullRebuildAcrossRandomCfgs)
{
    // The repair path itself asserts incremental == from-scratch BFS
    // (coverage.cpp); this drives it across many shapes and orders,
    // and re-checks the final distances against an independently
    // rebuilt map.
    for (u64 seed = 1; seed <= 40; ++seed) {
        const ir::Program p = random_program(seed);
        CoverageMap incremental(p);
        const Cfg &cfg = incremental.cfg();
        std::vector<std::vector<BlockId>> traces;
        std::vector<BlockId> cur{cfg.entry()};
        enumerate_traces(cfg, cur, traces, 6);
        // Interleave queries (building the cache) with cover_path
        // (repairing it).
        for (const auto &trace : traces) {
            for (BlockId b = 0; b < cfg.num_blocks(); ++b)
                (void)incremental.distance_to_uncovered(b);
            incremental.cover_path(trace);
        }
        CoverageMap fresh(p);
        for (const auto &trace : traces)
            fresh.cover_path(trace);
        for (BlockId b = 0; b < cfg.num_blocks(); ++b) {
            EXPECT_EQ(incremental.distance_to_uncovered(b),
                      fresh.distance_to_uncovered(b))
                << "seed " << seed << " block " << b;
        }
    }
}

// ---------------------------------------------------------------------
// PathCoverFirst scheduling.
// ---------------------------------------------------------------------

symexec::InitialByteFn
make_initial(symexec::VarPool &pool, u32 sym_base, u32 sym_len)
{
    return [&pool, sym_base, sym_len](u32 addr) -> ExprRef {
        if (addr >= sym_base && addr < sym_base + sym_len) {
            char name[32];
            std::snprintf(name, sizeof name, "mem_%08x", addr);
            return pool.get(name, 8);
        }
        return E::constant(8, 0);
    };
}

/** Three independent symbolic bits -> 8 paths. */
ir::Program
threebits_program()
{
    IrBuilder b("threebits");
    auto byte = b.load(IrBuilder::imm32(0x1000), 1);
    for (int i = 0; i < 3; ++i) {
        Label set = b.label(), join = b.label();
        auto cur = b.load(IrBuilder::imm32(0x2000), 1);
        b.cjmp(E::eq(E::extract(byte, i, 1), E::bool_const(true)), set,
               join);
        b.bind(set);
        b.store(IrBuilder::imm32(0x2000), 1,
                E::bor(cur, IrBuilder::imm8(1 << i)));
        b.bind(join);
        b.comment("next bit");
    }
    auto final_code = b.load(IrBuilder::imm32(0x2000), 1);
    b.halt(E::zext(final_code, 32));
    return b.finish();
}

std::multiset<std::string>
pathcover_path_set(const ir::Program &p, u64 max_paths, u64 seed)
{
    symexec::VarPool pool;
    CoverageMap map(p);
    map.set_path_structure(
        std::make_unique<const PathStructure>(
            PathStructure::build(p, map.cfg())));
    symexec::ExplorerConfig config;
    config.max_paths = max_paths;
    config.seed = seed;
    config.coverage = &map;
    config.policy = coverage::frontier_policy(
        coverage::SchedulePolicy::PathCoverFirst);
    symexec::PathExplorer ex(p, pool, make_initial(pool, 0x1000, 1),
                             config);
    std::multiset<std::string> out;
    ex.explore([&](const symexec::PathInfo &info,
                   symexec::SymbolicMemory &) {
        std::string key = std::to_string(info.halt_code);
        for (const ExprRef &conjunct : info.path_condition)
            key += "|" + ir::to_string(conjunct);
        out.insert(std::move(key));
    });
    return out;
}

TEST(PathCoverFirst, PureFunctionOfUnitAndSeed)
{
    const ir::Program p = threebits_program();
    for (const u64 seed : {1ull, 7ull, 1234567ull}) {
        const auto a = pathcover_path_set(p, 4, seed);
        const auto b = pathcover_path_set(p, 4, seed);
        EXPECT_EQ(a, b) << "seed " << seed;
    }
}

TEST(PathCoverFirst, UnlimitedCapEnumeratesEveryPath)
{
    const ir::Program p = threebits_program();
    const auto paths = pathcover_path_set(p, u64(-1), 1);
    EXPECT_EQ(paths.size(), 8u);
}

TEST(PathCoverFirst, WithoutStructureFallsBackToFrontier)
{
    // No attached PathStructure: the policy must behave exactly like
    // UncoveredEdgeFirst, so its preference on a fresh two-way branch
    // matches.
    const ir::Program p = threebits_program();
    CoverageMap map(p);
    const coverage::FrontierPolicy *pathcover =
        coverage::frontier_policy(
            coverage::SchedulePolicy::PathCoverFirst);
    const coverage::FrontierPolicy *frontier =
        coverage::frontier_policy(
            coverage::SchedulePolicy::UncoveredEdgeFirst);
    ASSERT_NE(pathcover, nullptr);
    ASSERT_NE(frontier, nullptr);
    BlockId cjmp_block = kNoBlock;
    for (BlockId b = 0; b < map.cfg().num_blocks(); ++b) {
        if (map.cfg().blocks()[b].succs.size() == 2) {
            cjmp_block = b;
            break;
        }
    }
    ASSERT_NE(cjmp_block, kNoBlock);
    const auto &branch_succs = map.cfg().blocks()[cjmp_block].succs;
    coverage::BranchContext branch;
    branch.from = cjmp_block;
    branch.target[0] = branch_succs[0];
    branch.target[1] = branch_succs[1];
    EXPECT_EQ(pathcover->prefer(map, branch),
              frontier->prefer(map, branch));
}

TEST(PathCoverFirst, DirtyChainsDrainAsCoverageGrows)
{
    const ir::Program p = threebits_program();
    CoverageMap map(p);
    map.set_path_structure(
        std::make_unique<const PathStructure>(
            PathStructure::build(p, map.cfg())));
    const BlockId entry = map.cfg().entry();
    EXPECT_GT(map.uncovered_cover_paths_through(entry), 0u);
    // A complete exploration covers every feasible block and edge:
    // all chains drain and the score reaches zero.
    symexec::VarPool pool;
    symexec::ExplorerConfig config;
    config.seed = 1;
    config.coverage = &map;
    config.policy = coverage::frontier_policy(
        coverage::SchedulePolicy::PathCoverFirst);
    symexec::PathExplorer ex(p, pool, make_initial(pool, 0x1000, 1),
                             config);
    ex.explore([](const symexec::PathInfo &,
                  symexec::SymbolicMemory &) {});
    EXPECT_EQ(map.uncovered_cover_paths_through(entry), 0u);
}

} // namespace
} // namespace pokeemu
