/**
 * @file
 * Integration tests: the whole path-exploration-lifting pipeline on a
 * curated instruction set, asserting the paper's qualitative results —
 * complete path coverage, zero generation failures, Lo-Fi differences
 * outnumbering Hi-Fi differences, and recovery of every seeded root
 * cause.
 */
#include <gtest/gtest.h>

#include "pokeemu/pipeline.h"
#include "pokeemu/random_tester.h"

namespace pokeemu {
namespace {

int
index_of(std::initializer_list<u8> bytes)
{
    std::vector<u8> buf(bytes);
    buf.resize(arch::kMaxInsnLength, 0);
    arch::DecodedInsn insn;
    EXPECT_EQ(arch::decode(buf.data(), buf.size(), insn),
              arch::DecodeStatus::Ok);
    return insn.table_index;
}

/** The curated set covering every seeded bug class. */
std::vector<int>
curated_instructions()
{
    return {
        index_of({0x50}),             // push eax
        index_of({0x01, 0x08}),       // add [eax], ecx
        index_of({0xc9}),             // leave
        index_of({0xcf}),             // iret
        index_of({0x0f, 0xb4, 0x03}), // lfs ecx, [ebx]
        index_of({0x0f, 0xb1, 0x0b}), // cmpxchg [ebx], ecx
        index_of({0x0f, 0x32}),       // rdmsr
        index_of({0x8e, 0xd8}),       // mov ds, ax
        index_of({0x74, 0x00}),       // jz
        index_of({0xf7, 0xf3}),       // div ebx
        index_of({0xd3, 0xe0}),       // shl eax, cl
        index_of({0x0f, 0xbc, 0xd0}), // bsf edx, eax
    };
}

class PipelineEndToEnd : public ::testing::Test
{
  protected:
    static Pipeline &
    pipeline()
    {
        static Pipeline *instance = [] {
            PipelineOptions options;
            options.instruction_filter = curated_instructions();
            options.max_paths_per_insn = 48;
            auto *p = new Pipeline(options);
            p->run();
            return p;
        }();
        return *instance;
    }
};

TEST_F(PipelineEndToEnd, ExploresAllInstructionsCompletely)
{
    const PipelineStats &s = pipeline().stats();
    EXPECT_EQ(s.instructions_explored, curated_instructions().size());
    EXPECT_EQ(s.instructions_complete, s.instructions_explored);
    EXPECT_GT(s.total_paths, 40u);
}

TEST_F(PipelineEndToEnd, GeneratesATestPerPath)
{
    const PipelineStats &s = pipeline().stats();
    EXPECT_EQ(s.generation_failures, 0u);
    EXPECT_EQ(s.test_programs, s.total_paths);
    EXPECT_EQ(s.tests_executed, s.test_programs);
    EXPECT_EQ(s.timeouts, 0u);
}

TEST_F(PipelineEndToEnd, MinimizationShrinksTestStates)
{
    const PipelineStats &s = pipeline().stats();
    EXPECT_LT(s.minimize_bits_after, s.minimize_bits_before);
}

TEST_F(PipelineEndToEnd, LoFiDiffersMoreThanHiFi)
{
    const PipelineStats &s = pipeline().stats();
    EXPECT_GT(s.lofi_diffs, 0u);
    EXPECT_GT(s.lofi_diffs, s.hifi_diffs);
}

TEST_F(PipelineEndToEnd, RecoversSeededRootCauses)
{
    const auto clusters = pipeline().stats().lofi_clusters.clusters();
    std::set<std::string> causes;
    for (const auto &c : clusters)
        causes.insert(c.root_cause);
    EXPECT_TRUE(causes.count("segment-limits-and-rights-not-enforced"))
        << pipeline().stats().lofi_clusters.to_string();
    EXPECT_TRUE(causes.count("rdmsr-no-gp-on-invalid-msr"))
        << pipeline().stats().lofi_clusters.to_string();
    EXPECT_TRUE(causes.count("iret-pop-order") ||
                causes.count("atomicity-violation-leave") ||
                causes.count("atomicity-violation-cmpxchg"))
        << pipeline().stats().lofi_clusters.to_string();
}

TEST_F(PipelineEndToEnd, FixedLoFiHasNoDifferences)
{
    // Failure-injection inverse: with every bug fixed, the same test
    // programs must agree (modulo the Hi-Fi far-fetch order, which is
    // a Hi-Fi-side difference).
    harness::TestRunner::Config cfg;
    cfg.bugs = lofi::BugConfig::none();
    harness::TestRunner runner(cfg);
    u64 diffs = 0;
    for (const GeneratedTest &test : pipeline().tests()) {
        const auto lofi_run =
            runner.run_one(harness::Backend::LoFi, test.program.code);
        const auto hw_run = runner.run_one(harness::Backend::Hardware,
                                           test.program.code);
        if (!arch::diff_snapshots(lofi_run.snapshot, hw_run.snapshot)
                 .empty()) {
            ++diffs;
        }
    }
    EXPECT_EQ(diffs, 0u);
}

TEST(RandomTesterBaseline, MissesOrderSensitiveBugs)
{
    RandomTesterOptions options;
    options.num_tests = 150;
    const RandomTesterStats stats = run_random_testing(options);
    EXPECT_EQ(stats.tests, 150u);
    // Random testing does find the blunt bugs...
    std::set<std::string> causes;
    for (const auto &c : stats.lofi_clusters.clusters())
        causes.insert(c.root_cause);
    // ...but not the alignment/order-sensitive ones (paper §6.2: the
    // iret read-order difference needs values straddling page or
    // segment boundaries, which has vanishing probability under
    // uniform random state).
    EXPECT_FALSE(causes.count("iret-pop-order"));
    EXPECT_FALSE(causes.count("far-pointer-fetch-order"));
}

} // namespace
} // namespace pokeemu
