/**
 * @file
 * Coverage subsystem tests (coverage/coverage.h): CoverageMap
 * accounting over toy CFGs, the uncovered-edge-first frontier policy,
 * explorer integration (trace, truncation reasons, coverage stats),
 * the determinism contract (scheduling is a pure function of
 * (unit, seed); unlimited caps change order but not the path set;
 * sharded campaign reports stay byte-identical with the scheduler on),
 * and the checkpoint-v2 coverage rows incl. the v1 refusal.
 */
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "arch/decoder.h"
#include "coverage/coverage.h"
#include "explore/state_explorer.h"
#include "ir/builder.h"
#include "ir/printer.h"
#include "pokeemu/pipeline.h"
#include "pokeemu/shard.h"
#include "symexec/explorer.h"
#include "testgen/baseline.h"

namespace pokeemu {
namespace {

using coverage::CoverageMap;
using coverage::SchedulePolicy;
using coverage::TruncationReason;
using ir::ExprRef;
using ir::IrBuilder;
using ir::Label;
namespace E = ir::E;

symexec::InitialByteFn
make_initial(symexec::VarPool &pool, u32 sym_base, u32 sym_len)
{
    return [&pool, sym_base, sym_len](u32 addr) -> ExprRef {
        if (addr >= sym_base && addr < sym_base + sym_len) {
            char name[32];
            std::snprintf(name, sizeof name, "mem_%08x", addr);
            return pool.get(name, 8);
        }
        return E::constant(8, 0);
    };
}

/** Branch on (x < 10), halt 1 or 2: a diamond-free two-leaf CFG. */
ir::Program
two_way_program()
{
    IrBuilder b("twoway");
    auto x = b.load(IrBuilder::imm32(0x1000), 4);
    Label lt = b.label(), ge = b.label();
    b.cjmp(E::ult(x, IrBuilder::imm32(10)), lt, ge);
    b.bind(lt);
    b.halt(1);
    b.bind(ge);
    b.halt(2);
    return b.finish();
}

/** Three independent symbolic bits -> 8 paths (halt codes 0..7). */
ir::Program
threebits_program()
{
    IrBuilder b("threebits");
    auto byte = b.load(IrBuilder::imm32(0x1000), 1);
    for (int i = 0; i < 3; ++i) {
        Label set = b.label(), join = b.label();
        auto cur = b.load(IrBuilder::imm32(0x2000), 1);
        b.cjmp(E::eq(E::extract(byte, i, 1), E::bool_const(true)), set,
               join);
        b.bind(set);
        b.store(IrBuilder::imm32(0x2000), 1,
                E::bor(cur, IrBuilder::imm8(1 << i)));
        b.bind(join);
        b.comment("next bit");
    }
    auto final_code = b.load(IrBuilder::imm32(0x2000), 1);
    b.halt(E::zext(final_code, 32));
    return b.finish();
}

// ---------------------------------------------------------------------
// CoverageMap accounting.
// ---------------------------------------------------------------------

TEST(CoverageMap, StartsDarkAndCountsReachableStructure)
{
    const ir::Program p = two_way_program();
    const CoverageMap map(p);
    const auto stats = map.stats();
    EXPECT_EQ(stats.covered_blocks, 0u);
    EXPECT_EQ(stats.covered_edges, 0u);
    // Entry block + two halt leaves; one edge per direction.
    EXPECT_EQ(stats.total_blocks, 3u);
    EXPECT_EQ(stats.total_edges, 2u);
}

TEST(CoverageMap, CoverPathMarksBlocksAndEdges)
{
    const ir::Program p = two_way_program();
    CoverageMap map(p);
    const coverage::BlockId entry = map.block_of(0);
    const auto &succs = map.cfg().blocks()[entry].succs;
    ASSERT_EQ(succs.size(), 2u);

    map.cover_path({entry, succs[0]});
    EXPECT_TRUE(map.block_covered(entry));
    EXPECT_TRUE(map.block_covered(succs[0]));
    EXPECT_FALSE(map.block_covered(succs[1]));
    EXPECT_TRUE(map.edge_covered(entry, succs[0]));
    EXPECT_FALSE(map.edge_covered(entry, succs[1]));
    const auto stats = map.stats();
    EXPECT_EQ(stats.covered_blocks, 2u);
    EXPECT_EQ(stats.covered_edges, 1u);

    // Covering the same path again must not double-count.
    map.cover_path({entry, succs[0]});
    EXPECT_EQ(map.stats().covered_blocks, 2u);
    EXPECT_EQ(map.stats().covered_edges, 1u);
}

TEST(CoverageMap, NonCfgEdgeReadsAsCovered)
{
    const ir::Program p = two_way_program();
    CoverageMap map(p);
    const coverage::BlockId entry = map.block_of(0);
    const auto &succs = map.cfg().blocks()[entry].succs;
    // The two leaves are not connected: nothing for a policy to chase.
    EXPECT_TRUE(map.edge_covered(succs[0], succs[1]));
}

TEST(CoverageMap, DistanceToUncoveredIsReverseBfs)
{
    const ir::Program p = two_way_program();
    CoverageMap map(p);
    const coverage::BlockId entry = map.block_of(0);
    const auto &succs = map.cfg().blocks()[entry].succs;
    // Nothing covered: the entry has uncovered out-edges -> distance 0;
    // the leaves have no out-edges at all -> unreachable sentinel.
    EXPECT_EQ(map.distance_to_uncovered(entry), 0u);
    EXPECT_EQ(map.distance_to_uncovered(succs[0]), ~u32{0});

    // Cover both edges: no uncovered structure remains anywhere.
    map.cover_path({entry, succs[0]});
    map.cover_path({entry, succs[1]});
    EXPECT_EQ(map.distance_to_uncovered(entry), ~u32{0});
}

TEST(CoverageBucket, BoundariesMatchTheHistogramLabels)
{
    EXPECT_EQ(coverage::coverage_bucket(10, 10), 0u);
    EXPECT_EQ(coverage::coverage_bucket(0, 0), 0u); // Empty = full.
    EXPECT_EQ(coverage::coverage_bucket(9, 10), 1u);
    EXPECT_EQ(coverage::coverage_bucket(8, 10), 2u);
    EXPECT_EQ(coverage::coverage_bucket(5, 10), 3u);
    EXPECT_EQ(coverage::coverage_bucket(4, 10), 4u);
    EXPECT_EQ(coverage::coverage_bucket(0, 10), 4u);
}

TEST(FrontierPolicy, PrefersTheUncoveredEdge)
{
    const ir::Program p = two_way_program();
    CoverageMap map(p);
    const coverage::BlockId entry = map.block_of(0);
    const auto &succs = map.cfg().blocks()[entry].succs;

    coverage::BranchContext ctx;
    ctx.from = entry;
    // target[dir] is the successor for direction dir; succs[0] is the
    // false target in Cfg order for a CJmp.
    ctx.target[0] = succs[0];
    ctx.target[1] = succs[1];

    const coverage::UncoveredEdgeFirst policy;
    // Both dark: no preference either way (tie on distance too).
    EXPECT_EQ(policy.prefer(map, ctx), std::nullopt);

    // Cover direction 0's edge: the policy must steer to direction 1.
    map.cover_path({entry, succs[0]});
    const auto preferred = policy.prefer(map, ctx);
    ASSERT_TRUE(preferred.has_value());
    EXPECT_TRUE(*preferred);

    // Cover the other too: nothing left to prefer.
    map.cover_path({entry, succs[1]});
    EXPECT_EQ(policy.prefer(map, ctx), std::nullopt);
}

// ---------------------------------------------------------------------
// Explorer integration.
// ---------------------------------------------------------------------

TEST(ExplorerCoverage, CompleteExplorationCoversEverything)
{
    const ir::Program p = threebits_program();
    symexec::VarPool pool;
    CoverageMap map(p);
    symexec::ExplorerConfig config;
    config.coverage = &map;
    config.policy =
        coverage::frontier_policy(SchedulePolicy::UncoveredEdgeFirst);
    symexec::PathExplorer ex(p, pool, make_initial(pool, 0x1000, 1),
                             config);
    const auto stats =
        ex.explore([](const symexec::PathInfo &,
                      symexec::SymbolicMemory &) {});
    EXPECT_EQ(stats.paths, 8u);
    EXPECT_TRUE(stats.complete);
    EXPECT_EQ(stats.truncation, TruncationReason::None);
    // Every block and edge is feasible here, so complete exploration
    // means complete coverage, and the stats mirror the map.
    EXPECT_EQ(stats.covered_blocks, stats.total_blocks);
    EXPECT_EQ(stats.covered_edges, stats.total_edges);
    EXPECT_GT(stats.total_blocks, 0u);
    EXPECT_EQ(stats.covered_blocks, map.stats().covered_blocks);
}

TEST(ExplorerCoverage, PathCapSetsTruncationReason)
{
    const ir::Program p = threebits_program();
    symexec::VarPool pool;
    CoverageMap map(p);
    symexec::ExplorerConfig config;
    config.max_paths = 2;
    config.coverage = &map;
    symexec::PathExplorer ex(p, pool, make_initial(pool, 0x1000, 1),
                             config);
    const auto stats =
        ex.explore([](const symexec::PathInfo &,
                      symexec::SymbolicMemory &) {});
    EXPECT_EQ(stats.paths, 2u);
    EXPECT_FALSE(stats.complete);
    EXPECT_EQ(stats.truncation, TruncationReason::PathCap);
    EXPECT_LT(stats.covered_blocks, stats.total_blocks);
}

TEST(ExplorerCoverage, StepLimitSetsTruncationReason)
{
    const ir::Program p = threebits_program();
    symexec::VarPool pool;
    symexec::ExplorerConfig config;
    config.max_steps = 4; // Every path dies at the budget.
    CoverageMap map(p);
    config.coverage = &map;
    symexec::PathExplorer ex(p, pool, make_initial(pool, 0x1000, 1),
                             config);
    const auto stats =
        ex.explore([](const symexec::PathInfo &,
                      symexec::SymbolicMemory &) {});
    EXPECT_GT(stats.step_limited, 0u);
    EXPECT_EQ(stats.truncation, TruncationReason::StepLimit);
}

TEST(ExplorerCoverage, DeadlineSetsTruncationReason)
{
    const ir::Program p = threebits_program();
    symexec::VarPool pool;
    CoverageMap map(p);
    symexec::ExplorerConfig config;
    config.coverage = &map;
    config.deadline = support::Deadline::with(0, 1); // 1 step total.
    symexec::PathExplorer ex(p, pool, make_initial(pool, 0x1000, 1),
                             config);
    const auto stats =
        ex.explore([](const symexec::PathInfo &,
                      symexec::SymbolicMemory &) {});
    EXPECT_TRUE(stats.deadline_expired);
    EXPECT_EQ(stats.truncation, TruncationReason::Deadline);
}

TEST(ExplorerCoverage, FrontierCoversMoreUnderTheSameCap)
{
    // The same capped exploration, scheduled vs default: the frontier
    // policy must reach at least as much structure, and on this
    // 8-leaf tree strictly more edges than at least one seed's default
    // order. (The campaign-level strict win is asserted by the
    // bench_coverage smoke ctest on real instruction workloads.)
    const ir::Program p = threebits_program();
    const auto run = [&](const coverage::FrontierPolicy *policy) {
        symexec::VarPool pool;
        CoverageMap map(p);
        symexec::ExplorerConfig config;
        config.max_paths = 3;
        config.coverage = &map;
        config.policy = policy;
        symexec::PathExplorer ex(p, pool,
                                 make_initial(pool, 0x1000, 1), config);
        const auto stats =
            ex.explore([](const symexec::PathInfo &,
                          symexec::SymbolicMemory &) {});
        return stats.covered_blocks + stats.covered_edges;
    };
    const u64 frontier = run(coverage::frontier_policy(
        SchedulePolicy::UncoveredEdgeFirst));
    const u64 fallback = run(nullptr);
    EXPECT_GE(frontier, fallback);
}

// ---------------------------------------------------------------------
// Determinism contract.
// ---------------------------------------------------------------------

/** Serialize one explored path for set comparison: the halt code plus
 *  the printed path condition (order-independent across runs). */
std::multiset<std::string>
path_set(const ir::Program &p, SchedulePolicy schedule, u64 max_paths,
         u64 seed)
{
    symexec::VarPool pool;
    CoverageMap map(p);
    symexec::ExplorerConfig config;
    config.max_paths = max_paths;
    config.seed = seed;
    config.coverage = &map;
    config.policy = coverage::frontier_policy(schedule);
    symexec::PathExplorer ex(p, pool, make_initial(pool, 0x1000, 1),
                             config);
    std::multiset<std::string> out;
    ex.explore([&](const symexec::PathInfo &info,
                   symexec::SymbolicMemory &) {
        std::string key = std::to_string(info.halt_code);
        for (const ExprRef &conjunct : info.path_condition)
            key += "|" + ir::to_string(conjunct);
        out.insert(std::move(key));
    });
    return out;
}

TEST(ScheduleDeterminism, PureFunctionOfUnitAndSeed)
{
    const ir::Program p = threebits_program();
    // Same seed -> byte-identical path sets (and, because the multiset
    // is built in callback order, identical order too).
    for (const u64 seed : {1ull, 7ull, 1234567ull}) {
        const auto a = path_set(p, SchedulePolicy::UncoveredEdgeFirst,
                                4, seed);
        const auto b = path_set(p, SchedulePolicy::UncoveredEdgeFirst,
                                4, seed);
        EXPECT_EQ(a, b) << "seed " << seed;
    }
}

TEST(ScheduleDeterminism, UnlimitedCapChangesOrderNotPaths)
{
    // With no cap the decision tree is exhausted either way: the
    // scheduler may only reorder the enumeration, never change the
    // path set.
    const ir::Program p = threebits_program();
    const auto frontier =
        path_set(p, SchedulePolicy::UncoveredEdgeFirst, u64(-1), 1);
    const auto fallback =
        path_set(p, SchedulePolicy::DefaultOrder, u64(-1), 1);
    EXPECT_EQ(frontier.size(), 8u);
    EXPECT_EQ(frontier, fallback);
}

TEST(ScheduleDeterminism, UnlimitedCapSamePathSetOnRealInstruction)
{
    // The same invariant through the state-exploration layer on a real
    // multi-path instruction (shl eax, cl).
    symexec::VarPool summary_pool;
    const symexec::Summary summary =
        hifi::summarize_descriptor_load(summary_pool);
    const explore::StateSpec spec(testgen::baseline_cpu_state(),
                                  testgen::baseline_ram_after_init(),
                                  &summary);
    const u8 bytes[] = {0xd3, 0xe0, 0, 0, 0, 0};
    arch::DecodedInsn insn;
    ASSERT_EQ(arch::decode(bytes, sizeof bytes, insn),
              arch::DecodeStatus::Ok);

    const auto run = [&](SchedulePolicy schedule) {
        explore::StateExploreOptions options;
        options.schedule = schedule;
        options.minimize = false;
        const explore::StateExploreResult result =
            explore_instruction(insn, spec, &summary, options);
        EXPECT_TRUE(result.stats.complete);
        std::multiset<u32> halts;
        for (const auto &path : result.paths)
            halts.insert(path.halt_code);
        return std::make_pair(result.stats.paths, halts);
    };
    const auto frontier = run(SchedulePolicy::UncoveredEdgeFirst);
    const auto fallback = run(SchedulePolicy::DefaultOrder);
    EXPECT_EQ(frontier.first, fallback.first);
    EXPECT_EQ(frontier.second, fallback.second);
}

// ---------------------------------------------------------------------
// Pipeline + campaign integration.
// ---------------------------------------------------------------------

int
index_of(std::initializer_list<u8> bytes)
{
    std::vector<u8> buf(bytes);
    buf.resize(arch::kMaxInsnLength, 0);
    arch::DecodedInsn insn;
    EXPECT_EQ(arch::decode(buf.data(), buf.size(), insn),
              arch::DecodeStatus::Ok);
    return insn.table_index;
}

CampaignOptions
capped_campaign()
{
    CampaignOptions options;
    options.pipeline.instruction_filter = {
        index_of({0xcf}),       // iret: deep multi-path tree
        index_of({0x50}),       // push eax
        index_of({0xc4, 0x00}), // les (multi-path far pointer load)
        index_of({0xd3, 0xe0}), // shl eax, cl
    };
    options.pipeline.max_paths_per_insn = 4; // Truncates iret + les.
    return options;
}

std::filesystem::path
scratch_dir(const std::string &name)
{
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("pokeemu_coverage_" + name);
    std::filesystem::remove_all(dir);
    return dir;
}

TEST(PipelineCoverage, StatsCarryCoverageAndTruncation)
{
    PipelineOptions options;
    options.instruction_filter =
        capped_campaign().pipeline.instruction_filter;
    options.max_paths_per_insn = 4;
    Pipeline pipeline(options);
    pipeline.explore_and_generate();
    const PipelineStats &stats = pipeline.stats();
    EXPECT_EQ(stats.instructions_explored, 4u);
    EXPECT_GT(stats.total_blocks, 0u);
    EXPECT_GT(stats.covered_blocks, 0u);
    EXPECT_LE(stats.covered_blocks, stats.total_blocks);
    EXPECT_LE(stats.covered_edges, stats.total_edges);
    // The cap truncates the multi-path instructions.
    EXPECT_GT(stats.truncated_path_cap, 0u);
    EXPECT_TRUE(stats.any_truncation());
    EXPECT_EQ(stats.truncated_solver_timeout(), 0u);
    // Histogram rows account for every explored unit exactly once.
    u64 bucketed = 0;
    for (unsigned b = 0; b < coverage::kNumCoverageBuckets; ++b)
        bucketed += stats.coverage_histogram[b];
    EXPECT_EQ(bucketed, stats.instructions_explored);
    // The per-unit checkpoint rows mirror the totals.
    u64 unit_blocks = 0;
    for (const CheckpointUnit &u : pipeline.checkpoint().explored)
        unit_blocks += u.covered_blocks;
    EXPECT_EQ(unit_blocks, stats.covered_blocks);
    // And the human-readable report mentions them.
    const std::string report = stats.to_string();
    EXPECT_NE(report.find("IR coverage:"), std::string::npos);
    EXPECT_NE(report.find("truncated explorations:"),
              std::string::npos);
}

TEST(PipelineCoverage, ReportsAreByteIdenticalAcrossShardCounts)
{
    const std::string reference =
        run_campaign(capped_campaign()).report();
    EXPECT_NE(reference.find("IR coverage:"), std::string::npos);
    EXPECT_NE(reference.find("coverage histogram:"), std::string::npos);
    EXPECT_NE(reference.find("truncated explorations:"),
              std::string::npos);
    for (const u32 shards : {2u, 4u}) {
        CampaignOptions options = capped_campaign();
        options.shards = shards;
        EXPECT_EQ(run_campaign(options).report(), reference)
            << shards << " shards";
    }
}

TEST(PipelineCoverage, PathCoverReportsByteIdenticalAcrossShards)
{
    // The PathCoverFirst scheduler must preserve the merge contract:
    // byte-identical reports for any shard count.
    CampaignOptions base = capped_campaign();
    base.pipeline.schedule = SchedulePolicy::PathCoverFirst;
    const std::string reference = run_campaign(base).report();
    EXPECT_NE(reference.find("IR coverage:"), std::string::npos);
    for (const u32 shards : {2u, 4u, 8u}) {
        CampaignOptions options = base;
        options.shards = shards;
        EXPECT_EQ(run_campaign(options).report(), reference)
            << shards << " shards";
    }
}

TEST(PipelineCoverage, PathCoverInterruptedResumeMatches)
{
    CampaignOptions base = capped_campaign();
    base.pipeline.schedule = SchedulePolicy::PathCoverFirst;
    const std::string reference = run_campaign(base).report();
    const auto dir = scratch_dir("pathcover_resume");
    CampaignOptions options = base;
    options.shards = 2;
    options.checkpoint_dir = dir.string();
    options.explore_slice_units = 1;
    options.max_sessions_per_shard = 1; // Interrupt after one unit.
    const CampaignResult interrupted = run_campaign(options);
    EXPECT_FALSE(interrupted.complete);

    options.resume = true;
    options.max_sessions_per_shard = 0;
    const CampaignResult resumed = run_campaign(options);
    EXPECT_TRUE(resumed.complete);
    EXPECT_EQ(resumed.report(), reference);
    std::filesystem::remove_all(dir);
}

TEST(PipelineCoverage, InterruptedResumeMatchesUninterrupted)
{
    const std::string reference =
        run_campaign(capped_campaign()).report();
    const auto dir = scratch_dir("resume");
    CampaignOptions options = capped_campaign();
    options.shards = 2;
    options.checkpoint_dir = dir.string();
    options.explore_slice_units = 1;
    options.max_sessions_per_shard = 1; // Interrupt after one unit.
    const CampaignResult interrupted = run_campaign(options);
    EXPECT_FALSE(interrupted.complete);

    options.resume = true;
    options.max_sessions_per_shard = 0;
    const CampaignResult resumed = run_campaign(options);
    EXPECT_TRUE(resumed.complete);
    EXPECT_EQ(resumed.report(), reference);
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// Checkpoint v2 rows.
// ---------------------------------------------------------------------

TEST(CheckpointV2, CoverageFieldsRoundTrip)
{
    Checkpoint cp;
    cp.fingerprint = 42;
    CheckpointUnit u;
    u.table_index = 7;
    u.complete = false;
    u.paths = 4;
    u.covered_blocks = 9;
    u.total_blocks = 12;
    u.covered_edges = 8;
    u.total_edges = 15;
    u.truncation = TruncationReason::PathCap;
    cp.explored.push_back(u);

    std::stringstream buf;
    save_checkpoint(buf, cp);
    const Checkpoint back = load_checkpoint(buf);
    ASSERT_EQ(back.explored.size(), 1u);
    const CheckpointUnit &r = back.explored[0];
    EXPECT_EQ(r.covered_blocks, 9u);
    EXPECT_EQ(r.total_blocks, 12u);
    EXPECT_EQ(r.covered_edges, 8u);
    EXPECT_EQ(r.total_edges, 15u);
    EXPECT_EQ(r.truncation, TruncationReason::PathCap);
}

TEST(CheckpointV2, RefusesV1FilesByName)
{
    // A well-formed v1 header must produce a targeted error, not a
    // generic parse failure: v1 rows carry no coverage columns and
    // resuming one would silently under-report campaign coverage.
    std::stringstream v1("pokeemu-checkpoint-v1\n"
                         "fingerprint 1\nexplored 0\nexecuted 0\n");
    try {
        load_checkpoint(v1);
        FAIL() << "v1 checkpoint was accepted";
    } catch (const std::logic_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("pokeemu-checkpoint-v1"),
                  std::string::npos);
        EXPECT_NE(what.find("cannot be resumed"), std::string::npos);
    }
}

TEST(CheckpointV2, RejectsBadTruncationReason)
{
    Checkpoint cp;
    CheckpointUnit u;
    u.table_index = 1;
    cp.explored.push_back(u);
    std::stringstream buf;
    save_checkpoint(buf, cp);
    std::string text = buf.str();
    // The truncation column is the 16th field after "unit" (see
    // save_checkpoint's unit row layout).
    const auto pos = text.find("unit ");
    ASSERT_NE(pos, std::string::npos);
    std::size_t field_start = pos;
    for (int f = 0; f < 16; ++f) {
        field_start = text.find(' ', field_start);
        ASSERT_NE(field_start, std::string::npos);
        ++field_start;
    }
    const std::size_t field_end = text.find(' ', field_start);
    ASSERT_NE(field_end, std::string::npos);
    text.replace(field_start, field_end - field_start, "99");
    std::stringstream bad(text);
    EXPECT_THROW(load_checkpoint(bad), std::logic_error);
}

} // namespace
} // namespace pokeemu
