/**
 * @file
 * Tests for the exploration stages: instruction-set exploration over
 * the symbolic decoder, the Figure-3 state spec, and per-instruction
 * state-space exploration properties.
 */
#include <gtest/gtest.h>

#include <set>

#include "explore/insn_explorer.h"
#include "hifi/hifi_emulator.h"
#include "ir/eval.h"
#include "support/rng.h"
#include "explore/state_explorer.h"
#include "testgen/baseline.h"

namespace pokeemu::explore {
namespace {

arch::DecodedInsn
decode_insn(std::initializer_list<u8> bytes)
{
    std::vector<u8> buf(bytes);
    buf.resize(arch::kMaxInsnLength, 0);
    arch::DecodedInsn insn;
    EXPECT_EQ(arch::decode(buf.data(), buf.size(), insn),
              arch::DecodeStatus::Ok);
    return insn;
}

struct SpecEnv
{
    symexec::VarPool summary_pool;
    symexec::Summary summary;
    StateSpec spec;

    SpecEnv()
        : summary(hifi::summarize_descriptor_load(summary_pool)),
          spec(testgen::baseline_cpu_state(),
               testgen::baseline_ram_after_init(), &summary)
    {
    }
};

SpecEnv &
env()
{
    static SpecEnv instance;
    return instance;
}

TEST(InsnSetExploration, CappedRunFindsInstructions)
{
    InsnSetOptions options;
    options.max_paths = 1500;
    const InsnSetResult r = explore_instruction_set(options);
    EXPECT_GT(r.candidate_sequences, 100u);
    EXPECT_GT(r.representatives.size(), 30u);
    EXPECT_GT(r.invalid_sequences, 0u);
    // Every representative must decode to its claimed table row.
    for (const auto &[index, bytes] : r.representatives) {
        arch::DecodedInsn insn;
        ASSERT_EQ(arch::decode(bytes.data(), bytes.size(), insn),
                  arch::DecodeStatus::Ok);
        EXPECT_EQ(insn.table_index, index);
    }
}

TEST(StateSpec, LocatesItsVariables)
{
    const StateSpec &spec = env().spec;
    const auto eax0 = spec.locate("gpr_eax_b0");
    ASSERT_TRUE(eax0.has_value());
    EXPECT_EQ(eax0->kind, VarLocation::Kind::CpuByte);
    EXPECT_EQ(eax0->addr, arch::layout::kOffGpr);
    EXPECT_EQ(eax0->mask, 0xff);

    const auto gdt = spec.locate("gdt10_b5");
    ASSERT_TRUE(gdt.has_value());
    EXPECT_EQ(gdt->kind, VarLocation::Kind::RamByte);
    EXPECT_EQ(gdt->addr, arch::layout::kPhysGdt + 8 * 10 + 5);

    const auto mem = spec.locate("mem_00201234");
    ASSERT_TRUE(mem.has_value());
    EXPECT_EQ(mem->addr, 0x00201234u);

    EXPECT_FALSE(spec.locate("nonsense").has_value());
}

TEST(StateSpec, PinnedBitsStayConcrete)
{
    symexec::VarPool pool;
    auto initial = env().spec.initial_fn(pool);
    // CR0 byte 0: PE (bit 0) pinned to 1; byte 3: PG (bit 7) pinned.
    auto cr0_b0 = initial(arch::layout::kCr0Addr);
    auto cr0_b3 = initial(arch::layout::kCr0Addr + 3);
    // Extracting the pinned bits must fold to constants.
    EXPECT_TRUE(ir::E::extract(cr0_b0, 0, 1)->is_const(1));
    EXPECT_TRUE(ir::E::extract(cr0_b3, 7, 1)->is_const(1));
    // A symbolic bit stays symbolic (WP = bit 16 -> byte 2 bit 0).
    auto cr0_b2 = initial(arch::layout::kCr0Addr + 2);
    EXPECT_FALSE(ir::E::extract(cr0_b2, 0, 1)->is_const());
    // EIP is pinned entirely.
    auto eip0 = initial(arch::layout::kEipAddr);
    EXPECT_TRUE(eip0->is_const());
}

TEST(StateSpec, SegmentCachesDeriveFromGdtBytes)
{
    symexec::VarPool pool;
    auto initial = env().spec.initial_fn(pool);
    // The SS limit byte is an expression over the gdt10 variables.
    auto limit_b0 = initial(
        arch::layout::seg_addr(arch::kSs, arch::layout::kSegLimit));
    std::vector<ir::ExprRef> vars;
    ir::Expr::collect_vars(limit_b0, vars);
    bool mentions_gdt10 = false;
    for (const auto &v : vars)
        mentions_gdt10 |= v->name().rfind("gdt10_", 0) == 0;
    EXPECT_TRUE(mentions_gdt10);
}

TEST(StateSpec, BaselineAssignmentSatisfiesPreconditions)
{
    symexec::VarPool pool;
    auto initial = env().spec.initial_fn(pool);
    (void)initial;
    const auto pre = env().spec.preconditions(pool);
    ASSERT_FALSE(pre.empty());
    const solver::Assignment base =
        env().spec.baseline_assignment(pool);
    // The baseline descriptors are loadable, so the baseline values
    // must satisfy every loadability precondition.
    EXPECT_TRUE(base.satisfies(pre));
}

TEST(StateExploration, PathsAreDistinctBehaviours)
{
    const arch::DecodedInsn insn = decode_insn({0x50}); // push eax
    StateExploreOptions options;
    options.max_paths = 64;
    const StateExploreResult r =
        explore_instruction(insn, env().spec, &env().summary, options);
    EXPECT_TRUE(r.stats.complete);
    EXPECT_GE(r.paths.size(), 4u);
    // The outcomes must include both success and faults.
    std::set<u32> codes;
    for (const auto &p : r.paths)
        codes.insert(p.halt_code);
    EXPECT_TRUE(codes.count(hifi::kHaltOk));
    EXPECT_TRUE(codes.count(hifi::halt_exception_code(arch::kExcPf)) ||
                codes.count(hifi::halt_exception_code(arch::kExcSs)));
}

TEST(StateExploration, JccExploresBothDirections)
{
    const arch::DecodedInsn insn = decode_insn({0x74, 0x10}); // jz
    StateExploreOptions options;
    options.max_paths = 8;
    StateExploreResult r =
        explore_instruction(insn, env().spec, &env().summary, options);
    EXPECT_TRUE(r.stats.complete);
    EXPECT_EQ(r.paths.size(), 2u);
    // The two paths must disagree on ZF.
    const auto zf_byte = r.pool.get("eflags_b0", 8);
    const u64 zf0 =
        (r.paths[0].assignment.get(zf_byte->var_id()) >> 6) & 1;
    const u64 zf1 =
        (r.paths[1].assignment.get(zf_byte->var_id()) >> 6) & 1;
    EXPECT_NE(zf0, zf1);
}

TEST(StateExploration, DivideFaultStateHasZeroDivisor)
{
    const arch::DecodedInsn insn = decode_insn({0xf7, 0xf3}); // div ebx
    StateExploreOptions options;
    options.max_paths = 16;
    const StateExploreResult r =
        explore_instruction(insn, env().spec, &env().summary, options);
    bool found_de = false;
    for (const auto &p : r.paths) {
        if (p.halt_code != hifi::halt_exception_code(arch::kExcDe))
            continue;
        found_de = true;
    }
    EXPECT_TRUE(found_de);
}

TEST(StateExploration, MinimizationOnlyImprovesBaselineDistance)
{
    const arch::DecodedInsn insn = decode_insn({0xcf}); // iret
    StateExploreOptions with, without;
    with.max_paths = without.max_paths = 32;
    without.minimize = false;
    const auto r_with =
        explore_instruction(insn, env().spec, &env().summary, with);
    const auto r_without = explore_instruction(insn, env().spec,
                                               &env().summary, without);
    EXPECT_LT(r_with.minimize.bits_different_after,
              r_with.minimize.bits_different_before);
    EXPECT_EQ(r_without.minimize.bits_tried, 0u);
}

TEST(StateExploration, RepStringHitsPathCap)
{
    const arch::DecodedInsn insn = decode_insn({0xf3, 0xaa}); // rep stosb
    StateExploreOptions options;
    options.max_paths = 6;
    options.max_steps = 3000;
    const StateExploreResult r =
        explore_instruction(insn, env().spec, &env().summary, options);
    // Iteration counts make this inexhaustible: the cap must bite
    // (the paper's ~5% incomplete class).
    EXPECT_FALSE(r.stats.complete);
    EXPECT_EQ(r.paths.size(), 6u);
}

TEST(Summary, MatchesInlineSemantics)
{
    // The summarized and inline segment-load semantics must agree:
    // run mov ds,ax over random GDT entry bytes on the Hi-Fi emulator
    // built each way and compare outcomes.
    Rng rng(31337);
    const arch::DecodedInsn insn = decode_insn({0x8e, 0xd8});
    ir::Program with_summary = hifi::build_semantics(
        insn, {true, &env().summary});
    ir::Program inline_parse = hifi::build_semantics(insn, {true,
                                                            nullptr});
    for (int trial = 0; trial < 40; ++trial) {
        arch::CpuState cpu = testgen::baseline_cpu_state();
        std::vector<u8> ram = testgen::baseline_ram_after_init();
        cpu.gpr[arch::kEax] = 0x18; // Selector: GDT entry 3.
        for (unsigned i = 0; i < 8; ++i)
            ram[arch::layout::kPhysGdt + 8 * 3 + i] =
                static_cast<u8>(rng.next());

        auto run_with = [&](const ir::Program &program) {
            hifi::HiFiEmulator emu;
            emu.reset(cpu, ram);
            // Interpret the program directly against the emulator's
            // address space.
            const ir::RunResult res = ir::run_concrete(program, emu);
            EXPECT_EQ(res.status, ir::RunStatus::Halted);
            return std::make_pair(res.halt_code, emu.cpu());
        };
        const auto a = run_with(with_summary);
        const auto b = run_with(inline_parse);
        EXPECT_EQ(a.first, b.first) << "trial " << trial;
        EXPECT_EQ(a.second, b.second) << "trial " << trial;
    }
}

} // namespace
} // namespace pokeemu::explore
