/**
 * @file
 * Compiled-semantics tests (hifi/compiled.h + the semgen-generated
 * table): table freshness, handler-vs-interpreter agreement including
 * the retired-statement count, byte-identical pipeline reports across
 * CompiledExec modes and shard counts, and the CodegenMismatch
 * quarantine paths (forced CrossCheck divergence, stale-table guard).
 * The exhaustive per-unit differential sweep is the
 * semgen_crosscheck_all ctest (tools/semgen_check.cpp); here a sample
 * keeps unit-suite latency low.
 */
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "hifi/compiled.h"
#include "pokeemu/shard.h"

namespace pokeemu {
namespace {

int
index_of(std::initializer_list<u8> bytes)
{
    std::vector<u8> buf(bytes);
    buf.resize(arch::kMaxInsnLength, 0);
    arch::DecodedInsn insn;
    EXPECT_EQ(arch::decode(buf.data(), buf.size(), insn),
              arch::DecodeStatus::Ok);
    return insn.table_index;
}

/** Small shared workload for the report-identity pipelines. */
CampaignOptions
base_campaign()
{
    CampaignOptions options;
    options.pipeline.instruction_filter = {
        index_of({0x50}),       // push eax
        index_of({0xc9}),       // leave
        index_of({0x74, 0x00}), // jz
        index_of({0xd3, 0xe0}), // shl eax, cl
    };
    options.pipeline.max_paths_per_insn = 8;
    return options;
}

TEST(CompiledTable, StampMatchesExpectedHash)
{
    const hifi::CompiledTable &table = hifi::compiled_table();
    EXPECT_EQ(table.semantics_hash, hifi::compiled_expected_hash());
    EXPECT_EQ(table.num_entries, hifi::compiled_units().size());
    EXPECT_EQ(table.rows, arch::insn_table().size());
    EXPECT_EQ(table.row_begin[0], 0u);
    EXPECT_EQ(table.row_begin[table.rows], table.num_entries);
}

TEST(CompiledTable, CoversEveryRowPlusVariants)
{
    const auto &units = hifi::compiled_units();
    const std::size_t rows = arch::insn_table().size();
    ASSERT_GE(units.size(), rows);
    std::vector<bool> covered(rows, false);
    std::size_t variants = 0;
    for (const hifi::CompiledUnit &unit : units) {
        covered[static_cast<std::size_t>(unit.insn.table_index)] = true;
        variants += unit.variant;
    }
    for (std::size_t i = 0; i < rows; ++i)
        EXPECT_TRUE(covered[i]) << "row " << i << " has no handler";
    // Both operand forms of ModRM instructions get handlers.
    EXPECT_GT(variants, 100u);
}

/** Handler agrees with the interpreter on RunResult — including
 *  steps, the retired-IR-statement count (so replay accounting is
 *  mode-independent) — and on the store journal. */
TEST(CompiledHandlers, DifferentialSampleAgreesWithInterpreter)
{
    const auto &units = hifi::compiled_units();
    const hifi::CompiledTable &table = hifi::compiled_table();
    ASSERT_EQ(table.num_entries, units.size());
    // Every 13th unit: a spread over rows and both operand forms.
    for (std::size_t u = 0; u < units.size(); u += 13) {
        const hifi::CompiledUnit &unit = units[u];
        for (u64 s = 0; s < 4; ++s) {
            const u64 seed = 0x9e3779b9u * (u + 1) + s;
            const u32 imm =
                unit.params_ok ? static_cast<u32>(seed * 2654435761u)
                               : unit.insn.imm;
            const u32 disp =
                unit.params_ok ? static_cast<u32>(seed * 40503u)
                               : unit.insn.disp;
            hifi::ReplayMemory ref(seed);
            ref.poke(hifi::param_block::kImm, 4, imm);
            ref.poke(hifi::param_block::kDisp, 4, disp);
            const ir::RunResult want =
                ir::run_concrete(unit.program, ref);

            hifi::ReplayMemory got(seed);
            got.poke(hifi::param_block::kImm, 4, imm);
            got.poke(hifi::param_block::kDisp, 4, disp);
            const ir::RunResult have =
                table.entries[u].handler(got, 1u << 22);

            ASSERT_EQ(want.status, have.status)
                << unit.insn.desc->mnemonic << " unit " << u;
            EXPECT_EQ(want.halt_code, have.halt_code)
                << unit.insn.desc->mnemonic;
            EXPECT_EQ(want.steps, have.steps)
                << unit.insn.desc->mnemonic;
            EXPECT_EQ(ref.journal().size(), got.journal().size());
            for (std::size_t j = 0; j < ref.journal().size() &&
                 j < got.journal().size();
                 ++j) {
                EXPECT_TRUE(ref.journal()[j] == got.journal()[j])
                    << unit.insn.desc->mnemonic << " store " << j;
            }
        }
    }
}

TEST(CompiledPipeline, ReportByteIdenticalAcrossModes)
{
    CampaignOptions options = base_campaign();
    const CampaignResult off = run_campaign(options);
    EXPECT_EQ(off.merged.compiled_hits, 0u);

    options.pipeline.compiled = hifi::CompiledExec::On;
    const CampaignResult on = run_campaign(options);
    EXPECT_EQ(on.report(), off.report());
    EXPECT_GT(on.merged.compiled_hits, 0u);

    options.pipeline.compiled = hifi::CompiledExec::CrossCheck;
    const CampaignResult crosscheck = run_campaign(options);
    EXPECT_EQ(crosscheck.report(), off.report());
    EXPECT_GT(crosscheck.merged.compiled_hits, 0u);
    EXPECT_EQ(crosscheck.merged.quarantine.total(), 0u);
}

TEST(CompiledPipeline, ReportByteIdenticalAcrossShardCounts)
{
    CampaignOptions options = base_campaign();
    options.pipeline.compiled = hifi::CompiledExec::On;
    const std::string reference = run_campaign(options).report();
    for (u32 shards : {2u, 4u}) {
        options.shards = shards;
        const CampaignResult result = run_campaign(options);
        EXPECT_EQ(result.report(), reference) << shards << " shards";
        EXPECT_GT(result.merged.compiled_hits, 0u);
    }
}

TEST(CompiledPipeline, ForcedCrossCheckDivergenceQuarantines)
{
    PipelineOptions options = base_campaign().pipeline;
    options.compiled = hifi::CompiledExec::CrossCheck;
    hifi::compiled_test_force_mismatch(true);
    Pipeline pipeline(options);
    const PipelineStats &stats = pipeline.run();
    hifi::compiled_test_force_mismatch(false);

    // Every test's Hi-Fi run diverges; each is quarantined as
    // CodegenMismatch and the sweep still completes.
    EXPECT_EQ(stats.tests_executed, 0u);
    EXPECT_GT(stats.test_programs, 0u);
    EXPECT_EQ(stats.quarantine.count(
                  support::FaultClass::CodegenMismatch),
              stats.test_programs);
}

TEST(CompiledPipeline, StaleTableRefused)
{
    PipelineOptions options = base_campaign().pipeline;
    options.compiled = hifi::CompiledExec::On;
    hifi::compiled_test_override_hash(~u64{0});
    Pipeline pipeline(options);
    const PipelineStats &stats = pipeline.run();
    hifi::compiled_test_override_hash(0);

    EXPECT_EQ(stats.tests_executed, 0u);
    EXPECT_GT(stats.test_programs, 0u);
    EXPECT_EQ(stats.quarantine.count(
                  support::FaultClass::CodegenMismatch),
              stats.test_programs);

    // With the real hash restored the same workload runs compiled.
    Pipeline recovered(options);
    const PipelineStats &ok = recovered.run();
    EXPECT_EQ(ok.quarantine.total(), 0u);
    EXPECT_EQ(ok.tests_executed, ok.test_programs);
}

TEST(CompiledPipeline, FingerprintSeparatesModes)
{
    PipelineOptions options;
    const u64 off = options_fingerprint(options);
    options.compiled = hifi::CompiledExec::On;
    const u64 on = options_fingerprint(options);
    options.compiled = hifi::CompiledExec::CrossCheck;
    const u64 crosscheck = options_fingerprint(options);
    EXPECT_NE(off, on);
    EXPECT_NE(on, crosscheck);
    EXPECT_NE(off, crosscheck);
}

} // namespace
} // namespace pokeemu
