/**
 * @file
 * Tests for the IR static-analysis subsystem (analysis/): positive
 * coverage — every shipped semantics program verifies clean of
 * errors — and negative coverage proving each verifier check and lint
 * pass actually fires on a program crafted to violate it.
 */
#include <gtest/gtest.h>

#include "analysis/cfg.h"
#include "analysis/passes.h"
#include "analysis/verifier.h"
#include "arch/decoder.h"
#include "hifi/decoder_ir.h"
#include "hifi/semantics.h"
#include "ir/builder.h"

namespace pokeemu {
namespace {

using analysis::Cfg;
using analysis::Report;
using analysis::Severity;
using analysis::Verifier;
using ir::ExprRef;
using ir::IrBuilder;
using ir::Program;
using ir::Stmt;
using ir::StmtKind;
namespace E = ir::E;

/** True when @p report holds a finding of @p severity mentioning
 *  @p needle. */
bool
has_finding(const Report &report, Severity severity,
            const std::string &needle)
{
    for (const analysis::Diagnostic &d : report.diagnostics()) {
        if (d.severity == severity &&
            d.message.find(needle) != std::string::npos) {
            return true;
        }
    }
    return false;
}

/** A minimal well-formed program: assign then halt. */
Program
trivial_program()
{
    IrBuilder b("trivial");
    b.halt(0);
    return b.finish();
}

// ---------------------------------------------------------------------
// Positive cases: the shipped semantics, decoder, and helper programs
// all verify clean of error-severity findings.
// ---------------------------------------------------------------------

TEST(AnalysisPositive, EveryInsnTableProgramVerifiesClean)
{
    const auto &table = arch::insn_table();
    for (std::size_t i = 0; i < table.size(); ++i) {
        const std::vector<u8> bytes =
            arch::canonical_encoding(static_cast<int>(i));
        arch::DecodedInsn insn;
        ASSERT_EQ(arch::decode(bytes.data(), bytes.size(), insn),
                  arch::DecodeStatus::Ok)
            << "entry " << i << " (" << table[i].mnemonic << ")";
        const Report report =
            analysis::run_pipeline(hifi::build_semantics(insn));
        EXPECT_FALSE(report.has_errors())
            << "entry " << i << " (" << table[i].mnemonic << "):\n"
            << report.to_string();
    }
}

TEST(AnalysisPositive, DecoderAndHelperProgramsVerifyClean)
{
    const Report decoder =
        analysis::run_pipeline(hifi::build_decoder_program());
    EXPECT_FALSE(decoder.has_errors()) << decoder.to_string();

    const Report helper =
        analysis::run_pipeline(hifi::build_descriptor_load_helper());
    EXPECT_FALSE(helper.has_errors()) << helper.to_string();
}

TEST(AnalysisPositive, TrivialProgramIsCompletelyClean)
{
    EXPECT_TRUE(analysis::run_pipeline(trivial_program()).empty());
}

// ---------------------------------------------------------------------
// Cfg construction.
// ---------------------------------------------------------------------

TEST(AnalysisCfg, DiamondPartitionsIntoFourReachableBlocks)
{
    IrBuilder b("diamond");
    const ExprRef cond = E::var(0, "c", 1);
    const ir::Label then_l = b.label();
    const ir::Label else_l = b.label();
    const ir::Label join = b.label();
    b.cjmp(cond, then_l, else_l);
    b.bind(then_l);
    b.jmp(join);
    b.bind(else_l);
    b.jmp(join);
    b.bind(join);
    b.halt(0);
    const Program p = b.finish();

    const Cfg cfg = Cfg::build(p);
    ASSERT_EQ(cfg.num_blocks(), 4u);
    EXPECT_EQ(cfg.blocks()[cfg.entry()].succs.size(), 2u);
    const auto &rpo = cfg.reverse_postorder();
    ASSERT_EQ(rpo.size(), 4u);
    EXPECT_EQ(rpo.front(), cfg.entry());
    // The join is last in RPO and has both arms as predecessors.
    const analysis::BlockId join_block = rpo.back();
    EXPECT_EQ(cfg.blocks()[join_block].preds.size(), 2u);
    for (analysis::BlockId blk = 0; blk < cfg.num_blocks(); ++blk)
        EXPECT_TRUE(cfg.reachable(blk));
}

TEST(AnalysisCfg, CodeAfterHaltFormsUnreachableBlock)
{
    Program p;
    p.name = "after-halt";
    Stmt halt;
    halt.kind = StmtKind::Halt;
    halt.expr = E::constant(32, 0);
    p.stmts.push_back(halt);
    p.stmts.push_back(halt);
    const Cfg cfg = Cfg::build(p);
    ASSERT_EQ(cfg.num_blocks(), 2u);
    EXPECT_TRUE(cfg.reachable(0));
    EXPECT_FALSE(cfg.reachable(1));
}

// ---------------------------------------------------------------------
// Negative cases: each verifier check fires.
// ---------------------------------------------------------------------

TEST(AnalysisVerifier, DanglingLabelIsAnError)
{
    Program p = trivial_program();
    p.label_pos.push_back(17); // Way past the end.
    const Report report = Verifier::check(p);
    EXPECT_TRUE(has_finding(report, Severity::Error,
                            "unbound or out of range"));
}

TEST(AnalysisVerifier, AssignWidthMismatchIsAnError)
{
    Program p;
    p.name = "width-mismatch";
    p.temp_width.push_back(8);
    Stmt assign;
    assign.kind = StmtKind::Assign;
    assign.temp = 0;
    assign.expr = E::constant(32, 5); // 32-bit value into 8-bit temp.
    p.stmts.push_back(assign);
    Stmt halt;
    halt.kind = StmtKind::Halt;
    halt.expr = E::constant(32, 0);
    p.stmts.push_back(halt);
    const Report report = Verifier::check(p);
    EXPECT_TRUE(has_finding(report, Severity::Error,
                            "assign of 32-bit value"));
}

TEST(AnalysisVerifier, UseBeforeDefIsAnError)
{
    Program p;
    p.name = "use-before-def";
    p.temp_width.push_back(32);
    Stmt halt;
    halt.kind = StmtKind::Halt;
    halt.expr = E::temp(0, 32); // t0 is never assigned.
    p.stmts.push_back(halt);
    const Report report = Verifier::check(p);
    EXPECT_TRUE(
        has_finding(report, Severity::Error, "never defined"));
}

TEST(AnalysisVerifier, PartialDefinitionIsAWarningNotAnError)
{
    // t assigned on one arm of a diamond only, used after the join.
    IrBuilder b("partial-def");
    Program p;
    {
        const ExprRef cond = E::var(0, "c", 1);
        const ir::Label skip = b.label();
        b.unless_goto(cond, skip);
        const ExprRef t = b.assign(E::var(1, "x", 32));
        (void)t;
        b.bind(skip);
        b.halt(E::temp(0, 32));
        p = b.finish();
    }
    const Report report = Verifier::check(p);
    EXPECT_FALSE(report.has_errors()) << report.to_string();
    EXPECT_TRUE(has_finding(report, Severity::Warning,
                            "may be used before definition"));
}

TEST(AnalysisVerifier, MissingHaltIsAnError)
{
    Program p;
    p.name = "missing-halt";
    p.temp_width.push_back(32);
    Stmt assign;
    assign.kind = StmtKind::Assign;
    assign.temp = 0;
    assign.expr = E::constant(32, 1);
    p.stmts.push_back(assign); // Control runs off the end.
    const Report report = Verifier::check(p);
    EXPECT_TRUE(has_finding(report, Severity::Error,
                            "run past the end"));
}

TEST(AnalysisVerifier, EmptyProgramIsAnError)
{
    const Report report = Verifier::check(Program{});
    EXPECT_TRUE(has_finding(report, Severity::Error, "empty program"));
}

TEST(AnalysisVerifier, InfiniteLoopIsAnError)
{
    IrBuilder b("spin");
    const ir::Label top = b.here();
    b.jmp(top);
    const Report report = Verifier::check(b.finish());
    EXPECT_TRUE(has_finding(report, Severity::Error,
                            "guaranteed infinite loop"));
}

TEST(AnalysisVerifier, BadLoadSizeIsAnError)
{
    Program p;
    p.name = "bad-load";
    p.temp_width.push_back(24);
    Stmt load;
    load.kind = StmtKind::Load;
    load.temp = 0;
    load.addr = E::constant(32, 0x1000);
    load.size = 3;
    p.stmts.push_back(load);
    Stmt halt;
    halt.kind = StmtKind::Halt;
    halt.expr = E::constant(32, 0);
    p.stmts.push_back(halt);
    const Report report = Verifier::check(p);
    EXPECT_TRUE(has_finding(report, Severity::Error,
                            "access size 3 not in {1, 2, 4}"));
}

TEST(AnalysisVerifier, NarrowBranchConditionIsAnError)
{
    Program p;
    p.name = "wide-cond";
    p.label_pos.push_back(1);
    Stmt cjmp;
    cjmp.kind = StmtKind::CJmp;
    cjmp.expr = E::var(0, "c", 8); // Must be 1 bit.
    cjmp.target_true = 0;
    cjmp.target_false = 0;
    p.stmts.push_back(cjmp);
    Stmt halt;
    halt.kind = StmtKind::Halt;
    halt.expr = E::constant(32, 0);
    p.stmts.push_back(halt);
    const Report report = Verifier::check(p);
    EXPECT_TRUE(has_finding(report, Severity::Error,
                            "condition must be 1 bit wide"));
}

TEST(AnalysisVerifier, TempReferenceWidthMismatchIsAnError)
{
    Program p;
    p.name = "temp-ref-width";
    p.temp_width.push_back(32);
    Stmt assign;
    assign.kind = StmtKind::Assign;
    assign.temp = 0;
    assign.expr = E::constant(32, 0);
    p.stmts.push_back(assign);
    Stmt halt;
    halt.kind = StmtKind::Halt;
    // References the 32-bit t0 at width 16.
    halt.expr = E::zext(E::temp(0, 16), 32);
    p.stmts.push_back(halt);
    const Report report = Verifier::check(p);
    EXPECT_TRUE(has_finding(report, Severity::Error,
                            "referenced at width 16 but declared 32"));
}

TEST(AnalysisVerifier, UndeclaredTempInExpressionIsAnError)
{
    Program p;
    p.name = "undeclared-temp";
    Stmt halt;
    halt.kind = StmtKind::Halt;
    halt.expr = E::temp(4, 32); // No temps declared at all.
    p.stmts.push_back(halt);
    const Report report = Verifier::check(p);
    EXPECT_TRUE(has_finding(report, Severity::Error,
                            "undeclared temp"));
}

// ---------------------------------------------------------------------
// Lint passes.
// ---------------------------------------------------------------------

TEST(AnalysisLint, UnreachableCodeIsAWarning)
{
    Program p;
    p.name = "unreachable";
    p.temp_width.push_back(32);
    Stmt halt;
    halt.kind = StmtKind::Halt;
    halt.expr = E::constant(32, 0);
    p.stmts.push_back(halt);
    Stmt assign; // Never executed.
    assign.kind = StmtKind::Assign;
    assign.temp = 0;
    assign.expr = E::constant(32, 1);
    p.stmts.push_back(assign);
    p.stmts.push_back(halt);
    const Report report = analysis::run_pipeline(p);
    EXPECT_FALSE(report.has_errors()) << report.to_string();
    EXPECT_TRUE(
        has_finding(report, Severity::Warning, "unreachable"));
}

TEST(AnalysisLint, BuilderGuardHaltIsOnlyANote)
{
    // End the body on a backward jmp so finish() appends its guard
    // Halt, which is unreachable by construction.
    IrBuilder b("guarded");
    const ir::Label halt_l = b.label();
    const ir::Label skip = b.label();
    b.jmp(skip);
    b.bind(halt_l);
    b.halt(0);
    b.bind(skip);
    b.jmp(halt_l);
    const Program p = b.finish();
    ASSERT_EQ(p.stmts.back().kind, StmtKind::Halt);
    const Report report = analysis::run_pipeline(p);
    EXPECT_FALSE(report.has_errors()) << report.to_string();
    EXPECT_FALSE(has_finding(report, Severity::Warning,
                             "unreachable"));
    EXPECT_TRUE(has_finding(report, Severity::Note, "guard Halt"));
}

TEST(AnalysisLint, DeadAssignmentIsAWarning)
{
    IrBuilder b("dead-assign");
    b.assign(E::var(0, "x", 32), "unused");
    b.halt(0);
    const Report report = analysis::run_pipeline(b.finish());
    EXPECT_FALSE(report.has_errors());
    EXPECT_TRUE(has_finding(report, Severity::Warning,
                            "dead assignment"));
}

TEST(AnalysisLint, DeadStoreIsAWarning)
{
    IrBuilder b("dead-store");
    b.store(E::constant(32, 0x2000), 4, E::var(0, "x", 32));
    b.store(E::constant(32, 0x2000), 4, E::var(1, "y", 32));
    b.halt(0);
    const Report report = analysis::run_pipeline(b.finish());
    EXPECT_TRUE(has_finding(report, Severity::Warning, "dead store"));
}

TEST(AnalysisLint, InterveningLoadKeepsStoreAlive)
{
    IrBuilder b("live-store");
    b.store(E::constant(32, 0x2000), 4, E::var(0, "x", 32));
    const ExprRef loaded = b.load(E::constant(32, 0x2000), 4);
    b.store(E::constant(32, 0x2000), 4, E::var(1, "y", 32));
    b.halt(E::zext(E::extract(loaded, 0, 8), 32));
    const Report report = analysis::run_pipeline(b.finish());
    EXPECT_FALSE(has_finding(report, Severity::Warning, "dead store"));
}

TEST(AnalysisLint, RedundantAssumeAfterBranchIsANote)
{
    IrBuilder b("redundant-assume");
    const ExprRef cond = E::var(0, "c", 1);
    const ir::Label yes = b.label();
    const ir::Label no = b.label();
    b.cjmp(cond, yes, no);
    b.bind(yes);
    b.assume(cond); // The branch already decided this.
    b.halt(1);
    b.bind(no);
    b.halt(0);
    const Report report = analysis::run_pipeline(b.finish());
    EXPECT_TRUE(has_finding(report, Severity::Note,
                            "restates the branch condition"));
}

TEST(AnalysisLint, AssumeAfterMemoryAccessIsANote)
{
    IrBuilder b("late-assume");
    b.store(E::constant(32, 0x3000), 4, E::var(0, "x", 32));
    b.assume(E::var(1, "c", 1));
    b.halt(0);
    const Report report = analysis::run_pipeline(b.finish());
    EXPECT_TRUE(has_finding(report, Severity::Note,
                            "assume after a memory access"));
}

TEST(AnalysisLint, ConstantFalseAssumeIsAWarning)
{
    IrBuilder b("false-assume");
    b.assume(E::bool_const(false));
    b.halt(0);
    const Report report = analysis::run_pipeline(b.finish());
    EXPECT_TRUE(has_finding(report, Severity::Warning,
                            "constant false"));
}

TEST(AnalysisLint, LintsAreSkippedWhenVerificationFails)
{
    Program p;
    p.name = "broken";
    p.label_pos.push_back(42); // Dangling label.
    Stmt halt;
    halt.kind = StmtKind::Halt;
    halt.expr = E::constant(32, 0);
    p.stmts.push_back(halt);
    const Report report = analysis::run_pipeline(p);
    EXPECT_TRUE(report.has_errors());
    for (const analysis::Diagnostic &d : report.diagnostics())
        EXPECT_EQ(d.pass, "verifier");
}

// ---------------------------------------------------------------------
// Report plumbing.
// ---------------------------------------------------------------------

TEST(AnalysisReport, CountsAndFormatting)
{
    Report report;
    report.error(3, "verifier", "broken thing");
    report.warning(analysis::kNoStmt, "lint", "iffy thing");
    report.note(0, "lint", "fyi");
    EXPECT_EQ(report.count(Severity::Error), 1u);
    EXPECT_EQ(report.count(Severity::Warning), 1u);
    EXPECT_EQ(report.count(Severity::Note), 1u);
    EXPECT_TRUE(report.has_errors());
    const std::string text = report.to_string();
    EXPECT_NE(text.find("error: [verifier] stmt 3: broken thing"),
              std::string::npos);
    // Program-level findings carry no statement anchor.
    EXPECT_NE(text.find("warning: [lint] iffy thing"),
              std::string::npos);

    Report other;
    other.error(1, "verifier", "more");
    report.merge(other);
    EXPECT_EQ(report.count(Severity::Error), 2u);
}

} // namespace
} // namespace pokeemu
