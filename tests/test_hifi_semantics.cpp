/**
 * @file
 * Direct unit tests of instruction semantics: craft a machine state,
 * run one instruction on the Hi-Fi emulator (IR interpretation) and on
 * the hardware model, and assert the exact architectural result. The
 * differential fuzz in test_backends.cpp covers breadth; these pin
 * down specific documented behaviours, especially flag results.
 */
#include <gtest/gtest.h>

#include "arch/descriptors.h"
#include "arch/paging.h"
#include "backend/direct_cpu.h"
#include "hifi/hifi_emulator.h"
#include "testgen/baseline.h"

namespace pokeemu {
namespace {

namespace layout = arch::layout;
using arch::CpuState;

/** Fixture: run one instruction from a tweaked baseline state. */
class Semantics : public ::testing::Test
{
  protected:
    CpuState state = testgen::baseline_cpu_state();
    std::vector<u8> ram = testgen::baseline_ram_after_init();

    /** Install @p code at the test address and run it on both the
     *  Hi-Fi emulator and the hardware model; assert they agree and
     *  return the final state. */
    CpuState
    run(std::initializer_list<u8> code, u64 max_insns = 4)
    {
        // Chained runs reuse the previous final state: rewind it onto
        // the new test code.
        state.halted = 0;
        state.eip = layout::kPhysTestCode;
        state.exception = arch::ExceptionInfo{};
        std::copy(code.begin(), code.end(),
                  ram.begin() + layout::kPhysTestCode);
        ram[layout::kPhysTestCode + code.size()] = 0xf4; // hlt

        hifi::HiFiEmulator hifi_emu(
            {/*hifi_far_fetch_order=*/false, nullptr});
        hifi_emu.reset(state, ram);
        hifi_emu.run(max_insns);

        backend::Behavior hw_behavior = backend::hardware_behavior();
        hw_behavior.shift_clears_af = true; // Align with the Hi-Fi IR.
        backend::DirectCpu hw(hw_behavior);
        hw.reset(state, ram);
        hw.run(max_insns);

        const auto diff =
            arch::diff_snapshots(hifi_emu.snapshot(), hw.snapshot());
        EXPECT_TRUE(diff.empty()) << diff.to_string();
        ram = hw.snapshot().ram;
        return hw.cpu();
    }
};

TEST_F(Semantics, AddComputesFlags)
{
    state.gpr[arch::kEax] = 0x7fffffff;
    state.gpr[arch::kEcx] = 1;
    const CpuState out = run({0x01, 0xc8}); // add eax, ecx
    EXPECT_EQ(out.gpr[arch::kEax], 0x80000000u);
    EXPECT_TRUE(out.eflags & arch::kFlagOf);
    EXPECT_TRUE(out.eflags & arch::kFlagSf);
    EXPECT_FALSE(out.eflags & arch::kFlagCf);
    EXPECT_FALSE(out.eflags & arch::kFlagZf);
    EXPECT_TRUE(out.eflags & arch::kFlagAf); // 0xf + 1 carries.
}

TEST_F(Semantics, SubSetsBorrowAndZero)
{
    state.gpr[arch::kEax] = 5;
    state.gpr[arch::kEcx] = 7;
    CpuState out = run({0x29, 0xc8}); // sub eax, ecx
    EXPECT_EQ(out.gpr[arch::kEax], 0xfffffffeu);
    EXPECT_TRUE(out.eflags & arch::kFlagCf);

    state.gpr[arch::kEax] = 7;
    state.gpr[arch::kEcx] = 7;
    out = run({0x29, 0xc8});
    EXPECT_EQ(out.gpr[arch::kEax], 0u);
    EXPECT_TRUE(out.eflags & arch::kFlagZf);
    EXPECT_TRUE(out.eflags & arch::kFlagPf);
}

TEST_F(Semantics, AdcUsesIncomingCarry)
{
    state.eflags |= arch::kFlagCf;
    state.gpr[arch::kEax] = 1;
    state.gpr[arch::kEcx] = 2;
    const CpuState out = run({0x11, 0xc8}); // adc eax, ecx
    EXPECT_EQ(out.gpr[arch::kEax], 4u);
}

TEST_F(Semantics, IncPreservesCarry)
{
    state.eflags |= arch::kFlagCf;
    state.gpr[arch::kEbx] = 0xffffffff;
    const CpuState out = run({0x43}); // inc ebx
    EXPECT_EQ(out.gpr[arch::kEbx], 0u);
    EXPECT_TRUE(out.eflags & arch::kFlagCf) << "inc must keep CF";
    EXPECT_TRUE(out.eflags & arch::kFlagZf);
    EXPECT_FALSE(out.eflags & arch::kFlagOf);
}

TEST_F(Semantics, EightBitRegistersAreHighLow)
{
    state.gpr[arch::kEax] = 0x11223344;
    // mov ah, 0x99
    CpuState out = run({0xb4, 0x99});
    EXPECT_EQ(out.gpr[arch::kEax], 0x11229944u);
    // add al, ah -> al = 0x44 + 0x99 = 0xdd
    state = out;
    out = run({0x00, 0xe0});
    EXPECT_EQ(out.gpr[arch::kEax] & 0xff, 0xddu);
}

TEST_F(Semantics, PushWritesAndDecrements)
{
    state.gpr[arch::kEax] = 0xdeadbeef;
    const u32 esp0 = state.gpr[arch::kEsp];
    const CpuState out = run({0x50}); // push eax
    EXPECT_EQ(out.gpr[arch::kEsp], esp0 - 4);
    u32 v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<u32>(ram[esp0 - 4 + i]) << (8 * i);
    EXPECT_EQ(v, 0xdeadbeefu);
}

TEST_F(Semantics, PopEspGetsThePoppedValue)
{
    // push imm32; pop esp: ESP must end up as the pushed value, not
    // incremented.
    const CpuState out = run({0x68, 0x78, 0x56, 0x34, 0x12, 0x5c}, 8);
    EXPECT_EQ(out.gpr[arch::kEsp], 0x12345678u);
}

TEST_F(Semantics, MulSetsCarryOnOverflow)
{
    state.gpr[arch::kEax] = 0x10000;
    state.gpr[arch::kEbx] = 0x10000;
    const CpuState out = run({0xf7, 0xe3}); // mul ebx
    EXPECT_EQ(out.gpr[arch::kEax], 0u);
    EXPECT_EQ(out.gpr[arch::kEdx], 1u);
    EXPECT_TRUE(out.eflags & arch::kFlagCf);
    EXPECT_TRUE(out.eflags & arch::kFlagOf);
}

TEST_F(Semantics, DivComputesQuotientRemainder)
{
    state.gpr[arch::kEdx] = 0;
    state.gpr[arch::kEax] = 100;
    state.gpr[arch::kEbx] = 7;
    const CpuState out = run({0xf7, 0xf3}); // div ebx
    EXPECT_EQ(out.gpr[arch::kEax], 14u);
    EXPECT_EQ(out.gpr[arch::kEdx], 2u);
    EXPECT_EQ(out.exception.vector, arch::kExcNone);
}

TEST_F(Semantics, DivByZeroFaults)
{
    state.gpr[arch::kEbx] = 0;
    const CpuState out = run({0xf7, 0xf3});
    EXPECT_EQ(out.exception.vector, arch::kExcDe);
    // EAX untouched (fault before commit).
    EXPECT_EQ(out.gpr[arch::kEax], state.gpr[arch::kEax]);
}

TEST_F(Semantics, DivOverflowFaults)
{
    state.gpr[arch::kEdx] = 10;
    state.gpr[arch::kEax] = 0;
    state.gpr[arch::kEbx] = 2;
    const CpuState out = run({0xf7, 0xf3}); // quotient > 2^32.
    EXPECT_EQ(out.exception.vector, arch::kExcDe);
}

TEST_F(Semantics, IdivSignedTruncation)
{
    // -7 / 2 = -3 rem -1 (truncation toward zero).
    state.gpr[arch::kEdx] = 0xffffffff;
    state.gpr[arch::kEax] = static_cast<u32>(-7);
    state.gpr[arch::kEbx] = 2;
    const CpuState out = run({0xf7, 0xfb}); // idiv ebx
    EXPECT_EQ(out.gpr[arch::kEax], static_cast<u32>(-3));
    EXPECT_EQ(out.gpr[arch::kEdx], static_cast<u32>(-1));
}

TEST_F(Semantics, ShlShiftsAndSetsCarry)
{
    state.gpr[arch::kEax] = 0xc0000001;
    const CpuState out = run({0xc1, 0xe0, 0x01}); // shl eax, 1
    EXPECT_EQ(out.gpr[arch::kEax], 0x80000002u);
    EXPECT_TRUE(out.eflags & arch::kFlagCf);
    // OF for count 1: CF != new MSB -> 1 != 1 -> false... CF=1, MSB=1.
    EXPECT_FALSE(out.eflags & arch::kFlagOf);
}

TEST_F(Semantics, ShiftCountZeroLeavesFlags)
{
    state.eflags |= arch::kFlagCf | arch::kFlagOf | arch::kFlagZf;
    state.gpr[arch::kEax] = 5;
    state.gpr[arch::kEcx] = 0; // CL = 0.
    const CpuState out = run({0xd3, 0xe0}); // shl eax, cl
    EXPECT_EQ(out.gpr[arch::kEax], 5u);
    EXPECT_TRUE(out.eflags & arch::kFlagCf);
    EXPECT_TRUE(out.eflags & arch::kFlagOf);
    EXPECT_TRUE(out.eflags & arch::kFlagZf);
}

TEST_F(Semantics, RolRotatesThroughWidth)
{
    state.gpr[arch::kEax] = 0x80000001;
    const CpuState out = run({0xc1, 0xc0, 0x04}); // rol eax, 4
    EXPECT_EQ(out.gpr[arch::kEax], 0x00000018u);
    EXPECT_FALSE(out.eflags & arch::kFlagZf & 0) << "rotates keep ZF";
}

TEST_F(Semantics, SarPreservesSign)
{
    state.gpr[arch::kEax] = 0x80000000;
    const CpuState out = run({0xc1, 0xf8, 0x1f}); // sar eax, 31
    EXPECT_EQ(out.gpr[arch::kEax], 0xffffffffu);
}

TEST_F(Semantics, StringMovsRespectsDirectionFlag)
{
    // Forward copy.
    ram[0x200100] = 0xaa;
    state.gpr[arch::kEsi] = 0x200100;
    state.gpr[arch::kEdi] = 0x200200;
    CpuState out = run({0xa4}); // movsb
    EXPECT_EQ(ram[0x200200], 0xaa);
    EXPECT_EQ(out.gpr[arch::kEsi], 0x200101u);
    EXPECT_EQ(out.gpr[arch::kEdi], 0x200201u);

    // Backward copy (DF set).
    state.eflags |= arch::kFlagDf;
    out = run({0xa4});
    EXPECT_EQ(out.gpr[arch::kEsi], 0x2000ffu);
    EXPECT_EQ(out.gpr[arch::kEdi], 0x2001ffu);
}

TEST_F(Semantics, RepStosFillsAndRepeCmpsStops)
{
    state.gpr[arch::kEax] = 0x55;
    state.gpr[arch::kEcx] = 8;
    state.gpr[arch::kEdi] = 0x200300;
    CpuState out = run({0xf3, 0xaa}); // rep stosb
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(ram[0x200300 + i], 0x55);
    EXPECT_EQ(out.gpr[arch::kEcx], 0u);
    EXPECT_EQ(out.gpr[arch::kEdi], 0x200308u);

    // repe cmpsb stops at the first mismatch.
    for (int i = 0; i < 8; ++i) {
        ram[0x200400 + i] = static_cast<u8>(i < 3 ? 7 : 9);
        ram[0x200500 + i] = 7;
    }
    state = testgen::baseline_cpu_state();
    state.gpr[arch::kEsi] = 0x200400;
    state.gpr[arch::kEdi] = 0x200500;
    state.gpr[arch::kEcx] = 8;
    out = run({0xf3, 0xa6}); // repe cmpsb
    EXPECT_EQ(out.gpr[arch::kEcx], 8u - 4u); // Stops after element 3.
    EXPECT_FALSE(out.eflags & arch::kFlagZf);
}

TEST_F(Semantics, CmovOnlyMovesWhenConditionHolds)
{
    state.gpr[arch::kEax] = 1;
    state.gpr[arch::kEbx] = 99;
    state.eflags |= arch::kFlagZf;
    CpuState out = run({0x0f, 0x44, 0xc3}); // cmovz eax, ebx
    EXPECT_EQ(out.gpr[arch::kEax], 99u);

    state.eflags &= ~arch::kFlagZf;
    out = run({0x0f, 0x44, 0xc3});
    EXPECT_EQ(out.gpr[arch::kEax], 1u);
}

TEST_F(Semantics, SetccWritesBoolean)
{
    state.eflags |= arch::kFlagCf;
    const CpuState out = run({0x0f, 0x92, 0xc2}); // setb dl
    EXPECT_EQ(out.gpr[arch::kEdx] & 0xff, 1u);
}

TEST_F(Semantics, JccTakenAndNotTaken)
{
    state.eflags |= arch::kFlagZf;
    // jz +1 ; hlt ; inc eax ; hlt  -> jumps over the first hlt.
    std::copy_n(
        std::initializer_list<u8>{0x74, 0x01, 0xf4, 0x40, 0xf4}.begin(),
        5, ram.begin() + layout::kPhysTestCode);
    CpuState out = run({0x74, 0x01, 0xf4, 0x40, 0xf4}, 8);
    EXPECT_EQ(out.gpr[arch::kEax], state.gpr[arch::kEax] + 1);
}

TEST_F(Semantics, CallPushesReturnAndRetReturns)
{
    // call +1; hlt; hlt  -> call skips a byte, ret comes back... keep
    // simple: call to a ret, then hlt.
    // Layout: call rel32(=1) ; hlt ; ret
    const CpuState out =
        run({0xe8, 0x01, 0x00, 0x00, 0x00, 0xf4, 0xc3}, 8);
    // ret jumps back to the hlt after the call.
    EXPECT_EQ(out.eip, layout::kPhysTestCode + 6);
    EXPECT_EQ(out.gpr[arch::kEsp], state.gpr[arch::kEsp]);
}

TEST_F(Semantics, BswapReversesBytes)
{
    state.gpr[arch::kEdx] = 0x11223344;
    const CpuState out = run({0x0f, 0xca}); // bswap edx
    EXPECT_EQ(out.gpr[arch::kEdx], 0x44332211u);
}

TEST_F(Semantics, BtSetsCarryAndBtsSetsBit)
{
    state.gpr[arch::kEax] = 0x4;
    state.gpr[arch::kEcx] = 2;
    CpuState out = run({0x0f, 0xa3, 0xc8}); // bt eax, ecx
    EXPECT_TRUE(out.eflags & arch::kFlagCf);

    state.gpr[arch::kEcx] = 5;
    out = run({0x0f, 0xab, 0xc8}); // bts eax, ecx
    EXPECT_EQ(out.gpr[arch::kEax], 0x24u);
}

TEST_F(Semantics, BtMemoryAddressesBeyondDword)
{
    // bt [0x200600], ebx with ebx = 37: tests bit 5 of byte at +4.
    ram[0x200604] = 0x20;
    state.gpr[arch::kEbx] = 37;
    const CpuState out =
        run({0x0f, 0xa3, 0x1d, 0x00, 0x06, 0x20, 0x00});
    EXPECT_TRUE(out.eflags & arch::kFlagCf);
}

TEST_F(Semantics, MovzxMovsxExtendCorrectly)
{
    state.gpr[arch::kEbx] = 0x80;
    CpuState out = run({0x0f, 0xb6, 0xc3}); // movzx eax, bl
    EXPECT_EQ(out.gpr[arch::kEax], 0x80u);
    out = run({0x0f, 0xbe, 0xc3}); // movsx eax, bl
    EXPECT_EQ(out.gpr[arch::kEax], 0xffffff80u);
}

TEST_F(Semantics, XaddExchangesAndAdds)
{
    state.gpr[arch::kEax] = 3;
    state.gpr[arch::kEbx] = 4;
    const CpuState out = run({0x0f, 0xc1, 0xc3}); // xadd ebx, eax
    EXPECT_EQ(out.gpr[arch::kEbx], 7u);
    EXPECT_EQ(out.gpr[arch::kEax], 4u);
}

TEST_F(Semantics, CmpxchgBothPaths)
{
    // Equal: [mem] <- src.
    ram[0x200700] = 0x11;
    state.gpr[arch::kEax] = 0x11;
    state.gpr[arch::kEcx] = 0x22;
    state.gpr[arch::kEbx] = 0x200700;
    CpuState out = run({0x0f, 0xb0, 0x0b}); // cmpxchg [ebx], cl
    EXPECT_EQ(ram[0x200700], 0x22);
    EXPECT_TRUE(out.eflags & arch::kFlagZf);

    // Not equal: AL <- [mem].
    ram[0x200700] = 0x33;
    out = run({0x0f, 0xb0, 0x0b});
    EXPECT_EQ(out.gpr[arch::kEax] & 0xff, 0x33u);
    EXPECT_FALSE(out.eflags & arch::kFlagZf);
}

TEST_F(Semantics, LahfSahfRoundTrip)
{
    state.eflags =
        (state.eflags & ~0xd5u) | arch::kFlagCf | arch::kFlagSf;
    CpuState out = run({0x9f}); // lahf
    const u32 ah = (out.gpr[arch::kEax] >> 8) & 0xff;
    EXPECT_EQ(ah & 0xd5, (state.eflags & 0xd5));
    EXPECT_TRUE(ah & 0x02);

    state = out;
    state.eflags &= ~arch::kFlagCf; // Perturb, then restore via sahf.
    out = run({0x9e});
    EXPECT_TRUE(out.eflags & arch::kFlagCf);
}

TEST_F(Semantics, PushfdPopfdMask)
{
    const CpuState out =
        run({0x68, 0xd5, 0xff, 0x04, 0x00, 0x9d}, 4); // push/popfd
    // 0x4ffd5 & popfd mask 0x47fd5 -> all status+DF+IOPL+NT+AC bits.
    EXPECT_EQ(out.eflags & 0x47fd5u, 0x47fd5u & 0x4ffd5u);
    // Reserved bit 15 (0x8000) must not leak in.
    EXPECT_FALSE(out.eflags & 0x8000u);
}

TEST_F(Semantics, IretSameLevelReturn)
{
    // Build a frame: eflags, cs, eip on the stack (pushed downward).
    const u32 esp = state.gpr[arch::kEsp] - 12;
    auto put32 = [&](u32 a, u32 v) {
        for (int i = 0; i < 4; ++i)
            ram[a + i] = static_cast<u8>(v >> (8 * i));
    };
    put32(esp, 0x00205000);           // new EIP
    put32(esp + 4, testgen::kCodeSelector);
    put32(esp + 8, 0x2 | arch::kFlagCf);
    ram[0x205000] = 0xf4; // hlt at the target.
    state.gpr[arch::kEsp] = esp;
    const CpuState out = run({0xcf}, 4); // iret
    EXPECT_EQ(out.eip, 0x00205001u); // After the target's hlt.
    EXPECT_TRUE(out.eflags & arch::kFlagCf);
    EXPECT_EQ(out.gpr[arch::kEsp], esp + 12);
    EXPECT_EQ(out.exception.vector, arch::kExcNone);
}

TEST_F(Semantics, SgdtSidtStoreBaseAndLimit)
{
    const CpuState out = run(
        {0x0f, 0x01, 0x05, 0x00, 0x08, 0x20, 0x00}); // sgdt [0x200800]
    (void)out;
    const u32 limit = ram[0x200800] | (ram[0x200801] << 8);
    u32 base = 0;
    for (int i = 0; i < 4; ++i)
        base |= static_cast<u32>(ram[0x200802 + i]) << (8 * i);
    EXPECT_EQ(limit, state.gdtr.limit);
    EXPECT_EQ(base, state.gdtr.base);
}

TEST_F(Semantics, CpuidVendorString)
{
    state.gpr[arch::kEax] = 0;
    const CpuState out = run({0x0f, 0xa2});
    EXPECT_EQ(out.gpr[arch::kEbx], 0x656b6f50u); // "Poke"
    EXPECT_EQ(out.gpr[arch::kEdx], 0x76554d45u); // "EMUv"
    EXPECT_EQ(out.gpr[arch::kEcx], 0x36387856u); // "VX86"
}

TEST_F(Semantics, MsrReadWriteRoundTrip)
{
    // wrmsr 0x175 <- 0x1234; rdmsr.
    const CpuState out = run({0xb9, 0x75, 0x01, 0x00, 0x00,  // mov ecx
                              0xb8, 0x34, 0x12, 0x00, 0x00,  // mov eax
                              0x0f, 0x30,                    // wrmsr
                              0x0f, 0x32},                   // rdmsr
                             8);
    EXPECT_EQ(out.msr.sysenter_esp, 0x1234u);
    EXPECT_EQ(out.gpr[arch::kEax], 0x1234u);
    EXPECT_EQ(out.gpr[arch::kEdx], 0u);
}

TEST_F(Semantics, SegmentOverridePrefixIsHonored)
{
    // Give FS a nonzero base via a descriptor, then read through it.
    arch::Descriptor d = arch::make_flat_descriptor(0x93);
    d.base = 0x100;
    d.granularity = true;
    arch::encode_descriptor(d, &ram[layout::kPhysGdt + 8 * 3]);
    ram[0x200900 + 0x100] = 0x77;
    state.gpr[arch::kEbx] = 0x200900;
    const CpuState out = run({0xb8, 0x18, 0x00, 0x00, 0x00, // mov eax
                              0x8e, 0xe0,                   // mov fs,ax
                              0x64, 0x8a, 0x0b},            // mov cl,fs:[ebx]
                             8);
    EXPECT_EQ(out.gpr[arch::kEcx] & 0xff, 0x77u);
}

TEST_F(Semantics, ExpandDownSegmentLimits)
{
    // Expand-down data segment with limit 0xfff: offsets <= 0xfff
    // fault, offsets above are fine.
    arch::Descriptor d;
    d.base = 0;
    d.limit_raw = 0xfff;
    d.access = 0x97; // Present, data, expand-down, writable, accessed.
    d.granularity = false;
    d.db = true;
    arch::encode_descriptor(d, &ram[layout::kPhysGdt + 8 * 3]);
    state.gpr[arch::kEbx] = 0x200a00; // <= 0xfff? No: above limit, OK
                                      // ... 0x200a00 > 0xfff: valid.
    CpuState out = run({0xb8, 0x18, 0x00, 0x00, 0x00, // mov eax, 0x18
                        0x8e, 0xd8,                   // mov ds, ax
                        0x88, 0x0b},                  // mov [ebx], cl
                       8);
    EXPECT_EQ(out.exception.vector, arch::kExcNone);

    state.gpr[arch::kEbx] = 0x800; // Inside [0, limit]: faults.
    out = run({0xb8, 0x18, 0x00, 0x00, 0x00, 0x8e, 0xd8, 0x88, 0x0b},
              8);
    EXPECT_EQ(out.exception.vector, arch::kExcGp);
}

TEST_F(Semantics, WriteToReadOnlyPageFaultsWithWp)
{
    state.cr0 |= arch::kCr0Wp;
    ram[layout::kPhysPageTable + 4 * 0x300] &= ~arch::kPteRw;
    state.gpr[arch::kEbx] = 0x300000;
    const CpuState out = run({0x88, 0x0b}); // mov [ebx], cl
    EXPECT_EQ(out.exception.vector, arch::kExcPf);
    EXPECT_EQ(out.cr2, 0x300000u);
    EXPECT_EQ(out.exception.error_code,
              arch::kPfErrPresent | arch::kPfErrWrite);
}

TEST_F(Semantics, FarJmpReloadsCs)
{
    // Install a code descriptor with base 0x1000 at GDT entry 3 and
    // jump far to 0x18:0x200100. The hlt then sits at linear
    // 0x1000 + 0x200100.
    arch::Descriptor d = arch::make_flat_descriptor(0x9b);
    d.base = 0x1000;
    arch::encode_descriptor(d, &ram[layout::kPhysGdt + 8 * 3]);
    ram[0x201100] = 0xf4; // hlt at the landing site (0x1000+0x200100).
    const CpuState out = run(
        {0xea, 0x00, 0x01, 0x20, 0x00, 0x18, 0x00}, 4);
    EXPECT_EQ(out.exception.vector, arch::kExcNone);
    EXPECT_EQ(out.seg[arch::kCs].selector, 0x18);
    EXPECT_EQ(out.seg[arch::kCs].base, 0x1000u);
    EXPECT_EQ(out.eip, 0x200101u); // After the landing hlt.
    // Accessed bit set in the GDT.
    EXPECT_TRUE(ram[layout::kPhysGdt + 8 * 3 + 5] & 1);
}

TEST_F(Semantics, FarJmpChecksDescriptor)
{
    // Data descriptor as a far-jump target: #GP(selector).
    arch::Descriptor d = arch::make_flat_descriptor(0x93);
    arch::encode_descriptor(d, &ram[layout::kPhysGdt + 8 * 3]);
    CpuState out = run({0xea, 0x00, 0x00, 0x00, 0x00, 0x18, 0x00});
    EXPECT_EQ(out.exception.vector, arch::kExcGp);
    EXPECT_EQ(out.exception.error_code, 0x18u);

    // Not-present code descriptor: #NP(selector).
    d = arch::make_flat_descriptor(0x1b); // Code, not present.
    arch::encode_descriptor(d, &ram[layout::kPhysGdt + 8 * 3]);
    out = run({0xea, 0x00, 0x00, 0x00, 0x00, 0x18, 0x00});
    EXPECT_EQ(out.exception.vector, arch::kExcNp);

    // DPL 3 nonconforming with CPL 0: #GP.
    d = arch::make_flat_descriptor(0xfb); // P, DPL3, code.
    arch::encode_descriptor(d, &ram[layout::kPhysGdt + 8 * 3]);
    out = run({0xea, 0x00, 0x00, 0x00, 0x00, 0x18, 0x00});
    EXPECT_EQ(out.exception.vector, arch::kExcGp);

    // Target offset beyond the segment limit: #GP(0).
    d = arch::make_flat_descriptor(0x9b);
    d.granularity = false;
    d.limit_raw = 0x10;
    arch::encode_descriptor(d, &ram[layout::kPhysGdt + 8 * 3]);
    out = run({0xea, 0x00, 0x01, 0x00, 0x00, 0x18, 0x00});
    EXPECT_EQ(out.exception.vector, arch::kExcGp);
    EXPECT_EQ(out.exception.error_code, 0u);

    // Null selector: #GP(0).
    out = run({0xea, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00});
    EXPECT_EQ(out.exception.vector, arch::kExcGp);
    EXPECT_EQ(out.exception.error_code, 0u);
}

TEST_F(Semantics, CallFarPushesCsAndReturnAddress)
{
    arch::Descriptor d = arch::make_flat_descriptor(0x9b);
    arch::encode_descriptor(d, &ram[layout::kPhysGdt + 8 * 3]);
    ram[0x205000] = 0xf4; // hlt at the target.
    const u32 esp0 = state.gpr[arch::kEsp];
    const CpuState out = run(
        {0x9a, 0x00, 0x50, 0x20, 0x00, 0x18, 0x00}, 4);
    EXPECT_EQ(out.exception.vector, arch::kExcNone);
    EXPECT_EQ(out.seg[arch::kCs].selector, 0x18);
    EXPECT_EQ(out.gpr[arch::kEsp], esp0 - 8);
    auto read32 = [&](u32 a) {
        u32 v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<u32>(ram[a + i]) << (8 * i);
        return v;
    };
    EXPECT_EQ(read32(esp0 - 4), testgen::kCodeSelector); // Old CS.
    EXPECT_EQ(read32(esp0 - 8), layout::kPhysTestCode + 7);
}

TEST_F(Semantics, PhysicalMemoryWrapsAtFourMegabytes)
{
    // An access whose page maps to the last frame and whose offset
    // pushes bytes past 4 MiB must wrap to physical 0.
    state.gpr[arch::kEbx] = 0x3ffffe;
    state.gpr[arch::kEcx] = 0xaabbccdd;
    const CpuState out = run({0x89, 0x0b}); // mov [ebx], ecx
    EXPECT_EQ(out.exception.vector, arch::kExcNone);
    EXPECT_EQ(ram[0x3ffffe], 0xdd);
    EXPECT_EQ(ram[0x3fffff], 0xcc);
    EXPECT_EQ(ram[0], 0xbb);
    EXPECT_EQ(ram[1], 0xaa);
}

} // namespace
} // namespace pokeemu
