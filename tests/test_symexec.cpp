/** @file Tests for the symbolic execution engine (FuzzBALL analog). */
#include <gtest/gtest.h>

#include <set>

#include "ir/builder.h"
#include "symexec/explorer.h"
#include "symexec/minimize.h"
#include "symexec/summarize.h"

namespace pokeemu::symexec {
namespace {

using ir::ExprRef;
using ir::IrBuilder;
using ir::Label;
namespace E = ir::E;

/**
 * Initial-contents policy used throughout: bytes in [sym_base,
 * sym_base + sym_len) are fresh symbolic variables named by address;
 * everything else is a concrete zero byte.
 */
InitialByteFn
make_initial(VarPool &pool, u32 sym_base, u32 sym_len)
{
    return [&pool, sym_base, sym_len](u32 addr) -> ExprRef {
        if (addr >= sym_base && addr < sym_base + sym_len) {
            char name[32];
            std::snprintf(name, sizeof name, "mem_%08x", addr);
            return pool.get(name, 8);
        }
        return E::constant(8, 0);
    };
}

TEST(SymbolicMemory, RoundTripPreservesExpression)
{
    VarPool pool;
    SymbolicMemory mem(make_initial(pool, 0, 0));
    auto x = pool.get("x", 32);
    mem.store(0x100, 4, x);
    auto back = mem.load(0x100, 4);
    // Byte-split then reassembled: the simplifier must fuse it back.
    EXPECT_EQ(back.get(), x.get());
}

TEST(SymbolicMemory, LittleEndianLayout)
{
    VarPool pool;
    SymbolicMemory mem(make_initial(pool, 0, 0));
    mem.store(0x10, 4, E::constant(32, 0x11223344));
    EXPECT_TRUE(mem.load_byte(0x10)->is_const(0x44));
    EXPECT_TRUE(mem.load_byte(0x13)->is_const(0x11));
    EXPECT_TRUE(mem.load(0x11, 2)->is_const(0x2233));
}

TEST(SymbolicMemory, OnDemandVariablesAreStable)
{
    VarPool pool;
    SymbolicMemory a(make_initial(pool, 0x1000, 0x100));
    SymbolicMemory b(make_initial(pool, 0x1000, 0x100));
    auto va = a.load_byte(0x1010);
    auto vb = b.load_byte(0x1010);
    // Two memories over the same pool: same address, same variable.
    EXPECT_TRUE(va->is_var());
    EXPECT_EQ(va->var_id(), vb->var_id());
}

TEST(SymbolicMemory, UntouchedRegionsAreConcrete)
{
    VarPool pool;
    SymbolicMemory mem(make_initial(pool, 0x1000, 0x10));
    EXPECT_TRUE(mem.load_byte(0x2000)->is_const(0));
    EXPECT_EQ(mem.touched_count(), 1u);
}

TEST(DecisionTree, ExhaustionPropagates)
{
    DecisionTree tree;
    // Simulate: root has both directions feasible; each side is a
    // leaf.
    tree.set_feasibility(tree.root(), false, Feasibility::Yes);
    tree.set_feasibility(tree.root(), true, Feasibility::Yes);
    tree.finish_leaf({{tree.root(), false}});
    EXPECT_FALSE(tree.exhausted());
    tree.finish_leaf({{tree.root(), true}});
    EXPECT_TRUE(tree.exhausted());
}

TEST(DecisionTree, InfeasibleCountsAsDone)
{
    DecisionTree tree;
    tree.set_feasibility(tree.root(), false, Feasibility::Yes);
    tree.set_feasibility(tree.root(), true, Feasibility::No);
    EXPECT_FALSE(tree.exhausted());
    tree.finish_leaf({{tree.root(), false}});
    EXPECT_TRUE(tree.exhausted());
}

TEST(DecisionTree, EmptyPathExhaustsEverything)
{
    DecisionTree tree;
    tree.finish_leaf({});
    EXPECT_TRUE(tree.exhausted());
}

// ---------------------------------------------------------------------
// Explorer on toy programs.
// ---------------------------------------------------------------------

TEST(Explorer, StraightLineIsOnePath)
{
    IrBuilder b("straight");
    auto v = b.load(IrBuilder::imm32(0x1000), 4);
    b.store(IrBuilder::imm32(0x2000), 4, E::add(v, IrBuilder::imm32(1)));
    b.halt(0);
    ir::Program p = b.finish();

    VarPool pool;
    PathExplorer ex(p, pool, make_initial(pool, 0x1000, 4));
    u64 seen = 0;
    auto stats = ex.explore([&](const PathInfo &, SymbolicMemory &) {
        ++seen;
    });
    EXPECT_EQ(stats.paths, 1u);
    EXPECT_EQ(seen, 1u);
    EXPECT_TRUE(stats.complete);
}

/** Build: load a symbolic word, branch on (x < 10), halt 1 or 2. */
ir::Program
two_way_program()
{
    IrBuilder b("twoway");
    auto x = b.load(IrBuilder::imm32(0x1000), 4);
    Label lt = b.label(), ge = b.label();
    b.cjmp(E::ult(x, IrBuilder::imm32(10)), lt, ge);
    b.bind(lt);
    b.halt(1);
    b.bind(ge);
    b.halt(2);
    return b.finish();
}

TEST(Explorer, TwoWayBranchYieldsTwoPaths)
{
    ir::Program p = two_way_program();
    VarPool pool;
    PathExplorer ex(p, pool, make_initial(pool, 0x1000, 4));
    std::set<u32> codes;
    std::vector<u64> x_values;
    auto stats = ex.explore([&](const PathInfo &info, SymbolicMemory &) {
        codes.insert(info.halt_code);
        // The assignment must satisfy the path condition and match the
        // halt code's branch.
        const u64 x = info.assignment.get(
            pool.get("mem_00001000", 8)->var_id()) |
            (info.assignment.get(pool.get("mem_00001001", 8)->var_id())
             << 8) |
            (info.assignment.get(pool.get("mem_00001002", 8)->var_id())
             << 16) |
            (info.assignment.get(pool.get("mem_00001003", 8)->var_id())
             << 24);
        x_values.push_back(x);
        if (info.halt_code == 1)
            EXPECT_LT(x, 10u);
        else
            EXPECT_GE(x, 10u);
    });
    EXPECT_EQ(stats.paths, 2u);
    EXPECT_TRUE(stats.complete);
    EXPECT_EQ(codes, (std::set<u32>{1, 2}));
}

TEST(Explorer, NestedBranchesEnumerateAllPaths)
{
    // Three independent symbolic bits -> exactly 8 paths with distinct
    // halt codes 0..7.
    IrBuilder b("threebits");
    auto byte = b.load(IrBuilder::imm32(0x1000), 1);
    ExprRef code = IrBuilder::imm32(0);
    for (int i = 0; i < 3; ++i) {
        Label set = b.label(), join = b.label();
        // We cannot mutate `code` across labels without temps; instead
        // assign via memory.
        auto cur = b.load(IrBuilder::imm32(0x2000), 1);
        b.cjmp(E::eq(E::extract(byte, i, 1), E::bool_const(true)), set,
               join);
        b.bind(set);
        b.store(IrBuilder::imm32(0x2000), 1,
                E::bor(cur, IrBuilder::imm8(1 << i)));
        b.bind(join);
        b.comment("next bit");
    }
    auto final_code = b.load(IrBuilder::imm32(0x2000), 1);
    b.halt(E::zext(final_code, 32));
    ir::Program p = b.finish();

    VarPool pool;
    PathExplorer ex(p, pool, make_initial(pool, 0x1000, 1));
    std::set<u32> codes;
    auto stats = ex.explore([&](const PathInfo &info, SymbolicMemory &) {
        codes.insert(info.halt_code);
    });
    EXPECT_EQ(stats.paths, 8u);
    EXPECT_TRUE(stats.complete);
    EXPECT_EQ(codes.size(), 8u);
    for (u32 c = 0; c < 8; ++c)
        EXPECT_TRUE(codes.count(c)) << c;
}

TEST(Explorer, InfeasiblePathsAreNotEnumerated)
{
    // Branch 1 on (y < x); branch 2 on (x <= y). Directions (T,T) and
    // (F,F) are contradictory, so exactly 2 of the 4 direction
    // combinations are real paths.
    IrBuilder b("infeasible");
    auto x = b.load(IrBuilder::imm32(0x1000), 4);
    auto y = b.load(IrBuilder::imm32(0x1004), 4);
    Label a1 = b.label(), a2 = b.label();
    b.cjmp(E::ult(y, x), a1, a2);
    b.bind(a1);
    b.store(IrBuilder::imm32(0x2000), 4, IrBuilder::imm32(1));
    b.jmp(a2);
    b.bind(a2);
    Label b1 = b.label(), b2 = b.label();
    b.cjmp(E::ule(x, y), b1, b2);
    b.bind(b1);
    b.halt(1);
    b.bind(b2);
    b.halt(2);
    ir::Program p = b.finish();

    VarPool pool;
    PathExplorer ex(p, pool, make_initial(pool, 0x1000, 8));
    u64 paths = 0;
    std::set<u32> codes;
    auto stats = ex.explore([&](const PathInfo &info, SymbolicMemory &) {
        ++paths;
        codes.insert(info.halt_code);
        EXPECT_TRUE(info.assignment.satisfies(info.path_condition));
    });
    EXPECT_EQ(paths, 2u);
    EXPECT_EQ(codes, (std::set<u32>{1, 2}));
    EXPECT_TRUE(stats.complete);
}

TEST(Explorer, PathCapStopsExploration)
{
    // A loop over a symbolic 8-bit counter can have up to 256+1 paths;
    // cap at 5.
    IrBuilder b("loop");
    Label head = b.here();
    auto n = b.load(IrBuilder::imm32(0x1000), 1);
    Label done = b.label();
    b.if_goto(E::eq(n, IrBuilder::imm8(0)), done);
    b.store(IrBuilder::imm32(0x1000), 1, E::sub(n, IrBuilder::imm8(1)));
    b.jmp(head);
    b.bind(done);
    b.halt(0);
    ir::Program p = b.finish();

    VarPool pool;
    ExplorerConfig cfg;
    cfg.max_paths = 5;
    PathExplorer ex(p, pool, make_initial(pool, 0x1000, 1), cfg);
    auto stats = ex.explore([](const PathInfo &, SymbolicMemory &) {});
    EXPECT_EQ(stats.paths, 5u);
    EXPECT_FALSE(stats.complete);
}

TEST(Explorer, LoopOverSmallCounterTerminates)
{
    // 2-bit symbolic counter: exactly 4 paths (0..3 iterations).
    IrBuilder b("loop2");
    Label head = b.here();
    auto n = b.load(IrBuilder::imm32(0x1000), 1);
    Label done = b.label();
    b.if_goto(E::eq(n, IrBuilder::imm8(0)), done);
    b.store(IrBuilder::imm32(0x1000), 1, E::sub(n, IrBuilder::imm8(1)));
    b.jmp(head);
    b.bind(done);
    b.halt(0);
    ir::Program p = b.finish();

    VarPool pool;
    // Constrain the counter to 2 bits via the initial-contents policy:
    // high 6 bits concrete zero by construction.
    InitialByteFn init = [&pool](u32 addr) -> ExprRef {
        if (addr == 0x1000) {
            auto low = pool.get("n_low", 2);
            return E::concat(E::constant(6, 0), low);
        }
        return E::constant(8, 0);
    };
    PathExplorer ex(p, pool, init);
    std::set<u64> iteration_counts;
    auto stats = ex.explore([&](const PathInfo &info, SymbolicMemory &) {
        iteration_counts.insert(
            info.assignment.get(pool.get("n_low", 2)->var_id()));
    });
    EXPECT_EQ(stats.paths, 4u);
    EXPECT_TRUE(stats.complete);
    EXPECT_EQ(iteration_counts,
              (std::set<u64>{0, 1, 2, 3}));
}

TEST(Explorer, SingleRandomConcretizationPinsAddress)
{
    // Store through a symbolic pointer; the explorer must pick one
    // address and the value must land there.
    IrBuilder b("symstore");
    auto ptr = b.load(IrBuilder::imm32(0x1000), 4);
    b.store(ptr, 1, IrBuilder::imm8(0xab));
    b.halt(0);
    ir::Program p = b.finish();

    VarPool pool;
    PathExplorer ex(p, pool, make_initial(pool, 0x1000, 4));
    u64 paths = 0;
    ex.explore([&](const PathInfo &info, SymbolicMemory &mem) {
        ++paths;
        // Reconstruct the pinned pointer from the assignment.
        u64 a = 0;
        for (int i = 0; i < 4; ++i) {
            char name[32];
            std::snprintf(name, sizeof name, "mem_%08x", 0x1000 + i);
            a |= info.assignment.get(pool.get(name, 8)->var_id())
                 << (8 * i);
        }
        auto stored = mem.load_byte(static_cast<u32>(a));
        EXPECT_TRUE(stored->is_const(0xab));
    });
    EXPECT_EQ(paths, 1u);
}

TEST(Explorer, ExhaustiveConcretizationEnumeratesAllValues)
{
    // A 2-bit symbolic index into a 4-entry table; Exhaustive policy
    // must produce 4 paths, one per index.
    IrBuilder b("table");
    auto idx_byte = b.load(IrBuilder::imm32(0x1000), 1);
    auto addr = b.assign(E::add(
        IrBuilder::imm32(0x2000),
        E::zext(E::extract(idx_byte, 0, 2), 32)));
    auto entry = b.load(addr, 1, ir::ConcretizePolicy::Exhaustive);
    b.halt(E::zext(entry, 32));
    ir::Program p = b.finish();

    VarPool pool;
    InitialByteFn init = [&pool](u32 addr) -> ExprRef {
        if (addr == 0x1000)
            return pool.get("idx", 8);
        if (addr >= 0x2000 && addr < 0x2004)
            return E::constant(8, 10 + (addr - 0x2000));
        return E::constant(8, 0);
    };
    PathExplorer ex(p, pool, init);
    std::set<u32> entries;
    auto stats = ex.explore([&](const PathInfo &info, SymbolicMemory &) {
        entries.insert(info.halt_code);
    });
    EXPECT_EQ(stats.paths, 4u);
    EXPECT_TRUE(stats.complete);
    EXPECT_EQ(entries, (std::set<u32>{10, 11, 12, 13}));
}

TEST(Explorer, AssumePrunesInfeasiblePrefixes)
{
    IrBuilder b("assume");
    auto x = b.load(IrBuilder::imm32(0x1000), 1);
    b.assume(E::ult(x, IrBuilder::imm8(2)), "x < 2");
    Label z = b.label(), nz = b.label();
    b.cjmp(E::eq(x, IrBuilder::imm8(0)), z, nz);
    b.bind(z);
    b.halt(100);
    b.bind(nz);
    // x must be exactly 1 here.
    b.assume(E::eq(x, IrBuilder::imm8(1)));
    b.halt(101);
    ir::Program p = b.finish();

    VarPool pool;
    PathExplorer ex(p, pool, make_initial(pool, 0x1000, 1));
    std::set<u32> codes;
    auto stats = ex.explore([&](const PathInfo &info, SymbolicMemory &) {
        codes.insert(info.halt_code);
    });
    EXPECT_EQ(stats.paths, 2u);
    EXPECT_TRUE(stats.complete);
    EXPECT_EQ(codes, (std::set<u32>{100, 101}));
}

TEST(Explorer, SymbolicHaltCodeIsPinned)
{
    IrBuilder b("symhalt");
    auto x = b.load(IrBuilder::imm32(0x1000), 1);
    b.halt(E::zext(x, 32));
    ir::Program p = b.finish();

    VarPool pool;
    PathExplorer ex(p, pool, make_initial(pool, 0x1000, 1));
    u64 paths = 0;
    ex.explore([&](const PathInfo &info, SymbolicMemory &) {
        ++paths;
        EXPECT_EQ(info.halt_code,
                  info.assignment.get(
                      pool.get("mem_00001000", 8)->var_id()));
    });
    EXPECT_EQ(paths, 1u);
}

// ---------------------------------------------------------------------
// Minimization (paper §3.4).
// ---------------------------------------------------------------------

TEST(Minimize, UnconstrainedBitsReturnToBaseline)
{
    VarPool pool;
    auto x = pool.get("x", 32);
    auto y = pool.get("y", 32);
    // Path condition only constrains x's low byte.
    std::vector<ExprRef> pc = {
        E::eq(E::extract(x, 0, 8), E::constant(8, 0x7f)),
    };
    solver::Assignment assign;
    assign.set(x->var_id(), 0xdeadbe7f);
    assign.set(y->var_id(), 0x12345678);
    solver::Assignment baseline;
    baseline.set(x->var_id(), 0x11111100);
    baseline.set(y->var_id(), 0xaaaaaaaa);

    auto stats = minimize_against_baseline(assign, baseline, pc, pool);
    // y is fully unconstrained: must return to baseline exactly.
    EXPECT_EQ(assign.get(y->var_id()), 0xaaaaaaaau);
    // x: upper 24 bits restored, low byte must stay 0x7f.
    EXPECT_EQ(assign.get(x->var_id()), 0x1111117fu);
    EXPECT_TRUE(assign.satisfies(pc));
    EXPECT_LT(stats.bits_different_after, stats.bits_different_before);
}

TEST(Minimize, ConstrainedBitsAreKept)
{
    VarPool pool;
    auto x = pool.get("x", 8);
    std::vector<ExprRef> pc = {E::eq(x, E::constant(8, 0x55))};
    solver::Assignment assign;
    assign.set(x->var_id(), 0x55);
    solver::Assignment baseline;
    baseline.set(x->var_id(), 0x00);
    minimize_against_baseline(assign, baseline, pc, pool);
    EXPECT_EQ(assign.get(x->var_id()), 0x55u);
}

TEST(Minimize, RelationalConstraintKeepsSatisfaction)
{
    // pc: x + y == 100. Baseline x=0,y=0 cannot be fully reached, but
    // whatever the minimizer does, satisfaction must be preserved.
    VarPool pool;
    auto x = pool.get("x", 16);
    auto y = pool.get("y", 16);
    std::vector<ExprRef> pc = {
        E::eq(E::add(x, y), E::constant(16, 100))};
    solver::Assignment assign;
    assign.set(x->var_id(), 77);
    assign.set(y->var_id(), 23);
    solver::Assignment baseline; // zeros
    minimize_against_baseline(assign, baseline, pc, pool);
    EXPECT_TRUE(assign.satisfies(pc));
}

// ---------------------------------------------------------------------
// Summarization (paper §3.3.2).
// ---------------------------------------------------------------------

TEST(Summarize, FoldsAllPathsIntoIte)
{
    // Helper: out = (x < 10) ? 1 : (x < 100 ? 2 : 3), written to 0x2000.
    IrBuilder b("classify");
    auto x = b.load(IrBuilder::imm32(0x1000), 4);
    Label small = b.label(), rest = b.label(), mid = b.label(),
          big = b.label();
    b.cjmp(E::ult(x, IrBuilder::imm32(10)), small, rest);
    b.bind(small);
    b.store(IrBuilder::imm32(0x2000), 4, IrBuilder::imm32(1));
    b.halt(0);
    b.bind(rest);
    b.cjmp(E::ult(x, IrBuilder::imm32(100)), mid, big);
    b.bind(mid);
    b.store(IrBuilder::imm32(0x2000), 4, IrBuilder::imm32(2));
    b.halt(0);
    b.bind(big);
    b.store(IrBuilder::imm32(0x2000), 4, IrBuilder::imm32(3));
    b.halt(0);
    ir::Program p = b.finish();

    VarPool pool;
    Summary s = summarize_program(p, pool,
                                  make_initial(pool, 0x1000, 4),
                                  {{0x2000, 4}});
    EXPECT_EQ(s.paths, 3u);
    EXPECT_TRUE(s.complete);
    ASSERT_EQ(s.outputs.size(), 1u);

    // Evaluate the summary for representative inputs.
    auto eval_at = [&](u32 xv) {
        solver::Assignment a;
        for (int i = 0; i < 4; ++i) {
            char name[32];
            std::snprintf(name, sizeof name, "mem_%08x", 0x1000 + i);
            a.set(pool.get(name, 8)->var_id(), (xv >> (8 * i)) & 0xff);
        }
        return a.eval(s.outputs[0]);
    };
    EXPECT_EQ(eval_at(5), 1u);
    EXPECT_EQ(eval_at(50), 2u);
    EXPECT_EQ(eval_at(5000), 3u);
}

} // namespace
} // namespace pokeemu::symexec
