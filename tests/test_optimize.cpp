/**
 * @file
 * IR optimizer and translation-validator tests (analysis/optimize.h,
 * analysis/equiv.h) plus the pipeline/campaign OptMode invariants:
 *
 *  - pass-level unit tests over hand-built programs (branch folding,
 *    copy propagation, dead code, preserved fault behavior);
 *  - a randomized oracle: original and optimized programs run under
 *    the concrete IR interpreter from hundreds of random initial
 *    states per sampled instruction and must agree byte for byte;
 *  - validator positive/negative tests, including a hand-miscompiled
 *    program that must yield a concrete counterexample;
 *  - Report::sort() canonical-order regression (byte-stable output);
 *  - checkpoint v4 round-trip of the optimizer columns;
 *  - OptMode::Validated produces the same tests and difference
 *    clusters as Off (the stage-2 test-identity invariant), and the
 *    sharded campaign report stays byte-identical with the optimizer
 *    enabled.
 */
#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/diagnostic.h"
#include "analysis/equiv.h"
#include "analysis/optimize.h"
#include "arch/decoder.h"
#include "arch/insn_table.h"
#include "explore/state_spec.h"
#include "harness/filter.h"
#include "hifi/semantics.h"
#include "ir/builder.h"
#include "ir/eval.h"
#include "pokeemu/shard.h"
#include "testgen/testgen.h"

namespace pokeemu {
namespace {

namespace E = ir::E;
namespace layout = arch::layout;
using analysis::optimize_program;
using analysis::OptResult;
using ir::IrBuilder;

int
index_of(std::initializer_list<u8> bytes)
{
    std::vector<u8> buf(bytes);
    buf.resize(arch::kMaxInsnLength, 0);
    arch::DecodedInsn insn;
    EXPECT_EQ(arch::decode(buf.data(), buf.size(), insn),
              arch::DecodeStatus::Ok);
    return insn.table_index;
}

/** Decode a table entry's canonical encoding. */
arch::DecodedInsn
decode_index(int index)
{
    const std::vector<u8> bytes = arch::canonical_encoding(index);
    arch::DecodedInsn insn;
    EXPECT_EQ(arch::decode(bytes.data(), bytes.size(), insn),
              arch::DecodeStatus::Ok);
    return insn;
}

std::size_t
count_kind(const ir::Program &program, ir::StmtKind kind)
{
    std::size_t n = 0;
    for (const ir::Stmt &s : program.stmts)
        if (s.kind == kind)
            ++n;
    return n;
}

/**
 * Deterministic random-state memory for the oracle test: every byte's
 * initial value is a hash of (seed, address), writes go to an overlay
 * map. Two instances with the same seed present identical initial
 * state, so comparing the overlays compares the programs' outputs.
 * ECX is pinned to a small count so rep-prefixed programs terminate
 * within the step budget on both sides.
 */
class HashedMemory final : public ir::ConcreteMemory
{
  public:
    explicit HashedMemory(u64 seed) : seed_(seed) {}

    u64 load(u32 addr, unsigned size) override
    {
        u64 v = 0;
        for (unsigned i = 0; i < size; ++i)
            v |= static_cast<u64>(byte(addr + i)) << (8 * i);
        return v;
    }

    void store(u32 addr, unsigned size, u64 value) override
    {
        for (unsigned i = 0; i < size; ++i)
            written_[addr + i] =
                static_cast<u8>(value >> (8 * i));
    }

    const std::map<u32, u8> &written() const { return written_; }

  private:
    u8 byte(u32 addr) const
    {
        const auto it = written_.find(addr);
        if (it != written_.end())
            return it->second;
        const u32 ecx = layout::gpr_addr(1);
        if (addr == ecx)
            return mix(addr) & 3; // rep count <= 3
        if (addr > ecx && addr < ecx + 4)
            return 0;
        return mix(addr);
    }

    u8 mix(u32 addr) const
    {
        u64 x = seed_ ^ (static_cast<u64>(addr) * 0x9e3779b97f4a7c15ULL);
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdULL;
        x ^= x >> 33;
        return static_cast<u8>(x);
    }

    u64 seed_;
    std::map<u32, u8> written_;
};

/** Per-byte fresh-variable environment for hand-program validation. */
symexec::InitialByteFn
free_initial(symexec::VarPool &pool)
{
    return [&pool](u32 addr) {
        return pool.get("mem_" + std::to_string(addr), 8);
    };
}

// ---------------------------------------------------------------------
// Optimizer pass units.
// ---------------------------------------------------------------------

TEST(Optimize, ConstantBranchFoldsAndUnreachableSideIsRemoved)
{
    IrBuilder b("fold");
    const ir::Label t = b.label();
    const ir::Label f = b.label();
    b.cjmp(E::eq(IrBuilder::imm32(1), IrBuilder::imm32(1)), t, f);
    b.bind(f);
    b.store(IrBuilder::imm32(0x1000), 4, IrBuilder::imm32(0xdead));
    b.halt(2);
    b.bind(t);
    b.store(IrBuilder::imm32(0x1000), 4, IrBuilder::imm32(0xbeef));
    b.halt(1);

    const OptResult r = optimize_program(b.finish());
    EXPECT_LT(r.stats.exec_after, r.stats.exec_before);
    EXPECT_EQ(count_kind(r.program, ir::StmtKind::CJmp), 0u);

    HashedMemory m(1);
    const ir::RunResult run = ir::run_concrete(r.program, m);
    EXPECT_EQ(run.status, ir::RunStatus::Halted);
    EXPECT_EQ(run.halt_code, 1u);
    EXPECT_EQ(m.load(0x1000, 4), 0xbeefu);
}

TEST(Optimize, SingleUseAssignIsForwardSubstituted)
{
    // The builder folds constant assigns itself, so a Load supplies
    // the non-constant value that forces a real temp chain.
    IrBuilder b("copyprop");
    const ir::ExprRef v = b.load(IrBuilder::imm32(0x100), 4);
    const ir::ExprRef c = b.assign(E::add(v, IrBuilder::imm32(1)));
    b.store(IrBuilder::imm32(0x2000), 4, c);
    b.halt(0);

    const OptResult r = optimize_program(b.finish());
    // The single-use assign inlines into the store and dies:
    // load + store + halt survive.
    EXPECT_EQ(r.stats.exec_after, 3u);
    EXPECT_GE(r.stats.copies_propagated, 1u);
    EXPECT_GE(r.stats.dead_assigns, 1u);

    HashedMemory m(2);
    const u64 input = m.load(0x100, 4);
    const ir::RunResult run = ir::run_concrete(r.program, m);
    EXPECT_EQ(run.status, ir::RunStatus::Halted);
    EXPECT_EQ(m.load(0x2000, 4), (input + 1) & 0xffffffffu);
}

TEST(Optimize, DeadAssignAndConstantAddressLoadAreRemoved)
{
    IrBuilder b("deadassign");
    const ir::ExprRef v = b.load(IrBuilder::imm32(0x100), 4);
    (void)b.assign(E::add(v, IrBuilder::imm32(7)), "never used");
    b.halt(0);

    const OptResult r = optimize_program(b.finish());
    EXPECT_EQ(r.stats.exec_after, 1u); // just the halt
    EXPECT_GE(r.stats.dead_assigns, 1u);
    EXPECT_GE(r.stats.dead_loads, 1u);
}

TEST(Optimize, OverwrittenConstantStoreIsRemoved)
{
    IrBuilder b("deadstore");
    b.store(IrBuilder::imm32(0x3000), 4, IrBuilder::imm32(0x11));
    b.store(IrBuilder::imm32(0x3000), 4, IrBuilder::imm32(0x22));
    b.halt(0);

    const OptResult r = optimize_program(b.finish());
    EXPECT_EQ(r.stats.exec_after, 2u);
    EXPECT_GE(r.stats.dead_stores, 1u);

    HashedMemory m(3);
    (void)ir::run_concrete(r.program, m);
    EXPECT_EQ(m.load(0x3000, 4), 0x22u);
}

TEST(Optimize, FalseAssumeIsKeptTrueAssumeIsDropped)
{
    IrBuilder fail("assume-false");
    fail.assume(E::constant(1, 0), "always infeasible");
    fail.store(IrBuilder::imm32(0x4000), 4, IrBuilder::imm32(1));
    fail.halt(0);
    const ir::Program original = fail.finish();

    const OptResult r = optimize_program(original);
    EXPECT_EQ(r.stats.assumes_dropped, 0u);
    // The fault behavior is the program's observable output here.
    HashedMemory ma(4);
    HashedMemory mb(4);
    EXPECT_EQ(ir::run_concrete(original, ma).status,
              ir::RunStatus::AssumeFailed);
    EXPECT_EQ(ir::run_concrete(r.program, mb).status,
              ir::RunStatus::AssumeFailed);

    IrBuilder ok("assume-true");
    ok.assume(E::constant(1, 1), "vacuous");
    ok.halt(0);
    const OptResult r2 = optimize_program(ok.finish());
    EXPECT_GE(r2.stats.assumes_dropped, 1u);
    EXPECT_EQ(count_kind(r2.program, ir::StmtKind::Assume), 0u);
}

TEST(Optimize, IdempotentOnRealSemantics)
{
    const arch::DecodedInsn insn = decode_index(index_of({0x50}));
    const ir::Program original = hifi::build_semantics(insn);
    const OptResult once = optimize_program(original);
    const OptResult twice = optimize_program(once.program);
    EXPECT_EQ(twice.stats.exec_before, twice.stats.exec_after)
        << "second optimization round found more work";
}

TEST(Optimize, OptimizedSemanticsStayVerifierClean)
{
    const int n = static_cast<int>(arch::insn_table().size());
    for (int i = 0; i < n; i += 31) {
        const OptResult r = optimize_program(
            hifi::build_semantics(decode_index(i)));
        // finish()/validate() level invariants must hold again.
        EXPECT_NO_THROW(r.program.validate()) << "insn " << i;
        // Some tiny semantics have nothing left to remove; the
        // aggregate reduction floor lives in the oracle test.
        EXPECT_LE(r.stats.exec_after, r.stats.exec_before)
            << "insn " << i;
    }
}

// ---------------------------------------------------------------------
// Satellite 1: randomized concrete oracle, original vs optimized.
// ---------------------------------------------------------------------

TEST(OptimizeOracle, RandomInitialStatesAgreeByteForByte)
{
    const int n = static_cast<int>(arch::insn_table().size());
    u64 exec_before = 0;
    u64 exec_after = 0;
    for (int i = 0; i < n; i += 29) {
        const ir::Program original =
            hifi::build_semantics(decode_index(i));
        const OptResult opt = optimize_program(original);
        exec_before += opt.stats.exec_before;
        exec_after += opt.stats.exec_after;
        for (u64 seed = 0; seed < 300; ++seed) {
            HashedMemory ma(seed);
            HashedMemory mb(seed);
            const ir::RunResult ra = ir::run_concrete(original, ma);
            const ir::RunResult rb =
                ir::run_concrete(opt.program, mb);
            ASSERT_EQ(ra.status, rb.status)
                << "insn " << i << " seed " << seed;
            if (ra.status == ir::RunStatus::Halted) {
                ASSERT_EQ(ra.halt_code, rb.halt_code)
                    << "insn " << i << " seed " << seed;
            }
            ASSERT_EQ(ma.written(), mb.written())
                << "insn " << i << " seed " << seed
                << ": final memory diverged";
        }
    }
    EXPECT_LT(exec_after, exec_before);
}

// ---------------------------------------------------------------------
// Translation validator.
// ---------------------------------------------------------------------

TEST(Equiv, ProvesRealOptimizationEquivalent)
{
    const int index = index_of({0x50}); // push eax
    const arch::DecodedInsn insn = decode_index(index);
    symexec::VarPool summary_pool;
    const symexec::Summary summary =
        hifi::summarize_descriptor_load(summary_pool);
    const explore::StateSpec spec(testgen::baseline_cpu_state(),
                                  testgen::baseline_ram_after_init(),
                                  &summary);

    hifi::SemanticsOptions sem_options;
    sem_options.descriptor_summary = &summary;
    const ir::Program original =
        hifi::build_semantics(insn, sem_options);
    const OptResult opt = optimize_program(original);

    symexec::VarPool pool;
    analysis::EquivOptions eq;
    eq.preconditions = spec.preconditions(pool);
    eq.eflags_addr = layout::kEflagsAddr;
    eq.eflags_ignore_mask =
        harness::undefined_flags_mask(arch::insn_table()[index].op);
    const analysis::EquivResult res = analysis::validate_translation(
        original, opt.program, pool, spec.initial_fn(pool), eq);

    EXPECT_TRUE(res.equivalent);
    EXPECT_TRUE(res.proven);
    EXPECT_FALSE(res.counterexample.has_value());
    EXPECT_GT(res.original_paths, 0u);
    EXPECT_GT(res.pairs_checked, 0u);
    EXPECT_GT(res.bytes_compared + res.bytes_structural, 0u);
}

TEST(Equiv, MiscompiledStoreYieldsCounterexample)
{
    IrBuilder good("good");
    {
        const ir::ExprRef v =
            good.load(IrBuilder::imm32(0x100), 1,
                      ir::ConcretizePolicy::SingleRandom, "input");
        good.store(IrBuilder::imm32(0x200), 1, v);
        good.halt(0);
    }
    IrBuilder bad("bad");
    {
        const ir::ExprRef v =
            bad.load(IrBuilder::imm32(0x100), 1,
                     ir::ConcretizePolicy::SingleRandom, "input");
        bad.store(IrBuilder::imm32(0x200), 1,
                  E::add(v, IrBuilder::imm8(1)));
        bad.halt(0);
    }

    symexec::VarPool pool;
    const analysis::EquivResult res = analysis::validate_translation(
        good.finish(), bad.finish(), pool, free_initial(pool), {});
    EXPECT_FALSE(res.equivalent);
    ASSERT_TRUE(res.counterexample.has_value());
    EXPECT_FALSE(res.counterexample->halt_mismatch);
    EXPECT_EQ(res.counterexample->addr, 0x200u);
    // The model must be renderable (verbatim dump requirement).
    EXPECT_FALSE(res.counterexample->to_string(pool).empty());
}

TEST(Equiv, HaltCodeMismatchIsACounterexample)
{
    IrBuilder good("good");
    good.halt(1);
    IrBuilder bad("bad");
    bad.halt(2);

    symexec::VarPool pool;
    const analysis::EquivResult res = analysis::validate_translation(
        good.finish(), bad.finish(), pool, free_initial(pool), {});
    EXPECT_FALSE(res.equivalent);
    ASSERT_TRUE(res.counterexample.has_value());
    EXPECT_TRUE(res.counterexample->halt_mismatch);
    EXPECT_EQ(res.counterexample->original_halt, 1u);
    EXPECT_EQ(res.counterexample->optimized_halt, 2u);
}

TEST(Equiv, EflagsIgnoreMaskPermitsUndefinedBitsOnly)
{
    const u32 eflags = layout::kEflagsAddr;
    const auto build = [&](u64 value) {
        IrBuilder b("flags");
        b.store(IrBuilder::imm32(eflags), 1, IrBuilder::imm8(value));
        b.halt(0);
        return b.finish();
    };
    const ir::Program original = build(0x00);
    const ir::Program masked = build(0x10); // differs in AF only

    symexec::VarPool pool_a;
    analysis::EquivOptions eq;
    eq.eflags_addr = eflags;
    eq.eflags_ignore_mask = 0x10;
    EXPECT_TRUE(analysis::validate_translation(
                    original, masked, pool_a, free_initial(pool_a), eq)
                    .equivalent);

    symexec::VarPool pool_b;
    eq.eflags_ignore_mask = 0;
    EXPECT_FALSE(analysis::validate_translation(
                     original, masked, pool_b, free_initial(pool_b),
                     eq)
                     .equivalent);
}

// ---------------------------------------------------------------------
// Satellite 2: deterministic diagnostic ordering.
// ---------------------------------------------------------------------

TEST(ReportSort, CanonicalOrderIsInsertionIndependent)
{
    const auto fill = [](analysis::Report &r, bool reversed) {
        std::vector<std::tuple<analysis::Severity, u32, const char *,
                               const char *>>
            rows = {
                {analysis::Severity::Note, 5, "liveness", "n1"},
                {analysis::Severity::Error, analysis::kNoStmt,
                 "verifier", "program-level"},
                {analysis::Severity::Warning, 2, "cfg", "w"},
                {analysis::Severity::Error, 2, "cfg", "e"},
                {analysis::Severity::Note, 2, "dataflow", "n2"},
            };
        if (reversed)
            std::reverse(rows.begin(), rows.end());
        for (const auto &[sev, stmt, pass, msg] : rows)
            r.add(sev, stmt, pass, msg);
    };
    analysis::Report forward;
    analysis::Report backward;
    fill(forward, false);
    fill(backward, true);
    forward.sort();
    backward.sort();
    EXPECT_EQ(forward.to_string(), backward.to_string());

    const auto &d = forward.diagnostics();
    ASSERT_EQ(d.size(), 5u);
    // By statement first; program-level (kNoStmt) findings last.
    EXPECT_EQ(d[0].stmt_index, 2u);
    EXPECT_EQ(d[0].pass, "cfg");
    EXPECT_EQ(d[0].severity, analysis::Severity::Error); // errors first
    EXPECT_EQ(d[1].severity, analysis::Severity::Warning);
    EXPECT_EQ(d[2].pass, "dataflow");
    EXPECT_EQ(d[3].stmt_index, 5u);
    EXPECT_EQ(d[4].stmt_index, analysis::kNoStmt);
}

// ---------------------------------------------------------------------
// Satellite 3 (persistence half): checkpoint v4 optimizer columns.
// ---------------------------------------------------------------------

TEST(CheckpointV4, OptimizerColumnsRoundTrip)
{
    Checkpoint cp;
    cp.fingerprint = 0x1234;
    CheckpointUnit proven;
    proven.table_index = 3;
    proven.complete = true;
    proven.stmts_before = 100;
    proven.stmts_after = 61;
    proven.opt_validated = true;
    CheckpointUnit fallen;
    fallen.table_index = 4;
    fallen.complete = true;
    fallen.stmts_before = 80;
    fallen.stmts_after = 55;
    fallen.opt_fallback = true;
    cp.explored = {proven, fallen};

    std::stringstream ss;
    save_checkpoint(ss, cp);
    const Checkpoint back = load_checkpoint(ss);
    ASSERT_EQ(back.explored.size(), 2u);
    EXPECT_EQ(back.explored[0].stmts_before, 100u);
    EXPECT_EQ(back.explored[0].stmts_after, 61u);
    EXPECT_TRUE(back.explored[0].opt_validated);
    EXPECT_FALSE(back.explored[0].opt_fallback);
    EXPECT_EQ(back.explored[1].stmts_before, 80u);
    EXPECT_FALSE(back.explored[1].opt_validated);
    EXPECT_TRUE(back.explored[1].opt_fallback);
}

TEST(CheckpointV4, OlderFormatsAreRefusedByName)
{
    for (const char *magic :
         {"pokeemu-checkpoint-v1", "pokeemu-checkpoint-v2",
          "pokeemu-checkpoint-v3"}) {
        std::istringstream in(std::string(magic) + "\n");
        EXPECT_THROW(load_checkpoint(in), std::logic_error) << magic;
    }
}

// ---------------------------------------------------------------------
// Pipeline and campaign OptMode invariants.
// ---------------------------------------------------------------------

PipelineOptions
small_pipeline()
{
    PipelineOptions options;
    options.instruction_filter = {
        index_of({0x50}),       // push eax
        index_of({0x74, 0x00}), // jz
        index_of({0xd3, 0xe0}), // shl eax, cl
    };
    options.max_paths_per_insn = 8;
    return options;
}

TEST(PipelineOpt, ValidatedModeKeepsTestsAndClustersIdentical)
{
    Pipeline off(small_pipeline());
    off.run();

    PipelineOptions vopt = small_pipeline();
    vopt.opt = analysis::OptMode::Validated;
    Pipeline validated(vopt);
    validated.run();

    // Stage-2 test identity: same tests, byte for byte.
    ASSERT_EQ(validated.tests().size(), off.tests().size());
    for (std::size_t i = 0; i < off.tests().size(); ++i) {
        const GeneratedTest &a = off.tests()[i];
        const GeneratedTest &b = validated.tests()[i];
        EXPECT_EQ(a.id, b.id);
        EXPECT_EQ(a.table_index, b.table_index);
        EXPECT_EQ(a.halt_code, b.halt_code);
        EXPECT_EQ(a.program.code, b.program.code) << "test " << i;
    }

    // Stage-4/5 outcomes identical: replaying proven-equivalent IR
    // cannot move any diff or cluster.
    const PipelineStats &so = off.stats();
    const PipelineStats &sv = validated.stats();
    EXPECT_EQ(sv.total_paths, so.total_paths);
    EXPECT_EQ(sv.tests_executed, so.tests_executed);
    EXPECT_EQ(sv.lofi_raw_diffs, so.lofi_raw_diffs);
    EXPECT_EQ(sv.hifi_raw_diffs, so.hifi_raw_diffs);
    EXPECT_EQ(sv.lofi_diffs, so.lofi_diffs);
    EXPECT_EQ(sv.hifi_diffs, so.hifi_diffs);
    EXPECT_EQ(sv.lofi_clusters.to_string(),
              so.lofi_clusters.to_string());
    EXPECT_EQ(sv.hifi_clusters.to_string(),
              so.hifi_clusters.to_string());

    // Off records nothing; Validated proves every unit.
    EXPECT_EQ(so.opt_stmts_before, 0u);
    EXPECT_EQ(so.opt_stmts_after, 0u);
    EXPECT_GT(sv.opt_stmts_before, sv.opt_stmts_after);
    // Every exhaustively explored unit is provable; a path-capped unit
    // (jz here) validates without the `proven` upgrade but must not
    // fail or fall back either.
    EXPECT_GT(sv.opt_units_validated, 0u);
    EXPECT_EQ(sv.opt_units_validated, sv.instructions_complete);
    EXPECT_EQ(sv.opt_validation_failures, 0u);
    EXPECT_EQ(sv.quarantine.total(), 0u);
}

TEST(PipelineOpt, OptModeIsPartOfTheOptionsFingerprint)
{
    PipelineOptions off = small_pipeline();
    PipelineOptions on = small_pipeline();
    on.opt = analysis::OptMode::On;
    PipelineOptions validated = small_pipeline();
    validated.opt = analysis::OptMode::Validated;
    EXPECT_NE(options_fingerprint(off), options_fingerprint(on));
    EXPECT_NE(options_fingerprint(on),
              options_fingerprint(validated));
}

TEST(CampaignOpt, MergedReportByteIdenticalAcrossShardCounts)
{
    CampaignOptions options;
    options.pipeline = small_pipeline();
    options.pipeline.opt = analysis::OptMode::Validated;
    const std::string reference = run_campaign(options).report();
    EXPECT_NE(reference.find("IR optimizer:"), std::string::npos);

    for (u32 shards : {2u, 4u}) {
        CampaignOptions sharded = options;
        sharded.shards = shards;
        const CampaignResult result = run_campaign(sharded);
        EXPECT_TRUE(result.complete);
        EXPECT_EQ(result.report(), reference)
            << "shards=" << shards;
    }
}

} // namespace
} // namespace pokeemu
