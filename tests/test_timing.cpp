/**
 * @file
 * Cycle-fidelity subsystem tests (DESIGN.md §16): divergence-label
 * ratio buckets, properties of the generated cost table, the v5
 * checkpoint cycle columns, and end-to-end detection of seeded timing
 * defects as TimingDivergence — never as state diffs or timeouts.
 */
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "arch/decoder.h"
#include "defects/defects.h"
#include "harness/runner.h"
#include "hifi/compiled.h"
#include "pokeemu/pipeline.h"
#include "pokeemu/resilience.h"
#include "timing/cost_model.h"

namespace pokeemu {
namespace {

using lofi::BugConfig;
using timing::divergence_label;

int
index_of(std::initializer_list<u8> bytes)
{
    std::vector<u8> buf(bytes);
    buf.resize(arch::kMaxInsnLength, 0);
    arch::DecodedInsn insn;
    EXPECT_EQ(arch::decode(buf.data(), buf.size(), insn),
              arch::DecodeStatus::Ok);
    return insn.table_index;
}

// ---------------------------------------------------------------------
// Divergence labels: the ratio buckets that become cluster root causes.
// ---------------------------------------------------------------------

TEST(DivergenceLabel, ZeroOnEitherSideWinsOverRatio)
{
    EXPECT_EQ(divergence_label(0, 10, "lofi"), "cycles-zero-lofi");
    EXPECT_EQ(divergence_label(10, 0, "lofi"), "cycles-zero-lofi");
    EXPECT_EQ(divergence_label(0, 0, "hifi"), "cycles-zero-hifi");
}

TEST(DivergenceLabel, RatioBuckets)
{
    EXPECT_EQ(divergence_label(100, 80, "lofi"), "cycles-under-lofi");
    EXPECT_EQ(divergence_label(80, 100, "lofi"), "cycles-over-lofi");
    EXPECT_EQ(divergence_label(100, 50, "lofi"),
              "cycles-2x-under-lofi");
    EXPECT_EQ(divergence_label(50, 100, "hifi"), "cycles-2x-over-hifi");
    EXPECT_EQ(divergence_label(300, 100, "lofi"),
              "cycles-3x-under-lofi");
    EXPECT_EQ(divergence_label(400, 100, "lofi"),
              "cycles-4x+-under-lofi");
    EXPECT_EQ(divergence_label(100, 1000, "lofi"),
              "cycles-4x+-over-lofi");
}

TEST(DivergenceLabel, ExactHalvingBucketsAsTwoXForAnyTotal)
{
    // The pose64 defect: every charge halved. Whatever the true total
    // b, (2b, b) must land in the 2x bucket — including odd b, which
    // the rounded ratio (hi + lo/2) / lo handles exactly.
    for (u64 b : {u64{1}, u64{3}, u64{7}, u64{100}, u64{12345}}) {
        EXPECT_EQ(divergence_label(2 * b, b, "lofi"),
                  "cycles-2x-under-lofi")
            << "total " << b;
    }
}

// ---------------------------------------------------------------------
// The generated cost table (semgen output the binary was compiled
// against; timing_crosscheck proves it equals fresh derivation).
// ---------------------------------------------------------------------

TEST(CostTable, EveryChargeIsEvenSoHalvingIsExact)
{
    const hifi::CompiledCostTable &costs = hifi::compiled_cost_table();
    ASSERT_GT(costs.num, 0u);
    for (std::size_t u = 0; u < costs.num; ++u) {
        const timing::UnitCost &c = costs.costs[u];
        EXPECT_GE(c.base, 2u) << "unit " << u;
        EXPECT_EQ(c.base % 2, 0u) << "unit " << u;
        EXPECT_EQ(c.fault_extra % 2, 0u) << "unit " << u;
        EXPECT_EQ(c.charge(false) % 2, 0u) << "unit " << u;
        EXPECT_EQ(c.charge(true) % 2, 0u) << "unit " << u;
    }
    // The fault-path constants the backends charge directly share the
    // invariant.
    EXPECT_EQ(timing::kMemAccessCost % 2, 0u);
    EXPECT_EQ(timing::kFaultPathCycles % 2, 0u);
    EXPECT_EQ(timing::kExceptionCycles % 2, 0u);
}

TEST(CostTable, ModelServesBothOperandForms)
{
    const timing::CostModel &model = timing::cost_model();
    ASSERT_FALSE(model.empty());
    // push eax has no ModRM: one compiled form serves both lookups.
    const int push = index_of({0x50});
    EXPECT_TRUE(model.cost_for(push, false) ==
                model.cost_for(push, true));
    // add [eax], ecx in its memory form reads and writes guest RAM.
    const int add = index_of({0x01, 0x08});
    EXPECT_GT(model.cost_for(add, true).mem_accesses, 0u);
    // A row with no compiled unit still resolves (minimal fallback).
    EXPECT_GE(model.cost_for(-1, false).base, 2u);
}

// ---------------------------------------------------------------------
// Checkpoint v5: cycle columns round-trip; every older format is
// refused by name.
// ---------------------------------------------------------------------

TEST(CheckpointV5, RoundTripsCycleColumns)
{
    Checkpoint cp;
    cp.fingerprint = 77;
    CheckpointUnit unit;
    unit.table_index = 50;
    unit.complete = true;
    unit.cost_base = 4;
    unit.cost_mem_accesses = 2;
    unit.cost_fault_extra = timing::kExceptionCycles;
    cp.explored.push_back(unit);
    cp.execution.executed_count = 3;
    cp.execution.tests_executed = 3;
    cp.execution.hifi_cycles = 120;
    cp.execution.lofi_cycles = 60;
    cp.execution.hw_cycles = 120;
    cp.execution.lofi_timing_divergences = 3;
    cp.execution.hifi_timing_divergences = 1;
    arch::DecodedInsn insn;
    const u8 push[] = {0x50};
    ASSERT_EQ(arch::decode(push, 1, insn), arch::DecodeStatus::Ok);
    cp.execution.lofi_timing_clusters.add_named(
        1, insn, "cycles-2x-under-lofi");
    cp.execution.hifi_timing_clusters.add_named(
        2, insn, "cycles-over-hifi");

    std::stringstream ss;
    save_checkpoint(ss, cp);
    const Checkpoint back = load_checkpoint(ss);

    ASSERT_EQ(back.explored.size(), 1u);
    EXPECT_EQ(back.explored[0].cost_base, 4u);
    EXPECT_EQ(back.explored[0].cost_mem_accesses, 2u);
    EXPECT_EQ(back.explored[0].cost_fault_extra,
              timing::kExceptionCycles);
    EXPECT_EQ(back.execution.hifi_cycles, 120u);
    EXPECT_EQ(back.execution.lofi_cycles, 60u);
    EXPECT_EQ(back.execution.hw_cycles, 120u);
    EXPECT_EQ(back.execution.lofi_timing_divergences, 3u);
    EXPECT_EQ(back.execution.hifi_timing_divergences, 1u);
    ASSERT_EQ(back.execution.lofi_timing_clusters.clusters().size(),
              1u);
    EXPECT_EQ(
        back.execution.lofi_timing_clusters.clusters()[0].root_cause,
        "cycles-2x-under-lofi");
    ASSERT_EQ(back.execution.hifi_timing_clusters.clusters().size(),
              1u);
    EXPECT_EQ(
        back.execution.hifi_timing_clusters.clusters()[0].root_cause,
        "cycles-over-hifi");
}

TEST(CheckpointV5, EveryOlderVersionRefusedByName)
{
    for (const char *old : {"pokeemu-checkpoint-v1",
                            "pokeemu-checkpoint-v2",
                            "pokeemu-checkpoint-v3",
                            "pokeemu-checkpoint-v4"}) {
        std::istringstream in(std::string(old) + "\nfingerprint 1\n");
        try {
            load_checkpoint(in);
            FAIL() << "expected refusal of " << old;
        } catch (const std::logic_error &e) {
            const std::string what = e.what();
            EXPECT_NE(what.find(old), std::string::npos) << what;
            EXPECT_NE(what.find("pokeemu-checkpoint-v5"),
                      std::string::npos)
                << what;
        }
    }
}

// ---------------------------------------------------------------------
// Runner level: with timing on and an unbugged Lo-Fi, all three
// backends agree cycle-for-cycle; with timing off nothing is charged.
// ---------------------------------------------------------------------

harness::TestRunner
timing_runner(BugConfig bugs = BugConfig::none())
{
    harness::TestRunner::Config cfg;
    cfg.bugs = bugs;
    cfg.timing = true;
    return harness::TestRunner(cfg);
}

TEST(TimingRunner, ThreeWayAgreementOnRetirementAndException)
{
    harness::TestRunner runner = timing_runner();
    // Normal retirements (push eax; hlt) and an exception path
    // (int 0x20): both must charge identically everywhere.
    for (const std::vector<u8> &program :
         {std::vector<u8>{0x50, 0xf4},
          std::vector<u8>{0xcd, 0x20, 0xf4}}) {
        const harness::ThreeWayResult r = runner.run(program);
        EXPECT_GT(r.hw.snapshot.cycles, 0u);
        EXPECT_EQ(r.hifi.snapshot.cycles, r.hw.snapshot.cycles);
        EXPECT_EQ(r.lofi.snapshot.cycles, r.hw.snapshot.cycles);
    }
}

TEST(TimingRunner, DefaultConfigChargesNothing)
{
    harness::TestRunner runner; // timing defaults off
    const harness::ThreeWayResult r = runner.run({0x50, 0xf4});
    EXPECT_EQ(r.hifi.snapshot.cycles, 0u);
    EXPECT_EQ(r.lofi.snapshot.cycles, 0u);
    EXPECT_EQ(r.hw.snapshot.cycles, 0u);
}

TEST(TimingRunner, HalfCycleDefectHalvesLoFiExactly)
{
    harness::TestRunner clean = timing_runner();
    BugConfig bugs = BugConfig::none();
    bugs.half_cycle_accounting = true;
    harness::TestRunner defected = timing_runner(bugs);
    const std::vector<u8> program = {0x50, 0xf4}; // push eax; hlt
    const u64 truth = clean.run(program).hw.snapshot.cycles;
    const harness::ThreeWayResult r = defected.run(program);
    ASSERT_GT(truth, 0u);
    EXPECT_EQ(r.hw.snapshot.cycles, truth);   // oracle is undefected
    EXPECT_EQ(r.hifi.snapshot.cycles, truth); // hifi too
    EXPECT_EQ(r.lofi.snapshot.cycles, truth / 2);
    EXPECT_EQ(truth % 2, 0u); // even-cost invariant: halving is exact
}

// ---------------------------------------------------------------------
// Pipeline level: TimingDivergence detection end to end.
// ---------------------------------------------------------------------

PipelineOptions
timing_pipeline_options()
{
    PipelineOptions options;
    options.instruction_filter = {
        index_of({0x50}),       // push eax (stack store)
        index_of({0x01, 0x08}), // add [eax], ecx (load + store)
        index_of({0xc9}),       // leave (stack load)
    };
    options.max_paths_per_insn = 8;
    options.bugs = BugConfig::none();
    options.timing = true;
    return options;
}

TEST(TimingPipeline, CleanCampaignAgreesCycleForCycle)
{
    Pipeline pipeline(timing_pipeline_options());
    const PipelineStats &s = pipeline.run();
    EXPECT_GT(s.tests_executed, 0u);
    EXPECT_GT(s.hw_cycles, 0u);
    EXPECT_EQ(s.hifi_cycles, s.hw_cycles);
    EXPECT_EQ(s.lofi_cycles, s.hw_cycles);
    EXPECT_EQ(s.lofi_timing_divergences, 0u);
    EXPECT_EQ(s.hifi_timing_divergences, 0u);
    EXPECT_TRUE(s.lofi_timing_clusters.clusters().empty());
    EXPECT_TRUE(s.hifi_timing_clusters.clusters().empty());
    // The report carries the new observable.
    EXPECT_NE(s.to_string().find("cycle totals:"), std::string::npos);
}

TEST(TimingPipeline, CycleTotalsInvariantAcrossExecutionModes)
{
    // The model is static per (row, operand form), so compiled
    // dispatch and the optimizer must not move a single cycle.
    const PipelineOptions base = timing_pipeline_options();
    Pipeline ref(base);
    const u64 ref_cycles = ref.run().hw_cycles;
    ASSERT_GT(ref_cycles, 0u);

    for (const hifi::CompiledExec compiled :
         {hifi::CompiledExec::On, hifi::CompiledExec::CrossCheck}) {
        for (const analysis::OptMode opt :
             {analysis::OptMode::Off, analysis::OptMode::On}) {
            PipelineOptions options = base;
            options.compiled = compiled;
            options.opt = opt;
            Pipeline pipeline(options);
            const PipelineStats &s = pipeline.run();
            EXPECT_EQ(s.hifi_cycles, ref_cycles);
            EXPECT_EQ(s.lofi_cycles, ref_cycles);
            EXPECT_EQ(s.hw_cycles, ref_cycles);
            EXPECT_EQ(s.hifi_timing_divergences, 0u);
        }
    }
}

TEST(TimingPipeline, OffChargesNothingAndPrintsNothing)
{
    PipelineOptions options = timing_pipeline_options();
    options.timing = false;
    Pipeline pipeline(options);
    const PipelineStats &s = pipeline.run();
    EXPECT_GT(s.tests_executed, 0u);
    EXPECT_EQ(s.hifi_cycles, 0u);
    EXPECT_EQ(s.lofi_cycles, 0u);
    EXPECT_EQ(s.hw_cycles, 0u);
    EXPECT_EQ(s.lofi_timing_divergences, 0u);
    const std::string report = s.to_string();
    EXPECT_EQ(report.find("cycle totals:"), std::string::npos);
    EXPECT_EQ(report.find("timing divergences"), std::string::npos);
}

TEST(TimingPipeline, TimingModeJoinsOptionsFingerprint)
{
    PipelineOptions off = timing_pipeline_options();
    off.timing = false;
    PipelineOptions on = timing_pipeline_options();
    EXPECT_NE(options_fingerprint(off), options_fingerprint(on));
}

TEST(TimingDefect, HalfCycleAccountingCaughtAsTwoXUnder)
{
    PipelineOptions options = timing_pipeline_options();
    options.bugs.half_cycle_accounting = true;
    Pipeline pipeline(options);
    const PipelineStats &s = pipeline.run();

    EXPECT_GT(s.tests_executed, 0u);
    // Every clean run's Lo-Fi total is exactly half the oracle's.
    EXPECT_EQ(s.lofi_timing_divergences, s.tests_executed);
    EXPECT_EQ(s.lofi_cycles * 2, s.hw_cycles);
    // TimingDivergence only: no state diffs, no timeouts, and the
    // undefected Hi-Fi stays silent.
    EXPECT_EQ(s.lofi_diffs, 0u);
    EXPECT_EQ(s.timeouts, 0u);
    EXPECT_EQ(s.hifi_timing_divergences, 0u);
    const auto clusters = s.lofi_timing_clusters.clusters();
    ASSERT_FALSE(clusters.empty());
    for (const harness::Cluster &c : clusters)
        EXPECT_EQ(c.root_cause, "cycles-2x-under-lofi");
}

TEST(TimingDefect, MemAccessCostDroppedCaughtAsUndercount)
{
    PipelineOptions options = timing_pipeline_options();
    options.bugs.mem_access_cost_dropped = true;
    Pipeline pipeline(options);
    const PipelineStats &s = pipeline.run();

    EXPECT_GT(s.tests_executed, 0u);
    EXPECT_GT(s.lofi_timing_divergences, 0u);
    EXPECT_LT(s.lofi_cycles, s.hw_cycles);
    EXPECT_EQ(s.lofi_diffs, 0u);
    EXPECT_EQ(s.hifi_timing_divergences, 0u);
    const auto clusters = s.lofi_timing_clusters.clusters();
    ASSERT_FALSE(clusters.empty());
    for (const harness::Cluster &c : clusters) {
        EXPECT_EQ(c.root_cause.rfind("cycles-", 0), 0u)
            << c.root_cause;
        EXPECT_NE(c.root_cause.find("under-lofi"), std::string::npos)
            << c.root_cause;
    }
}

TEST(TimingDefect, CatalogueEntriesRideTheTimingObservable)
{
    for (const char *name : {"half-cycle-accounting",
                             "mem-cost-dropped"}) {
        const defects::DefectSpec *found = nullptr;
        for (const defects::DefectSpec &d : defects::catalogue()) {
            if (d.name == name)
                found = &d;
        }
        ASSERT_NE(found, nullptr) << name;
        EXPECT_TRUE(found->timing) << name;
        EXPECT_TRUE(found->detectable) << name;
        ASSERT_FALSE(found->expected_clusters.empty()) << name;
        for (const std::string &cluster : found->expected_clusters) {
            EXPECT_EQ(cluster.rfind("cycles-", 0), 0u)
                << name << ": " << cluster;
        }
    }
}

} // namespace
} // namespace pokeemu
