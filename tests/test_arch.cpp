/** @file Unit tests for the VX86 architecture layer. */
#include <gtest/gtest.h>

#include <cstring>

#include "arch/assembler.h"
#include "arch/decoder.h"
#include "arch/descriptors.h"
#include "arch/layout.h"
#include "arch/paging.h"
#include "arch/snapshot.h"
#include "support/rng.h"

namespace pokeemu::arch {
namespace {

TEST(State, PackUnpackRoundTrip)
{
    Rng rng(5);
    for (int trial = 0; trial < 20; ++trial) {
        CpuState c;
        for (auto &r : c.gpr)
            r = static_cast<u32>(rng.next());
        c.eip = static_cast<u32>(rng.next());
        c.eflags = static_cast<u32>(rng.next());
        c.cr0 = static_cast<u32>(rng.next());
        c.cr2 = static_cast<u32>(rng.next());
        c.cr3 = static_cast<u32>(rng.next());
        c.cr4 = static_cast<u32>(rng.next());
        c.gdtr = {static_cast<u32>(rng.next()),
                  static_cast<u16>(rng.next())};
        c.idtr = {static_cast<u32>(rng.next()),
                  static_cast<u16>(rng.next())};
        for (auto &s : c.seg) {
            s.selector = static_cast<u16>(rng.next());
            s.base = static_cast<u32>(rng.next());
            s.limit = static_cast<u32>(rng.next());
            s.access = static_cast<u8>(rng.next());
            s.db = static_cast<u8>(rng.next() & 1);
        }
        c.msr.sysenter_cs = static_cast<u32>(rng.next());
        c.msr.sysenter_esp = static_cast<u32>(rng.next());
        c.msr.sysenter_eip = static_cast<u32>(rng.next());
        c.exception.vector = static_cast<u8>(rng.next());
        c.exception.error_code = static_cast<u32>(rng.next());
        c.exception.has_error_code = rng.flip();
        c.halted = rng.flip() ? 1 : 0;

        u8 image[layout::kCpuStateSize];
        pack_cpu_state(c, image);
        EXPECT_EQ(unpack_cpu_state(image), c);
    }
}

TEST(Descriptors, EncodeDecodeRoundTrip)
{
    Rng rng(7);
    for (int trial = 0; trial < 50; ++trial) {
        Descriptor d;
        d.base = static_cast<u32>(rng.next());
        d.limit_raw = static_cast<u32>(rng.next()) & 0xfffff;
        d.access = static_cast<u8>(rng.next());
        d.granularity = rng.flip();
        d.db = rng.flip();
        u8 bytes[8];
        encode_descriptor(d, bytes);
        const Descriptor back = decode_descriptor(bytes);
        EXPECT_EQ(back.base, d.base);
        EXPECT_EQ(back.limit_raw, d.limit_raw);
        EXPECT_EQ(back.access, d.access);
        EXPECT_EQ(back.granularity, d.granularity);
        EXPECT_EQ(back.db, d.db);
    }
}

TEST(Descriptors, EffectiveLimit)
{
    Descriptor d = make_flat_descriptor(0x93);
    EXPECT_EQ(d.effective_limit(), 0xffffffffu);
    d.granularity = false;
    d.limit_raw = 0x12345;
    EXPECT_EQ(d.effective_limit(), 0x12345u);
}

TEST(Paging, LinearMapTranslates)
{
    std::vector<u8> ram(kPhysMemSize, 0);
    // PD entry 0 -> PT at 0x2000; PT entry i -> frame i.
    auto put32 = [&](u32 a, u32 v) {
        for (int i = 0; i < 4; ++i)
            ram[a + i] = static_cast<u8>(v >> (8 * i));
    };
    put32(0x1000, 0x2000 | kPtePresent | kPteRw | kPteUser);
    for (u32 i = 0; i < 1024; ++i)
        put32(0x2000 + 4 * i,
              (i << 12) | kPtePresent | kPteRw | kPteUser);

    auto tr = translate_linear(ram.data(), 0x1000, 0x1234,
                               {false, false}, false, true);
    ASSERT_TRUE(tr.ok);
    EXPECT_EQ(tr.phys, 0x1234u);
    // Accessed bits set by the walk.
    EXPECT_TRUE(ram[0x1000] & kPteAccessed);
    EXPECT_TRUE(ram[0x2004] & kPteAccessed);

    // Write marks dirty.
    tr = translate_linear(ram.data(), 0x1000, 0x5678, {true, false},
                          false, true);
    ASSERT_TRUE(tr.ok);
    EXPECT_TRUE(ram[0x2000 + 4 * 5] & kPteDirty);
}

TEST(Paging, NotPresentFaults)
{
    std::vector<u8> ram(kPhysMemSize, 0);
    auto tr = translate_linear(ram.data(), 0x1000, 0x1234,
                               {false, false}, false, true);
    EXPECT_FALSE(tr.ok);
    EXPECT_EQ(tr.pf_error, 0u); // Not-present, read, supervisor.
}

TEST(Paging, WriteProtectRespectsWp)
{
    std::vector<u8> ram(kPhysMemSize, 0);
    auto put32 = [&](u32 a, u32 v) {
        for (int i = 0; i < 4; ++i)
            ram[a + i] = static_cast<u8>(v >> (8 * i));
    };
    put32(0x1000, 0x2000 | kPtePresent | kPteRw | kPteUser);
    put32(0x2000, 0x0000 | kPtePresent | kPteUser); // Read-only page 0.

    // Supervisor write, WP=0: allowed.
    auto tr = translate_linear(ram.data(), 0x1000, 0x10, {true, false},
                               false, true);
    EXPECT_TRUE(tr.ok);
    // Supervisor write, WP=1: #PF with P|W error bits.
    tr = translate_linear(ram.data(), 0x1000, 0x10, {true, false},
                          true, true);
    EXPECT_FALSE(tr.ok);
    EXPECT_EQ(tr.pf_error, kPfErrPresent | kPfErrWrite);
}

// ---------------------------------------------------------------------
// Decoder.
// ---------------------------------------------------------------------

DecodedInsn
decode_ok(std::initializer_list<u8> bytes)
{
    std::vector<u8> buf(bytes);
    buf.resize(kMaxInsnLength, 0);
    DecodedInsn insn;
    EXPECT_EQ(decode(buf.data(), buf.size(), insn), DecodeStatus::Ok);
    return insn;
}

TEST(Decoder, PushEaxFigure5)
{
    // The paper's Figure 5 test instruction: push %eax as ff f0.
    DecodedInsn insn = decode_ok({0xff, 0xf0});
    EXPECT_EQ(insn.desc->op, Op::PushRm32);
    EXPECT_EQ(insn.length, 2);
    EXPECT_EQ(insn.mod, 3);
    EXPECT_EQ(insn.rm, 0u);
    // And the canonical one-byte form.
    insn = decode_ok({0x50});
    EXPECT_EQ(insn.desc->op, Op::PushR32);
    EXPECT_EQ(insn.desc->aux, 0);
}

TEST(Decoder, ModrmForms)
{
    // add [eax], ecx
    DecodedInsn insn = decode_ok({0x01, 0x08});
    EXPECT_EQ(insn.desc->op, Op::AluRm32R32);
    EXPECT_TRUE(insn.is_memory_operand());
    EXPECT_EQ(insn.reg, 1u);
    EXPECT_EQ(insn.rm, 0u);

    // add [ebp+0x12], ecx -> mod=1 disp8
    insn = decode_ok({0x01, 0x4d, 0x12});
    EXPECT_EQ(insn.mod, 1u);
    EXPECT_EQ(insn.disp, 0x12u);
    EXPECT_EQ(insn.length, 3u);

    // add [0x00208055], ecx -> mod=0 rm=5 disp32
    insn = decode_ok({0x01, 0x0d, 0x55, 0x80, 0x20, 0x00});
    EXPECT_EQ(insn.disp, 0x00208055u);
    EXPECT_EQ(insn.length, 6u);

    // SIB: add [eax + ecx*4], edx
    insn = decode_ok({0x01, 0x14, 0x88});
    EXPECT_TRUE(insn.has_sib);
    EXPECT_EQ(insn.base, 0u);
    EXPECT_EQ(insn.index, 1u);
    EXPECT_EQ(insn.scale, 2u);

    // Negative disp8 sign-extends.
    insn = decode_ok({0x01, 0x4d, 0xfc});
    EXPECT_EQ(insn.disp, 0xfffffffcu);
}

TEST(Decoder, GroupSubOpcodes)
{
    DecodedInsn insn = decode_ok({0x80, 0xc8, 0x01}); // or al, 1
    EXPECT_EQ(insn.desc->op, Op::Grp1Rm8Imm8);
    EXPECT_EQ(static_cast<AluKind>(insn.desc->aux), AluKind::Or);

    insn = decode_ok({0xf7, 0xf8}); // idiv eax
    EXPECT_EQ(insn.desc->op, Op::Grp3IdivRm32);

    // ff /7 is undefined.
    DecodedInsn bad;
    u8 buf[15] = {0xff, 0xf8};
    EXPECT_EQ(decode(buf, sizeof buf, bad), DecodeStatus::Invalid);
}

TEST(Decoder, Prefixes)
{
    DecodedInsn insn = decode_ok({0x2e, 0x8b, 0x00}); // mov eax,cs:[eax]
    EXPECT_EQ(insn.seg_override, kCs);

    insn = decode_ok({0xf0, 0x01, 0x08}); // lock add [eax], ecx
    EXPECT_TRUE(insn.lock);

    insn = decode_ok({0xf3, 0xa4}); // rep movsb
    EXPECT_TRUE(insn.rep);

    // Too many prefixes.
    u8 buf[15] = {0x26, 0x26, 0x26, 0x26, 0x26, 0x90};
    DecodedInsn bad;
    EXPECT_EQ(decode(buf, sizeof buf, bad), DecodeStatus::Invalid);
}

DecodeStatus
decode_status(std::initializer_list<u8> bytes)
{
    std::vector<u8> buf(bytes);
    buf.resize(kMaxInsnLength, 0);
    DecodedInsn insn;
    return decode(buf.data(), buf.size(), insn);
}

TEST(Decoder, PrefixLegality)
{
    // lock with register destination: invalid.
    EXPECT_EQ(decode_status({0xf0, 0x01, 0xc8}), DecodeStatus::Invalid);
    // lock on a non-lockable instruction (mov): invalid.
    EXPECT_EQ(decode_status({0xf0, 0x89, 0x08}), DecodeStatus::Invalid);
    // rep on non-string: invalid.
    EXPECT_EQ(decode_status({0xf3, 0x90}), DecodeStatus::Invalid);
    // repne on movs: invalid (only cmps/scas).
    EXPECT_EQ(decode_status({0xf2, 0xa4}), DecodeStatus::Invalid);
    // repne on cmpsb: valid.
    EXPECT_EQ(decode_status({0xf2, 0xa6}), DecodeStatus::Ok);
}

TEST(Decoder, AliasEncodings)
{
    // Shift group /6 is the undocumented SHL alias.
    DecodedInsn insn = decode_ok({0xc0, 0xf0, 0x03}); // "shl al, 3"
    EXPECT_TRUE(insn.desc->is_alias);
    EXPECT_EQ(static_cast<ShiftKind>(insn.desc->aux),
              ShiftKind::ShlAlias);
    // F6 /1 is the undocumented TEST alias.
    insn = decode_ok({0xf6, 0xc8, 0x55});
    EXPECT_TRUE(insn.desc->is_alias);
}

TEST(Decoder, SregConstraints)
{
    u8 buf[15] = {};
    DecodedInsn insn;
    // mov cs, ax: invalid.
    buf[0] = 0x8e;
    buf[1] = 0xc8; // reg = 1 = CS
    EXPECT_EQ(decode(buf, 15, insn), DecodeStatus::Invalid);
    // mov sreg6, ax: invalid.
    buf[1] = 0xf0; // reg = 6
    EXPECT_EQ(decode(buf, 15, insn), DecodeStatus::Invalid);
    // mov ss, ax: fine.
    buf[1] = 0xd0; // reg = 2 = SS
    EXPECT_EQ(decode(buf, 15, insn), DecodeStatus::Ok);
}

TEST(Decoder, TwoByteOpcodes)
{
    DecodedInsn insn = decode_ok({0x0f, 0xb4, 0x00}); // lfs eax,[eax]
    EXPECT_EQ(insn.desc->op, Op::Lfs);
    insn = decode_ok({0x0f, 0x01, 0x15, 0, 0x7f, 0, 0}); // lgdt
    EXPECT_EQ(insn.desc->op, Op::Lgdt);
    insn = decode_ok({0x0f, 0x32}); // rdmsr
    EXPECT_EQ(insn.desc->op, Op::Rdmsr);
    // lgdt with register operand: invalid.
    u8 buf[15] = {0x0f, 0x01, 0xd0};
    DecodedInsn bad;
    EXPECT_EQ(decode(buf, 15, bad), DecodeStatus::Invalid);
}

TEST(Decoder, TooLongInstruction)
{
    // 4 prefixes + c7 05 disp32 imm32 = 4 + 2 + 4 + 4 = 14: fine.
    u8 ok_buf[15] = {0x26, 0x2e, 0x36, 0x3e, 0xc7, 0x05,
                     1, 2, 3, 4, 5, 6, 7, 8};
    DecodedInsn insn;
    EXPECT_EQ(decode(ok_buf, 15, insn), DecodeStatus::Ok);
    EXPECT_EQ(insn.length, 14u);
    // 0f ba /4 with 4 prefixes: 4+2+modrm+disp32+imm8 = 12: also ok;
    // but an artificial overrun via truncated buffer reports TooLong.
    u8 trunc[4] = {0xc7, 0x05, 1, 2};
    EXPECT_EQ(decode(trunc, 4, insn), DecodeStatus::TooLong);
}

TEST(Assembler, RoundTripsThroughDecoder)
{
    Assembler a(0x1000);
    a.mov_r32_imm32(kEax, 0x12345678);
    a.mov_sreg_r16(kSs, kEax);
    a.mov_mem_imm32(0x00208055, 0xdeadbeef);
    a.mov_mem_imm8(0x00208055, 0x13);
    a.mov_mem_r32(0x1234, kEdx);
    a.mov_r32_mem(kEcx, 0x1234);
    a.push_imm32(7);
    a.push_r32(kEbx);
    a.pop_r32(kEsi);
    a.pushfd();
    a.popfd();
    a.lgdt(0x7f00);
    a.lidt(0x7f08);
    a.mov_cr_r32(0, kEax);
    a.mov_r32_cr(kEax, 3);
    a.wrmsr();
    a.nop();
    a.jmp_abs(0x2000);
    a.hlt();

    // Decode the whole stream; every instruction must decode Ok and
    // lengths must chain exactly.
    const std::vector<u8> &code = a.bytes();
    std::size_t pos = 0;
    int count = 0;
    while (pos < code.size()) {
        u8 buf[kMaxInsnLength] = {};
        const std::size_t n =
            std::min<std::size_t>(kMaxInsnLength, code.size() - pos);
        std::memcpy(buf, code.data() + pos, n);
        DecodedInsn insn;
        ASSERT_EQ(decode(buf, kMaxInsnLength, insn), DecodeStatus::Ok)
            << "at offset " << pos;
        pos += insn.length;
        ++count;
    }
    EXPECT_EQ(pos, code.size());
    EXPECT_EQ(count, 19);
}

TEST(Assembler, JmpAbsRelocation)
{
    Assembler a(0x1000);
    a.nop();
    a.jmp_abs(0x2000);
    DecodedInsn insn;
    u8 buf[kMaxInsnLength] = {};
    std::memcpy(buf, a.bytes().data() + 1, a.bytes().size() - 1);
    ASSERT_EQ(decode(buf, kMaxInsnLength, insn), DecodeStatus::Ok);
    // Target = insn_end + rel = (0x1001 + 5) + imm.
    EXPECT_EQ(0x1001 + 5 + insn.imm, 0x2000u);
}

TEST(Snapshot, DiffFindsFieldAndMemoryChanges)
{
    Snapshot a, b;
    a.ram.assign(kPhysMemSize, 0);
    b.ram = a.ram;
    EXPECT_TRUE(diff_snapshots(a, b).empty());

    b.cpu.gpr[kEax] = 42;
    b.ram[0x1234] = 1;
    b.ram[0x1235] = 2;
    SnapshotDiff d = diff_snapshots(a, b);
    EXPECT_FALSE(d.empty());
    ASSERT_EQ(d.cpu.size(), 1u);
    EXPECT_EQ(d.cpu[0].field, "eax");
    EXPECT_EQ(d.mem_total, 2u);
    EXPECT_NE(d.to_string().find("eax"), std::string::npos);
}

TEST(InsnTable, LookupConsistency)
{
    // Every row must be findable through lookup_insn.
    const auto &table = insn_table();
    EXPECT_GT(table.size(), 250u);
    for (std::size_t i = 0; i < table.size(); ++i) {
        const InsnDesc &d = table[i];
        const u8 reg =
            d.group_reg >= 0 ? static_cast<u8>(d.group_reg) : 0;
        const int found = lookup_insn(d.opcode, reg);
        ASSERT_GE(found, 0);
        // Grouped opcodes resolve to the row with that reg value.
        if (d.group_reg >= 0) {
            EXPECT_EQ(found, static_cast<int>(i));
        }
    }
    // All rows of one opcode agree on has_modrm.
    for (const InsnDesc &d : table) {
        EXPECT_EQ(first_entry(d.opcode)->has_modrm, d.has_modrm)
            << d.mnemonic;
    }
}

} // namespace
} // namespace pokeemu::arch
