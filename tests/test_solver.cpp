/** @file Tests for the SAT core and the bit-vector decision procedure. */
#include <gtest/gtest.h>

#include "solver/solver.h"
#include "support/rng.h"

namespace pokeemu::solver {
namespace {

namespace E = ir::E;
using ir::ExprRef;

TEST(Sat, TrivialSatAndUnsat)
{
    SatSolver s;
    const SatVar a = s.new_var();
    EXPECT_TRUE(s.add_clause({mk_lit(a, false)}));
    EXPECT_EQ(s.solve(), SatResult::Sat);
    EXPECT_TRUE(s.model_value(a));
    EXPECT_FALSE(s.add_clause({mk_lit(a, true)}));
    EXPECT_EQ(s.solve(), SatResult::Unsat);
}

TEST(Sat, UnitPropagationChain)
{
    SatSolver s;
    std::vector<SatVar> v;
    for (int i = 0; i < 10; ++i)
        v.push_back(s.new_var());
    // v0 and (v_i -> v_{i+1}) for all i.
    s.add_clause({mk_lit(v[0], false)});
    for (int i = 0; i < 9; ++i)
        s.add_clause({mk_lit(v[i], true), mk_lit(v[i + 1], false)});
    ASSERT_EQ(s.solve(), SatResult::Sat);
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(s.model_value(v[i]));
}

TEST(Sat, PigeonholeUnsat)
{
    // 4 pigeons, 3 holes: classic small UNSAT instance that requires
    // real search, not just propagation.
    SatSolver s;
    SatVar p[4][3];
    for (auto &row : p)
        for (auto &x : row)
            x = s.new_var();
    for (int i = 0; i < 4; ++i) {
        s.add_clause({mk_lit(p[i][0], false), mk_lit(p[i][1], false),
                      mk_lit(p[i][2], false)});
    }
    for (int h = 0; h < 3; ++h) {
        for (int i = 0; i < 4; ++i) {
            for (int j = i + 1; j < 4; ++j) {
                s.add_clause({mk_lit(p[i][h], true),
                              mk_lit(p[j][h], true)});
            }
        }
    }
    EXPECT_EQ(s.solve(), SatResult::Unsat);
}

TEST(Sat, AssumptionsAreTemporary)
{
    SatSolver s;
    const SatVar a = s.new_var();
    const SatVar b = s.new_var();
    s.add_clause({mk_lit(a, false), mk_lit(b, false)}); // a | b
    EXPECT_EQ(s.solve({mk_lit(a, true), mk_lit(b, true)}),
              SatResult::Unsat);
    // Without the assumptions the problem is still satisfiable.
    EXPECT_EQ(s.solve(), SatResult::Sat);
    EXPECT_EQ(s.solve({mk_lit(a, true)}), SatResult::Sat);
    EXPECT_FALSE(s.model_value(a));
    EXPECT_TRUE(s.model_value(b));
}

TEST(Sat, ConflictingAssumptionPair)
{
    SatSolver s;
    const SatVar a = s.new_var();
    const SatVar b = s.new_var();
    s.add_clause({mk_lit(a, true), mk_lit(b, false)}); // a -> b
    EXPECT_EQ(s.solve({mk_lit(a, false), mk_lit(b, true)}),
              SatResult::Unsat);
    EXPECT_EQ(s.solve({mk_lit(a, false)}), SatResult::Sat);
    EXPECT_TRUE(s.model_value(b));
}

TEST(Sat, RandomInstancesAgainstBruteForce)
{
    // Random 3-CNF over 10 variables, checked against exhaustive
    // enumeration.
    Rng rng(1234);
    for (int round = 0; round < 30; ++round) {
        const unsigned n = 10;
        const unsigned m = 35 + static_cast<unsigned>(rng.below(20));
        std::vector<std::vector<Lit>> clauses;
        for (unsigned c = 0; c < m; ++c) {
            std::vector<Lit> cl;
            for (int k = 0; k < 3; ++k) {
                cl.push_back(mk_lit(
                    static_cast<SatVar>(rng.below(n)), rng.flip()));
            }
            clauses.push_back(cl);
        }

        bool brute_sat = false;
        for (u32 mdl = 0; mdl < (1u << n) && !brute_sat; ++mdl) {
            bool all = true;
            for (const auto &cl : clauses) {
                bool any = false;
                for (Lit l : cl) {
                    const bool val = (mdl >> lit_var(l)) & 1;
                    any |= lit_sign(l) ? !val : val;
                }
                all &= any;
            }
            brute_sat = all;
        }

        SatSolver s;
        for (unsigned i = 0; i < n; ++i)
            s.new_var();
        bool ok = true;
        for (auto &cl : clauses)
            ok &= s.add_clause(cl);
        const bool solver_sat = ok && s.solve() == SatResult::Sat;
        EXPECT_EQ(solver_sat, brute_sat) << "round " << round;
        if (solver_sat) {
            // Verify the model actually satisfies all clauses.
            for (const auto &cl : clauses) {
                bool any = false;
                for (Lit l : cl) {
                    const bool val = s.model_value(lit_var(l));
                    any |= lit_sign(l) ? !val : val;
                }
                EXPECT_TRUE(any);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Bit-vector level.
// ---------------------------------------------------------------------

TEST(Solver, SimpleEquality)
{
    Solver solver;
    auto x = E::var(1, "x", 32);
    auto cond = E::eq(E::add(x, E::constant(32, 5)),
                      E::constant(32, 42));
    ASSERT_EQ(solver.check({cond}), CheckResult::Sat);
    EXPECT_EQ(solver.model_value(x), 37u);
}

TEST(Solver, UnsatConjunction)
{
    Solver solver;
    auto x = E::var(1, "x", 8);
    auto c1 = E::ult(x, E::constant(8, 10));
    auto c2 = E::ult(E::constant(8, 20), x);
    EXPECT_EQ(solver.check({c1, c2}), CheckResult::Unsat);
    // Individually both are satisfiable (incremental reuse).
    EXPECT_EQ(solver.check({c1}), CheckResult::Sat);
    EXPECT_LT(solver.model_value(x), 10u);
    EXPECT_EQ(solver.check({c2}), CheckResult::Sat);
    EXPECT_GT(solver.model_value(x), 20u);
}

TEST(Solver, TrivialConstants)
{
    Solver solver;
    EXPECT_EQ(solver.check({E::bool_const(true)}), CheckResult::Sat);
    EXPECT_EQ(solver.check({E::bool_const(false)}), CheckResult::Unsat);
}

TEST(Solver, MultiplicationInverse)
{
    Solver solver;
    auto x = E::var(1, "x", 16);
    // 3 * x == 99 has the solution x == 33 (3 is odd, hence invertible).
    auto cond = E::eq(E::mul(x, E::constant(16, 3)),
                      E::constant(16, 99));
    ASSERT_EQ(solver.check({cond}), CheckResult::Sat);
    EXPECT_EQ(truncate(solver.model_value(x) * 3, 16), 99u);
}

TEST(Solver, DivisionSemantics)
{
    Solver solver;
    auto x = E::var(1, "x", 8);
    // x / 0 == 0xff for every x (SMT-LIB bvudiv semantics).
    auto cond = E::ne(E::binop(ir::BinOpKind::UDiv, x, E::constant(8, 0)),
                      E::constant(8, 0xff));
    EXPECT_EQ(solver.check({cond}), CheckResult::Unsat);
}

struct BinOpCase
{
    ir::BinOpKind op;
    const char *name;
};

class SolverBinOpProperty : public ::testing::TestWithParam<BinOpCase>
{
};

/**
 * Property: for random concrete a, b the constraint
 * (x == a && y == b && r == x op y) is satisfiable and the model of r
 * matches the IR's constant folder. This keeps the three semantics
 * definitions (folder, evaluator, bit-blaster) in lock-step.
 */
TEST_P(SolverBinOpProperty, CircuitMatchesFolder)
{
    const BinOpCase c = GetParam();
    Rng rng(0xc0ffee ^ static_cast<u64>(c.op));
    for (unsigned width : {4u, 8u, 16u, 32u}) {
        Solver solver;
        for (int trial = 0; trial < 6; ++trial) {
            const u64 a = truncate(rng.next(), width);
            u64 b = truncate(rng.next(), width);
            if (trial == 0)
                b = 0; // Division-by-zero / shift-zero corner.
            auto x = E::var(1, "x", width);
            auto y = E::var(2, "y", width);
            auto r = E::var(3, "r", width == 1 ? 1 : width);
            auto op_expr = E::binop(c.op, x, y);
            auto expected = E::binop(c.op, E::constant(width, a),
                                     E::constant(width, b));
            ASSERT_TRUE(expected->is_const());
            std::vector<ExprRef> conds = {
                E::eq(x, E::constant(width, a)),
                E::eq(y, E::constant(width, b)),
            };
            if (op_expr->width() == 1) {
                conds.push_back(expected->value()
                                    ? op_expr
                                    : E::lnot(op_expr));
            } else {
                conds.push_back(E::eq(op_expr, expected));
            }
            EXPECT_EQ(solver.check(conds), CheckResult::Sat)
                << c.name << " w=" << width << " a=" << a << " b=" << b;
            // And the negation must be unsatisfiable.
            if (op_expr->width() != 1) {
                std::vector<ExprRef> neg = {
                    E::eq(x, E::constant(width, a)),
                    E::eq(y, E::constant(width, b)),
                    E::ne(op_expr, expected),
                };
                EXPECT_EQ(solver.check(neg), CheckResult::Unsat)
                    << c.name << " w=" << width << " a=" << a
                    << " b=" << b;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBinOps, SolverBinOpProperty,
    ::testing::Values(
        BinOpCase{ir::BinOpKind::Add, "add"},
        BinOpCase{ir::BinOpKind::Sub, "sub"},
        BinOpCase{ir::BinOpKind::Mul, "mul"},
        BinOpCase{ir::BinOpKind::UDiv, "udiv"},
        BinOpCase{ir::BinOpKind::URem, "urem"},
        BinOpCase{ir::BinOpKind::SDiv, "sdiv"},
        BinOpCase{ir::BinOpKind::SRem, "srem"},
        BinOpCase{ir::BinOpKind::And, "and"},
        BinOpCase{ir::BinOpKind::Or, "or"},
        BinOpCase{ir::BinOpKind::Xor, "xor"},
        BinOpCase{ir::BinOpKind::Shl, "shl"},
        BinOpCase{ir::BinOpKind::LShr, "lshr"},
        BinOpCase{ir::BinOpKind::AShr, "ashr"},
        BinOpCase{ir::BinOpKind::Eq, "eq"},
        BinOpCase{ir::BinOpKind::Ne, "ne"},
        BinOpCase{ir::BinOpKind::ULt, "ult"},
        BinOpCase{ir::BinOpKind::ULe, "ule"},
        BinOpCase{ir::BinOpKind::SLt, "slt"},
        BinOpCase{ir::BinOpKind::SLe, "sle"}),
    [](const ::testing::TestParamInfo<BinOpCase> &info) {
        return info.param.name;
    });

TEST(Solver, CastsAndIte)
{
    Solver solver;
    auto x = E::var(1, "x", 8);
    // zext: (zext16(x) == 0x00ff) forces x == 0xff.
    ASSERT_EQ(solver.check({E::eq(E::zext(x, 16),
                                  E::constant(16, 0xff))}),
              CheckResult::Sat);
    EXPECT_EQ(solver.model_value(x), 0xffu);
    // sext: (sext16(x) == 0xff80) forces x == 0x80.
    ASSERT_EQ(solver.check({E::eq(E::sext(x, 16),
                                  E::constant(16, 0xff80))}),
              CheckResult::Sat);
    EXPECT_EQ(solver.model_value(x), 0x80u);
    // ite: cond must be picked true to satisfy result == 7.
    auto c = E::var(2, "c", 1);
    auto sel = E::ite(c, E::constant(8, 7), E::constant(8, 9));
    ASSERT_EQ(solver.check({E::eq(sel, E::constant(8, 7))}),
              CheckResult::Sat);
    EXPECT_EQ(solver.model_value(c), 1u);
}

TEST(Solver, ConcatExtractRoundTrip)
{
    Solver solver;
    auto hi = E::var(1, "hi", 8);
    auto lo = E::var(2, "lo", 8);
    auto word = E::concat(hi, lo);
    std::vector<ExprRef> conds = {
        E::eq(word, E::constant(16, 0xbeef)),
    };
    ASSERT_EQ(solver.check(conds), CheckResult::Sat);
    EXPECT_EQ(solver.model_value(hi), 0xbeu);
    EXPECT_EQ(solver.model_value(lo), 0xefu);
}

TEST(Solver, StatsAccumulate)
{
    Solver solver;
    auto x = E::var(1, "x", 8);
    solver.check({E::eq(x, E::constant(8, 1))});
    solver.check({E::ne(x, x)});
    EXPECT_EQ(solver.stats().queries, 2u);
    EXPECT_EQ(solver.stats().sat, 1u);
    EXPECT_EQ(solver.stats().unsat, 1u);
    EXPECT_GE(solver.stats().total_seconds, 0.0);
}

TEST(Assignment, EvalAndSatisfies)
{
    Assignment a;
    a.set(1, 40);
    auto x = E::var(1, "x", 32);
    auto e = E::add(x, E::constant(32, 2));
    EXPECT_EQ(a.eval(e), 42u);
    EXPECT_TRUE(a.satisfies({E::eq(e, E::constant(32, 42))}));
    EXPECT_FALSE(a.satisfies({E::eq(e, E::constant(32, 0))}));
    // Unassigned variables default to zero.
    auto y = E::var(2, "y", 32);
    EXPECT_EQ(a.eval(y), 0u);
}

TEST(Solver, PathConditionShapedQuery)
{
    // A query shaped like real exploration: segment-limit check plus
    // page-table-bit checks over a 32-bit address.
    Solver solver;
    auto esp = E::var(1, "esp", 32);
    auto limit = E::var(2, "limit", 20);
    auto pte_p = E::var(3, "pte_p", 1);
    auto addr = E::sub(esp, E::constant(32, 4));
    std::vector<ExprRef> conds = {
        E::ule(addr, E::zext(limit, 32)),
        E::eq(pte_p, E::bool_const(true)),
        E::eq(E::band(addr, E::constant(32, 3)), E::constant(32, 0)),
        E::ult(E::constant(32, 0x1000), addr),
    };
    ASSERT_EQ(solver.check(conds), CheckResult::Sat);
    const u64 esp_val = solver.model_value(esp);
    const u64 addr_val = truncate(esp_val - 4, 32);
    EXPECT_LE(addr_val, solver.model_value(limit));
    EXPECT_EQ(addr_val & 3, 0u);
    EXPECT_GT(addr_val, 0x1000u);
}

// ---------------------------------------------------------------------
// Query memoization (solver/memo.h).
// ---------------------------------------------------------------------

TEST(QueryMemo, CanonicalKeyIsOrderAndDuplicateInsensitive)
{
    auto x = E::var(1, "x", 8);
    auto c1 = E::ult(x, E::constant(8, 10));
    auto c2 = E::ult(E::constant(8, 2), x);
    QueryKey a, b;
    ASSERT_TRUE(QueryMemo::canonical_key({c1, c2}, a));
    ASSERT_TRUE(QueryMemo::canonical_key({c2, c1, c2}, b));
    EXPECT_EQ(a, b);
    // Constant-true conjuncts don't change the identity...
    QueryKey c;
    ASSERT_TRUE(
        QueryMemo::canonical_key({c1, E::bool_const(true), c2}, c));
    EXPECT_EQ(a, c);
    // ...and a constant-false conjunct makes the query uncacheable.
    QueryKey d;
    EXPECT_FALSE(
        QueryMemo::canonical_key({c1, E::bool_const(false)}, d));
}

TEST(QueryMemo, SolverServesRepeatQueriesFromTheCache)
{
    QueryMemo memo;
    Solver solver;
    solver.set_memo(&memo);
    auto x = E::var(1, "x", 32);
    auto cond = E::eq(E::add(x, E::constant(32, 5)),
                      E::constant(32, 42));

    ASSERT_EQ(solver.check({cond}), CheckResult::Sat);
    EXPECT_EQ(solver.stats().cache_misses, 1u);
    EXPECT_EQ(solver.stats().cache_hits, 0u);
    EXPECT_EQ(solver.model_value(x), 37u);

    // Second submission — a hit, with the model served from the cache.
    ASSERT_EQ(solver.check({cond}), CheckResult::Sat);
    EXPECT_EQ(solver.stats().cache_hits, 1u);
    EXPECT_EQ(solver.stats().cache_misses, 1u);
    EXPECT_EQ(solver.stats().queries, 2u); // Hits still count.
    EXPECT_EQ(solver.model_value(x), 37u);
}

TEST(QueryMemo, PermutedConjunctionHits)
{
    QueryMemo memo;
    Solver solver;
    solver.set_memo(&memo);
    auto x = E::var(1, "x", 8);
    auto c1 = E::ult(x, E::constant(8, 10));
    auto c2 = E::ult(E::constant(8, 2), x);
    ASSERT_EQ(solver.check({c1, c2}), CheckResult::Sat);
    ASSERT_EQ(solver.check({c2, c1}), CheckResult::Sat);
    EXPECT_EQ(solver.stats().cache_hits, 1u);
    // The cached model still satisfies the (reordered) conditions.
    Assignment a;
    a.set(1, solver.model_value(x));
    EXPECT_TRUE(a.satisfies({c1, c2}));
}

TEST(QueryMemo, UnsatVerdictsAreCachedToo)
{
    QueryMemo memo;
    Solver solver;
    solver.set_memo(&memo);
    auto x = E::var(1, "x", 8);
    auto c1 = E::ult(x, E::constant(8, 10));
    auto c2 = E::ult(E::constant(8, 20), x);
    EXPECT_EQ(solver.check({c1, c2}), CheckResult::Unsat);
    EXPECT_EQ(solver.check({c1, c2}), CheckResult::Unsat);
    EXPECT_EQ(solver.stats().cache_hits, 1u);
    EXPECT_EQ(solver.stats().unsat, 2u);
}

TEST(QueryMemo, BeginUnitClearsEntriesButKeepsTotals)
{
    QueryMemo memo;
    Solver solver;
    solver.set_memo(&memo);
    auto x = E::var(1, "x", 8);
    auto cond = E::eq(x, E::constant(8, 7));
    ASSERT_EQ(solver.check({cond}), CheckResult::Sat);
    ASSERT_EQ(solver.check({cond}), CheckResult::Sat);
    EXPECT_EQ(memo.entries(), 1u);
    EXPECT_EQ(memo.stats().unit_hits, 1u);

    // A new unit must not see the previous unit's entries (that is the
    // purity property sharded campaigns rest on)...
    memo.begin_unit();
    EXPECT_EQ(memo.entries(), 0u);
    EXPECT_EQ(memo.stats().unit_hits, 0u);
    ASSERT_EQ(solver.check({cond}), CheckResult::Sat);
    EXPECT_EQ(solver.stats().cache_misses, 2u);
    // ...while cumulative counters survive for campaign reporting.
    EXPECT_EQ(memo.stats().hits, 1u);
    EXPECT_EQ(memo.stats().misses, 2u);
}

TEST(QueryMemo, ModelReuseServesSubsumedQueries)
{
    // A deeper query (old conjuncts plus new ones the cached model
    // happens to satisfy) is answered by model reuse — no SAT search.
    QueryMemo memo;
    Solver solver;
    solver.set_memo(&memo);
    auto x = E::var(1, "x", 32);
    auto y = E::var(2, "y", 8);
    auto fix_x = E::eq(x, E::constant(32, 7));
    ASSERT_EQ(solver.check({fix_x}), CheckResult::Sat);
    EXPECT_EQ(solver.stats().cache_misses, 1u);

    // x == 7 also satisfies x < 100, and the unconstrained y reads 0,
    // which satisfies y < 5: a different key, served by the old model.
    std::vector<ExprRef> deeper = {
        fix_x,
        E::ult(x, E::constant(32, 100)),
        E::ult(y, E::constant(8, 5)),
    };
    ASSERT_EQ(solver.check(deeper), CheckResult::Sat);
    EXPECT_EQ(solver.stats().cache_hits, 1u);
    EXPECT_EQ(solver.stats().cache_misses, 1u);
    EXPECT_EQ(solver.model_value(x), 7u);
    EXPECT_EQ(solver.model_value(y), 0u); // Zero-filled in the model.

    // The reused model was re-inserted under the deeper key: the same
    // query again is an exact hit, and the memo holds both entries.
    ASSERT_EQ(solver.check(deeper), CheckResult::Sat);
    EXPECT_EQ(solver.stats().cache_hits, 2u);
    EXPECT_EQ(memo.entries(), 2u);

    // A conjunct the cached models falsify still goes to the solver.
    ASSERT_EQ(solver.check({E::eq(x, E::constant(32, 9))}),
              CheckResult::Sat);
    EXPECT_EQ(solver.stats().cache_misses, 2u);
    EXPECT_EQ(solver.model_value(x), 9u);
}

TEST(QueryMemo, TrivialConstantQueriesBypassTheCache)
{
    QueryMemo memo;
    Solver solver;
    solver.set_memo(&memo);
    EXPECT_EQ(solver.check({E::bool_const(false)}), CheckResult::Unsat);
    EXPECT_EQ(solver.check({E::bool_const(false)}), CheckResult::Unsat);
    EXPECT_EQ(solver.stats().cache_hits + solver.stats().cache_misses,
              0u);
}

} // namespace
} // namespace pokeemu::solver
