/** @file Unit tests for the difference-analysis harness. */
#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "harness/filter.h"
#include "harness/runner.h"
#include "testgen/baseline.h"

namespace pokeemu::harness {
namespace {

namespace layout = arch::layout;

arch::DecodedInsn
decode_insn(std::initializer_list<u8> bytes)
{
    std::vector<u8> buf(bytes);
    buf.resize(arch::kMaxInsnLength, 0);
    arch::DecodedInsn insn;
    EXPECT_EQ(arch::decode(buf.data(), buf.size(), insn),
              arch::DecodeStatus::Ok);
    return insn;
}

TEST(Filter, UndefinedMaskPerClass)
{
    EXPECT_EQ(undefined_flags_mask(arch::Op::ShiftRm32Imm8),
              arch::kFlagAf | arch::kFlagOf);
    EXPECT_EQ(undefined_flags_mask(arch::Op::Grp3DivRm32),
              arch::kStatusFlags);
    EXPECT_EQ(undefined_flags_mask(arch::Op::AluRm32R32), 0u);
}

TEST(Filter, PureUndefinedFlagDiffIsRemoved)
{
    const arch::DecodedInsn insn = decode_insn({0xc1, 0xe0, 0x04});
    arch::Snapshot a, b;
    a.cpu.eflags = arch::kFlagFixed1;
    b.cpu.eflags = arch::kFlagFixed1 | arch::kFlagAf | arch::kFlagOf;
    a.ram.assign(16, 0);
    b.ram = a.ram;
    const auto diff = arch::diff_snapshots(a, b);
    ASSERT_FALSE(diff.empty());
    const auto filtered = filter_undefined(insn, a, b, diff);
    EXPECT_TRUE(filtered.fully_filtered());
}

TEST(Filter, DefinedFlagDiffSurvives)
{
    const arch::DecodedInsn insn = decode_insn({0xc1, 0xe0, 0x04});
    arch::Snapshot a, b;
    a.cpu.eflags = arch::kFlagFixed1;
    b.cpu.eflags = arch::kFlagFixed1 | arch::kFlagZf; // ZF is defined.
    a.ram.assign(16, 0);
    b.ram = a.ram;
    const auto filtered =
        filter_undefined(insn, a, b, arch::diff_snapshots(a, b));
    EXPECT_FALSE(filtered.remaining.empty());
}

TEST(Filter, BsfZeroSourceDestIgnored)
{
    // bsf edx, eax with ZF set on both sides: the edx diff is
    // undefined behaviour.
    const arch::DecodedInsn insn = decode_insn({0x0f, 0xbc, 0xd0});
    arch::Snapshot a, b;
    a.cpu.eflags = b.cpu.eflags = arch::kFlagFixed1 | arch::kFlagZf;
    a.cpu.gpr[arch::kEdx] = 7;
    b.cpu.gpr[arch::kEdx] = 0;
    a.ram.assign(16, 0);
    b.ram = a.ram;
    const auto filtered =
        filter_undefined(insn, a, b, arch::diff_snapshots(a, b));
    EXPECT_TRUE(filtered.fully_filtered());
}

TEST(Cluster, ClassifiesSeededRootCauses)
{
    arch::Snapshot hw, other;
    hw.ram.assign(arch::kPhysMemSize, 0);
    other.ram = hw.ram;

    // leave with both sides faulting but different ESP.
    {
        arch::Snapshot a = other, b = hw;
        a.cpu.exception.vector = arch::kExcPf;
        b.cpu.exception.vector = arch::kExcPf;
        a.cpu.gpr[arch::kEsp] = 0x1004;
        b.cpu.gpr[arch::kEsp] = 0x2000;
        const auto insn = decode_insn({0xc9});
        const auto diff = arch::diff_snapshots(a, b);
        EXPECT_EQ(classify_difference(insn, diff, a, b),
                  "atomicity-violation-leave");
    }
    // iret with different CR2.
    {
        arch::Snapshot a = other, b = hw;
        a.cpu.exception.vector = arch::kExcPf;
        b.cpu.exception.vector = arch::kExcPf;
        a.cpu.cr2 = 0x300ffc;
        b.cpu.cr2 = 0x300ff8;
        const auto insn = decode_insn({0xcf});
        const auto diff = arch::diff_snapshots(a, b);
        EXPECT_EQ(classify_difference(insn, diff, a, b),
                  "iret-pop-order");
    }
    // One side #GP, other executes.
    {
        arch::Snapshot a = other, b = hw;
        b.cpu.exception.vector = arch::kExcGp;
        b.cpu.exception.has_error_code = true;
        a.ram[0x100] = 0xab;
        const auto insn = decode_insn({0x89, 0x08});
        const auto diff = arch::diff_snapshots(a, b);
        EXPECT_EQ(classify_difference(insn, diff, a, b),
                  "segment-limits-and-rights-not-enforced");
    }
    // rdmsr: #GP vs executes.
    {
        arch::Snapshot a = other, b = hw;
        b.cpu.exception.vector = arch::kExcGp;
        b.cpu.exception.has_error_code = true;
        const auto insn = decode_insn({0x0f, 0x32});
        const auto diff = arch::diff_snapshots(a, b);
        EXPECT_EQ(classify_difference(insn, diff, a, b),
                  "rdmsr-no-gp-on-invalid-msr");
    }
    // Accessed flag: GDT byte + cached access only.
    {
        arch::Snapshot a = other, b = hw;
        b.ram[layout::kPhysGdt + 8 * 3 + 5] = 0x93;
        a.ram[layout::kPhysGdt + 8 * 3 + 5] = 0x92;
        b.cpu.seg[arch::kDs].access = 0x93;
        a.cpu.seg[arch::kDs].access = 0x92;
        const auto insn = decode_insn({0x8e, 0xd8}); // mov ds, ax
        const auto diff = arch::diff_snapshots(a, b);
        EXPECT_EQ(classify_difference(insn, diff, a, b),
                  "segment-accessed-flag-not-set");
    }
}

TEST(Cluster, AccumulatesAndSorts)
{
    RootCauseClusterer clusterer;
    arch::Snapshot a, b;
    a.ram.assign(16, 0);
    b.ram = a.ram;
    b.cpu.exception.vector = arch::kExcGp;
    b.cpu.exception.has_error_code = true;
    const auto insn = decode_insn({0x89, 0x08});
    const auto diff = arch::diff_snapshots(a, b);
    for (u64 t = 0; t < 3; ++t)
        clusterer.add(t, insn, diff, a, b);
    EXPECT_EQ(clusterer.total(), 3u);
    const auto clusters = clusterer.clusters();
    ASSERT_EQ(clusters.size(), 1u);
    EXPECT_EQ(clusters[0].count, 3u);
    EXPECT_TRUE(clusters[0].mnemonics.count("mov"));
    EXPECT_NE(clusterer.to_string().find("segment-limits"),
              std::string::npos);
}

TEST(Runner, TrivialHltTestAgreesEverywhere)
{
    TestRunner runner;
    const std::vector<u8> program = {0xf4}; // hlt
    const ThreeWayResult r = runner.run(program);
    EXPECT_FALSE(r.hifi.timed_out);
    EXPECT_FALSE(r.lofi.timed_out);
    EXPECT_FALSE(r.hw.timed_out);
    EXPECT_TRUE(
        arch::diff_snapshots(r.hifi.snapshot, r.hw.snapshot).empty());
    EXPECT_TRUE(
        arch::diff_snapshots(r.lofi.snapshot, r.hw.snapshot).empty());
}

TEST(Runner, VmmCountsTraps)
{
    TestRunner runner;
    runner.run({0xf4});                   // hlt
    runner.run({0xcd, 0x20, 0xf4});       // int 0x20 -> exception trap
    EXPECT_EQ(runner.vmm().tests_run(), 2u);
    EXPECT_EQ(runner.vmm().halt_traps(), 1u);
    EXPECT_EQ(runner.vmm().exception_traps(), 1u);
}

} // namespace
} // namespace pokeemu::harness
