/**
 * @file
 * Tests for the §7 equivalence-checking extension: two implementations
 * compared for all inputs with the decision procedure, including the
 * paper's suggested application to the descriptor-load computation.
 */
#include <gtest/gtest.h>

#include "hifi/semantics.h"
#include "ir/builder.h"
#include "symexec/equivalence.h"

namespace pokeemu::symexec {
namespace {

using ir::ExprRef;
using ir::IrBuilder;
using ir::Label;
namespace E = ir::E;
namespace layout = arch::layout;

InitialByteFn
byte_inputs(VarPool &pool, u32 base, unsigned count)
{
    return [&pool, base, count](u32 addr) -> ExprRef {
        if (addr >= base && addr < base + count) {
            return pool.get("in_" + std::to_string(addr - base), 8);
        }
        return E::constant(8, 0);
    };
}

/** abs(x) via branch. */
ir::Program
abs_branching()
{
    IrBuilder b("abs_branching");
    auto x = b.load(IrBuilder::imm32(0x1000), 4);
    Label neg = b.label(), pos = b.label();
    b.cjmp(E::slt(x, IrBuilder::imm32(0)), neg, pos);
    b.bind(neg);
    b.store(IrBuilder::imm32(0x2000), 4, E::neg(x));
    b.halt(0);
    b.bind(pos);
    b.store(IrBuilder::imm32(0x2000), 4, x);
    b.halt(0);
    return b.finish();
}

/** abs(x) branchless via the sign-mask trick. */
ir::Program
abs_branchless()
{
    IrBuilder b("abs_branchless");
    auto x = b.load(IrBuilder::imm32(0x1000), 4);
    auto mask = b.assign(E::ashr(x, IrBuilder::imm32(31)));
    b.store(IrBuilder::imm32(0x2000), 4,
            E::sub(E::bxor(x, mask), mask));
    b.halt(0);
    return b.finish();
}

/** A subtly wrong abs: negates with ~x instead of -x. */
ir::Program
abs_buggy()
{
    IrBuilder b("abs_buggy");
    auto x = b.load(IrBuilder::imm32(0x1000), 4);
    Label neg = b.label(), pos = b.label();
    b.cjmp(E::slt(x, IrBuilder::imm32(0)), neg, pos);
    b.bind(neg);
    b.store(IrBuilder::imm32(0x2000), 4, E::bnot(x));
    b.halt(0);
    b.bind(pos);
    b.store(IrBuilder::imm32(0x2000), 4, x);
    b.halt(0);
    return b.finish();
}

TEST(Equivalence, BranchingAndBranchlessAbsAgree)
{
    VarPool pool;
    const auto result = check_equivalence(
        abs_branching(), abs_branchless(), pool,
        byte_inputs(pool, 0x1000, 4), {{0x2000, 4}});
    EXPECT_TRUE(result.equivalent);
    EXPECT_TRUE(result.complete);
    EXPECT_GE(result.cross_checks, 2u);
}

TEST(Equivalence, BuggyAbsYieldsCounterexample)
{
    VarPool pool;
    const auto result = check_equivalence(
        abs_branching(), abs_buggy(), pool,
        byte_inputs(pool, 0x1000, 4), {{0x2000, 4}});
    ASSERT_FALSE(result.equivalent);
    // The counterexample must actually distinguish the two: ~x != -x
    // whenever x is negative (they differ by one).
    u32 x = 0;
    for (unsigned i = 0; i < 4; ++i) {
        const auto var = pool.get("in_" + std::to_string(i), 8);
        x |= static_cast<u32>(
                 result.counterexample.get(var->var_id()) & 0xff)
             << (8 * i);
    }
    EXPECT_LT(static_cast<s32>(x), 0) << "x = " << x;
}

TEST(Equivalence, DifferingHaltCodesAreCaught)
{
    // Program A halts 1 for x < 10 else 2; program B uses x <= 10.
    auto make = [](bool off_by_one) {
        IrBuilder b("cmp");
        auto x = b.load(IrBuilder::imm32(0x1000), 1);
        Label lo = b.label(), hi = b.label();
        auto cond = off_by_one
            ? E::ule(x, IrBuilder::imm8(10))
            : E::ult(x, IrBuilder::imm8(10));
        b.cjmp(cond, lo, hi);
        b.bind(lo);
        b.halt(1);
        b.bind(hi);
        b.halt(2);
        return b.finish();
    };
    VarPool pool;
    const auto result =
        check_equivalence(make(false), make(true), pool,
                          byte_inputs(pool, 0x1000, 1), {});
    ASSERT_FALSE(result.equivalent);
    // The only distinguishing input is exactly x == 10.
    const auto var = pool.get("in_0", 8);
    EXPECT_EQ(result.counterexample.get(var->var_id()) & 0xff, 10u);
}

TEST(Equivalence, DescriptorLoadHelperEquivalentToItself)
{
    // The paper's suggested target: the descriptor-parse computation.
    // The branching helper must be equivalent to a second exploration
    // of itself (different random seeds, hence different path orders).
    VarPool pool;
    InitialByteFn initial = [&pool](u32 addr) -> ExprRef {
        namespace dh = hifi::desc_helper;
        if (addr >= dh::kInputBytes && addr < dh::kInputBytes + 8) {
            return pool.get(
                "desc_byte_" + std::to_string(addr - dh::kInputBytes),
                8);
        }
        return E::constant(8, 0);
    };
    namespace dh = hifi::desc_helper;
    const std::vector<SummaryOutput> outputs = {
        {dh::kOutBase, 4},
        {dh::kOutLimit, 4},
        {dh::kOutAccess, 1},
        {dh::kOutFault, 1},
    };
    const auto result = check_equivalence(
        hifi::build_descriptor_load_helper(),
        hifi::build_descriptor_load_helper(), pool, initial, outputs);
    EXPECT_TRUE(result.equivalent);
    EXPECT_TRUE(result.complete);
    EXPECT_EQ(result.cross_checks, 16u); // 4 x 4 paths.
}

TEST(Equivalence, MutatedDescriptorParseIsDetected)
{
    // Flip the granularity handling (shift by 11 instead of 12): the
    // checker must find a distinguishing descriptor.
    VarPool pool;
    namespace dh = hifi::desc_helper;
    InitialByteFn initial = [&pool](u32 addr) -> ExprRef {
        if (addr >= dh::kInputBytes && addr < dh::kInputBytes + 8) {
            return pool.get(
                "desc_byte_" + std::to_string(addr - dh::kInputBytes),
                8);
        }
        return E::constant(8, 0);
    };
    auto mutated = [] {
        IrBuilder b("descriptor_load_mutated");
        auto imm = [](u64 v) { return E::constant(32, v); };
        ExprRef bytes[8];
        for (unsigned i = 0; i < 8; ++i)
            bytes[i] = b.load(imm(dh::kInputBytes + i), 1);
        ExprRef limit_raw = b.assign(E::bor(
            E::zext(E::concat(bytes[1], bytes[0]), 32),
            E::shl(E::zext(E::band(bytes[6], E::constant(8, 0x0f)),
                           32),
                   imm(16))));
        // BUG: wrong granularity shift.
        ExprRef g = E::extract(bytes[6], 7, 1);
        b.store(imm(dh::kOutLimit), 4,
                E::ite(g,
                       E::bor(E::shl(limit_raw, imm(11)),
                              imm(0xfff)),
                       limit_raw));
        b.halt(0);
        return b.finish();
    }();

    // Reference: just the limit computation of the real helper.
    auto reference = [] {
        IrBuilder b("descriptor_load_reference");
        auto imm = [](u64 v) { return E::constant(32, v); };
        ExprRef bytes[8];
        for (unsigned i = 0; i < 8; ++i)
            bytes[i] = b.load(imm(dh::kInputBytes + i), 1);
        ExprRef limit_raw = b.assign(E::bor(
            E::zext(E::concat(bytes[1], bytes[0]), 32),
            E::shl(E::zext(E::band(bytes[6], E::constant(8, 0x0f)),
                           32),
                   imm(16))));
        ExprRef g = E::extract(bytes[6], 7, 1);
        b.store(imm(dh::kOutLimit), 4,
                E::ite(g,
                       E::bor(E::shl(limit_raw, imm(12)),
                              imm(0xfff)),
                       limit_raw));
        b.halt(0);
        return b.finish();
    }();

    const auto result = check_equivalence(
        reference, mutated, pool, initial,
        {{dh::kOutLimit, 4}});
    ASSERT_FALSE(result.equivalent);
    // The counterexample must have G set and a limit whose shift
    // position matters.
    const auto b6 = pool.get("desc_byte_6", 8);
    EXPECT_TRUE(result.counterexample.get(b6->var_id()) & 0x80);
}

} // namespace
} // namespace pokeemu::symexec
