/**
 * @file
 * Defect-corpus tests: catalogue sanity, per-flag BugConfig→Behavior
 * coverage, targeted unit tests for each injectable DirectCpu defect,
 * misbehaving-backend containment (crash / hang / snapshot
 * corruption) at the runner and pipeline layers, detection scoring,
 * and the patched-emulator regression (a BugConfig::none() pipeline
 * reports zero non-timeout Lo-Fi difference clusters).
 */
#include <gtest/gtest.h>

#include <sstream>

#include "arch/assembler.h"
#include "arch/descriptors.h"
#include "arch/paging.h"
#include "defects/defects.h"
#include "harness/runner.h"
#include "pokeemu/resilience.h"

namespace pokeemu {
namespace {

namespace layout = arch::layout;
using arch::CpuState;
using arch::Snapshot;
using lofi::BugConfig;
using lofi::Misbehavior;
using support::FaultClass;
using support::FaultError;
using support::Stage;

int
index_of(std::initializer_list<u8> bytes)
{
    std::vector<u8> buf(bytes);
    buf.resize(arch::kMaxInsnLength, 0);
    arch::DecodedInsn insn;
    EXPECT_EQ(arch::decode(buf.data(), buf.size(), insn),
              arch::DecodeStatus::Ok);
    return insn.table_index;
}

std::size_t
catalogue_index(const std::string &name)
{
    for (std::size_t i = 0; i < defects::catalogue().size(); ++i) {
        if (defects::catalogue()[i].name == name)
            return i;
    }
    ADD_FAILURE() << "no catalogue entry named " << name;
    return 0;
}

/** Run a test program image on a backend from the baseline state. */
Snapshot
run_on(backend::DirectCpu &cpu, const CpuState &start,
       const std::vector<u8> &image, u64 budget = 256)
{
    cpu.reset(start, image);
    cpu.run(budget);
    return cpu.snapshot();
}

/** Build an image whose test program is @p assemble's output + hlt. */
template <typename Fn>
std::vector<u8>
test_image(Fn assemble)
{
    arch::Assembler a(layout::kPhysTestCode);
    assemble(a);
    a.hlt();
    std::vector<u8> image = testgen::baseline_ram_after_init();
    std::copy(a.bytes().begin(), a.bytes().end(),
              image.begin() + layout::kPhysTestCode);
    return image;
}

/** Behavior of BugConfig::none() with one field toggled. */
backend::Behavior
behavior_with(bool BugConfig::*knob)
{
    BugConfig bugs = BugConfig::none();
    bugs.*knob = true;
    return lofi::behavior_from_bugs(bugs);
}

// ---------------------------------------------------------------------
// Per-flag BugConfig → Behavior coverage: toggling each knob from
// none() flips exactly the expected Behavior knob and nothing else.
// ---------------------------------------------------------------------

TEST(BehaviorFromBugs, NoneMatchesHardware)
{
    EXPECT_EQ(lofi::behavior_from_bugs(BugConfig::none()),
              backend::hardware_behavior());
}

TEST(BehaviorFromBugs, EachKnobFlipsExactlyItsBehavior)
{
    struct Case
    {
        const char *name;
        bool BugConfig::*knob;
        void (*expect)(backend::Behavior &);
    };
    const Case cases[] = {
        {"no_segment_checks", &BugConfig::no_segment_checks,
         [](backend::Behavior &b) {
             b.enforce_segment_checks = false;
         }},
        {"leave_nonatomic", &BugConfig::leave_nonatomic,
         [](backend::Behavior &b) { b.leave_atomic = false; }},
        {"cmpxchg_nonatomic", &BugConfig::cmpxchg_nonatomic,
         [](backend::Behavior &b) {
             b.cmpxchg_checks_write_first = false;
         }},
        {"iret_pop_order", &BugConfig::iret_pop_order,
         [](backend::Behavior &b) { b.iret_pop_inner_first = false; }},
        {"rdmsr_no_gp", &BugConfig::rdmsr_no_gp,
         [](backend::Behavior &b) { b.rdmsr_gp_on_invalid = false; }},
        {"no_accessed_flag", &BugConfig::no_accessed_flag,
         [](backend::Behavior &b) {
             b.set_descriptor_accessed = false;
         }},
        {"reject_valid_encodings", &BugConfig::reject_valid_encodings,
         [](backend::Behavior &b) {
             b.accept_alias_encodings = false;
         }},
        {"undef_flags_divergence", &BugConfig::undef_flags_divergence,
         [](backend::Behavior &b) {
             b.undef_flags = backend::UndefFlagStyle::LoFi;
         }},
        {"flags_wrong_width", &BugConfig::flags_wrong_width,
         [](backend::Behavior &b) { b.alu8_flags_wide = true; }},
        {"far_fetch_selector_first",
         &BugConfig::far_fetch_selector_first,
         [](backend::Behavior &b) {
             b.far_fetch_offset_first = false;
         }},
        {"pte_accessed_dirty_dropped",
         &BugConfig::pte_accessed_dirty_dropped,
         [](backend::Behavior &b) {
             b.set_pte_accessed_dirty = false;
         }},
        {"seg_limit_off_by_one", &BugConfig::seg_limit_off_by_one,
         [](backend::Behavior &b) { b.seg_limit_off_by_one = true; }},
        {"wrmsr_truncated", &BugConfig::wrmsr_truncated,
         [](backend::Behavior &b) { b.wrmsr_truncate_16 = true; }},
    };

    for (const Case &c : cases) {
        backend::Behavior expected =
            lofi::behavior_from_bugs(BugConfig::none());
        c.expect(expected);
        EXPECT_EQ(behavior_with(c.knob), expected) << c.name;
        EXPECT_NE(behavior_with(c.knob),
                  lofi::behavior_from_bugs(BugConfig::none()))
            << c.name << ": knob is a no-op";
    }
}

// ---------------------------------------------------------------------
// Catalogue and mutation-plan sanity.
// ---------------------------------------------------------------------

TEST(DefectCatalogue, EntriesAreWellFormed)
{
    std::set<std::string> names;
    std::set<std::string> latent;
    std::size_t behavioral = 0;
    std::size_t misbehaving = 0;
    for (const defects::DefectSpec &d : defects::catalogue()) {
        EXPECT_TRUE(names.insert(d.name).second)
            << "duplicate name " << d.name;
        EXPECT_FALSE(d.focus_encodings.empty()) << d.name;
        if (d.kind == defects::DefectKind::Behavioral) {
            ++behavioral;
            EXPECT_NE(d.knob, nullptr) << d.name;
            EXPECT_EQ(d.misbehavior, Misbehavior::None) << d.name;
            if (d.detectable)
                EXPECT_FALSE(d.expected_clusters.empty()) << d.name;
            else
                latent.insert(d.name);
        } else {
            ++misbehaving;
            EXPECT_EQ(d.knob, nullptr) << d.name;
            EXPECT_NE(d.misbehavior, Misbehavior::None) << d.name;
            EXPECT_FALSE(d.detectable) << d.name;
        }
    }
    // Eight classic §6.2 bugs + five injectable DirectCpu defects +
    // two injectable timing defects.
    EXPECT_EQ(behavioral, 15u);
    EXPECT_EQ(misbehaving, 3u);
    // The latent set is an empirical fact about the pipeline: these
    // defects are value-dependent (or masked by the EFLAGS oracle),
    // so path-coverage-minimized tests never excite them, however
    // deep the exploration. Unit tests above prove each is real.
    const std::set<std::string> expected_latent = {
        "undef-flags-divergence",
        "flags-wrong-width",
        "seg-limit-off-by-one",
        "wrmsr-truncated",
    };
    EXPECT_EQ(latent, expected_latent);
    EXPECT_NE(defects::find_defect("leave-nonatomic"), nullptr);
    EXPECT_EQ(defects::find_defect("no-such-defect"), nullptr);
}

TEST(DefectCatalogue, ApplyDefectsSetsExactlyTheKnob)
{
    for (std::size_t i = 0; i < defects::catalogue().size(); ++i) {
        const defects::DefectSpec &d = defects::catalogue()[i];
        const BugConfig bugs = defects::apply_defects({i});
        if (d.kind == defects::DefectKind::Misbehavior) {
            EXPECT_EQ(bugs, BugConfig::none()) << d.name;
            continue;
        }
        BugConfig expected = BugConfig::none();
        expected.*d.knob = true;
        EXPECT_EQ(bugs, expected) << d.name;
    }
}

TEST(MutationPlan, SinglePlanCoversTheCatalogue)
{
    const defects::MutationPlan plan = defects::single_defect_plan();
    ASSERT_EQ(plan.variants.size(), defects::catalogue().size());
    for (std::size_t i = 0; i < plan.variants.size(); ++i) {
        EXPECT_EQ(plan.variants[i].name,
                  defects::catalogue()[i].name);
        EXPECT_EQ(plan.variants[i].defects,
                  std::vector<std::size_t>{i});
    }
}

TEST(MutationPlan, PairPlanIsSeededAndBehavioralOnly)
{
    const defects::MutationPlan a = defects::pair_defect_plan(7, 5);
    const defects::MutationPlan b = defects::pair_defect_plan(7, 5);
    ASSERT_EQ(a.variants.size(), 5u);
    for (std::size_t i = 0; i < a.variants.size(); ++i) {
        EXPECT_EQ(a.variants[i].name, b.variants[i].name);
        EXPECT_EQ(a.variants[i].defects, b.variants[i].defects);
        ASSERT_EQ(a.variants[i].defects.size(), 2u);
        EXPECT_NE(a.variants[i].defects[0], a.variants[i].defects[1]);
        for (std::size_t d : a.variants[i].defects) {
            EXPECT_EQ(defects::catalogue()[d].kind,
                      defects::DefectKind::Behavioral);
        }
        EXPECT_EQ(a.variants[i].name.rfind("pair:", 0), 0u);
    }
    // A different seed picks a different plan (or at least may; these
    // seeds do).
    const defects::MutationPlan c = defects::pair_defect_plan(8, 5);
    bool any_difference = false;
    for (std::size_t i = 0; i < 5; ++i)
        any_difference |= a.variants[i].name != c.variants[i].name;
    EXPECT_TRUE(any_difference);
}

TEST(MutationPlan, VariantCampaignFocusesTheInstructionFilter)
{
    const std::size_t i = catalogue_index("wrmsr-truncated");
    const defects::MatrixOptions options;
    const CampaignOptions campaign = defects::variant_campaign(
        {"wrmsr-truncated", {i}}, options);
    EXPECT_EQ(campaign.pipeline.instruction_filter,
              std::vector<int>{index_of({0x0f, 0x30})});
    BugConfig expected = BugConfig::none();
    expected.wrmsr_truncated = true;
    EXPECT_EQ(campaign.pipeline.bugs, expected);
    EXPECT_EQ(campaign.pipeline.lofi_misbehavior, Misbehavior::None);
    EXPECT_EQ(campaign.pipeline.resilience.budgets.test_watchdog_insns,
              options.watchdog_insns);

    const std::size_t h = catalogue_index("backend-hang");
    const CampaignOptions hang = defects::variant_campaign(
        {"backend-hang", {h}}, options);
    EXPECT_EQ(hang.pipeline.lofi_misbehavior, Misbehavior::Hang);
    EXPECT_EQ(hang.pipeline.bugs, BugConfig::none());
}

// ---------------------------------------------------------------------
// Targeted unit tests: each injectable DirectCpu defect observable in
// isolation (the same failure-injection style as test_backends.cpp).
// ---------------------------------------------------------------------

TEST(InjectedDefects, Alu8FlagsComputedAtWrongWidthMiscomputeCarry)
{
    // add al, 0x90 with al=0x90: carry out of bit 7 sets CF at 8-bit
    // width; computed at 32-bit width the sum 0x120 carries nothing.
    std::vector<u8> image = test_image([](arch::Assembler &a) {
        a.mov_r32_imm32(arch::kEax, 0x90);
        a.raw({0x04, 0x90}); // add al, 0x90
    });
    const CpuState start = testgen::baseline_cpu_state();

    backend::DirectCpu hw(backend::hardware_behavior());
    const Snapshot s_hw = run_on(hw, start, image);
    backend::DirectCpu variant(
        behavior_with(&BugConfig::flags_wrong_width));
    const Snapshot s_variant = run_on(variant, start, image);

    EXPECT_EQ(s_hw.cpu.gpr[arch::kEax] & 0xff, 0x20u);
    EXPECT_EQ(s_variant.cpu.gpr[arch::kEax] & 0xff, 0x20u);
    EXPECT_TRUE(s_hw.cpu.eflags & arch::kFlagCf);
    EXPECT_FALSE(s_variant.cpu.eflags & arch::kFlagCf);
}

TEST(InjectedDefects, DroppedPteAccessedDirtyBitsSkipPageTableWrites)
{
    // First store to a page nothing touched during init: hardware
    // sets the PTE accessed+dirty bits, the defective soft-MMU stores
    // the data but forgets the page-table write-back.
    std::vector<u8> image = test_image([](arch::Assembler &a) {
        a.mov_mem_imm8(0x300000, 0xab);
    });
    const CpuState start = testgen::baseline_cpu_state();
    const u32 pte = layout::kPhysPageTable + 4 * 0x300;
    ASSERT_FALSE(image[pte] & arch::kPteAccessed);

    backend::DirectCpu hw(backend::hardware_behavior());
    const Snapshot s_hw = run_on(hw, start, image);
    backend::DirectCpu variant(
        behavior_with(&BugConfig::pte_accessed_dirty_dropped));
    const Snapshot s_variant = run_on(variant, start, image);

    EXPECT_EQ(s_hw.ram[0x300000], 0xab);
    EXPECT_EQ(s_variant.ram[0x300000], 0xab);
    EXPECT_TRUE(s_hw.ram[pte] & arch::kPteAccessed);
    EXPECT_TRUE(s_hw.ram[pte] & arch::kPteDirty);
    EXPECT_FALSE(s_variant.ram[pte] & arch::kPteAccessed);
    EXPECT_FALSE(s_variant.ram[pte] & arch::kPteDirty);

    // The divergence is exactly the shape the new cluster rule keys
    // on: no CPU diffs, memory diffs confined to the page tables.
    const arch::SnapshotDiff diff =
        arch::diff_snapshots(s_hw, s_variant);
    ASSERT_FALSE(diff.empty());
    EXPECT_TRUE(diff.cpu.empty());
    arch::DecodedInsn insn;
    ASSERT_EQ(arch::decode(&image[layout::kPhysTestCode], 15, insn),
              arch::DecodeStatus::Ok);
    EXPECT_EQ(harness::classify_difference(insn, diff, s_hw,
                                           s_variant),
              "pte-accessed-dirty-not-set");
}

TEST(InjectedDefects, SegmentLimitOffByOneFaultsOnLastValidByte)
{
    // DS limit 0xff: a write at offset 0xff is the last legal byte.
    // Hardware admits it; the off-by-one comparison rejects it.
    std::vector<u8> image = test_image([](arch::Assembler &a) {
        a.mov_r32_imm32(arch::kEax, 0x18); // GDT entry 3.
        a.mov_sreg_r16(arch::kDs, arch::kEax);
        a.mov_mem_imm8(0xff, 0xab);
    });
    arch::Descriptor d;
    d.base = 0;
    d.limit_raw = 0xff;
    d.access = 0x93;
    d.granularity = false;
    d.db = true;
    arch::encode_descriptor(d, &image[layout::kPhysGdt + 8 * 3]);
    const CpuState start = testgen::baseline_cpu_state();

    backend::DirectCpu hw(backend::hardware_behavior());
    const Snapshot s_hw = run_on(hw, start, image);
    backend::DirectCpu variant(
        behavior_with(&BugConfig::seg_limit_off_by_one));
    const Snapshot s_variant = run_on(variant, start, image);

    EXPECT_EQ(s_hw.cpu.exception.vector, arch::kExcNone);
    EXPECT_EQ(s_hw.ram[0xff], 0xab);
    EXPECT_EQ(s_variant.cpu.exception.vector, arch::kExcGp);
    EXPECT_NE(s_variant.ram[0xff], 0xab);
}

TEST(InjectedDefects, WrmsrTruncatedKeepsOnlyLowSixteenBits)
{
    std::vector<u8> image = test_image([](arch::Assembler &a) {
        a.mov_r32_imm32(arch::kEcx, 0x174); // IA32_SYSENTER_CS
        a.mov_r32_imm32(arch::kEax, 0x12345678);
        a.raw({0x0f, 0x30}); // wrmsr
    });
    const CpuState start = testgen::baseline_cpu_state();

    backend::DirectCpu hw(backend::hardware_behavior());
    const Snapshot s_hw = run_on(hw, start, image);
    backend::DirectCpu variant(
        behavior_with(&BugConfig::wrmsr_truncated));
    const Snapshot s_variant = run_on(variant, start, image);

    EXPECT_EQ(s_hw.cpu.msr.sysenter_cs, 0x12345678u);
    EXPECT_EQ(s_variant.cpu.msr.sysenter_cs, 0x5678u);

    // And the divergence classifies as the dedicated cluster.
    const arch::SnapshotDiff diff =
        arch::diff_snapshots(s_hw, s_variant);
    ASSERT_FALSE(diff.empty());
    arch::DecodedInsn insn;
    const u8 wrmsr[15] = {0x0f, 0x30};
    ASSERT_EQ(arch::decode(wrmsr, sizeof wrmsr, insn),
              arch::DecodeStatus::Ok);
    EXPECT_EQ(harness::classify_difference(insn, diff, s_hw,
                                           s_variant),
              "msr-write-truncated");
}

TEST(InjectedDefects, FarFetchSelectorFirstTouchesSelectorPage)
{
    // lfs with the offset dword on an unmapped page and the selector
    // word on the next, mapped page: hardware (offset first) faults
    // before reading the selector; the reordered variant reads the
    // selector page first — visible in its PTE accessed bit.
    std::vector<u8> image = test_image([](arch::Assembler &a) {
        a.mov_r32_imm32(arch::kEbx, 0x300ffc);
        a.raw({0x0f, 0xb4, 0x0b}); // lfs ecx, [ebx]
    });
    image[layout::kPhysPageTable + 4 * 0x300] &= ~arch::kPtePresent;
    const CpuState start = testgen::baseline_cpu_state();
    const u32 pte_301 = layout::kPhysPageTable + 4 * 0x301;

    backend::DirectCpu hw(backend::hardware_behavior());
    const Snapshot s_hw = run_on(hw, start, image);
    backend::DirectCpu variant(
        behavior_with(&BugConfig::far_fetch_selector_first));
    const Snapshot s_variant = run_on(variant, start, image);

    EXPECT_EQ(s_hw.cpu.exception.vector, arch::kExcPf);
    EXPECT_EQ(s_variant.cpu.exception.vector, arch::kExcPf);
    EXPECT_FALSE(s_hw.ram[pte_301] & arch::kPteAccessed);
    EXPECT_TRUE(s_variant.ram[pte_301] & arch::kPteAccessed);
}

// ---------------------------------------------------------------------
// Misbehaving-backend containment at the runner layer.
// ---------------------------------------------------------------------

FaultClass
run_lofi_fault_class(const harness::TestRunner::Config &cfg)
{
    harness::TestRunner runner(cfg);
    try {
        runner.run_one(harness::Backend::LoFi, {0xf4});
    } catch (const FaultError &e) {
        return e.fault_class();
    }
    ADD_FAILURE() << "misbehaving backend did not fault";
    return FaultClass::Internal;
}

TEST(MisbehavingBackend, CrashSurfacesAsTypedFault)
{
    harness::TestRunner::Config cfg;
    cfg.bugs = BugConfig::none();
    cfg.lofi_misbehavior = Misbehavior::Crash;
    EXPECT_EQ(run_lofi_fault_class(cfg), FaultClass::BackendCrash);
}

TEST(MisbehavingBackend, HangTripsTheInsnWatchdog)
{
    harness::TestRunner::Config cfg;
    cfg.bugs = BugConfig::none();
    cfg.lofi_misbehavior = Misbehavior::Hang;
    cfg.watchdog_insns = 1024;
    EXPECT_EQ(run_lofi_fault_class(cfg), FaultClass::BackendHang);

    // Without a watchdog the hang must still terminate (reported
    // immediately rather than looping forever).
    cfg.watchdog_insns = 0;
    EXPECT_EQ(run_lofi_fault_class(cfg), FaultClass::BackendHang);
}

TEST(MisbehavingBackend, CorruptSnapshotIsShapeValidated)
{
    harness::TestRunner::Config cfg;
    cfg.bugs = BugConfig::none();
    cfg.lofi_misbehavior = Misbehavior::CorruptSnapshot;
    EXPECT_EQ(run_lofi_fault_class(cfg), FaultClass::SnapshotCorrupt);
}

TEST(MisbehavingBackend, HonestBackendUnderWatchdogIsUnaffected)
{
    harness::TestRunner::Config honest;
    honest.bugs = BugConfig::none();
    harness::TestRunner::Config watched = honest;
    watched.watchdog_insns = 1u << 15;

    harness::TestRunner a(honest);
    harness::TestRunner b(watched);
    const std::vector<u8> program = {0x40, 0x40, 0xf4}; // inc;inc;hlt
    const auto run_a = a.run_one(harness::Backend::LoFi, program);
    const auto run_b = b.run_one(harness::Backend::LoFi, program);
    EXPECT_TRUE(
        arch::diff_snapshots(run_a.snapshot, run_b.snapshot).empty());

    // A completed run is never flagged, however tight the budget —
    // but an honest backend spinning past it (jmp $) trips the same
    // deterministic BackendHang as a misbehaving one.
    harness::TestRunner::Config tight = honest;
    tight.watchdog_insns = 16;
    harness::TestRunner spinner(tight);
    try {
        spinner.run_one(harness::Backend::LoFi, {0xeb, 0xfe});
        ADD_FAILURE() << "spinning program did not trip the watchdog";
    } catch (const FaultError &e) {
        EXPECT_EQ(e.fault_class(), FaultClass::BackendHang);
    }
}

// ---------------------------------------------------------------------
// Pipeline-level containment: a misbehaving variant backend cannot
// abort the sweep; every test is ledgered at Stage::Backend.
// ---------------------------------------------------------------------

PipelineStats
run_misbehaving_pipeline(Misbehavior misbehavior)
{
    PipelineOptions options;
    options.instruction_filter = {index_of({0x50}),
                                  index_of({0x74, 0x00})};
    options.max_paths_per_insn = 8;
    options.bugs = BugConfig::none();
    options.lofi_misbehavior = misbehavior;
    options.resilience.budgets.test_watchdog_insns = 1u << 14;
    Pipeline pipeline(options);
    return pipeline.run(); // Must not throw.
}

void
expect_contained(const PipelineStats &s, FaultClass cls)
{
    EXPECT_GT(s.test_programs, 0u);
    EXPECT_EQ(s.tests_executed, 0u);
    EXPECT_EQ(s.quarantine.count(Stage::Backend), s.test_programs);
    EXPECT_EQ(s.quarantine.count(cls), s.test_programs);
    EXPECT_EQ(s.quarantine.total(), s.test_programs);
    EXPECT_EQ(s.lofi_diffs, 0u);
}

TEST(PipelineContainment, CrashVariantQuarantinesEveryTest)
{
    expect_contained(run_misbehaving_pipeline(Misbehavior::Crash),
                     FaultClass::BackendCrash);
}

TEST(PipelineContainment, HangVariantQuarantinesEveryTest)
{
    expect_contained(run_misbehaving_pipeline(Misbehavior::Hang),
                     FaultClass::BackendHang);
}

TEST(PipelineContainment, CorruptVariantQuarantinesEveryTest)
{
    expect_contained(
        run_misbehaving_pipeline(Misbehavior::CorruptSnapshot),
        FaultClass::SnapshotCorrupt);
}

// ---------------------------------------------------------------------
// Fingerprint and checkpoint plumbing for the new knobs.
// ---------------------------------------------------------------------

TEST(Fingerprint, SensitiveToInjectedDefectsAndMisbehavior)
{
    PipelineOptions base;
    base.bugs = BugConfig::none();
    const u64 reference = options_fingerprint(base);

    for (std::size_t i = 0; i < defects::catalogue().size(); ++i) {
        const defects::DefectSpec &d = defects::catalogue()[i];
        if (d.kind != defects::DefectKind::Behavioral)
            continue;
        PipelineOptions mutated = base;
        mutated.bugs = defects::apply_defects({i});
        EXPECT_NE(options_fingerprint(mutated), reference) << d.name;
    }

    PipelineOptions misbehaving = base;
    misbehaving.lofi_misbehavior = Misbehavior::Crash;
    EXPECT_NE(options_fingerprint(misbehaving), reference);

    // Watchdog budgets are resilience knobs: a resumed campaign may
    // tighten them without invalidating prior progress.
    PipelineOptions watched = base;
    watched.resilience.budgets.test_watchdog_insns = 1234;
    watched.resilience.budgets.test_watchdog_ms = 5678;
    EXPECT_EQ(options_fingerprint(watched), reference);
}

TEST(Checkpoint, BackendQuarantineRowsRoundTrip)
{
    Checkpoint cp;
    cp.fingerprint = 42;
    cp.quarantine.add(Stage::Backend, "test 3",
                      FaultClass::BackendHang,
                      "lofi variant hung; per-run watchdog expired");
    cp.quarantine.add(Stage::Backend, "test 4",
                      FaultClass::SnapshotCorrupt,
                      "runner: lofi snapshot has wrong RAM size");

    std::stringstream stream;
    save_checkpoint(stream, cp);
    const Checkpoint loaded = load_checkpoint(stream);
    ASSERT_EQ(loaded.quarantine.total(), 2u);
    EXPECT_TRUE(loaded.quarantine.contains(
        Stage::Backend, "test 3", FaultClass::BackendHang,
        "lofi variant hung; per-run watchdog expired"));
    EXPECT_TRUE(loaded.quarantine.contains(
        Stage::Backend, "test 4", FaultClass::SnapshotCorrupt,
        "runner: lofi snapshot has wrong RAM size"));
}

// ---------------------------------------------------------------------
// Detection scoring.
// ---------------------------------------------------------------------

TEST(Scoring, ScoreVariantSeparatesExpectedFromForeignClusters)
{
    const std::size_t i = catalogue_index("wrmsr-truncated");
    arch::DecodedInsn insn;
    const u8 wrmsr[15] = {0x0f, 0x30};
    ASSERT_EQ(arch::decode(wrmsr, sizeof wrmsr, insn),
              arch::DecodeStatus::Ok);

    CampaignResult campaign;
    campaign.complete = true;
    PipelineStats &s = campaign.merged;
    s.test_programs = 10;
    s.tests_executed = 9;
    s.lofi_clusters.add_named(0, insn, "msr-write-truncated");
    s.lofi_clusters.add_named(1, insn, "msr-write-truncated");
    s.lofi_clusters.add_named(2, insn, "status-flags-divergence");
    s.lofi_clusters.add_named(3, insn, "timeout-only-lofi");
    s.quarantine.add(Stage::Execution, "test 9",
                     FaultClass::Execution, "refused");

    const defects::VariantScore score = defects::score_variant(
        {"wrmsr-truncated", {i}}, campaign);
    EXPECT_TRUE(score.detected);
    EXPECT_TRUE(score.detectable ==
                defects::catalogue()[i].detectable);
    // Timeout clusters are excluded from precision/purity entirely.
    EXPECT_EQ(score.total_clusters, 2u);
    EXPECT_EQ(score.matched_clusters, 1u);
    EXPECT_EQ(score.total_diff_tests, 3u);
    EXPECT_EQ(score.matched_tests, 2u);
    EXPECT_DOUBLE_EQ(score.precision(), 0.5);
    EXPECT_NEAR(score.purity(), 2.0 / 3.0, 1e-9);
    // 9 executed + 1 quarantined = 10 planned: contained.
    EXPECT_TRUE(score.contained());
}

TEST(Scoring, MisbehaviorVariantScoresContainmentNotDetection)
{
    const std::size_t i = catalogue_index("backend-crash");
    CampaignResult campaign;
    campaign.complete = true;
    PipelineStats &s = campaign.merged;
    s.test_programs = 4;
    s.tests_executed = 0;
    for (int t = 0; t < 4; ++t) {
        s.quarantine.add(Stage::Backend,
                         "test " + std::to_string(t),
                         FaultClass::BackendCrash, "crashed");
    }
    const defects::VariantScore score = defects::score_variant(
        {"backend-crash", {i}}, campaign);
    EXPECT_EQ(score.kind, defects::DefectKind::Misbehavior);
    EXPECT_FALSE(score.detectable);
    EXPECT_FALSE(score.detected);
    EXPECT_EQ(score.quarantined_backend, 4u);
    EXPECT_TRUE(score.contained());

    // An incomplete campaign — or a vanished test — is a containment
    // violation even with the same ledger.
    CampaignResult incomplete = campaign;
    incomplete.complete = false;
    EXPECT_FALSE(defects::score_variant({"backend-crash", {i}},
                                        incomplete)
                     .contained());
    campaign.merged.test_programs = 5;
    EXPECT_FALSE(defects::score_variant({"backend-crash", {i}},
                                        campaign)
                     .contained());
}

// ---------------------------------------------------------------------
// The patched-emulator regression (the paper's validation loop: fix
// the bugs, re-run the lifted tests, expect silence).
// ---------------------------------------------------------------------

TEST(PatchedEmulator, PipelineReportsNoLoFiDifferenceClusters)
{
    PipelineOptions options;
    options.instruction_filter = {
        index_of({0x50}),             // push eax
        index_of({0x01, 0x08}),       // add [eax], ecx
        index_of({0xc9}),             // leave
        index_of({0xcf}),             // iret
        index_of({0x0f, 0xb4, 0x03}), // lfs ecx, [ebx]
        index_of({0x0f, 0xb1, 0x0b}), // cmpxchg [ebx], ecx
        index_of({0x0f, 0x32}),       // rdmsr
        index_of({0x0f, 0x30}),       // wrmsr
        index_of({0x8e, 0xd8}),       // mov ds, ax
        index_of({0xd3, 0xe0}),       // shl eax, cl
    };
    options.max_paths_per_insn = 24;
    options.bugs = BugConfig::none();
    Pipeline pipeline(options);
    const PipelineStats &s = pipeline.run();

    EXPECT_GT(s.test_programs, 0u);
    EXPECT_EQ(s.tests_executed, s.test_programs);
    for (const harness::Cluster &c : s.lofi_clusters.clusters()) {
        EXPECT_EQ(c.root_cause.rfind("timeout-only-", 0), 0u)
            << "patched emulator still differs: "
            << s.lofi_clusters.to_string();
    }
}

} // namespace
} // namespace pokeemu
