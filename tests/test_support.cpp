/** @file Unit tests for the support layer (bit utils, RNG, logging). */
#include <gtest/gtest.h>

#include <thread>

#include "support/common.h"
#include "support/logging.h"
#include "support/rng.h"

namespace pokeemu {
namespace {

TEST(BitUtils, MaskBits)
{
    EXPECT_EQ(mask_bits(1), 0x1u);
    EXPECT_EQ(mask_bits(8), 0xffu);
    EXPECT_EQ(mask_bits(32), 0xffffffffu);
    EXPECT_EQ(mask_bits(64), ~u64{0});
}

TEST(BitUtils, Truncate)
{
    EXPECT_EQ(truncate(0x1ff, 8), 0xffu);
    EXPECT_EQ(truncate(0x100, 8), 0x0u);
    EXPECT_EQ(truncate(~u64{0}, 64), ~u64{0});
}

TEST(BitUtils, SignExtend)
{
    EXPECT_EQ(sign_extend(0x80, 8), -128);
    EXPECT_EQ(sign_extend(0x7f, 8), 127);
    EXPECT_EQ(sign_extend(0xffffffff, 32), -1);
    EXPECT_EQ(sign_extend(1, 1), -1);
    EXPECT_EQ(sign_extend(0, 1), 0);
}

TEST(BitUtils, GetSetBit)
{
    EXPECT_EQ(get_bit(0b1010, 1), 1u);
    EXPECT_EQ(get_bit(0b1010, 0), 0u);
    EXPECT_EQ(set_bit(0, 3, true), 0b1000u);
    EXPECT_EQ(set_bit(0b1111, 2, false), 0b1011u);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    bool any_diff = false;
    for (int i = 0; i < 16; ++i)
        any_diff |= a.next() != b.next();
    EXPECT_TRUE(any_diff);
}

TEST(Rng, BelowRespectsBound)
{
    Rng r(7);
    for (u64 bound : {u64{1}, u64{2}, u64{7}, u64{1000}}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(r.below(bound), bound);
    }
}

TEST(Rng, BelowCoversRange)
{
    Rng r(11);
    bool hit[5] = {};
    for (int i = 0; i < 500; ++i)
        hit[r.below(5)] = true;
    for (bool h : hit)
        EXPECT_TRUE(h);
}

TEST(Panic, Throws)
{
    EXPECT_THROW(panic("boom"), std::logic_error);
}

TEST(Logging, ShardTagPrefixesLines)
{
    const LogLevel saved = log_level();
    set_log_level(LogLevel::Info);
    testing::internal::CaptureStderr();
    log_info("untagged");
    set_log_shard(3);
    EXPECT_EQ(log_shard(), 3);
    log_info("tagged");
    set_log_shard(-1);
    log_info("untagged again");
    const std::string out = testing::internal::GetCapturedStderr();
    set_log_level(saved);
    EXPECT_NE(out.find("[pokeemu INFO] untagged\n"), std::string::npos);
    EXPECT_NE(out.find("[pokeemu s3 INFO] tagged\n"),
              std::string::npos);
    EXPECT_NE(out.find("[pokeemu INFO] untagged again\n"),
              std::string::npos);
}

TEST(Logging, ShardTagIsThreadLocal)
{
    set_log_shard(5);
    int other = -2;
    std::thread([&] { other = log_shard(); }).join();
    EXPECT_EQ(other, -1); // A fresh thread starts untagged.
    EXPECT_EQ(log_shard(), 5);
    set_log_shard(-1);
}

} // namespace
} // namespace pokeemu
