/**
 * @file
 * Backend tests: IR-decoder/table-decoder agreement, identical
 * baseline boot on all three backends, Hi-Fi vs hardware differential
 * execution on random instruction streams, and one targeted test per
 * seeded Lo-Fi bug (failure injection, paper §6.2).
 */
#include <gtest/gtest.h>

#include <cstring>

#include "arch/assembler.h"
#include "arch/paging.h"
#include "arch/descriptors.h"
#include "backend/direct_cpu.h"
#include "hifi/hifi_emulator.h"
#include "ir/eval.h"
#include "support/rng.h"
#include "testgen/baseline.h"

namespace pokeemu {
namespace {

namespace layout = arch::layout;
using arch::CpuState;
using arch::Snapshot;

/** Maps the decoder scratch region for concrete IR-decoder runs. */
class BufMemory : public ir::ConcreteMemory
{
  public:
    std::array<u8, 0x100> data{};

    u64
    load(u32 addr, unsigned size) override
    {
        assert(addr >= layout::kInsnBufBase &&
               addr + size <= layout::kInsnBufBase + data.size());
        u64 v = 0;
        for (unsigned i = 0; i < size; ++i)
            v |= static_cast<u64>(
                     data[addr - layout::kInsnBufBase + i])
                 << (8 * i);
        return v;
    }

    void
    store(u32 addr, unsigned size, u64 value) override
    {
        assert(addr >= layout::kInsnBufBase &&
               addr + size <= layout::kInsnBufBase + data.size());
        for (unsigned i = 0; i < size; ++i)
            data[addr - layout::kInsnBufBase + i] =
                static_cast<u8>(value >> (8 * i));
    }
};

/** Run the IR decoder concretely on a 15-byte buffer. */
u32
ir_decode(const ir::Program &decoder, const u8 *bytes)
{
    BufMemory mem;
    std::memcpy(mem.data.data(), bytes, arch::kMaxInsnLength);
    ir::RunResult r = ir::run_concrete(decoder, mem);
    EXPECT_EQ(r.status, ir::RunStatus::Halted);
    return r.halt_code;
}

TEST(DecoderIr, AgreesWithTableDecoderOnRandomBytes)
{
    const ir::Program decoder = hifi::build_decoder_program();
    Rng rng(2024);
    for (int trial = 0; trial < 4000; ++trial) {
        u8 buf[arch::kMaxInsnLength];
        if (trial % 2 == 0) {
            // Fully random bytes.
            for (auto &b : buf)
                b = static_cast<u8>(rng.next());
        } else {
            // Structured: random table row's opcode plus random tail.
            const auto &table = arch::insn_table();
            const arch::InsnDesc &d =
                table[rng.below(table.size())];
            unsigned p = 0;
            if (rng.below(4) == 0) {
                const u8 prefixes[] = {0x26, 0x2e, 0x36, 0x3e, 0x64,
                                       0x65, 0xf0, 0xf2, 0xf3};
                buf[p++] = prefixes[rng.below(9)];
            }
            if (d.opcode >= 0x100)
                buf[p++] = 0x0f;
            buf[p++] = static_cast<u8>(d.opcode & 0xff);
            for (; p < arch::kMaxInsnLength; ++p)
                buf[p] = static_cast<u8>(rng.next());
        }

        arch::DecodedInsn insn;
        const arch::DecodeStatus status =
            arch::decode(buf, arch::kMaxInsnLength, insn);
        const u32 code = ir_decode(decoder, buf);
        switch (status) {
          case arch::DecodeStatus::Ok:
            EXPECT_EQ(code, static_cast<u32>(insn.table_index))
                << "trial " << trial << ": "
                << arch::to_string(insn);
            break;
          case arch::DecodeStatus::Invalid:
            EXPECT_EQ(code, hifi::kDecodeInvalid) << "trial " << trial;
            break;
          case arch::DecodeStatus::TooLong:
            EXPECT_EQ(code, hifi::kDecodeTooLong) << "trial " << trial;
            break;
        }
    }
}

// ---------------------------------------------------------------------
// Baseline boot.
// ---------------------------------------------------------------------

TEST(Baseline, AllBackendsReachTheSameState)
{
    const CpuState reset = testgen::make_reset_state();
    const std::vector<u8> image = testgen::make_baseline_ram();

    backend::DirectCpu hw(backend::hardware_behavior());
    hw.reset(reset, image);
    EXPECT_EQ(hw.run(1024), backend::StopReason::Halted);

    backend::DirectCpu lofi(backend::lofi_behavior());
    lofi.reset(reset, image);
    EXPECT_EQ(lofi.run(1024), backend::StopReason::Halted);

    hifi::HiFiEmulator hifi_emu;
    hifi_emu.reset(reset, image);
    EXPECT_EQ(hifi_emu.run(1024), hifi::StopReason::Halted);

    const auto d1 = arch::diff_snapshots(hw.snapshot(),
                                         lofi.snapshot());
    EXPECT_TRUE(d1.empty()) << d1.to_string();
    const auto d2 = arch::diff_snapshots(hw.snapshot(),
                                         hifi_emu.snapshot());
    EXPECT_TRUE(d2.empty()) << d2.to_string();

    // And the cached baseline state matches the booted one.
    const CpuState &base = testgen::baseline_cpu_state();
    EXPECT_EQ(base.cr0, arch::kCr0Pe | arch::kCr0Pg);
    EXPECT_EQ(base.cr3, layout::kPhysPageDir);
    EXPECT_EQ(base.eip, layout::kPhysTestCode);
    EXPECT_EQ(base.gpr[arch::kEsp], layout::kBaselineEsp);
    EXPECT_EQ(base.eflags, testgen::kBaselineEflags);
    EXPECT_EQ(base.seg[arch::kSs].selector, testgen::kStackSelector);
}

// ---------------------------------------------------------------------
// Hi-Fi vs hardware differential execution.
// ---------------------------------------------------------------------

/** Options that align the Hi-Fi emulator with the hardware model so
 *  random differential streams must agree exactly. */
hifi::SemanticsOptions
aligned_hifi_options()
{
    hifi::SemanticsOptions o;
    o.hifi_far_fetch_order = false;
    return o;
}

backend::Behavior
aligned_hw_behavior()
{
    backend::Behavior b = backend::hardware_behavior();
    b.shift_clears_af = true; // Match the Hi-Fi IR's AF choice.
    return b;
}

/** One differential trial: same state/image/budget on both backends. */
void
run_differential(const CpuState &start, const std::vector<u8> &image,
                 u64 budget, const char *label)
{
    backend::DirectCpu hw(aligned_hw_behavior());
    hw.reset(start, image);
    hw.run(budget);

    hifi::HiFiEmulator emu(aligned_hifi_options());
    emu.reset(start, image);
    emu.run(budget);

    const auto diff = arch::diff_snapshots(hw.snapshot(),
                                           emu.snapshot());
    EXPECT_TRUE(diff.empty())
        << label << "\n"
        << diff.to_string() << "hw:\n"
        << arch::to_string(hw.cpu()) << "hifi:\n"
        << arch::to_string(emu.cpu());
}

TEST(Differential, RandomByteStreams)
{
    Rng rng(77);
    for (int trial = 0; trial < 60; ++trial) {
        CpuState start = testgen::baseline_cpu_state();
        std::vector<u8> image = testgen::baseline_ram_after_init();
        for (unsigned r = 0; r < arch::kNumGprs; ++r) {
            if (r != arch::kEsp)
                start.gpr[r] = static_cast<u32>(rng.next());
        }
        for (int i = 0; i < 64; ++i)
            image[layout::kPhysTestCode + i] =
                static_cast<u8>(rng.next());
        run_differential(start, image, 16,
                         ("random trial " + std::to_string(trial))
                             .c_str());
    }
}

TEST(Differential, StructuredInstructionStreams)
{
    Rng rng(99);
    const auto &table = arch::insn_table();
    for (int trial = 0; trial < 120; ++trial) {
        CpuState start = testgen::baseline_cpu_state();
        std::vector<u8> image = testgen::baseline_ram_after_init();
        for (unsigned r = 0; r < arch::kNumGprs; ++r) {
            if (r != arch::kEsp)
                start.gpr[r] = static_cast<u32>(
                    rng.flip() ? rng.next()
                               : rng.below(0x400000));
        }
        // Random-but-plausible flags.
        start.eflags = (start.eflags & ~0xcd5u) |
                       (static_cast<u32>(rng.next()) & 0xcd5);

        unsigned pos = 0;
        u8 *code = &image[layout::kPhysTestCode];
        for (int k = 0; k < 10 && pos < 100; ++k) {
            const arch::InsnDesc &d = table[rng.below(table.size())];
            u8 buf[arch::kMaxInsnLength] = {};
            unsigned p = 0;
            if (d.opcode >= 0x100)
                buf[p++] = 0x0f;
            buf[p++] = static_cast<u8>(d.opcode & 0xff);
            if (d.has_modrm) {
                u8 modrm = static_cast<u8>(rng.next());
                if (d.group_reg >= 0) {
                    modrm = static_cast<u8>(
                        (modrm & ~0x38) | (d.group_reg << 3));
                }
                buf[p++] = modrm;
            }
            for (; p < arch::kMaxInsnLength; ++p)
                buf[p] = static_cast<u8>(rng.next());
            arch::DecodedInsn insn;
            if (arch::decode(buf, sizeof buf, insn) !=
                arch::DecodeStatus::Ok) {
                continue;
            }
            if (pos + insn.length > 100)
                break;
            std::memcpy(code + pos, insn.bytes, insn.length);
            pos += insn.length;
        }
        code[pos] = 0xf4; // hlt terminator.
        run_differential(start, image, 12,
                         ("structured trial " + std::to_string(trial))
                             .c_str());
    }
}

// ---------------------------------------------------------------------
// Seeded Lo-Fi bugs: each individually observable (failure injection).
// ---------------------------------------------------------------------

/** Run a test program image on a backend from the baseline state. */
Snapshot
run_on(backend::DirectCpu &cpu, const CpuState &start,
       const std::vector<u8> &image, u64 budget = 256)
{
    cpu.reset(start, image);
    cpu.run(budget);
    return cpu.snapshot();
}

/** Build an image whose test program is @p assemble's output + hlt. */
template <typename Fn>
std::vector<u8>
test_image(Fn assemble)
{
    arch::Assembler a(layout::kPhysTestCode);
    assemble(a);
    a.hlt();
    std::vector<u8> image = testgen::baseline_ram_after_init();
    std::copy(a.bytes().begin(), a.bytes().end(),
              image.begin() + layout::kPhysTestCode);
    return image;
}

void
unmap_page(std::vector<u8> &image, u32 vpage)
{
    const u32 pte = layout::kPhysPageTable + 4 * (vpage & 0x3ff);
    image[pte] &= ~arch::kPtePresent;
}

TEST(SeededBugs, LeaveNonAtomicCorruptsEsp)
{
    // EBP points into an unmapped page: hardware leaves ESP intact on
    // the #PF; the Lo-Fi emulator has already updated it (paper §6.2).
    std::vector<u8> image = test_image([](arch::Assembler &a) {
        a.mov_r32_imm32(arch::kEbp, 0x300000);
        a.raw({0xc9}); // leave
    });
    unmap_page(image, 0x300);
    const CpuState start = testgen::baseline_cpu_state();

    backend::DirectCpu hw(backend::hardware_behavior());
    const Snapshot s_hw = run_on(hw, start, image);
    backend::DirectCpu lofi(backend::lofi_behavior());
    const Snapshot s_lofi = run_on(lofi, start, image);

    EXPECT_EQ(s_hw.cpu.exception.vector, arch::kExcPf);
    EXPECT_EQ(s_lofi.cpu.exception.vector, arch::kExcPf);
    EXPECT_EQ(s_hw.cpu.gpr[arch::kEsp], layout::kBaselineEsp);
    EXPECT_EQ(s_lofi.cpu.gpr[arch::kEsp], 0x300004u);
}

TEST(SeededBugs, CmpxchgSkipsWriteCheck)
{
    // Destination on a read-only page with CR0.WP set and a failing
    // compare: hardware still faults (it always writes back); the
    // Lo-Fi emulator silently updates EAX (paper §6.2).
    std::vector<u8> image = test_image([](arch::Assembler &a) {
        a.mov_r32_imm32(arch::kEax, 0x11111111);
        a.mov_r32_imm32(arch::kEbx, 0x300000);
        a.mov_r32_imm32(arch::kEcx, 0x22222222);
        a.raw({0x0f, 0xb1, 0x0b}); // cmpxchg [ebx], ecx
    });
    // Make page 0x300 read-only; put a known value there.
    image[layout::kPhysPageTable + 4 * 0x300] &= ~arch::kPteRw;
    image[0x300000] = 0x99;
    CpuState start = testgen::baseline_cpu_state();
    start.cr0 |= arch::kCr0Wp;

    backend::DirectCpu hw(backend::hardware_behavior());
    const Snapshot s_hw = run_on(hw, start, image);
    backend::DirectCpu lofi(backend::lofi_behavior());
    const Snapshot s_lofi = run_on(lofi, start, image);

    EXPECT_EQ(s_hw.cpu.exception.vector, arch::kExcPf);
    EXPECT_EQ(s_hw.cpu.gpr[arch::kEax], 0x11111111u);
    EXPECT_EQ(s_lofi.cpu.exception.vector, arch::kExcNone);
    EXPECT_EQ(s_lofi.cpu.gpr[arch::kEax], 0x99u);
}

TEST(SeededBugs, IretPopOrderChangesFaultAddress)
{
    // Stack slots straddle an unmapped/mapped page boundary: the pop
    // order determines which address faults first (paper §6.2 explains
    // why random testing misses this).
    std::vector<u8> image = test_image([](arch::Assembler &a) {
        a.mov_r32_imm32(arch::kEsp, 0x300ff8);
        a.raw({0xcf}); // iret
    });
    unmap_page(image, 0x300); // esp and esp+4 unmapped; esp+8 mapped.
    const CpuState start = testgen::baseline_cpu_state();

    backend::DirectCpu hw(backend::hardware_behavior());
    const Snapshot s_hw = run_on(hw, start, image);
    backend::DirectCpu lofi(backend::lofi_behavior());
    const Snapshot s_lofi = run_on(lofi, start, image);

    EXPECT_EQ(s_hw.cpu.exception.vector, arch::kExcPf);
    EXPECT_EQ(s_lofi.cpu.exception.vector, arch::kExcPf);
    EXPECT_EQ(s_hw.cpu.cr2, 0x300ff8u);   // Innermost first.
    EXPECT_EQ(s_lofi.cpu.cr2, 0x300ffcu); // Outermost first.
}

TEST(SeededBugs, RdmsrInvalidMsr)
{
    std::vector<u8> image = test_image([](arch::Assembler &a) {
        a.mov_r32_imm32(arch::kEcx, 0x999);
        a.mov_r32_imm32(arch::kEax, 0x12345678);
        a.raw({0x0f, 0x32}); // rdmsr
    });
    const CpuState start = testgen::baseline_cpu_state();

    backend::DirectCpu hw(backend::hardware_behavior());
    const Snapshot s_hw = run_on(hw, start, image);
    backend::DirectCpu lofi(backend::lofi_behavior());
    const Snapshot s_lofi = run_on(lofi, start, image);

    EXPECT_EQ(s_hw.cpu.exception.vector, arch::kExcGp);
    EXPECT_EQ(s_lofi.cpu.exception.vector, arch::kExcNone);
    EXPECT_EQ(s_lofi.cpu.gpr[arch::kEax], 0u);
}

TEST(SeededBugs, AliasEncodingRejected)
{
    std::vector<u8> image = test_image([](arch::Assembler &a) {
        a.mov_r32_imm32(arch::kEax, 1);
        a.raw({0xc0, 0xf0, 0x03}); // shl al, 3 via the /6 alias.
    });
    const CpuState start = testgen::baseline_cpu_state();

    backend::DirectCpu hw(backend::hardware_behavior());
    const Snapshot s_hw = run_on(hw, start, image);
    backend::DirectCpu lofi(backend::lofi_behavior());
    const Snapshot s_lofi = run_on(lofi, start, image);

    EXPECT_EQ(s_hw.cpu.exception.vector, arch::kExcNone);
    EXPECT_EQ(s_hw.cpu.gpr[arch::kEax] & 0xff, 8u);
    EXPECT_EQ(s_lofi.cpu.exception.vector, arch::kExcUd);
}

TEST(SeededBugs, SegmentLimitNotEnforced)
{
    // Load DS from a descriptor with limit 0, then write past it:
    // hardware raises #GP, the Lo-Fi emulator writes happily.
    std::vector<u8> image = test_image([](arch::Assembler &a) {
        a.mov_r32_imm32(arch::kEax, 0x18); // GDT entry 3.
        a.mov_sreg_r16(arch::kDs, arch::kEax);
        a.mov_mem_imm8(0x100, 0xab);
    });
    arch::Descriptor d;
    d.base = 0;
    d.limit_raw = 0; // One byte only.
    d.access = 0x93;
    d.granularity = false;
    d.db = true;
    arch::encode_descriptor(d, &image[layout::kPhysGdt + 8 * 3]);
    const CpuState start = testgen::baseline_cpu_state();

    backend::DirectCpu hw(backend::hardware_behavior());
    const Snapshot s_hw = run_on(hw, start, image);
    backend::DirectCpu lofi(backend::lofi_behavior());
    const Snapshot s_lofi = run_on(lofi, start, image);

    EXPECT_EQ(s_hw.cpu.exception.vector, arch::kExcGp);
    EXPECT_EQ(s_lofi.cpu.exception.vector, arch::kExcNone);
    EXPECT_EQ(s_lofi.ram[0x100], 0xab);
    EXPECT_NE(s_hw.ram[0x100], 0xab);
}

TEST(SeededBugs, AccessedFlagNotSet)
{
    // Load DS from a fresh descriptor whose accessed bit is clear:
    // hardware sets it in the GDT, the Lo-Fi emulator does not.
    std::vector<u8> image = test_image([](arch::Assembler &a) {
        a.mov_r32_imm32(arch::kEax, 0x18);
        a.mov_sreg_r16(arch::kDs, arch::kEax);
    });
    arch::Descriptor d = arch::make_flat_descriptor(0x92); // Not accessed.
    arch::encode_descriptor(d, &image[layout::kPhysGdt + 8 * 3]);
    const CpuState start = testgen::baseline_cpu_state();

    backend::DirectCpu hw(backend::hardware_behavior());
    const Snapshot s_hw = run_on(hw, start, image);
    backend::DirectCpu lofi(backend::lofi_behavior());
    const Snapshot s_lofi = run_on(lofi, start, image);

    EXPECT_EQ(s_hw.ram[layout::kPhysGdt + 8 * 3 + 5] & 1, 1);
    EXPECT_EQ(s_lofi.ram[layout::kPhysGdt + 8 * 3 + 5] & 1, 0);
}

TEST(SeededBugs, HiFiFarFetchOrderDiffersFromHardware)
{
    // lfs with the offset dword mapped and the selector word unmapped:
    // hardware (offset first) faults at the selector; the Bochs-order
    // Hi-Fi (selector first) faults at the selector too — so use the
    // converse: offset unmapped, selector mapped.
    std::vector<u8> image = test_image([](arch::Assembler &a) {
        a.mov_r32_imm32(arch::kEbx, 0x300ffc);
        a.raw({0x0f, 0xb4, 0x0b}); // lfs ecx, [ebx]
    });
    unmap_page(image, 0x300); // Offset at 0x300ffc unmapped;
                              // selector at 0x301000 mapped.
    const CpuState start = testgen::baseline_cpu_state();

    backend::DirectCpu hw(backend::hardware_behavior());
    const Snapshot s_hw = run_on(hw, start, image);

    hifi::HiFiEmulator emu; // Default: Bochs fetch order.
    emu.reset(start, image);
    emu.run(256);
    const Snapshot s_hifi = emu.snapshot();

    EXPECT_EQ(s_hw.cpu.exception.vector, arch::kExcPf);
    EXPECT_EQ(s_hifi.cpu.exception.vector, arch::kExcPf);
    // Both fault on the offset page eventually, but the hardware
    // faults before reading the selector page while the Hi-Fi order
    // reads the selector page first — observable via the accessed bit
    // of the selector's page table entry.
    const u32 pte_301 = layout::kPhysPageTable + 4 * 0x301;
    EXPECT_FALSE(s_hw.ram[pte_301] & arch::kPteAccessed);
    EXPECT_TRUE(s_hifi.ram[pte_301] & arch::kPteAccessed);
}

TEST(TranslationCache, HitsOnRepeatedExecution)
{
    std::vector<u8> image = test_image([](arch::Assembler &a) {
        a.mov_r32_imm32(arch::kEcx, 50);
        const u32 head = a.pc();
        a.raw({0x49}); // dec ecx
        a.raw({0x75, static_cast<u8>(
                         static_cast<s8>(head - (a.pc() + 2)))});
        // jnz head
    });
    backend::DirectCpu lofi(backend::lofi_behavior());
    run_on(lofi, testgen::baseline_cpu_state(), image, 256);
    EXPECT_GT(lofi.cache_hits(), lofi.cache_misses());
}

} // namespace
} // namespace pokeemu
