#include "coverage/coverage.h"

#include <deque>

namespace pokeemu::coverage {

const char *
truncation_reason_name(TruncationReason reason)
{
    switch (reason) {
      case TruncationReason::None: return "none";
      case TruncationReason::PathCap: return "path-cap";
      case TruncationReason::Deadline: return "deadline";
      case TruncationReason::StepLimit: return "step-limit";
      case TruncationReason::SolverTimeout: return "solver-timeout";
    }
    return "?";
}

unsigned
coverage_bucket(u64 covered, u64 total)
{
    if (total == 0 || covered >= total)
        return 0;
    const u64 pct = covered * 100 / total;
    if (pct >= 90)
        return 1;
    if (pct >= 75)
        return 2;
    if (pct >= 50)
        return 3;
    return 4;
}

const char *
coverage_bucket_name(unsigned bucket)
{
    switch (bucket) {
      case 0: return "100%";
      case 1: return "90-99%";
      case 2: return "75-89%";
      case 3: return "50-74%";
      case 4: return "<50%";
    }
    return "?";
}

CoverageMap::CoverageMap(const ir::Program &program)
    : cfg_(analysis::Cfg::build(program))
{
    const u32 n = cfg_.num_blocks();
    covered_.assign(n, false);
    covered_edge_.resize(n);
    for (BlockId b = 0; b < n; ++b) {
        covered_edge_[b].assign(cfg_.blocks()[b].succs.size(), false);
        if (!cfg_.reachable(b))
            continue;
        ++total_blocks_;
        total_edges_ += cfg_.blocks()[b].succs.size();
    }
}

std::optional<BlockId>
CoverageMap::entered_block(u32 stmt_index) const
{
    const BlockId b = cfg_.block_of(stmt_index);
    if (cfg_.blocks()[b].first != stmt_index)
        return std::nullopt;
    return b;
}

bool
CoverageMap::edge_covered(BlockId from, BlockId to) const
{
    const std::vector<BlockId> &succs = cfg_.blocks()[from].succs;
    for (std::size_t i = 0; i < succs.size(); ++i) {
        if (succs[i] == to)
            return covered_edge_[from][i];
    }
    // Not a CFG edge at all; treat as covered so no policy chases it.
    return true;
}

void
CoverageMap::cover_path(const std::vector<BlockId> &trace)
{
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const BlockId b = trace[i];
        if (!covered_[b]) {
            covered_[b] = true;
            ++covered_blocks_;
        }
        if (i + 1 == trace.size())
            continue;
        const std::vector<BlockId> &succs = cfg_.blocks()[b].succs;
        for (std::size_t s = 0; s < succs.size(); ++s) {
            if (succs[s] == trace[i + 1] && !covered_edge_[b][s]) {
                covered_edge_[b][s] = true;
                ++covered_edges_;
                break;
            }
        }
    }
    distance_valid_ = false;
}

u32
CoverageMap::distance_to_uncovered(BlockId block) const
{
    if (!distance_valid_) {
        // Multi-source reverse BFS from every block that still has an
        // uncovered out-edge: distance_[b] is then the number of edges
        // control must traverse from b before it can take one.
        constexpr u32 kUnreachable = ~u32{0};
        distance_.assign(cfg_.num_blocks(), kUnreachable);
        std::deque<BlockId> queue;
        for (BlockId b = 0; b < cfg_.num_blocks(); ++b) {
            const auto &edges = covered_edge_[b];
            for (std::size_t s = 0; s < edges.size(); ++s) {
                if (!edges[s]) {
                    distance_[b] = 0;
                    queue.push_back(b);
                    break;
                }
            }
        }
        while (!queue.empty()) {
            const BlockId b = queue.front();
            queue.pop_front();
            for (BlockId pred : cfg_.blocks()[b].preds) {
                if (distance_[pred] == kUnreachable) {
                    distance_[pred] = distance_[b] + 1;
                    queue.push_back(pred);
                }
            }
        }
        distance_valid_ = true;
    }
    return distance_[block];
}

CoverageStats
CoverageMap::stats() const
{
    CoverageStats s;
    s.covered_blocks = covered_blocks_;
    s.total_blocks = total_blocks_;
    s.covered_edges = covered_edges_;
    s.total_edges = total_edges_;
    return s;
}

std::optional<bool>
UncoveredEdgeFirst::prefer(const CoverageMap &map,
                           const BranchContext &branch) const
{
    const bool uncovered[2] = {
        !map.edge_covered(branch.from, branch.target[0]),
        !map.edge_covered(branch.from, branch.target[1]),
    };
    if (uncovered[0] != uncovered[1])
        return uncovered[1];
    // Both edges covered (or both new): steer toward the direction
    // that reaches the nearest remaining uncovered edge first.
    const u32 d0 = map.distance_to_uncovered(branch.target[0]);
    const u32 d1 = map.distance_to_uncovered(branch.target[1]);
    if (d0 != d1)
        return d1 < d0;
    return std::nullopt;
}

const char *
schedule_policy_name(SchedulePolicy policy)
{
    switch (policy) {
      case SchedulePolicy::DefaultOrder: return "default";
      case SchedulePolicy::UncoveredEdgeFirst: return "frontier";
    }
    return "?";
}

const FrontierPolicy *
frontier_policy(SchedulePolicy policy)
{
    static const UncoveredEdgeFirst uncovered_first;
    switch (policy) {
      case SchedulePolicy::DefaultOrder: return nullptr;
      case SchedulePolicy::UncoveredEdgeFirst: return &uncovered_first;
    }
    return nullptr;
}

} // namespace pokeemu::coverage
