#include "coverage/coverage.h"

#include <cassert>
#include <deque>

namespace pokeemu::coverage {

const char *
truncation_reason_name(TruncationReason reason)
{
    switch (reason) {
      case TruncationReason::None: return "none";
      case TruncationReason::PathCap: return "path-cap";
      case TruncationReason::Deadline: return "deadline";
      case TruncationReason::StepLimit: return "step-limit";
      case TruncationReason::SolverTimeout: return "solver-timeout";
    }
    return "?";
}

unsigned
coverage_bucket(u64 covered, u64 total)
{
    if (total == 0 || covered >= total)
        return 0;
    const u64 pct = covered * 100 / total;
    if (pct >= 90)
        return 1;
    if (pct >= 75)
        return 2;
    if (pct >= 50)
        return 3;
    return 4;
}

const char *
coverage_bucket_name(unsigned bucket)
{
    switch (bucket) {
      case 0: return "100%";
      case 1: return "90-99%";
      case 2: return "75-89%";
      case 3: return "50-74%";
      case 4: return "<50%";
    }
    return "?";
}

namespace {

constexpr u32 kUnreachable = ~u32{0};

} // namespace

CoverageMap::CoverageMap(const ir::Program &program)
    : cfg_(analysis::Cfg::build(program))
{
    const u32 n = cfg_.num_blocks();
    covered_.assign(n, false);
    covered_edge_.resize(n);
    for (BlockId b = 0; b < n; ++b) {
        covered_edge_[b].assign(cfg_.blocks()[b].succs.size(), false);
        if (!cfg_.reachable(b))
            continue;
        ++total_blocks_;
        total_edges_ += cfg_.blocks()[b].succs.size();
    }
}

std::optional<BlockId>
CoverageMap::entered_block(u32 stmt_index) const
{
    const BlockId b = cfg_.block_of(stmt_index);
    if (cfg_.blocks()[b].first != stmt_index)
        return std::nullopt;
    return b;
}

bool
CoverageMap::edge_covered(BlockId from, BlockId to) const
{
    const std::vector<BlockId> &succs = cfg_.blocks()[from].succs;
    for (std::size_t i = 0; i < succs.size(); ++i) {
        if (succs[i] == to)
            return covered_edge_[from][i];
    }
    // Not a CFG edge at all; treat as covered so no policy chases it.
    return true;
}

void
CoverageMap::set_path_structure(
    std::unique_ptr<const analysis::PathStructure> structure)
{
    structure_ = std::move(structure);
    chain_dirty_units_.clear();
    dirty_chains_.clear();
    if (structure_ == nullptr)
        return;
    // A chain's dirty units are its uncovered blocks plus its
    // uncovered chain-internal edges; seed them from the coverage
    // accumulated so far so attaching mid-exploration stays exact.
    chain_dirty_units_.assign(structure_->num_chains(), 0);
    dirty_chains_.assign(structure_->chain_words(), 0);
    for (u32 c = 0; c < structure_->num_chains(); ++c) {
        const analysis::CoverChain &chain = structure_->chains()[c];
        u32 units = 0;
        for (std::size_t i = 0; i < chain.blocks.size(); ++i) {
            if (!covered_[chain.blocks[i]])
                ++units;
            if (i + 1 < chain.blocks.size() &&
                !edge_covered(chain.blocks[i], chain.blocks[i + 1]))
                ++units;
        }
        chain_dirty_units_[c] = units;
        if (units != 0)
            dirty_chains_[c / 64] |= u64{1} << (c % 64);
    }
}

u32
CoverageMap::uncovered_cover_paths_through(BlockId block) const
{
    if (structure_ == nullptr)
        return 0;
    const std::vector<u64> &reach = structure_->reachable_chains(block);
    u32 count = 0;
    for (std::size_t w = 0; w < reach.size(); ++w)
        count += static_cast<u32>(
            __builtin_popcountll(reach[w] & dirty_chains_[w]));
    return count;
}

void
CoverageMap::cover_path(const std::vector<BlockId> &trace)
{
    // Mark a chain unit (block or chain-internal edge) covered and
    // clean the chain's dirty bit when the last one falls.
    const auto chain_unit_covered = [&](u32 chain) {
        if (chain == analysis::kNoChain ||
            chain >= chain_dirty_units_.size() ||
            chain_dirty_units_[chain] == 0)
            return;
        if (--chain_dirty_units_[chain] == 0)
            dirty_chains_[chain / 64] &= ~(u64{1} << (chain % 64));
    };

    std::vector<BlockId> lost_sources;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const BlockId b = trace[i];
        if (!covered_[b]) {
            covered_[b] = true;
            ++covered_blocks_;
            if (structure_ != nullptr)
                chain_unit_covered(structure_->chain_of(b));
        }
        if (i + 1 == trace.size())
            continue;
        const std::vector<BlockId> &succs = cfg_.blocks()[b].succs;
        for (std::size_t s = 0; s < succs.size(); ++s) {
            if (succs[s] == trace[i + 1] && !covered_edge_[b][s]) {
                covered_edge_[b][s] = true;
                ++covered_edges_;
                if (structure_ != nullptr &&
                    structure_->chain_next(b) == trace[i + 1])
                    chain_unit_covered(structure_->chain_of(b));
                // Covering this edge may have removed b from the
                // distance BFS source set (sources only shrink).
                if (distance_valid_ &&
                    !block_has_uncovered_out_edge(b))
                    lost_sources.push_back(b);
                break;
            }
        }
    }
    if (distance_valid_ && !lost_sources.empty())
        repair_distance(lost_sources);
}

bool
CoverageMap::block_has_uncovered_out_edge(BlockId block) const
{
    const auto &edges = covered_edge_[block];
    for (std::size_t s = 0; s < edges.size(); ++s) {
        if (!edges[s])
            return true;
    }
    return false;
}

void
CoverageMap::rebuild_distance() const
{
    // Multi-source reverse BFS from every block that still has an
    // uncovered out-edge: distance_[b] is then the number of edges
    // control must traverse from b before it can take one.
    distance_.assign(cfg_.num_blocks(), kUnreachable);
    std::deque<BlockId> queue;
    for (BlockId b = 0; b < cfg_.num_blocks(); ++b) {
        if (block_has_uncovered_out_edge(b)) {
            distance_[b] = 0;
            queue.push_back(b);
        }
    }
    while (!queue.empty()) {
        const BlockId b = queue.front();
        queue.pop_front();
        for (BlockId pred : cfg_.blocks()[b].preds) {
            if (distance_[pred] == kUnreachable) {
                distance_[pred] = distance_[b] + 1;
                queue.push_back(pred);
            }
        }
    }
    distance_valid_ = true;
}

void
CoverageMap::repair_distance(
    const std::vector<BlockId> &lost_sources) const
{
    // Shrinking the source set can only *increase* distances, so a
    // monotone worklist re-relaxation starting from the lost sources
    // converges to the new BFS fixpoint: recompute a block from its
    // successors' current estimates and, on change, requeue its
    // predecessors. A block chasing a ghost cycle (its only support
    // was the lost source) climbs past num_blocks - 1 — the longest
    // possible simple path — and is snapped to unreachable.
    std::deque<BlockId> queue(lost_sources.begin(),
                              lost_sources.end());
    while (!queue.empty()) {
        const BlockId b = queue.front();
        queue.pop_front();
        u32 nd;
        if (block_has_uncovered_out_edge(b)) {
            nd = 0;
        } else {
            u32 best = kUnreachable;
            for (BlockId s : cfg_.blocks()[b].succs) {
                if (distance_[s] != kUnreachable && distance_[s] < best)
                    best = distance_[s];
            }
            nd = best == kUnreachable ? kUnreachable : best + 1;
            if (nd != kUnreachable && nd >= cfg_.num_blocks())
                nd = kUnreachable;
        }
        if (nd == distance_[b])
            continue;
        distance_[b] = nd;
        for (BlockId pred : cfg_.blocks()[b].preds)
            queue.push_back(pred);
    }
#ifndef NDEBUG
    // The repaired array must equal a from-scratch BFS. (This repo
    // keeps asserts on in every build type, so ctest exercises the
    // equivalence on every covered path; true NDEBUG consumers get
    // the incremental path alone.)
    const std::vector<u32> repaired = distance_;
    rebuild_distance();
    assert(repaired == distance_ &&
           "incremental distance repair diverged from full BFS");
#endif
}

u32
CoverageMap::distance_to_uncovered(BlockId block) const
{
    if (!distance_valid_)
        rebuild_distance();
    return distance_[block];
}

CoverageStats
CoverageMap::stats() const
{
    CoverageStats s;
    s.covered_blocks = covered_blocks_;
    s.total_blocks = total_blocks_;
    s.covered_edges = covered_edges_;
    s.total_edges = total_edges_;
    return s;
}

std::optional<bool>
UncoveredEdgeFirst::prefer(const CoverageMap &map,
                           const BranchContext &branch) const
{
    const bool uncovered[2] = {
        !map.edge_covered(branch.from, branch.target[0]),
        !map.edge_covered(branch.from, branch.target[1]),
    };
    if (uncovered[0] != uncovered[1])
        return uncovered[1];
    // Both edges covered (or both new): steer toward the direction
    // that reaches the nearest remaining uncovered edge first.
    const u32 d0 = map.distance_to_uncovered(branch.target[0]);
    const u32 d1 = map.distance_to_uncovered(branch.target[1]);
    if (d0 != d1)
        return d1 < d0;
    return std::nullopt;
}

std::optional<bool>
PathCoverFirst::prefer(const CoverageMap &map,
                       const BranchContext &branch) const
{
    // An uncovered branch edge is new structure *now* — under a tight
    // cap, passing it up for a richer-looking far side often forfeits
    // it for good, so the frontier's strongest rule stays primary.
    const bool uncovered[2] = {
        !map.edge_covered(branch.from, branch.target[0]),
        !map.edge_covered(branch.from, branch.target[1]),
    };
    if (uncovered[0] != uncovered[1])
        return uncovered[1];
    // Both directions equally new: prefer the one lying on more
    // still-uncovered cover chains — it can complete more of the
    // minimal path cover downstream.
    if (map.path_structure() != nullptr) {
        const u32 s0 =
            map.uncovered_cover_paths_through(branch.target[0]);
        const u32 s1 =
            map.uncovered_cover_paths_through(branch.target[1]);
        if (s0 != s1)
            return s1 > s0;
    }
    // Remaining ties: the UncoveredEdgeFirst distance rule.
    const u32 d0 = map.distance_to_uncovered(branch.target[0]);
    const u32 d1 = map.distance_to_uncovered(branch.target[1]);
    if (d0 != d1)
        return d1 < d0;
    return std::nullopt;
}

const char *
schedule_policy_name(SchedulePolicy policy)
{
    switch (policy) {
      case SchedulePolicy::DefaultOrder: return "default";
      case SchedulePolicy::UncoveredEdgeFirst: return "frontier";
      case SchedulePolicy::PathCoverFirst: return "pathcover";
    }
    return "?";
}

const FrontierPolicy *
frontier_policy(SchedulePolicy policy)
{
    static const UncoveredEdgeFirst uncovered_first;
    static const PathCoverFirst path_cover_first;
    switch (policy) {
      case SchedulePolicy::DefaultOrder: return nullptr;
      case SchedulePolicy::UncoveredEdgeFirst: return &uncovered_first;
      case SchedulePolicy::PathCoverFirst: return &path_cover_first;
    }
    return nullptr;
}

} // namespace pokeemu::coverage
