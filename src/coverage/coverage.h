/**
 * @file
 * IR block/edge coverage accounting and frontier scheduling for capped
 * path explorations.
 *
 * The paper's headline fidelity claim — complete path coverage for
 * ~95% of instructions under an 8192-path cap (§6) — needs a
 * measurable analog: when the cap truncates an exploration, *what* did
 * the surviving paths cover, and which semantics blocks did the cap
 * leave dark? This module answers that with two pieces:
 *
 *  - CoverageMap: per-unit basic-block and branch-edge coverage over
 *    the instruction's semantics CFG (analysis::Cfg), updated online
 *    as symexec::PathExplorer completes paths. The denominators are
 *    the CFG's *reachable* blocks and their edges; a complete
 *    exploration can still leave edges dark when a branch direction is
 *    infeasible under the preconditions, which is itself informative.
 *
 *  - FrontierPolicy / FrontierScheduler: a pluggable priority policy
 *    consulted by the explorer whenever both directions of a symbolic
 *    branch are still open in the decision tree. The default
 *    (UncoveredEdgeFirst) is the Empc-style "cover new structure
 *    before re-splitting known structure" heuristic: take the branch
 *    edge that is not yet covered, tie-breaking by the CFG distance to
 *    the nearest uncovered edge (the direction that reaches new
 *    structure at the shallowest depth wins). Decisions depend only on
 *    the coverage state — itself a pure function of the exploration so
 *    far — and the explorer's seeded RNG, so scheduling is a pure
 *    function of (unit, seed) and sharded campaign reports stay
 *    byte-identical.
 */
#ifndef POKEEMU_COVERAGE_COVERAGE_H
#define POKEEMU_COVERAGE_COVERAGE_H

#include <memory>
#include <optional>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/pathstructure.h"

namespace pokeemu::coverage {

using analysis::BlockId;

/** Why a capped exploration stopped short of exhausting its tree
 *  (None = the decision tree was exhausted with no path cut short). */
enum class TruncationReason : u8 {
    None,         ///< Complete: every feasible path enumerated fully.
    PathCap,      ///< The max_paths (or dead-end-run) cap ended it.
    Deadline,     ///< The whole-exploration Deadline expired.
    StepLimit,    ///< At least one path hit the per-path step budget.
    SolverTimeout ///< A solver query exceeded its budget (the unit is
                  ///< quarantined; the reason survives in the ledger).
};

constexpr unsigned kNumTruncationReasons = 5;

const char *truncation_reason_name(TruncationReason reason);

/** Covered/total accounting for one unit's semantics CFG. */
struct CoverageStats
{
    u64 covered_blocks = 0;
    u64 total_blocks = 0; ///< Reachable blocks in the CFG.
    u64 covered_edges = 0;
    u64 total_edges = 0;  ///< Edges between reachable blocks.
};

/**
 * Histogram bucket for one unit's block-coverage ratio. Buckets are
 * 0: 100%, 1: [90,100), 2: [75,90), 3: [50,75), 4: [0,50) — chosen so
 * the first bucket is exactly the paper's "complete coverage" figure.
 */
constexpr unsigned kNumCoverageBuckets = 5;

unsigned coverage_bucket(u64 covered, u64 total);

const char *coverage_bucket_name(unsigned bucket);

/** See file comment. */
class CoverageMap
{
  public:
    /** Build the CFG of @p program and start with nothing covered.
     *  Precondition: the program validates (labels bound in range). */
    explicit CoverageMap(const ir::Program &program);

    const analysis::Cfg &cfg() const { return cfg_; }

    /** Block containing statement @p stmt_index. */
    BlockId block_of(u32 stmt_index) const
    {
        return cfg_.block_of(stmt_index);
    }

    /** Block entered when control reaches statement @p stmt_index, or
     *  nullopt when the statement is not a block leader (straight-line
     *  continuation inside the current block). */
    std::optional<BlockId> entered_block(u32 stmt_index) const;

    bool block_covered(BlockId block) const { return covered_[block]; }
    bool edge_covered(BlockId from, BlockId to) const;

    /**
     * Record one completed path as the sequence of blocks it entered,
     * in execution order (consecutive entries are CFG edges). Marks
     * blocks and edges covered and invalidates the distance cache.
     */
    void cover_path(const std::vector<BlockId> &trace);

    /**
     * CFG distance (in edges) from @p block to the source of the
     * nearest uncovered edge; 0 when @p block itself has an uncovered
     * out-edge, ~u32{0} when no uncovered edge is reachable. Built
     * lazily by one multi-source reverse BFS, then maintained
     * *incrementally* across cover_path calls: covering an edge can
     * only remove BFS sources (blocks with an uncovered out-edge), so
     * distances only grow, and a worklist re-relaxation touching the
     * shrunk sources' fan-in repairs the array without the full
     * rebuild the 8192-cap hot loop cannot afford. Debug builds assert
     * the repaired array equals a from-scratch BFS.
     */
    u32 distance_to_uncovered(BlockId block) const;

    /**
     * Attach the static path-structure analysis (PathCoverFirst's
     * scaffold) and reset the dynamic chain-coverage state to match
     * the blocks/edges covered so far. The map takes ownership;
     * passing null detaches.
     */
    void set_path_structure(
        std::unique_ptr<const analysis::PathStructure> structure);

    const analysis::PathStructure *path_structure() const
    {
        return structure_.get();
    }

    /**
     * Number of still-dirty cover chains reachable from @p block
     * (over non-pruned CFG edges, back edges included). A chain is
     * dirty until every block on it and every chain-internal edge is
     * covered. 0 when no structure is attached.
     */
    u32 uncovered_cover_paths_through(BlockId block) const;

    CoverageStats stats() const;

  private:
    void rebuild_distance() const;
    void repair_distance(const std::vector<BlockId> &lost_sources) const;
    bool block_has_uncovered_out_edge(BlockId block) const;

    analysis::Cfg cfg_;
    std::vector<bool> covered_;              ///< Per block.
    /** covered_edge_[b][i] covers cfg blocks()[b].succs[i]. */
    std::vector<std::vector<bool>> covered_edge_;
    u64 covered_blocks_ = 0;
    u64 covered_edges_ = 0;
    u64 total_blocks_ = 0;
    u64 total_edges_ = 0;
    /** Reverse-BFS distances (see distance_to_uncovered). */
    mutable std::vector<u32> distance_;
    mutable bool distance_valid_ = false;

    /** PathCoverFirst state; null unless set_path_structure ran. */
    std::unique_ptr<const analysis::PathStructure> structure_;
    /** Per chain: uncovered blocks + uncovered chain-internal edges
     *  remaining; the chain is dirty while nonzero. */
    std::vector<u32> chain_dirty_units_;
    /** Bitset of dirty chains (structure_->chain_words() words). */
    std::vector<u64> dirty_chains_;
};

/** Everything a FrontierPolicy may consult about one open branch. */
struct BranchContext
{
    BlockId from = 0;      ///< Block containing the CJmp.
    BlockId target[2] = {0, 0}; ///< Successor block per direction.
    u32 depth = 0;         ///< Decision-tree depth of the branch node.
    bool model_dir = false; ///< Direction the current model supports
                            ///< (feasible without a solver query).
};

/**
 * Pluggable branch-direction priority. Consulted only when both
 * directions are still open in the decision tree; returning nullopt
 * leaves the choice to the explorer's default (seeded random), so a
 * policy can express "no preference" without forfeiting determinism.
 */
class FrontierPolicy
{
  public:
    virtual ~FrontierPolicy() = default;
    virtual std::optional<bool> prefer(const CoverageMap &map,
                                       const BranchContext &branch)
        const = 0;
};

/**
 * The default policy: uncovered-edge-first with a depth tiebreak.
 *  1. If exactly one direction's branch edge is uncovered, take it.
 *  2. Otherwise prefer the direction whose target is CFG-closer to an
 *     uncovered edge (reach new structure at the shallowest depth).
 *  3. Otherwise no preference (explorer default).
 */
class UncoveredEdgeFirst final : public FrontierPolicy
{
  public:
    std::optional<bool> prefer(const CoverageMap &map,
                               const BranchContext &branch)
        const override;
};

/**
 * Empc-style cover-path scheduling over the static minimal path cover
 * (analysis::PathStructure, attached to the CoverageMap by the
 * explorer's owner):
 *  1. Prefer the direction whose branch edge is still uncovered (the
 *     frontier's strongest rule — under a tight cap, new structure
 *     available *now* beats a richer-looking far side).
 *  2. Tie: prefer the direction whose target lies on more
 *     still-uncovered cover chains
 *     (CoverageMap::uncovered_cover_paths_through).
 *  3. Tie: the UncoveredEdgeFirst distance-to-uncovered rule.
 * Without an attached PathStructure, behaves exactly like
 * UncoveredEdgeFirst. Stateless: all state lives in the CoverageMap,
 * itself a pure function of the exploration so far — scheduling stays
 * a pure function of (unit, seed).
 */
class PathCoverFirst final : public FrontierPolicy
{
  public:
    std::optional<bool> prefer(const CoverageMap &map,
                               const BranchContext &branch)
        const override;
};

/** Named policy selection for options structs (fingerprintable). */
enum class SchedulePolicy : u8 {
    DefaultOrder,       ///< Seeded-random direction choice
                        ///< (pre-coverage behaviour).
    UncoveredEdgeFirst, ///< The frontier scheduler (PR 4 default).
    PathCoverFirst      ///< Minimal-path-cover guided scheduling.
};

const char *schedule_policy_name(SchedulePolicy policy);

/** Shared immutable policy instance for @p policy; null for
 *  DefaultOrder (the explorer then never consults a policy). */
const FrontierPolicy *frontier_policy(SchedulePolicy policy);

} // namespace pokeemu::coverage

#endif // POKEEMU_COVERAGE_COVERAGE_H
