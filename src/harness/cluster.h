/**
 * @file
 * Root-cause clustering of behaviour differences (paper §6.2: "we
 * then clustered the differences according to root cause; this
 * clustering identified different executed paths that triggered the
 * same behavior difference").
 *
 * Classification is rule-based over the difference's shape (which
 * fields differ, exception mismatches, where memory differences land)
 * and the instruction class; differences that match no rule fall into
 * signature buckets so nothing is silently dropped.
 */
#ifndef POKEEMU_HARNESS_CLUSTER_H
#define POKEEMU_HARNESS_CLUSTER_H

#include <functional>
#include <iosfwd>
#include <map>
#include <set>

#include "harness/filter.h"

namespace pokeemu::harness {

/** One difference record fed to the clusterer. */
struct Difference
{
    u64 test_id;
    const arch::InsnDesc *desc;
    std::string root_cause; ///< Set by classify().
};

/** One cluster in the final report (paper's root-cause analysis). */
struct Cluster
{
    std::string root_cause;
    u64 count = 0;
    std::set<std::string> mnemonics;
    u64 example_test = 0;
};

/** Classify one filtered difference; see file comment. */
std::string classify_difference(const arch::DecodedInsn &insn,
                                const arch::SnapshotDiff &diff,
                                const arch::Snapshot &a,
                                const arch::Snapshot &b);

/** Accumulates differences into clusters. */
class RootCauseClusterer
{
  public:
    /** Record a (filtered, non-empty) difference. */
    void add(u64 test_id, const arch::DecodedInsn &insn,
             const arch::SnapshotDiff &diff, const arch::Snapshot &a,
             const arch::Snapshot &b);

    /**
     * Record a difference with a pre-computed root cause — used for
     * divergences that are not state diffs, e.g. "one backend timed
     * out" (where snapshot comparison would be spurious).
     */
    void add_named(u64 test_id, const arch::DecodedInsn &insn,
                   const std::string &cause);

    /** Clusters sorted by descending population. */
    std::vector<Cluster> clusters() const;

    /**
     * Fold @p other into this clusterer, rewriting its test ids
     * through @p remap_test_id (shard-local -> campaign-global).
     * Counts add, mnemonic sets union, and a cluster's example becomes
     * the smallest remapped id seen — so merging per-shard clusterers
     * reproduces exactly what a single sequential run would have
     * recorded, regardless of merge order.
     */
    void merge(const RootCauseClusterer &other,
               const std::function<u64(u64)> &remap_test_id);

    /// @name Checkpoint support (whitespace-separated text rows).
    /// @{
    void save(std::ostream &out) const;
    /** Replaces contents; throws std::logic_error on malformed input. */
    void load(std::istream &in);
    /// @}

    u64 total() const { return total_; }

    /** Render the cluster table (benches print this). */
    std::string to_string() const;

  private:
    std::map<std::string, Cluster> clusters_;
    u64 total_ = 0;
};

} // namespace pokeemu::harness

#endif // POKEEMU_HARNESS_CLUSTER_H
