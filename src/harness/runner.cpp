#include "harness/runner.h"

#include "testgen/testgen.h"

namespace pokeemu::harness {

namespace {

support::FaultSite
injection_site(Backend backend)
{
    switch (backend) {
      case Backend::HiFi: return support::FaultSite::BackendHiFi;
      case Backend::LoFi: return support::FaultSite::BackendLoFi;
      case Backend::Hardware: return support::FaultSite::BackendHw;
    }
    return support::FaultSite::BackendHw;
}

/** The runner owns the timing switch: merge it into the Hi-Fi options
 *  before the member is constructed (Config::timing is authoritative
 *  so callers cannot half-enable accounting via hifi_options). */
hifi::SemanticsOptions
hifi_options_of(const TestRunner::Config &config)
{
    hifi::SemanticsOptions options = config.hifi_options;
    options.timing = config.timing;
    return options;
}

} // namespace

const char *
backend_name(Backend backend)
{
    switch (backend) {
      case Backend::HiFi: return "hifi";
      case Backend::LoFi: return "lofi";
      case Backend::Hardware: return "hardware";
    }
    return "?";
}

TestRunner::TestRunner() : TestRunner(Config{}) {}

TestRunner::TestRunner(const Config &config)
    : config_(config), hifi_(hifi_options_of(config)),
      lofi_(config.bugs, config.lofi_misbehavior)
{
    lofi_.set_cycle_accounting(config.timing);
    vmm_.set_cycle_accounting(config.timing);
}

BackendRun
TestRunner::run_one(Backend backend,
                    const std::vector<u8> &test_program)
{
    BackendRun run;
    run_one_into(backend, test_program, run);
    return run;
}

void
TestRunner::run_one_into(Backend backend,
                         const std::vector<u8> &test_program,
                         BackendRun &out)
{
    if (config_.injector) {
        config_.injector->maybe_fail(
            injection_site(backend),
            std::string("runner: ") + backend_name(backend));
    }
    if (config_.injector && backend == Backend::LoFi) {
        // Chaos sites for the Stage::Backend containment path: the
        // injected fault is re-classed so the pipeline quarantines it
        // exactly like a genuinely misbehaving variant backend.
        try {
            config_.injector->maybe_fail(
                support::FaultSite::BackendCrash, "runner: lofi");
        } catch (const support::FaultError &e) {
            throw support::FaultError(
                support::FaultClass::BackendCrash, e.what());
        }
        try {
            config_.injector->maybe_fail(
                support::FaultSite::BackendHang, "runner: lofi");
        } catch (const support::FaultError &e) {
            throw support::FaultError(
                support::FaultClass::BackendHang, e.what());
        }
    }

    // Build the test image in the reusable buffer: copy the immutable
    // baseline template, then install the test program.
    const std::vector<u8> &tpl = testgen::baseline_ram_template();
    image_.assign(tpl.begin(), tpl.end());
    // An oversized program would overrun the image (UB in a build
    // without asserts); reject it as a quarantinable per-test fault.
    if (test_program.size() > testgen::kMaxTestProgramBytes ||
        arch::layout::kPhysTestCode + test_program.size() >
            image_.size()) {
        throw support::FaultError(
            support::FaultClass::Execution,
            "runner: test program (" +
                std::to_string(test_program.size()) +
                " bytes) exceeds the test-code region");
    }
    std::copy(test_program.begin(), test_program.end(),
              image_.begin() + arch::layout::kPhysTestCode);
    const arch::CpuState reset = testgen::make_reset_state();

    switch (backend) {
      case Backend::HiFi: {
        hifi_.reset(reset, image_);
        const auto stop = hifi_.run(config_.max_insns);
        out.timed_out = stop == hifi::StopReason::InsnLimit;
        hifi_.snapshot_into(out.snapshot);
        out.insns = hifi_.insn_count();
        break;
      }
      case Backend::LoFi: {
        lofi_.reset(reset, image_);
        // Per-run watchdog: bounds the variant backend itself, so a
        // hung lo-fi variant is quarantined per-test instead of
        // stalling the campaign (see Config).
        support::Deadline watchdog = support::Deadline::with(
            config_.watchdog_wall_ms, config_.watchdog_insns);
        const auto stop = lofi_.run(config_.max_insns, &watchdog);
        out.timed_out = stop == backend::StopReason::InsnLimit;
        lofi_.snapshot_into(out.snapshot);
        out.insns = lofi_.insn_count();
        break;
      }
      case Backend::Hardware: {
        vmm_.run_test_into(reset, image_, config_.max_insns,
                           guest_run_);
        out.timed_out = guest_run_.trap == hw::TrapKind::Timeout;
        std::swap(out.snapshot, guest_run_.snapshot);
        out.insns = guest_run_.insns_executed;
        break;
      }
    }

    // Shape-validate every backend's snapshot before it reaches the
    // differ: a corrupting variant must surface as a quarantinable
    // per-test fault, not as downstream misbehaviour in comparison.
    if (out.snapshot.ram.size() != arch::kPhysMemSize) {
        throw support::FaultError(
            support::FaultClass::SnapshotCorrupt,
            std::string("runner: ") + backend_name(backend) +
                " snapshot has wrong RAM size");
    }
}

ThreeWayResult
TestRunner::run(const std::vector<u8> &test_program)
{
    ThreeWayResult result;
    run_one_into(Backend::HiFi, test_program, result.hifi);
    run_one_into(Backend::LoFi, test_program, result.lofi);
    run_one_into(Backend::Hardware, test_program, result.hw);
    return result;
}

} // namespace pokeemu::harness
