/**
 * @file
 * Undefined-behaviour filtering (paper §6.2: "we used scripts to
 * filter out differences due to undefined behaviors").
 *
 * x86 documents several flag results (and the BSF/BSR destination on a
 * zero source) as undefined; different CPUs and emulators legitimately
 * disagree there, so such differences are not bugs. The filter knows,
 * per instruction class, which EFLAGS bits are documented-undefined
 * and removes differences that are explained entirely by them.
 */
#ifndef POKEEMU_HARNESS_FILTER_H
#define POKEEMU_HARNESS_FILTER_H

#include "arch/decoder.h"
#include "arch/snapshot.h"

namespace pokeemu::harness {

/** EFLAGS bits documented-undefined after @p op (0 if none). */
u32 undefined_flags_mask(arch::Op op);

/**
 * Status-flag bits the dataflow flag oracle
 * (analysis::flag_write_summary) may classify as conditionally written
 * (may-write but not must-write) for @p op even though they are not
 * documented-undefined. The cross-check in `ir_lint --flags-oracle`
 * accepts may-minus-must bits explained by either mask; anything else
 * is a real disagreement between the derived oracle and this table.
 *
 * Entries exist where the semantics legitimately keep a flag on some
 * completing path — e.g. shifts and rotates preserve every flag when
 * the masked count is zero, so even their documented-defined flags are
 * only conditionally written.
 */
u32 flags_oracle_allowlist(arch::Op op);

struct FilterResult
{
    /** The difference with undefined-behaviour parts removed. */
    arch::SnapshotDiff remaining;
    /** True if anything was removed. */
    bool removed_any = false;

    /** The original diff was entirely undefined behaviour. */
    bool fully_filtered() const
    {
        return removed_any && remaining.empty();
    }
};

/**
 * Filter @p diff (from comparing @p a and @p b after executing
 * @p insn) down to the differences that indicate real divergence.
 */
FilterResult filter_undefined(const arch::DecodedInsn &insn,
                              const arch::Snapshot &a,
                              const arch::Snapshot &b,
                              const arch::SnapshotDiff &diff);

} // namespace pokeemu::harness

#endif // POKEEMU_HARNESS_FILTER_H
