/**
 * @file
 * Test-program execution across the three backends (paper §5,
 * Figure 1(4)): each test boots from the reset state with the test
 * image installed, runs until hlt/exception/timeout, and yields a
 * snapshot per backend.
 */
#ifndef POKEEMU_HARNESS_RUNNER_H
#define POKEEMU_HARNESS_RUNNER_H

#include "hifi/hifi_emulator.h"
#include "hw/vmm.h"
#include "lofi/lofi_emulator.h"
#include "support/fault.h"
#include "testgen/baseline.h"

namespace pokeemu::harness {

/** The systems under comparison. */
enum class Backend : u8 { HiFi, LoFi, Hardware };

const char *backend_name(Backend backend);

/** One backend's view of one test. */
struct BackendRun
{
    arch::Snapshot snapshot;
    bool timed_out = false;
    u64 insns = 0;
};

/** All three backends' views of one test. */
struct ThreeWayResult
{
    BackendRun hifi;
    BackendRun lofi;
    BackendRun hw;
};

/** See file comment. */
class TestRunner
{
  public:
    struct Config
    {
        lofi::BugConfig bugs{};
        hifi::SemanticsOptions hifi_options{};
        u64 max_insns = 1u << 14;
        /** Chaos hook: one occurrence per backend run (not owned). */
        support::FaultInjector *injector = nullptr;
        /** Misbehaviour class of the Lo-Fi variant under test. */
        lofi::Misbehavior lofi_misbehavior = lofi::Misbehavior::None;
        /**
         * Per-run watchdog around the Lo-Fi backend: instruction
         * budget (0 = unlimited) and a wall-clock cap in ms (0 =
         * unlimited). The instruction budget is deterministic — a
         * hang trips at the same point on every shard layout — while
         * the wall cap is a machine-dependent safety net, so only the
         * budget should be armed where byte-identical reports matter.
         */
        u64 watchdog_insns = 0;
        u64 watchdog_wall_ms = 0;
        /**
         * Enable cycle accounting (timing/cost_model.h) on all three
         * backends; per-run totals ride along in each BackendRun
         * snapshot. Off by default: with it off every snapshot carries
         * cycles == 0 and reports are byte-identical to a build
         * without the timing subsystem.
         */
        bool timing = false;
    };

    TestRunner(); ///< Default configuration (all Lo-Fi bugs seeded).
    explicit TestRunner(const Config &config);

    /** Run @p test_program (bytes for kPhysTestCode) everywhere. */
    ThreeWayResult run(const std::vector<u8> &test_program);

    /** Run on a single backend (benches time these separately). */
    BackendRun run_one(Backend backend,
                       const std::vector<u8> &test_program);

    /**
     * Like run_one, but snapshots into @p out's reusable buffers.
     * Tests run by the thousand and a fresh 4 MiB snapshot allocation
     * per run would dominate the measured execution cost.
     *
     * Throws FaultError(Execution) for a test program too large for
     * the test-code region (quarantinable per-test fault rather than
     * an image overrun).
     */
    void run_one_into(Backend backend,
                      const std::vector<u8> &test_program,
                      BackendRun &out);

    const hw::Vmm &vmm() const { return vmm_; }
    const lofi::LoFiEmulator &lofi() const { return lofi_; }
    const hifi::HiFiEmulator &hifi() const { return hifi_; }

  private:
    Config config_;
    hifi::HiFiEmulator hifi_; ///< Reused: keeps its semantics cache.
    lofi::LoFiEmulator lofi_;
    hw::Vmm vmm_;
    std::vector<u8> image_;   ///< Reusable test-image buffer.
    hw::GuestRun guest_run_;  ///< Reusable hardware-run buffer.
};

} // namespace pokeemu::harness

#endif // POKEEMU_HARNESS_RUNNER_H
