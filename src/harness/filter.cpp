#include "harness/filter.h"

namespace pokeemu::harness {

using arch::Op;

u32
undefined_flags_mask(Op op)
{
    switch (op) {
      // Shifts and double shifts: AF always undefined; OF undefined
      // for counts other than 1.
      case Op::ShiftRm8Imm8: case Op::ShiftRm32Imm8:
      case Op::ShiftRm8One: case Op::ShiftRm32One:
      case Op::ShiftRm8Cl: case Op::ShiftRm32Cl:
      case Op::ShldImm8: case Op::ShldCl:
      case Op::ShrdImm8: case Op::ShrdCl:
        return arch::kFlagAf | arch::kFlagOf;
      // Multiplies: SF/ZF/AF/PF undefined.
      case Op::Grp3MulRm8: case Op::Grp3MulRm32:
      case Op::Grp3ImulRm8: case Op::Grp3ImulRm32:
      case Op::ImulR32Rm32: case Op::ImulR32Rm32Imm32:
      case Op::ImulR32Rm32Imm8:
        return arch::kFlagSf | arch::kFlagZf | arch::kFlagAf |
               arch::kFlagPf;
      // Divides: all six status flags undefined.
      case Op::Grp3DivRm8: case Op::Grp3DivRm32:
      case Op::Grp3IdivRm8: case Op::Grp3IdivRm32:
        return arch::kStatusFlags;
      // bsf/bsr: CF/OF/SF/AF/PF undefined (ZF is defined).
      case Op::Bsf: case Op::Bsr:
        return arch::kFlagCf | arch::kFlagOf | arch::kFlagSf |
               arch::kFlagAf | arch::kFlagPf;
      default:
        return 0;
    }
}

u32
flags_oracle_allowlist(Op op)
{
    switch (op) {
      // Shifts and rotates: a masked count of zero keeps every flag,
      // so all written flags are conditional (may but not must). The
      // rotates also never write OF at all — it is only defined for
      // count 1 and these semantics leave it unchanged throughout.
      case Op::ShiftRm8Imm8: case Op::ShiftRm32Imm8:
      case Op::ShiftRm8One: case Op::ShiftRm32One:
      case Op::ShiftRm8Cl: case Op::ShiftRm32Cl:
      case Op::ShldImm8: case Op::ShldCl:
      case Op::ShrdImm8: case Op::ShrdCl:
        return arch::kStatusFlags;
      // Divides: all six status flags are documented-undefined and
      // the semantics pick the "leave unchanged" instance, so none of
      // them is ever written.
      case Op::Grp3DivRm8: case Op::Grp3DivRm32:
      case Op::Grp3IdivRm8: case Op::Grp3IdivRm32:
        return arch::kStatusFlags;
      default:
        return 0;
    }
}

FilterResult
filter_undefined(const arch::DecodedInsn &insn, const arch::Snapshot &a,
                 const arch::Snapshot &b,
                 const arch::SnapshotDiff &diff)
{
    FilterResult result;
    const u32 undef = undefined_flags_mask(insn.desc->op);

    // BSF/BSR with a zero source leave the destination undefined; both
    // sides setting ZF signals that case.
    const bool bsx_zero_source =
        (insn.desc->op == Op::Bsf || insn.desc->op == Op::Bsr) &&
        (a.cpu.eflags & arch::kFlagZf) &&
        (b.cpu.eflags & arch::kFlagZf);
    const char *dest_name =
        insn.has_modrm ? arch::gpr_name(insn.reg) : "";

    for (const arch::FieldDiff &f : diff.cpu) {
        if (f.field == "eflags" && undef != 0) {
            const u32 delta = static_cast<u32>(f.a ^ f.b);
            if ((delta & ~undef) == 0) {
                result.removed_any = true;
                continue;
            }
        }
        if (bsx_zero_source && f.field == dest_name) {
            result.removed_any = true;
            continue;
        }
        result.remaining.cpu.push_back(f);
    }
    result.remaining.mem = diff.mem;
    result.remaining.mem_total = diff.mem_total;
    return result;
}

} // namespace pokeemu::harness
