#include "harness/cluster.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "arch/layout.h"

namespace pokeemu::harness {

using arch::Op;

namespace {

bool
has_field(const arch::SnapshotDiff &diff, const std::string &name)
{
    for (const auto &f : diff.cpu) {
        if (f.field == name)
            return true;
    }
    return false;
}

bool
mem_only_in(const arch::SnapshotDiff &diff, u32 lo, u32 hi)
{
    if (diff.mem_total == 0 || diff.mem.size() < diff.mem_total)
        return false; // Unknown addresses beyond the cap: be strict.
    return std::all_of(diff.mem.begin(), diff.mem.end(),
                       [&](u32 a) { return a >= lo && a < hi; });
}

bool
is_far_load(Op op)
{
    return op == Op::Les || op == Op::Lds || op == Op::Lss ||
           op == Op::Lfs || op == Op::Lgs;
}

bool
is_string_op(Op op)
{
    switch (op) {
      case Op::Movs8: case Op::Movs32: case Op::Cmps8: case Op::Cmps32:
      case Op::Stos8: case Op::Stos32: case Op::Lods8: case Op::Lods32:
      case Op::Scas8: case Op::Scas32:
        return true;
      default:
        return false;
    }
}

} // namespace

std::string
classify_difference(const arch::DecodedInsn &insn,
                    const arch::SnapshotDiff &diff,
                    const arch::Snapshot &a, const arch::Snapshot &b)
{
    const Op op = insn.desc->op;
    const bool exc_mismatch =
        a.cpu.exception.vector != b.cpu.exception.vector;
    const bool one_side_faults =
        a.cpu.exception.present() != b.cpu.exception.present();

    // Alias encodings: exactly one side decodes to #UD (the other may
    // execute or fault on the instruction's real semantics).
    if (insn.desc->is_alias &&
        (a.cpu.exception.vector == arch::kExcUd) !=
            (b.cpu.exception.vector == arch::kExcUd)) {
        return "rejects-valid-encoding";
    }
    // rdmsr/wrmsr of invalid MSRs.
    if ((op == Op::Rdmsr || op == Op::Wrmsr) && one_side_faults &&
        (a.cpu.exception.vector == arch::kExcGp ||
         b.cpu.exception.vector == arch::kExcGp)) {
        return "rdmsr-no-gp-on-invalid-msr";
    }
    // MSR store divergence: wrmsr completed on both sides but the MSR
    // file disagrees (e.g. the seeded 16-bit-truncating write path).
    if (op == Op::Wrmsr && diff.mem_total == 0 && !diff.cpu.empty() &&
        std::all_of(diff.cpu.begin(), diff.cpu.end(),
                    [](const arch::FieldDiff &f) {
                        return f.field.rfind("msr.", 0) == 0;
                    })) {
        return "msr-write-truncated";
    }
    // Far-pointer fetch order: differing fault addresses, fault
    // vectors, or page-table accessed bits on a far load.
    if (is_far_load(op) &&
        (has_field(diff, "cr2") || exc_mismatch ||
         mem_only_in(diff, arch::layout::kPhysPageDir,
                     arch::layout::kPhysPageTable + 0x1000))) {
        return "far-pointer-fetch-order";
    }
    // iret pop order: the read order changes which check faults
    // first, so any exception divergence (or differing CR2/page
    // accesses under the same #PF) on iret lands here.
    if (op == Op::Iret &&
        (exc_mismatch ||
         (a.cpu.exception.vector == arch::kExcPf &&
          b.cpu.exception.vector == arch::kExcPf &&
          (has_field(diff, "cr2") || diff.mem_total > 0)))) {
        return "iret-pop-order";
    }
    // Segment checks: exactly one side raises #GP/#SS — the other
    // either executes or faults later (e.g. #PF from the page walk the
    // skipped check would have prevented). This precedes the atomicity
    // rules: a skipped segment check on leave/cmpxchg is the
    // segment-check bug, not the atomicity one.
    {
        auto is_seg_fault = [](const arch::Snapshot &s) {
            return s.cpu.exception.vector == arch::kExcGp ||
                   s.cpu.exception.vector == arch::kExcSs;
        };
        if (exc_mismatch && is_seg_fault(a) != is_seg_fault(b))
            return "segment-limits-and-rights-not-enforced";
    }
    // leave atomicity: both fault but ESP disagrees.
    if (op == Op::Leave && has_field(diff, "esp") &&
        a.cpu.exception.present() && b.cpu.exception.present()) {
        return "atomicity-violation-leave";
    }
    // cmpxchg atomicity: any surviving difference (fault mismatch,
    // accumulator corruption, fault error-code/flags divergence from
    // the reordered permission check).
    if (op == Op::CmpxchgRm8R8 || op == Op::CmpxchgRm32R32)
        return "atomicity-violation-cmpxchg";
    if (one_side_faults) {
        const u8 vec = a.cpu.exception.present()
            ? a.cpu.exception.vector
            : b.cpu.exception.vector;
        if (vec == arch::kExcPf && !is_string_op(op))
            return "page-protection-divergence";
    }
    // Page-walk accessed/dirty bits: registers agree everywhere and
    // the only memory divergence is inside the page-table structures —
    // the soft-MMU forgot to set PTE/PDE A/D bits. Ordered after the
    // far-load rule: PT-only divergence on a far load is fetch-order
    // evidence there.
    if (diff.cpu.empty() && diff.mem_total > 0 &&
        mem_only_in(diff, arch::layout::kPhysPageDir,
                    arch::layout::kPhysPageTable + 0x1000)) {
        return "pte-accessed-dirty-not-set";
    }
    // Accessed flag: differences confined to GDT bytes and/or the
    // cached access field.
    {
        const u32 gdt_lo = arch::layout::kPhysGdt;
        const u32 gdt_hi =
            gdt_lo + 8 * arch::layout::kGdtEntries;
        const bool mem_gdt_only =
            diff.mem_total == 0 || mem_only_in(diff, gdt_lo, gdt_hi);
        const bool all_access_fields = std::all_of(
            diff.cpu.begin(), diff.cpu.end(),
            [](const arch::FieldDiff &f) {
                return f.field.rfind("seg.", 0) == 0 &&
                       f.field.find(".access") != std::string::npos;
            });
        const bool nonempty =
            !diff.cpu.empty() || diff.mem_total > 0;
        if (nonempty && mem_gdt_only && all_access_fields)
            return "segment-accessed-flag-not-set";
    }
    // Undefined flags that survived filtering would have been removed;
    // a pure eflags diff here is a real flags divergence.
    if (diff.mem_total == 0 && diff.cpu.size() == 1 &&
        diff.cpu[0].field == "eflags") {
        return "status-flags-divergence";
    }
    if (exc_mismatch)
        return "exception-divergence";

    // Fallback: signature bucket by differing field names.
    std::string sig = "other:";
    for (const auto &f : diff.cpu)
        sig += f.field + ",";
    if (diff.mem_total > 0)
        sig += "mem";
    return sig;
}

void
RootCauseClusterer::add(u64 test_id, const arch::DecodedInsn &insn,
                        const arch::SnapshotDiff &diff,
                        const arch::Snapshot &a, const arch::Snapshot &b)
{
    add_named(test_id, insn, classify_difference(insn, diff, a, b));
}

void
RootCauseClusterer::add_named(u64 test_id, const arch::DecodedInsn &insn,
                              const std::string &cause)
{
    Cluster &c = clusters_[cause];
    if (c.count == 0) {
        c.root_cause = cause;
        c.example_test = test_id;
    }
    ++c.count;
    c.mnemonics.insert(insn.desc->mnemonic);
    ++total_;
}

void
RootCauseClusterer::merge(const RootCauseClusterer &other,
                          const std::function<u64(u64)> &remap_test_id)
{
    for (const auto &[cause, oc] : other.clusters_) {
        const u64 example = remap_test_id(oc.example_test);
        Cluster &c = clusters_[cause];
        if (c.count == 0) {
            c.root_cause = cause;
            c.example_test = example;
        } else {
            c.example_test = std::min(c.example_test, example);
        }
        c.count += oc.count;
        c.mnemonics.insert(oc.mnemonics.begin(), oc.mnemonics.end());
        total_ += oc.count;
    }
}

void
RootCauseClusterer::save(std::ostream &out) const
{
    out << "clusters " << clusters_.size() << "\n";
    for (const auto &[cause, c] : clusters_) {
        out << cause << " " << c.count << " " << c.example_test << " "
            << c.mnemonics.size();
        for (const auto &m : c.mnemonics)
            out << " " << m;
        out << "\n";
    }
}

void
RootCauseClusterer::load(std::istream &in)
{
    clusters_.clear();
    total_ = 0;
    std::string tag;
    std::size_t n = 0;
    if (!(in >> tag >> n) || tag != "clusters")
        throw std::logic_error("cluster checkpoint: bad header");
    for (std::size_t i = 0; i < n; ++i) {
        Cluster c;
        std::size_t nmnem = 0;
        if (!(in >> c.root_cause >> c.count >> c.example_test >> nmnem))
            throw std::logic_error("cluster checkpoint: truncated row");
        for (std::size_t m = 0; m < nmnem; ++m) {
            std::string mnem;
            if (!(in >> mnem))
                throw std::logic_error(
                    "cluster checkpoint: truncated mnemonics");
            c.mnemonics.insert(mnem);
        }
        total_ += c.count;
        clusters_.emplace(c.root_cause, std::move(c));
    }
}

std::vector<Cluster>
RootCauseClusterer::clusters() const
{
    std::vector<Cluster> out;
    out.reserve(clusters_.size());
    for (const auto &[_, c] : clusters_)
        out.push_back(c);
    std::sort(out.begin(), out.end(),
              [](const Cluster &x, const Cluster &y) {
                  return x.count > y.count;
              });
    return out;
}

std::string
RootCauseClusterer::to_string() const
{
    std::ostringstream os;
    os << "root cause                                   tests  "
          "instructions\n";
    for (const Cluster &c : clusters()) {
        os << "  " << c.root_cause;
        for (std::size_t i = c.root_cause.size(); i < 43; ++i)
            os << ' ';
        os << c.count << "  {";
        std::size_t shown = 0;
        for (const auto &m : c.mnemonics) {
            if (shown++)
                os << " ";
            if (shown > 8) {
                os << "...";
                break;
            }
            os << m;
        }
        os << "}\n";
    }
    return os.str();
}

} // namespace pokeemu::harness
