/**
 * @file
 * Final-state snapshots and their comparison.
 *
 * After a test program halts (or faults), every backend produces a
 * Snapshot of the CPU state and the full physical memory (paper §5:
 * "we generate a snapshot of the state of the CPU and of the physical
 * memory", with a common file format to simplify comparison — here the
 * common format is this struct). diff_snapshots is the core of the
 * difference-analysis step (paper Figure 1(5)).
 */
#ifndef POKEEMU_ARCH_SNAPSHOT_H
#define POKEEMU_ARCH_SNAPSHOT_H

#include <string>
#include <vector>

#include "arch/state.h"

namespace pokeemu::arch {

/** CPU + physical memory at the end of a test run. */
struct Snapshot
{
    CpuState cpu;
    std::vector<u8> ram; ///< kPhysMemSize bytes.
    /** Cycles charged over the run (timing/cost_model.h); 0 when the
     *  backend ran without cycle accounting. Deliberately ignored by
     *  diff_snapshots: timing is its own difference class
     *  (TimingDivergence), compared by the harness only on runs whose
     *  architectural state already agrees. */
    u64 cycles = 0;
};

/** One differing CPU field. */
struct FieldDiff
{
    std::string field; ///< e.g. "eax", "eflags", "seg.ss.limit".
    u64 a = 0;
    u64 b = 0;
};

/** Result of comparing two snapshots. */
struct SnapshotDiff
{
    std::vector<FieldDiff> cpu;
    /** Differing memory byte addresses (capped at kMaxMemDiffs). */
    std::vector<u32> mem;
    u64 mem_total = 0; ///< Total differing bytes (not capped).

    static constexpr std::size_t kMaxMemDiffs = 64;

    bool empty() const { return cpu.empty() && mem_total == 0; }

    std::string to_string() const;
};

/** Field-by-field and byte-by-byte comparison. */
SnapshotDiff diff_snapshots(const Snapshot &a, const Snapshot &b);

} // namespace pokeemu::arch

#endif // POKEEMU_ARCH_SNAPSHOT_H
