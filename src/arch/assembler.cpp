#include "arch/assembler.h"

namespace pokeemu::arch {

void
Assembler::imm32(u32 v)
{
    code_.push_back(static_cast<u8>(v));
    code_.push_back(static_cast<u8>(v >> 8));
    code_.push_back(static_cast<u8>(v >> 16));
    code_.push_back(static_cast<u8>(v >> 24));
}

void
Assembler::mov_r32_imm32(Gpr r, u32 imm)
{
    code_.push_back(static_cast<u8>(0xb8 + r));
    imm32(imm);
}

void
Assembler::mov_sreg_r16(Seg s, Gpr r)
{
    code_.push_back(0x8e);
    code_.push_back(static_cast<u8>(0xc0 | (s << 3) | r));
}

void
Assembler::mov_mem_imm32(u32 addr, u32 imm)
{
    // c7 /0 with mod=00 rm=101 (disp32 absolute).
    code_.push_back(0xc7);
    code_.push_back(0x05);
    imm32(addr);
    imm32(imm);
}

void
Assembler::mov_mem_imm8(u32 addr, u8 imm)
{
    code_.push_back(0xc6);
    code_.push_back(0x05);
    imm32(addr);
    code_.push_back(imm);
}

void
Assembler::mov_mem_r32(u32 addr, Gpr r)
{
    code_.push_back(0x89);
    code_.push_back(static_cast<u8>(0x05 | (r << 3)));
    imm32(addr);
}

void
Assembler::mov_r32_mem(Gpr r, u32 addr)
{
    code_.push_back(0x8b);
    code_.push_back(static_cast<u8>(0x05 | (r << 3)));
    imm32(addr);
}

void
Assembler::push_imm32(u32 imm)
{
    code_.push_back(0x68);
    imm32(imm);
}

void
Assembler::push_r32(Gpr r)
{
    code_.push_back(static_cast<u8>(0x50 + r));
}

void
Assembler::pop_r32(Gpr r)
{
    code_.push_back(static_cast<u8>(0x58 + r));
}

void
Assembler::pushfd()
{
    code_.push_back(0x9c);
}

void
Assembler::popfd()
{
    code_.push_back(0x9d);
}

void
Assembler::lgdt(u32 addr)
{
    code_.push_back(0x0f);
    code_.push_back(0x01);
    code_.push_back(0x15); // mod=00 reg=2 rm=101
    imm32(addr);
}

void
Assembler::lidt(u32 addr)
{
    code_.push_back(0x0f);
    code_.push_back(0x01);
    code_.push_back(0x1d); // mod=00 reg=3 rm=101
    imm32(addr);
}

void
Assembler::mov_cr_r32(unsigned crn, Gpr r)
{
    code_.push_back(0x0f);
    code_.push_back(0x22);
    code_.push_back(static_cast<u8>(0xc0 | (crn << 3) | r));
}

void
Assembler::mov_r32_cr(Gpr r, unsigned crn)
{
    code_.push_back(0x0f);
    code_.push_back(0x20);
    code_.push_back(static_cast<u8>(0xc0 | (crn << 3) | r));
}

void
Assembler::wrmsr()
{
    code_.push_back(0x0f);
    code_.push_back(0x30);
}

void
Assembler::hlt()
{
    code_.push_back(0xf4);
}

void
Assembler::jmp_abs(u32 target)
{
    code_.push_back(0xe9);
    // rel32 is relative to the end of this 5-byte instruction.
    imm32(target - (pc() - 1 + 5));
}

void
Assembler::nop()
{
    code_.push_back(0x90);
}

} // namespace pokeemu::arch
