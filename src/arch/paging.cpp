#include "arch/paging.h"

namespace pokeemu::arch {

namespace {

u32
read32_phys(const u8 *ram, u32 phys)
{
    const u32 a = phys & (kPhysMemSize - 1);
    return static_cast<u32>(ram[a]) | (static_cast<u32>(ram[a + 1]) << 8) |
           (static_cast<u32>(ram[a + 2]) << 16) |
           (static_cast<u32>(ram[a + 3]) << 24);
}

void
write32_phys(u8 *ram, u32 phys, u32 v)
{
    const u32 a = phys & (kPhysMemSize - 1);
    ram[a] = static_cast<u8>(v);
    ram[a + 1] = static_cast<u8>(v >> 8);
    ram[a + 2] = static_cast<u8>(v >> 16);
    ram[a + 3] = static_cast<u8>(v >> 24);
}

} // namespace

TranslateResult
translate_linear(u8 *ram, u32 cr3, u32 linear, AccessIntent intent,
                 bool wp, bool set_accessed_dirty)
{
    TranslateResult result;
    const u32 err_base = (intent.write ? kPfErrWrite : 0) |
                         (intent.user ? kPfErrUser : 0);

    const u32 pde_addr =
        (cr3 & kPteFrameMask) + (((linear >> 22) & 0x3ff) << 2);
    const u32 pde = read32_phys(ram, pde_addr);
    if (!(pde & kPtePresent)) {
        result.pf_error = err_base;
        return result;
    }

    const u32 pte_addr =
        (pde & kPteFrameMask) + (((linear >> 12) & 0x3ff) << 2);
    const u32 pte = read32_phys(ram, pte_addr);
    if (!(pte & kPtePresent)) {
        result.pf_error = err_base;
        return result;
    }

    // Combined permissions: most restrictive of PDE and PTE.
    const bool user_ok = (pde & kPteUser) && (pte & kPteUser);
    const bool rw_ok = (pde & kPteRw) && (pte & kPteRw);
    if (intent.user && !user_ok) {
        result.pf_error = err_base | kPfErrPresent;
        return result;
    }
    if (intent.write && !rw_ok && (intent.user || wp)) {
        result.pf_error = err_base | kPfErrPresent;
        return result;
    }

    if (set_accessed_dirty) {
        if (!(pde & kPteAccessed))
            write32_phys(ram, pde_addr, pde | kPteAccessed);
        u32 new_pte = pte | kPteAccessed;
        if (intent.write)
            new_pte |= kPteDirty;
        if (new_pte != pte)
            write32_phys(ram, pte_addr, new_pte);
    }

    result.ok = true;
    result.phys = (pte & kPteFrameMask) | (linear & 0xfff);
    return result;
}

} // namespace pokeemu::arch
