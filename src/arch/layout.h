/**
 * @file
 * Byte layout of the VX86 machine state image and the address-space
 * map IR programs execute in.
 *
 * The Hi-Fi emulator keeps guest state in "host memory" exactly like
 * Bochs keeps BX_CPU in its address space; PokeEMU marks parts of that
 * memory symbolic by address (paper §3.3.1, Figure 3). This header is
 * the single source of truth for those addresses.
 *
 * IR address space:
 *   [kCpuBase,   kCpuBase + kCpuStateSize)   CPU state image
 *   [kInsnBufBase, +16)                      instruction byte buffer
 *   [kGuestPhysBase, + kPhysMemSize)         guest physical memory
 *
 * All fields are little-endian.
 */
#ifndef POKEEMU_ARCH_LAYOUT_H
#define POKEEMU_ARCH_LAYOUT_H

#include "arch/state.h"

namespace pokeemu::arch::layout {

constexpr u32 kCpuBase = 0x10000000;
constexpr u32 kInsnBufBase = 0x11000000;
constexpr u32 kGuestPhysBase = 0x20000000;

/// @name Offsets within the CPU state image (relative to kCpuBase).
/// @{
constexpr u32 kOffGpr = 0x00;          ///< 8 x u32.
constexpr u32 kOffEip = 0x20;
constexpr u32 kOffEflags = 0x24;
constexpr u32 kOffCr0 = 0x28;
constexpr u32 kOffCr2 = 0x2c;
constexpr u32 kOffCr3 = 0x30;
constexpr u32 kOffCr4 = 0x34;
constexpr u32 kOffGdtrBase = 0x38;
constexpr u32 kOffGdtrLimit = 0x3c;    ///< u16 + 2 pad.
constexpr u32 kOffIdtrBase = 0x40;
constexpr u32 kOffIdtrLimit = 0x44;    ///< u16 + 2 pad.

/** Per-segment record: 16 bytes, 6 segments in Seg order. */
constexpr u32 kOffSeg = 0x48;
constexpr u32 kSegStride = 16;
constexpr u32 kSegSelector = 0;  ///< u16 + 2 pad.
constexpr u32 kSegBase = 4;      ///< u32.
constexpr u32 kSegLimit = 8;     ///< u32 (effective).
constexpr u32 kSegAccess = 12;   ///< u8.
constexpr u32 kSegDb = 13;       ///< u8 + 2 pad.

constexpr u32 kOffMsrSysenterCs = 0xa8;
constexpr u32 kOffMsrSysenterEsp = 0xac;
constexpr u32 kOffMsrSysenterEip = 0xb0;

constexpr u32 kOffExcVector = 0xb4;    ///< u8.
constexpr u32 kOffExcHasError = 0xb5;  ///< u8 + 2 pad.
constexpr u32 kOffExcError = 0xb8;     ///< u32.
constexpr u32 kOffHalted = 0xbc;       ///< u8 + 3 pad.

constexpr u32 kCpuStateSize = 0xc0;
/// @}

/// @name Absolute addresses of common fields in the IR address space.
/// @{
constexpr u32
gpr_addr(unsigned r)
{
    return kCpuBase + kOffGpr + 4 * r;
}

constexpr u32
seg_addr(unsigned s, u32 field_off)
{
    return kCpuBase + kOffSeg + kSegStride * s + field_off;
}

constexpr u32 kEipAddr = kCpuBase + kOffEip;
constexpr u32 kEflagsAddr = kCpuBase + kOffEflags;
constexpr u32 kCr0Addr = kCpuBase + kOffCr0;
constexpr u32 kCr2Addr = kCpuBase + kOffCr2;
constexpr u32 kCr3Addr = kCpuBase + kOffCr3;
constexpr u32 kCr4Addr = kCpuBase + kOffCr4;
constexpr u32 kGdtrBaseAddr = kCpuBase + kOffGdtrBase;
constexpr u32 kGdtrLimitAddr = kCpuBase + kOffGdtrLimit;
constexpr u32 kIdtrBaseAddr = kCpuBase + kOffIdtrBase;
constexpr u32 kIdtrLimitAddr = kCpuBase + kOffIdtrLimit;
constexpr u32 kExcVectorAddr = kCpuBase + kOffExcVector;
constexpr u32 kExcHasErrorAddr = kCpuBase + kOffExcHasError;
constexpr u32 kExcErrorAddr = kCpuBase + kOffExcError;
constexpr u32 kHaltedAddr = kCpuBase + kOffHalted;
/// @}

/// @name Guest physical memory map (offsets into guest RAM).
/// @{
constexpr u32 kPhysPageDir = 0x1000;
constexpr u32 kPhysPageTable = 0x2000;
constexpr u32 kPhysIdt = 0x3000;
constexpr u32 kPhysGdt = 0x8000;
constexpr u32 kGdtEntries = 16;
constexpr u32 kPhysHandlerStub = 0x9000;
constexpr u32 kPhysBaselineCode = 0x10000;
constexpr u32 kPhysDataArea = 0x200000;
constexpr u32 kPhysTestCode = 0x201000;
constexpr u32 kBaselineEsp = 0x1ff000;
/// @}

} // namespace pokeemu::arch::layout

#endif // POKEEMU_ARCH_LAYOUT_H
