#include "arch/descriptors.h"

namespace pokeemu::arch {

Descriptor
decode_descriptor(const u8 *b)
{
    Descriptor d;
    d.limit_raw = static_cast<u32>(b[0]) | (static_cast<u32>(b[1]) << 8) |
                  ((static_cast<u32>(b[6]) & 0x0f) << 16);
    d.base = static_cast<u32>(b[2]) | (static_cast<u32>(b[3]) << 8) |
             (static_cast<u32>(b[4]) << 16) |
             (static_cast<u32>(b[7]) << 24);
    d.access = b[5];
    d.granularity = (b[6] & 0x80) != 0;
    d.db = (b[6] & 0x40) != 0;
    return d;
}

void
encode_descriptor(const Descriptor &d, u8 *out)
{
    out[0] = static_cast<u8>(d.limit_raw);
    out[1] = static_cast<u8>(d.limit_raw >> 8);
    out[2] = static_cast<u8>(d.base);
    out[3] = static_cast<u8>(d.base >> 8);
    out[4] = static_cast<u8>(d.base >> 16);
    out[5] = d.access;
    out[6] = static_cast<u8>(((d.limit_raw >> 16) & 0x0f) |
                             (d.db ? 0x40 : 0) |
                             (d.granularity ? 0x80 : 0));
    out[7] = static_cast<u8>(d.base >> 24);
}

Descriptor
make_flat_descriptor(u8 access)
{
    Descriptor d;
    d.base = 0;
    d.limit_raw = 0xfffff;
    d.access = access;
    d.granularity = true;
    d.db = true;
    return d;
}

SegmentReg
make_segment_reg(u16 selector, const Descriptor &desc)
{
    SegmentReg s;
    s.selector = selector;
    s.base = desc.base;
    s.limit = desc.effective_limit();
    s.access = desc.access;
    s.db = desc.db ? 1 : 0;
    return s;
}

} // namespace pokeemu::arch
