#include "arch/decoder.h"

#include <sstream>

namespace pokeemu::arch {

bool
op_requires_memory(Op op)
{
    switch (op) {
      case Op::Lea:
      case Op::Les:
      case Op::Lds:
      case Op::Lss:
      case Op::Lfs:
      case Op::Lgs:
      case Op::Sgdt:
      case Op::Sidt:
      case Op::Lgdt:
      case Op::Lidt:
      case Op::Invlpg:
        return true;
      default:
        return false;
    }
}

namespace {

bool
is_prefix(u8 b)
{
    switch (b) {
      case 0x26: case 0x2e: case 0x36: case 0x3e: case 0x64: case 0x65:
      case 0xf0: case 0xf2: case 0xf3:
        return true;
      default:
        return false;
    }
}

s8
prefix_segment(u8 b)
{
    switch (b) {
      case 0x26: return kEs;
      case 0x2e: return kCs;
      case 0x36: return kSs;
      case 0x3e: return kDs;
      case 0x64: return kFs;
      case 0x65: return kGs;
      default: return -1;
    }
}

} // namespace

DecodeStatus
decode(const u8 *bytes, std::size_t len, DecodedInsn &out)
{
    out = DecodedInsn{};
    std::size_t pos = 0;

    auto fetch = [&](u8 &b) -> bool {
        if (pos >= len || pos >= kMaxInsnLength)
            return false;
        b = bytes[pos];
        out.bytes[pos] = b;
        ++pos;
        return true;
    };

    // Prefixes (at most kMaxPrefixes; see insn_table.h).
    unsigned num_prefixes = 0;
    u8 b = 0;
    for (;;) {
        if (!fetch(b))
            return DecodeStatus::TooLong;
        if (!is_prefix(b))
            break;
        if (++num_prefixes > kMaxPrefixes)
            return DecodeStatus::Invalid;
        const s8 seg = prefix_segment(b);
        if (seg >= 0)
            out.seg_override = seg;
        else if (b == 0xf0)
            out.lock = true;
        else if (b == 0xf3)
            out.rep = true;
        else if (b == 0xf2)
            out.repne = true;
    }

    // Opcode (one or two bytes).
    if (b == 0x0f) {
        u8 b2;
        if (!fetch(b2))
            return DecodeStatus::TooLong;
        out.opcode = static_cast<u16>(0x0f00 | b2);
    } else {
        out.opcode = b;
    }
    const InsnDesc *probe = first_entry(out.opcode);
    if (!probe)
        return DecodeStatus::Invalid;
    // All entries of one opcode share has_modrm.
    const bool opcode_has_modrm = probe->has_modrm;

    // ModRM / SIB / displacement.
    if (opcode_has_modrm) {
        if (!fetch(out.modrm))
            return DecodeStatus::TooLong;
        out.has_modrm = true;
        out.mod = out.modrm >> 6;
        out.reg = (out.modrm >> 3) & 7;
        out.rm = out.modrm & 7;
        if (out.mod != 3) {
            if (out.rm == 4) {
                if (!fetch(out.sib))
                    return DecodeStatus::TooLong;
                out.has_sib = true;
                out.scale = out.sib >> 6;
                out.index = (out.sib >> 3) & 7;
                out.base = out.sib & 7;
            }
            unsigned disp_size = 0;
            if (out.mod == 1) {
                disp_size = 1;
            } else if (out.mod == 2) {
                disp_size = 4;
            } else { // mod == 0
                if (out.rm == 5 ||
                    (out.has_sib && out.base == 5)) {
                    disp_size = 4;
                }
            }
            if (disp_size > 0) {
                out.has_disp = true;
                u32 disp = 0;
                for (unsigned i = 0; i < disp_size; ++i) {
                    u8 db;
                    if (!fetch(db))
                        return DecodeStatus::TooLong;
                    disp |= static_cast<u32>(db) << (8 * i);
                }
                if (disp_size == 1)
                    disp = static_cast<u32>(
                        static_cast<s32>(static_cast<s8>(disp)));
                out.disp = disp;
            }
        }
    }

    // Resolve the table row (group sub-opcode now known).
    out.table_index = lookup_insn(out.opcode, out.reg);
    if (out.table_index < 0)
        return DecodeStatus::Invalid;
    out.desc = &insn_table()[out.table_index];

    // Structural legality checks (before immediate consumption, in
    // lock-step with the IR decoder in hifi/decoder_ir.cpp).
    if (op_requires_memory(out.desc->op) && out.mod == 3)
        return DecodeStatus::Invalid;
    // Segment-register moves: reg field must name a real segment
    // register, and CS cannot be a destination.
    if (out.desc->op == Op::MovRm16Sreg && out.reg > 5)
        return DecodeStatus::Invalid;
    if (out.desc->op == Op::MovSregRm16 &&
        (out.reg > 5 || out.reg == kCs)) {
        return DecodeStatus::Invalid;
    }
    // mov to/from control registers: only CR0/CR2/CR3/CR4 exist, and
    // the subset requires the register form.
    if ((out.desc->op == Op::MovR32Cr || out.desc->op == Op::MovCrR32) &&
        (out.mod != 3 || out.reg == 1 || out.reg > 4)) {
        return DecodeStatus::Invalid;
    }
    if (out.lock &&
        (!out.desc->lockable || !out.is_memory_operand())) {
        return DecodeStatus::Invalid;
    }
    if ((out.rep || out.repne) && !out.desc->is_string)
        return DecodeStatus::Invalid;
    if (out.repne && out.desc->op != Op::Cmps8 &&
        out.desc->op != Op::Cmps32 && out.desc->op != Op::Scas8 &&
        out.desc->op != Op::Scas32) {
        return DecodeStatus::Invalid;
    }

    // Immediate bytes.
    unsigned imm_size = 0;
    switch (out.desc->imm) {
      case ImmKind::None: break;
      case ImmKind::Imm8: case ImmKind::Rel8: imm_size = 1; break;
      case ImmKind::Imm16: imm_size = 2; break;
      case ImmKind::Imm32: case ImmKind::Rel32:
      case ImmKind::Moffs32: imm_size = 4; break;
      case ImmKind::FarPtr: imm_size = 4; break; // + selector below.
    }
    u32 imm = 0;
    for (unsigned i = 0; i < imm_size; ++i) {
        u8 ib;
        if (!fetch(ib))
            return DecodeStatus::TooLong;
        imm |= static_cast<u32>(ib) << (8 * i);
    }
    out.imm = imm;
    if (out.desc->imm == ImmKind::FarPtr) {
        u16 sel = 0;
        for (unsigned i = 0; i < 2; ++i) {
            u8 ib;
            if (!fetch(ib))
                return DecodeStatus::TooLong;
            sel |= static_cast<u16>(ib) << (8 * i);
        }
        out.imm_sel = sel;
    }
    out.length = static_cast<u8>(pos);
    return DecodeStatus::Ok;
}

std::vector<u8>
canonical_encoding(int table_index)
{
    const InsnDesc &d = insn_table().at(table_index);

    // Memory operand forms exercise the segmentation and paging state
    // space, matching what decoder-exploration representatives tend to
    // pick; fall back to the register form where memory is illegal.
    auto build = [&](bool memory_form) {
        std::vector<u8> bytes;
        if (d.opcode >= 0x100)
            bytes.push_back(0x0f);
        bytes.push_back(static_cast<u8>(d.opcode & 0xff));
        if (d.has_modrm) {
            const u8 reg =
                d.group_reg >= 0 ? static_cast<u8>(d.group_reg) : 0;
            if (memory_form) {
                // mod=00 rm=101: absolute [disp32], zero displacement.
                bytes.push_back(static_cast<u8>(0x05 | (reg << 3)));
                bytes.insert(bytes.end(), 4, 0);
            } else {
                bytes.push_back(static_cast<u8>(0xc0 | (reg << 3)));
            }
        }
        unsigned imm = 0;
        switch (d.imm) {
          case ImmKind::None: break;
          case ImmKind::Imm8: case ImmKind::Rel8: imm = 1; break;
          case ImmKind::Imm16: imm = 2; break;
          case ImmKind::Imm32: case ImmKind::Rel32:
          case ImmKind::Moffs32: imm = 4; break;
          case ImmKind::FarPtr: imm = 6; break;
        }
        bytes.insert(bytes.end(), imm, 0);
        bytes.resize(kMaxInsnLength, 0);
        return bytes;
    };

    for (bool memory_form : {true, false}) {
        std::vector<u8> bytes = build(memory_form);
        DecodedInsn check;
        if (decode(bytes.data(), bytes.size(), check) ==
                DecodeStatus::Ok &&
            check.table_index == table_index) {
            return bytes;
        }
    }
    panic("canonical_encoding does not round-trip");
}

std::string
to_string(const DecodedInsn &insn)
{
    std::ostringstream os;
    if (insn.lock)
        os << "lock ";
    if (insn.rep)
        os << "rep ";
    if (insn.repne)
        os << "repne ";
    os << (insn.desc ? insn.desc->mnemonic : "<bad>");
    os << " [";
    for (unsigned i = 0; i < insn.length; ++i) {
        char buf[4];
        std::snprintf(buf, sizeof buf, "%02x", insn.bytes[i]);
        os << (i ? " " : "") << buf;
    }
    os << "]";
    return os.str();
}

} // namespace pokeemu::arch
