#include "arch/state.h"

#include <cstring>
#include <sstream>

#include "arch/layout.h"

namespace pokeemu::arch {

const char *
gpr_name(unsigned r)
{
    static const char *names[] = {"eax", "ecx", "edx", "ebx",
                                  "esp", "ebp", "esi", "edi"};
    return r < kNumGprs ? names[r] : "?";
}

const char *
seg_name(unsigned s)
{
    static const char *names[] = {"es", "cs", "ss", "ds", "fs", "gs"};
    return s < kNumSegs ? names[s] : "?";
}

namespace {

void
put32(u8 *p, u32 off, u32 v)
{
    p[off] = static_cast<u8>(v);
    p[off + 1] = static_cast<u8>(v >> 8);
    p[off + 2] = static_cast<u8>(v >> 16);
    p[off + 3] = static_cast<u8>(v >> 24);
}

void
put16(u8 *p, u32 off, u16 v)
{
    p[off] = static_cast<u8>(v);
    p[off + 1] = static_cast<u8>(v >> 8);
}

u32
get32(const u8 *p, u32 off)
{
    return static_cast<u32>(p[off]) | (static_cast<u32>(p[off + 1]) << 8) |
           (static_cast<u32>(p[off + 2]) << 16) |
           (static_cast<u32>(p[off + 3]) << 24);
}

u16
get16(const u8 *p, u32 off)
{
    return static_cast<u16>(p[off] | (p[off + 1] << 8));
}

} // namespace

void
pack_cpu_state(const CpuState &state, u8 *out)
{
    using namespace layout;
    std::memset(out, 0, kCpuStateSize);
    for (unsigned r = 0; r < kNumGprs; ++r)
        put32(out, kOffGpr + 4 * r, state.gpr[r]);
    put32(out, kOffEip, state.eip);
    put32(out, kOffEflags, state.eflags);
    put32(out, kOffCr0, state.cr0);
    put32(out, kOffCr2, state.cr2);
    put32(out, kOffCr3, state.cr3);
    put32(out, kOffCr4, state.cr4);
    put32(out, kOffGdtrBase, state.gdtr.base);
    put16(out, kOffGdtrLimit, state.gdtr.limit);
    put32(out, kOffIdtrBase, state.idtr.base);
    put16(out, kOffIdtrLimit, state.idtr.limit);
    for (unsigned s = 0; s < kNumSegs; ++s) {
        const u32 base = kOffSeg + kSegStride * s;
        put16(out, base + kSegSelector, state.seg[s].selector);
        put32(out, base + kSegBase, state.seg[s].base);
        put32(out, base + kSegLimit, state.seg[s].limit);
        out[base + kSegAccess] = state.seg[s].access;
        out[base + kSegDb] = state.seg[s].db;
    }
    put32(out, kOffMsrSysenterCs, state.msr.sysenter_cs);
    put32(out, kOffMsrSysenterEsp, state.msr.sysenter_esp);
    put32(out, kOffMsrSysenterEip, state.msr.sysenter_eip);
    out[kOffExcVector] = state.exception.vector;
    out[kOffExcHasError] = state.exception.has_error_code ? 1 : 0;
    put32(out, kOffExcError, state.exception.error_code);
    out[kOffHalted] = state.halted;
}

CpuState
unpack_cpu_state(const u8 *bytes)
{
    using namespace layout;
    CpuState state;
    for (unsigned r = 0; r < kNumGprs; ++r)
        state.gpr[r] = get32(bytes, kOffGpr + 4 * r);
    state.eip = get32(bytes, kOffEip);
    state.eflags = get32(bytes, kOffEflags);
    state.cr0 = get32(bytes, kOffCr0);
    state.cr2 = get32(bytes, kOffCr2);
    state.cr3 = get32(bytes, kOffCr3);
    state.cr4 = get32(bytes, kOffCr4);
    state.gdtr.base = get32(bytes, kOffGdtrBase);
    state.gdtr.limit = get16(bytes, kOffGdtrLimit);
    state.idtr.base = get32(bytes, kOffIdtrBase);
    state.idtr.limit = get16(bytes, kOffIdtrLimit);
    for (unsigned s = 0; s < kNumSegs; ++s) {
        const u32 base = kOffSeg + kSegStride * s;
        state.seg[s].selector = get16(bytes, base + kSegSelector);
        state.seg[s].base = get32(bytes, base + kSegBase);
        state.seg[s].limit = get32(bytes, base + kSegLimit);
        state.seg[s].access = bytes[base + kSegAccess];
        state.seg[s].db = bytes[base + kSegDb];
    }
    state.msr.sysenter_cs = get32(bytes, kOffMsrSysenterCs);
    state.msr.sysenter_esp = get32(bytes, kOffMsrSysenterEsp);
    state.msr.sysenter_eip = get32(bytes, kOffMsrSysenterEip);
    state.exception.vector = bytes[kOffExcVector];
    state.exception.has_error_code = bytes[kOffExcHasError] != 0;
    state.exception.error_code = get32(bytes, kOffExcError);
    state.halted = bytes[kOffHalted];
    return state;
}

std::string
to_string(const CpuState &state)
{
    std::ostringstream os;
    os << std::hex;
    for (unsigned r = 0; r < kNumGprs; ++r)
        os << gpr_name(r) << "=" << state.gpr[r] << " ";
    os << "\neip=" << state.eip << " eflags=" << state.eflags
       << " cr0=" << state.cr0 << " cr2=" << state.cr2
       << " cr3=" << state.cr3 << " cr4=" << state.cr4 << "\n";
    os << "gdtr=" << state.gdtr.base << "/" << state.gdtr.limit
       << " idtr=" << state.idtr.base << "/" << state.idtr.limit << "\n";
    for (unsigned s = 0; s < kNumSegs; ++s) {
        os << seg_name(s) << "=" << state.seg[s].selector << "(base="
           << state.seg[s].base << ",limit=" << state.seg[s].limit
           << ",acc=" << static_cast<unsigned>(state.seg[s].access)
           << ") ";
    }
    os << "\n";
    if (state.exception.present()) {
        os << "exception=" << static_cast<unsigned>(state.exception.vector);
        if (state.exception.has_error_code)
            os << " err=" << state.exception.error_code;
        os << "\n";
    }
    os << "halted=" << static_cast<unsigned>(state.halted) << "\n";
    return os.str();
}

} // namespace pokeemu::arch
