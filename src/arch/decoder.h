/**
 * @file
 * Concrete VX86 instruction decoder.
 *
 * Used by the semantics generator (to build per-instruction IR), the
 * Lo-Fi emulator, and the hardware model. The Hi-Fi emulator uses an
 * IR re-implementation of the same rules (hifi/decoder_ir.h) so the
 * decode logic itself can be explored symbolically; differential tests
 * keep the two in agreement.
 */
#ifndef POKEEMU_ARCH_DECODER_H
#define POKEEMU_ARCH_DECODER_H

#include "arch/insn_table.h"

namespace pokeemu::arch {

enum class DecodeStatus : u8 {
    Ok,
    Invalid,  ///< #UD: not a legal instruction of the subset.
    TooLong,  ///< #GP: more than 15 bytes.
};

/** Maximum encodable instruction length, as on x86. */
constexpr unsigned kMaxInsnLength = 15;

/** Maximum number of prefix bytes the subset accepts. */
constexpr unsigned kMaxPrefixes = 4;

/** A fully decoded instruction. */
struct DecodedInsn
{
    u8 bytes[kMaxInsnLength] = {};
    u8 length = 0;

    int table_index = -1;          ///< Index into insn_table().
    const InsnDesc *desc = nullptr;

    bool lock = false;
    bool rep = false;   ///< F3.
    bool repne = false; ///< F2.
    s8 seg_override = -1; ///< Seg index or -1.

    u16 opcode = 0;
    bool has_modrm = false;
    u8 modrm = 0, mod = 0, reg = 0, rm = 0;
    bool has_sib = false;
    u8 sib = 0, scale = 0, index = 0, base = 0;
    bool has_disp = false;
    u32 disp = 0;
    u32 imm = 0;
    u16 imm_sel = 0; ///< Selector half of a FarPtr immediate.

    bool is_memory_operand() const { return has_modrm && mod != 3; }
};

/** True when the op's ModRM form must be a memory operand (mod != 3). */
bool op_requires_memory(Op op);

/**
 * Decode the byte sequence at @p bytes (up to @p len bytes available).
 * On Ok, @p out is fully populated including desc and table_index.
 */
DecodeStatus decode(const u8 *bytes, std::size_t len, DecodedInsn &out);

/** Render a decoded instruction (for reports and examples). */
std::string to_string(const DecodedInsn &insn);

/**
 * Canonical encoding for table row @p table_index: no prefixes,
 * register form where legal (memory-only forms use a [disp32]
 * operand), zero immediates. Decodes back to the same row; used when
 * a caller selects instructions directly instead of running the
 * instruction-set exploration.
 */
std::vector<u8> canonical_encoding(int table_index);

} // namespace pokeemu::arch

#endif // POKEEMU_ARCH_DECODER_H
