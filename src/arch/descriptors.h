/**
 * @file
 * GDT segment-descriptor encoding and decoding.
 *
 * The 8-byte descriptor format is the real x86 one:
 *   byte 0-1  limit[15:0]
 *   byte 2-4  base[23:0]
 *   byte 5    access: P | DPL(2) | S | Type(4)
 *   byte 6    G | D/B | L | AVL | limit[19:16]
 *   byte 7    base[31:24]
 * The paper's Figure 5 example pokes bytes 5 and 6 of GDT entry 10 to
 * flip the stack segment's type and default-operation-size — this
 * module is what makes that byte-level view meaningful here.
 */
#ifndef POKEEMU_ARCH_DESCRIPTORS_H
#define POKEEMU_ARCH_DESCRIPTORS_H

#include "arch/state.h"

namespace pokeemu::arch {

/** A parsed segment descriptor. */
struct Descriptor
{
    u32 base = 0;
    u32 limit_raw = 0;  ///< 20-bit limit field as stored.
    u8 access = 0;      ///< P/DPL/S/Type byte.
    bool granularity = false;
    bool db = false;

    bool present() const { return (access & kDescPresent) != 0; }
    bool is_code_data() const { return (access & kDescS) != 0; }
    bool is_code() const { return (access & kDescCode) != 0; }
    bool writable() const { return (access & kDescRw) != 0; }
    bool expand_down() const
    {
        return !is_code() && (access & kDescDc) != 0;
    }
    unsigned dpl() const { return (access >> kDescDplShift) & 3; }

    /** Byte-granular effective limit (G-expanded). */
    u32
    effective_limit() const
    {
        return granularity ? ((limit_raw << 12) | 0xfff) : limit_raw;
    }
};

/** Decode the 8 descriptor bytes. */
Descriptor decode_descriptor(const u8 *bytes);

/** Encode into 8 bytes (inverse of decode for canonical values). */
void encode_descriptor(const Descriptor &desc, u8 *out);

/**
 * Convenience: build a flat 4-GiB code or data descriptor with the
 * given access byte (present, G=1, D/B=1, base 0, limit 0xfffff).
 */
Descriptor make_flat_descriptor(u8 access);

/** Load a descriptor into a segment register's cache. */
SegmentReg make_segment_reg(u16 selector, const Descriptor &desc);

} // namespace pokeemu::arch

#endif // POKEEMU_ARCH_DESCRIPTORS_H
