#include "arch/insn_table.h"

#include <unordered_map>

namespace pokeemu::arch {

namespace {

/** Shorthand builder for table rows. */
struct RowBuilder
{
    std::vector<InsnDesc> rows;

    void
    add(u16 opcode, s8 group_reg, bool modrm, ImmKind imm, Op op, u8 aux,
        const char *mnemonic, bool lockable = false,
        bool is_string = false, bool is_alias = false)
    {
        rows.push_back({opcode, group_reg, modrm, imm, op, aux, lockable,
                        is_string, is_alias, mnemonic});
    }
};

const char *kAluNames[] = {"add", "or", "adc", "sbb",
                           "and", "sub", "xor", "cmp"};
const char *kShiftNames[] = {"rol", "ror", "rcl", "rcr",
                             "shl", "shr", "shl", "sar"};
const char *kCcNames[] = {"o", "no", "b", "nb", "z", "nz", "be", "nbe",
                          "s", "ns", "p", "np", "l", "nl", "le", "nle"};
std::vector<InsnDesc>
build_table()
{
    RowBuilder t;

    // --- ALU families: 00..3d in blocks of 8 per operation. ---
    for (u8 a = 0; a < 8; ++a) {
        const u16 base = static_cast<u16>(a * 8);
        const bool lk = a != static_cast<u8>(AluKind::Cmp);
        t.add(base + 0, -1, true, ImmKind::None, Op::AluRm8R8, a,
              kAluNames[a], lk);
        t.add(base + 1, -1, true, ImmKind::None, Op::AluRm32R32, a,
              kAluNames[a], lk);
        t.add(base + 2, -1, true, ImmKind::None, Op::AluR8Rm8, a,
              kAluNames[a]);
        t.add(base + 3, -1, true, ImmKind::None, Op::AluR32Rm32, a,
              kAluNames[a]);
        t.add(base + 4, -1, false, ImmKind::Imm8, Op::AluAlImm8, a,
              kAluNames[a]);
        t.add(base + 5, -1, false, ImmKind::Imm32, Op::AluEaxImm32, a,
              kAluNames[a]);
    }

    // --- inc/dec/push/pop register forms. ---
    for (u8 r = 0; r < 8; ++r) {
        t.add(0x40 + r, -1, false, ImmKind::None, Op::IncR32, r, "inc");
        t.add(0x48 + r, -1, false, ImmKind::None, Op::DecR32, r, "dec");
        t.add(0x50 + r, -1, false, ImmKind::None, Op::PushR32, r,
              "push");
        t.add(0x58 + r, -1, false, ImmKind::None, Op::PopR32, r, "pop");
    }

    t.add(0x68, -1, false, ImmKind::Imm32, Op::PushImm32, 0, "push");
    t.add(0x6a, -1, false, ImmKind::Imm8, Op::PushImm8, 0, "push");

    // --- Jcc rel8 / two-byte Jcc rel32 / SETcc / CMOVcc. ---
    for (u8 cc = 0; cc < 16; ++cc) {
        t.add(0x70 + cc, -1, false, ImmKind::Rel8, Op::JccRel8, cc,
              kCcNames[cc]);
        t.add(0x0f80 + cc, -1, false, ImmKind::Rel32, Op::JccRel32, cc,
              kCcNames[cc]);
        t.add(0x0f90 + cc, 0, true, ImmKind::None, Op::SetccRm8, cc,
              kCcNames[cc]);
        t.add(0x0f40 + cc, -1, true, ImmKind::None, Op::CmovccR32Rm32,
              cc, kCcNames[cc]);
    }

    // --- Group 1: 80/81/83, one entry per ALU sub-opcode. ---
    for (u8 a = 0; a < 8; ++a) {
        const bool lk = a != static_cast<u8>(AluKind::Cmp);
        t.add(0x80, a, true, ImmKind::Imm8, Op::Grp1Rm8Imm8, a,
              kAluNames[a], lk);
        t.add(0x81, a, true, ImmKind::Imm32, Op::Grp1Rm32Imm32, a,
              kAluNames[a], lk);
        t.add(0x83, a, true, ImmKind::Imm8, Op::Grp1Rm32Imm8, a,
              kAluNames[a], lk);
    }

    t.add(0x84, -1, true, ImmKind::None, Op::TestRm8R8, 0, "test");
    t.add(0x85, -1, true, ImmKind::None, Op::TestRm32R32, 0, "test");
    t.add(0x86, -1, true, ImmKind::None, Op::XchgRm8R8, 0, "xchg", true);
    t.add(0x87, -1, true, ImmKind::None, Op::XchgRm32R32, 0, "xchg",
          true);
    t.add(0x88, -1, true, ImmKind::None, Op::MovRm8R8, 0, "mov");
    t.add(0x89, -1, true, ImmKind::None, Op::MovRm32R32, 0, "mov");
    t.add(0x8a, -1, true, ImmKind::None, Op::MovR8Rm8, 0, "mov");
    t.add(0x8b, -1, true, ImmKind::None, Op::MovR32Rm32, 0, "mov");
    t.add(0x8c, -1, true, ImmKind::None, Op::MovRm16Sreg, 0, "mov");
    t.add(0x8d, -1, true, ImmKind::None, Op::Lea, 0, "lea");
    t.add(0x8e, -1, true, ImmKind::None, Op::MovSregRm16, 0, "mov");
    t.add(0x8f, 0, true, ImmKind::None, Op::PopRm32, 0, "pop");

    t.add(0x90, -1, false, ImmKind::None, Op::Nop, 0, "nop");
    for (u8 r = 1; r < 8; ++r) {
        t.add(0x90 + r, -1, false, ImmKind::None, Op::XchgEaxR32, r,
              "xchg");
    }
    t.add(0x98, -1, false, ImmKind::None, Op::Cwde, 0, "cwde");
    t.add(0x99, -1, false, ImmKind::None, Op::Cdq, 0, "cdq");
    t.add(0x9c, -1, false, ImmKind::None, Op::Pushfd, 0, "pushfd");
    t.add(0x9d, -1, false, ImmKind::None, Op::Popfd, 0, "popfd");
    t.add(0x9e, -1, false, ImmKind::None, Op::Sahf, 0, "sahf");
    t.add(0x9f, -1, false, ImmKind::None, Op::Lahf, 0, "lahf");

    t.add(0xa0, -1, false, ImmKind::Moffs32, Op::MovAlMoffs, 0, "mov");
    t.add(0xa1, -1, false, ImmKind::Moffs32, Op::MovEaxMoffs, 0, "mov");
    t.add(0xa2, -1, false, ImmKind::Moffs32, Op::MovMoffsAl, 0, "mov");
    t.add(0xa3, -1, false, ImmKind::Moffs32, Op::MovMoffsEax, 0, "mov");

    t.add(0xa4, -1, false, ImmKind::None, Op::Movs8, 0, "movsb", false,
          true);
    t.add(0xa5, -1, false, ImmKind::None, Op::Movs32, 0, "movsd", false,
          true);
    t.add(0xa6, -1, false, ImmKind::None, Op::Cmps8, 0, "cmpsb", false,
          true);
    t.add(0xa7, -1, false, ImmKind::None, Op::Cmps32, 0, "cmpsd", false,
          true);
    t.add(0xa8, -1, false, ImmKind::Imm8, Op::TestAlImm8, 0, "test");
    t.add(0xa9, -1, false, ImmKind::Imm32, Op::TestEaxImm32, 0, "test");
    t.add(0xaa, -1, false, ImmKind::None, Op::Stos8, 0, "stosb", false,
          true);
    t.add(0xab, -1, false, ImmKind::None, Op::Stos32, 0, "stosd", false,
          true);
    t.add(0xac, -1, false, ImmKind::None, Op::Lods8, 0, "lodsb", false,
          true);
    t.add(0xad, -1, false, ImmKind::None, Op::Lods32, 0, "lodsd", false,
          true);
    t.add(0xae, -1, false, ImmKind::None, Op::Scas8, 0, "scasb", false,
          true);
    t.add(0xaf, -1, false, ImmKind::None, Op::Scas32, 0, "scasd", false,
          true);

    for (u8 r = 0; r < 8; ++r) {
        t.add(0xb0 + r, -1, false, ImmKind::Imm8, Op::MovR8Imm8, r,
              "mov");
        t.add(0xb8 + r, -1, false, ImmKind::Imm32, Op::MovR32Imm32, r,
              "mov");
    }

    // --- Shift groups: C0/C1 (imm8), D0/D1 (1), D2/D3 (CL). ---
    for (u8 k = 0; k < 8; ++k) {
        if (k == 2 || k == 3)
            continue; // RCL/RCR omitted from the subset.
        const bool alias = k == 6; // /6 is the undocumented SHL alias.
        t.add(0xc0, k, true, ImmKind::Imm8, Op::ShiftRm8Imm8, k,
              kShiftNames[k], false, false, alias);
        t.add(0xc1, k, true, ImmKind::Imm8, Op::ShiftRm32Imm8, k,
              kShiftNames[k], false, false, alias);
        t.add(0xd0, k, true, ImmKind::None, Op::ShiftRm8One, k,
              kShiftNames[k], false, false, alias);
        t.add(0xd1, k, true, ImmKind::None, Op::ShiftRm32One, k,
              kShiftNames[k], false, false, alias);
        t.add(0xd2, k, true, ImmKind::None, Op::ShiftRm8Cl, k,
              kShiftNames[k], false, false, alias);
        t.add(0xd3, k, true, ImmKind::None, Op::ShiftRm32Cl, k,
              kShiftNames[k], false, false, alias);
    }

    t.add(0xc2, -1, false, ImmKind::Imm16, Op::RetImm16, 0, "ret");
    t.add(0xc3, -1, false, ImmKind::None, Op::Ret, 0, "ret");
    t.add(0xc4, -1, true, ImmKind::None, Op::Les, 0, "les");
    t.add(0xc5, -1, true, ImmKind::None, Op::Lds, 0, "lds");
    t.add(0xc6, 0, true, ImmKind::Imm8, Op::MovRm8Imm8, 0, "mov");
    t.add(0xc7, 0, true, ImmKind::Imm32, Op::MovRm32Imm32, 0, "mov");
    t.add(0xc9, -1, false, ImmKind::None, Op::Leave, 0, "leave");
    t.add(0xcc, -1, false, ImmKind::None, Op::Int3, 0, "int3");
    t.add(0xcd, -1, false, ImmKind::Imm8, Op::IntImm8, 0, "int");
    t.add(0xce, -1, false, ImmKind::None, Op::Into, 0, "into");
    t.add(0xcf, -1, false, ImmKind::None, Op::Iret, 0, "iret");

    t.add(0x9a, -1, false, ImmKind::FarPtr, Op::CallFar, 0, "callf");
    t.add(0xea, -1, false, ImmKind::FarPtr, Op::JmpFar, 0, "jmpf");
    t.add(0xe8, -1, false, ImmKind::Rel32, Op::CallRel32, 0, "call");
    t.add(0xe9, -1, false, ImmKind::Rel32, Op::JmpRel32, 0, "jmp");
    t.add(0xeb, -1, false, ImmKind::Rel8, Op::JmpRel8, 0, "jmp");

    t.add(0xf4, -1, false, ImmKind::None, Op::Hlt, 0, "hlt");
    t.add(0xf5, -1, false, ImmKind::None, Op::Cmc, 0, "cmc");

    // --- Group 3: F6/F7. ---
    t.add(0xf6, 0, true, ImmKind::Imm8, Op::Grp3TestRm8Imm8, 0, "test");
    t.add(0xf6, 1, true, ImmKind::Imm8, Op::Grp3TestRm8Imm8, 0, "test",
          false, false, true); // /1 is the undocumented TEST alias.
    t.add(0xf6, 2, true, ImmKind::None, Op::Grp3NotRm8, 0, "not", true);
    t.add(0xf6, 3, true, ImmKind::None, Op::Grp3NegRm8, 0, "neg", true);
    t.add(0xf6, 4, true, ImmKind::None, Op::Grp3MulRm8, 0, "mul");
    t.add(0xf6, 5, true, ImmKind::None, Op::Grp3ImulRm8, 0, "imul");
    t.add(0xf6, 6, true, ImmKind::None, Op::Grp3DivRm8, 0, "div");
    t.add(0xf6, 7, true, ImmKind::None, Op::Grp3IdivRm8, 0, "idiv");
    t.add(0xf7, 0, true, ImmKind::Imm32, Op::Grp3TestRm32Imm32, 0,
          "test");
    t.add(0xf7, 1, true, ImmKind::Imm32, Op::Grp3TestRm32Imm32, 0,
          "test", false, false, true);
    t.add(0xf7, 2, true, ImmKind::None, Op::Grp3NotRm32, 0, "not", true);
    t.add(0xf7, 3, true, ImmKind::None, Op::Grp3NegRm32, 0, "neg", true);
    t.add(0xf7, 4, true, ImmKind::None, Op::Grp3MulRm32, 0, "mul");
    t.add(0xf7, 5, true, ImmKind::None, Op::Grp3ImulRm32, 0, "imul");
    t.add(0xf7, 6, true, ImmKind::None, Op::Grp3DivRm32, 0, "div");
    t.add(0xf7, 7, true, ImmKind::None, Op::Grp3IdivRm32, 0, "idiv");

    t.add(0xf8, -1, false, ImmKind::None, Op::Clc, 0, "clc");
    t.add(0xf9, -1, false, ImmKind::None, Op::Stc, 0, "stc");
    t.add(0xfa, -1, false, ImmKind::None, Op::Cli, 0, "cli");
    t.add(0xfb, -1, false, ImmKind::None, Op::Sti, 0, "sti");
    t.add(0xfc, -1, false, ImmKind::None, Op::Cld, 0, "cld");
    t.add(0xfd, -1, false, ImmKind::None, Op::Std, 0, "std");

    t.add(0xfe, 0, true, ImmKind::None, Op::IncRm8, 0, "inc", true);
    t.add(0xfe, 1, true, ImmKind::None, Op::DecRm8, 0, "dec", true);
    t.add(0xff, 0, true, ImmKind::None, Op::IncRm32, 0, "inc", true);
    t.add(0xff, 1, true, ImmKind::None, Op::DecRm32, 0, "dec", true);
    t.add(0xff, 2, true, ImmKind::None, Op::CallRm32, 0, "call");
    t.add(0xff, 4, true, ImmKind::None, Op::JmpRm32, 0, "jmp");
    t.add(0xff, 6, true, ImmKind::None, Op::PushRm32, 0, "push");

    // --- Two-byte opcodes. ---
    t.add(0x0f01, 0, true, ImmKind::None, Op::Sgdt, 0, "sgdt");
    t.add(0x0f01, 1, true, ImmKind::None, Op::Sidt, 0, "sidt");
    t.add(0x0f01, 2, true, ImmKind::None, Op::Lgdt, 0, "lgdt");
    t.add(0x0f01, 3, true, ImmKind::None, Op::Lidt, 0, "lidt");
    t.add(0x0f01, 7, true, ImmKind::None, Op::Invlpg, 0, "invlpg");
    t.add(0x0f06, -1, false, ImmKind::None, Op::Clts, 0, "clts");
    t.add(0x0f20, -1, true, ImmKind::None, Op::MovR32Cr, 0, "mov");
    t.add(0x0f22, -1, true, ImmKind::None, Op::MovCrR32, 0, "mov");
    t.add(0x0f30, -1, false, ImmKind::None, Op::Wrmsr, 0, "wrmsr");
    t.add(0x0f31, -1, false, ImmKind::None, Op::Rdtsc, 0, "rdtsc");
    t.add(0x0f32, -1, false, ImmKind::None, Op::Rdmsr, 0, "rdmsr");
    t.add(0x0fa2, -1, false, ImmKind::None, Op::Cpuid, 0, "cpuid");

    t.add(0x0fa3, -1, true, ImmKind::None, Op::BtRm32R32, 0, "bt");
    t.add(0x0fab, -1, true, ImmKind::None, Op::BtsRm32R32, 0, "bts",
          true);
    t.add(0x0fb3, -1, true, ImmKind::None, Op::BtrRm32R32, 0, "btr",
          true);
    t.add(0x0fbb, -1, true, ImmKind::None, Op::BtcRm32R32, 0, "btc",
          true);
    t.add(0x0fba, 4, true, ImmKind::Imm8, Op::Grp8BtImm8, 0, "bt");
    t.add(0x0fba, 5, true, ImmKind::Imm8, Op::Grp8BtsImm8, 0, "bts",
          true);
    t.add(0x0fba, 6, true, ImmKind::Imm8, Op::Grp8BtrImm8, 0, "btr",
          true);
    t.add(0x0fba, 7, true, ImmKind::Imm8, Op::Grp8BtcImm8, 0, "btc",
          true);

    t.add(0x0fa4, -1, true, ImmKind::Imm8, Op::ShldImm8, 0, "shld");
    t.add(0x0fa5, -1, true, ImmKind::None, Op::ShldCl, 0, "shld");
    t.add(0x0fac, -1, true, ImmKind::Imm8, Op::ShrdImm8, 0, "shrd");
    t.add(0x0fad, -1, true, ImmKind::None, Op::ShrdCl, 0, "shrd");
    t.add(0x0faf, -1, true, ImmKind::None, Op::ImulR32Rm32, 0, "imul");
    t.add(0x69, -1, true, ImmKind::Imm32, Op::ImulR32Rm32Imm32, 0,
          "imul");
    t.add(0x6b, -1, true, ImmKind::Imm8, Op::ImulR32Rm32Imm8, 0, "imul");

    t.add(0x0fb0, -1, true, ImmKind::None, Op::CmpxchgRm8R8, 0,
          "cmpxchg", true);
    t.add(0x0fb1, -1, true, ImmKind::None, Op::CmpxchgRm32R32, 0,
          "cmpxchg", true);
    t.add(0x0fb2, -1, true, ImmKind::None, Op::Lss, 0, "lss");
    t.add(0x0fb4, -1, true, ImmKind::None, Op::Lfs, 0, "lfs");
    t.add(0x0fb5, -1, true, ImmKind::None, Op::Lgs, 0, "lgs");
    t.add(0x0fb6, -1, true, ImmKind::None, Op::MovzxR32Rm8, 0, "movzx");
    t.add(0x0fb7, -1, true, ImmKind::None, Op::MovzxR32Rm16, 0,
          "movzx");
    t.add(0x0fbe, -1, true, ImmKind::None, Op::MovsxR32Rm8, 0, "movsx");
    t.add(0x0fbf, -1, true, ImmKind::None, Op::MovsxR32Rm16, 0,
          "movsx");
    t.add(0x0fbc, -1, true, ImmKind::None, Op::Bsf, 0, "bsf");
    t.add(0x0fbd, -1, true, ImmKind::None, Op::Bsr, 0, "bsr");
    t.add(0x0fc0, -1, true, ImmKind::None, Op::XaddRm8R8, 0, "xadd",
          true);
    t.add(0x0fc1, -1, true, ImmKind::None, Op::XaddRm32R32, 0, "xadd",
          true);
    for (u8 r = 0; r < 8; ++r) {
        t.add(0x0fc8 + r, -1, false, ImmKind::None, Op::BswapR32, r,
              "bswap");
    }

    return t.rows;
}

struct TableIndex
{
    std::vector<InsnDesc> rows;
    /** opcode -> list of row indices. */
    std::unordered_map<u16, std::vector<int>> by_opcode;

    TableIndex() : rows(build_table())
    {
        for (std::size_t i = 0; i < rows.size(); ++i)
            by_opcode[rows[i].opcode].push_back(static_cast<int>(i));
    }
};

const TableIndex &
table_index()
{
    static const TableIndex instance;
    return instance;
}

} // namespace

const std::vector<InsnDesc> &
insn_table()
{
    return table_index().rows;
}

int
lookup_insn(u16 opcode, u8 reg)
{
    const auto &idx = table_index().by_opcode;
    auto it = idx.find(opcode);
    if (it == idx.end())
        return -1;
    for (int row : it->second) {
        const InsnDesc &d = table_index().rows[row];
        if (d.group_reg < 0 || d.group_reg == static_cast<s8>(reg))
            return row;
    }
    return -1;
}

bool
opcode_known(u16 opcode)
{
    return table_index().by_opcode.count(opcode) != 0;
}

const InsnDesc *
first_entry(u16 opcode)
{
    const auto &idx = table_index().by_opcode;
    auto it = idx.find(opcode);
    if (it == idx.end())
        return nullptr;
    return &table_index().rows[it->second.front()];
}

} // namespace pokeemu::arch
