#include "arch/snapshot.h"

#include <cstring>
#include <sstream>

namespace pokeemu::arch {

namespace {

void
field(SnapshotDiff &diff, const std::string &name, u64 a, u64 b)
{
    if (a != b)
        diff.cpu.push_back({name, a, b});
}

} // namespace

SnapshotDiff
diff_snapshots(const Snapshot &a, const Snapshot &b)
{
    SnapshotDiff diff;
    for (unsigned r = 0; r < kNumGprs; ++r)
        field(diff, gpr_name(r), a.cpu.gpr[r], b.cpu.gpr[r]);
    field(diff, "eip", a.cpu.eip, b.cpu.eip);
    field(diff, "eflags", a.cpu.eflags, b.cpu.eflags);
    field(diff, "cr0", a.cpu.cr0, b.cpu.cr0);
    field(diff, "cr2", a.cpu.cr2, b.cpu.cr2);
    field(diff, "cr3", a.cpu.cr3, b.cpu.cr3);
    field(diff, "cr4", a.cpu.cr4, b.cpu.cr4);
    field(diff, "gdtr.base", a.cpu.gdtr.base, b.cpu.gdtr.base);
    field(diff, "gdtr.limit", a.cpu.gdtr.limit, b.cpu.gdtr.limit);
    field(diff, "idtr.base", a.cpu.idtr.base, b.cpu.idtr.base);
    field(diff, "idtr.limit", a.cpu.idtr.limit, b.cpu.idtr.limit);
    for (unsigned s = 0; s < kNumSegs; ++s) {
        const std::string p = std::string("seg.") + seg_name(s) + ".";
        field(diff, p + "sel", a.cpu.seg[s].selector,
              b.cpu.seg[s].selector);
        field(diff, p + "base", a.cpu.seg[s].base, b.cpu.seg[s].base);
        field(diff, p + "limit", a.cpu.seg[s].limit, b.cpu.seg[s].limit);
        field(diff, p + "access", a.cpu.seg[s].access,
              b.cpu.seg[s].access);
        field(diff, p + "db", a.cpu.seg[s].db, b.cpu.seg[s].db);
    }
    field(diff, "msr.sysenter_cs", a.cpu.msr.sysenter_cs,
          b.cpu.msr.sysenter_cs);
    field(diff, "msr.sysenter_esp", a.cpu.msr.sysenter_esp,
          b.cpu.msr.sysenter_esp);
    field(diff, "msr.sysenter_eip", a.cpu.msr.sysenter_eip,
          b.cpu.msr.sysenter_eip);
    field(diff, "exc.vector", a.cpu.exception.vector,
          b.cpu.exception.vector);
    field(diff, "exc.error", a.cpu.exception.error_code,
          b.cpu.exception.error_code);
    field(diff, "exc.has_error", a.cpu.exception.has_error_code,
          b.cpu.exception.has_error_code);
    field(diff, "halted", a.cpu.halted, b.cpu.halted);

    // Word-at-a-time scan (memory images are 4 MiB; byte loops
    // dominate comparison time otherwise).
    const std::size_t n = std::min(a.ram.size(), b.ram.size());
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        u64 wa, wb;
        std::memcpy(&wa, a.ram.data() + i, 8);
        std::memcpy(&wb, b.ram.data() + i, 8);
        if (wa == wb)
            continue;
        for (std::size_t j = i; j < i + 8; ++j) {
            if (a.ram[j] != b.ram[j]) {
                ++diff.mem_total;
                if (diff.mem.size() < SnapshotDiff::kMaxMemDiffs)
                    diff.mem.push_back(static_cast<u32>(j));
            }
        }
    }
    for (; i < n; ++i) {
        if (a.ram[i] != b.ram[i]) {
            ++diff.mem_total;
            if (diff.mem.size() < SnapshotDiff::kMaxMemDiffs)
                diff.mem.push_back(static_cast<u32>(i));
        }
    }
    if (a.ram.size() != b.ram.size())
        diff.mem_total += 1; // Size mismatch counts as a difference.
    return diff;
}

std::string
SnapshotDiff::to_string() const
{
    std::ostringstream os;
    for (const FieldDiff &f : cpu) {
        os << f.field << ": " << std::hex << f.a << " vs " << f.b
           << std::dec << "\n";
    }
    if (mem_total > 0) {
        os << mem_total << " memory byte(s) differ, first at:";
        for (u32 addr : mem)
            os << " " << std::hex << addr << std::dec;
        os << "\n";
    }
    return os.str();
}

} // namespace pokeemu::arch
