/**
 * @file
 * A small VX86 assembler: emits the instruction encodings the test
 * generator needs (baseline initializer, test-state initializer
 * gadgets, and example programs). Every emitter produces bytes the
 * decoder round-trips; a property test enforces this.
 */
#ifndef POKEEMU_ARCH_ASSEMBLER_H
#define POKEEMU_ARCH_ASSEMBLER_H

#include <initializer_list>
#include <vector>

#include "arch/state.h"

namespace pokeemu::arch {

/** See file comment. */
class Assembler
{
  public:
    /** @param base virtual address the code will execute at. */
    explicit Assembler(u32 base) : base_(base) {}

    /** Address of the next emitted byte. */
    u32 pc() const { return base_ + static_cast<u32>(code_.size()); }

    const std::vector<u8> &bytes() const { return code_; }

    void raw(std::initializer_list<u8> bs)
    {
        code_.insert(code_.end(), bs);
    }

    void append(const std::vector<u8> &bs)
    {
        code_.insert(code_.end(), bs.begin(), bs.end());
    }

    /// @name Data movement.
    /// @{
    void mov_r32_imm32(Gpr r, u32 imm);          ///< b8+r imm32
    void mov_sreg_r16(Seg s, Gpr r);             ///< 8e /r (mod=3)
    void mov_mem_imm32(u32 addr, u32 imm);       ///< c7 05 disp imm
    void mov_mem_imm8(u32 addr, u8 imm);         ///< c6 05 disp imm
    void mov_mem_r32(u32 addr, Gpr r);           ///< 89 /r disp32
    void mov_r32_mem(Gpr r, u32 addr);           ///< 8b /r disp32
    /// @}

    /// @name Stack / flags.
    /// @{
    void push_imm32(u32 imm);                    ///< 68
    void push_r32(Gpr r);                        ///< 50+r
    void pop_r32(Gpr r);                         ///< 58+r
    void pushfd();                               ///< 9c
    void popfd();                                ///< 9d
    /// @}

    /// @name System.
    /// @{
    void lgdt(u32 addr);                         ///< 0f 01 /2 disp32
    void lidt(u32 addr);                         ///< 0f 01 /3 disp32
    void mov_cr_r32(unsigned crn, Gpr r);        ///< 0f 22 /crn
    void mov_r32_cr(Gpr r, unsigned crn);        ///< 0f 20 /crn
    void wrmsr();                                ///< 0f 30
    void hlt();                                  ///< f4
    /// @}

    /// @name Control flow.
    /// @{
    void jmp_abs(u32 target);                    ///< e9 rel32
    void nop();                                  ///< 90
    /// @}

  private:
    void imm32(u32 v);

    u32 base_;
    std::vector<u8> code_;
};

} // namespace pokeemu::arch

#endif // POKEEMU_ARCH_ASSEMBLER_H
