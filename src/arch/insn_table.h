/**
 * @file
 * The VX86 instruction table: the single source of truth that drives
 * the C++ decoder (arch/decoder.h), the Hi-Fi emulator's symbolically
 * explorable decoder (hifi/decoder_ir.h), the semantics generator, and
 * the independent Lo-Fi / hardware implementations.
 *
 * One table entry corresponds to one "per-instruction code" in the
 * paper's sense (§3.2): opcode groups (e.g. 0x80 /0../7) get one entry
 * per sub-opcode, and +r register forms get one entry per register,
 * exactly as interpreter dispatch tables do. The instruction-set
 * exploration step therefore reports its unique-instruction count in
 * terms of these entries.
 *
 * Encoding rules of the subset:
 *  - legal prefixes: segment overrides (26/2e/36/3e/64/65), LOCK (f0),
 *    REP/REPNE (f2/f3); at most four prefix bytes;
 *  - the operand-size (66) and address-size (67) overrides are NOT part
 *    of the subset and decode to #UD on every backend;
 *  - LOCK is legal only on lockable instructions with a memory
 *    destination; REP/REPNE only on the string instructions;
 *  - standard 32-bit ModRM/SIB/displacement forms;
 *  - instructions longer than 15 bytes raise #GP, as on hardware.
 */
#ifndef POKEEMU_ARCH_INSN_TABLE_H
#define POKEEMU_ARCH_INSN_TABLE_H

#include <vector>

#include "arch/state.h"

namespace pokeemu::arch {

/** Semantic class of an instruction (shared generator per class). */
enum class Op : u8 {
    // ALU families (aux = AluKind).
    AluRm8R8, AluRm32R32, AluR8Rm8, AluR32Rm32, AluAlImm8, AluEaxImm32,
    Grp1Rm8Imm8,   ///< 80 /r (aux = AluKind from group).
    Grp1Rm32Imm32, ///< 81 /r
    Grp1Rm32Imm8,  ///< 83 /r (sign-extended imm8).
    // inc/dec/push/pop/xchg register forms (aux = register).
    IncR32, DecR32, PushR32, PopR32, XchgEaxR32, BswapR32,
    MovR8Imm8, MovR32Imm32,
    PushImm32, PushImm8,
    // Conditional families (aux = condition code).
    JccRel8, JccRel32, SetccRm8, CmovccR32Rm32,
    // Moves and friends.
    MovRm8R8, MovRm32R32, MovR8Rm8, MovR32Rm32,
    MovRm8Imm8, MovRm32Imm32,
    MovRm16Sreg, MovSregRm16, Lea, PopRm32,
    MovAlMoffs, MovMoffsAl, MovEaxMoffs, MovMoffsEax,
    TestRm8R8, TestRm32R32, TestAlImm8, TestEaxImm32,
    XchgRm8R8, XchgRm32R32,
    Nop, Cwde, Cdq, Pushfd, Popfd, Sahf, Lahf,
    // String family (REP handled by semantics; aux unused).
    Movs8, Movs32, Cmps8, Cmps32, Stos8, Stos32,
    Lods8, Lods32, Scas8, Scas32,
    // Shift/rotate groups (aux = ShiftKind from group).
    ShiftRm8Imm8, ShiftRm32Imm8, ShiftRm8One, ShiftRm32One,
    ShiftRm8Cl, ShiftRm32Cl,
    // Control flow.
    RetImm16, Ret, CallRel32, JmpRel32, JmpRel8, Leave, Iret,
    Int3, IntImm8, Into, JmpFar, CallFar,
    // Far pointer loads.
    Les, Lds, Lss, Lfs, Lgs,
    // Flag manipulation.
    Hlt, Cmc, Clc, Stc, Cli, Sti, Cld, Std,
    // Unary/mul/div group F6/F7 (aux = Grp3Kind).
    Grp3TestRm8Imm8, Grp3TestRm32Imm32,
    Grp3NotRm8, Grp3NotRm32, Grp3NegRm8, Grp3NegRm32,
    Grp3MulRm8, Grp3MulRm32, Grp3ImulRm8, Grp3ImulRm32,
    Grp3DivRm8, Grp3DivRm32, Grp3IdivRm8, Grp3IdivRm32,
    // FE/FF groups.
    IncRm8, DecRm8, IncRm32, DecRm32, CallRm32, JmpRm32, PushRm32,
    // System (0F ...).
    Sgdt, Sidt, Lgdt, Lidt, Invlpg, Clts,
    MovR32Cr, MovCrR32,
    Wrmsr, Rdtsc, Rdmsr, Cpuid,
    // Bit operations.
    BtRm32R32, BtsRm32R32, BtrRm32R32, BtcRm32R32,
    Grp8BtImm8, Grp8BtsImm8, Grp8BtrImm8, Grp8BtcImm8,
    ShldImm8, ShldCl, ShrdImm8, ShrdCl,
    ImulR32Rm32, ImulR32Rm32Imm32, ImulR32Rm32Imm8,
    CmpxchgRm8R8, CmpxchgRm32R32,
    MovzxR32Rm8, MovzxR32Rm16, MovsxR32Rm8, MovsxR32Rm16,
    Bsf, Bsr,
    XaddRm8R8, XaddRm32R32,
};

/** ALU operation selector for Alu and Grp1 entries (x86 /r encoding). */
enum class AluKind : u8 { Add = 0, Or, Adc, Sbb, And, Sub, Xor, Cmp };

/** Shift/rotate selector for the shift groups (x86 /r encoding). */
enum class ShiftKind : u8 {
    Rol = 0, Ror, Rcl, Rcr, Shl, Shr, ShlAlias, Sar
};

/** Immediate / trailing-bytes field of an instruction. */
enum class ImmKind : u8 {
    None, Imm8, Imm16, Imm32, Rel8, Rel32, Moffs32,
    FarPtr, ///< ptr16:32 — 4-byte offset then 2-byte selector.
};

/** One per-instruction-code entry; see file comment. */
struct InsnDesc
{
    u16 opcode;      ///< 0x00..0xff, or 0x0f00 | second byte.
    s8 group_reg;    ///< -1: any modrm.reg; else required value.
    bool has_modrm;
    ImmKind imm;
    Op op;
    u8 aux;          ///< AluKind / ShiftKind / cc / register index.
    bool lockable;   ///< LOCK prefix legal with a memory destination.
    bool is_string;  ///< REP/REPNE prefixes legal.
    /**
     * Undocumented-alias encoding (e.g. shift group /6 == SHL):
     * hardware and the Hi-Fi emulator accept it; the Lo-Fi emulator's
     * reject_valid_encodings bug refuses it.
     */
    bool is_alias;
    const char *mnemonic;
};

/** The full table; index into it is the "unique instruction" id. */
const std::vector<InsnDesc> &insn_table();

/**
 * Find the table entry for @p opcode (0x0f00|b for two-byte) and
 * modrm.reg @p reg (ignored unless the opcode is grouped).
 * @return table index, or -1 if no entry matches (#UD).
 */
int lookup_insn(u16 opcode, u8 reg);

/** True if any entry exists for @p opcode (any reg). */
bool opcode_known(u16 opcode);

/**
 * First table entry for @p opcode (any reg), or nullptr. All entries
 * of one opcode share has_modrm, so this suffices for format probing.
 */
const InsnDesc *first_entry(u16 opcode);

} // namespace pokeemu::arch

#endif // POKEEMU_ARCH_INSN_TABLE_H
