/**
 * @file
 * The VX86 guest architecture: machine state.
 *
 * VX86 is the from-scratch x86-32 subset this reproduction targets
 * (see DESIGN.md §2 for the substitution rationale). It keeps the real
 * encodings and the real protection machinery — segmentation with GDT
 * descriptors, two-level paging, EFLAGS, control registers, faults —
 * because that is where the paper's behaviour differences live.
 *
 * The machine state is defined twice, deliberately:
 *  - as the C++ struct CpuState (used by the Lo-Fi emulator, the
 *    hardware model, snapshots, and tests);
 *  - as a flat little-endian byte image (layout.h) that IR programs
 *    address, mirroring how FuzzBALL addresses Bochs' state in host
 *    memory (paper §3.3.1).
 * pack_cpu_state/unpack_cpu_state convert between the two and are
 * round-trip tested.
 */
#ifndef POKEEMU_ARCH_STATE_H
#define POKEEMU_ARCH_STATE_H

#include <array>
#include <string>
#include <vector>

#include "support/common.h"

namespace pokeemu::arch {

/** General-purpose register indices (x86 encoding order). */
enum Gpr : u8 {
    kEax = 0, kEcx, kEdx, kEbx, kEsp, kEbp, kEsi, kEdi, kNumGprs
};

/** Segment register indices (x86 sreg encoding order). */
enum Seg : u8 { kEs = 0, kCs, kSs, kDs, kFs, kGs, kNumSegs };

const char *gpr_name(unsigned r);
const char *seg_name(unsigned s);

/// @name EFLAGS bit positions.
/// @{
constexpr u32 kFlagCf = 1u << 0;
constexpr u32 kFlagFixed1 = 1u << 1; ///< Always-one reserved bit.
constexpr u32 kFlagPf = 1u << 2;
constexpr u32 kFlagAf = 1u << 4;
constexpr u32 kFlagZf = 1u << 6;
constexpr u32 kFlagSf = 1u << 7;
constexpr u32 kFlagTf = 1u << 8;
constexpr u32 kFlagIf = 1u << 9;
constexpr u32 kFlagDf = 1u << 10;
constexpr u32 kFlagOf = 1u << 11;
constexpr u32 kFlagIopl = 3u << 12;
constexpr u32 kFlagNt = 1u << 14;
constexpr u32 kFlagRf = 1u << 16;
constexpr u32 kFlagVm = 1u << 17;
constexpr u32 kFlagAc = 1u << 18;
/** Status flags written by arithmetic instructions. */
constexpr u32 kStatusFlags =
    kFlagCf | kFlagPf | kFlagAf | kFlagZf | kFlagSf | kFlagOf;
/// @}

/// @name CR0 bit positions.
/// @{
constexpr u32 kCr0Pe = 1u << 0;
constexpr u32 kCr0Mp = 1u << 1;
constexpr u32 kCr0Em = 1u << 2;
constexpr u32 kCr0Ts = 1u << 3;
constexpr u32 kCr0Ne = 1u << 5;
constexpr u32 kCr0Wp = 1u << 16;
constexpr u32 kCr0Am = 1u << 18;
constexpr u32 kCr0Pg = 1u << 31;
/// @}

/// @name Exception vectors.
/// @{
constexpr u8 kExcDe = 0;   ///< Divide error.
constexpr u8 kExcDb = 1;   ///< Debug.
constexpr u8 kExcBp = 3;   ///< Breakpoint (int3).
constexpr u8 kExcOf = 4;   ///< Overflow (into).
constexpr u8 kExcUd = 6;   ///< Invalid opcode.
constexpr u8 kExcNm = 7;   ///< Device not available.
constexpr u8 kExcTs = 10;  ///< Invalid TSS.
constexpr u8 kExcNp = 11;  ///< Segment not present.
constexpr u8 kExcSs = 12;  ///< Stack fault.
constexpr u8 kExcGp = 13;  ///< General protection.
constexpr u8 kExcPf = 14;  ///< Page fault.
constexpr u8 kExcNone = 0xff;
/// @}

/// @name Segment-descriptor access-byte bits (x86 encoding).
/// @{
constexpr u8 kDescAccessed = 1u << 0;
constexpr u8 kDescRw = 1u << 1;       ///< Data writable / code readable.
constexpr u8 kDescDc = 1u << 2;       ///< Expand-down / conforming.
constexpr u8 kDescCode = 1u << 3;     ///< 1 = code segment.
constexpr u8 kDescS = 1u << 4;        ///< 1 = code/data (not system).
constexpr u8 kDescDplShift = 5;
constexpr u8 kDescPresent = 1u << 7;
/// @}

/**
 * A segment register: the visible selector plus the hidden descriptor
 * cache (base/limit/access), as on real hardware.
 */
struct SegmentReg
{
    u16 selector = 0;
    u32 base = 0;
    u32 limit = 0;   ///< Effective byte-granular limit (G expanded).
    u8 access = 0;   ///< Access byte as in the descriptor.
    u8 db = 0;       ///< Default-operand-size bit (D/B).

    bool operator==(const SegmentReg &) const = default;
};

/** Descriptor-table register (GDTR / IDTR). */
struct TableReg
{
    u32 base = 0;
    u16 limit = 0;

    bool operator==(const TableReg &) const = default;
};

/** Pending/delivered exception record. */
struct ExceptionInfo
{
    u8 vector = kExcNone; ///< kExcNone when no exception occurred.
    u32 error_code = 0;
    bool has_error_code = false;

    bool present() const { return vector != kExcNone; }
    bool operator==(const ExceptionInfo &) const = default;
};

/** Model-specific registers the subset implements. */
struct MsrFile
{
    u32 sysenter_cs = 0;  ///< MSR 0x174
    u32 sysenter_esp = 0; ///< MSR 0x175
    u32 sysenter_eip = 0; ///< MSR 0x176

    bool operator==(const MsrFile &) const = default;
};

/** The complete VX86 CPU state. */
struct CpuState
{
    std::array<u32, kNumGprs> gpr{};
    u32 eip = 0;
    u32 eflags = kFlagFixed1;
    u32 cr0 = 0;
    u32 cr2 = 0;
    u32 cr3 = 0;
    u32 cr4 = 0;
    TableReg gdtr;
    TableReg idtr;
    std::array<SegmentReg, kNumSegs> seg{};
    MsrFile msr;
    ExceptionInfo exception;
    u8 halted = 0;

    bool operator==(const CpuState &) const = default;
};

/** Size of the guest physical memory on every backend. */
constexpr u32 kPhysMemSize = 4u << 20; // 4 MiB

/**
 * Serialize @p state into the canonical little-endian byte image
 * described in layout.h. @p out must have kCpuStateSize bytes.
 */
void pack_cpu_state(const CpuState &state, u8 *out);

/** Inverse of pack_cpu_state. */
CpuState unpack_cpu_state(const u8 *bytes);

/** Human-readable multi-line dump (examples, failure messages). */
std::string to_string(const CpuState &state);

} // namespace pokeemu::arch

#endif // POKEEMU_ARCH_STATE_H
