/**
 * @file
 * Two-level x86 paging: PDE/PTE bit definitions and the concrete page
 * walk shared by the Lo-Fi emulator and the hardware model. (The Hi-Fi
 * emulator implements the same walk in IR so it can be explored
 * symbolically; its flag-bit addresses are what Figure 3 marks
 * symbolic.)
 */
#ifndef POKEEMU_ARCH_PAGING_H
#define POKEEMU_ARCH_PAGING_H

#include <optional>

#include "arch/state.h"

namespace pokeemu::arch {

/// @name PDE/PTE bits (identical in both levels for the subset).
/// @{
constexpr u32 kPtePresent = 1u << 0;
constexpr u32 kPteRw = 1u << 1;
constexpr u32 kPteUser = 1u << 2;
constexpr u32 kPteAccessed = 1u << 5;
constexpr u32 kPteDirty = 1u << 6;
constexpr u32 kPteFrameMask = 0xfffff000;
/// @}

/** Page-fault error-code bits. */
constexpr u32 kPfErrPresent = 1u << 0; ///< Fault on a present page.
constexpr u32 kPfErrWrite = 1u << 1;
constexpr u32 kPfErrUser = 1u << 2;

/** What a translation attempt needs to know about the access. */
struct AccessIntent
{
    bool write = false;
    bool user = false;
};

/** Result of a page walk: either a physical address or a #PF record. */
struct TranslateResult
{
    bool ok = false;
    u32 phys = 0;
    u32 pf_error = 0; ///< Error code when !ok.
};

/**
 * Concrete two-level page walk.
 *
 * @param ram guest physical memory (kPhysMemSize bytes).
 * @param cr3 page-directory base.
 * @param linear linear address to translate.
 * @param intent access type for permission checks.
 * @param wp CR0.WP: when set, supervisor writes honor read-only PTEs.
 * @param set_accessed_dirty update A/D bits in RAM on success (real
 *        hardware behaviour; an emulator bug knob disables it).
 */
TranslateResult translate_linear(u8 *ram, u32 cr3, u32 linear,
                                 AccessIntent intent, bool wp,
                                 bool set_accessed_dirty);

} // namespace pokeemu::arch

#endif // POKEEMU_ARCH_PAGING_H
