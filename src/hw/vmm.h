/**
 * @file
 * The hardware oracle behind a VMM-style harness (the paper's
 * KVM-based setup, §5.2).
 *
 * The paper runs tests on a real Intel Core i5 supervised by a
 * modified KVM: guest instructions execute natively, and the VMM
 * intercepts traps (exceptions, halts, interrupts) after the baseline
 * is initialized, snapshots the guest CPU + physical memory, and can
 * reset the guest between tests without rebooting the machine. Here
 * the "hardware" is the golden DirectCpu model (DESIGN.md §2) and the
 * Vmm provides the same supervision interface: trap classification,
 * snapshot-on-stop, and cheap guest reset across many tests.
 */
#ifndef POKEEMU_HW_VMM_H
#define POKEEMU_HW_VMM_H

#include "backend/direct_cpu.h"

namespace pokeemu::hw {

/** What the VMM intercepted to end a test (paper §5.2 trap classes). */
enum class TrapKind : u8 {
    Halt,       ///< Guest executed hlt.
    Exception,  ///< A fault would be injected into the guest.
    Timeout,    ///< Budget exhausted (runaway guard).
};

struct GuestRun
{
    TrapKind trap = TrapKind::Timeout;
    arch::Snapshot snapshot;
    u64 insns_executed = 0;
};

/** See file comment. */
class Vmm
{
  public:
    Vmm() : guest_(backend::hardware_behavior()) {}

    /**
     * Reset the guest to @p cpu/@p image, run until a trap, snapshot.
     * Many tests can be run back-to-back on the same Vmm (the paper's
     * "multiple tests can be run without having to reset the machine
     * physically").
     */
    GuestRun run_test(const arch::CpuState &cpu,
                      const std::vector<u8> &image,
                      u64 max_insns = 1u << 16);

    /** Like run_test, but snapshots into @p out's reusable buffers. */
    void run_test_into(const arch::CpuState &cpu,
                       const std::vector<u8> &image, u64 max_insns,
                       GuestRun &out);

    /// @name Supervision statistics.
    /// @{
    u64 tests_run() const { return tests_; }
    u64 halt_traps() const { return halts_; }
    u64 exception_traps() const { return exceptions_; }
    /// @}

    /** Enable cycle accounting on the guest (timing/cost_model.h);
     *  per-run totals then ride along in GuestRun::snapshot. */
    void set_cycle_accounting(bool on)
    {
        guest_.set_cycle_accounting(on);
    }

  private:
    backend::DirectCpu guest_;
    u64 tests_ = 0;
    u64 halts_ = 0;
    u64 exceptions_ = 0;
};

} // namespace pokeemu::hw

#endif // POKEEMU_HW_VMM_H
