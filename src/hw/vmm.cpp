#include "hw/vmm.h"

namespace pokeemu::hw {

GuestRun
Vmm::run_test(const arch::CpuState &cpu, const std::vector<u8> &image,
              u64 max_insns)
{
    GuestRun result;
    run_test_into(cpu, image, max_insns, result);
    return result;
}

void
Vmm::run_test_into(const arch::CpuState &cpu,
                   const std::vector<u8> &image, u64 max_insns,
                   GuestRun &out)
{
    ++tests_;
    guest_.reset(cpu, image);
    switch (guest_.run(max_insns)) {
      case backend::StopReason::Halted:
        out.trap = TrapKind::Halt;
        ++halts_;
        break;
      case backend::StopReason::Exception:
        out.trap = TrapKind::Exception;
        ++exceptions_;
        break;
      case backend::StopReason::InsnLimit:
        out.trap = TrapKind::Timeout;
        break;
    }
    guest_.snapshot_into(out.snapshot);
    out.insns_executed = guest_.insn_count();
}

} // namespace pokeemu::hw
