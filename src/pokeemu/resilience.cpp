#include "pokeemu/resilience.h"

#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "pokeemu/corpus.h"

namespace pokeemu {

namespace {

/** v5 added the cycle-fidelity columns (per-unit cost triples, the
 *  campaign cycle totals + timing-divergence counters, and the two
 *  TimingDivergence clusterers). v4 added the per-unit IR-optimizer
 *  columns (stmts_before, stmts_after, opt_validated, opt_fallback);
 *  v3 added the per-unit solver_queries_avoided column (static
 *  pruning); v2 added per-unit coverage + truncation columns; v1
 *  files carry no coverage data. Resuming an old file would silently
 *  under-report those counters — load refuses all of them by name. */
constexpr const char *kMagic = "pokeemu-checkpoint-v5";
constexpr const char *kMagicOld[] = {
    "pokeemu-checkpoint-v1",
    "pokeemu-checkpoint-v2",
    "pokeemu-checkpoint-v3",
    "pokeemu-checkpoint-v4",
};

[[noreturn]] void
checkpoint_error(const std::string &message)
{
    throw std::logic_error("checkpoint: " + message);
}

void
expect_tag(std::istream &in, const char *tag)
{
    std::string got;
    if (!(in >> got) || got != tag)
        checkpoint_error(std::string("expected '") + tag + "', got '" +
                         got + "'");
}

/** Strings ride in the whitespace-separated container as hex tokens;
 *  the empty string becomes "-" so the token is never zero-width. */
std::string
hex_encode_string(const std::string &s)
{
    if (s.empty())
        return "-";
    return hex_encode(std::vector<u8>(s.begin(), s.end()));
}

std::string
hex_decode_string(const std::string &hex)
{
    if (hex == "-")
        return {};
    const std::vector<u8> bytes = hex_decode(hex);
    return std::string(bytes.begin(), bytes.end());
}

} // namespace

const CheckpointUnit *
Checkpoint::find_unit(int table_index) const
{
    for (const CheckpointUnit &u : explored) {
        if (u.table_index == table_index)
            return &u;
    }
    return nullptr;
}

void
save_checkpoint(std::ostream &out, const Checkpoint &checkpoint)
{
    out << kMagic << "\n";
    out << "fingerprint " << checkpoint.fingerprint << "\n";
    out << "explored " << checkpoint.explored.size() << "\n";
    for (const CheckpointUnit &u : checkpoint.explored) {
        out << "unit " << u.table_index << " " << u.complete << " "
            << u.budget_incomplete << " " << u.paths << " "
            << u.solver_queries << " " << u.solver_cache_hits << " "
            << u.solver_cache_misses << " "
            << u.solver_queries_avoided << " "
            << u.minimize_bits_before
            << " " << u.minimize_bits_after << " "
            << u.generation_failures << " " << u.covered_blocks << " "
            << u.total_blocks << " " << u.covered_edges << " "
            << u.total_edges << " "
            << static_cast<unsigned>(u.truncation) << " "
            << u.stmts_before << " " << u.stmts_after << " "
            << u.opt_validated << " " << u.opt_fallback << " "
            << u.cost_base << " " << u.cost_mem_accesses << " "
            << u.cost_fault_extra << " "
            << u.tests.size() << "\n";
        for (const CheckpointTest &t : u.tests) {
            out << "test " << t.id << " " << t.table_index << " "
                << t.test_insn_offset << " " << t.halt_code << " "
                << hex_encode(t.code) << "\n";
        }
    }
    const CheckpointExecution &e = checkpoint.execution;
    out << "executed " << e.executed_count << "\n";
    out << "counters " << e.tests_executed << " " << e.lofi_raw_diffs
        << " " << e.hifi_raw_diffs << " " << e.lofi_diffs << " "
        << e.hifi_diffs << " " << e.filtered_undefined << " "
        << e.timeouts << " " << e.hifi_timeouts << " "
        << e.lofi_timeouts << " " << e.hw_timeouts << " "
        << e.hifi_cycles << " " << e.lofi_cycles << " "
        << e.hw_cycles << " " << e.lofi_timing_divergences << " "
        << e.hifi_timing_divergences << "\n";
    e.lofi_clusters.save(out);
    e.hifi_clusters.save(out);
    e.lofi_timing_clusters.save(out);
    e.hifi_timing_clusters.save(out);
    const auto &quarantined = checkpoint.quarantine.units();
    out << "quarantined " << quarantined.size() << "\n";
    for (const support::QuarantinedUnit &q : quarantined) {
        out << "q " << static_cast<unsigned>(q.stage) << " "
            << static_cast<unsigned>(q.cls) << " "
            << hex_encode_string(q.unit) << " "
            << hex_encode_string(q.message) << "\n";
    }
    out << "end\n";
}

Checkpoint
load_checkpoint(std::istream &in)
{
    std::string magic;
    if (!std::getline(in, magic) || magic != kMagic) {
        for (const char *old : kMagicOld) {
            if (magic == old) {
                checkpoint_error(
                    "this is a " + magic + " file; the current format "
                    "is pokeemu-checkpoint-v5 (cycle-fidelity "
                    "columns) and old progress cannot be resumed — "
                    "delete the old checkpoint and restart the "
                    "campaign");
            }
        }
        checkpoint_error("bad header (version mismatch?)");
    }

    Checkpoint cp;
    expect_tag(in, "fingerprint");
    if (!(in >> cp.fingerprint))
        checkpoint_error("bad fingerprint");

    expect_tag(in, "explored");
    std::size_t nunits = 0;
    if (!(in >> nunits))
        checkpoint_error("bad unit count");
    cp.explored.reserve(std::min<std::size_t>(nunits, 1u << 20));
    for (std::size_t i = 0; i < nunits; ++i) {
        expect_tag(in, "unit");
        CheckpointUnit u;
        std::size_t ntests = 0;
        unsigned truncation = 0;
        if (!(in >> u.table_index >> u.complete >>
              u.budget_incomplete >> u.paths >> u.solver_queries >>
              u.solver_cache_hits >> u.solver_cache_misses >>
              u.solver_queries_avoided >>
              u.minimize_bits_before >> u.minimize_bits_after >>
              u.generation_failures >> u.covered_blocks >>
              u.total_blocks >> u.covered_edges >> u.total_edges >>
              truncation >> u.stmts_before >> u.stmts_after >>
              u.opt_validated >> u.opt_fallback >> u.cost_base >>
              u.cost_mem_accesses >> u.cost_fault_extra >> ntests)) {
            checkpoint_error("truncated unit row");
        }
        if (truncation >= coverage::kNumTruncationReasons)
            checkpoint_error("bad unit truncation reason");
        u.truncation =
            static_cast<coverage::TruncationReason>(truncation);
        u.tests.reserve(std::min<std::size_t>(ntests, 1u << 20));
        for (std::size_t t = 0; t < ntests; ++t) {
            expect_tag(in, "test");
            CheckpointTest test;
            std::string hex;
            if (!(in >> test.id >> test.table_index >>
                  test.test_insn_offset >> test.halt_code >> hex)) {
                checkpoint_error("truncated test row");
            }
            test.code = hex_decode(hex);
            u.tests.push_back(std::move(test));
        }
        cp.explored.push_back(std::move(u));
    }

    expect_tag(in, "executed");
    CheckpointExecution &e = cp.execution;
    if (!(in >> e.executed_count))
        checkpoint_error("bad executed count");
    expect_tag(in, "counters");
    if (!(in >> e.tests_executed >> e.lofi_raw_diffs >>
          e.hifi_raw_diffs >> e.lofi_diffs >> e.hifi_diffs >>
          e.filtered_undefined >> e.timeouts >> e.hifi_timeouts >>
          e.lofi_timeouts >> e.hw_timeouts >> e.hifi_cycles >>
          e.lofi_cycles >> e.hw_cycles >>
          e.lofi_timing_divergences >> e.hifi_timing_divergences)) {
        checkpoint_error("truncated counters row");
    }
    e.lofi_clusters.load(in);
    e.hifi_clusters.load(in);
    e.lofi_timing_clusters.load(in);
    e.hifi_timing_clusters.load(in);
    expect_tag(in, "quarantined");
    std::size_t nquarantined = 0;
    if (!(in >> nquarantined))
        checkpoint_error("bad quarantine count");
    for (std::size_t i = 0; i < nquarantined; ++i) {
        expect_tag(in, "q");
        unsigned stage = 0;
        unsigned cls = 0;
        std::string unit_hex;
        std::string message_hex;
        if (!(in >> stage >> cls >> unit_hex >> message_hex))
            checkpoint_error("truncated quarantine row");
        if (stage > static_cast<unsigned>(support::Stage::Backend) ||
            cls > static_cast<unsigned>(
                      support::FaultClass::SnapshotCorrupt)) {
            checkpoint_error("bad quarantine stage/class");
        }
        cp.quarantine.add(static_cast<support::Stage>(stage),
                          hex_decode_string(unit_hex),
                          static_cast<support::FaultClass>(cls),
                          hex_decode_string(message_hex));
    }
    expect_tag(in, "end");
    return cp;
}

void
save_checkpoint_file(const std::string &path,
                     const Checkpoint &checkpoint)
{
    // Write-then-rename so an interrupted write never leaves a
    // truncated checkpoint where a resumable one used to be.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            checkpoint_error("cannot open '" + tmp + "' for writing");
        save_checkpoint(out, checkpoint);
        if (!out)
            checkpoint_error("write to '" + tmp + "' failed");
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        checkpoint_error("rename to '" + path +
                         "' failed: " + ec.message());
}

std::optional<Checkpoint>
load_checkpoint_file(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return std::nullopt;
    return load_checkpoint(in);
}

} // namespace pokeemu
