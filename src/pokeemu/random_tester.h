/**
 * @file
 * The random-testing baseline (paper §8, Martignoni et al. ISSTA'09):
 * randomly generated instructions with randomly initialized register
 * state, run through the same three-way comparison. Experiment E5
 * contrasts the defect classes this finds against path-exploration
 * lifting at an equal test budget — the paper's claim is that the
 * order/alignment-sensitive bugs (iret pop order, far-pointer fetch
 * order, segment-limit corner cases) have vanishing probability under
 * uniform random state.
 */
#ifndef POKEEMU_POKEEMU_RANDOM_TESTER_H
#define POKEEMU_POKEEMU_RANDOM_TESTER_H

#include "harness/cluster.h"
#include "harness/runner.h"

namespace pokeemu {

struct RandomTesterOptions
{
    u64 num_tests = 1000;
    u64 seed = 42;
    lofi::BugConfig bugs{};
    u64 max_insns_per_test = 1u << 14;
};

struct RandomTesterStats
{
    u64 tests = 0;
    u64 lofi_diffs = 0;
    u64 hifi_diffs = 0;
    u64 filtered_undefined = 0;
    harness::RootCauseClusterer lofi_clusters;
    double seconds = 0;
};

/** Run the baseline; see file comment. */
RandomTesterStats run_random_testing(const RandomTesterOptions &options);

} // namespace pokeemu

#endif // POKEEMU_POKEEMU_RANDOM_TESTER_H
