/**
 * @file
 * Persistent test corpora — the paper's deployment story (§6: "This is
 * already fast enough to use for nightly regression testing", and
 * §6.2: "the test programs we have generated can be used again in the
 * future to validate the implementation when this currently missing
 * feature is available").
 *
 * Exploration is the expensive stage; the generated test programs are
 * self-contained byte sequences. A corpus file stores them so a CI job
 * can re-run cross-validation against a changed emulator without
 * re-exploring. The format is a simple self-describing text container
 * (stable across versions of this library, diff-friendly in review).
 */
#ifndef POKEEMU_POKEEMU_CORPUS_H
#define POKEEMU_POKEEMU_CORPUS_H

#include <iosfwd>

#include "harness/cluster.h"
#include "pokeemu/pipeline.h"

namespace pokeemu {

/** One corpus entry: everything needed to re-run and classify. */
struct CorpusTest
{
    u64 id = 0;
    /** The full test program (initializer + test insn(s) + hlt). */
    std::vector<u8> code;
    /** Offset of the (first) test instruction within code. */
    u32 test_insn_offset = 0;
    std::string mnemonic;
};

/// @name Serialization idiom shared with checkpoint files
/// (resilience.h): lowercase hex, no separators.
/// @{
std::string hex_encode(const std::vector<u8> &bytes);
/** Throws std::logic_error on odd length or non-hex characters. */
std::vector<u8> hex_decode(const std::string &hex);
/// @}

/** Serialize @p tests to @p out. */
void save_corpus(std::ostream &out,
                 const std::vector<GeneratedTest> &tests);

/** Parse a corpus; throws std::logic_error on malformed input. */
std::vector<CorpusTest> load_corpus(std::istream &in);

/** Result of replaying a corpus against one Lo-Fi configuration. */
struct ReplayStats
{
    u64 tests = 0;
    u64 lofi_diffs = 0;
    u64 hifi_diffs = 0;
    u64 filtered_undefined = 0;
    u64 timeouts = 0;
    harness::RootCauseClusterer lofi_clusters;
};

/**
 * Re-run every corpus test on the three backends with @p bugs seeded
 * into the Lo-Fi emulator (the "new emulator build" under regression).
 */
ReplayStats replay_corpus(const std::vector<CorpusTest> &tests,
                          const lofi::BugConfig &bugs);

} // namespace pokeemu

#endif // POKEEMU_POKEEMU_CORPUS_H
