#include "pokeemu/random_tester.h"

#include <chrono>

#include "arch/assembler.h"
#include "harness/filter.h"
#include "support/rng.h"

namespace pokeemu {

namespace layout = arch::layout;

namespace {

/** Generate one random-but-decodable test instruction. */
arch::DecodedInsn
random_instruction(Rng &rng)
{
    const auto &table = arch::insn_table();
    for (;;) {
        const arch::InsnDesc &d = table[rng.below(table.size())];
        u8 buf[arch::kMaxInsnLength] = {};
        unsigned p = 0;
        if (d.opcode >= 0x100)
            buf[p++] = 0x0f;
        buf[p++] = static_cast<u8>(d.opcode & 0xff);
        if (d.has_modrm) {
            u8 modrm = static_cast<u8>(rng.next());
            if (d.group_reg >= 0) {
                modrm = static_cast<u8>((modrm & ~0x38) |
                                        (d.group_reg << 3));
            }
            buf[p++] = modrm;
        }
        for (; p < arch::kMaxInsnLength; ++p)
            buf[p] = static_cast<u8>(rng.next());
        arch::DecodedInsn insn;
        if (arch::decode(buf, sizeof buf, insn) ==
            arch::DecodeStatus::Ok) {
            return insn;
        }
    }
}

} // namespace

RandomTesterStats
run_random_testing(const RandomTesterOptions &options)
{
    const auto start = std::chrono::steady_clock::now();
    Rng rng(options.seed);

    harness::TestRunner::Config cfg;
    cfg.bugs = options.bugs;
    cfg.max_insns = options.max_insns_per_test;
    harness::TestRunner runner(cfg);

    RandomTesterStats stats;
    for (u64 t = 0; t < options.num_tests; ++t) {
        const arch::DecodedInsn insn = random_instruction(rng);

        // Random state initializer: registers and flags uniformly
        // random (the ISSTA'09-style baseline), plus occasional random
        // descriptor/page-table pokes so the baseline is not strawman-
        // weak on system state.
        arch::Assembler a(layout::kPhysTestCode);
        a.push_imm32(static_cast<u32>(rng.next()) & 0x47fd5);
        a.popfd();
        if (rng.below(4) == 0) {
            // Poke one random byte of GDT entry 2 or 10, then reload.
            const unsigned entry = rng.flip() ? 2 : 10;
            a.mov_mem_imm8(layout::kPhysGdt + 8 * entry +
                               static_cast<u32>(rng.below(8)),
                           static_cast<u8>(rng.next()));
            a.mov_r32_imm32(arch::kEax, entry * 8);
            a.mov_sreg_r16(entry == 10 ? arch::kSs : arch::kDs,
                           arch::kEax);
        }
        if (rng.below(4) == 0) {
            // Clear one random PTE's present bit.
            const u32 pte =
                layout::kPhysPageTable + 4 * (rng.next() & 0x3ff);
            a.mov_mem_imm8(pte, 0x66); // P=0, keep RW/US/A.
        }
        for (unsigned r = 0; r < arch::kNumGprs; ++r) {
            if (r != arch::kEax)
                a.mov_r32_imm32(static_cast<arch::Gpr>(r),
                                static_cast<u32>(rng.next()));
        }
        a.mov_r32_imm32(arch::kEax, static_cast<u32>(rng.next()));
        std::vector<u8> code = a.bytes();
        code.insert(code.end(), insn.bytes,
                    insn.bytes + insn.length);
        code.push_back(0xf4); // hlt

        const harness::ThreeWayResult result = runner.run(code);
        ++stats.tests;
        if (result.hifi.timed_out || result.lofi.timed_out ||
            result.hw.timed_out) {
            continue;
        }

        const arch::SnapshotDiff lofi_diff = arch::diff_snapshots(
            result.lofi.snapshot, result.hw.snapshot);
        if (!lofi_diff.empty()) {
            const auto filtered = harness::filter_undefined(
                insn, result.lofi.snapshot, result.hw.snapshot,
                lofi_diff);
            if (filtered.fully_filtered()) {
                ++stats.filtered_undefined;
            } else {
                ++stats.lofi_diffs;
                stats.lofi_clusters.add(t, insn, filtered.remaining,
                                        result.lofi.snapshot,
                                        result.hw.snapshot);
            }
        }
        const arch::SnapshotDiff hifi_diff = arch::diff_snapshots(
            result.hifi.snapshot, result.hw.snapshot);
        if (!hifi_diff.empty()) {
            const auto filtered = harness::filter_undefined(
                insn, result.hifi.snapshot, result.hw.snapshot,
                hifi_diff);
            if (!filtered.fully_filtered())
                ++stats.hifi_diffs;
        }
    }
    stats.seconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    return stats;
}

} // namespace pokeemu
