/**
 * @file
 * Parallel sharded campaign driver.
 *
 * The paper's headline sweep (§6: 68,977 candidate instructions,
 * 610,516 paths) is embarrassingly parallel across instructions: each
 * unit's exploration is a pure function of (instruction, options).
 * This driver partitions the instruction set deterministically across
 * N workers, runs each shard as its own Pipeline — with its own
 * checkpoint file and quarantine ledger — in time-sliced
 * sessions, and merges shard progress into one campaign report.
 *
 * Determinism contract: the merged report is byte-identical regardless
 * of shard count, shard completion order, and how many sessions each
 * shard took. The pieces that make that true:
 *
 *  - Interleaved assignment: campaign position p belongs to shard
 *    p % N, so the campaign order (and the 1-shard order) is a fixed
 *    reference frame every layout maps back onto.
 *  - Per-unit purity: the per-worker solver memo is cleared at unit
 *    boundaries (QueryMemo::begin_unit), so a unit's paths, tests and
 *    verdicts cannot depend on which units preceded it on the worker.
 *  - Global renumbering: shard-local test ids are rewritten to the
 *    campaign-order numbering (exactly what a 1-shard run assigns)
 *    before counters, clusters, and quarantine entries are merged.
 *  - The report carries no timings, session counts, or shard counts —
 *    those are observable via CampaignResult fields instead.
 */
#ifndef POKEEMU_POKEEMU_SHARD_H
#define POKEEMU_POKEEMU_SHARD_H

#include "pokeemu/pipeline.h"

namespace pokeemu {

/** Configuration of one sharded campaign. */
struct CampaignOptions
{
    /** Base pipeline options, shared by every shard. The resilience
     *  checkpoint_path / resume / preemption quotas inside are
     *  overridden per shard from the fields below. */
    PipelineOptions pipeline{};
    /** Number of workers (>= 1). */
    u32 shards = 1;
    /** Directory for per-shard checkpoints, the campaign manifest and
     *  the merged checkpoint (created if missing). Empty disables
     *  checkpointing; slicing and resume then refuse to run. */
    std::string checkpoint_dir;
    /** Resume a prior campaign from checkpoint_dir. The manifest
     *  refuses a resume under a different shard count or options. */
    bool resume = false;
    /** Per-session stage-2/3 quota per shard (fresh units); 0 = no
     *  slicing. A preempted shard runs another session until done. */
    u32 explore_slice_units = 0;
    /** Per-session stage-4/5 quota per shard (fresh tests). */
    u32 execute_slice_tests = 0;
    /** Stop each shard after this many sessions even if incomplete
     *  (0 = run to completion) — lets callers simulate interruption;
     *  the next run_campaign with resume=true continues. */
    u32 max_sessions_per_shard = 0;
    /** Run shard workers on std::threads (false = sequentially in the
     *  calling thread; identical results, useful for debugging). */
    bool parallel = true;
};

/** Deterministic partition of the campaign workload. */
struct ShardPlan
{
    /** All table indices, in campaign order (= 1-shard order). */
    std::vector<int> campaign_order;
    /** assignments[s] = indices owned by shard s, in campaign order
     *  (campaign position p is owned by shard p % N). */
    std::vector<std::vector<int>> assignments;
};

/** Partition @p indices across @p shards by interleaving. */
ShardPlan plan_shards(const std::vector<int> &indices, u32 shards);

/** What one shard worker produced. */
struct ShardOutcome
{
    u32 shard = 0;
    u32 sessions = 0;     ///< Pipeline sessions this run_campaign ran.
    bool complete = false;
    /** Final session's stats (cumulative across resumed sessions). */
    PipelineStats stats;
    /** Final checkpoint content (shard-local test ids). */
    Checkpoint progress;
};

/** A campaign's merged result. */
struct CampaignResult
{
    bool complete = false; ///< Every shard finished its workload.
    u32 shards = 0;
    u64 sessions = 0;      ///< Total sessions across shards.
    double wall_seconds = 0;
    /** Merged, renumbered, layout-invariant stats (timings and
     *  session-scoped counters are left zero). */
    PipelineStats merged;
    /** Merged checkpoint in campaign order with campaign-global test
     *  ids; also written to checkpoint_dir as campaign.ckpt. */
    Checkpoint merged_checkpoint;
    std::vector<ShardOutcome> outcomes;

    /**
     * The deterministic campaign report: byte-identical for the same
     * workload and options regardless of shard count, completion
     * order, or session slicing. Timings, shard and session counts are
     * deliberately absent (read the fields above instead).
     */
    std::string report() const;
};

/** Run a sharded campaign; see file comment. Throws std::logic_error
 *  on configuration errors (slicing without a checkpoint_dir, resume
 *  under a different layout, ...). */
CampaignResult run_campaign(const CampaignOptions &options);

} // namespace pokeemu

#endif // POKEEMU_POKEEMU_SHARD_H
