#include "pokeemu/pipeline.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "support/logging.h"

namespace pokeemu {

namespace {

double
seconds_since(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

Pipeline::Pipeline(PipelineOptions options)
    : options_(options),
      summary_(hifi::summarize_descriptor_load(summary_pool_))
{
    spec_ = std::make_unique<explore::StateSpec>(
        testgen::baseline_cpu_state(), testgen::baseline_ram_after_init(),
        &summary_);
}

Pipeline::~Pipeline() = default;

void
Pipeline::explore_and_generate()
{
    assert(!explored_);
    explored_ = true;

    // ---- Stage 1: instruction-set exploration (paper §3.2). ----
    // When the caller names the instructions directly, the (costly)
    // decoder exploration is skipped and canonical encodings are used;
    // the full exploration result is memoized across Pipeline
    // instances (it is deterministic for a given seed).
    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::pair<int, std::vector<u8>>> selected;
    if (!options_.instruction_filter.empty()) {
        for (int index : options_.instruction_filter) {
            selected.emplace_back(index,
                                  arch::canonical_encoding(index));
            stats_.insn_set.representatives[index] = selected.back()
                                                         .second;
        }
        stats_.insn_set.candidate_sequences = selected.size();
    } else {
        static std::map<u64, explore::InsnSetResult> memo;
        auto it = memo.find(options_.seed);
        if (it == memo.end()) {
            it = memo.emplace(options_.seed,
                              explore::explore_instruction_set(
                                  {3, 1u << 20, options_.seed}))
                     .first;
        }
        stats_.insn_set = it->second;
        for (const auto &[index, bytes] :
             stats_.insn_set.representatives) {
            selected.emplace_back(index, bytes);
        }
    }
    stats_.t_insn_exploration = seconds_since(t0);
    if (options_.max_instructions &&
        selected.size() > options_.max_instructions) {
        selected.resize(options_.max_instructions);
    }

    // ---- Stages 2+3: per-instruction exploration + generation. ----
    explore::StateExploreOptions xopt;
    xopt.max_paths = options_.max_paths_per_insn;
    xopt.seed = options_.seed;
    xopt.use_descriptor_summary = options_.use_descriptor_summary;
    xopt.minimize = options_.minimize;

    u64 next_test_id = 0;
    for (const auto &[index, bytes] : selected) {
        arch::DecodedInsn insn;
        const auto status =
            arch::decode(bytes.data(), bytes.size(), insn);
        if (status != arch::DecodeStatus::Ok ||
            insn.table_index != index) {
            panic("pipeline: representative bytes failed to decode");
        }

        t0 = std::chrono::steady_clock::now();
        explore::StateExploreOptions per_insn = xopt;
        if (insn.rep || insn.repne) {
            per_insn.max_paths =
                std::min(xopt.max_paths, options_.max_paths_rep);
            per_insn.max_steps = 3000;
        }
        explore::StateExploreResult explored = explore_instruction(
            insn, *spec_, &summary_, per_insn);
        stats_.t_state_exploration += seconds_since(t0);

        ++stats_.instructions_explored;
        if (explored.stats.complete)
            ++stats_.instructions_complete;
        stats_.total_paths += explored.stats.paths;
        stats_.solver_queries += explored.stats.solver_queries;
        stats_.minimize_bits_before +=
            explored.minimize.bits_different_before;
        stats_.minimize_bits_after +=
            explored.minimize.bits_different_after;

        // Stage 3: one test program per path (paper Figure 1(3)).
        t0 = std::chrono::steady_clock::now();
        for (const explore::ExploredPath &path : explored.paths) {
            testgen::GenResult gen = testgen::generate_test_program(
                insn, path.assignment, *spec_, explored.pool);
            if (gen.status != testgen::GenStatus::Ok) {
                ++stats_.generation_failures;
                continue;
            }
            GeneratedTest test;
            test.id = next_test_id++;
            test.table_index = index;
            test.insn = insn;
            test.program = std::move(gen.program);
            test.halt_code = path.halt_code;
            tests_.push_back(std::move(test));
            ++stats_.test_programs;
        }
        stats_.t_generation += seconds_since(t0);
    }
}

void
Pipeline::execute_and_compare()
{
    harness::TestRunner::Config cfg;
    cfg.bugs = options_.bugs;
    cfg.max_insns = options_.max_insns_per_test;
    harness::TestRunner runner(cfg);

    // Reused across tests: fresh 4 MiB snapshot allocations per test
    // would dominate (and distort) the measured execution costs.
    harness::BackendRun hifi_run, lofi_run, hw_run;
    for (const GeneratedTest &test : tests_) {
        auto t0 = std::chrono::steady_clock::now();
        runner.run_one_into(harness::Backend::HiFi, test.program.code,
                            hifi_run);
        stats_.t_execution_hifi += seconds_since(t0);

        t0 = std::chrono::steady_clock::now();
        runner.run_one_into(harness::Backend::LoFi, test.program.code,
                            lofi_run);
        stats_.t_execution_lofi += seconds_since(t0);

        t0 = std::chrono::steady_clock::now();
        runner.run_one_into(harness::Backend::Hardware,
                            test.program.code, hw_run);
        stats_.t_execution_hw += seconds_since(t0);

        ++stats_.tests_executed;
        if (hifi_run.timed_out || lofi_run.timed_out ||
            hw_run.timed_out) {
            ++stats_.timeouts;
            continue;
        }

        t0 = std::chrono::steady_clock::now();
        const auto analyze = [&](const harness::BackendRun &run,
                                 u64 &raw, u64 &real,
                                 harness::RootCauseClusterer &cl) {
            const arch::SnapshotDiff diff =
                arch::diff_snapshots(run.snapshot, hw_run.snapshot);
            if (diff.empty())
                return;
            ++raw;
            const harness::FilterResult filtered =
                harness::filter_undefined(test.insn, run.snapshot,
                                          hw_run.snapshot, diff);
            if (filtered.fully_filtered()) {
                ++stats_.filtered_undefined;
                return;
            }
            ++real;
            cl.add(test.id, test.insn, filtered.remaining,
                   run.snapshot, hw_run.snapshot);
        };
        analyze(lofi_run, stats_.lofi_raw_diffs, stats_.lofi_diffs,
                stats_.lofi_clusters);
        analyze(hifi_run, stats_.hifi_raw_diffs, stats_.hifi_diffs,
                stats_.hifi_clusters);
        stats_.t_comparison += seconds_since(t0);
    }
}

const PipelineStats &
Pipeline::run()
{
    explore_and_generate();
    execute_and_compare();
    return stats_;
}

std::string
PipelineStats::to_string() const
{
    std::ostringstream os;
    os << "== PokeEMU pipeline ==\n";
    os << "stage 1 (instruction-set exploration): "
       << insn_set.candidate_sequences << " candidate sequences -> "
       << insn_set.representatives.size() << " unique instructions ("
       << t_insn_exploration << "s)\n";
    os << "stage 2 (state exploration): " << instructions_explored
       << " instructions, " << total_paths << " paths, "
       << instructions_complete << " with complete path coverage ("
       << t_state_exploration << "s, " << solver_queries
       << " solver queries)\n";
    os << "minimization: " << minimize_bits_before
       << " differing bits -> " << minimize_bits_after << "\n";
    os << "stage 3 (test generation): " << test_programs
       << " test programs, " << generation_failures << " failures ("
       << t_generation << "s)\n";
    os << "stage 4 (execution): " << tests_executed << " tests ("
       << "hifi " << t_execution_hifi << "s, lofi " << t_execution_lofi
       << "s, hw " << t_execution_hw << "s), " << timeouts
       << " timeouts\n";
    os << "stage 5 (comparison, " << t_comparison << "s):\n";
    os << "  lofi vs hw: " << lofi_raw_diffs << " raw, " << lofi_diffs
       << " after undefined-behaviour filtering\n";
    os << "  hifi vs hw: " << hifi_raw_diffs << " raw, " << hifi_diffs
       << " after filtering\n";
    os << "  " << filtered_undefined
       << " differences were entirely undefined behaviour\n";
    os << "lofi root causes:\n" << lofi_clusters.to_string();
    os << "hifi root causes:\n" << hifi_clusters.to_string();
    return os.str();
}

} // namespace pokeemu
