#include "pokeemu/pipeline.h"

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <memory>
#include <mutex>
#include <sstream>

#include "analysis/equiv.h"
#include "arch/layout.h"
#include "harness/filter.h"
#include "support/logging.h"
#include "timing/cost_model.h"

namespace pokeemu {

using support::FaultClass;
using support::FaultSite;
using support::Stage;

namespace {

double
seconds_since(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** splitmix64-style fingerprint accumulation. */
u64
fp_mix(u64 x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

void
fp_add(u64 &h, u64 v)
{
    h = fp_mix(h ^ fp_mix(v));
}

/** Fold one explored unit's coverage + truncation row into the
 *  campaign-level accounting (shared by fresh units and resume). */
void
account_unit_coverage(PipelineStats &stats, const CheckpointUnit &unit)
{
    stats.covered_blocks += unit.covered_blocks;
    stats.total_blocks += unit.total_blocks;
    stats.covered_edges += unit.covered_edges;
    stats.total_edges += unit.total_edges;
    ++stats.coverage_histogram[coverage::coverage_bucket(
        unit.covered_blocks, unit.total_blocks)];
    switch (unit.truncation) {
      case coverage::TruncationReason::PathCap:
        ++stats.truncated_path_cap;
        break;
      case coverage::TruncationReason::Deadline:
        ++stats.truncated_deadline;
        break;
      case coverage::TruncationReason::StepLimit:
        ++stats.truncated_step_limit;
        break;
      case coverage::TruncationReason::None:
      case coverage::TruncationReason::SolverTimeout:
        // None is not a truncation; SolverTimeout units never reach a
        // CheckpointUnit (the ledger is their record).
        break;
    }
}

} // namespace

u64
options_fingerprint(const PipelineOptions &options)
{
    u64 h = 0x706f6b65656d7531ULL; // "pokeemu1"
    fp_add(h, options.max_paths_per_insn);
    fp_add(h, options.max_paths_rep);
    fp_add(h, options.seed);
    fp_add(h, static_cast<u64>(options.schedule));
    fp_add(h, options.instruction_filter.size());
    for (int index : options.instruction_filter)
        fp_add(h, static_cast<u64>(index));
    fp_add(h, options.max_instructions);
    fp_add(h, options.use_descriptor_summary);
    fp_add(h, options.minimize);
    // The prune mode never changes results, but it decides how probes
    // split between solver_queries and solver_queries_avoided; resuming
    // a checkpoint under a different mode would mix the two.
    fp_add(h, static_cast<u64>(options.prune));
    // The optimizer mode never changes generated tests either, but it
    // decides whether the per-unit IR-optimizer checkpoint columns are
    // filled; resuming under a different mode would mix full and empty
    // columns in one file.
    fp_add(h, static_cast<u64>(options.opt));
    // Compiled dispatch never changes results either (CrossCheck
    // proves it per instruction), but the modes quarantine different
    // units under injected faults and fill the hit/miss counters
    // differently; a checkpoint must not resume across modes.
    fp_add(h, static_cast<u64>(options.compiled));
    // Timing changes what is measured (cycle totals, TimingDivergence
    // counts and clusters are all zero with it off), so a checkpoint
    // written under one mode must not resume under the other.
    fp_add(h, options.timing);
    fp_add(h, options.max_insns_per_test);
    const lofi::BugConfig &b = options.bugs;
    fp_add(h, (u64{b.no_segment_checks} << 0) |
               (u64{b.leave_nonatomic} << 1) |
               (u64{b.cmpxchg_nonatomic} << 2) |
               (u64{b.iret_pop_order} << 3) |
               (u64{b.rdmsr_no_gp} << 4) |
               (u64{b.no_accessed_flag} << 5) |
               (u64{b.reject_valid_encodings} << 6) |
               (u64{b.undef_flags_divergence} << 7) |
               (u64{b.flags_wrong_width} << 8) |
               (u64{b.far_fetch_selector_first} << 9) |
               (u64{b.pte_accessed_dirty_dropped} << 10) |
               (u64{b.seg_limit_off_by_one} << 11) |
               (u64{b.wrmsr_truncated} << 12) |
               (u64{b.half_cycle_accounting} << 13) |
               (u64{b.mem_access_cost_dropped} << 14));
    // A crash/hang/corrupt variant quarantines different tests, so a
    // checkpoint written under one misbehaviour class must not resume
    // under another. (The watchdog budgets are resilience knobs and
    // deliberately stay out of the fingerprint, like all of them.)
    fp_add(h, static_cast<u64>(options.lofi_misbehavior));
    return h;
}

Pipeline::Pipeline(PipelineOptions options)
    : options_(options),
      summary_(hifi::summarize_descriptor_load(summary_pool_)),
      injector_(options.resilience.faults)
{
    spec_ = std::make_unique<explore::StateSpec>(
        testgen::baseline_cpu_state(), testgen::baseline_ram_after_init(),
        &summary_);
    checkpoint_.fingerprint = options_fingerprint(options_);
    const ResilienceOptions &res = options_.resilience;
    if (res.resume && !res.checkpoint_path.empty()) {
        resumed_ = load_checkpoint_file(res.checkpoint_path);
        if (resumed_ &&
            resumed_->fingerprint != checkpoint_.fingerprint) {
            throw std::logic_error(
                "checkpoint: '" + res.checkpoint_path +
                "' was written under different pipeline options; "
                "refusing to resume");
        }
    }
}

Pipeline::~Pipeline() = default;

bool
Pipeline::quarantine(Stage stage, std::string unit, FaultClass cls,
                     std::string message)
{
    // A resumed session re-attempts units the previous session
    // quarantined (they are absent from the checkpoint's explored
    // list); when the fault is deterministic the entry re-occurs
    // verbatim and must not be ledgered twice.
    if (stats_.quarantine.contains(stage, unit, cls, message))
        return false;
    const bool reoccurrence =
        prior_quarantine_.contains(stage, unit, cls, message);
    if (!reoccurrence) {
        log_warn("pipeline: quarantined [", support::stage_name(stage),
                 "] ", unit, ": ", message);
    }
    stats_.quarantine.add(stage, std::move(unit), cls,
                          std::move(message));
    return !reoccurrence;
}

void
Pipeline::write_checkpoint()
{
    if (options_.resilience.checkpoint_path.empty())
        return;
    checkpoint_.quarantine = stats_.quarantine;
    save_checkpoint_file(options_.resilience.checkpoint_path,
                         checkpoint_);
    ++stats_.checkpoints_written;
}

void
Pipeline::restore_unit(const CheckpointUnit &unit, u64 &next_test_id)
{
    ++stats_.instructions_explored;
    if (unit.complete)
        ++stats_.instructions_complete;
    if (unit.budget_incomplete)
        ++stats_.budget_incomplete;
    stats_.total_paths += unit.paths;
    stats_.solver_queries += unit.solver_queries;
    stats_.solver_cache_hits += unit.solver_cache_hits;
    stats_.solver_cache_misses += unit.solver_cache_misses;
    stats_.solver_queries_avoided += unit.solver_queries_avoided;
    stats_.minimize_bits_before += unit.minimize_bits_before;
    stats_.minimize_bits_after += unit.minimize_bits_after;
    stats_.generation_failures += unit.generation_failures;
    stats_.opt_stmts_before += unit.stmts_before;
    stats_.opt_stmts_after += unit.stmts_after;
    if (unit.opt_validated)
        ++stats_.opt_units_validated;
    if (unit.opt_fallback) {
        ++stats_.opt_validation_failures;
        opt_fallback_.insert(unit.table_index);
    }
    account_unit_coverage(stats_, unit);

    for (const CheckpointTest &saved : unit.tests) {
        GeneratedTest test;
        test.id = saved.id;
        test.table_index = saved.table_index;
        // Re-decode the test instruction from the program bytes (the
        // corpus-replay idiom); listing/gadget metadata is not
        // persisted, only what re-execution needs.
        if (saved.test_insn_offset >= saved.code.size())
            throw std::logic_error(
                "checkpoint: test offset out of range");
        u8 buf[arch::kMaxInsnLength] = {};
        const std::size_t n = std::min<std::size_t>(
            arch::kMaxInsnLength,
            saved.code.size() - saved.test_insn_offset);
        std::copy_n(saved.code.begin() + saved.test_insn_offset, n,
                    buf);
        if (arch::decode(buf, arch::kMaxInsnLength, test.insn) !=
            arch::DecodeStatus::Ok) {
            throw std::logic_error(
                "checkpoint: persisted test does not decode");
        }
        test.program.code = saved.code;
        test.program.test_insn_offset = saved.test_insn_offset;
        test.halt_code = saved.halt_code;
        next_test_id = std::max(next_test_id, saved.id + 1);
        tests_.push_back(std::move(test));
        ++stats_.test_programs;
    }
    ++stats_.units_resumed;
}

void
Pipeline::explore_and_generate()
{
    assert(!explored_);
    explored_ = true;

    const ResilienceOptions &res = options_.resilience;
    const BudgetOptions &budgets = res.budgets;
    support::FaultInjector *inj =
        injector_.enabled() ? &injector_ : nullptr;

    // ---- Stage 1: instruction-set exploration (paper §3.2). ----
    // When the caller names the instructions directly, the (costly)
    // decoder exploration is skipped and canonical encodings are used;
    // the full exploration result is memoized across Pipeline
    // instances (it is deterministic for a given seed).
    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::pair<int, std::vector<u8>>> selected;
    if (!options_.instruction_filter.empty()) {
        for (int index : options_.instruction_filter) {
            selected.emplace_back(index,
                                  arch::canonical_encoding(index));
            stats_.insn_set.representatives[index] = selected.back()
                                                         .second;
        }
        stats_.insn_set.candidate_sequences = selected.size();
    } else {
        // Shared across Pipeline instances — including ones running in
        // concurrent shard workers — hence the lock.
        static std::mutex memo_mutex;
        static std::map<u64, explore::InsnSetResult> memo;
        std::lock_guard<std::mutex> lock(memo_mutex);
        auto it = memo.find(options_.seed);
        if (it == memo.end()) {
            it = memo.emplace(options_.seed,
                              explore::explore_instruction_set(
                                  {3, 1u << 20, options_.seed}))
                     .first;
        }
        stats_.insn_set = it->second;
        for (const auto &[index, bytes] :
             stats_.insn_set.representatives) {
            selected.emplace_back(index, bytes);
        }
    }
    stats_.t_insn_exploration = seconds_since(t0);
    if (options_.max_instructions &&
        selected.size() > options_.max_instructions) {
        selected.resize(options_.max_instructions);
    }

    // ---- Stages 2+3: per-instruction exploration + generation. ----
    // Each instruction is one quarantinable unit of work: a fault in
    // its exploration or a test's generation is recorded in the
    // quarantine ledger and the sweep continues.
    explore::StateExploreOptions xopt;
    xopt.max_paths = options_.max_paths_per_insn;
    xopt.seed = options_.seed;
    xopt.schedule = options_.schedule;
    xopt.use_descriptor_summary = options_.use_descriptor_summary;
    xopt.minimize = options_.minimize;
    xopt.prune = options_.prune;

    xopt.memo = &memo_;

    u64 next_test_id = 0;
    // Restore checkpointed units first, in checkpoint order: tests_
    // must stay ordered exactly as the checkpoint's execution
    // counters were accumulated (they cover a tests_ prefix), and
    // freshly explored units — e.g. ones a previous session
    // quarantined — must land after that prefix, not interleaved.
    if (resumed_) {
        for (const CheckpointUnit &done : resumed_->explored) {
            restore_unit(done, next_test_id);
            checkpoint_.explored.push_back(done);
        }
        // Replay the persisted ledger (quietly — these were already
        // warned about when first quarantined). Stage-2 entries are
        // NOT replayed into the live ledger: their units are about to
        // be re-attempted, and the re-attempt decides — a unit that
        // now succeeds (the fault was transient) must leave no stale
        // entry, while a deterministic re-failure re-enters via
        // quarantine(), which consults prior_quarantine_ to stay
        // quiet and refund the fresh-unit quota. Entries for work
        // that is never redone (generation of a checkpointed unit,
        // execution of an already-counted test) are replayed as is.
        for (const support::QuarantinedUnit &q :
             resumed_->quarantine.units()) {
            if (q.stage == Stage::StateExploration) {
                prior_quarantine_.add(q.stage, q.unit, q.cls,
                                      q.message);
            } else if (!stats_.quarantine.contains(q.stage, q.unit,
                                                   q.cls, q.message)) {
                stats_.quarantine.add(q.stage, q.unit, q.cls,
                                      q.message);
            }
        }
    }

    u32 units_since_checkpoint = 0;
    u32 fresh_units = 0;
    for (const auto &[index, bytes] : selected) {
        if (resumed_ && resumed_->find_unit(index))
            continue; // Restored above.

        const std::string unit_name =
            "insn " + std::to_string(index) + " (" +
            arch::insn_table()[index].mnemonic + ")";

        // Graceful preemption: a time-sliced shard stops after its
        // quota of fresh units and leaves the rest to a later resume.
        if (res.explore_at_most_units &&
            fresh_units >= res.explore_at_most_units) {
            stats_.explore_preempted = true;
            break;
        }
        ++fresh_units;

        arch::DecodedInsn insn;
        const auto status =
            arch::decode(bytes.data(), bytes.size(), insn);
        if (status != arch::DecodeStatus::Ok ||
            insn.table_index != index) {
            // A deduped (already-ledgered) quarantine refunds the
            // session's fresh-unit quota: known-bad units must not
            // starve later units of slice time forever, or a sliced
            // campaign with deterministic faults would never finish.
            if (!quarantine(Stage::StateExploration, unit_name,
                            FaultClass::Decode,
                            "representative bytes failed to decode")) {
                --fresh_units;
            }
            continue;
        }

        // Unit boundary: entries must not leak across instructions
        // (exploration stays a pure function of the unit — see memo_),
        // but the escalated retry below intentionally reuses entries
        // from this unit's first attempt.
        memo_.begin_unit();

        t0 = std::chrono::steady_clock::now();
        const auto explore_with_budget =
            [&](double scale) -> explore::StateExploreResult {
            explore::StateExploreOptions per_insn = xopt;
            if (insn.rep || insn.repne) {
                per_insn.max_paths =
                    std::min(xopt.max_paths, options_.max_paths_rep);
                per_insn.max_steps = 3000;
            }
            per_insn.deadline = support::Deadline::with(
                static_cast<u64>(
                    static_cast<double>(budgets.insn_exploration_ms) *
                    scale),
                static_cast<u64>(
                    static_cast<double>(
                        budgets.insn_exploration_steps) *
                    scale));
            per_insn.solver_query_ms = static_cast<u64>(
                static_cast<double>(budgets.solver_query_ms) * scale);
            per_insn.solver_query_steps = static_cast<u64>(
                static_cast<double>(budgets.solver_query_steps) *
                scale);
            per_insn.injector = inj;
            return explore_instruction(insn, *spec_, &summary_,
                                       per_insn);
        };

        auto guarded =
            support::try_run([&] { return explore_with_budget(1.0); });
        // Budgets degrade gracefully: one escalated retry before the
        // unit is accepted as incomplete (deadline expiry mid-unit) or
        // quarantined (a solver query that cannot finish in budget).
        const bool over_budget =
            (!guarded.ok() &&
             guarded.cls == FaultClass::SolverTimeout) ||
            (guarded.ok() && guarded->stats.deadline_expired);
        if (over_budget && budgets.escalation > 1.0) {
            ++stats_.budget_retries;
            auto retry = support::try_run(
                [&] { return explore_with_budget(budgets.escalation); });
            if (retry.ok() || !guarded.ok())
                guarded = std::move(retry);
        }
        stats_.t_state_exploration += seconds_since(t0);
        if (!guarded.ok()) {
            // Quota refund on dedup — see the decode-failure site.
            if (!quarantine(Stage::StateExploration, unit_name,
                            guarded.cls, guarded.message)) {
                --fresh_units;
            }
            continue;
        }
        const explore::StateExploreResult explored =
            std::move(*guarded);

        CheckpointUnit cu;
        cu.table_index = index;
        cu.complete = explored.stats.complete;
        cu.budget_incomplete = explored.stats.deadline_expired;
        cu.paths = explored.stats.paths;
        cu.solver_queries = explored.stats.solver_queries;
        cu.solver_cache_hits = memo_.stats().unit_hits;
        cu.solver_cache_misses = memo_.stats().unit_misses;
        cu.solver_queries_avoided =
            explored.stats.solver_queries_avoided;
        cu.minimize_bits_before =
            explored.minimize.bits_different_before;
        cu.minimize_bits_after = explored.minimize.bits_different_after;
        cu.covered_blocks = explored.stats.covered_blocks;
        cu.total_blocks = explored.stats.total_blocks;
        cu.covered_edges = explored.stats.covered_edges;
        cu.total_edges = explored.stats.total_edges;
        cu.truncation = explored.stats.truncation;
        // Cycle-cost columns (checkpoint v5): the model is static, so
        // these are recorded whether or not this campaign charges
        // cycles — every checkpoint documents the costs in force.
        const timing::UnitCost unit_cost =
            timing::cost_model().cost_for(insn);
        cu.cost_base = unit_cost.base;
        cu.cost_mem_accesses = unit_cost.mem_accesses;
        cu.cost_fault_extra = unit_cost.fault_extra;

        ++stats_.instructions_explored;
        if (explored.stats.complete)
            ++stats_.instructions_complete;
        if (explored.stats.deadline_expired)
            ++stats_.budget_incomplete;
        stats_.total_paths += explored.stats.paths;
        stats_.solver_queries += explored.stats.solver_queries;
        stats_.solver_cache_hits += cu.solver_cache_hits;
        stats_.solver_cache_misses += cu.solver_cache_misses;
        stats_.solver_queries_avoided +=
            explored.stats.solver_queries_avoided;
        stats_.minimize_bits_before +=
            explored.minimize.bits_different_before;
        stats_.minimize_bits_after +=
            explored.minimize.bits_different_after;
        account_unit_coverage(stats_, cu);

        // IR optimizer accounting + Validated-mode translation
        // validation. Stage-2 exploration above ran the builder
        // original (test identity across modes); here the unit's
        // semantics are optimized once for the reduction stats, and
        // Validated proves the pair equivalent before stage 4 replays
        // tests on optimized IR. A counterexample (or a fault inside
        // the validator) is quarantined under its own stage and the
        // unit's replay falls back to the original program.
        if (options_.opt != analysis::OptMode::Off) {
            t0 = std::chrono::steady_clock::now();
            hifi::SemanticsOptions sem_options;
            sem_options.descriptor_summary =
                options_.use_descriptor_summary ? &summary_ : nullptr;
            const ir::Program original =
                hifi::build_semantics(insn, sem_options);
            const analysis::OptResult opt =
                analysis::optimize_program(original);
            cu.stmts_before = opt.stats.stmts_before;
            cu.stmts_after = opt.stats.stmts_after;
            if (options_.opt == analysis::OptMode::Validated) {
                symexec::VarPool vpool;
                analysis::EquivOptions eq;
                eq.max_paths = (insn.rep || insn.repne)
                    ? std::min(xopt.max_paths, options_.max_paths_rep)
                    : xopt.max_paths;
                eq.max_steps =
                    (insn.rep || insn.repne) ? 3000 : xopt.max_steps;
                eq.seed = options_.seed;
                eq.preconditions = spec_->preconditions(vpool);
                eq.eflags_addr = arch::layout::kEflagsAddr;
                eq.eflags_ignore_mask =
                    harness::undefined_flags_mask(insn.desc->op);
                if (budgets.any_exploration_limit()) {
                    eq.deadline = support::Deadline::with(
                        budgets.insn_exploration_ms,
                        budgets.insn_exploration_steps);
                }
                auto vguard = support::try_run([&] {
                    return analysis::validate_translation(
                        original, opt.program, vpool,
                        spec_->initial_fn(vpool), eq);
                });
                if (!vguard.ok()) {
                    quarantine(Stage::Validation, unit_name,
                               vguard.cls, vguard.message);
                    cu.opt_fallback = true;
                } else if (!vguard->equivalent) {
                    quarantine(
                        Stage::Validation, unit_name,
                        FaultClass::Miscompile,
                        "optimized semantics diverge; " +
                            vguard->counterexample->to_string(vpool));
                    cu.opt_fallback = true;
                } else if (vguard->proven) {
                    cu.opt_validated = true;
                }
            }
            stats_.t_validation += seconds_since(t0);
            stats_.opt_stmts_before += cu.stmts_before;
            stats_.opt_stmts_after += cu.stmts_after;
            if (cu.opt_validated)
                ++stats_.opt_units_validated;
            if (cu.opt_fallback) {
                ++stats_.opt_validation_failures;
                opt_fallback_.insert(index);
            }
        }

        // Stage 3: one test program per path (paper Figure 1(3)).
        // Each test's generation is its own quarantinable unit.
        t0 = std::chrono::steady_clock::now();
        for (std::size_t p = 0; p < explored.paths.size(); ++p) {
            const explore::ExploredPath &path = explored.paths[p];
            auto gen = support::try_run([&] {
                if (inj) {
                    inj->maybe_fail(FaultSite::Generation,
                                    "testgen: " + unit_name);
                }
                return testgen::generate_test_program(
                    insn, path.assignment, *spec_, explored.pool);
            });
            if (!gen.ok()) {
                quarantine(Stage::Generation,
                           unit_name + " path " + std::to_string(p),
                           gen.cls, gen.message);
                continue;
            }
            if (gen->status != testgen::GenStatus::Ok) {
                ++stats_.generation_failures;
                ++cu.generation_failures;
                continue;
            }
            GeneratedTest test;
            test.id = next_test_id++;
            test.table_index = index;
            test.insn = insn;
            test.program = std::move(gen->program);
            test.halt_code = path.halt_code;

            CheckpointTest saved;
            saved.id = test.id;
            saved.table_index = index;
            saved.test_insn_offset = test.program.test_insn_offset;
            saved.halt_code = test.halt_code;
            saved.code = test.program.code;
            cu.tests.push_back(std::move(saved));

            tests_.push_back(std::move(test));
            ++stats_.test_programs;
        }
        stats_.t_generation += seconds_since(t0);

        checkpoint_.explored.push_back(std::move(cu));
        if (++units_since_checkpoint >=
            res.checkpoint_every_units) {
            units_since_checkpoint = 0;
            write_checkpoint();
        }
    }
    if (units_since_checkpoint != 0)
        write_checkpoint();
}

void
Pipeline::execute_and_compare()
{
    const ResilienceOptions &res = options_.resilience;
    harness::TestRunner::Config cfg;
    cfg.bugs = options_.bugs;
    // Stage-4 Hi-Fi replay runs optimized semantics when the optimizer
    // is on (the concrete-replay speedup the optimizer exists for);
    // exploration already happened on the original, so the test set is
    // the same either way.
    cfg.hifi_options.opt = options_.opt;
    // Compiled handlers replace the IR interpreter per instruction;
    // dispatch misses fall back to interpretation inside the emulator.
    cfg.hifi_options.compiled = options_.compiled;
    cfg.max_insns = options_.max_insns_per_test;
    // Cycle accounting on all three backends; the fallback runner
    // below copies cfg, so validation-fallback units keep charging
    // (their interpreted totals equal the compiled ones by design).
    cfg.timing = options_.timing;
    cfg.injector = injector_.enabled() ? &injector_ : nullptr;
    cfg.lofi_misbehavior = options_.lofi_misbehavior;
    cfg.watchdog_insns = res.budgets.test_watchdog_insns;
    cfg.watchdog_wall_ms = res.budgets.test_watchdog_ms;
    harness::TestRunner runner(cfg);
    // Units whose Validated-mode check failed replay on original IR.
    std::unique_ptr<harness::TestRunner> fallback_runner;
    if (options_.opt != analysis::OptMode::Off &&
        !opt_fallback_.empty()) {
        harness::TestRunner::Config fcfg = cfg;
        fcfg.hifi_options.opt = analysis::OptMode::Off;
        // Handlers are generated from optimized programs; a unit whose
        // optimization failed validation must not replay through them.
        fcfg.hifi_options.compiled = hifi::CompiledExec::Off;
        fallback_runner = std::make_unique<harness::TestRunner>(fcfg);
    }

    // Resume: execution proceeds in test order, so the checkpoint's
    // counters and clusters cover exactly the first executed_count
    // tests; restore them and skip that prefix.
    std::size_t start = 0;
    if (resumed_ && resumed_->execution.executed_count > 0) {
        const CheckpointExecution &e = resumed_->execution;
        start = static_cast<std::size_t>(
            std::min<u64>(e.executed_count, tests_.size()));
        stats_.tests_executed = e.tests_executed;
        stats_.lofi_raw_diffs = e.lofi_raw_diffs;
        stats_.hifi_raw_diffs = e.hifi_raw_diffs;
        stats_.lofi_diffs = e.lofi_diffs;
        stats_.hifi_diffs = e.hifi_diffs;
        stats_.filtered_undefined = e.filtered_undefined;
        stats_.timeouts = e.timeouts;
        stats_.hifi_timeouts = e.hifi_timeouts;
        stats_.lofi_timeouts = e.lofi_timeouts;
        stats_.hw_timeouts = e.hw_timeouts;
        stats_.hifi_cycles = e.hifi_cycles;
        stats_.lofi_cycles = e.lofi_cycles;
        stats_.hw_cycles = e.hw_cycles;
        stats_.lofi_timing_divergences = e.lofi_timing_divergences;
        stats_.hifi_timing_divergences = e.hifi_timing_divergences;
        stats_.lofi_clusters = e.lofi_clusters;
        stats_.hifi_clusters = e.hifi_clusters;
        stats_.lofi_timing_clusters = e.lofi_timing_clusters;
        stats_.hifi_timing_clusters = e.hifi_timing_clusters;
        stats_.tests_resumed = start;
    }

    const auto sync_execution = [&](std::size_t executed_count) {
        CheckpointExecution &e = checkpoint_.execution;
        e.executed_count = executed_count;
        e.tests_executed = stats_.tests_executed;
        e.lofi_raw_diffs = stats_.lofi_raw_diffs;
        e.hifi_raw_diffs = stats_.hifi_raw_diffs;
        e.lofi_diffs = stats_.lofi_diffs;
        e.hifi_diffs = stats_.hifi_diffs;
        e.filtered_undefined = stats_.filtered_undefined;
        e.timeouts = stats_.timeouts;
        e.hifi_timeouts = stats_.hifi_timeouts;
        e.lofi_timeouts = stats_.lofi_timeouts;
        e.hw_timeouts = stats_.hw_timeouts;
        e.hifi_cycles = stats_.hifi_cycles;
        e.lofi_cycles = stats_.lofi_cycles;
        e.hw_cycles = stats_.hw_cycles;
        e.lofi_timing_divergences = stats_.lofi_timing_divergences;
        e.hifi_timing_divergences = stats_.hifi_timing_divergences;
        e.lofi_clusters = stats_.lofi_clusters;
        e.hifi_clusters = stats_.hifi_clusters;
        e.lofi_timing_clusters = stats_.lofi_timing_clusters;
        e.hifi_timing_clusters = stats_.hifi_timing_clusters;
    };

    // Reused across tests: fresh 4 MiB snapshot allocations per test
    // would dominate (and distort) the measured execution costs.
    harness::BackendRun hifi_run, lofi_run, hw_run;
    u32 tests_since_checkpoint = 0;
    std::size_t done = start;
    for (std::size_t i = start; i < tests_.size(); ++i) {
        // Graceful preemption (see explore_and_generate).
        if (res.execute_at_most_tests &&
            i - start >= res.execute_at_most_tests) {
            stats_.execute_preempted = true;
            break;
        }
        const GeneratedTest &test = tests_[i];
        harness::TestRunner &exec =
            (fallback_runner != nullptr &&
             opt_fallback_.count(test.table_index) != 0)
            ? *fallback_runner
            : runner;
        // One test's three-way execution is one quarantinable unit.
        bool exec_faulted = false;
        try {
            auto t0 = std::chrono::steady_clock::now();
            exec.run_one_into(harness::Backend::HiFi,
                              test.program.code, hifi_run);
            stats_.t_execution_hifi += seconds_since(t0);

            t0 = std::chrono::steady_clock::now();
            exec.run_one_into(harness::Backend::LoFi,
                              test.program.code, lofi_run);
            stats_.t_execution_lofi += seconds_since(t0);

            t0 = std::chrono::steady_clock::now();
            exec.run_one_into(harness::Backend::Hardware,
                              test.program.code, hw_run);
            stats_.t_execution_hw += seconds_since(t0);
        } catch (const support::FaultError &e) {
            // Misbehaving-backend faults (crash, watchdog hang,
            // corrupt snapshot) are their own stage: the defect
            // matrix scores containment separately from ordinary
            // execution refusals.
            quarantine(support::is_backend_fault(e.fault_class())
                           ? Stage::Backend
                           : Stage::Execution,
                       "test " + std::to_string(test.id),
                       e.fault_class(), e.what());
            exec_faulted = true;
        } catch (const std::exception &e) {
            quarantine(Stage::Execution,
                       "test " + std::to_string(test.id),
                       FaultClass::Internal, e.what());
            exec_faulted = true;
        }

        if (!exec_faulted) {
            ++stats_.tests_executed;
            stats_.hifi_timeouts += hifi_run.timed_out;
            stats_.lofi_timeouts += lofi_run.timed_out;
            stats_.hw_timeouts += hw_run.timed_out;
            // Cycle totals over every executed test (all zero with
            // timing off: no backend ever charges then).
            stats_.hifi_cycles += hifi_run.snapshot.cycles;
            stats_.lofi_cycles += lofi_run.snapshot.cycles;
            stats_.hw_cycles += hw_run.snapshot.cycles;

            if (hw_run.timed_out) {
                // No oracle to compare against: excluded entirely.
                ++stats_.timeouts;
            } else {
                auto t0 = std::chrono::steady_clock::now();
                const auto analyze =
                    [&](const harness::BackendRun &run, u64 &raw,
                        u64 &real, harness::RootCauseClusterer &cl,
                        u64 &timing_div,
                        harness::RootCauseClusterer &timing_cl,
                        const char *backend) {
                        if (run.timed_out) {
                            // A timeout on one backend is its own
                            // root cause — comparing its (mid-flight)
                            // snapshot against hardware would report
                            // a spurious state diff.
                            ++raw;
                            ++real;
                            cl.add_named(
                                test.id, test.insn,
                                std::string("timeout-only-") +
                                    backend);
                            return;
                        }
                        const arch::SnapshotDiff diff =
                            arch::diff_snapshots(run.snapshot,
                                                 hw_run.snapshot);
                        bool state_clean = diff.empty();
                        if (!diff.empty()) {
                            ++raw;
                            const harness::FilterResult filtered =
                                harness::filter_undefined(
                                    test.insn, run.snapshot,
                                    hw_run.snapshot, diff);
                            if (filtered.fully_filtered()) {
                                ++stats_.filtered_undefined;
                                state_clean = true;
                            } else {
                                ++real;
                                cl.add(test.id, test.insn,
                                       filtered.remaining,
                                       run.snapshot, hw_run.snapshot);
                            }
                        }
                        // TimingDivergence (DESIGN.md §16): compared
                        // only on runs whose architectural state is
                        // otherwise clean, so timing clusters never
                        // overlap state-diff or timeout clusters.
                        if (options_.timing && state_clean &&
                            run.snapshot.cycles !=
                                hw_run.snapshot.cycles) {
                            ++timing_div;
                            timing_cl.add_named(
                                test.id, test.insn,
                                timing::divergence_label(
                                    hw_run.snapshot.cycles,
                                    run.snapshot.cycles, backend));
                        }
                    };
                analyze(lofi_run, stats_.lofi_raw_diffs,
                        stats_.lofi_diffs, stats_.lofi_clusters,
                        stats_.lofi_timing_divergences,
                        stats_.lofi_timing_clusters, "lofi");
                analyze(hifi_run, stats_.hifi_raw_diffs,
                        stats_.hifi_diffs, stats_.hifi_clusters,
                        stats_.hifi_timing_divergences,
                        stats_.hifi_timing_clusters, "hifi");
                stats_.t_comparison += seconds_since(t0);
            }
        }

        done = i + 1;
        if (++tests_since_checkpoint >= res.checkpoint_every_tests) {
            tests_since_checkpoint = 0;
            sync_execution(done);
            write_checkpoint();
        }
    }
    sync_execution(done);
    stats_.compiled_hits += runner.hifi().compiled_hits();
    stats_.compiled_misses += runner.hifi().compiled_misses();
    if (fallback_runner != nullptr) {
        stats_.compiled_hits += fallback_runner->hifi().compiled_hits();
        stats_.compiled_misses +=
            fallback_runner->hifi().compiled_misses();
    }
    if (tests_since_checkpoint != 0 || done == start)
        write_checkpoint();
}

const PipelineStats &
Pipeline::run()
{
    explore_and_generate();
    execute_and_compare();
    return stats_;
}

u64
PipelineStats::truncated_solver_timeout() const
{
    u64 n = 0;
    for (const support::QuarantinedUnit &q : quarantine.units()) {
        if (q.stage == Stage::StateExploration &&
            q.cls == FaultClass::SolverTimeout) {
            ++n;
        }
    }
    return n;
}

std::string
PipelineStats::to_string() const
{
    std::ostringstream os;
    os << "== PokeEMU pipeline ==\n";
    os << "stage 1 (instruction-set exploration): "
       << insn_set.candidate_sequences << " candidate sequences -> "
       << insn_set.representatives.size() << " unique instructions ("
       << t_insn_exploration << "s)\n";
    os << "stage 2 (state exploration): " << instructions_explored
       << " instructions, " << total_paths << " paths, "
       << instructions_complete << " with complete path coverage ("
       << t_state_exploration << "s, "
       << solver_queries + solver_queries_avoided
       << " solver queries)\n";
    if (solver_queries_avoided) {
        os << "static pruning: " << solver_queries_avoided
           << " of those probes decided without the solver\n";
    }
    if (solver_cache_hits || solver_cache_misses) {
        const double rate = static_cast<double>(solver_cache_hits) /
            static_cast<double>(solver_cache_hits +
                                solver_cache_misses);
        os << "solver memo: " << solver_cache_hits << " hits, "
           << solver_cache_misses << " misses (" << std::fixed
           << std::setprecision(1) << rate * 100.0 << "% hit rate)\n"
           << std::defaultfloat << std::setprecision(6);
    }
    if (budget_retries || budget_incomplete) {
        os << "budgets: " << budget_retries << " escalated retries, "
           << budget_incomplete << " instructions budget-incomplete\n";
    }
    if (total_blocks != 0) {
        const auto pct = [](u64 covered, u64 total) {
            return total == 0
                ? 100.0
                : 100.0 * static_cast<double>(covered) /
                    static_cast<double>(total);
        };
        os << "IR coverage: " << covered_blocks << "/" << total_blocks
           << " blocks (" << std::fixed << std::setprecision(1)
           << pct(covered_blocks, total_blocks) << "%), "
           << covered_edges << "/" << total_edges << " edges ("
           << pct(covered_edges, total_edges) << "%)\n"
           << std::defaultfloat << std::setprecision(6);
        os << "coverage histogram:";
        for (u32 b = 0; b < coverage::kNumCoverageBuckets; ++b) {
            os << " " << coverage::coverage_bucket_name(b) << "="
               << coverage_histogram[b];
        }
        os << "\n";
    }
    if (any_truncation()) {
        os << "truncated explorations: path-cap " << truncated_path_cap
           << ", deadline " << truncated_deadline << ", step-limit "
           << truncated_step_limit << ", solver-timeout "
           << truncated_solver_timeout() << "\n";
    }
    if (opt_stmts_before != 0) {
        const double reduction = 100.0 *
            (1.0 - static_cast<double>(opt_stmts_after) /
                 static_cast<double>(opt_stmts_before));
        os << "IR optimizer: " << opt_stmts_before << " -> "
           << opt_stmts_after << " statements (" << std::fixed
           << std::setprecision(1) << reduction << "% reduction)"
           << std::defaultfloat << std::setprecision(6);
        if (opt_units_validated || opt_validation_failures) {
            os << "; validation: " << opt_units_validated
               << " units proven equivalent, "
               << opt_validation_failures
               << " replaying the original";
        }
        os << " (" << t_validation << "s)\n";
    }
    os << "minimization: " << minimize_bits_before
       << " differing bits -> " << minimize_bits_after << "\n";
    os << "stage 3 (test generation): " << test_programs
       << " test programs, " << generation_failures << " failures ("
       << t_generation << "s)\n";
    os << "stage 4 (execution): " << tests_executed << " tests ("
       << "hifi " << t_execution_hifi << "s, lofi " << t_execution_lofi
       << "s, hw " << t_execution_hw << "s), " << timeouts
       << " excluded by oracle timeout (timed out: hifi "
       << hifi_timeouts << ", lofi " << lofi_timeouts << ", hw "
       << hw_timeouts << ")\n";
    os << "stage 5 (comparison, " << t_comparison << "s):\n";
    os << "  lofi vs hw: " << lofi_raw_diffs << " raw, " << lofi_diffs
       << " after undefined-behaviour filtering\n";
    os << "  hifi vs hw: " << hifi_raw_diffs << " raw, " << hifi_diffs
       << " after filtering\n";
    os << "  " << filtered_undefined
       << " differences were entirely undefined behaviour\n";
    // Timing lines are gated on nonzero totals so a timing-off report
    // is byte-identical to one from a build without the subsystem.
    if (hifi_cycles || lofi_cycles || hw_cycles) {
        os << "cycle totals: hifi " << hifi_cycles << ", lofi "
           << lofi_cycles << ", hw " << hw_cycles << "\n";
        os << "timing divergences: lofi " << lofi_timing_divergences
           << ", hifi " << hifi_timing_divergences << "\n";
    }
    if (units_resumed || tests_resumed) {
        os << "resume: " << units_resumed << " instructions and "
           << tests_resumed << " executed tests from checkpoint\n";
    }
    if (checkpoints_written)
        os << "checkpoints written: " << checkpoints_written << "\n";
    if (quarantine.total() != 0)
        os << quarantine.to_string();
    os << "lofi root causes:\n" << lofi_clusters.to_string();
    os << "hifi root causes:\n" << hifi_clusters.to_string();
    if (lofi_timing_clusters.total() || hifi_timing_clusters.total()) {
        os << "lofi timing divergences:\n"
           << lofi_timing_clusters.to_string();
        os << "hifi timing divergences:\n"
           << hifi_timing_clusters.to_string();
    }
    return os.str();
}

} // namespace pokeemu
