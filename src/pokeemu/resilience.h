/**
 * @file
 * Pipeline resilience: budgets, checkpoint/resume, and chaos plans.
 *
 * A campaign-scale sweep (the paper's 68,977 candidates / 610,516
 * paths) is hours of work; deviation hunts are restart-heavy. This
 * module gives the pipeline the three properties that make restarts
 * cheap and stragglers harmless:
 *
 *  - BudgetOptions: per-instruction exploration and per-solver-query
 *    deadlines (wall clock and/or steps), with one escalation retry
 *    before a unit is marked budget-incomplete — the time-domain
 *    analog of the paper's 8192-path cap.
 *  - Checkpoint: versioned serialization of per-stage progress
 *    (explored units with their generated tests, executed-test
 *    counters and clusters), written after each batch; `resume` skips
 *    completed units. The format follows the corpus.cpp idiom: a
 *    self-describing whitespace-separated text container.
 *  - FaultPlan (support/fault.h): the chaos configuration the
 *    chaos_pipeline ctest uses to prove containment.
 */
#ifndef POKEEMU_POKEEMU_RESILIENCE_H
#define POKEEMU_POKEEMU_RESILIENCE_H

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "coverage/coverage.h"
#include "harness/cluster.h"
#include "support/fault.h"

namespace pokeemu {

/** Deadlines for the expensive per-unit work; 0 = unlimited. */
struct BudgetOptions
{
    /** Whole-instruction exploration budget (stage 2). Steps are
     *  interpreted IR statements across all of the unit's paths. */
    u64 insn_exploration_ms = 0;
    u64 insn_exploration_steps = 0;
    /** Per-solver-query budget; steps are SAT search iterations. */
    u64 solver_query_ms = 0;
    u64 solver_query_steps = 0;
    /** Per-test watchdog around the Lo-Fi backend run (stage 4):
     *  instructions executed and/or wall clock. The instruction budget
     *  trips deterministically (same quarantined set on every shard
     *  layout); the wall cap is a machine-dependent safety net. A hung
     *  variant backend is quarantined per-test at Stage::Backend. */
    u64 test_watchdog_insns = 0;
    u64 test_watchdog_ms = 0;
    /** Budget multiplier for the single retry granted to a unit that
     *  ran out of budget before being marked incomplete. */
    double escalation = 4.0;

    bool
    any_exploration_limit() const
    {
        return insn_exploration_ms || insn_exploration_steps;
    }
};

/** Everything the fault-isolation layer can be configured with. */
struct ResilienceOptions
{
    BudgetOptions budgets{};
    /** Checkpoint file; empty disables checkpointing. */
    std::string checkpoint_path;
    /** Skip units already completed in checkpoint_path (a missing
     *  file silently starts from scratch). */
    bool resume = false;
    /** Stage-2/3 units per checkpoint write. */
    u32 checkpoint_every_units = 8;
    /** Stage-4/5 tests per checkpoint write. */
    u32 checkpoint_every_tests = 64;
    /**
     * Graceful preemption for time-sliced, resumable shards: stop
     * stage 2/3 after this many freshly explored units this session
     * (0 = no limit), checkpointing before returning; a later resume
     * completes the sweep.
     */
    u32 explore_at_most_units = 0;
    /** Same for stage 4/5: freshly executed tests this session. */
    u32 execute_at_most_tests = 0;
    /** Chaos plan (probability 0 = inert). */
    support::FaultPlan faults{};
};

/** One generated test as persisted in a checkpoint. */
struct CheckpointTest
{
    u64 id = 0;
    int table_index = 0;
    u32 test_insn_offset = 0;
    u32 halt_code = 0;
    std::vector<u8> code;
};

/** One completed stage-2/3 unit (everything its instruction
 *  contributed to PipelineStats, plus its tests). */
struct CheckpointUnit
{
    int table_index = 0;
    bool complete = false;
    bool budget_incomplete = false;
    u64 paths = 0;
    u64 solver_queries = 0;
    u64 solver_cache_hits = 0;   ///< Memo hits during this unit.
    u64 solver_cache_misses = 0; ///< Memo-eligible queries solved.
    /** Probes skipped by static pruning (the v3 checkpoint column);
     *  solver_queries + solver_queries_avoided is prune-mode
     *  invariant. */
    u64 solver_queries_avoided = 0;
    u64 minimize_bits_before = 0;
    u64 minimize_bits_after = 0;
    u64 generation_failures = 0;
    /** IR block/edge coverage of the unit's semantics CFG (the v2
     *  checkpoint rows; see coverage::CoverageMap). */
    u64 covered_blocks = 0;
    u64 total_blocks = 0;
    u64 covered_edges = 0;
    u64 total_edges = 0;
    /** Why the exploration stopped short (None when complete). */
    coverage::TruncationReason truncation =
        coverage::TruncationReason::None;
    /** IR optimizer columns (v4): semantics statement counts before
     *  and after optimization (both 0 under OptMode::Off), whether
     *  Validated-mode translation validation proved the pair
     *  equivalent, and whether it found a counterexample (the unit's
     *  stage-4 Hi-Fi replay then falls back to the original IR). */
    u64 stmts_before = 0;
    u64 stmts_after = 0;
    bool opt_validated = false;
    bool opt_fallback = false;
    /** Cycle-cost columns (v5): the unit's derived cost triple
     *  (timing/cost_model.h) for the explored representative's operand
     *  form. Recorded in every run — the model is static, so the
     *  columns are identical whether or not timing ran — making a
     *  checkpoint self-describing about the costs its campaign
     *  charged. */
    u64 cost_base = 0;
    u64 cost_mem_accesses = 0;
    u64 cost_fault_extra = 0;
    std::vector<CheckpointTest> tests;
};

/** Stage-4/5 progress: counters and clusters over the first
 *  `executed_count` generated tests (execution is in test order). */
struct CheckpointExecution
{
    u64 executed_count = 0;
    u64 tests_executed = 0;
    u64 lofi_raw_diffs = 0;
    u64 hifi_raw_diffs = 0;
    u64 lofi_diffs = 0;
    u64 hifi_diffs = 0;
    u64 filtered_undefined = 0;
    u64 timeouts = 0;
    u64 hifi_timeouts = 0;
    u64 lofi_timeouts = 0;
    u64 hw_timeouts = 0;
    /** Cycle-accounting columns (v5); all zero when the campaign ran
     *  with timing off. */
    u64 hifi_cycles = 0;
    u64 lofi_cycles = 0;
    u64 hw_cycles = 0;
    u64 lofi_timing_divergences = 0;
    u64 hifi_timing_divergences = 0;
    harness::RootCauseClusterer lofi_clusters;
    harness::RootCauseClusterer hifi_clusters;
    /** TimingDivergence clusters (v5), apart from the state-diff
     *  clusterers above exactly as in PipelineStats. */
    harness::RootCauseClusterer lofi_timing_clusters;
    harness::RootCauseClusterer hifi_timing_clusters;
};

/** A pipeline run's persisted progress. */
struct Checkpoint
{
    /** Hash of every option that affects results; resume refuses a
     *  checkpoint written under different options. */
    u64 fingerprint = 0;
    std::vector<CheckpointUnit> explored;
    CheckpointExecution execution;
    /**
     * The quarantine ledger as of this checkpoint. Without it a
     * Generation-stage quarantine of a successfully explored unit
     * would vanish on resume (the unit is in `explored`, so the stage
     * never revisits it) and the resumed campaign's report would
     * under-count what was skipped.
     */
    support::QuarantineReport quarantine;

    const CheckpointUnit *find_unit(int table_index) const;
};

/** Serialize @p checkpoint to @p out (versioned text container). */
void save_checkpoint(std::ostream &out, const Checkpoint &checkpoint);

/** Parse a checkpoint; throws std::logic_error on malformed input. */
Checkpoint load_checkpoint(std::istream &in);

/** Atomic file write (temp file + rename); throws on I/O failure. */
void save_checkpoint_file(const std::string &path,
                          const Checkpoint &checkpoint);

/** Load @p path; nullopt when the file does not exist, throws
 *  std::logic_error when it exists but is malformed. */
std::optional<Checkpoint> load_checkpoint_file(const std::string &path);

} // namespace pokeemu

#endif // POKEEMU_POKEEMU_RESILIENCE_H
