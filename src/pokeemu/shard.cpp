#include "pokeemu/shard.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>
#include <thread>

#include "support/logging.h"

namespace pokeemu {

namespace {

constexpr const char *kManifestMagic = "pokeemu-campaign-v1";

[[noreturn]] void
campaign_error(const std::string &message)
{
    throw std::logic_error("campaign: " + message);
}

double
seconds_since(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** splitmix64 finalizer (the fingerprint mixer used repo-wide). */
u64
mix64(u64 x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Campaign identity: the resolved pipeline options plus the layout. */
u64
campaign_fingerprint_of(const PipelineOptions &resolved, u32 shards)
{
    u64 h = options_fingerprint(resolved);
    h = mix64(h ^ mix64(0x73686172645f6964ULL)); // "shard_id"
    h = mix64(h ^ mix64(shards));
    return h;
}

std::string
shard_checkpoint_path(const std::string &dir, u32 shard)
{
    return dir + "/shard-" + std::to_string(shard) + ".ckpt";
}

struct Manifest
{
    u64 fingerprint = 0;
    u32 shards = 0;
};

void
write_manifest(const std::string &path, const Manifest &manifest)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            campaign_error("cannot open '" + tmp + "' for writing");
        out << kManifestMagic << "\n";
        out << "fingerprint " << manifest.fingerprint << "\n";
        out << "shards " << manifest.shards << "\n";
        out << "end\n";
        if (!out)
            campaign_error("write to '" + tmp + "' failed");
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        campaign_error("rename to '" + path + "' failed: " +
                       ec.message());
}

std::optional<Manifest>
read_manifest(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return std::nullopt;
    std::string magic;
    if (!std::getline(in, magic) || magic != kManifestMagic)
        campaign_error("'" + path + "' has a bad header "
                       "(version mismatch?)");
    Manifest m;
    std::string tag;
    if (!(in >> tag >> m.fingerprint) || tag != "fingerprint")
        campaign_error("'" + path + "' has a bad fingerprint row");
    if (!(in >> tag >> m.shards) || tag != "shards")
        campaign_error("'" + path + "' has a bad shards row");
    return m;
}

/** The campaign's instruction list and the (canonical-encoding)
 *  instruction-set summary every layout reports identically. */
struct Workload
{
    std::vector<int> order;
    explore::InsnSetResult insn_set;
};

Workload
resolve_workload(const PipelineOptions &pipeline)
{
    Workload w;
    if (!pipeline.instruction_filter.empty()) {
        w.order = pipeline.instruction_filter;
    } else {
        // Stage 1 runs once, driver-side; workers then receive their
        // slice as an explicit filter (and therefore all use canonical
        // encodings — every layout explores identical bytes).
        const explore::InsnSetResult full =
            explore::explore_instruction_set(
                {3, 1u << 20, pipeline.seed});
        w.order.reserve(full.representatives.size());
        for (const auto &[index, bytes] : full.representatives)
            w.order.push_back(index);
    }
    if (pipeline.max_instructions &&
        w.order.size() > pipeline.max_instructions) {
        w.order.resize(pipeline.max_instructions);
    }
    for (int index : w.order) {
        w.insn_set.representatives[index] =
            arch::canonical_encoding(index);
    }
    w.insn_set.candidate_sequences = w.order.size();
    return w;
}

ShardOutcome
run_shard(const CampaignOptions &options,
          const std::vector<int> &assigned, u32 shard)
{
    set_log_shard(static_cast<int>(shard));
    ShardOutcome out;
    out.shard = shard;
    if (assigned.empty()) {
        // More shards than instructions: an empty worker is complete
        // by definition (an empty filter would mean "explore all").
        out.complete = true;
        set_log_shard(-1);
        return out;
    }

    PipelineOptions po = options.pipeline;
    po.instruction_filter = assigned;
    po.max_instructions = 0; // The campaign cap was applied at planning.
    ResilienceOptions &res = po.resilience;
    res.checkpoint_path = options.checkpoint_dir.empty()
        ? std::string{}
        : shard_checkpoint_path(options.checkpoint_dir, shard);
    res.explore_at_most_units = options.explore_slice_units;
    res.execute_at_most_tests = options.execute_slice_tests;
    res.resume = options.resume;

    for (;;) {
        Pipeline pipeline(po);
        pipeline.run();
        ++out.sessions;
        out.stats = pipeline.stats();
        out.progress = pipeline.checkpoint();
        if (!out.stats.explore_preempted &&
            !out.stats.execute_preempted) {
            out.complete = true;
            break;
        }
        if (options.max_sessions_per_shard &&
            out.sessions >= options.max_sessions_per_shard) {
            break; // Interrupted; a later resume continues.
        }
        res.resume = true; // Later sessions continue own progress.
    }
    set_log_shard(-1);
    return out;
}

/** Sort key giving quarantine entries their campaign order: stage-2/3
 *  entries by campaign position (then path), execution entries by
 *  (remapped) test id, anything unparseable last by text. */
struct QuarantineKey
{
    int group = 2;
    u64 a = 0;
    u64 b = 0;
};

QuarantineKey
quarantine_key(const std::string &unit,
               const std::map<int, u64> &position)
{
    QuarantineKey key;
    std::istringstream is(unit);
    std::string kind;
    if (!(is >> kind))
        return key;
    if (kind == "insn") {
        int index = 0;
        if (!(is >> index))
            return key;
        auto it = position.find(index);
        key.group = 0;
        key.a = it == position.end() ? ~u64{0} : it->second;
        const std::size_t path_pos = unit.find(" path ");
        if (path_pos != std::string::npos) {
            key.b = 1 +
                std::strtoull(unit.c_str() + path_pos + 6, nullptr,
                              10);
        }
    } else if (kind == "test") {
        u64 id = 0;
        if (!(is >> id)) // Already remapped by the caller.
            return key;
        key.group = 1;
        key.a = id;
    }
    return key;
}

void
merge_outcomes(CampaignResult &result, const ShardPlan &plan,
               Workload &&workload)
{
    PipelineStats &m = result.merged;
    m.insn_set = std::move(workload.insn_set);
    result.complete = true;
    result.sessions = 0;

    // Campaign-global test numbering: walk the campaign order (the
    // 1-shard order) and hand out ids exactly as a single sequential
    // run would have; remember each shard's local -> global map.
    std::vector<std::map<u64, u64>> remap(result.outcomes.size());
    Checkpoint &mc = result.merged_checkpoint;
    u64 next_id = 0;
    for (std::size_t p = 0; p < plan.campaign_order.size(); ++p) {
        const int index = plan.campaign_order[p];
        const u32 owner = static_cast<u32>(p % result.shards);
        const CheckpointUnit *cu =
            result.outcomes[owner].progress.find_unit(index);
        if (cu == nullptr)
            continue; // Quarantined, or not reached yet (incomplete).
        CheckpointUnit unit = *cu;
        for (CheckpointTest &test : unit.tests) {
            remap[owner][test.id] = next_id;
            test.id = next_id++;
        }
        mc.explored.push_back(std::move(unit));
    }

    for (const ShardOutcome &o : result.outcomes) {
        result.complete = result.complete && o.complete;
        result.sessions += o.sessions;
        const PipelineStats &st = o.stats;
        m.instructions_explored += st.instructions_explored;
        m.instructions_complete += st.instructions_complete;
        m.total_paths += st.total_paths;
        m.solver_queries += st.solver_queries;
        m.solver_cache_hits += st.solver_cache_hits;
        m.solver_cache_misses += st.solver_cache_misses;
        m.solver_queries_avoided += st.solver_queries_avoided;
        m.minimize_bits_before += st.minimize_bits_before;
        m.minimize_bits_after += st.minimize_bits_after;
        m.opt_stmts_before += st.opt_stmts_before;
        m.opt_stmts_after += st.opt_stmts_after;
        m.opt_units_validated += st.opt_units_validated;
        m.opt_validation_failures += st.opt_validation_failures;
        m.covered_blocks += st.covered_blocks;
        m.total_blocks += st.total_blocks;
        m.covered_edges += st.covered_edges;
        m.total_edges += st.total_edges;
        for (u32 b = 0; b < coverage::kNumCoverageBuckets; ++b)
            m.coverage_histogram[b] += st.coverage_histogram[b];
        m.truncated_path_cap += st.truncated_path_cap;
        m.truncated_deadline += st.truncated_deadline;
        m.truncated_step_limit += st.truncated_step_limit;
        m.test_programs += st.test_programs;
        m.generation_failures += st.generation_failures;
        m.tests_executed += st.tests_executed;
        m.lofi_raw_diffs += st.lofi_raw_diffs;
        m.hifi_raw_diffs += st.hifi_raw_diffs;
        m.lofi_diffs += st.lofi_diffs;
        m.hifi_diffs += st.hifi_diffs;
        m.filtered_undefined += st.filtered_undefined;
        m.timeouts += st.timeouts;
        m.compiled_hits += st.compiled_hits;
        m.compiled_misses += st.compiled_misses;
        m.hifi_timeouts += st.hifi_timeouts;
        m.lofi_timeouts += st.lofi_timeouts;
        m.hw_timeouts += st.hw_timeouts;
        m.hifi_cycles += st.hifi_cycles;
        m.lofi_cycles += st.lofi_cycles;
        m.hw_cycles += st.hw_cycles;
        m.lofi_timing_divergences += st.lofi_timing_divergences;
        m.hifi_timing_divergences += st.hifi_timing_divergences;
        m.budget_incomplete += st.budget_incomplete;
        // Session-scoped counters (budget_retries, units_resumed,
        // tests_resumed, checkpoints_written) are layout-dependent by
        // nature and deliberately left out of the merged stats.
        const auto rm = [&](u64 local) -> u64 {
            const auto &ids = remap[o.shard];
            auto it = ids.find(local);
            return it == ids.end() ? local : it->second;
        };
        m.lofi_clusters.merge(st.lofi_clusters, rm);
        m.hifi_clusters.merge(st.hifi_clusters, rm);
        m.lofi_timing_clusters.merge(st.lofi_timing_clusters, rm);
        m.hifi_timing_clusters.merge(st.hifi_timing_clusters, rm);
    }

    // Quarantine ledger: remap execution entries to global test ids,
    // then order everything by campaign position so the merged ledger
    // reads exactly like a sequential run's.
    std::map<int, u64> position;
    for (std::size_t p = 0; p < plan.campaign_order.size(); ++p)
        position.emplace(plan.campaign_order[p], p);
    struct Entry
    {
        QuarantineKey key;
        support::QuarantinedUnit unit;
    };
    std::vector<Entry> entries;
    for (const ShardOutcome &o : result.outcomes) {
        for (const support::QuarantinedUnit &q :
             o.stats.quarantine.units()) {
            Entry e{.key = {}, .unit = q};
            if (q.unit.rfind("test ", 0) == 0) {
                const u64 local =
                    std::strtoull(q.unit.c_str() + 5, nullptr, 10);
                const auto &ids = remap[o.shard];
                auto it = ids.find(local);
                if (it != ids.end())
                    e.unit.unit = "test " + std::to_string(it->second);
            }
            e.key = quarantine_key(e.unit.unit, position);
            entries.push_back(std::move(e));
        }
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry &x, const Entry &y) {
                  if (x.key.group != y.key.group)
                      return x.key.group < y.key.group;
                  if (x.key.a != y.key.a)
                      return x.key.a < y.key.a;
                  if (x.key.b != y.key.b)
                      return x.key.b < y.key.b;
                  if (x.unit.unit != y.unit.unit)
                      return x.unit.unit < y.unit.unit;
                  if (x.unit.stage != y.unit.stage)
                      return x.unit.stage < y.unit.stage;
                  return x.unit.message < y.unit.message;
              });
    for (Entry &e : entries) {
        m.quarantine.add(e.unit.stage, std::move(e.unit.unit),
                         e.unit.cls, std::move(e.unit.message));
    }

    // Merged checkpoint counters mirror the merged stats. For a
    // complete campaign executed_count covers every merged test; for
    // an incomplete one the merged file is informational (each shard's
    // own checkpoint remains the resumable artifact).
    CheckpointExecution &e = mc.execution;
    for (const ShardOutcome &o : result.outcomes)
        e.executed_count += o.progress.execution.executed_count;
    e.tests_executed = m.tests_executed;
    e.lofi_raw_diffs = m.lofi_raw_diffs;
    e.hifi_raw_diffs = m.hifi_raw_diffs;
    e.lofi_diffs = m.lofi_diffs;
    e.hifi_diffs = m.hifi_diffs;
    e.filtered_undefined = m.filtered_undefined;
    e.timeouts = m.timeouts;
    e.hifi_timeouts = m.hifi_timeouts;
    e.lofi_timeouts = m.lofi_timeouts;
    e.hw_timeouts = m.hw_timeouts;
    e.hifi_cycles = m.hifi_cycles;
    e.lofi_cycles = m.lofi_cycles;
    e.hw_cycles = m.hw_cycles;
    e.lofi_timing_divergences = m.lofi_timing_divergences;
    e.hifi_timing_divergences = m.hifi_timing_divergences;
    e.lofi_clusters = m.lofi_clusters;
    e.hifi_clusters = m.hifi_clusters;
    e.lofi_timing_clusters = m.lofi_timing_clusters;
    e.hifi_timing_clusters = m.hifi_timing_clusters;
    mc.quarantine = m.quarantine;
}

} // namespace

ShardPlan
plan_shards(const std::vector<int> &indices, u32 shards)
{
    if (shards == 0)
        campaign_error("shards must be >= 1");
    ShardPlan plan;
    plan.campaign_order = indices;
    plan.assignments.resize(shards);
    for (std::size_t p = 0; p < indices.size(); ++p)
        plan.assignments[p % shards].push_back(indices[p]);
    return plan;
}

CampaignResult
run_campaign(const CampaignOptions &options)
{
    const auto t_start = std::chrono::steady_clock::now();
    if (options.shards == 0)
        campaign_error("shards must be >= 1");
    if (options.checkpoint_dir.empty()) {
        if (options.explore_slice_units ||
            options.execute_slice_tests ||
            options.max_sessions_per_shard) {
            campaign_error(
                "time slicing requires a checkpoint directory "
                "(preempted sessions resume from shard checkpoints)");
        }
        if (options.resume)
            campaign_error("resume requires a checkpoint directory");
    }

    Workload workload = resolve_workload(options.pipeline);
    const ShardPlan plan =
        plan_shards(workload.order, options.shards);

    PipelineOptions resolved = options.pipeline;
    resolved.instruction_filter = workload.order;
    resolved.max_instructions = 0;
    if (!options.checkpoint_dir.empty()) {
        std::filesystem::create_directories(options.checkpoint_dir);
        const std::string manifest_path =
            options.checkpoint_dir + "/campaign.manifest";
        const Manifest manifest{
            campaign_fingerprint_of(resolved, options.shards),
            options.shards};
        if (options.resume) {
            if (const auto prior = read_manifest(manifest_path)) {
                if (prior->shards != options.shards) {
                    campaign_error(
                        "'" + manifest_path + "' was written for " +
                        std::to_string(prior->shards) +
                        " shards; resuming with " +
                        std::to_string(options.shards) +
                        " would mix incompatible shard checkpoints — "
                        "use the original shard count or start fresh");
                }
                if (prior->fingerprint != manifest.fingerprint) {
                    campaign_error(
                        "'" + manifest_path +
                        "' was written under different campaign "
                        "options; refusing to resume");
                }
            }
        }
        write_manifest(manifest_path, manifest);
    }

    CampaignResult result;
    result.shards = options.shards;
    result.outcomes.resize(options.shards);
    if (options.parallel && options.shards > 1) {
        std::vector<std::thread> workers;
        std::vector<std::exception_ptr> errors(options.shards);
        workers.reserve(options.shards);
        for (u32 s = 0; s < options.shards; ++s) {
            workers.emplace_back([&, s] {
                try {
                    result.outcomes[s] =
                        run_shard(options, plan.assignments[s], s);
                } catch (...) {
                    errors[s] = std::current_exception();
                }
            });
        }
        for (std::thread &t : workers)
            t.join();
        for (const std::exception_ptr &error : errors) {
            if (error)
                std::rethrow_exception(error);
        }
    } else {
        for (u32 s = 0; s < options.shards; ++s)
            result.outcomes[s] =
                run_shard(options, plan.assignments[s], s);
    }

    merge_outcomes(result, plan, std::move(workload));
    result.merged_checkpoint.fingerprint =
        options_fingerprint(resolved);
    if (!options.checkpoint_dir.empty()) {
        save_checkpoint_file(options.checkpoint_dir + "/campaign.ckpt",
                             result.merged_checkpoint);
    }
    result.wall_seconds = seconds_since(t_start);
    return result;
}

std::string
CampaignResult::report() const
{
    const PipelineStats &m = merged;
    std::ostringstream os;
    os << "== PokeEMU campaign ==\n";
    os << "workload: " << m.insn_set.candidate_sequences
       << " instructions\n";
    os << "explored: " << m.instructions_explored << " instructions, "
       << m.total_paths << " paths, " << m.instructions_complete
       << " with complete path coverage\n";
    if (m.budget_incomplete) {
        os << "budget-incomplete: " << m.budget_incomplete
           << " instructions\n";
    }
    if (m.total_blocks != 0) {
        const auto pct = [](u64 covered, u64 total) {
            return total == 0
                ? 100.0
                : 100.0 * static_cast<double>(covered) /
                    static_cast<double>(total);
        };
        os << "IR coverage: " << m.covered_blocks << "/"
           << m.total_blocks << " blocks (" << std::fixed
           << std::setprecision(1) << pct(m.covered_blocks,
                                          m.total_blocks)
           << "%), " << m.covered_edges << "/" << m.total_edges
           << " edges (" << pct(m.covered_edges, m.total_edges)
           << "%)\n" << std::defaultfloat << std::setprecision(6);
        os << "coverage histogram:";
        for (u32 b = 0; b < coverage::kNumCoverageBuckets; ++b) {
            os << " " << coverage::coverage_bucket_name(b) << "="
               << m.coverage_histogram[b];
        }
        os << "\n";
    }
    if (m.any_truncation()) {
        os << "truncated explorations: path-cap "
           << m.truncated_path_cap << ", deadline "
           << m.truncated_deadline << ", step-limit "
           << m.truncated_step_limit << ", solver-timeout "
           << m.truncated_solver_timeout() << "\n";
    }
    // Print queries + avoided: the sum is invariant across prune
    // modes, so the merged report stays byte-identical whether the
    // campaign ran with pruning off, on, or cross-checked.
    os << "solver: " << m.solver_queries + m.solver_queries_avoided
       << " queries; memo " << m.solver_cache_hits << " hits, "
       << m.solver_cache_misses << " misses";
    const u64 memo_total = m.solver_cache_hits + m.solver_cache_misses;
    if (memo_total != 0) {
        const double rate = static_cast<double>(m.solver_cache_hits) /
            static_cast<double>(memo_total);
        os << " (" << std::fixed << std::setprecision(1)
           << rate * 100.0 << "% hit rate)" << std::defaultfloat
           << std::setprecision(6);
    }
    os << "\n";
    if (m.opt_stmts_before != 0) {
        // Per-unit optimizer results are deterministic, so these sums
        // are byte-identical for any shard count (t_validation is
        // wall clock and deliberately absent here).
        const double reduction = 100.0 *
            (1.0 - static_cast<double>(m.opt_stmts_after) /
                 static_cast<double>(m.opt_stmts_before));
        os << "IR optimizer: " << m.opt_stmts_before << " -> "
           << m.opt_stmts_after << " statements (" << std::fixed
           << std::setprecision(1) << reduction << "% reduction)"
           << std::defaultfloat << std::setprecision(6);
        if (m.opt_units_validated || m.opt_validation_failures) {
            os << "; validation: " << m.opt_units_validated
               << " units proven equivalent, "
               << m.opt_validation_failures
               << " replaying the original";
        }
        os << "\n";
    }
    os << "minimization: " << m.minimize_bits_before
       << " differing bits -> " << m.minimize_bits_after << "\n";
    os << "test programs: " << m.test_programs << " ("
       << m.generation_failures << " generation failures)\n";
    os << "tests executed: " << m.tests_executed << ", " << m.timeouts
       << " excluded by oracle timeout (timed out: hifi "
       << m.hifi_timeouts << ", lofi " << m.lofi_timeouts << ", hw "
       << m.hw_timeouts << ")\n";
    os << "lofi vs hw: " << m.lofi_raw_diffs << " raw, "
       << m.lofi_diffs << " after undefined-behaviour filtering\n";
    os << "hifi vs hw: " << m.hifi_raw_diffs << " raw, "
       << m.hifi_diffs << " after filtering\n";
    os << m.filtered_undefined
       << " differences were entirely undefined behaviour\n";
    // Timing lines are gated on nonzero totals so a timing-off
    // campaign's report is byte-identical to a pre-timing one.
    if (m.hifi_cycles || m.lofi_cycles || m.hw_cycles) {
        os << "cycle totals: hifi " << m.hifi_cycles << ", lofi "
           << m.lofi_cycles << ", hw " << m.hw_cycles << "\n";
        os << "timing divergences: lofi " << m.lofi_timing_divergences
           << ", hifi " << m.hifi_timing_divergences << "\n";
    }
    if (m.quarantine.total() != 0)
        os << m.quarantine.to_string();
    os << "lofi root causes:\n" << m.lofi_clusters.to_string();
    os << "hifi root causes:\n" << m.hifi_clusters.to_string();
    if (m.lofi_timing_clusters.total() ||
        m.hifi_timing_clusters.total()) {
        os << "lofi timing divergences:\n"
           << m.lofi_timing_clusters.to_string();
        os << "hifi timing divergences:\n"
           << m.hifi_timing_clusters.to_string();
    }
    return os.str();
}

} // namespace pokeemu
