/**
 * @file
 * The PokeEMU pipeline: path-exploration lifting end to end
 * (paper Figure 1).
 *
 *   (1) instruction-set exploration      explore/insn_explorer
 *   (2) machine-state-space exploration  explore/state_explorer
 *   (3) test-program generation          testgen/
 *   (4) test execution                   harness/runner
 *   (5) difference analysis              harness/diff+filter+cluster
 *
 * The Hi-Fi emulator is the exploration artifact; the tests it lifts
 * are executed on the Hi-Fi emulator, the Lo-Fi emulator, and the
 * hardware oracle, and the final states are compared pairwise against
 * hardware, exactly as in the paper's three-way evaluation.
 */
#ifndef POKEEMU_POKEEMU_PIPELINE_H
#define POKEEMU_POKEEMU_PIPELINE_H

#include <optional>
#include <set>

#include "explore/insn_explorer.h"
#include "explore/state_explorer.h"
#include "harness/cluster.h"
#include "harness/runner.h"
#include "pokeemu/resilience.h"
#include "solver/memo.h"
#include "support/fault.h"
#include "testgen/testgen.h"

namespace pokeemu {

struct PipelineOptions
{
    /** Per-instruction path cap. The paper used 8192; the default here
     *  is scaled down so full sweeps finish in CI time. */
    u64 max_paths_per_insn = 48;
    /** Tighter cap for rep-prefixed string instructions, whose
     *  iteration-count paths grow without bound (the paper's ~5% of
     *  instructions that were not exhaustively explored). */
    u64 max_paths_rep = 12;
    u64 seed = 1;
    /** Path-order policy for capped explorations (stage 2). The
     *  frontier scheduler maximizes block/edge coverage under the cap;
     *  DefaultOrder restores the pre-coverage seeded replay order. */
    coverage::SchedulePolicy schedule =
        coverage::SchedulePolicy::UncoveredEdgeFirst;
    /** Explore only these table indices (empty = all). */
    std::vector<int> instruction_filter;
    /** Cap on the number of instructions explored (0 = all). */
    std::size_t max_instructions = 0;
    bool use_descriptor_summary = true;
    bool minimize = true;
    /** Static branch pruning for stage-2 feasibility probes (see
     *  analysis::PruneMode). Path sets and schedules are identical in
     *  every mode; only the queries/avoided split in the stats moves,
     *  which is why the mode is part of the options fingerprint. */
    analysis::PruneMode prune = analysis::PruneMode::On;
    /**
     * IR optimizer mode (analysis/optimize.h). Stage-2 exploration
     * always runs the builder-original semantics, so the generated
     * tests — and therefore the difference clusters — are identical
     * in every mode. On optimizes each unit's semantics once to
     * record statement-reduction stats and replays stage-4 Hi-Fi
     * execution on optimized IR; Validated additionally proves each
     * unit's (original, optimized) pair equivalent with the solver
     * (analysis/equiv.h), quarantining any counterexample and
     * replaying that unit's tests on the original program instead.
     */
    analysis::OptMode opt = analysis::OptMode::Off;
    /**
     * Compiled-semantics execution for stage-4 Hi-Fi replay
     * (hifi/compiled.h). On dispatches each instruction to its
     * build-time generated native handler (interpreter fallback for
     * unmatched encodings); CrossCheck additionally interprets the
     * handler's source program and quarantines any divergence as
     * FaultClass::CodegenMismatch. Final states — and therefore
     * reports — are identical in every mode.
     */
    hifi::CompiledExec compiled = hifi::CompiledExec::Off;
    /**
     * Cycle-fidelity model (timing/cost_model.h, DESIGN.md §16). On
     * enables cycle accounting on all three backends and compares
     * per-test cycle totals against the hardware oracle on runs whose
     * architectural state is otherwise clean; mismatches are counted
     * and clustered as TimingDivergence, separately from state diffs
     * and timeouts. Off (the default) charges nothing and leaves
     * reports byte-identical to a run without the subsystem. Part of
     * the options fingerprint: a checkpoint written under one timing
     * mode refuses to resume under the other.
     */
    bool timing = false;
    lofi::BugConfig bugs{};
    /** Misbehaviour class of the Lo-Fi variant backend (the defect
     *  matrix runs crash/hang/corrupt variants through the full
     *  pipeline to prove per-unit containment at Stage::Backend). */
    lofi::Misbehavior lofi_misbehavior = lofi::Misbehavior::None;
    u64 max_insns_per_test = 1u << 14;
    /** Fault isolation: budgets, checkpoint/resume, chaos plan. */
    ResilienceOptions resilience{};
};

/**
 * Hash of every PipelineOptions field that affects results (not the
 * resilience knobs themselves). A checkpoint records it; resume under
 * different options throws instead of mixing incompatible progress.
 */
u64 options_fingerprint(const PipelineOptions &options);

/** Everything a pipeline run measures (feeds EXPERIMENTS.md). */
struct PipelineStats
{
    // Stage 1.
    explore::InsnSetResult insn_set;
    // Stage 2.
    u64 instructions_explored = 0;
    u64 instructions_complete = 0; ///< Exhaustive path coverage.
    u64 total_paths = 0;
    u64 solver_queries = 0;
    u64 solver_cache_hits = 0;   ///< Queries answered by the memo.
    u64 solver_cache_misses = 0; ///< Memo-eligible queries solved.
    /** Feasibility probes skipped by static dataflow pruning. The sum
     *  solver_queries + solver_queries_avoided is invariant across
     *  prune modes; reports print the sum so merged output stays
     *  byte-identical whichever mode ran. */
    u64 solver_queries_avoided = 0;
    u64 minimize_bits_before = 0;
    u64 minimize_bits_after = 0;
    /** IR coverage over explored units (sums of per-unit CFG
     *  block/edge coverage; see coverage::CoverageMap). */
    u64 covered_blocks = 0;
    u64 total_blocks = 0;
    u64 covered_edges = 0;
    u64 total_edges = 0;
    /** Units per block-coverage bucket (coverage::coverage_bucket). */
    u64 coverage_histogram[coverage::kNumCoverageBuckets] = {};
    /** Truncation accounting: why capped units stopped short (per
     *  coverage::TruncationReason; None is not counted). Solver
     *  timeouts quarantine the whole unit, so their count is derived
     *  from the ledger — see truncated_solver_timeout(). */
    u64 truncated_path_cap = 0;
    u64 truncated_deadline = 0;
    u64 truncated_step_limit = 0;
    /** IR optimizer accounting (all zero when OptMode::Off, which
     *  keeps the Off report byte-identical to pre-optimizer output).
     *  Statement counts are per-unit semantics totals summed over
     *  explored units. */
    u64 opt_stmts_before = 0;
    u64 opt_stmts_after = 0;
    u64 opt_units_validated = 0; ///< Proven-equivalent units.
    u64 opt_validation_failures = 0; ///< Counterexamples (fallback).
    // Stage 3.
    u64 test_programs = 0;
    u64 generation_failures = 0;
    // Stage 4+5.
    u64 tests_executed = 0;
    /** Compiled-dispatch accounting (hifi/compiled.h): instructions
     *  retired by a generated handler vs. interpreter fallbacks.
     *  Deliberately absent from to_string() so reports stay
     *  byte-identical across CompiledExec modes. */
    u64 compiled_hits = 0;
    u64 compiled_misses = 0;
    u64 lofi_raw_diffs = 0;  ///< Lo-Fi vs hardware, before filtering.
    u64 hifi_raw_diffs = 0;  ///< Hi-Fi vs hardware, before filtering.
    u64 lofi_diffs = 0;      ///< After undefined-behaviour filtering.
    u64 hifi_diffs = 0;
    u64 filtered_undefined = 0;
    /** Tests excluded from comparison: the hardware oracle timed out.
     *  A timeout on a single emulator backend is NOT counted here —
     *  it is classified as its own root-cause cluster
     *  ("timeout-only-<backend>"). */
    u64 timeouts = 0;
    u64 hifi_timeouts = 0; ///< Per-backend timed_out totals.
    u64 lofi_timeouts = 0;
    u64 hw_timeouts = 0;
    /** Cycle accounting (PipelineOptions::timing; all zero when off).
     *  Totals are summed over executed tests; divergences count tests
     *  whose architectural state matched hardware (after filtering)
     *  but whose cycle total did not — the TimingDivergence class,
     *  disjoint by construction from state diffs and timeouts. */
    u64 hifi_cycles = 0;
    u64 lofi_cycles = 0;
    u64 hw_cycles = 0;
    u64 lofi_timing_divergences = 0;
    u64 hifi_timing_divergences = 0;
    harness::RootCauseClusterer lofi_clusters;
    harness::RootCauseClusterer hifi_clusters;
    /** TimingDivergence clusters (ratio buckets, timing/cost_model.h);
     *  kept apart from the state-diff clusterers above so timing and
     *  state root causes never share a table. */
    harness::RootCauseClusterer lofi_timing_clusters;
    harness::RootCauseClusterer hifi_timing_clusters;
    // Fault isolation.
    support::QuarantineReport quarantine;
    u64 budget_retries = 0;    ///< Units granted an escalated retry.
    u64 budget_incomplete = 0; ///< Units still over budget after it.
    u64 units_resumed = 0;     ///< Stage-2/3 units from a checkpoint.
    u64 tests_resumed = 0;     ///< Stage-4/5 tests from a checkpoint.
    u64 checkpoints_written = 0;
    /** The explore_at_most_units / execute_at_most_tests quota ended
     *  the stage with work left over — a later resume continues it.
     *  Both false means the session finished the whole workload. */
    bool explore_preempted = false;
    bool execute_preempted = false;
    // Timing (seconds) per stage.
    double t_insn_exploration = 0;
    double t_state_exploration = 0;
    double t_generation = 0;
    double t_execution_hifi = 0;
    double t_execution_lofi = 0;
    double t_execution_hw = 0;
    double t_comparison = 0;
    double t_validation = 0; ///< Optimizer + translation validation.

    /** Stage-2 units whose exploration a solver timeout cut short
     *  (they carry no CheckpointUnit; the quarantine ledger is the
     *  durable record, so the count is derived from it). */
    u64 truncated_solver_timeout() const;

    /** Any unit stopped short of complete exploration? */
    bool any_truncation() const
    {
        return truncated_path_cap || truncated_deadline ||
            truncated_step_limit || truncated_solver_timeout();
    }

    std::string to_string() const;
};

/** One generated test, kept for re-execution by benches/examples. */
struct GeneratedTest
{
    u64 id;
    int table_index;
    arch::DecodedInsn insn;
    testgen::TestProgram program;
    u32 halt_code; ///< The explored path's classification.
};

/** See file comment. */
class Pipeline
{
  public:
    explicit Pipeline(PipelineOptions options = {});
    ~Pipeline();

    /** Stages 1-3: explore and generate; fills tests(). */
    void explore_and_generate();

    /** Stages 4-5: execute everything and compare. */
    void execute_and_compare();

    /** Full run. */
    const PipelineStats &run();

    const PipelineStats &stats() const { return stats_; }
    const std::vector<GeneratedTest> &tests() const { return tests_; }
    const explore::StateSpec &spec() const { return *spec_; }
    const symexec::Summary &descriptor_summary() const
    {
        return summary_;
    }

    /** The chaos injector's accounting (occurrences/faults per site). */
    const support::FaultInjector &injector() const { return injector_; }

    /** The progress record being built (what write_checkpoint saves);
     *  shard merging reads per-unit rows from here. */
    const Checkpoint &checkpoint() const { return checkpoint_; }

  private:
    /** Quarantine one unit of work and keep sweeping. Returns false
     *  when the entry is not fresh progress: an identical entry was
     *  already ledgered this session, or a prior session's ledger had
     *  it (a resumed session re-attempting a deterministically faulty
     *  unit re-fails quietly). */
    bool quarantine(support::Stage stage, std::string unit,
                    support::FaultClass cls, std::string message);

    /** Restore one completed stage-2/3 unit from the loaded
     *  checkpoint into stats_/tests_. */
    void restore_unit(const CheckpointUnit &unit, u64 &next_test_id);

    /** Write checkpoint_ to the configured path (if any). */
    void write_checkpoint();

    PipelineOptions options_;
    PipelineStats stats_;
    symexec::VarPool summary_pool_;
    symexec::Summary summary_;
    std::unique_ptr<explore::StateSpec> spec_;
    std::vector<GeneratedTest> tests_;
    bool explored_ = false;
    support::FaultInjector injector_;
    /** Solver-query memo for stage 2, cleared at every unit boundary
     *  (begin_unit) so each instruction's exploration stays a pure
     *  function of (instruction, options) — the property the sharded
     *  campaign's byte-identical merge rests on. Hits come from
     *  sibling paths of the same instruction re-checking shared
     *  path-condition prefixes. */
    solver::QueryMemo memo_;
    /** Table indices whose Validated-mode check found a counterexample;
     *  their stage-4 Hi-Fi replay falls back to the original program. */
    std::set<int> opt_fallback_;
    Checkpoint checkpoint_;              ///< Progress being built.
    std::optional<Checkpoint> resumed_;  ///< Loaded prior progress.
    /** Stage-2 entries from the resumed ledger. Re-attempted units
     *  re-enter the live ledger only if they fail again (a recovered
     *  unit leaves no stale entry); the prior entries are kept aside so
     *  a deterministic re-failure is recognized as old news — logged
     *  quietly and refunded to the session's fresh-unit quota. */
    support::QuarantineReport prior_quarantine_;
};

} // namespace pokeemu

#endif // POKEEMU_POKEEMU_PIPELINE_H
