#include "pokeemu/corpus.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "harness/filter.h"

namespace pokeemu {

namespace {

constexpr const char *kMagic = "pokeemu-corpus-v1";

/**
 * Malformed corpus input is a caller-facing error (the documented
 * std::logic_error of load_corpus), not an internal invariant — a
 * truncated file must not read as a library bug.
 */
[[noreturn]] void
corpus_error(const std::string &message)
{
    throw std::logic_error("corpus: " + message);
}

} // namespace

std::string
hex_encode(const std::vector<u8> &bytes)
{
    std::string out;
    out.reserve(bytes.size() * 2);
    static const char digits[] = "0123456789abcdef";
    for (u8 b : bytes) {
        out.push_back(digits[b >> 4]);
        out.push_back(digits[b & 0xf]);
    }
    return out;
}

std::vector<u8>
hex_decode(const std::string &hex)
{
    if (hex.size() % 2)
        corpus_error("odd hex length");
    std::vector<u8> out(hex.size() / 2);
    auto nibble = [](char c) -> unsigned {
        if (c >= '0' && c <= '9')
            return static_cast<unsigned>(c - '0');
        if (c >= 'a' && c <= 'f')
            return static_cast<unsigned>(c - 'a' + 10);
        corpus_error("bad hex digit");
    };
    for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = static_cast<u8>((nibble(hex[2 * i]) << 4) |
                                 nibble(hex[2 * i + 1]));
    }
    return out;
}

void
save_corpus(std::ostream &out, const std::vector<GeneratedTest> &tests)
{
    out << kMagic << "\n" << tests.size() << "\n";
    for (const GeneratedTest &test : tests) {
        out << test.id << " " << test.program.test_insn_offset << " "
            << test.insn.desc->mnemonic << " "
            << hex_encode(test.program.code) << "\n";
    }
}

std::vector<CorpusTest>
load_corpus(std::istream &in)
{
    std::string magic;
    if (!std::getline(in, magic) || magic != kMagic)
        corpus_error("bad header");
    std::size_t count = 0;
    if (!(in >> count))
        corpus_error("missing entry count");
    std::vector<CorpusTest> tests;
    tests.reserve(std::min<std::size_t>(count, 1u << 20));
    for (std::size_t i = 0; i < count; ++i) {
        CorpusTest t;
        std::string hex;
        if (!(in >> t.id >> t.test_insn_offset >> t.mnemonic >> hex))
            corpus_error("truncated entry");
        t.code = hex_decode(hex);
        tests.push_back(std::move(t));
    }
    return tests;
}

ReplayStats
replay_corpus(const std::vector<CorpusTest> &tests,
              const lofi::BugConfig &bugs)
{
    harness::TestRunner::Config cfg;
    cfg.bugs = bugs;
    harness::TestRunner runner(cfg);

    ReplayStats stats;
    harness::BackendRun hifi_run, lofi_run, hw_run;
    for (const CorpusTest &test : tests) {
        runner.run_one_into(harness::Backend::HiFi, test.code,
                            hifi_run);
        runner.run_one_into(harness::Backend::LoFi, test.code,
                            lofi_run);
        runner.run_one_into(harness::Backend::Hardware, test.code,
                            hw_run);
        ++stats.tests;
        if (hifi_run.timed_out || lofi_run.timed_out ||
            hw_run.timed_out) {
            ++stats.timeouts;
            continue;
        }
        // Re-decode the test instruction for filtering/clustering.
        arch::DecodedInsn insn;
        u8 buf[arch::kMaxInsnLength] = {};
        const std::size_t n = std::min<std::size_t>(
            arch::kMaxInsnLength,
            test.code.size() - test.test_insn_offset);
        std::copy_n(test.code.begin() + test.test_insn_offset, n, buf);
        const bool decoded =
            arch::decode(buf, arch::kMaxInsnLength, insn) ==
            arch::DecodeStatus::Ok;

        const auto analyze = [&](const harness::BackendRun &run,
                                 u64 &counter, bool cluster) {
            const arch::SnapshotDiff diff =
                arch::diff_snapshots(run.snapshot, hw_run.snapshot);
            if (diff.empty())
                return;
            if (decoded) {
                const auto filtered = harness::filter_undefined(
                    insn, run.snapshot, hw_run.snapshot, diff);
                if (filtered.fully_filtered()) {
                    ++stats.filtered_undefined;
                    return;
                }
                ++counter;
                if (cluster) {
                    stats.lofi_clusters.add(test.id, insn,
                                            filtered.remaining,
                                            run.snapshot,
                                            hw_run.snapshot);
                }
                return;
            }
            ++counter;
        };
        analyze(lofi_run, stats.lofi_diffs, true);
        analyze(hifi_run, stats.hifi_diffs, false);
    }
    return stats;
}

} // namespace pokeemu
