/**
 * @file
 * A direct (non-IR) VX86 executor: the common core of the Lo-Fi
 * emulator (lofi/) and the hardware model (hw/).
 *
 * Unlike the Hi-Fi emulator — which interprets IR programs and is the
 * artifact the symbolic explorer walks — this is an ordinary C++
 * switch interpreter. Every behaviour the paper's evaluation found to
 * differ between QEMU, Bochs and hardware (§6.2) is an explicit knob
 * in Behavior, so the hardware model runs with the "hardware" setting
 * and the Lo-Fi emulator seeds the QEMU-class bugs. Having the knobs
 * in one shared core means each bug is a *single, auditable
 * divergence point*, while the Hi-Fi emulator remains a genuinely
 * independent implementation for cross-validation.
 *
 * Atomicity discipline: each instruction executes against a working
 * copy of the CPU state; guest faults are thrown as GuestFault after
 * all checks and before RAM writes (string instructions commit per
 * iteration, which is architectural). The seeded non-atomicity bugs
 * deliberately mutate the working copy before a faultable access.
 */
#ifndef POKEEMU_BACKEND_DIRECT_CPU_H
#define POKEEMU_BACKEND_DIRECT_CPU_H

#include <unordered_map>

#include "arch/decoder.h"
#include "arch/snapshot.h"

namespace pokeemu::backend {

/** How documented-undefined flag/dest cases are resolved. */
enum class UndefFlagStyle : u8 {
    Hardware, ///< The hardware model's choices.
    LoFi,     ///< The Lo-Fi emulator's divergent choices.
};

/** Divergence knobs; defaults are the hardware behaviour. */
struct Behavior
{
    /** Enforce segment limit/type/null checks on data accesses. */
    bool enforce_segment_checks = true;
    /** leave: read the saved EBP before modifying ESP. */
    bool leave_atomic = true;
    /** cmpxchg: verify destination writability before any update. */
    bool cmpxchg_checks_write_first = true;
    /** iret: pop EIP,CS,EFLAGS innermost-first (hardware order). */
    bool iret_pop_inner_first = true;
    /** l[e,d,s,f,g]s: fetch offset before selector (hardware order). */
    bool far_fetch_offset_first = true;
    /** rdmsr/wrmsr of an unknown MSR raises #GP(0). */
    bool rdmsr_gp_on_invalid = true;
    /** Segment loads set the descriptor's accessed bit in memory. */
    bool set_descriptor_accessed = true;
    /** Accept undocumented alias encodings (shift /6, F6 /1). */
    bool accept_alias_encodings = true;
    /** Shifts leave AF unchanged (hardware); the Hi-Fi emulator's
     *  Bochs-like behaviour clears it instead. */
    bool shift_clears_af = false;
    UndefFlagStyle undef_flags = UndefFlagStyle::Hardware;

    /// @name Injectable defects (defects::catalogue()). All default to
    /// the faithful behaviour; both hardware_behavior() and
    /// lofi_behavior() leave them off, so only mutation-derived
    /// variant backends ever see them.
    /// @{
    /** Compute 8-bit ALU flags at 32-bit width (wrong CF/OF/SF/ZF on
     *  byte adds, subs and logic ops). */
    bool alu8_flags_wide = false;
    /** Page walks set PTE/PDE accessed and dirty bits (hardware).
     *  Off models an emulator whose soft-MMU forgets them. */
    bool set_pte_accessed_dirty = true;
    /** Segment-limit comparison off by one: the last valid byte of a
     *  segment faults (and one past an expand-down limit is let in). */
    bool seg_limit_off_by_one = false;
    /** wrmsr stores only the low 16 bits of EAX. */
    bool wrmsr_truncate_16 = false;
    /// @}

    /** Accumulate per-run cycle totals (timing/cost_model.h) into
     *  snapshots. Off by default: accounting is opt-in per campaign
     *  (--timing), and a zero total keeps reports byte-identical to
     *  the timing-off output. */
    bool cycle_accounting = false;

    /// @name Injectable timing defects (pose64-style: architectural
    /// results stay right while cycle totals go wrong). Only charged
    /// when cycle_accounting is on.
    /// @{
    /** Every charge halved — the pose64 2x systematic undercount.
     *  Costs are even by construction (timing/cost_model.h), so the
     *  halving is exact and clusters at cycles-2x-under. */
    bool half_cycle_accounting = false;
    /** Per-memory-access cost never accumulated. */
    bool mem_access_cost_dropped = false;
    /// @}

    bool operator==(const Behavior &) const = default;
};

/** The hardware model's configuration (all defaults). */
Behavior hardware_behavior();

/** The Lo-Fi emulator's configuration: every §6.2 bug seeded. */
Behavior lofi_behavior();

/** Why execution stopped (mirrors hifi::StopReason). */
enum class StopReason : u8 { Halted, Exception, InsnLimit };

/** A guest fault, thrown during instruction execution. */
struct GuestFault
{
    u8 vector;
    u32 error_code;
    bool has_error_code;
    bool set_cr2;
    u32 cr2;
};

/** See file comment. */
class DirectCpu
{
  public:
    explicit DirectCpu(Behavior behavior);

    void reset(const arch::CpuState &cpu, const std::vector<u8> &ram);

    /** Execute one instruction; false when already stopped. */
    bool step();

    StopReason run(u64 max_insns = 1u << 20);

    const arch::CpuState &cpu() const { return cpu_; }
    arch::Snapshot snapshot() const { return {cpu_, ram_, cycles_}; }

    /** Snapshot into a reusable buffer (avoids a 4 MiB allocation per
     *  test; the vector assignment reuses existing capacity). */
    void
    snapshot_into(arch::Snapshot &out) const
    {
        out.cpu = cpu_;
        out.ram = ram_;
        out.cycles = cycles_;
    }

    u64 insn_count() const { return insn_count_; }

    /// @name Cycle accounting (timing/cost_model.h).
    /// @{
    void set_cycle_accounting(bool on) { behavior_.cycle_accounting = on; }
    u64 cycle_count() const { return cycles_; }
    /// @}

    /// @name Translation-cache statistics (the Lo-Fi "JIT" model).
    /// @{
    u64 cache_hits() const { return cache_hits_; }
    u64 cache_misses() const { return cache_misses_; }
    /// @}

  private:
    /** Per-step working state: registers are committed at the end of
     *  the instruction (or at the fault point, for the seeded
     *  non-atomicity bugs and string progress). */
    struct Work
    {
        arch::CpuState c;
    };

    /// @name Memory through segmentation + paging.
    /// @{
    u32 seg_check(const Work &w, unsigned seg, u32 offset,
                  unsigned size, bool write) const;
    u32 translate(const Work &w, u32 linear, bool write);
    u64 read_mem(Work &w, unsigned seg, u32 offset, unsigned size);
    void write_mem(Work &w, unsigned seg, u32 offset, unsigned size,
                   u64 value);
    /** Check + translate for write; returns the physical address. */
    u32 prepare_write(Work &w, unsigned seg, u32 offset, unsigned size);
    void write_phys(u32 phys, unsigned size, u64 value);
    u64 read_phys(u32 phys, unsigned size) const;
    /// @}

    /// @name Register / flag helpers.
    /// @{
    u64 get_reg(const Work &w, unsigned r, unsigned width) const;
    void set_reg(Work &w, unsigned r, unsigned width, u64 value);
    void set_flags_szp(Work &w, u64 res, unsigned width, u32 extra_set,
                       u32 extra_clear);
    void flags_add(Work &w, u64 a, u64 b, u64 cin, unsigned width);
    void flags_sub(Work &w, u64 a, u64 b, u64 bin, unsigned width);
    void flags_logic(Work &w, u64 res, unsigned width);
    bool cond_cc(const Work &w, unsigned cc) const;
    /// @}

    /// @name Operand helpers.
    /// @{
    u32 effective_address(const Work &w,
                          const arch::DecodedInsn &insn) const;
    unsigned effective_segment(const arch::DecodedInsn &insn) const;
    u64 read_rm(Work &w, const arch::DecodedInsn &insn, unsigned width);
    void write_rm(Work &w, const arch::DecodedInsn &insn,
                  unsigned width, u64 value);
    /// @}

    void push32(Work &w, u32 value);
    u32 pop32(Work &w);

    /** Full-check segment load (mov sreg, pop ss, far loads). */
    void load_segment(Work &w, unsigned seg, u16 selector);

    void execute(Work &w, const arch::DecodedInsn &insn);

    /// @name Cycle charging (one call per retirement attempt).
    /// @{
    /** Charge the (row, operand form) cost — plus the fault surcharge
     *  when the semantics faulted — with timing defects applied. */
    void charge(int table_index, bool mem_form, bool faulted);
    /** Flat pre-semantics fault-path charge (fetch starvation,
     *  undecodable bytes, rejected alias). */
    void charge_fault_path();
    /// @}

    Behavior behavior_;
    arch::CpuState cpu_;
    std::vector<u8> ram_;
    /** Translation cache: physical address of first byte -> decoded
     *  instruction + the bytes it was decoded from (re-validated on
     *  hit, so self-modifying code cannot go stale). */
    struct CacheEntry
    {
        std::vector<u8> bytes;
        arch::DecodedInsn insn;
    };
    std::unordered_map<u32, CacheEntry> tcache_;
    u64 insn_count_ = 0;
    u64 cache_hits_ = 0;
    u64 cache_misses_ = 0;
    u64 cycles_ = 0;
};

} // namespace pokeemu::backend

#endif // POKEEMU_BACKEND_DIRECT_CPU_H
