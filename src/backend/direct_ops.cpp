/**
 * @file
 * DirectCpu::execute — the per-instruction behaviour of the direct
 * backend, mirroring hifi/semantics_ops*.cpp formula-for-formula,
 * with the Behavior knobs at every paper-§6.2 divergence point.
 */
#include "backend/direct_cpu.h"

#include <limits>

#include "arch/descriptors.h"

namespace pokeemu::backend {

using arch::AluKind;
using arch::DecodedInsn;
using arch::Op;
using arch::ShiftKind;

namespace {

[[noreturn]] void
raise(u8 vector, u32 error, bool has_error)
{
    throw GuestFault{vector, error, has_error, false, 0};
}

u64
sext8(u32 imm, unsigned width)
{
    return truncate(static_cast<u64>(sign_extend(imm & 0xff, 8)),
                    width);
}

} // namespace

void
DirectCpu::execute(Work &w, const DecodedInsn &insn)
{
    const Op op = insn.desc->op;
    const u32 next_eip = w.c.eip + insn.length;
    auto done = [&] { w.c.eip = next_eip; };
    auto set_flag = [&](u32 bit, bool v) {
        w.c.eflags = v ? (w.c.eflags | bit) : (w.c.eflags & ~bit);
    };
    auto clean_eflags = [&] {
        w.c.eflags =
            (w.c.eflags & ~0x8028u) | arch::kFlagFixed1;
    };

    switch (op) {
      // ----------------------------------------------------------- ALU
      case Op::AluRm8R8: case Op::AluRm32R32: case Op::AluR8Rm8:
      case Op::AluR32Rm32: case Op::AluAlImm8: case Op::AluEaxImm32:
      case Op::Grp1Rm8Imm8: case Op::Grp1Rm32Imm32:
      case Op::Grp1Rm32Imm8: {
        const AluKind kind = static_cast<AluKind>(insn.desc->aux);
        const unsigned width =
            (op == Op::AluRm8R8 || op == Op::AluR8Rm8 ||
             op == Op::AluAlImm8 || op == Op::Grp1Rm8Imm8)
                ? 8 : 32;
        const bool is_cmp = kind == AluKind::Cmp;
        enum class Dst { Rm, Reg, Acc } dst;
        u64 a, b;
        u32 mem_phys = 0;
        bool mem_dst = false;
        switch (op) {
          case Op::AluRm8R8: case Op::AluRm32R32:
            dst = Dst::Rm;
            if (insn.mod == 3) {
                a = get_reg(w, insn.rm, width);
            } else if (is_cmp) {
                a = read_rm(w, insn, width);
            } else {
                mem_phys = prepare_write(w, effective_segment(insn),
                                         effective_address(w, insn),
                                         width / 8);
                a = read_phys(mem_phys, width / 8);
                mem_dst = true;
            }
            b = get_reg(w, insn.reg, width);
            break;
          case Op::AluR8Rm8: case Op::AluR32Rm32:
            dst = Dst::Reg;
            a = get_reg(w, insn.reg, width);
            b = read_rm(w, insn, width);
            break;
          case Op::AluAlImm8: case Op::AluEaxImm32:
            dst = Dst::Acc;
            a = get_reg(w, arch::kEax, width);
            b = insn.imm;
            break;
          default: // Grp1 forms.
            dst = Dst::Rm;
            if (insn.mod == 3) {
                a = get_reg(w, insn.rm, width);
            } else if (is_cmp) {
                a = read_rm(w, insn, width);
            } else {
                mem_phys = prepare_write(w, effective_segment(insn),
                                         effective_address(w, insn),
                                         width / 8);
                a = read_phys(mem_phys, width / 8);
                mem_dst = true;
            }
            b = op == Op::Grp1Rm32Imm8 ? sext8(insn.imm, 32)
                                       : insn.imm;
            break;
        }
        a = truncate(a, width);
        b = truncate(b, width);
        u64 res = 0;
        const u64 cf_in = (w.c.eflags & arch::kFlagCf) ? 1 : 0;
        switch (kind) {
          case AluKind::Add:
            flags_add(w, a, b, 0, width);
            res = a + b;
            break;
          case AluKind::Adc:
            flags_add(w, a, b, cf_in, width);
            res = a + b + cf_in;
            break;
          case AluKind::Sub:
          case AluKind::Cmp:
            flags_sub(w, a, b, 0, width);
            res = a - b;
            break;
          case AluKind::Sbb:
            flags_sub(w, a, b, cf_in, width);
            res = a - b - cf_in;
            break;
          case AluKind::And:
            res = a & b;
            flags_logic(w, res, width);
            break;
          case AluKind::Or:
            res = a | b;
            flags_logic(w, res, width);
            break;
          case AluKind::Xor:
            res = a ^ b;
            flags_logic(w, res, width);
            break;
        }
        res = truncate(res, width);
        if (!is_cmp) {
            if (dst == Dst::Rm && mem_dst)
                write_phys(mem_phys, width / 8, res);
            else if (dst == Dst::Rm)
                set_reg(w, insn.rm, width, res);
            else if (dst == Dst::Reg)
                set_reg(w, insn.reg, width, res);
            else
                set_reg(w, arch::kEax, width, res);
        }
        done();
        return;
      }

      // ------------------------------------------- inc/dec/push/pop
      case Op::IncR32: case Op::DecR32: {
        const unsigned r = insn.desc->aux;
        const u64 a = w.c.gpr[r];
        const bool inc = op == Op::IncR32;
        const u32 old_cf = w.c.eflags & arch::kFlagCf;
        if (inc)
            flags_add(w, a, 1, 0, 32);
        else
            flags_sub(w, a, 1, 0, 32);
        set_flag(arch::kFlagCf, old_cf != 0);
        w.c.gpr[r] = static_cast<u32>(inc ? a + 1 : a - 1);
        done();
        return;
      }
      case Op::IncRm8: case Op::DecRm8:
      case Op::IncRm32: case Op::DecRm32: {
        const unsigned width =
            (op == Op::IncRm8 || op == Op::DecRm8) ? 8 : 32;
        const bool inc = op == Op::IncRm8 || op == Op::IncRm32;
        u32 phys = 0;
        u64 a;
        if (insn.mod == 3) {
            a = get_reg(w, insn.rm, width);
        } else {
            phys = prepare_write(w, effective_segment(insn),
                                 effective_address(w, insn), width / 8);
            a = read_phys(phys, width / 8);
        }
        const u32 old_cf = w.c.eflags & arch::kFlagCf;
        if (inc)
            flags_add(w, a, 1, 0, width);
        else
            flags_sub(w, a, 1, 0, width);
        set_flag(arch::kFlagCf, old_cf != 0);
        const u64 res = truncate(inc ? a + 1 : a - 1, width);
        if (insn.mod == 3)
            set_reg(w, insn.rm, width, res);
        else
            write_phys(phys, width / 8, res);
        done();
        return;
      }
      case Op::PushR32:
        push32(w, w.c.gpr[insn.desc->aux]);
        done();
        return;
      case Op::PushImm32:
        push32(w, insn.imm);
        done();
        return;
      case Op::PushImm8:
        push32(w, static_cast<u32>(sext8(insn.imm, 32)));
        done();
        return;
      case Op::PushRm32:
        push32(w, static_cast<u32>(read_rm(w, insn, 32)));
        done();
        return;
      case Op::PopR32: {
        const u32 v = pop32(w);
        w.c.gpr[insn.desc->aux] = v;
        done();
        return;
      }
      case Op::PopRm32: {
        const u32 v = static_cast<u32>(
            read_mem(w, arch::kSs, w.c.gpr[arch::kEsp], 4));
        write_rm(w, insn, 32, v);
        w.c.gpr[arch::kEsp] += 4;
        done();
        return;
      }

      // ------------------------------------------------------- moves
      case Op::MovRm8R8: case Op::MovRm32R32: {
        const unsigned width = op == Op::MovRm8R8 ? 8 : 32;
        write_rm(w, insn, width, get_reg(w, insn.reg, width));
        done();
        return;
      }
      case Op::MovR8Rm8: case Op::MovR32Rm32: {
        const unsigned width = op == Op::MovR8Rm8 ? 8 : 32;
        set_reg(w, insn.reg, width, read_rm(w, insn, width));
        done();
        return;
      }
      case Op::MovRm8Imm8: case Op::MovRm32Imm32: {
        const unsigned width = op == Op::MovRm8Imm8 ? 8 : 32;
        write_rm(w, insn, width, insn.imm);
        done();
        return;
      }
      case Op::MovR8Imm8:
        set_reg(w, insn.desc->aux, 8, insn.imm);
        done();
        return;
      case Op::MovR32Imm32:
        w.c.gpr[insn.desc->aux] = insn.imm;
        done();
        return;
      case Op::MovRm16Sreg:
        if (insn.mod == 3)
            set_reg(w, insn.rm, 16, w.c.seg[insn.reg].selector);
        else
            write_mem(w, effective_segment(insn),
                      effective_address(w, insn), 2,
                      w.c.seg[insn.reg].selector);
        done();
        return;
      case Op::MovSregRm16:
        load_segment(w, insn.reg,
                     static_cast<u16>(read_rm(w, insn, 16)));
        done();
        return;
      case Op::Lea:
        w.c.gpr[insn.reg] = effective_address(w, insn);
        done();
        return;
      case Op::MovAlMoffs:
      case Op::MovEaxMoffs: {
        const unsigned seg = insn.seg_override >= 0
            ? static_cast<unsigned>(insn.seg_override)
            : static_cast<unsigned>(arch::kDs);
        if (op == Op::MovAlMoffs)
            set_reg(w, 0, 8, read_mem(w, seg, insn.imm, 1));
        else
            w.c.gpr[arch::kEax] =
                static_cast<u32>(read_mem(w, seg, insn.imm, 4));
        done();
        return;
      }
      case Op::MovMoffsAl:
      case Op::MovMoffsEax: {
        const unsigned seg = insn.seg_override >= 0
            ? static_cast<unsigned>(insn.seg_override)
            : static_cast<unsigned>(arch::kDs);
        if (op == Op::MovMoffsAl)
            write_mem(w, seg, insn.imm, 1, get_reg(w, 0, 8));
        else
            write_mem(w, seg, insn.imm, 4, w.c.gpr[arch::kEax]);
        done();
        return;
      }

      // -------------------------------------------------- test/xchg
      case Op::TestRm8R8: case Op::TestRm32R32: {
        const unsigned width = op == Op::TestRm8R8 ? 8 : 32;
        const u64 a = read_rm(w, insn, width);
        const u64 b = get_reg(w, insn.reg, width);
        flags_logic(w, truncate(a & b, width), width);
        done();
        return;
      }
      case Op::TestAlImm8: case Op::TestEaxImm32: {
        const unsigned width = op == Op::TestAlImm8 ? 8 : 32;
        flags_logic(
            w, truncate(get_reg(w, arch::kEax, width) & insn.imm,
                        width),
            width);
        done();
        return;
      }
      case Op::Grp3TestRm8Imm8: case Op::Grp3TestRm32Imm32: {
        const unsigned width = op == Op::Grp3TestRm8Imm8 ? 8 : 32;
        const u64 a = read_rm(w, insn, width);
        flags_logic(w, truncate(a & insn.imm, width), width);
        done();
        return;
      }
      case Op::XchgRm8R8: case Op::XchgRm32R32: {
        const unsigned width = op == Op::XchgRm8R8 ? 8 : 32;
        if (insn.mod == 3) {
            const u64 a = get_reg(w, insn.rm, width);
            const u64 b = get_reg(w, insn.reg, width);
            set_reg(w, insn.rm, width, b);
            set_reg(w, insn.reg, width, a);
        } else {
            const u32 phys =
                prepare_write(w, effective_segment(insn),
                              effective_address(w, insn), width / 8);
            const u64 a = read_phys(phys, width / 8);
            write_phys(phys, width / 8, get_reg(w, insn.reg, width));
            set_reg(w, insn.reg, width, a);
        }
        done();
        return;
      }
      case Op::XchgEaxR32: {
        std::swap(w.c.gpr[arch::kEax], w.c.gpr[insn.desc->aux]);
        done();
        return;
      }

      // ------------------------------------------------ conditionals
      case Op::JccRel8: case Op::JccRel32: {
        const s64 rel = op == Op::JccRel8
            ? sign_extend(insn.imm & 0xff, 8)
            : sign_extend(insn.imm, 32);
        if (cond_cc(w, insn.desc->aux))
            w.c.eip = next_eip + static_cast<u32>(rel);
        else
            w.c.eip = next_eip;
        return;
      }
      case Op::SetccRm8:
        write_rm(w, insn, 8, cond_cc(w, insn.desc->aux) ? 1 : 0);
        done();
        return;
      case Op::CmovccR32Rm32: {
        const u64 src = read_rm(w, insn, 32);
        if (cond_cc(w, insn.desc->aux))
            w.c.gpr[insn.reg] = static_cast<u32>(src);
        done();
        return;
      }

      // ------------------------------------------------------- misc
      case Op::Nop:
        done();
        return;
      case Op::Cwde:
        w.c.gpr[arch::kEax] = static_cast<u32>(
            sign_extend(w.c.gpr[arch::kEax] & 0xffff, 16));
        done();
        return;
      case Op::Cdq:
        w.c.gpr[arch::kEdx] =
            (w.c.gpr[arch::kEax] & 0x80000000u) ? 0xffffffffu : 0;
        done();
        return;
      case Op::Pushfd:
        push32(w, w.c.eflags & ~0x30000u);
        done();
        return;
      case Op::Popfd: {
        const u32 v = pop32(w);
        const u32 mask = 0x47fd5;
        w.c.eflags = (w.c.eflags & ~mask) | (v & mask);
        clean_eflags();
        done();
        return;
      }
      case Op::Sahf: {
        const u32 ah = (w.c.gpr[arch::kEax] >> 8) & 0xff;
        w.c.eflags = (w.c.eflags & ~0xd5u) | (ah & 0xd5);
        clean_eflags();
        done();
        return;
      }
      case Op::Lahf: {
        const u32 low = (w.c.eflags & 0xd5) | 0x02;
        set_reg(w, 4, 8, low); // AH.
        done();
        return;
      }

      // ----------------------------------------------------- strings
      case Op::Movs8: case Op::Movs32: case Op::Cmps8: case Op::Cmps32:
      case Op::Stos8: case Op::Stos32: case Op::Lods8:
      case Op::Lods32: case Op::Scas8: case Op::Scas32: {
        const unsigned width =
            (op == Op::Movs8 || op == Op::Cmps8 || op == Op::Stos8 ||
             op == Op::Lods8 || op == Op::Scas8)
                ? 8 : 32;
        const unsigned size = width / 8;
        const unsigned src_seg = insn.seg_override >= 0
            ? static_cast<unsigned>(insn.seg_override)
            : static_cast<unsigned>(arch::kDs);
        const bool rep = insn.rep || insn.repne;
        const bool is_cmps = op == Op::Cmps8 || op == Op::Cmps32;
        const bool is_scas = op == Op::Scas8 || op == Op::Scas32;
        for (;;) {
            if (rep && w.c.gpr[arch::kEcx] == 0)
                break;
            const u32 delta = (w.c.eflags & arch::kFlagDf)
                ? static_cast<u32>(-static_cast<s32>(size))
                : size;
            switch (op) {
              case Op::Movs8: case Op::Movs32: {
                const u64 v =
                    read_mem(w, src_seg, w.c.gpr[arch::kEsi], size);
                write_mem(w, arch::kEs, w.c.gpr[arch::kEdi], size, v);
                w.c.gpr[arch::kEsi] += delta;
                w.c.gpr[arch::kEdi] += delta;
                break;
              }
              case Op::Stos8: case Op::Stos32:
                write_mem(w, arch::kEs, w.c.gpr[arch::kEdi], size,
                          get_reg(w, arch::kEax, width));
                w.c.gpr[arch::kEdi] += delta;
                break;
              case Op::Lods8: case Op::Lods32:
                set_reg(w, arch::kEax, width,
                        read_mem(w, src_seg, w.c.gpr[arch::kEsi],
                                 size));
                w.c.gpr[arch::kEsi] += delta;
                break;
              case Op::Scas8: case Op::Scas32: {
                const u64 v =
                    read_mem(w, arch::kEs, w.c.gpr[arch::kEdi], size);
                flags_sub(w, get_reg(w, arch::kEax, width), v, 0,
                          width);
                w.c.gpr[arch::kEdi] += delta;
                break;
              }
              default: { // cmps
                const u64 v1 =
                    read_mem(w, src_seg, w.c.gpr[arch::kEsi], size);
                const u64 v2 =
                    read_mem(w, arch::kEs, w.c.gpr[arch::kEdi], size);
                flags_sub(w, v1, v2, 0, width);
                w.c.gpr[arch::kEsi] += delta;
                w.c.gpr[arch::kEdi] += delta;
                break;
              }
            }
            if (!rep)
                break;
            w.c.gpr[arch::kEcx] -= 1;
            if (is_cmps || is_scas) {
                const bool zf = w.c.eflags & arch::kFlagZf;
                if (insn.repne ? zf : !zf)
                    break;
            }
        }
        done();
        return;
      }

      // ------------------------------------------------------ shifts
      case Op::ShiftRm8Imm8: case Op::ShiftRm32Imm8:
      case Op::ShiftRm8One: case Op::ShiftRm32One:
      case Op::ShiftRm8Cl: case Op::ShiftRm32Cl: {
        const ShiftKind kind = static_cast<ShiftKind>(insn.desc->aux);
        const unsigned width =
            (op == Op::ShiftRm8Imm8 || op == Op::ShiftRm8One ||
             op == Op::ShiftRm8Cl)
                ? 8 : 32;
        unsigned count;
        if (op == Op::ShiftRm8Imm8 || op == Op::ShiftRm32Imm8)
            count = insn.imm & 0x1f;
        else if (op == Op::ShiftRm8One || op == Op::ShiftRm32One)
            count = 1;
        else
            count = w.c.gpr[arch::kEcx] & 0x1f;

        u32 phys = 0;
        u64 a;
        if (insn.mod == 3) {
            a = get_reg(w, insn.rm, width);
        } else {
            phys = prepare_write(w, effective_segment(insn),
                                 effective_address(w, insn), width / 8);
            a = read_phys(phys, width / 8);
        }
        a = truncate(a, width);
        if (count == 0) {
            // Value and flags untouched.
            if (insn.mod == 3)
                set_reg(w, insn.rm, width, a);
            else
                write_phys(phys, width / 8, a);
            done();
            return;
        }

        u64 res = 0;
        bool cf = false, of = false;
        switch (kind) {
          case ShiftKind::Shl:
          case ShiftKind::ShlAlias: {
            const u64 wide = a << count;
            res = truncate(wide, width);
            cf = get_bit(wide, width);
            of = cf != (get_bit(res, width - 1) != 0);
            break;
          }
          case ShiftKind::Shr:
            res = a >> count;
            cf = get_bit(a, count - 1);
            of = get_bit(a, width - 1);
            break;
          case ShiftKind::Sar: {
            const s64 sa = sign_extend(a, width);
            res = truncate(static_cast<u64>(sa >> count), width);
            cf = get_bit(static_cast<u64>(sa >> (count - 1)), 0);
            of = false;
            break;
          }
          case ShiftKind::Rol: {
            const unsigned cmod = count & (width - 1);
            res = truncate(
                (a << cmod) | (cmod ? (a >> (width - cmod)) : 0),
                width);
            cf = get_bit(res, 0);
            of = cf != (get_bit(res, width - 1) != 0);
            break;
          }
          case ShiftKind::Ror: {
            const unsigned cmod = count & (width - 1);
            res = truncate(
                (a >> cmod) | (cmod ? (a << (width - cmod)) : 0),
                width);
            cf = get_bit(res, width - 1);
            of = get_bit(res, width - 1) != get_bit(res, width - 2);
            break;
          }
          default:
            panic("rcl/rcr not in subset");
        }

        if (insn.mod == 3)
            set_reg(w, insn.rm, width, res);
        else
            write_phys(phys, width / 8, res);

        const bool is_rotate =
            kind == ShiftKind::Rol || kind == ShiftKind::Ror;
        // OF for count > 1 is documented-undefined: the hardware model
        // keeps the count==1 formula; the Lo-Fi style clears it.
        if (behavior_.undef_flags == UndefFlagStyle::LoFi && count > 1)
            of = false;
        set_flag(arch::kFlagCf, cf);
        set_flag(arch::kFlagOf, of);
        if (!is_rotate) {
            u32 extra_clear = 0;
            u32 extra_set = 0;
            if (behavior_.shift_clears_af)
                extra_clear = arch::kFlagAf;
            const u32 keep_cf_of =
                w.c.eflags & (arch::kFlagCf | arch::kFlagOf);
            set_flags_szp(w, res, width, extra_set | keep_cf_of,
                          extra_clear | arch::kFlagCf | arch::kFlagOf);
        }
        done();
        return;
      }

      // ------------------------------------------------ control flow
      case Op::Ret: {
        w.c.eip = pop32(w);
        return;
      }
      case Op::RetImm16: {
        const u32 target =
            static_cast<u32>(read_mem(w, arch::kSs,
                                      w.c.gpr[arch::kEsp], 4));
        w.c.gpr[arch::kEsp] += 4 + insn.imm;
        w.c.eip = target;
        return;
      }
      case Op::CallRel32:
        push32(w, next_eip);
        w.c.eip = next_eip +
                  static_cast<u32>(sign_extend(insn.imm, 32));
        return;
      case Op::JmpRel32:
      case Op::JmpRel8: {
        const s64 rel = op == Op::JmpRel8
            ? sign_extend(insn.imm & 0xff, 8)
            : sign_extend(insn.imm, 32);
        w.c.eip = next_eip + static_cast<u32>(rel);
        return;
      }
      case Op::CallRm32: {
        const u32 target = static_cast<u32>(read_rm(w, insn, 32));
        push32(w, next_eip);
        w.c.eip = target;
        return;
      }
      case Op::JmpRm32:
        w.c.eip = static_cast<u32>(read_rm(w, insn, 32));
        return;
      case Op::Leave: {
        const u32 ebp = w.c.gpr[arch::kEbp];
        if (behavior_.leave_atomic) {
            const u32 v = static_cast<u32>(
                read_mem(w, arch::kSs, ebp, 4));
            w.c.gpr[arch::kEsp] = ebp + 4;
            w.c.gpr[arch::kEbp] = v;
        } else {
            // Seeded QEMU bug (paper §6.2): ESP is updated before the
            // load; a fault leaves ESP corrupted.
            w.c.gpr[arch::kEsp] = ebp + 4;
            const u32 v = static_cast<u32>(
                read_mem(w, arch::kSs, ebp, 4));
            w.c.gpr[arch::kEbp] = v;
        }
        done();
        return;
      }
      case Op::Int3:
        raise(arch::kExcBp, 0, false);
      case Op::IntImm8:
        raise(static_cast<u8>(insn.imm), 0, false);
      case Op::Into:
        if (w.c.eflags & arch::kFlagOf)
            raise(arch::kExcOf, 0, false);
        done();
        return;
      case Op::JmpFar:
      case Op::CallFar: {
        // Direct far transfer, same-privilege only; mirrors the Hi-Fi
        // IR semantics check for check.
        const bool is_call = op == Op::CallFar;
        const u16 sel = insn.imm_sel;
        if ((sel & 0xfffc) == 0)
            raise(arch::kExcGp, 0, true);
        if (sel & 0x4)
            raise(arch::kExcGp, sel & 0xfffc, true);
        const u32 index = sel >> 3;
        if (w.c.gdtr.limit < index * 8 + 7)
            raise(arch::kExcGp, sel & 0xfffc, true);
        const u32 desc_addr = w.c.gdtr.base + index * 8;
        u8 bytes[8];
        for (unsigned i = 0; i < 8; ++i)
            bytes[i] =
                ram_[(desc_addr + i) & (arch::kPhysMemSize - 1)];
        const arch::Descriptor d = arch::decode_descriptor(bytes);
        if (!d.is_code_data() || !d.is_code())
            raise(arch::kExcGp, sel & 0xfffc, true);
        const bool conforming = (d.access & arch::kDescDc) != 0;
        bool bad_priv = d.dpl() != 0;
        if ((sel & 3) != 0)
            bad_priv = bad_priv || !conforming;
        if (bad_priv)
            raise(arch::kExcGp, sel & 0xfffc, true);
        if (!d.present())
            raise(arch::kExcNp, sel & 0xfffc, true);
        if (d.effective_limit() < insn.imm)
            raise(arch::kExcGp, 0, true);

        if (is_call) {
            push32(w, w.c.seg[arch::kCs].selector);
            push32(w, next_eip);
        }
        arch::SegmentReg cs = arch::make_segment_reg(
            static_cast<u16>(sel & 0xfffc), d);
        cs.access |= arch::kDescAccessed;
        w.c.seg[arch::kCs] = cs;
        ram_[(desc_addr + 5) & (arch::kPhysMemSize - 1)] =
            bytes[5] | arch::kDescAccessed;
        w.c.eip = insn.imm;
        return;
      }
      case Op::Iret: {
        const u32 esp = w.c.gpr[arch::kEsp];
        u32 new_eip, cs_word, new_fl;
        if (behavior_.iret_pop_inner_first) {
            new_eip = static_cast<u32>(read_mem(w, arch::kSs, esp, 4));
            cs_word = static_cast<u32>(
                read_mem(w, arch::kSs, esp + 4, 4));
            new_fl = static_cast<u32>(
                read_mem(w, arch::kSs, esp + 8, 4));
        } else {
            // Seeded QEMU bug (paper §6.2): stack items read from the
            // outermost to the innermost.
            new_fl = static_cast<u32>(
                read_mem(w, arch::kSs, esp + 8, 4));
            cs_word = static_cast<u32>(
                read_mem(w, arch::kSs, esp + 4, 4));
            new_eip = static_cast<u32>(read_mem(w, arch::kSs, esp, 4));
        }
        const u16 sel = static_cast<u16>(cs_word);
        if ((sel & 0xfffc) == 0)
            raise(arch::kExcGp, 0, true);
        if (sel & 0x4)
            raise(arch::kExcGp, sel & 0xfffc, true);
        if (sel & 0x3)
            raise(arch::kExcGp, sel & 0xfffc, true);
        const u32 index = sel >> 3;
        if (w.c.gdtr.limit < index * 8 + 7)
            raise(arch::kExcGp, sel & 0xfffc, true);
        const u32 desc_addr = w.c.gdtr.base + index * 8;
        u8 bytes[8];
        for (unsigned i = 0; i < 8; ++i)
            bytes[i] =
                ram_[(desc_addr + i) & (arch::kPhysMemSize - 1)];
        const arch::Descriptor d = arch::decode_descriptor(bytes);
        if (!d.is_code_data() || !d.is_code())
            raise(arch::kExcGp, sel & 0xfffc, true);
        if (!d.present())
            raise(arch::kExcNp, sel & 0xfffc, true);

        arch::SegmentReg cs = arch::make_segment_reg(sel, d);
        if (behavior_.set_descriptor_accessed) {
            cs.access |= arch::kDescAccessed;
            ram_[(desc_addr + 5) & (arch::kPhysMemSize - 1)] =
                bytes[5] | arch::kDescAccessed;
        }
        w.c.seg[arch::kCs] = cs;
        const u32 mask = 0x47fd5;
        w.c.eflags = (w.c.eflags & ~mask) | (new_fl & mask);
        clean_eflags();
        w.c.eip = new_eip;
        w.c.gpr[arch::kEsp] = esp + 12;
        return;
      }

      // ---------------------------------------------- far pointer loads
      case Op::Les: case Op::Lds: case Op::Lss: case Op::Lfs:
      case Op::Lgs: {
        unsigned target;
        switch (op) {
          case Op::Les: target = arch::kEs; break;
          case Op::Lds: target = arch::kDs; break;
          case Op::Lss: target = arch::kSs; break;
          case Op::Lfs: target = arch::kFs; break;
          default: target = arch::kGs; break;
        }
        const u32 ea = effective_address(w, insn);
        const unsigned seg = effective_segment(insn);
        u32 offset;
        u16 sel;
        if (behavior_.far_fetch_offset_first) {
            offset = static_cast<u32>(read_mem(w, seg, ea, 4));
            sel = static_cast<u16>(read_mem(w, seg, ea + 4, 2));
        } else {
            sel = static_cast<u16>(read_mem(w, seg, ea + 4, 2));
            offset = static_cast<u32>(read_mem(w, seg, ea, 4));
        }
        load_segment(w, target, sel);
        w.c.gpr[insn.reg] = offset;
        done();
        return;
      }

      // ---------------------------------------------------- flag ops
      case Op::Hlt:
        w.c.halted = 1;
        done();
        return;
      case Op::Clc:
        set_flag(arch::kFlagCf, false);
        done();
        return;
      case Op::Stc:
        set_flag(arch::kFlagCf, true);
        done();
        return;
      case Op::Cmc:
        set_flag(arch::kFlagCf, !(w.c.eflags & arch::kFlagCf));
        done();
        return;
      case Op::Cld:
        set_flag(arch::kFlagDf, false);
        done();
        return;
      case Op::Std:
        set_flag(arch::kFlagDf, true);
        done();
        return;
      case Op::Cli:
        set_flag(arch::kFlagIf, false);
        done();
        return;
      case Op::Sti:
        set_flag(arch::kFlagIf, true);
        done();
        return;

      // ---------------------------------------------------- group 3
      case Op::Grp3NotRm8: case Op::Grp3NotRm32: {
        const unsigned width = op == Op::Grp3NotRm8 ? 8 : 32;
        u32 phys = 0;
        u64 a;
        if (insn.mod == 3) {
            a = get_reg(w, insn.rm, width);
            set_reg(w, insn.rm, width, ~a);
        } else {
            phys = prepare_write(w, effective_segment(insn),
                                 effective_address(w, insn), width / 8);
            a = read_phys(phys, width / 8);
            write_phys(phys, width / 8, truncate(~a, width));
        }
        done();
        return;
      }
      case Op::Grp3NegRm8: case Op::Grp3NegRm32: {
        const unsigned width = op == Op::Grp3NegRm8 ? 8 : 32;
        u32 phys = 0;
        u64 a;
        if (insn.mod == 3) {
            a = get_reg(w, insn.rm, width);
        } else {
            phys = prepare_write(w, effective_segment(insn),
                                 effective_address(w, insn), width / 8);
            a = read_phys(phys, width / 8);
        }
        flags_sub(w, 0, a, 0, width);
        const u64 res = truncate(~a + 1, width);
        if (insn.mod == 3)
            set_reg(w, insn.rm, width, res);
        else
            write_phys(phys, width / 8, res);
        done();
        return;
      }
      case Op::Grp3MulRm8: case Op::Grp3MulRm32:
      case Op::Grp3ImulRm8: case Op::Grp3ImulRm32: {
        const unsigned width =
            (op == Op::Grp3MulRm8 || op == Op::Grp3ImulRm8) ? 8 : 32;
        const bool is_signed =
            op == Op::Grp3ImulRm8 || op == Op::Grp3ImulRm32;
        const u64 src = read_rm(w, insn, width);
        const u64 acc = get_reg(w, arch::kEax, width);
        u64 wide;
        bool overflow;
        if (is_signed) {
            const s64 p = sign_extend(acc, width) *
                          sign_extend(src, width);
            wide = static_cast<u64>(p);
            const u64 low = truncate(wide, width);
            overflow = sign_extend(low, width) != p;
        } else {
            wide = truncate(acc, width) * truncate(src, width);
            overflow = (wide >> width) != 0;
        }
        const u64 low = truncate(wide, width);
        const u64 high = truncate(wide >> width, width);
        if (width == 8) {
            set_reg(w, arch::kEax, 16, truncate(wide, 16));
        } else {
            w.c.gpr[arch::kEax] = static_cast<u32>(low);
            w.c.gpr[arch::kEdx] = static_cast<u32>(high);
        }
        set_flag(arch::kFlagCf, overflow);
        set_flag(arch::kFlagOf, overflow);
        if (behavior_.undef_flags == UndefFlagStyle::Hardware) {
            // SF/ZF/PF/AF are undefined; the hardware model computes
            // them from the low half. The Lo-Fi style leaves them.
            const u32 keep =
                w.c.eflags & (arch::kFlagCf | arch::kFlagOf);
            set_flags_szp(w, low, width, keep,
                          arch::kFlagCf | arch::kFlagOf |
                              arch::kFlagAf);
        }
        done();
        return;
      }
      case Op::Grp3DivRm8: case Op::Grp3DivRm32:
      case Op::Grp3IdivRm8: case Op::Grp3IdivRm32: {
        const unsigned width =
            (op == Op::Grp3DivRm8 || op == Op::Grp3IdivRm8) ? 8 : 32;
        const bool is_signed =
            op == Op::Grp3IdivRm8 || op == Op::Grp3IdivRm32;
        const u64 src = read_rm(w, insn, width);
        if (truncate(src, width) == 0)
            raise(arch::kExcDe, 0, false);
        u64 q, r;
        bool overflow;
        if (width == 8) {
            const u64 num = w.c.gpr[arch::kEax] & 0xffff;
            if (is_signed) {
                const s64 sn = sign_extend(num, 16);
                const s64 sd = sign_extend(src, 8);
                const s64 sq = sn / sd;
                const s64 sr = sn % sd;
                q = static_cast<u64>(sq);
                r = static_cast<u64>(sr);
                overflow = sq != sign_extend(truncate(q, 8), 8);
            } else {
                q = num / truncate(src, 8);
                r = num % truncate(src, 8);
                overflow = q > 0xff;
            }
            if (overflow)
                raise(arch::kExcDe, 0, false);
            set_reg(w, 0, 8, q); // AL.
            set_reg(w, 4, 8, r); // AH.
        } else {
            const u64 num =
                (static_cast<u64>(w.c.gpr[arch::kEdx]) << 32) |
                w.c.gpr[arch::kEax];
            if (is_signed) {
                const s64 sn = static_cast<s64>(num);
                const s64 sd = sign_extend(src, 32);
                if (sn == std::numeric_limits<s64>::min() && sd == -1)
                    raise(arch::kExcDe, 0, false);
                const s64 sq = sn / sd;
                const s64 sr = sn % sd;
                q = static_cast<u64>(sq);
                r = static_cast<u64>(sr);
                overflow = sq != sign_extend(truncate(q, 32), 32);
            } else {
                q = num / truncate(src, 32);
                r = num % truncate(src, 32);
                overflow = q > 0xffffffffull;
            }
            if (overflow)
                raise(arch::kExcDe, 0, false);
            w.c.gpr[arch::kEax] = static_cast<u32>(q);
            w.c.gpr[arch::kEdx] = static_cast<u32>(r);
        }
        if (behavior_.undef_flags == UndefFlagStyle::LoFi) {
            // Hardware leaves the status flags unchanged; the Lo-Fi
            // style zeroes them.
            w.c.eflags &= ~(arch::kFlagCf | arch::kFlagPf |
                            arch::kFlagAf | arch::kFlagZf |
                            arch::kFlagSf | arch::kFlagOf);
        }
        done();
        return;
      }

      // ------------------------------------------------------ system
      case Op::Sgdt: case Op::Sidt: {
        const bool gdt = op == Op::Sgdt;
        const u32 ea = effective_address(w, insn);
        const unsigned seg = effective_segment(insn);
        const arch::TableReg &t = gdt ? w.c.gdtr : w.c.idtr;
        write_mem(w, seg, ea, 2, t.limit);
        write_mem(w, seg, ea + 2, 4, t.base);
        done();
        return;
      }
      case Op::Lgdt: case Op::Lidt: {
        const bool gdt = op == Op::Lgdt;
        const u32 ea = effective_address(w, insn);
        const unsigned seg = effective_segment(insn);
        const u16 limit =
            static_cast<u16>(read_mem(w, seg, ea, 2));
        const u32 base =
            static_cast<u32>(read_mem(w, seg, ea + 2, 4));
        arch::TableReg &t = gdt ? w.c.gdtr : w.c.idtr;
        t.limit = limit;
        t.base = base;
        done();
        return;
      }
      case Op::Invlpg:
        done();
        return;
      case Op::Clts:
        w.c.cr0 &= ~arch::kCr0Ts;
        done();
        return;
      case Op::MovR32Cr: {
        u32 v = 0;
        switch (insn.reg) {
          case 0: v = w.c.cr0; break;
          case 2: v = w.c.cr2; break;
          case 3: v = w.c.cr3; break;
          case 4: v = w.c.cr4; break;
        }
        w.c.gpr[insn.rm] = v;
        done();
        return;
      }
      case Op::MovCrR32: {
        const u32 v = w.c.gpr[insn.rm];
        switch (insn.reg) {
          case 0:
            if ((v & arch::kCr0Pg) && !(v & arch::kCr0Pe))
                raise(arch::kExcGp, 0, true);
            w.c.cr0 = v;
            break;
          case 2: w.c.cr2 = v; break;
          case 3: w.c.cr3 = v; break;
          case 4: w.c.cr4 = v; break;
        }
        done();
        return;
      }
      case Op::Rdmsr: {
        const u32 idx = w.c.gpr[arch::kEcx];
        u32 v = 0;
        bool known = true;
        switch (idx) {
          case 0x174: v = w.c.msr.sysenter_cs; break;
          case 0x175: v = w.c.msr.sysenter_esp; break;
          case 0x176: v = w.c.msr.sysenter_eip; break;
          default: known = false; break;
        }
        if (!known) {
            if (behavior_.rdmsr_gp_on_invalid)
                raise(arch::kExcGp, 0, true);
            // Seeded QEMU bug (paper §6.2): unknown MSRs read as 0.
            v = 0;
        }
        w.c.gpr[arch::kEax] = v;
        w.c.gpr[arch::kEdx] = 0;
        done();
        return;
      }
      case Op::Wrmsr: {
        const u32 idx = w.c.gpr[arch::kEcx];
        // Seeded defect: the variant emulator's MSR store path keeps
        // only the low 16 bits of EAX.
        const u32 v = behavior_.wrmsr_truncate_16
            ? (w.c.gpr[arch::kEax] & 0xffffu)
            : w.c.gpr[arch::kEax];
        switch (idx) {
          case 0x174: w.c.msr.sysenter_cs = v; break;
          case 0x175: w.c.msr.sysenter_esp = v; break;
          case 0x176: w.c.msr.sysenter_eip = v; break;
          default:
            if (behavior_.rdmsr_gp_on_invalid)
                raise(arch::kExcGp, 0, true);
            break; // Silently ignored by the Lo-Fi style.
        }
        done();
        return;
      }
      case Op::Rdtsc:
        w.c.gpr[arch::kEax] = 0;
        w.c.gpr[arch::kEdx] = 0;
        done();
        return;
      case Op::Cpuid: {
        const u32 leaf = w.c.gpr[arch::kEax];
        if (leaf == 0) {
            w.c.gpr[arch::kEax] = 1;
            w.c.gpr[arch::kEbx] = 0x656b6f50;
            w.c.gpr[arch::kEdx] = 0x76554d45;
            w.c.gpr[arch::kEcx] = 0x36387856;
        } else if (leaf == 1) {
            w.c.gpr[arch::kEax] = 0x600;
            w.c.gpr[arch::kEbx] = 0;
            w.c.gpr[arch::kEcx] = 0;
            w.c.gpr[arch::kEdx] = 0;
        } else {
            w.c.gpr[arch::kEax] = 0;
            w.c.gpr[arch::kEbx] = 0;
            w.c.gpr[arch::kEcx] = 0;
            w.c.gpr[arch::kEdx] = 0;
        }
        done();
        return;
      }

      // ------------------------------------------------- bit operations
      case Op::BtRm32R32: case Op::BtsRm32R32: case Op::BtrRm32R32:
      case Op::BtcRm32R32: case Op::Grp8BtImm8: case Op::Grp8BtsImm8:
      case Op::Grp8BtrImm8: case Op::Grp8BtcImm8: {
        const bool from_reg =
            op == Op::BtRm32R32 || op == Op::BtsRm32R32 ||
            op == Op::BtrRm32R32 || op == Op::BtcRm32R32;
        enum class Mode { Test, Set, Reset, Complement } mode;
        switch (op) {
          case Op::BtRm32R32: case Op::Grp8BtImm8:
            mode = Mode::Test; break;
          case Op::BtsRm32R32: case Op::Grp8BtsImm8:
            mode = Mode::Set; break;
          case Op::BtrRm32R32: case Op::Grp8BtrImm8:
            mode = Mode::Reset; break;
          default: mode = Mode::Complement; break;
        }
        const u32 bitoff =
            from_reg ? w.c.gpr[insn.reg] : (insn.imm & 0xff);
        const u32 idx = bitoff & 31;
        const u32 mask = 1u << idx;
        u64 val;
        u32 phys = 0;
        bool mem = insn.mod != 3;
        if (!mem) {
            val = w.c.gpr[insn.rm];
        } else {
            u32 ea = effective_address(w, insn);
            if (from_reg) {
                ea += static_cast<u32>(
                          static_cast<s32>(bitoff) >> 5) *
                      4;
            }
            const unsigned seg = effective_segment(insn);
            if (mode == Mode::Test) {
                val = read_mem(w, seg, ea, 4);
            } else {
                phys = prepare_write(w, seg, ea, 4);
                val = read_phys(phys, 4);
            }
        }
        set_flag(arch::kFlagCf, (val & mask) != 0);
        if (mode != Mode::Test) {
            u64 out = val;
            switch (mode) {
              case Mode::Set: out = val | mask; break;
              case Mode::Reset: out = val & ~u64{mask}; break;
              default: out = val ^ mask; break;
            }
            if (!mem)
                w.c.gpr[insn.rm] = static_cast<u32>(out);
            else
                write_phys(phys, 4, out);
        }
        done();
        return;
      }
      case Op::ShldImm8: case Op::ShldCl:
      case Op::ShrdImm8: case Op::ShrdCl: {
        const bool left = op == Op::ShldImm8 || op == Op::ShldCl;
        const unsigned count =
            (op == Op::ShldImm8 || op == Op::ShrdImm8)
                ? (insn.imm & 0x1f)
                : (w.c.gpr[arch::kEcx] & 0x1f);
        u32 phys = 0;
        u64 dst;
        if (insn.mod == 3) {
            dst = w.c.gpr[insn.rm];
        } else {
            phys = prepare_write(w, effective_segment(insn),
                                 effective_address(w, insn), 4);
            dst = read_phys(phys, 4);
        }
        if (count == 0) {
            done();
            return;
        }
        const u64 src = w.c.gpr[insn.reg];
        u64 res;
        bool cf;
        if (left) {
            const u64 wide = (dst << 32) | src;
            res = truncate(wide << count >> 32, 32);
            cf = get_bit(dst, 32 - count);
        } else {
            const u64 wide = (src << 32) | dst;
            res = truncate(wide >> count, 32);
            cf = get_bit(dst, count - 1);
        }
        if (insn.mod == 3)
            w.c.gpr[insn.rm] = static_cast<u32>(res);
        else
            write_phys(phys, 4, res);
        const bool of = get_bit(dst, 31) != get_bit(res, 31);
        set_flag(arch::kFlagCf, cf);
        set_flag(arch::kFlagOf, of);
        const u32 keep = w.c.eflags & (arch::kFlagCf | arch::kFlagOf);
        set_flags_szp(w, res, 32, keep,
                      arch::kFlagCf | arch::kFlagOf | arch::kFlagAf);
        done();
        return;
      }
      case Op::Bsf: case Op::Bsr: {
        const u32 src = static_cast<u32>(read_rm(w, insn, 32));
        if (src == 0) {
            set_flag(arch::kFlagZf, true);
            if (behavior_.undef_flags == UndefFlagStyle::LoFi) {
                // Hardware leaves the destination unchanged; the
                // Lo-Fi style writes zero.
                w.c.gpr[insn.reg] = 0;
            }
        } else {
            set_flag(arch::kFlagZf, false);
            w.c.gpr[insn.reg] = op == Op::Bsf
                ? static_cast<u32>(__builtin_ctz(src))
                : static_cast<u32>(31 - __builtin_clz(src));
        }
        done();
        return;
      }
      case Op::BswapR32: {
        const u32 v = w.c.gpr[insn.desc->aux];
        w.c.gpr[insn.desc->aux] = __builtin_bswap32(v);
        done();
        return;
      }

      // ------------------------------------------------------- imul
      case Op::ImulR32Rm32: case Op::ImulR32Rm32Imm32:
      case Op::ImulR32Rm32Imm8: {
        s64 a, b;
        if (op == Op::ImulR32Rm32) {
            a = sign_extend(w.c.gpr[insn.reg], 32);
            b = sign_extend(read_rm(w, insn, 32), 32);
        } else {
            a = sign_extend(read_rm(w, insn, 32), 32);
            b = op == Op::ImulR32Rm32Imm32
                ? sign_extend(insn.imm, 32)
                : sign_extend(insn.imm & 0xff, 8);
        }
        const s64 p = a * b;
        const u32 low = static_cast<u32>(p);
        w.c.gpr[insn.reg] = low;
        const bool overflow = p != sign_extend(low, 32);
        set_flag(arch::kFlagCf, overflow);
        set_flag(arch::kFlagOf, overflow);
        const u32 keep = w.c.eflags & (arch::kFlagCf | arch::kFlagOf);
        set_flags_szp(w, low, 32, keep,
                      arch::kFlagCf | arch::kFlagOf | arch::kFlagAf);
        done();
        return;
      }

      // --------------------------------------------- cmpxchg / xadd
      case Op::CmpxchgRm8R8: case Op::CmpxchgRm32R32: {
        const unsigned width = op == Op::CmpxchgRm8R8 ? 8 : 32;
        const u64 acc = get_reg(w, arch::kEax, width);
        const u64 src = get_reg(w, insn.reg, width);
        if (insn.mod == 3) {
            const u64 dst = get_reg(w, insn.rm, width);
            flags_sub(w, acc, dst, 0, width);
            if (acc == dst)
                set_reg(w, insn.rm, width, src);
            else
                set_reg(w, arch::kEax, width, dst);
            done();
            return;
        }
        if (behavior_.cmpxchg_checks_write_first) {
            // Hardware always writes the destination (old value on
            // mismatch), so writability is checked up front.
            const u32 phys =
                prepare_write(w, effective_segment(insn),
                              effective_address(w, insn), width / 8);
            const u64 dst = read_phys(phys, width / 8);
            flags_sub(w, acc, dst, 0, width);
            if (acc == dst) {
                write_phys(phys, width / 8, src);
            } else {
                write_phys(phys, width / 8, dst);
                set_reg(w, arch::kEax, width, dst);
            }
        } else {
            // Seeded QEMU bug (paper §6.2): the destination is only
            // read first; on mismatch the accumulator is updated and
            // no write (hence no write-permission fault) happens.
            const u64 dst = read_rm(w, insn, width);
            flags_sub(w, acc, dst, 0, width);
            if (acc == dst) {
                write_mem(w, effective_segment(insn),
                          effective_address(w, insn), width / 8, src);
            } else {
                set_reg(w, arch::kEax, width, dst);
            }
        }
        done();
        return;
      }
      case Op::XaddRm8R8: case Op::XaddRm32R32: {
        const unsigned width = op == Op::XaddRm8R8 ? 8 : 32;
        u32 phys = 0;
        u64 dst;
        if (insn.mod == 3) {
            dst = get_reg(w, insn.rm, width);
        } else {
            phys = prepare_write(w, effective_segment(insn),
                                 effective_address(w, insn), width / 8);
            dst = read_phys(phys, width / 8);
        }
        const u64 src = get_reg(w, insn.reg, width);
        flags_add(w, dst, src, 0, width);
        const u64 res = truncate(dst + src, width);
        if (insn.mod == 3)
            set_reg(w, insn.rm, width, res);
        else
            write_phys(phys, width / 8, res);
        set_reg(w, insn.reg, width, dst);
        done();
        return;
      }

      // ------------------------------------------------ movzx/movsx
      case Op::MovzxR32Rm8: case Op::MovzxR32Rm16:
      case Op::MovsxR32Rm8: case Op::MovsxR32Rm16: {
        const unsigned sw =
            (op == Op::MovzxR32Rm8 || op == Op::MovsxR32Rm8) ? 8 : 16;
        const bool sign =
            op == Op::MovsxR32Rm8 || op == Op::MovsxR32Rm16;
        const u64 src = read_rm(w, insn, sw);
        w.c.gpr[insn.reg] = sign
            ? static_cast<u32>(sign_extend(src, sw))
            : static_cast<u32>(truncate(src, sw));
        done();
        return;
      }
    }
    panic("direct backend: unhandled op");
}

} // namespace pokeemu::backend
