#include "backend/direct_cpu.h"

#include "arch/descriptors.h"
#include "arch/paging.h"
#include "timing/cost_model.h"

namespace pokeemu::backend {

using arch::AluKind;
using arch::CpuState;
using arch::DecodedInsn;
using arch::Op;
using arch::ShiftKind;

Behavior
hardware_behavior()
{
    return Behavior{};
}

Behavior
lofi_behavior()
{
    Behavior b;
    b.enforce_segment_checks = false;
    b.leave_atomic = false;
    b.cmpxchg_checks_write_first = false;
    b.iret_pop_inner_first = false;
    b.far_fetch_offset_first = true; // Same as hardware (Bochs is the
                                     // odd one out for far loads).
    b.rdmsr_gp_on_invalid = false;
    b.set_descriptor_accessed = false;
    b.accept_alias_encodings = false;
    b.undef_flags = UndefFlagStyle::LoFi;
    return b;
}

namespace {

[[noreturn]] void
raise(u8 vector, u32 error, bool has_error)
{
    throw GuestFault{vector, error, has_error, false, 0};
}

[[noreturn]] void
raise_pf(u32 error, u32 cr2)
{
    throw GuestFault{arch::kExcPf, error, true, true, cr2};
}

bool
parity_even(u64 res)
{
    return (__builtin_popcountll(res & 0xff) & 1) == 0;
}

} // namespace

DirectCpu::DirectCpu(Behavior behavior)
    : behavior_(behavior), ram_(arch::kPhysMemSize, 0)
{
}

void
DirectCpu::reset(const CpuState &cpu, const std::vector<u8> &ram)
{
    cpu_ = cpu;
    assert(ram.size() == arch::kPhysMemSize);
    ram_ = ram;
    tcache_.clear();
    insn_count_ = 0;
    cache_hits_ = 0;
    cache_misses_ = 0;
    cycles_ = 0;
}

void
DirectCpu::charge(int table_index, bool mem_form, bool faulted)
{
    if (!behavior_.cycle_accounting)
        return;
    const timing::UnitCost &cost =
        timing::cost_model().cost_for(table_index, mem_form);
    u64 total = cost.base;
    if (!behavior_.mem_access_cost_dropped)
        total += timing::kMemAccessCost * cost.mem_accesses;
    if (faulted)
        total += cost.fault_extra;
    if (behavior_.half_cycle_accounting)
        total >>= 1;
    cycles_ += total;
}

void
DirectCpu::charge_fault_path()
{
    if (!behavior_.cycle_accounting)
        return;
    u64 total = timing::kFaultPathCycles;
    if (behavior_.half_cycle_accounting)
        total >>= 1;
    cycles_ += total;
}

// ---------------------------------------------------------------------
// Memory.
// ---------------------------------------------------------------------

u32
DirectCpu::seg_check(const Work &w, unsigned seg, u32 offset,
                     unsigned size, bool write) const
{
    const arch::SegmentReg &s = w.c.seg[seg];
    if (!behavior_.enforce_segment_checks)
        return s.base + offset;

    const u8 vector = seg == arch::kSs ? arch::kExcSs : arch::kExcGp;
    if ((s.selector & 0xfffc) == 0)
        raise(vector, 0, true);
    if (!(s.access & arch::kDescPresent))
        raise(vector, 0, true);
    const bool is_code = (s.access & arch::kDescCode) != 0;
    const bool rw = (s.access & arch::kDescRw) != 0;
    if (write) {
        if (is_code || !rw)
            raise(vector, 0, true);
    } else {
        if (is_code && !rw)
            raise(vector, 0, true);
    }
    const u32 last = offset + (size - 1);
    const bool wraps = last < offset;
    const bool expand_down =
        !is_code && (s.access & arch::kDescDc) != 0;
    bool bad;
    if (expand_down) {
        const u32 upper = s.db ? 0xffffffffu : 0xffffu;
        // Valid expand-down offsets are (limit, upper]; the seeded
        // off-by-one defect admits offset == limit as well.
        const bool below = behavior_.seg_limit_off_by_one
            ? offset < s.limit
            : offset <= s.limit;
        bad = wraps || below || last > upper;
    } else {
        // Valid offsets end at limit; the seeded off-by-one defect
        // faults the last valid byte (last >= limit, overflow-safe).
        const bool beyond = behavior_.seg_limit_off_by_one
            ? last >= s.limit
            : last > s.limit;
        bad = wraps || beyond;
    }
    if (bad)
        raise(vector, 0, true);
    return s.base + offset;
}

u32
DirectCpu::translate(const Work &w, u32 linear, bool write)
{
    if (!(w.c.cr0 & arch::kCr0Pg))
        return linear;
    const bool wp = (w.c.cr0 & arch::kCr0Wp) != 0;
    auto tr = arch::translate_linear(ram_.data(), w.c.cr3, linear,
                                     {write, false}, wp,
                                     behavior_.set_pte_accessed_dirty);
    if (!tr.ok)
        raise_pf(tr.pf_error | (write ? arch::kPfErrWrite : 0),
                 linear);
    return tr.phys;
}

u64
DirectCpu::read_phys(u32 phys, unsigned size) const
{
    u64 v = 0;
    for (unsigned i = 0; i < size; ++i)
        v |= static_cast<u64>(
                 ram_[(phys + i) & (arch::kPhysMemSize - 1)])
             << (8 * i);
    return v;
}

void
DirectCpu::write_phys(u32 phys, unsigned size, u64 value)
{
    for (unsigned i = 0; i < size; ++i)
        ram_[(phys + i) & (arch::kPhysMemSize - 1)] =
            static_cast<u8>(value >> (8 * i));
}

u64
DirectCpu::read_mem(Work &w, unsigned seg, u32 offset, unsigned size)
{
    const u32 lin = seg_check(w, seg, offset, size, false);
    const u32 phys = translate(w, lin, false);
    return read_phys(phys, size);
}

u32
DirectCpu::prepare_write(Work &w, unsigned seg, u32 offset,
                         unsigned size)
{
    const u32 lin = seg_check(w, seg, offset, size, true);
    return translate(w, lin, true);
}

void
DirectCpu::write_mem(Work &w, unsigned seg, u32 offset, unsigned size,
                     u64 value)
{
    write_phys(prepare_write(w, seg, offset, size), size, value);
}

// ---------------------------------------------------------------------
// Registers and flags.
// ---------------------------------------------------------------------

u64
DirectCpu::get_reg(const Work &w, unsigned r, unsigned width) const
{
    switch (width) {
      case 32: return w.c.gpr[r];
      case 16: return w.c.gpr[r] & 0xffff;
      case 8:
        return r < 4 ? (w.c.gpr[r] & 0xff)
                     : ((w.c.gpr[r - 4] >> 8) & 0xff);
    }
    panic("bad register width");
}

void
DirectCpu::set_reg(Work &w, unsigned r, unsigned width, u64 value)
{
    switch (width) {
      case 32:
        w.c.gpr[r] = static_cast<u32>(value);
        return;
      case 16:
        w.c.gpr[r] = (w.c.gpr[r] & 0xffff0000u) |
                     static_cast<u32>(value & 0xffff);
        return;
      case 8:
        if (r < 4) {
            w.c.gpr[r] =
                (w.c.gpr[r] & 0xffffff00u) |
                static_cast<u32>(value & 0xff);
        } else {
            w.c.gpr[r - 4] =
                (w.c.gpr[r - 4] & 0xffff00ffu) |
                (static_cast<u32>(value & 0xff) << 8);
        }
        return;
    }
    panic("bad register width");
}

void
DirectCpu::set_flags_szp(Work &w, u64 res, unsigned width,
                         u32 extra_set, u32 extra_clear)
{
    u32 fl = w.c.eflags;
    fl &= ~(arch::kFlagSf | arch::kFlagZf | arch::kFlagPf | extra_clear);
    const u64 m = truncate(res, width);
    if (get_bit(m, width - 1))
        fl |= arch::kFlagSf;
    if (m == 0)
        fl |= arch::kFlagZf;
    if (parity_even(m))
        fl |= arch::kFlagPf;
    fl |= extra_set;
    fl |= arch::kFlagFixed1;
    w.c.eflags = fl;
}

void
DirectCpu::flags_add(Work &w, u64 a, u64 b, u64 cin, unsigned width)
{
    const u64 am = truncate(a, width), bm = truncate(b, width);
    // Seeded defect: byte-op flags computed by the 32-bit helper, so
    // CF/OF/SF/ZF come from the wrong bit positions. Operands are
    // still the byte values the emulator extracted.
    const unsigned fw =
        behavior_.alu8_flags_wide && width == 8 ? 32 : width;
    const u64 wide = am + bm + cin;
    const u64 res = truncate(wide, fw);
    u32 set = 0;
    if (get_bit(wide, fw))
        set |= arch::kFlagCf;
    const bool sa = get_bit(am, fw - 1), sb = get_bit(bm, fw - 1),
               sr = get_bit(res, fw - 1);
    if (sa == sb && sa != sr)
        set |= arch::kFlagOf;
    if ((am ^ bm ^ res) & 0x10)
        set |= arch::kFlagAf;
    set_flags_szp(w, res, fw, set,
                  arch::kFlagCf | arch::kFlagOf | arch::kFlagAf);
}

void
DirectCpu::flags_sub(Work &w, u64 a, u64 b, u64 bin, unsigned width)
{
    const u64 am = truncate(a, width), bm = truncate(b, width);
    const unsigned fw =
        behavior_.alu8_flags_wide && width == 8 ? 32 : width;
    const u64 wide = am - bm - bin;
    const u64 res = truncate(wide, fw);
    u32 set = 0;
    if (get_bit(wide, fw))
        set |= arch::kFlagCf;
    const bool sa = get_bit(am, fw - 1), sb = get_bit(bm, fw - 1),
               sr = get_bit(res, fw - 1);
    if (sa != sb && sa != sr)
        set |= arch::kFlagOf;
    if ((am ^ bm ^ res) & 0x10)
        set |= arch::kFlagAf;
    set_flags_szp(w, res, fw, set,
                  arch::kFlagCf | arch::kFlagOf | arch::kFlagAf);
}

void
DirectCpu::flags_logic(Work &w, u64 res, unsigned width)
{
    const unsigned fw =
        behavior_.alu8_flags_wide && width == 8 ? 32 : width;
    set_flags_szp(w, truncate(res, width), fw, 0,
                  arch::kFlagCf | arch::kFlagOf | arch::kFlagAf);
}

bool
DirectCpu::cond_cc(const Work &w, unsigned cc) const
{
    const u32 fl = w.c.eflags;
    const bool cf = fl & arch::kFlagCf;
    const bool pf = fl & arch::kFlagPf;
    const bool zf = fl & arch::kFlagZf;
    const bool sf = fl & arch::kFlagSf;
    const bool of = fl & arch::kFlagOf;
    bool base = false;
    switch (cc >> 1) {
      case 0: base = of; break;
      case 1: base = cf; break;
      case 2: base = zf; break;
      case 3: base = cf || zf; break;
      case 4: base = sf; break;
      case 5: base = pf; break;
      case 6: base = sf != of; break;
      case 7: base = zf || (sf != of); break;
    }
    return (cc & 1) ? !base : base;
}

// ---------------------------------------------------------------------
// Operands.
// ---------------------------------------------------------------------

unsigned
DirectCpu::effective_segment(const DecodedInsn &insn) const
{
    if (insn.seg_override >= 0)
        return static_cast<unsigned>(insn.seg_override);
    if (insn.has_sib) {
        if (insn.base == arch::kEbp && insn.mod == 0)
            return arch::kDs;
        if (insn.base == arch::kEsp || insn.base == arch::kEbp)
            return arch::kSs;
        return arch::kDs;
    }
    if (insn.mod != 0 && insn.rm == arch::kEbp)
        return arch::kSs;
    return arch::kDs;
}

u32
DirectCpu::effective_address(const Work &w,
                             const DecodedInsn &insn) const
{
    u32 ea = insn.disp;
    if (insn.has_sib) {
        if (!(insn.base == 5 && insn.mod == 0))
            ea += w.c.gpr[insn.base];
        if (insn.index != 4)
            ea += w.c.gpr[insn.index] << insn.scale;
    } else if (!(insn.mod == 0 && insn.rm == 5)) {
        ea += w.c.gpr[insn.rm];
    }
    return ea;
}

u64
DirectCpu::read_rm(Work &w, const DecodedInsn &insn, unsigned width)
{
    if (insn.mod == 3)
        return get_reg(w, insn.rm, width);
    return read_mem(w, effective_segment(insn),
                    effective_address(w, insn), width / 8);
}

void
DirectCpu::write_rm(Work &w, const DecodedInsn &insn, unsigned width,
                    u64 value)
{
    if (insn.mod == 3) {
        set_reg(w, insn.rm, width, value);
        return;
    }
    write_mem(w, effective_segment(insn), effective_address(w, insn),
              width / 8, value);
}

void
DirectCpu::push32(Work &w, u32 value)
{
    const u32 new_esp = w.c.gpr[arch::kEsp] - 4;
    write_mem(w, arch::kSs, new_esp, 4, value);
    w.c.gpr[arch::kEsp] = new_esp;
}

u32
DirectCpu::pop32(Work &w)
{
    const u32 v = static_cast<u32>(
        read_mem(w, arch::kSs, w.c.gpr[arch::kEsp], 4));
    w.c.gpr[arch::kEsp] += 4;
    return v;
}

// ---------------------------------------------------------------------
// Segment loading.
// ---------------------------------------------------------------------

void
DirectCpu::load_segment(Work &w, unsigned seg, u16 selector)
{
    const bool is_null = (selector & 0xfffc) == 0;
    if (seg == arch::kSs && is_null)
        raise(arch::kExcGp, 0, true);
    if (is_null) {
        w.c.seg[seg] = arch::SegmentReg{};
        w.c.seg[seg].selector = selector;
        return;
    }
    if (selector & 0x4) // TI=1: no LDT in the subset.
        raise(arch::kExcGp, selector & 0xfffc, true);
    const u32 index = selector >> 3;
    if (w.c.gdtr.limit < index * 8 + 7)
        raise(arch::kExcGp, selector & 0xfffc, true);

    // The GDT base is a linear address; the subset requires it to be
    // identity-mapped (the baseline guarantees this), matching the
    // Hi-Fi emulator's physical read.
    const u32 desc_addr = w.c.gdtr.base + index * 8;
    u8 bytes[8];
    for (unsigned i = 0; i < 8; ++i)
        bytes[i] = ram_[(desc_addr + i) & (arch::kPhysMemSize - 1)];
    const arch::Descriptor d = arch::decode_descriptor(bytes);

    bool bad_type = !d.is_code_data();
    if (seg == arch::kSs)
        bad_type = bad_type || d.is_code() || !d.writable();
    else
        bad_type = bad_type || (d.is_code() && !d.writable());
    if (bad_type)
        raise(arch::kExcGp, selector & 0xfffc, true);
    if (!d.present()) {
        raise(seg == arch::kSs ? arch::kExcSs : arch::kExcNp,
              selector & 0xfffc, true);
    }

    arch::SegmentReg out = arch::make_segment_reg(selector, d);
    if (behavior_.set_descriptor_accessed) {
        out.access |= arch::kDescAccessed;
        ram_[(desc_addr + 5) & (arch::kPhysMemSize - 1)] =
            bytes[5] | arch::kDescAccessed;
    }
    w.c.seg[seg] = out;
}

// ---------------------------------------------------------------------
// Step: fetch, decode (with translation cache), execute.
// ---------------------------------------------------------------------

bool
DirectCpu::step()
{
    if (cpu_.halted)
        return false;

    // Cost key of the instruction whose semantics are executing, for
    // fault-path charging from the handler below (the DecodedInsn
    // itself dies with the try scope). row < 0 = faulted before its
    // semantics ran (fetch/decode/alias): flat fault-path charge,
    // mirroring HiFiEmulator's pre-semantics sites.
    int charge_row = -1;
    bool charge_memform = false;
    Work w{cpu_};
    try {
        // Fetch up to 15 bytes through CS + MMU.
        u8 buf[arch::kMaxInsnLength] = {};
        unsigned avail = 0;
        GuestFault pending{};
        bool have_pending = false;
        const arch::SegmentReg &cs = w.c.seg[arch::kCs];
        for (unsigned i = 0; i < arch::kMaxInsnLength; ++i) {
            const u32 off = w.c.eip + i;
            if (behavior_.enforce_segment_checks && off > cs.limit) {
                pending = {arch::kExcGp, 0, true, false, 0};
                have_pending = true;
                break;
            }
            const u32 lin = cs.base + off;
            u32 phys = lin;
            if (w.c.cr0 & arch::kCr0Pg) {
                auto tr = arch::translate_linear(
                    ram_.data(), w.c.cr3, lin, {false, false},
                    (w.c.cr0 & arch::kCr0Wp) != 0,
                    behavior_.set_pte_accessed_dirty);
                if (!tr.ok) {
                    pending = {arch::kExcPf, tr.pf_error, true, true,
                               lin};
                    have_pending = true;
                    break;
                }
                phys = tr.phys;
            }
            buf[i] = ram_[phys & (arch::kPhysMemSize - 1)];
            ++avail;
        }
        if (avail == 0)
            throw pending;

        // Decode with the translation cache (the "JIT" model): keyed
        // by the physical address of the first byte, revalidated
        // against the fetched bytes.
        const u32 key = w.c.seg[arch::kCs].base + w.c.eip;
        DecodedInsn insn;
        auto it = tcache_.find(key);
        bool cached = false;
        if (it != tcache_.end() &&
            it->second.bytes.size() <= avail &&
            std::equal(it->second.bytes.begin(),
                       it->second.bytes.end(), buf)) {
            insn = it->second.insn;
            ++cache_hits_;
            cached = true;
        }
        if (!cached) {
            ++cache_misses_;
            const arch::DecodeStatus ds =
                arch::decode(buf, avail, insn);
            if (ds == arch::DecodeStatus::TooLong) {
                if (have_pending && avail < arch::kMaxInsnLength)
                    throw pending;
                raise(arch::kExcGp, 0, true);
            }
            if (ds == arch::DecodeStatus::Invalid)
                raise(arch::kExcUd, 0, false);
            tcache_[key] = {std::vector<u8>(insn.bytes,
                                            insn.bytes + insn.length),
                            insn};
        }
        if (insn.length > avail && have_pending)
            throw pending;
        if (!behavior_.accept_alias_encodings && insn.desc->is_alias)
            raise(arch::kExcUd, 0, false);

        charge_row = insn.table_index;
        charge_memform = insn.is_memory_operand();
        execute(w, insn);
        cpu_ = w.c;
        ++insn_count_;
        charge(charge_row, charge_memform, false);
        return true;
    } catch (const GuestFault &f) {
        // Commit the working state as mutated so far (string progress
        // and the seeded non-atomicity bugs rely on this), then record
        // the fault and halt (abstract halting handler, paper §4.1).
        w.c.exception.vector = f.vector;
        w.c.exception.error_code = f.error_code;
        w.c.exception.has_error_code = f.has_error_code;
        if (f.set_cr2)
            w.c.cr2 = f.cr2;
        w.c.halted = 1;
        cpu_ = w.c;
        if (charge_row >= 0)
            charge(charge_row, charge_memform, true);
        else
            charge_fault_path();
        return false;
    }
}

StopReason
DirectCpu::run(u64 max_insns)
{
    for (u64 i = 0; i < max_insns; ++i) {
        if (!step()) {
            return cpu_.exception.present() ? StopReason::Exception
                                            : StopReason::Halted;
        }
    }
    return StopReason::InsnLimit;
}

} // namespace pokeemu::backend
