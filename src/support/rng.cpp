#include "support/rng.h"

namespace pokeemu {

namespace {

u64
splitmix64(u64 &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    u64 z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

u64
rotl(u64 x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

void
Rng::reseed(u64 seed)
{
    u64 x = seed;
    for (auto &word : state_)
        word = splitmix64(x);
}

u64
Rng::next()
{
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

u64
Rng::below(u64 bound)
{
    assert(bound != 0);
    // Rejection sampling to avoid modulo bias.
    const u64 threshold = (~bound + 1) % bound;
    for (;;) {
        const u64 value = next();
        if (value >= threshold)
            return value % bound;
    }
}

} // namespace pokeemu
