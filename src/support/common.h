/**
 * @file
 * Common integer typedefs and small bit-manipulation helpers used across
 * the PokeEMU codebase.
 */
#ifndef POKEEMU_SUPPORT_COMMON_H
#define POKEEMU_SUPPORT_COMMON_H

#include <cassert>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace pokeemu {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using s8 = std::int8_t;
using s16 = std::int16_t;
using s32 = std::int32_t;
using s64 = std::int64_t;

/** Mask covering the low @p width bits (width in [1, 64]). */
constexpr u64
mask_bits(unsigned width)
{
    assert(width >= 1 && width <= 64);
    return width == 64 ? ~u64{0} : ((u64{1} << width) - 1);
}

/** Truncate @p value to @p width bits. */
constexpr u64
truncate(u64 value, unsigned width)
{
    return value & mask_bits(width);
}

/** Sign-extend the low @p width bits of @p value to 64 bits. */
constexpr s64
sign_extend(u64 value, unsigned width)
{
    assert(width >= 1 && width <= 64);
    if (width == 64)
        return static_cast<s64>(value);
    const u64 sign = u64{1} << (width - 1);
    const u64 v = value & mask_bits(width);
    return static_cast<s64>((v ^ sign) - sign);
}

/** Extract bit @p pos of @p value as 0 or 1. */
constexpr u64
get_bit(u64 value, unsigned pos)
{
    return (value >> pos) & 1;
}

/** Return @p value with bit @p pos set to @p bit. */
constexpr u64
set_bit(u64 value, unsigned pos, bool bit)
{
    const u64 m = u64{1} << pos;
    return bit ? (value | m) : (value & ~m);
}

/** Population count of the low @p width bits. */
constexpr unsigned
popcount_bits(u64 value, unsigned width)
{
    return static_cast<unsigned>(__builtin_popcountll(truncate(value, width)));
}

/**
 * Internal-invariant failure (the analog of gem5's panic()): throw so
 * tests can assert on misuse without killing the process.
 */
[[noreturn]] inline void
panic(const std::string &message)
{
    throw std::logic_error("pokeemu panic: " + message);
}

} // namespace pokeemu

#endif // POKEEMU_SUPPORT_COMMON_H
