/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**).
 *
 * Exploration in the paper makes random choices (which unexplored subtree
 * of the decision tree to enter, which concrete index to pick for a large
 * table). For reproducible experiments every random choice in PokeEMU
 * flows through a seeded Rng instance.
 */
#ifndef POKEEMU_SUPPORT_RNG_H
#define POKEEMU_SUPPORT_RNG_H

#include "support/common.h"

namespace pokeemu {

/** Seedable xoshiro256** generator with convenience range helpers. */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    /** Re-initialize the state from a single 64-bit seed (splitmix64). */
    void reseed(u64 seed);

    /** Next raw 64-bit value. */
    u64 next();

    /** Uniform value in [0, bound); bound must be nonzero. */
    u64 below(u64 bound);

    /** Uniform boolean. */
    bool flip() { return (next() & 1) != 0; }

  private:
    u64 state_[4];
};

} // namespace pokeemu

#endif // POKEEMU_SUPPORT_RNG_H
