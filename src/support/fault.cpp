#include "support/fault.h"

#include <sstream>

namespace pokeemu::support {

const char *
stage_name(Stage stage)
{
    switch (stage) {
      case Stage::InsnExploration: return "insn-exploration";
      case Stage::StateExploration: return "state-exploration";
      case Stage::Generation: return "generation";
      case Stage::Execution: return "execution";
      case Stage::Comparison: return "comparison";
      case Stage::Validation: return "validation";
      case Stage::Backend: return "backend";
    }
    return "?";
}

const char *
fault_class_name(FaultClass cls)
{
    switch (cls) {
      case FaultClass::Internal: return "internal";
      case FaultClass::Decode: return "decode";
      case FaultClass::SolverTimeout: return "solver-timeout";
      case FaultClass::BudgetExhausted: return "budget-exhausted";
      case FaultClass::Execution: return "execution";
      case FaultClass::Injected: return "injected";
      case FaultClass::Miscompile: return "miscompile";
      case FaultClass::BackendCrash: return "backend-crash";
      case FaultClass::BackendHang: return "backend-hang";
      case FaultClass::SnapshotCorrupt: return "snapshot-corrupt";
      case FaultClass::CodegenMismatch: return "codegen-mismatch";
    }
    return "?";
}

const char *
fault_site_name(FaultSite site)
{
    switch (site) {
      case FaultSite::SolverQuery: return "solver-query";
      case FaultSite::Exploration: return "exploration";
      case FaultSite::Generation: return "generation";
      case FaultSite::BackendHiFi: return "backend-hifi";
      case FaultSite::BackendLoFi: return "backend-lofi";
      case FaultSite::BackendHw: return "backend-hw";
      case FaultSite::BackendCrash: return "backend-crash";
      case FaultSite::BackendHang: return "backend-hang";
    }
    return "?";
}

u64
QuarantineReport::count(Stage stage) const
{
    u64 n = 0;
    for (const QuarantinedUnit &u : units_)
        n += u.stage == stage;
    return n;
}

u64
QuarantineReport::count(FaultClass cls) const
{
    u64 n = 0;
    for (const QuarantinedUnit &u : units_)
        n += u.cls == cls;
    return n;
}

bool
QuarantineReport::contains(Stage stage, const std::string &unit,
                           FaultClass cls,
                           const std::string &message) const
{
    for (const QuarantinedUnit &u : units_) {
        if (u.stage == stage && u.cls == cls && u.unit == unit &&
            u.message == message) {
            return true;
        }
    }
    return false;
}

std::string
QuarantineReport::to_string() const
{
    std::ostringstream os;
    os << "quarantined units: " << units_.size() << "\n";
    for (const QuarantinedUnit &u : units_) {
        os << "  [" << stage_name(u.stage) << "] " << u.unit << ": "
           << fault_class_name(u.cls) << " (" << u.message << ")\n";
    }
    return os.str();
}

FaultPlan
FaultPlan::only(FaultSite site, double probability, u64 seed)
{
    FaultPlan plan;
    plan.probability = probability;
    plan.seed = seed;
    for (bool &armed : plan.armed)
        armed = false;
    plan.armed[static_cast<std::size_t>(site)] = true;
    return plan;
}

namespace {

/** splitmix64 finalizer: a good 64->64 mixer for counter streams. */
u64
mix64(u64 x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

namespace {

/** FNV-1a over the occurrence's `where` string, for unit-keyed plans. */
u64
fnv1a(const std::string &s)
{
    u64 h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace

void
FaultInjector::maybe_fail(FaultSite site, const std::string &where)
{
    const auto s = static_cast<std::size_t>(site);
    const u64 occurrence = occurrences_[s]++;
    if (plan_.probability <= 0.0 || !plan_.armed[s])
        return;
    // Map a hash to [0, 1). Counter keying gives independent streams
    // per site, so occurrence i of a site fails identically across
    // runs whatever the interleaving with other sites; unit keying
    // hashes the `where` string instead so the decision is identical
    // across shard layouts and resumed sessions (see FaultPlan).
    const u64 k = plan_.key_by_unit ? fnv1a(where) : occurrence;
    const u64 h = mix64(plan_.seed ^ mix64((u64{s} << 32) | 1) ^
                        mix64(k));
    const double draw =
        static_cast<double>(h >> 11) * 0x1.0p-53; // 53 uniform bits.
    if (draw < plan_.probability) {
        ++injected_[s];
        std::string message = "injected fault at " +
            std::string(fault_site_name(site));
        if (!plan_.key_by_unit)
            message += " occurrence " + std::to_string(occurrence);
        message += " (" + where + ")";
        throw FaultError(FaultClass::Injected, message);
    }
}

u64
FaultInjector::total_injected() const
{
    u64 n = 0;
    for (u64 i : injected_)
        n += i;
    return n;
}

void
FaultInjector::reset()
{
    for (std::size_t i = 0; i < kNumFaultSites; ++i)
        occurrences_[i] = injected_[i] = 0;
}

} // namespace pokeemu::support
