#include "support/logging.h"

#include <cstdio>
#include <mutex>

namespace pokeemu {

namespace {

LogLevel g_level = LogLevel::Warn;
std::mutex g_mutex;

const char *
level_name(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Error: return "ERROR";
      case LogLevel::Off: return "OFF";
    }
    return "?";
}

} // namespace

void
set_log_level(LogLevel level)
{
    g_level = level;
}

LogLevel
log_level()
{
    return g_level;
}

void
log_line(LogLevel level, const std::string &message)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    std::fprintf(stderr, "[pokeemu %s] %s\n", level_name(level),
                 message.c_str());
}

} // namespace pokeemu
