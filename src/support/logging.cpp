#include "support/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace pokeemu {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_mutex;
thread_local int t_shard = -1;

const char *
level_name(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Error: return "ERROR";
      case LogLevel::Off: return "OFF";
    }
    return "?";
}

} // namespace

void
set_log_level(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
log_level()
{
    return g_level.load(std::memory_order_relaxed);
}

void
set_log_shard(int shard)
{
    t_shard = shard;
}

int
log_shard()
{
    return t_shard;
}

void
log_line(LogLevel level, const std::string &message)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    if (t_shard >= 0) {
        std::fprintf(stderr, "[pokeemu s%d %s] %s\n", t_shard,
                     level_name(level), message.c_str());
    } else {
        std::fprintf(stderr, "[pokeemu %s] %s\n", level_name(level),
                     message.c_str());
    }
}

} // namespace pokeemu
