/**
 * @file
 * Minimal leveled logging used by long-running exploration stages.
 *
 * Concurrency-safe: the level filter is atomic, each line is emitted
 * under a lock as a single write (no interleaved fragments), and shard
 * workers can tag their thread with set_log_shard() so concurrent
 * campaign output stays attributable.
 */
#ifndef POKEEMU_SUPPORT_LOGGING_H
#define POKEEMU_SUPPORT_LOGGING_H

#include <sstream>
#include <string>

namespace pokeemu {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/** Set the global minimum level that is actually emitted. */
void set_log_level(LogLevel level);
LogLevel log_level();

/**
 * Tag the calling thread's log lines with a shard id (-1 clears the
 * tag). Thread-local: a campaign worker sets it once at thread start
 * and every line it emits reads "[pokeemu s<k> LEVEL] ...".
 */
void set_log_shard(int shard);
int log_shard();

/** Emit one log line (appends a newline) if @p level passes the filter. */
void log_line(LogLevel level, const std::string &message);

namespace detail {

inline void
format_into(std::ostringstream &)
{
}

template <typename First, typename... Rest>
void
format_into(std::ostringstream &os, First &&first, Rest &&...rest)
{
    os << std::forward<First>(first);
    format_into(os, std::forward<Rest>(rest)...);
}

} // namespace detail

template <typename... Args>
void
log(LogLevel level, Args &&...args)
{
    if (level < log_level())
        return;
    std::ostringstream os;
    detail::format_into(os, std::forward<Args>(args)...);
    log_line(level, os.str());
}

template <typename... Args>
void
log_info(Args &&...args)
{
    log(LogLevel::Info, std::forward<Args>(args)...);
}

template <typename... Args>
void
log_debug(Args &&...args)
{
    log(LogLevel::Debug, std::forward<Args>(args)...);
}

template <typename... Args>
void
log_warn(Args &&...args)
{
    log(LogLevel::Warn, std::forward<Args>(args)...);
}

} // namespace pokeemu

#endif // POKEEMU_SUPPORT_LOGGING_H
