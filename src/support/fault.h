/**
 * @file
 * Fault isolation for long-running sweeps.
 *
 * The paper's headline experiment (§6: 68,977 candidate instructions,
 * 610,516 paths) only works at campaign scale if a single bad unit of
 * work — one instruction's state exploration, one test's generation,
 * one test's three-way execution — cannot kill the whole run. This
 * header provides the vocabulary the pipeline uses for that:
 *
 *  - FaultError / FaultClass: typed failures raised by library code in
 *    place of bare panic() when the condition is attributable to one
 *    unit of work rather than a global invariant.
 *  - Guarded<T> / try_run(): run one unit, capture its value or its
 *    fault; nothing escapes the stage boundary.
 *  - QuarantineReport: the per-sweep ledger of quarantined units,
 *    carried in PipelineStats so a campaign's output states exactly
 *    what was skipped and why.
 *  - Deadline: a combined wall-clock / step budget with one-shot
 *    escalation, the time-domain analog of the paper's 8192-path cap.
 *  - FaultInjector: deterministic, seeded fault injection at named
 *    sites, used by the chaos_pipeline ctest to prove containment.
 */
#ifndef POKEEMU_SUPPORT_FAULT_H
#define POKEEMU_SUPPORT_FAULT_H

#include <chrono>
#include <functional>
#include <optional>
#include <stdexcept>
#include <vector>

#include "support/common.h"

namespace pokeemu::support {

/** Pipeline stages, used to attribute quarantined units. */
enum class Stage : u8 {
    InsnExploration,  ///< Stage 1: instruction-set exploration.
    StateExploration, ///< Stage 2: per-instruction path exploration.
    Generation,       ///< Stage 3: test-program generation.
    Execution,        ///< Stage 4: three-way execution.
    Comparison,       ///< Stage 5: difference analysis.
    /** Translation validation of an optimized semantics program
     *  (analysis/equiv.h). A separate stage — not StateExploration —
     *  because its quarantine entries describe work that is never
     *  re-attempted on resume (the unit itself completed), so the
     *  resume logic must replay them into the live ledger verbatim. */
    Validation,
    /** A backend misbehaved while executing one test — crashed, hung
     *  past the per-run watchdog, or produced a corrupt snapshot.
     *  Distinct from Execution (a backend *refusing* a test) because
     *  the defect matrix scores containment of misbehaving variant
     *  backends separately from ordinary execution failures. Appended
     *  last so persisted checkpoint ledgers keep their encoding. */
    Backend,
};

const char *stage_name(Stage stage);

/** Why a unit of work failed. */
enum class FaultClass : u8 {
    Internal,        ///< Escaped invariant failure (panic/logic_error).
    Decode,          ///< Representative bytes failed to decode.
    SolverTimeout,   ///< A solver query exceeded its deadline.
    BudgetExhausted, ///< Unit deadline expired even after escalation.
    Execution,       ///< A backend refused or failed the test.
    Injected,        ///< Synthetic fault from a FaultInjector.
    Miscompile,      ///< Translation validation found a counterexample.
    BackendCrash,    ///< A backend threw out of its run loop.
    BackendHang,     ///< A backend tripped the per-run watchdog.
    SnapshotCorrupt, ///< A backend emitted an invalid snapshot.
    /** CompiledExec::CrossCheck caught the compiled handler diverging
     *  from the IR interpreter, or the generated handler table is
     *  stale (semantics hash mismatch). Appended last so persisted
     *  checkpoint ledgers keep their encoding. */
    CodegenMismatch,
};

const char *fault_class_name(FaultClass cls);

/** True for the classes a misbehaving backend raises; the pipeline
 *  routes these to Stage::Backend instead of Stage::Execution. */
inline bool
is_backend_fault(FaultClass cls)
{
    return cls == FaultClass::BackendCrash ||
        cls == FaultClass::BackendHang ||
        cls == FaultClass::SnapshotCorrupt;
}

/**
 * A typed, unit-attributable failure. Library code inside a pipeline
 * stage throws this instead of panic() so the stage boundary can
 * quarantine the unit and keep sweeping; panic() remains reserved for
 * global invariants where continuing would produce garbage.
 */
class FaultError : public std::runtime_error
{
  public:
    FaultError(FaultClass cls, const std::string &message)
        : std::runtime_error(message), cls_(cls)
    {
    }

    FaultClass fault_class() const { return cls_; }

  private:
    FaultClass cls_;
};

/** One quarantined unit of work in the sweep ledger. */
struct QuarantinedUnit
{
    Stage stage;
    std::string unit; ///< E.g. "insn 17 (iret)" or "test 204".
    FaultClass cls;
    std::string message;
};

/** The sweep's quarantine ledger (lives in PipelineStats). */
class QuarantineReport
{
  public:
    void
    add(Stage stage, std::string unit, FaultClass cls,
        std::string message)
    {
        units_.push_back({stage, std::move(unit), cls,
                          std::move(message)});
    }

    const std::vector<QuarantinedUnit> &units() const { return units_; }
    u64 total() const { return units_.size(); }
    u64 count(Stage stage) const;
    u64 count(FaultClass cls) const;

    /** True when an identical entry is already ledgered — used to
     *  dedup when a resumed session replays a persisted ledger. */
    bool contains(Stage stage, const std::string &unit, FaultClass cls,
                  const std::string &message) const;

    std::string to_string() const;

  private:
    std::vector<QuarantinedUnit> units_;
};

/**
 * The value-or-fault result of one guarded unit of work.
 * Either `value` holds the unit's result, or `fault` describes why it
 * was quarantined — never both, never neither.
 */
template <typename T> struct Guarded
{
    std::optional<T> value;
    FaultClass cls = FaultClass::Internal;
    std::string message;

    bool ok() const { return value.has_value(); }
    explicit operator bool() const { return ok(); }
    T &operator*() { return *value; }
    const T &operator*() const { return *value; }
    T *operator->() { return &*value; }
    const T *operator->() const { return &*value; }
};

/**
 * Run @p fn, capturing a thrown FaultError (or any std::exception,
 * classed Internal) instead of letting it cross the stage boundary.
 */
template <typename Fn>
auto
try_run(Fn &&fn) -> Guarded<decltype(fn())>
{
    Guarded<decltype(fn())> result;
    try {
        result.value = fn();
    } catch (const FaultError &e) {
        result.cls = e.fault_class();
        result.message = e.what();
    } catch (const std::exception &e) {
        result.cls = FaultClass::Internal;
        result.message = e.what();
    }
    return result;
}

/**
 * A combined wall-clock / step budget for one unit of work — the
 * paper caps exploration by path count (8192); campaigns additionally
 * need time- and step-domain caps so one pathological unit cannot
 * stall the sweep. Default-constructed deadlines are unlimited and
 * cost one branch to check.
 *
 * Steps are consumed explicitly via consume(); the wall clock is
 * sampled lazily (every kWallCheckStride consumptions) so per-step
 * overhead stays negligible.
 */
class Deadline
{
  public:
    Deadline() = default; ///< Unlimited.

    static Deadline
    after_ms(u64 ms)
    {
        Deadline d;
        d.wall_limited_ = true;
        d.wall_deadline_ = std::chrono::steady_clock::now() +
            std::chrono::milliseconds(ms);
        return d;
    }

    static Deadline
    steps(u64 n)
    {
        Deadline d;
        d.step_budget_ = n;
        return d;
    }

    /** Both limits at once; 0 disables the respective limit. */
    static Deadline
    with(u64 ms, u64 max_steps)
    {
        Deadline d = ms ? after_ms(ms) : Deadline{};
        d.step_budget_ = max_steps;
        return d;
    }

    bool limited() const { return wall_limited_ || step_budget_ != 0; }

    /** Consume @p n steps; returns true when the deadline has passed. */
    bool
    consume(u64 n = 1)
    {
        if (!limited())
            return false;
        steps_used_ += n;
        if (step_budget_ && steps_used_ > step_budget_)
            return true;
        if (wall_limited_ && steps_used_ >= next_wall_check_) {
            next_wall_check_ = steps_used_ + kWallCheckStride;
            return expired();
        }
        return false;
    }

    /** Immediate check (steps already consumed + wall clock now). */
    bool
    expired() const
    {
        if (step_budget_ && steps_used_ > step_budget_)
            return true;
        return wall_limited_ &&
            std::chrono::steady_clock::now() >= wall_deadline_;
    }

    u64 steps_used() const { return steps_used_; }

  private:
    /** Steps between wall-clock samples (clock_gettime is ~20ns but
     *  the explorer consumes per IR statement). */
    static constexpr u64 kWallCheckStride = 256;

    bool wall_limited_ = false;
    std::chrono::steady_clock::time_point wall_deadline_{};
    u64 step_budget_ = 0; ///< 0 = unlimited.
    u64 steps_used_ = 0;
    u64 next_wall_check_ = 0;
};

/** Every place the chaos harness can inject a fault. */
enum class FaultSite : u8 {
    SolverQuery, ///< Inside Solver::check (models a solver timeout).
    Exploration, ///< Start of one instruction's path exploration.
    Generation,  ///< One test program's generation.
    BackendHiFi, ///< Hi-Fi execution of one test.
    BackendLoFi, ///< Lo-Fi execution of one test.
    BackendHw,   ///< Hardware-oracle execution of one test.
    /** Lo-Fi run raising a backend crash (FaultClass::BackendCrash)
     *  rather than a generic injected fault — exercises the
     *  Stage::Backend containment path end to end. */
    BackendCrash,
    /** Lo-Fi run burning its entire per-run watchdog budget before
     *  failing (FaultClass::BackendHang) — the chaos analog of a
     *  variant backend stuck in its dispatch loop. */
    BackendHang,
};

constexpr std::size_t kNumFaultSites = 8;

const char *fault_site_name(FaultSite site);

/** What a FaultInjector does (in the spirit of lofi::BugConfig: each
 *  site individually toggleable so containment per site is testable). */
struct FaultPlan
{
    /** Probability of failing any armed site occurrence, in [0, 1]. */
    double probability = 0.0;
    u64 seed = 1;
    /** Armed sites; all on by default (filtered via arm()/disarm()). */
    bool armed[kNumFaultSites] = {true, true, true, true,
                                  true, true, true, true};
    /**
     * Key the fail/pass decision by the occurrence's `where` string
     * instead of its per-site counter. Counter streams depend on how
     * many occurrences preceded this one — i.e. on shard layout and on
     * what earlier sessions already completed. Unit-keyed decisions
     * depend only on (seed, site, where), so a sharded or resumed
     * campaign quarantines exactly the same units as a monolithic run;
     * the injected message also omits the occurrence number for the
     * same reason.
     */
    bool key_by_unit = false;

    static FaultPlan
    none()
    {
        FaultPlan plan;
        plan.probability = 0.0;
        return plan;
    }

    /** Plan failing every occurrence of exactly @p site. */
    static FaultPlan only(FaultSite site, double probability = 1.0,
                          u64 seed = 1);
};

/**
 * Deterministic seeded fault injection. Each site has an independent
 * counter-based stream: occurrence i of site s fails iff
 * hash(seed, s, i) maps below `probability` — so the decision for a
 * given occurrence is reproducible regardless of what other sites did
 * in between (which is what lets the chaos test predict exactly which
 * units a re-run will quarantine).
 */
class FaultInjector
{
  public:
    FaultInjector() = default;
    explicit FaultInjector(const FaultPlan &plan) : plan_(plan) {}

    bool enabled() const { return plan_.probability > 0.0; }

    /**
     * Record one occurrence of @p site; throws a FaultError classed
     * Injected when the plan says this occurrence fails.
     */
    void maybe_fail(FaultSite site, const std::string &where);

    /** Occurrences seen / faults thrown per site, for accounting. */
    u64 occurrences(FaultSite site) const
    {
        return occurrences_[static_cast<std::size_t>(site)];
    }
    u64 injected(FaultSite site) const
    {
        return injected_[static_cast<std::size_t>(site)];
    }
    u64 total_injected() const;

    /** Forget all counters (streams restart at occurrence 0). */
    void reset();

  private:
    FaultPlan plan_;
    u64 occurrences_[kNumFaultSites] = {};
    u64 injected_[kNumFaultSites] = {};
};

} // namespace pokeemu::support

#endif // POKEEMU_SUPPORT_FAULT_H
