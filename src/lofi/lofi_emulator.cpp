#include "lofi/lofi_emulator.h"

namespace pokeemu::lofi {

BugConfig
BugConfig::none()
{
    BugConfig b;
    b.no_segment_checks = false;
    b.leave_nonatomic = false;
    b.cmpxchg_nonatomic = false;
    b.iret_pop_order = false;
    b.rdmsr_no_gp = false;
    b.no_accessed_flag = false;
    b.reject_valid_encodings = false;
    b.undef_flags_divergence = false;
    return b;
}

backend::Behavior
behavior_from_bugs(const BugConfig &bugs)
{
    backend::Behavior b = backend::hardware_behavior();
    b.enforce_segment_checks = !bugs.no_segment_checks;
    b.leave_atomic = !bugs.leave_nonatomic;
    b.cmpxchg_checks_write_first = !bugs.cmpxchg_nonatomic;
    b.iret_pop_inner_first = !bugs.iret_pop_order;
    b.rdmsr_gp_on_invalid = !bugs.rdmsr_no_gp;
    b.set_descriptor_accessed = !bugs.no_accessed_flag;
    b.accept_alias_encodings = !bugs.reject_valid_encodings;
    b.undef_flags = bugs.undef_flags_divergence
        ? backend::UndefFlagStyle::LoFi
        : backend::UndefFlagStyle::Hardware;
    return b;
}

} // namespace pokeemu::lofi
