#include "lofi/lofi_emulator.h"

#include <algorithm>

namespace pokeemu::lofi {

BugConfig
BugConfig::none()
{
    BugConfig b;
    b.no_segment_checks = false;
    b.leave_nonatomic = false;
    b.cmpxchg_nonatomic = false;
    b.iret_pop_order = false;
    b.rdmsr_no_gp = false;
    b.no_accessed_flag = false;
    b.reject_valid_encodings = false;
    b.undef_flags_divergence = false;
    // The injectable defects already default off; restated so none()
    // stays the all-bugs-fixed configuration by inspection.
    b.flags_wrong_width = false;
    b.far_fetch_selector_first = false;
    b.pte_accessed_dirty_dropped = false;
    b.seg_limit_off_by_one = false;
    b.wrmsr_truncated = false;
    b.half_cycle_accounting = false;
    b.mem_access_cost_dropped = false;
    return b;
}

backend::Behavior
behavior_from_bugs(const BugConfig &bugs)
{
    backend::Behavior b = backend::hardware_behavior();
    b.enforce_segment_checks = !bugs.no_segment_checks;
    b.leave_atomic = !bugs.leave_nonatomic;
    b.cmpxchg_checks_write_first = !bugs.cmpxchg_nonatomic;
    b.iret_pop_inner_first = !bugs.iret_pop_order;
    b.rdmsr_gp_on_invalid = !bugs.rdmsr_no_gp;
    b.set_descriptor_accessed = !bugs.no_accessed_flag;
    b.accept_alias_encodings = !bugs.reject_valid_encodings;
    b.undef_flags = bugs.undef_flags_divergence
        ? backend::UndefFlagStyle::LoFi
        : backend::UndefFlagStyle::Hardware;
    b.alu8_flags_wide = bugs.flags_wrong_width;
    b.far_fetch_offset_first = !bugs.far_fetch_selector_first;
    b.set_pte_accessed_dirty = !bugs.pte_accessed_dirty_dropped;
    b.seg_limit_off_by_one = bugs.seg_limit_off_by_one;
    b.wrmsr_truncate_16 = bugs.wrmsr_truncated;
    b.half_cycle_accounting = bugs.half_cycle_accounting;
    b.mem_access_cost_dropped = bugs.mem_access_cost_dropped;
    return b;
}

const char *
misbehavior_name(Misbehavior m)
{
    switch (m) {
      case Misbehavior::None: return "none";
      case Misbehavior::Crash: return "crash";
      case Misbehavior::Hang: return "hang";
      case Misbehavior::CorruptSnapshot: return "corrupt-snapshot";
    }
    return "?";
}

backend::StopReason
LoFiEmulator::run(u64 max_insns, support::Deadline *watchdog)
{
    using support::FaultClass;
    using support::FaultError;

    if (misbehavior_ == Misbehavior::Crash) {
        // Messages are constant strings (no counters) so a resumed or
        // re-sharded campaign ledgers byte-identical entries.
        throw FaultError(FaultClass::BackendCrash,
                         "lofi variant crashed entering its run loop");
    }
    if (misbehavior_ == Misbehavior::Hang) {
        // The model of a backend stuck in its dispatch loop: the
        // instruction cap is ignored and only the per-run watchdog
        // ends it. With no watchdog armed the hang is reported
        // immediately — looping forever would make the containment
        // failure itself untestable.
        if (watchdog == nullptr || !watchdog->limited())
            throw FaultError(FaultClass::BackendHang,
                             "lofi variant hung (no watchdog armed)");
        while (true) {
            cpu_.run(kWatchdogChunk);
            if (watchdog->consume(kWatchdogChunk))
                throw FaultError(
                    FaultClass::BackendHang,
                    "lofi variant hung; per-run watchdog expired");
        }
    }
    if (watchdog == nullptr || !watchdog->limited())
        return cpu_.run(max_insns);
    // Honest backend under a watchdog: run in chunks, charging the
    // watchdog for instructions actually executed. A completed run is
    // never flagged; one whose caller-configured budget is tighter
    // than the instruction cap trips deterministically (the step
    // budget counts instructions, not wall time).
    u64 remaining = max_insns;
    while (remaining > 0) {
        const u64 chunk = std::min<u64>(kWatchdogChunk, remaining);
        const u64 before = cpu_.insn_count();
        const backend::StopReason r = cpu_.run(chunk);
        const u64 executed = cpu_.insn_count() - before;
        if (r != backend::StopReason::InsnLimit)
            return r;
        remaining -= chunk;
        if (watchdog->consume(executed == 0 ? 1 : executed))
            throw FaultError(
                FaultClass::BackendHang,
                "lofi backend exceeded the per-run watchdog");
    }
    return backend::StopReason::InsnLimit;
}

} // namespace pokeemu::lofi
