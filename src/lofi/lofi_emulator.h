/**
 * @file
 * The Lo-Fi emulator (QEMU analog): a fast dynamic-translation-style
 * executor with a per-address translation cache and a configurable set
 * of seeded fidelity bugs — exactly the §6.2 root causes the paper's
 * evaluation uncovered in QEMU 0.14. Each bug is individually
 * toggleable so the pipeline's ability to find, filter, and cluster
 * them can be tested (and so a "fixed" emulator can be validated with
 * the same test suite, as the paper advocates).
 */
#ifndef POKEEMU_LOFI_LOFI_EMULATOR_H
#define POKEEMU_LOFI_LOFI_EMULATOR_H

#include "backend/direct_cpu.h"

namespace pokeemu::lofi {

/** The seeded QEMU-class bugs (paper §6.2), all on by default. */
struct BugConfig
{
    /** Segment limit/type/null checks skipped on data accesses ("does
     *  not enforce segment limits and rights with the majority of
     *  instructions"). */
    bool no_segment_checks = true;
    /** leave updates ESP before the (faultable) stack read. */
    bool leave_nonatomic = true;
    /** cmpxchg checks write permission only on the equal path and
     *  updates the accumulator before detecting the fault. */
    bool cmpxchg_nonatomic = true;
    /** iret pops stack items outermost-to-innermost. */
    bool iret_pop_order = true;
    /** rdmsr/wrmsr of an unknown MSR does not raise #GP. */
    bool rdmsr_no_gp = true;
    /** Segment loads do not set the descriptor's accessed flag. */
    bool no_accessed_flag = true;
    /** Undocumented alias encodings (shift /6, F6 /1) are rejected. */
    bool reject_valid_encodings = true;
    /** Documented-undefined flags resolved differently from hardware
     *  (shift OF for count > 1, mul/div flags, bsf/bsr destination). */
    bool undef_flags_divergence = true;

    /** All bugs fixed (the "patched emulator" configuration). */
    static BugConfig none();
};

/** Translate the bug configuration to backend behaviour knobs. */
backend::Behavior behavior_from_bugs(const BugConfig &bugs);

/**
 * See file comment. Thin facade over the direct backend configured
 * with the bug knobs; exposes the translation-cache statistics that
 * make this the "JIT-style" backend.
 */
class LoFiEmulator
{
  public:
    explicit LoFiEmulator(const BugConfig &bugs = BugConfig{})
        : cpu_(behavior_from_bugs(bugs))
    {
    }

    void
    reset(const arch::CpuState &cpu, const std::vector<u8> &ram)
    {
        cpu_.reset(cpu, ram);
    }

    backend::StopReason run(u64 max_insns = 1u << 20)
    {
        return cpu_.run(max_insns);
    }

    arch::Snapshot snapshot() const { return cpu_.snapshot(); }

    void
    snapshot_into(arch::Snapshot &out) const
    {
        cpu_.snapshot_into(out);
    }
    const arch::CpuState &cpu() const { return cpu_.cpu(); }
    u64 insn_count() const { return cpu_.insn_count(); }
    u64 cache_hits() const { return cpu_.cache_hits(); }
    u64 cache_misses() const { return cpu_.cache_misses(); }

  private:
    backend::DirectCpu cpu_;
};

} // namespace pokeemu::lofi

#endif // POKEEMU_LOFI_LOFI_EMULATOR_H
