/**
 * @file
 * The Lo-Fi emulator (QEMU analog): a fast dynamic-translation-style
 * executor with a per-address translation cache and a configurable set
 * of seeded fidelity bugs — exactly the §6.2 root causes the paper's
 * evaluation uncovered in QEMU 0.14. Each bug is individually
 * toggleable so the pipeline's ability to find, filter, and cluster
 * them can be tested (and so a "fixed" emulator can be validated with
 * the same test suite, as the paper advocates).
 */
#ifndef POKEEMU_LOFI_LOFI_EMULATOR_H
#define POKEEMU_LOFI_LOFI_EMULATOR_H

#include "backend/direct_cpu.h"
#include "support/fault.h"

namespace pokeemu::lofi {

/** The seeded QEMU-class bugs (paper §6.2), all on by default. */
struct BugConfig
{
    /** Segment limit/type/null checks skipped on data accesses ("does
     *  not enforce segment limits and rights with the majority of
     *  instructions"). */
    bool no_segment_checks = true;
    /** leave updates ESP before the (faultable) stack read. */
    bool leave_nonatomic = true;
    /** cmpxchg checks write permission only on the equal path and
     *  updates the accumulator before detecting the fault. */
    bool cmpxchg_nonatomic = true;
    /** iret pops stack items outermost-to-innermost. */
    bool iret_pop_order = true;
    /** rdmsr/wrmsr of an unknown MSR does not raise #GP. */
    bool rdmsr_no_gp = true;
    /** Segment loads do not set the descriptor's accessed flag. */
    bool no_accessed_flag = true;
    /** Undocumented alias encodings (shift /6, F6 /1) are rejected. */
    bool reject_valid_encodings = true;
    /** Documented-undefined flags resolved differently from hardware
     *  (shift OF for count > 1, mul/div flags, bsf/bsr destination). */
    bool undef_flags_divergence = true;

    /// @name Injectable defects (defects::catalogue()). Off by
    /// default: the stock Lo-Fi emulator does not ship these — only
    /// mutation-derived variant backends turn them on, so existing
    /// reports and path sets are unchanged.
    /// @{
    /** 8-bit ALU flags computed at 32-bit width. */
    bool flags_wrong_width = false;
    /** Far pointer loads fetch the selector before the offset
     *  (reordered paired memory accesses). */
    bool far_fetch_selector_first = false;
    /** Page walks do not set PTE/PDE accessed and dirty bits. */
    bool pte_accessed_dirty_dropped = false;
    /** Segment-limit comparison off by one. */
    bool seg_limit_off_by_one = false;
    /** wrmsr stores only the low 16 bits of EAX. */
    bool wrmsr_truncated = false;
    /// @}

    /// @name Injectable timing defects (pose64-style: architectural
    /// state stays right, cycle totals go wrong; detected only as
    /// TimingDivergence). Off by default like the other defects.
    /// @{
    /** Every cycle charge halved (the pose64 2x undercount). */
    bool half_cycle_accounting = false;
    /** Per-memory-access cost never accumulated. */
    bool mem_access_cost_dropped = false;
    /// @}

    /** All bugs fixed (the "patched emulator" configuration). */
    static BugConfig none();

    bool operator==(const BugConfig &) const = default;
};

/** Translate the bug configuration to backend behaviour knobs. */
backend::Behavior behavior_from_bugs(const BugConfig &bugs);

/**
 * Containment-exercising misbehaviour classes (defects::catalogue()).
 * Unlike BugConfig defects — which produce wrong-but-well-formed
 * results the pipeline should *detect* — these make the variant
 * backend fail as a process: the harness must *contain* them
 * per-unit (quarantine at Stage::Backend) so the defect matrix
 * degrades gracefully instead of dying.
 */
enum class Misbehavior : u8 {
    None,            ///< The stock, well-behaved backend.
    Crash,           ///< run() throws entering its dispatch loop.
    Hang,            ///< run() ignores the cap; watchdog must trip.
    CorruptSnapshot, ///< snapshot_into() emits a short RAM dump.
};

const char *misbehavior_name(Misbehavior m);

/**
 * See file comment. Thin facade over the direct backend configured
 * with the bug knobs; exposes the translation-cache statistics that
 * make this the "JIT-style" backend.
 */
class LoFiEmulator
{
  public:
    explicit LoFiEmulator(const BugConfig &bugs = BugConfig{},
                          Misbehavior misbehavior = Misbehavior::None)
        : cpu_(behavior_from_bugs(bugs)), misbehavior_(misbehavior)
    {
    }

    void
    reset(const arch::CpuState &cpu, const std::vector<u8> &ram)
    {
        cpu_.reset(cpu, ram);
    }

    /**
     * Run up to @p max_insns instructions. An optional per-run
     * watchdog bounds the backend itself (instruction budget, plus an
     * optional wall clock as a non-deterministic safety net): a
     * misbehaving variant that ignores the cap is stopped with a
     * FaultError(BackendHang) instead of stalling the campaign.
     */
    backend::StopReason run(u64 max_insns = 1u << 20,
                            support::Deadline *watchdog = nullptr);

    arch::Snapshot snapshot() const { return cpu_.snapshot(); }

    void
    snapshot_into(arch::Snapshot &out) const
    {
        cpu_.snapshot_into(out);
        // The corrupting variant drops the top half of its RAM dump;
        // harness::TestRunner validates snapshot shape and quarantines
        // the unit as FaultClass::SnapshotCorrupt.
        if (misbehavior_ == Misbehavior::CorruptSnapshot)
            out.ram.resize(out.ram.size() / 2);
    }
    const arch::CpuState &cpu() const { return cpu_.cpu(); }
    u64 insn_count() const { return cpu_.insn_count(); }
    u64 cache_hits() const { return cpu_.cache_hits(); }
    u64 cache_misses() const { return cpu_.cache_misses(); }
    Misbehavior misbehavior() const { return misbehavior_; }

    /// @name Cycle accounting (timing/cost_model.h).
    /// @{
    void set_cycle_accounting(bool on) { cpu_.set_cycle_accounting(on); }
    u64 cycle_count() const { return cpu_.cycle_count(); }
    /// @}

  private:
    /** Instructions per watchdog charge; small enough that a hung
     *  backend is caught promptly, large enough to stay off the hot
     *  path (one Deadline::consume per 64 instructions). */
    static constexpr u64 kWatchdogChunk = 64;

    backend::DirectCpu cpu_;
    Misbehavior misbehavior_ = Misbehavior::None;
};

} // namespace pokeemu::lofi

#endif // POKEEMU_LOFI_LOFI_EMULATOR_H
