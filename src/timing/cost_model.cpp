/**
 * @file
 * Cost derivation, lookup, and divergence bucketing. The process-wide
 * cost_model() singleton lives in cost_tables.cpp: it references the
 * semgen-generated tables, and tools/semgen itself links this file
 * (for derive_cost) against the core library *without* a generated
 * table, exactly like hifi/compiled.cpp vs compiled_dispatch.cpp.
 */
#include "timing/cost_model.h"

#include <stdexcept>

#include "arch/layout.h"
#include "hifi/semantics.h"

namespace pokeemu::timing {

namespace layout = arch::layout;

UnitCost
derive_cost(const ir::Program &program)
{
    UnitCost cost;
    u64 retired = 0;
    bool fault_reachable = false;
    for (const ir::Stmt &stmt : program.stmts) {
        switch (stmt.kind) {
        case ir::StmtKind::Comment:
            continue;
        case ir::StmtKind::Load:
        case ir::StmtKind::Store:
            // Constant addresses below the guest-physical window are
            // CPU-state-image / scratch traffic — the IR's register
            // file — and fold into the base. Everything else (guest
            // RAM, or a computed address that could reach it) is a
            // memory access.
            if (!(stmt.addr->is_const() &&
                  stmt.addr->value() < layout::kGuestPhysBase))
                ++cost.mem_accesses;
            break;
        case ir::StmtKind::Halt:
            // A non-constant halt code can carry the exception bit at
            // run time; a constant one is inspected directly.
            if (!stmt.expr->is_const() ||
                (stmt.expr->value() & hifi::kHaltException) != 0)
                fault_reachable = true;
            break;
        default:
            break;
        }
        ++retired;
    }
    cost.base = 2 + 2 * (retired / 8);
    cost.fault_extra = fault_reachable ? kExceptionCycles : 0;
    return cost;
}

void
CostModel::set(int table_index, bool mem_form, const UnitCost &cost)
{
    if (table_index < 0)
        throw std::logic_error("CostModel::set: negative row");
    const std::size_t row = static_cast<std::size_t>(table_index);
    if (row >= rows_.size())
        rows_.resize(row + 1);
    rows_[row].form[mem_form ? 1 : 0] = cost;
    rows_[row].have[mem_form ? 1 : 0] = true;
}

const UnitCost &
CostModel::cost_for(int table_index, bool mem_form) const
{
    const std::size_t row = static_cast<std::size_t>(table_index);
    if (table_index < 0 || row >= rows_.size())
        return fallback_;
    const RowCost &rc = rows_[row];
    const unsigned want = mem_form ? 1 : 0;
    if (rc.have[want])
        return rc.form[want];
    if (rc.have[1 - want])
        return rc.form[1 - want];
    return fallback_;
}

std::string
divergence_label(u64 hw_cycles, u64 backend_cycles,
                 const std::string &backend)
{
    if (hw_cycles == 0 || backend_cycles == 0)
        return "cycles-zero-" + backend;
    const bool under = backend_cycles < hw_cycles;
    const u64 hi = under ? hw_cycles : backend_cycles;
    const u64 lo = under ? backend_cycles : hw_cycles;
    const u64 ratio = (hi + lo / 2) / lo; // Rounded to nearest.
    const std::string side = under ? "under-" : "over-";
    if (ratio <= 1)
        return "cycles-" + side + backend;
    if (ratio >= 4)
        return "cycles-4x+-" + side + backend;
    return "cycles-" + std::to_string(ratio) + "x-" + side + backend;
}

} // namespace pokeemu::timing
