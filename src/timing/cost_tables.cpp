/**
 * @file
 * The process-wide cost model, assembled from the semgen-generated
 * cost table. Kept out of cost_model.cpp so tools/semgen (which needs
 * derive_cost but has no generated table to link) still resolves.
 */
#include "timing/cost_model.h"

#include <stdexcept>

#include "hifi/compiled.h"

namespace pokeemu::timing {

const CostModel &
cost_model()
{
    static const CostModel model = [] {
        CostModel m;
        const hifi::CompiledTable &table = hifi::compiled_table();
        const hifi::CompiledCostTable &costs =
            hifi::compiled_cost_table();
        if (costs.num != table.num_entries)
            throw std::logic_error(
                "compiled cost table disagrees with dispatch table — "
                "regenerate compiled semantics");
        for (std::size_t i = 0; i < costs.num; ++i) {
            const hifi::CompiledShape &shape = table.entries[i].shape;
            const bool mem_form =
                shape.has_modrm && (shape.modrm >> 6) != 3;
            m.set(shape.table_index, mem_form, costs.costs[i]);
        }
        return m;
    }();
    return model;
}

} // namespace pokeemu::timing
