/**
 * @file
 * Cycle-cost model for the VX86 semantics: the timing-fidelity
 * observable (ROADMAP "new observable"; pose64 post-mortem,
 * SNIPPETS.md snippet 1).
 *
 * The paper compares only *architectural* state, which is blind to an
 * emulator whose results are right while its cycle accounting is
 * systematically wrong. This module attaches a deterministic cycle
 * cost to every instruction so all three backends (Hi-Fi interpreter,
 * Hi-Fi compiled dispatch, DirectCpu-based Lo-Fi/hardware) can report
 * per-run cycle totals that the harness diffs as a new difference
 * class, TimingDivergence, clustered separately from state diffs and
 * timeouts.
 *
 * Costs are *derived from the IR programs themselves* (derive_cost):
 * a per-unit base proportional to the retired-statement count plus a
 * per-memory-access increment for every Load/Store that can reach
 * guest physical memory, plus a fault-path surcharge for units that
 * can raise an exception. Derivation walks the same canonical
 * programs semgen compiles (compiled_build_options, optimizer on), so
 * symbolic exploration, the interpreter, and the generated native
 * handlers all observe identical accounting — and tools/semgen emits
 * the very table it compiled against (compiled_cost_table), folded
 * into the FNV staleness hash so a stale cost table refuses to load
 * just like stale handlers do.
 *
 * The model is deliberately *static per (row, operand form)*: equal
 * retired instruction sequences always charge equal cycles, so with
 * no timing defect seeded the backends agree cycle-for-cycle and the
 * merged campaign report stays byte-identical across shard counts,
 * OptMode and CompiledExec (optimized and unoptimized programs
 * execute different statement counts; charging dynamically would
 * leak the mode into the report).
 *
 * Every derived cost component is even by construction, so a
 * systematic halving defect (defects: half_cycle_accounting) divides
 * totals exactly and lands deterministically in the 2x ratio bucket.
 */
#ifndef POKEEMU_TIMING_COST_MODEL_H
#define POKEEMU_TIMING_COST_MODEL_H

#include <string>
#include <vector>

#include "arch/decoder.h"
#include "ir/stmt.h"

namespace pokeemu::timing {

/// @name Cost constants (all even; see file comment).
/// @{
/** Charged per Load/Store that can reach guest physical memory. */
constexpr u64 kMemAccessCost = 4;
/** Flat charge when an instruction faults before its semantics run
 *  (fetch starvation, undecodable bytes, rejected alias). */
constexpr u64 kFaultPathCycles = 8;
/** Surcharge when the semantics themselves raise an exception. */
constexpr u64 kExceptionCycles = 16;
/// @}

/** Cycle cost of one compiled unit, derived from its IR program. */
struct UnitCost
{
    /** Per-retirement base: 2 + 2 * (non-comment statements / 8). */
    u64 base = 2;
    /** Guest-memory Load/Store statements in the program. */
    u64 mem_accesses = 0;
    /** Added when the run faults in-semantics; kExceptionCycles if
     *  the program has a reachable exception halt, else 0. */
    u64 fault_extra = 0;

    /** The undefected charge for one retirement of this unit. */
    u64 charge(bool faulted) const
    {
        return base + kMemAccessCost * mem_accesses +
            (faulted ? fault_extra : 0);
    }

    bool operator==(const UnitCost &o) const
    {
        return base == o.base && mem_accesses == o.mem_accesses &&
            fault_extra == o.fault_extra;
    }
};

/**
 * Derive @p program's cost by walking its statements: every
 * non-comment statement contributes to the base; Load/Store
 * statements whose address is a constant below the guest-physical
 * window are register-file traffic (CPU state image / insn-buffer
 * scratch) folded into the base, all others count as memory
 * accesses; a Halt whose code is non-constant or carries the
 * exception bit makes the fault path reachable.
 */
UnitCost derive_cost(const ir::Program &program);

/**
 * Per-instruction cost lookup keyed on (table row, operand form).
 * The two ModRM operand forms of a row execute different IR (the
 * memory form loads/stores guest RAM where the register form touches
 * the state image), so they cost differently; rows with only one
 * compiled form serve both forms from it.
 */
class CostModel
{
  public:
    /** Record the cost of one compiled form of a row. */
    void set(int table_index, bool mem_form, const UnitCost &cost);

    /** Cost serving (@p table_index, @p mem_form); falls back to the
     *  row's other form, then to a minimal default for rows with no
     *  compiled unit. */
    const UnitCost &cost_for(int table_index, bool mem_form) const;

    const UnitCost &cost_for(const arch::DecodedInsn &insn) const
    {
        return cost_for(insn.table_index, insn.is_memory_operand());
    }

    bool empty() const { return rows_.empty(); }

  private:
    struct RowCost
    {
        UnitCost form[2]; ///< [0] register form, [1] memory form.
        bool have[2] = {false, false};
    };

    std::vector<RowCost> rows_;
    UnitCost fallback_{};
};

/**
 * The process-wide model, built once from the semgen-generated cost
 * table (hifi::compiled_cost_table) — no semantics are rebuilt at
 * run time, so enabling timing costs one table scan. The generated
 * table is verified against fresh derivation by the
 * timing_crosscheck tool and the FNV staleness hash.
 */
const CostModel &cost_model();

/**
 * Ratio-bucketed root cause for a timing divergence: @p hw_cycles
 * from the hardware oracle vs @p backend_cycles from @p backend
 * ("lofi" or "hifi"). Buckets: "cycles-zero-<b>" (either side zero),
 * "cycles-under-<b>" / "cycles-<2|3>x-under-<b>" /
 * "cycles-4x+-under-<b>" with the rounded hw/backend ratio, and the
 * symmetric "over" family. Callers compare cycles only on otherwise
 * clean runs, so these clusters never mix with state-diff or
 * timeout clusters.
 */
std::string divergence_label(u64 hw_cycles, u64 backend_cycles,
                             const std::string &backend);

} // namespace pokeemu::timing

#endif // POKEEMU_TIMING_COST_MODEL_H
