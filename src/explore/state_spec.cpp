#include "explore/state_spec.h"

#include <sstream>

namespace pokeemu::explore {

namespace layout = arch::layout;
namespace E = ir::E;
using ir::ExprRef;

namespace {

/** EFLAGS bits marked symbolic (Figure 3): status + DF + IOPL/NT/AC. */
constexpr u32 kEflagsMask = 0x47cd5;
/** CR0 bits marked symbolic: MP EM TS NE WP AM (PE/PG pinned). */
constexpr u32 kCr0Mask = 0x5002e;
/** CR4 bits marked symbolic: TSD DE. */
constexpr u32 kCr4Mask = 0x0c;
/** PDE/PTE flag bits marked symbolic: P RW US A D (pointers pinned). */
constexpr u8 kPteMask = 0x67;

std::string
hex_name(const char *prefix, u32 value)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "%s%08x", prefix, value);
    return buf;
}

} // namespace

StateSpec::StateSpec(const arch::CpuState &baseline_cpu,
                     const std::vector<u8> &baseline_ram,
                     const symexec::Summary *summary)
    : baseline_cpu_(baseline_cpu), baseline_ram_(baseline_ram),
      baseline_image_(layout::kCpuStateSize, 0), summary_(summary)
{
    arch::pack_cpu_state(baseline_cpu_, baseline_image_.data());

    // General-purpose registers: fully symbolic.
    for (unsigned r = 0; r < arch::kNumGprs; ++r) {
        for (unsigned i = 0; i < 4; ++i) {
            add_cpu_byte(layout::kOffGpr + 4 * r + i, 0xff,
                         std::string("gpr_") + arch::gpr_name(r) +
                             "_b" + std::to_string(i));
        }
    }
    // EFLAGS / CR0 / CR4: masked.
    for (unsigned i = 0; i < 4; ++i) {
        const u8 fm = static_cast<u8>(kEflagsMask >> (8 * i));
        if (fm)
            add_cpu_byte(layout::kOffEflags + i, fm,
                         "eflags_b" + std::to_string(i));
        const u8 c0 = static_cast<u8>(kCr0Mask >> (8 * i));
        if (c0)
            add_cpu_byte(layout::kOffCr0 + i, c0,
                         "cr0_b" + std::to_string(i));
        const u8 c4 = static_cast<u8>(kCr4Mask >> (8 * i));
        if (c4)
            add_cpu_byte(layout::kOffCr4 + i, c4,
                         "cr4_b" + std::to_string(i));
    }
    // Sysenter MSRs: fully symbolic.
    const struct { u32 off; const char *name; } msrs[] = {
        {layout::kOffMsrSysenterCs, "msr_cs"},
        {layout::kOffMsrSysenterEsp, "msr_esp"},
        {layout::kOffMsrSysenterEip, "msr_eip"},
    };
    for (const auto &m : msrs) {
        for (unsigned i = 0; i < 4; ++i) {
            add_cpu_byte(m.off + i, 0xff,
                         std::string(m.name) + "_b" +
                             std::to_string(i));
        }
    }

    // GDT entries 2..15: fully symbolic descriptor bytes (entry 0 is
    // the architectural null, entry 1 backs the pinned CS).
    for (unsigned e = 2; e < layout::kGdtEntries; ++e) {
        for (unsigned i = 0; i < 8; ++i) {
            add_ram_byte(baseline_cpu_.gdtr.base + 8 * e + i, 0xff,
                         "gdt" + std::to_string(e) + "_b" +
                             std::to_string(i));
        }
    }

    // Page-directory and page-table flag bits (low byte of each
    // entry); frame pointers stay pinned.
    for (unsigned i = 0; i < 1024; ++i) {
        add_ram_byte(layout::kPhysPageDir + 4 * i, kPteMask,
                     hex_name("pde_", i));
        add_ram_byte(layout::kPhysPageTable + 4 * i, kPteMask,
                     hex_name("pte_", i));
    }

    // Segment caches derived from GDT bytes via the summary.
    if (summary_) {
        for (unsigned s : {arch::kSs, arch::kDs, arch::kEs, arch::kFs,
                           arch::kGs}) {
            summarized_segs_[s] = baseline_cpu_.seg[s].selector >> 3;
        }
    }
}

void
StateSpec::add_cpu_byte(u32 image_off, u8 mask, const std::string &name)
{
    ByteSpec spec;
    spec.mask = mask;
    spec.baseline = static_cast<u8>(baseline_image_[image_off] & ~mask);
    spec.var_name = name;
    spec.location = {VarLocation::Kind::CpuByte, image_off, mask};
    bytes_[layout::kCpuBase + image_off] = spec;
    by_name_[name] = spec.location;
}

void
StateSpec::add_ram_byte(u32 ram_addr, u8 mask, const std::string &name)
{
    ByteSpec spec;
    spec.mask = mask;
    spec.baseline = static_cast<u8>(baseline_ram_[ram_addr] & ~mask);
    spec.var_name = name;
    spec.location = {VarLocation::Kind::RamByte, ram_addr, mask};
    bytes_[layout::kGuestPhysBase + ram_addr] = spec;
    by_name_[name] = spec.location;
}

namespace {

/** The five outputs of the descriptor-load summary for one GDT entry. */
struct CacheExprs
{
    ExprRef base, limit, access, db, fault_class;
};

CacheExprs
instantiate_summary(const symexec::Summary &summary,
                    symexec::VarPool &pool, u32 gdt_base,
                    unsigned gdt_index)
{
    ExprRef bytes[8];
    for (unsigned i = 0; i < 8; ++i) {
        bytes[i] = pool.get("gdt" + std::to_string(gdt_index) + "_b" +
                                std::to_string(i),
                            8);
    }
    (void)gdt_base;
    auto instantiate = [&](const ExprRef &tmpl) {
        return ir::substitute(
            tmpl, [&](const ir::Expr &leaf) -> ExprRef {
                if (leaf.kind() != ir::ExprKind::Var)
                    return nullptr;
                const std::string &n = leaf.name();
                if (n.rfind("desc_byte_", 0) == 0)
                    return bytes[n[10] - '0'];
                return nullptr;
            });
    };
    CacheExprs c;
    c.base = instantiate(summary.outputs[0]);
    c.limit = instantiate(summary.outputs[1]);
    c.access = instantiate(summary.outputs[2]);
    c.db = instantiate(summary.outputs[3]);
    c.fault_class = instantiate(summary.outputs[4]);
    return c;
}

} // namespace

symexec::InitialByteFn
StateSpec::initial_fn(symexec::VarPool &pool) const
{
    // Precompute the summary-derived segment-cache bytes.
    auto prepared = std::make_shared<std::map<u32, ExprRef>>();
    for (const auto &[seg, gdt_index] : summarized_segs_) {
        const CacheExprs c = instantiate_summary(
            *summary_, pool, baseline_cpu_.gdtr.base, gdt_index);
        const ExprRef access_loaded =
            E::bor(c.access, E::constant(8, arch::kDescAccessed));
        for (unsigned i = 0; i < 4; ++i) {
            (*prepared)[layout::seg_addr(seg, layout::kSegBase) + i] =
                E::extract(c.base, 8 * i, 8);
            (*prepared)[layout::seg_addr(seg, layout::kSegLimit) + i] =
                E::extract(c.limit, 8 * i, 8);
        }
        (*prepared)[layout::seg_addr(seg, layout::kSegAccess)] =
            access_loaded;
        (*prepared)[layout::seg_addr(seg, layout::kSegDb)] = c.db;
    }

    // Capture what the lambda needs by value/shared pointer; `this`
    // outlives explorations by construction.
    return [this, &pool, prepared](u32 addr) -> ExprRef {
        auto pit = prepared->find(addr);
        if (pit != prepared->end())
            return pit->second;

        auto sit = bytes_.find(addr);
        if (sit != bytes_.end()) {
            const ByteSpec &spec = sit->second;
            ExprRef var = pool.get(spec.var_name, 8);
            if (spec.mask == 0xff)
                return var;
            return E::bor(E::band(var, E::constant(8, spec.mask)),
                          E::constant(8, spec.baseline));
        }

        // CPU image bytes not in the spec: pinned to baseline.
        if (addr >= layout::kCpuBase &&
            addr < layout::kCpuBase + layout::kCpuStateSize) {
            return E::constant(8,
                               baseline_image_[addr - layout::kCpuBase]);
        }
        // Decoder/semantics scratch: concrete zero.
        if (addr >= layout::kInsnBufBase &&
            addr < layout::kInsnBufBase + 0x100) {
            return E::constant(8, 0);
        }
        if (addr >= layout::kGuestPhysBase &&
            addr < layout::kGuestPhysBase + arch::kPhysMemSize) {
            const u32 ram = addr - layout::kGuestPhysBase;
            // Pinned regions: IDT (per the paper), the descriptor and
            // page tables' non-spec bytes, all code, and the stack
            // page the initializer itself uses.
            const bool pinned =
                (ram >= layout::kPhysIdt &&
                 ram < layout::kPhysIdt + 256 * 8) ||
                (ram >= layout::kPhysPageDir &&
                 ram < layout::kPhysPageTable + 0x1000) ||
                (ram >= layout::kPhysGdt &&
                 ram < layout::kPhysGdt + 8 * layout::kGdtEntries) ||
                (ram >= layout::kPhysHandlerStub &&
                 ram < layout::kPhysHandlerStub + 0x100) ||
                (ram >= layout::kPhysBaselineCode &&
                 ram < layout::kPhysBaselineCode + 0x1000) ||
                (ram >= layout::kPhysTestCode &&
                 ram < layout::kPhysTestCode + 0x1000);
            if (pinned)
                return E::constant(8, baseline_ram_[ram]);
            // Everything else: unused physical memory, symbolic on
            // demand (paper §3.3.1).
            return pool.get(hex_name("mem_", ram), 8);
        }
        return E::constant(8, 0);
    };
}

std::vector<ExprRef>
StateSpec::preconditions(symexec::VarPool &pool) const
{
    std::vector<ExprRef> pre;
    if (!summary_)
        return pre;
    // Each summarized cache must correspond to a loadable descriptor,
    // so the generated initializer's segment reload cannot fault.
    std::map<unsigned, bool> seen;
    for (const auto &[seg, gdt_index] : summarized_segs_) {
        if (seen.count(gdt_index))
            continue;
        seen[gdt_index] = true;
        const CacheExprs c = instantiate_summary(
            *summary_, pool, baseline_cpu_.gdtr.base, gdt_index);
        pre.push_back(E::eq(c.fault_class, E::constant(8, 0)));
        // The stack segment additionally needs writable data; the
        // data segments need "not execute-only code" (the reload
        // gadget's rules).
        const ExprRef is_code = E::extract(c.access, 3, 1);
        const ExprRef rw = E::extract(c.access, 1, 1);
        if (seg == arch::kSs) {
            pre.push_back(E::land(E::lnot(is_code), rw));
        } else {
            pre.push_back(
                E::lnot(E::land(is_code, E::lnot(rw))));
        }
    }
    return pre;
}

solver::Assignment
StateSpec::baseline_assignment(const symexec::VarPool &pool) const
{
    solver::Assignment base;
    for (const ExprRef &var : pool.all()) {
        auto loc = locate(var->name());
        if (!loc)
            continue;
        u8 value = 0;
        if (loc->kind == VarLocation::Kind::CpuByte)
            value = baseline_image_[loc->addr];
        else
            value = baseline_ram_[loc->addr];
        base.set(var->var_id(), value);
    }
    return base;
}

std::optional<VarLocation>
StateSpec::locate(const std::string &var_name) const
{
    auto it = by_name_.find(var_name);
    if (it != by_name_.end())
        return it->second;
    if (var_name.rfind("mem_", 0) == 0) {
        const u32 addr = static_cast<u32>(
            std::strtoul(var_name.c_str() + 4, nullptr, 16));
        return VarLocation{VarLocation::Kind::RamByte, addr, 0xff};
    }
    return std::nullopt;
}

std::string
StateSpec::to_string() const
{
    std::ostringstream os;
    os << "symbolic machine state (Figure 3 analog):\n";
    os << "  gpr[eax..edi]      32 bytes, fully symbolic\n";
    os << "  eflags             mask 0x" << std::hex << kEflagsMask
       << " (status, DF, IOPL, NT, AC)\n";
    os << "  cr0                mask 0x" << kCr0Mask
       << " (MP EM TS NE WP AM; PE/PG pinned)\n";
    os << "  cr4                mask 0x" << kCr4Mask << " (TSD DE)\n"
       << std::dec;
    os << "  sysenter msrs      12 bytes, fully symbolic\n";
    os << "  gdt entries 2..15  112 bytes, fully symbolic\n";
    os << "  pde/pte flags      2048 entries, mask 0x67 each\n";
    os << "  segment caches     ss/ds/es/fs/gs derived from GDT bytes"
          " via the descriptor-load summary\n";
    os << "  unused memory      symbolic on demand, one var per byte\n";
    os << "  pinned             eip, cs, selectors, gdtr/idtr, cr3,"
          " table pointers, IF/TF/VM/RF, PE/PG\n";
    os << "  specified bytes    " << specified_bytes() << "\n";
    return os.str();
}

} // namespace pokeemu::explore
