/**
 * @file
 * The symbolic machine-state specification — the reproduction of the
 * paper's Figure 3.
 *
 * The spec decides, bit by bit, which parts of the machine state the
 * exploration treats as symbolic (paper §3.3.1):
 *  - all general-purpose registers;
 *  - the EFLAGS status bits, DF, IOPL, NT and AC (IF/TF/VM/RF pinned);
 *  - CR0's MP/EM/TS/NE/WP/AM bits (PE and PG pinned to 1: 32-bit
 *    protected mode with paging is the test target);
 *  - CR4's low feature bits;
 *  - the sysenter MSRs;
 *  - the GDT descriptor bytes of the data/stack segments — the hidden
 *    segment caches are *derived* from those bytes through the
 *    descriptor-load summary (paper §3.3.2), with a loadability
 *    precondition so every explored state is reachable by the test
 *    initializer (paper §3.4's motivation);
 *  - the flag bits of every page-table entry (frame pointers pinned);
 *  - all otherwise-unused physical memory, one fresh variable per
 *    byte, created on demand.
 * Everything else (EIP, CS, selectors, table bases, CR3) is pinned to
 * the baseline, exactly like the paper pins pointers and mode bits.
 */
#ifndef POKEEMU_EXPLORE_STATE_SPEC_H
#define POKEEMU_EXPLORE_STATE_SPEC_H

#include <map>
#include <optional>

#include "arch/layout.h"
#include "arch/state.h"
#include "symexec/explorer.h"
#include "symexec/summarize.h"

namespace pokeemu::explore {

/** Where a symbolic variable lives in the real machine. */
struct VarLocation
{
    enum class Kind : u8 {
        CpuByte,  ///< Byte offset into the packed CPU state image.
        RamByte,  ///< Guest physical memory address.
    };
    Kind kind;
    u32 addr;
    u8 mask; ///< Bits of the byte this variable controls.
};

/** See file comment. */
class StateSpec
{
  public:
    /**
     * Build the Figure-3 spec over @p baseline (the post-initializer
     * machine state). @p summary is the descriptor-load summary used
     * to derive segment caches; may be null to inline nothing (the
     * caches are then pinned concrete — used by ablations).
     */
    StateSpec(const arch::CpuState &baseline_cpu,
              const std::vector<u8> &baseline_ram,
              const symexec::Summary *summary);

    /**
     * Initial-contents policy for a PathExplorer. Creates variables in
     * @p pool on demand; deterministic by address.
     */
    symexec::InitialByteFn initial_fn(symexec::VarPool &pool) const;

    /**
     * Preconditions to install in the ExplorerConfig: one
     * "descriptor loadable" constraint per summarized segment cache.
     * Valid after initial_fn(pool) has been requested (the constraints
     * reference pool variables).
     */
    std::vector<ir::ExprRef>
    preconditions(symexec::VarPool &pool) const;

    /** Baseline values for minimization (var id -> baseline bits). */
    solver::Assignment baseline_assignment(
        const symexec::VarPool &pool) const;

    /** Map a variable (by name) to its machine location. */
    std::optional<VarLocation>
    locate(const std::string &var_name) const;

    /** Total specified symbolic bytes (the paper's "~400 bytes"). */
    std::size_t specified_bytes() const { return bytes_.size(); }

    /** Render the spec as a Figure-3-style bit map (for the bench). */
    std::string to_string() const;

    const arch::CpuState &baseline_cpu() const { return baseline_cpu_; }
    const std::vector<u8> &baseline_ram() const { return baseline_ram_; }

  private:
    struct ByteSpec
    {
        u8 mask;      ///< Symbolic bits.
        u8 baseline;  ///< Concrete value of the pinned bits.
        std::string var_name;
        VarLocation location;
    };

    void add_cpu_byte(u32 image_off, u8 mask, const std::string &name);
    void add_ram_byte(u32 ram_addr, u8 mask, const std::string &name);

    arch::CpuState baseline_cpu_;
    std::vector<u8> baseline_ram_;
    std::vector<u8> baseline_image_;
    const symexec::Summary *summary_;
    /** Keyed by IR address. */
    std::map<u32, ByteSpec> bytes_;
    std::map<std::string, VarLocation> by_name_;
    /** Segments whose caches are summary-derived: seg -> GDT index. */
    std::map<unsigned, unsigned> summarized_segs_;
};

} // namespace pokeemu::explore

#endif // POKEEMU_EXPLORE_STATE_SPEC_H
