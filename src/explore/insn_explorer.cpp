#include "explore/insn_explorer.h"

#include "hifi/decoder_ir.h"
#include "support/logging.h"

namespace pokeemu::explore {

namespace layout = arch::layout;
namespace E = ir::E;

InsnSetResult
explore_instruction_set(const InsnSetOptions &options)
{
    const ir::Program decoder = hifi::build_decoder_program();

    symexec::VarPool pool;
    symexec::InitialByteFn initial =
        [&pool, &options](u32 addr) -> ir::ExprRef {
        if (addr >= layout::kInsnBufBase &&
            addr < layout::kInsnBufBase + options.symbolic_bytes) {
            return pool.get(
                "insn_byte_" +
                    std::to_string(addr - layout::kInsnBufBase),
                8);
        }
        // Remaining buffer bytes and scratch: concrete zero
        // (paper §6.1: "the remaining ones were set to zero").
        return E::constant(8, 0);
    };

    symexec::ExplorerConfig config;
    config.max_paths = options.max_paths;
    config.seed = options.seed;

    InsnSetResult result;
    symexec::PathExplorer explorer(decoder, pool, initial, config);
    result.stats = explorer.explore(
        [&](const symexec::PathInfo &info, symexec::SymbolicMemory &) {
            if (info.status != symexec::PathStatus::Halted)
                return;
            if (info.halt_code == hifi::kDecodeInvalid) {
                ++result.invalid_sequences;
                return;
            }
            if (info.halt_code == hifi::kDecodeTooLong) {
                ++result.toolong_sequences;
                return;
            }
            ++result.candidate_sequences;
            const int index = static_cast<int>(info.halt_code);
            if (!result.representatives.count(index)) {
                std::vector<u8> bytes(arch::kMaxInsnLength, 0);
                for (unsigned i = 0; i < options.symbolic_bytes; ++i) {
                    const auto var = pool.get(
                        "insn_byte_" + std::to_string(i), 8);
                    bytes[i] = static_cast<u8>(
                        info.assignment.get(var->var_id()));
                }
                result.representatives[index] = std::move(bytes);
            }
        });

    log_info("instruction-set exploration: ",
             result.candidate_sequences, " candidates, ",
             result.representatives.size(), " unique instructions, ",
             result.stats.paths, " paths");
    return result;
}

} // namespace pokeemu::explore
