/**
 * @file
 * Machine-state-space exploration (paper §3.3): for one decoded test
 * instruction, symbolically execute the Hi-Fi emulator's semantics
 * over the symbolic machine state (StateSpec) and produce one
 * minimized test state per execution path.
 */
#ifndef POKEEMU_EXPLORE_STATE_EXPLORER_H
#define POKEEMU_EXPLORE_STATE_EXPLORER_H

#include <memory>

#include "analysis/dataflow.h"
#include "coverage/coverage.h"
#include "explore/state_spec.h"
#include "hifi/semantics.h"
#include "hifi/sequence.h"
#include "support/fault.h"
#include "symexec/minimize.h"

namespace pokeemu::explore {

struct StateExploreOptions
{
    /** Per-instruction path cap (the paper used 8192). */
    u64 max_paths = 8192;
    u64 max_steps = 1u << 16;
    u64 seed = 1;
    /** Use the descriptor-load summary in segment-load instructions
     *  (paper §3.3.2); disabled by the summarization ablation. */
    bool use_descriptor_summary = true;
    /** Greedy state-difference minimization (paper §3.4); disabled by
     *  the minimization ablation. */
    bool minimize = true;
    /** Hi-Fi far-pointer fetch order (see SemanticsOptions). */
    bool hifi_far_fetch_order = true;
    /** Whole-exploration budget; expiry ends the exploration
     *  gracefully with `stats.deadline_expired` set. */
    support::Deadline deadline{};
    /** Per-solver-query budget (0 = unlimited); over-budget queries
     *  throw FaultError(SolverTimeout). */
    u64 solver_query_ms = 0;
    u64 solver_query_steps = 0;
    /** Chaos hook threaded down to explorer and solver (not owned). */
    support::FaultInjector *injector = nullptr;
    /** Solver-query memo threaded down to the solver (not owned; null
     *  disables memoization). The caller clears it between units of
     *  work (QueryMemo::begin_unit) to keep results layout-independent. */
    solver::QueryMemo *memo = nullptr;
    /** Frontier scheduling policy for the path order under a cap
     *  (coverage accounting itself is always on). Uncovered-edge-first
     *  spends a capped budget on unseen structure before re-splitting
     *  known structure; DefaultOrder restores the pre-coverage seeded
     *  replay order. With an unlimited cap both explore the same path
     *  set — only the order differs. */
    coverage::SchedulePolicy schedule =
        coverage::SchedulePolicy::UncoveredEdgeFirst;
    /** Static branch pruning: dataflow facts are computed per unit in
     *  every mode (Off still uses them to keep memo statistics
     *  invariant); the mode only controls what a decided feasibility
     *  probe does (see analysis::PruneMode). Explored path sets and
     *  schedules are identical across modes. */
    analysis::PruneMode prune = analysis::PruneMode::On;
    /** Explore the optimized semantics program (analysis/optimize.h)
     *  instead of the builder original. Validated behaves like On at
     *  this level. Changes the decision tree, the seeded rng stream
     *  and the concretization choices, so the pipeline's stage-2
     *  exploration keeps this Off to preserve test identity; it is
     *  for standalone explorations (benches, tools, ablations). */
    analysis::OptMode opt = analysis::OptMode::Off;
};

/** One explored path's test state. */
struct ExploredPath
{
    u32 halt_code = 0; ///< hifi::kHaltOk / kHaltStop / exception code.
    /** Satisfying (minimized) assignment over the spec's variables. */
    solver::Assignment assignment;
    u64 steps = 0;
    bool step_limited = false;
};

struct StateExploreResult
{
    std::vector<ExploredPath> paths;
    symexec::ExploreStats stats;
    symexec::MinimizeStats minimize;
    /** The variable pool the assignments are keyed by (id -> name),
     *  needed to map test states back onto machine locations. */
    symexec::VarPool pool;
};

/**
 * Explore @p insn over @p spec. The @p summary must outlive the call
 * and be the same object the spec was built with (or null).
 */
StateExploreResult
explore_instruction(const arch::DecodedInsn &insn, const StateSpec &spec,
                    const symexec::Summary *summary,
                    const StateExploreOptions &options = {});

/**
 * Explore a straight-line multi-instruction sequence (the paper's §7
 * extension): the composed semantics enumerate the joint path space.
 * Halt codes are tagged per hifi/sequence.h.
 */
StateExploreResult
explore_sequence(const std::vector<arch::DecodedInsn> &insns,
                 const StateSpec &spec, const symexec::Summary *summary,
                 const StateExploreOptions &options = {});

} // namespace pokeemu::explore

#endif // POKEEMU_EXPLORE_STATE_EXPLORER_H
