#include "explore/state_explorer.h"

#include "support/logging.h"

namespace pokeemu::explore {

namespace {

StateExploreResult
explore_program(const ir::Program &semantics, const StateSpec &spec,
                const StateExploreOptions &options);

} // namespace

StateExploreResult
explore_instruction(const arch::DecodedInsn &insn, const StateSpec &spec,
                    const symexec::Summary *summary,
                    const StateExploreOptions &options)
{
    hifi::SemanticsOptions sem_options;
    sem_options.hifi_far_fetch_order = options.hifi_far_fetch_order;
    sem_options.descriptor_summary =
        options.use_descriptor_summary ? summary : nullptr;
    sem_options.opt = options.opt;
    const ir::Program semantics =
        hifi::build_semantics(insn, sem_options);
    StateExploreResult result = explore_program(semantics, spec,
                                                options);
    log_debug("explored ", insn.desc->mnemonic, ": ",
              result.stats.paths, " paths, complete=",
              result.stats.complete);
    return result;
}

StateExploreResult
explore_sequence(const std::vector<arch::DecodedInsn> &insns,
                 const StateSpec &spec, const symexec::Summary *summary,
                 const StateExploreOptions &options)
{
    hifi::SemanticsOptions sem_options;
    sem_options.hifi_far_fetch_order = options.hifi_far_fetch_order;
    sem_options.descriptor_summary =
        options.use_descriptor_summary ? summary : nullptr;
    sem_options.opt = options.opt;
    const ir::Program semantics =
        hifi::build_sequence_semantics(insns, sem_options);
    return explore_program(semantics, spec, options);
}

namespace {

StateExploreResult
explore_program(const ir::Program &semantics, const StateSpec &spec,
                const StateExploreOptions &options)
{

    StateExploreResult result;
    symexec::VarPool &pool = result.pool;
    // Fresh per exploration: coverage (and therefore scheduling) is a
    // pure function of (program, options) — the property the sharded
    // campaign's byte-identical merge rests on.
    coverage::CoverageMap cov(semantics);
    symexec::ExplorerConfig config;
    config.max_paths = options.max_paths;
    config.max_steps = options.max_steps;
    config.seed = options.seed;
    config.preconditions = spec.preconditions(pool);
    config.deadline = options.deadline;
    config.solver_query_ms = options.solver_query_ms;
    config.solver_query_steps = options.solver_query_steps;
    config.injector = options.injector;
    config.memo = options.memo;
    config.coverage = &cov;
    config.policy = coverage::frontier_policy(options.schedule);
    config.prune = options.prune;

    // Dataflow facts over an isolated variable pool, mirroring the
    // main pool's factory-call order. The spec names variables by
    // machine location, so the analysis sees the same preconditions
    // and initial bytes up to a variable-id bijection — decisions are
    // per-statement and transfer. Using `pool` itself would add
    // analysis-only variables to it and perturb every assignment.
    symexec::VarPool analysis_pool;
    analysis::DataflowConfig df_config;
    df_config.assumes = spec.preconditions(analysis_pool);
    df_config.initial_byte = spec.initial_fn(analysis_pool);
    semantics.validate(); // Cfg::build requires bound labels.
    const analysis::Cfg cfg = analysis::Cfg::build(semantics);
    const analysis::ProgramFacts facts =
        analysis::analyze_program(semantics, cfg, df_config);
    config.facts = &facts;

    // PathCoverFirst needs the static path-structure scaffold
    // (dominators, minimal path cover, facts-pruned path counts) on
    // the coverage map. Built from the same facts the explorer prunes
    // with, so "pruned" and "infeasible" agree; a deterministic
    // function of (program, options) like everything else here.
    if (options.schedule == coverage::SchedulePolicy::PathCoverFirst) {
        cov.set_path_structure(
            std::make_unique<const analysis::PathStructure>(
                analysis::PathStructure::build(semantics, cov.cfg(),
                                               &facts)));
    }

    symexec::PathExplorer explorer(semantics, pool,
                                   spec.initial_fn(pool), config);

    result.stats = explorer.explore(
        [&](const symexec::PathInfo &info, symexec::SymbolicMemory &) {
            ExploredPath path;
            path.halt_code = info.halt_code;
            path.steps = info.steps;
            path.step_limited =
                info.status == symexec::PathStatus::StepLimit;
            path.assignment = info.assignment;
            if (options.minimize) {
                // Extend the baseline with any variables created since
                // (on-demand memory bytes).
                solver::Assignment base =
                    spec.baseline_assignment(pool);
                const auto stats = symexec::minimize_against_baseline(
                    path.assignment, base, info.path_condition, pool);
                result.minimize.bits_different_before +=
                    stats.bits_different_before;
                result.minimize.bits_different_after +=
                    stats.bits_different_after;
                result.minimize.bits_tried += stats.bits_tried;
            }
            result.paths.push_back(std::move(path));
        });

    return result;
}

} // namespace

} // namespace pokeemu::explore
