/**
 * @file
 * Instruction-set exploration (paper §3.2): symbolically execute the
 * Hi-Fi emulator's decoder with the first bytes of the instruction
 * buffer symbolic, enumerate the candidate byte sequences, and keep
 * one representative per per-instruction code (table entry).
 */
#ifndef POKEEMU_EXPLORE_INSN_EXPLORER_H
#define POKEEMU_EXPLORE_INSN_EXPLORER_H

#include <map>

#include "arch/decoder.h"
#include "symexec/explorer.h"

namespace pokeemu::explore {

struct InsnSetOptions
{
    /** How many leading buffer bytes are symbolic (paper: 3). */
    unsigned symbolic_bytes = 3;
    u64 max_paths = 1u << 20;
    u64 seed = 1;
};

struct InsnSetResult
{
    /** Decoder paths that selected per-instruction code. */
    u64 candidate_sequences = 0;
    /** Paths rejected as #UD / too-long. */
    u64 invalid_sequences = 0;
    u64 toolong_sequences = 0;
    /** One representative byte sequence per selected table entry. */
    std::map<int, std::vector<u8>> representatives;
    symexec::ExploreStats stats;
};

/** Run the exploration; see file comment. */
InsnSetResult explore_instruction_set(const InsnSetOptions &options = {});

} // namespace pokeemu::explore

#endif // POKEEMU_EXPLORE_INSN_EXPLORER_H
