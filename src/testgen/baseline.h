/**
 * @file
 * Baseline-state initialization (paper §4.1).
 *
 * The baseline is "a minimalist execution environment necessary for
 * successfully running all possible tests": 32-bit protected mode with
 * paging enabled, a flat GDT, a 4-GiB-to-4-MiB linearly repeating page
 * table, and an IDT whose handlers halt. Following the paper, the
 * descriptor tables and page tables are part of the bootable image
 * (data), and a short baseline-initializer code sequence loads them
 * and enables paging; the test program is appended at
 * layout::kPhysTestCode.
 *
 * Layout choices mirror the paper's example (Figure 5): the stack
 * segment is GDT entry 10 (selector 0x50), so generated tests that
 * poke "gdt 10" look exactly like the paper's.
 */
#ifndef POKEEMU_TESTGEN_BASELINE_H
#define POKEEMU_TESTGEN_BASELINE_H

#include <vector>

#include "arch/layout.h"
#include "arch/state.h"

namespace pokeemu::testgen {

/// @name Baseline selectors.
/// @{
constexpr u16 kCodeSelector = 0x08; ///< GDT entry 1.
constexpr u16 kDataSelector = 0x10; ///< GDT entry 2.
constexpr u16 kStackSelector = 0x50; ///< GDT entry 10 (as in Fig. 5).
/// @}

/** EFLAGS established by the baseline initializer. */
constexpr u32 kBaselineEflags = 0x202; // IF=1 + fixed bit.

/**
 * The bootable memory image: GDT/IDT/page tables as data, the halting
 * handler stub, the baseline initializer code, and a lone hlt at the
 * test-code address (tests overwrite it).
 */
std::vector<u8> make_baseline_ram();

/** The immutable baseline image template (no copy). */
const std::vector<u8> &baseline_ram_template();

/**
 * CPU state as the boot loader leaves it: protected mode, flat
 * segments, paging off, EIP at the baseline initializer.
 */
arch::CpuState make_reset_state();

/**
 * The machine state after the baseline initializer has run, computed
 * once by executing the initializer on the hardware model. This is
 * the concrete state the exploration stage uses (paper §3.3.1) and
 * the state every backend must reach identically (asserted by tests).
 */
const arch::CpuState &baseline_cpu_state();

/** Physical memory after the baseline initializer has run. */
const std::vector<u8> &baseline_ram_after_init();

/**
 * Build a full bootable image with @p test_program installed at
 * layout::kPhysTestCode.
 */
std::vector<u8> make_test_image(const std::vector<u8> &test_program);

} // namespace pokeemu::testgen

#endif // POKEEMU_TESTGEN_BASELINE_H
