#include "testgen/baseline.h"

#include "arch/assembler.h"
#include "arch/descriptors.h"
#include "arch/paging.h"
#include "backend/direct_cpu.h"

namespace pokeemu::testgen {

namespace layout = arch::layout;

namespace {

/** Scratch addresses for the lgdt/lidt pseudo-descriptors. */
constexpr u32 kGdtPtrAddr = 0x7f00;
constexpr u32 kIdtPtrAddr = 0x7f08;

void
put32(std::vector<u8> &ram, u32 addr, u32 v)
{
    ram[addr] = static_cast<u8>(v);
    ram[addr + 1] = static_cast<u8>(v >> 8);
    ram[addr + 2] = static_cast<u8>(v >> 16);
    ram[addr + 3] = static_cast<u8>(v >> 24);
}

void
put16(std::vector<u8> &ram, u32 addr, u16 v)
{
    ram[addr] = static_cast<u8>(v);
    ram[addr + 1] = static_cast<u8>(v >> 8);
}

} // namespace

namespace {

std::vector<u8> build_baseline_ram();

} // namespace

const std::vector<u8> &
baseline_ram_template()
{
    // The image is immutable; build once (tests run by the thousand
    // and a rebuild per test dominates runtime).
    static const std::vector<u8> image = build_baseline_ram();
    return image;
}

std::vector<u8>
make_baseline_ram()
{
    return baseline_ram_template();
}

namespace {

std::vector<u8>
build_baseline_ram()
{
    std::vector<u8> ram(arch::kPhysMemSize, 0);

    // Page directory: every PDE points at the single page table, so
    // the 4-GiB virtual space maps onto the 4-MiB physical memory,
    // repeating every 4 MiB (paper §4.1).
    for (u32 i = 0; i < 1024; ++i) {
        put32(ram, layout::kPhysPageDir + 4 * i,
              layout::kPhysPageTable | arch::kPtePresent |
                  arch::kPteRw | arch::kPteUser);
    }
    // Page table: linear map of the 4-MiB physical memory, all pages
    // readable/writable and user-accessible.
    for (u32 i = 0; i < 1024; ++i) {
        put32(ram, layout::kPhysPageTable + 4 * i,
              (i << 12) | arch::kPtePresent | arch::kPteRw |
                  arch::kPteUser);
    }

    // IDT: 256 interrupt gates to the halting handler stub. Delivery
    // is abstracted identically on every backend (see DESIGN.md), but
    // the table contents are real data that tests may read or clobber.
    for (u32 v = 0; v < 256; ++v) {
        const u32 e = layout::kPhysIdt + 8 * v;
        put16(ram, e, static_cast<u16>(layout::kPhysHandlerStub));
        put16(ram, e + 2, kCodeSelector);
        ram[e + 4] = 0;
        ram[e + 5] = 0x8e; // Present, DPL0, 32-bit interrupt gate.
        put16(ram, e + 6,
              static_cast<u16>(layout::kPhysHandlerStub >> 16));
    }

    // GDT: null, flat code (1), flat data (2), flat stack data (10).
    // Accessed bits are pre-set so that baseline segment loads do not
    // modify the table (keeps the Lo-Fi accessed-flag bug visible only
    // on test-created descriptors, not as whole-run background noise).
    auto put_desc = [&](unsigned index, u8 access) {
        arch::Descriptor d = arch::make_flat_descriptor(access);
        arch::encode_descriptor(d, &ram[layout::kPhysGdt + 8 * index]);
    };
    put_desc(1, 0x9b);  // code, readable, accessed.
    put_desc(2, 0x93);  // data, writable, accessed.
    put_desc(10, 0x93); // stack data, writable, accessed.

    // lgdt/lidt operands.
    put16(ram, kGdtPtrAddr, layout::kGdtEntries * 8 - 1);
    put32(ram, kGdtPtrAddr + 2, layout::kPhysGdt);
    put16(ram, kIdtPtrAddr, 256 * 8 - 1);
    put32(ram, kIdtPtrAddr + 2, layout::kPhysIdt);

    // Halting handler stub.
    ram[layout::kPhysHandlerStub] = 0xf4; // hlt

    // Baseline initializer code.
    arch::Assembler a(layout::kPhysBaselineCode);
    a.lgdt(kGdtPtrAddr);
    a.lidt(kIdtPtrAddr);
    a.mov_r32_imm32(arch::kEax, layout::kPhysPageDir);
    a.mov_cr_r32(3, arch::kEax);
    a.mov_r32_imm32(arch::kEax, arch::kCr0Pe | arch::kCr0Pg);
    a.mov_cr_r32(0, arch::kEax);
    a.mov_r32_imm32(arch::kEax, kDataSelector);
    a.mov_sreg_r16(arch::kDs, arch::kEax);
    a.mov_sreg_r16(arch::kEs, arch::kEax);
    a.mov_sreg_r16(arch::kFs, arch::kEax);
    a.mov_sreg_r16(arch::kGs, arch::kEax);
    a.mov_r32_imm32(arch::kEax, kStackSelector);
    a.mov_sreg_r16(arch::kSs, arch::kEax);
    a.mov_r32_imm32(arch::kEsp, layout::kBaselineEsp);
    a.push_imm32(kBaselineEflags);
    a.popfd();
    // Scrub the scratch register so the baseline state is neutral.
    a.mov_r32_imm32(arch::kEax, 0);
    a.jmp_abs(layout::kPhysTestCode);
    const std::vector<u8> &code = a.bytes();
    std::copy(code.begin(), code.end(),
              ram.begin() + layout::kPhysBaselineCode);

    // Default test program: halt immediately.
    ram[layout::kPhysTestCode] = 0xf4;
    return ram;
}

} // namespace

arch::CpuState
make_reset_state()
{
    arch::CpuState c;
    c.eip = layout::kPhysBaselineCode;
    c.eflags = arch::kFlagFixed1;
    c.cr0 = arch::kCr0Pe;
    c.gpr[arch::kEsp] = 0x7000;

    const arch::Descriptor code = arch::make_flat_descriptor(0x9b);
    const arch::Descriptor data = arch::make_flat_descriptor(0x93);
    c.seg[arch::kCs] = arch::make_segment_reg(kCodeSelector, code);
    for (unsigned s : {arch::kDs, arch::kEs, arch::kSs, arch::kFs,
                       arch::kGs}) {
        c.seg[s] = arch::make_segment_reg(kDataSelector, data);
    }
    return c;
}

namespace {

struct BaselineResult
{
    arch::CpuState cpu;
    std::vector<u8> ram;
};

const BaselineResult &
baseline_result()
{
    static const BaselineResult result = [] {
        backend::DirectCpu hw(backend::hardware_behavior());
        hw.reset(make_reset_state(), make_baseline_ram());
        // Run the initializer: it ends by jumping to the default test
        // program, whose hlt stops execution.
        const auto stop = hw.run(1024);
        if (stop != backend::StopReason::Halted)
            // Construction-time invariant shared by every unit of
            // work, not attributable to one. lint: allow-panic
            panic("baseline initializer did not halt cleanly");
        BaselineResult r{hw.cpu(), hw.snapshot().ram};
        // The state we hand to exploration is the state at the test
        // program's entry: un-halt and rewind EIP onto the test code.
        r.cpu.halted = 0;
        r.cpu.eip = layout::kPhysTestCode;
        return r;
    }();
    return result;
}

} // namespace

const arch::CpuState &
baseline_cpu_state()
{
    return baseline_result().cpu;
}

const std::vector<u8> &
baseline_ram_after_init()
{
    return baseline_result().ram;
}

std::vector<u8>
make_test_image(const std::vector<u8> &test_program)
{
    std::vector<u8> ram = make_baseline_ram();
    assert(layout::kPhysTestCode + test_program.size() <= ram.size());
    std::copy(test_program.begin(), test_program.end(),
              ram.begin() + layout::kPhysTestCode);
    return ram;
}

} // namespace pokeemu::testgen
