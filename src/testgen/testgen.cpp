#include "testgen/testgen.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <sstream>

#include "arch/assembler.h"

namespace pokeemu::testgen {

namespace layout = arch::layout;

namespace {

/**
 * One initializer gadget: an emitter plus dependency metadata
 * (paper §4.2: "an assembly-language instruction sequence ... plus
 * additional constraints specifying its prerequisites and side
 * effects").
 */
struct Gadget
{
    std::string name;
    /** Tags this gadget must run after (dependency edges by tag). */
    std::vector<std::string> after;
    /** Tag(s) this gadget provides. */
    std::string tag;
    std::function<void(arch::Assembler &, std::vector<std::string> &)>
        emit;
};

/** Kahn topological sort; returns false on a cycle. */
bool
topo_sort(std::vector<Gadget> &gadgets)
{
    std::map<std::string, std::vector<std::size_t>> by_tag;
    for (std::size_t i = 0; i < gadgets.size(); ++i)
        by_tag[gadgets[i].tag].push_back(i);

    const std::size_t n = gadgets.size();
    std::vector<std::set<std::size_t>> edges(n); // pred -> succ
    std::vector<std::size_t> indegree(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        for (const std::string &dep : gadgets[i].after) {
            auto it = by_tag.find(dep);
            if (it == by_tag.end())
                continue;
            for (std::size_t p : it->second) {
                if (p != i && edges[p].insert(i).second)
                    ++indegree[i];
            }
        }
    }
    // Stable Kahn: lowest original index first, preserving the
    // natural emission order among independent gadgets.
    std::vector<std::size_t> order;
    std::set<std::size_t> ready;
    for (std::size_t i = 0; i < n; ++i) {
        if (indegree[i] == 0)
            ready.insert(i);
    }
    while (!ready.empty()) {
        const std::size_t i = *ready.begin();
        ready.erase(ready.begin());
        order.push_back(i);
        for (std::size_t s : edges[i]) {
            if (--indegree[s] == 0)
                ready.insert(s);
        }
    }
    if (order.size() != n)
        return false;
    std::vector<Gadget> sorted;
    sorted.reserve(n);
    for (std::size_t i : order)
        sorted.push_back(std::move(gadgets[i]));
    gadgets = std::move(sorted);
    return true;
}

std::string
hex32(u32 v)
{
    char buf[16];
    std::snprintf(buf, sizeof buf, "0x%08x", v);
    return buf;
}

} // namespace

std::string
TestProgram::to_string() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < listing.size(); ++i)
        os << (i + 1) << "  " << listing[i] << "\n";
    return os.str();
}

GenResult
generate_test_program(const arch::DecodedInsn &insn,
                      const solver::Assignment &assignment,
                      const explore::StateSpec &spec,
                      const symexec::VarPool &pool)
{
    return generate_sequence_test_program({insn}, assignment, spec,
                                          pool);
}

GenResult
generate_sequence_test_program(
    const std::vector<arch::DecodedInsn> &insns,
    const solver::Assignment &assignment,
    const explore::StateSpec &spec, const symexec::VarPool &pool)
{
    const arch::CpuState &base_cpu = spec.baseline_cpu();
    const std::vector<u8> &base_ram = spec.baseline_ram();

    // ------------------------------------------------------------
    // Resolve the assignment into byte-level differences.
    // ------------------------------------------------------------
    u8 base_image[layout::kCpuStateSize];
    arch::pack_cpu_state(base_cpu, base_image);

    std::map<u32, u8> cpu_bytes; // image offset -> test value.
    std::map<u32, u8> ram_bytes; // physical address -> test value.
    for (const ir::ExprRef &var : pool.all()) {
        const auto loc = spec.locate(var->name());
        if (!loc)
            continue;
        const u8 raw = static_cast<u8>(assignment.get(var->var_id()));
        if (loc->kind == explore::VarLocation::Kind::CpuByte) {
            const u8 value =
                static_cast<u8>((raw & loc->mask) |
                                (base_image[loc->addr] & ~loc->mask));
            if (value != base_image[loc->addr])
                cpu_bytes[loc->addr] = value;
        } else {
            const u8 value =
                static_cast<u8>((raw & loc->mask) |
                                (base_ram[loc->addr] & ~loc->mask));
            if (value != base_ram[loc->addr])
                ram_bytes[loc->addr] = value;
        }
    }

    // Reassemble 32-bit CPU fields from (possibly partial) byte diffs.
    auto field32 = [&](u32 off, bool &differs) -> u32 {
        u32 v = 0;
        differs = false;
        for (unsigned i = 0; i < 4; ++i) {
            auto it = cpu_bytes.find(off + i);
            const u8 byte =
                it != cpu_bytes.end() ? it->second : base_image[off + i];
            differs |= it != cpu_bytes.end();
            v |= static_cast<u32>(byte) << (8 * i);
        }
        return v;
    };

    // ------------------------------------------------------------
    // Instantiate gadgets (paper §4.2).
    // ------------------------------------------------------------
    std::vector<Gadget> gadgets;
    bool eax_clobbered = false;
    bool ecx_clobbered = false;

    // EFLAGS: must run while the baseline stack is intact.
    {
        bool differs;
        const u32 value = field32(layout::kOffEflags, differs);
        if (differs) {
            gadgets.push_back(
                {"eflags",
                 {},
                 "flags",
                 [value](arch::Assembler &a,
                         std::vector<std::string> &lst) {
                     a.push_imm32(value);
                     a.popfd();
                     lst.push_back("push $" + hex32(value) +
                                   " ; popfd        // eflags");
                 }});
        }
    }

    // Plain memory writes (not page tables): need the baseline DS and
    // page mapping, so they precede segment reloads and PTE pokes.
    std::map<u32, u8> pte_writes;
    std::set<unsigned> touched_gdt_entries;
    for (const auto &[addr, value] : ram_bytes) {
        const bool is_pt =
            addr >= layout::kPhysPageDir &&
            addr < layout::kPhysPageTable + 0x1000;
        if (is_pt) {
            pte_writes[addr] = value;
            continue;
        }
        if (addr >= layout::kPhysGdt &&
            addr < layout::kPhysGdt + 8 * layout::kGdtEntries) {
            touched_gdt_entries.insert((addr - layout::kPhysGdt) / 8);
        }
        gadgets.push_back(
            {"mem write " + hex32(addr),
             {"flags"},
             "mem",
             [addr = addr, value = value](
                 arch::Assembler &a, std::vector<std::string> &lst) {
                 a.mov_mem_imm8(addr, value);
                 char buf[64];
                 std::snprintf(buf, sizeof buf, "movb $0x%02x, %s",
                               value, hex32(addr).c_str());
                 lst.push_back(buf);
             }});
    }

    // MSR writes: clobber ECX and EAX.
    {
        const struct { u32 off; u32 index; const char *name; } msrs[] = {
            {layout::kOffMsrSysenterCs, 0x174, "sysenter_cs"},
            {layout::kOffMsrSysenterEsp, 0x175, "sysenter_esp"},
            {layout::kOffMsrSysenterEip, 0x176, "sysenter_eip"},
        };
        for (const auto &m : msrs) {
            bool differs;
            const u32 value = field32(m.off, differs);
            if (!differs)
                continue;
            eax_clobbered = true;
            ecx_clobbered = true;
            const u32 index = m.index;
            gadgets.push_back(
                {std::string("msr ") + m.name,
                 {"flags", "mem"},
                 "msr",
                 [index, value](arch::Assembler &a,
                                std::vector<std::string> &lst) {
                     a.mov_r32_imm32(arch::kEcx, index);
                     a.mov_r32_imm32(arch::kEax, value);
                     a.wrmsr();
                     lst.push_back("wrmsr " + hex32(index) + " <- " +
                                   hex32(value));
                 }});
        }
    }

    // Control registers (CR0/CR4): clobber EAX.
    {
        const struct { u32 off; unsigned crn; } crs[] = {
            {layout::kOffCr0, 0},
            {layout::kOffCr4, 4},
        };
        for (const auto &cr : crs) {
            bool differs;
            const u32 value = field32(cr.off, differs);
            if (!differs)
                continue;
            eax_clobbered = true;
            const unsigned crn = cr.crn;
            gadgets.push_back(
                {"cr" + std::to_string(crn),
                 {"flags", "mem"},
                 "cr",
                 [crn, value](arch::Assembler &a,
                              std::vector<std::string> &lst) {
                     a.mov_r32_imm32(arch::kEax, value);
                     a.mov_cr_r32(crn, arch::kEax);
                     lst.push_back("mov cr" + std::to_string(crn) +
                                   " <- " + hex32(value));
                 }});
        }
    }

    // Segment reloads: any segment whose backing GDT entry was edited
    // must be reloaded so the hidden cache picks up the new descriptor
    // (the paper's "lines 2 and 3 require lines 4 and 5").
    {
        std::set<unsigned> reload;
        for (unsigned s : {arch::kDs, arch::kEs, arch::kFs, arch::kGs,
                           arch::kSs}) {
            const unsigned entry = base_cpu.seg[s].selector >> 3;
            if (touched_gdt_entries.count(entry))
                reload.insert(s);
        }
        for (unsigned s : reload) {
            eax_clobbered = true;
            const u16 selector = base_cpu.seg[s].selector;
            const auto seg = static_cast<arch::Seg>(s);
            gadgets.push_back(
                {std::string("reload ") + arch::seg_name(s),
                 {"mem", "flags", "pte"},
                 "sreg",
                 [selector, seg](arch::Assembler &a,
                                 std::vector<std::string> &lst) {
                     a.mov_r32_imm32(arch::kEax, selector);
                     a.mov_sreg_r16(seg, arch::kEax);
                     lst.push_back(
                         std::string("mov ") + arch::seg_name(seg) +
                         ", " + hex32(selector) +
                         "   // force descriptor reload");
                 }});
        }
    }

    // Page-table pokes: after everything that relies on the baseline
    // mapping (memory writes, the eflags stack push) but before the
    // segment reloads — the pokes are DS-relative, so they must run
    // while DS still has the baseline flat descriptor, and a reload
    // reads its descriptor physically (never through paging), so it
    // cannot be hurt by a poke that unmaps low memory. Descending
    // address order, because the pokes themselves go through the
    // identity mapping: page-table bytes (0x2xxx) must land before a
    // page-directory byte (0x1xxx) can unmap the low 4 MiB, and PDE0's
    // present-bit byte (the lowest address of all) must land last.
    for (auto it = pte_writes.rbegin(); it != pte_writes.rend(); ++it) {
        const auto &[addr, value] = *it;
        gadgets.push_back(
            {"pte write " + hex32(addr),
             {"flags", "mem"},
             "pte",
             [addr = addr, value = value](arch::Assembler &a,
                           std::vector<std::string> &lst) {
                 a.mov_mem_imm8(addr, value);
                 char buf[64];
                 std::snprintf(buf, sizeof buf, "movb $0x%02x, %s (pte)",
                               value, hex32(addr).c_str());
                 lst.push_back(buf);
             }});
    }

    // General-purpose registers: everything but EAX, then EAX last
    // (the paper's "restore killed %eax").
    {
        for (unsigned r = 0; r < arch::kNumGprs; ++r) {
            if (r == arch::kEax)
                continue;
            bool differs;
            const u32 value = field32(layout::kOffGpr + 4 * r, differs);
            const bool clobbered = r == arch::kEcx && ecx_clobbered;
            if (!differs && !clobbered)
                continue;
            const auto reg = static_cast<arch::Gpr>(r);
            gadgets.push_back(
                {std::string("set ") + arch::gpr_name(r),
                 {"flags", "mem", "msr", "cr", "sreg", "pte"},
                 "gpr",
                 [reg, value](arch::Assembler &a,
                              std::vector<std::string> &lst) {
                     a.mov_r32_imm32(reg, value);
                     lst.push_back(std::string("mov ") +
                                   arch::gpr_name(reg) + ", " +
                                   hex32(value));
                 }});
        }
        bool differs;
        const u32 eax = field32(layout::kOffGpr + 4 * arch::kEax,
                                differs);
        if (differs || eax_clobbered) {
            gadgets.push_back(
                {"set eax",
                 {"flags", "mem", "msr", "cr", "sreg", "pte", "gpr"},
                 "eax",
                 [eax](arch::Assembler &a,
                       std::vector<std::string> &lst) {
                     a.mov_r32_imm32(arch::kEax, eax);
                     lst.push_back("mov eax, " + hex32(eax) +
                                   "   // restore killed eax");
                 }});
        }
    }

    GenResult result;
    if (!topo_sort(gadgets)) {
        result.status = GenStatus::CyclicDependency;
        return result;
    }

    // ------------------------------------------------------------
    // Assemble: gadgets, then the test instruction, then hlt.
    // ------------------------------------------------------------
    arch::Assembler a(layout::kPhysTestCode);
    for (const Gadget &g : gadgets)
        g.emit(a, result.program.listing);
    result.program.gadget_count = static_cast<u32>(gadgets.size());
    result.program.test_insn_offset =
        a.pc() - layout::kPhysTestCode;
    for (const arch::DecodedInsn &insn : insns) {
        std::vector<u8> bytes(insn.bytes, insn.bytes + insn.length);
        a.append(bytes);
        result.program.listing.push_back(
            arch::to_string(insn) + "   // the test instruction");
    }
    a.hlt();
    result.program.listing.push_back("hlt   // the end");
    result.program.code = a.bytes();

    if (result.program.code.size() > kMaxTestProgramBytes) {
        result.status = GenStatus::TooLarge;
        return result;
    }
    return result;
}

} // namespace pokeemu::testgen
