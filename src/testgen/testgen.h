/**
 * @file
 * Test-program generation (paper §4.2).
 *
 * A test program = baseline image + test-state initializer + test
 * instruction + hlt. The initializer is assembled from *gadgets*, each
 * setting one state component, with declared prerequisites and side
 * effects resolved by a dependency graph and topological sort — the
 * paper's Figure 5 example (set ESP, poke two GDT bytes, force an SS
 * reload, restore EAX, push, hlt) is reproduced shape-for-shape.
 */
#ifndef POKEEMU_TESTGEN_TESTGEN_H
#define POKEEMU_TESTGEN_TESTGEN_H

#include "arch/decoder.h"
#include "explore/state_spec.h"
#include "testgen/baseline.h"

namespace pokeemu::testgen {

/**
 * Hard cap on a generated test program's size: the initializer, test
 * instruction(s) and hlt must fit the test-code page with room for the
 * halting-handler return path. Generation reports TooLarge beyond it;
 * the runner rejects (quarantinable FaultError, not UB) anything that
 * would overrun the baseline image.
 */
constexpr u32 kMaxTestProgramBytes = 0xf00;

/** A complete generated test program. */
struct TestProgram
{
    /** Initializer + test instruction + hlt, placed at kPhysTestCode. */
    std::vector<u8> code;
    /** Figure-5-style listing, one line per emitted element. */
    std::vector<std::string> listing;
    /** Offset of the test instruction within code. */
    u32 test_insn_offset = 0;
    /** Number of state-initializer gadgets emitted. */
    u32 gadget_count = 0;

    std::string to_string() const;
};

/** Why generation can fail (paper §4.2: "we abort and ask for user
 *  assistance"; state-difference minimization makes this rare). */
enum class GenStatus : u8 {
    Ok,
    TooLarge,       ///< Initializer exceeds the test-code page.
    CyclicDependency,
};

struct GenResult
{
    GenStatus status = GenStatus::Ok;
    TestProgram program;
};

/**
 * Build the test program realizing @p assignment (a test state over
 * @p spec's variables) and executing @p insn.
 */
GenResult generate_test_program(const arch::DecodedInsn &insn,
                                const solver::Assignment &assignment,
                                const explore::StateSpec &spec,
                                const symexec::VarPool &pool);

/** Sequence form (paper §7 extension): all instructions are emitted
 *  back to back after the initializer. */
GenResult
generate_sequence_test_program(const std::vector<arch::DecodedInsn> &insns,
                               const solver::Assignment &assignment,
                               const explore::StateSpec &spec,
                               const symexec::VarPool &pool);

} // namespace pokeemu::testgen

#endif // POKEEMU_TESTGEN_TESTGEN_H
