#include "symexec/explorer.h"

#include "analysis/optimize.h"
#include "analysis/verifier.h"

namespace pokeemu::symexec {

using ir::ExprRef;
using ir::StmtKind;
namespace E = ir::E;

namespace {

/** Edge key for the pre-first-branch segment. */
constexpr u32 kNoEdgeNode = ~u32{0};

} // namespace

PathExplorer::PathExplorer(const ir::Program &program, VarPool &pool,
                           InitialByteFn initial, ExplorerConfig config)
    : opt_storage_(config.opt == analysis::OptMode::Off
                       ? ir::Program{}
                       : analysis::optimize_program(program).program),
      program_(config.opt == analysis::OptMode::Off ? program
                                                    : opt_storage_),
      pool_(pool), initial_(std::move(initial)), config_(config),
      rng_(config.seed)
{
    solver_.set_query_budget(config_.solver_query_ms,
                             config_.solver_query_steps);
    solver_.set_fault_injector(config_.injector);
    solver_.set_memo(config_.memo);
    assert(config_.policy == nullptr || config_.coverage != nullptr);
    // facts/coverage index statements of the program the caller
    // passed; after an in-explorer optimization those indices would be
    // meaningless (see ExplorerConfig::opt).
    assert(config_.opt == analysis::OptMode::Off ||
           (config_.facts == nullptr && config_.coverage == nullptr));
    program_.validate();
#ifndef NDEBUG
    // Fail fast on malformed programs instead of producing garbage
    // paths; this build keeps assertions on, so the full verifier runs
    // here too (it is cheap next to path exploration).
    const analysis::Report report = analysis::Verifier::check(program_);
    if (report.has_errors()) {
        panic("explorer: program '" + program_.name +
              "' failed verification:\n" + report.to_string());
    }
#endif
}

ExprRef
PathExplorer::resolve(const ExprRef &expr, const RunState &run)
{
    return ir::substitute(expr, [&](const ir::Expr &leaf) -> ExprRef {
        if (leaf.kind() == ir::ExprKind::Temp) {
            const ExprRef &v = run.temps[leaf.temp_id()];
            if (!v)
                panic("explorer: use of unassigned temp");
            return v;
        }
        return nullptr;
    });
}

void
PathExplorer::refresh_model()
{
    for (const ExprRef &v : pool_.all())
        cur_model_.set(v->var_id(), solver_.model_value(v));
}

solver::CheckResult
PathExplorer::check(const RunState &run, const ExprRef &extra)
{
    std::vector<ExprRef> conds = run.pc;
    conds.push_back(extra);
    const auto result = solver_.check(conds);
    if (result == solver::CheckResult::Sat)
        refresh_model();
    return result;
}

solver::CheckResult
PathExplorer::probe(const RunState &run, const ExprRef &extra,
                    bool decided)
{
    if (!decided)
        return check(run, extra);
    switch (config_.prune) {
      case analysis::PruneMode::Off: {
        solver_.set_memo(nullptr);
        const auto result = check(run, extra);
        solver_.set_memo(config_.memo);
        return result;
      }
      case analysis::PruneMode::On:
        ++avoided_;
        return solver::CheckResult::Unsat;
      case analysis::PruneMode::CrossCheck:
        ++avoided_;
        side_check(run, extra);
        return solver::CheckResult::Unsat;
    }
    return solver::CheckResult::Unsat; // Unreachable.
}

void
PathExplorer::side_check(const RunState &run, const ExprRef &extra)
{
    if (!side_solver_) {
        side_solver_ = std::make_unique<solver::Solver>();
        side_solver_->set_query_budget(config_.solver_query_ms,
                                       config_.solver_query_steps);
    }
    std::vector<ExprRef> conds = run.pc;
    conds.push_back(extra);
    ++crosscheck_queries_;
    if (side_solver_->check(conds) != solver::CheckResult::Unsat) {
        panic("explorer: pruning cross-check failed on '" +
              program_.name +
              "': a statically-decided infeasible probe is satisfiable");
    }
}

bool
PathExplorer::constrain(RunState &run, const ExprRef &cond)
{
    if (cond->is_const())
        return cond->value() != 0;
    if (cur_model_.eval(cond) != 0) {
        run.pc.push_back(cond);
        return true;
    }
    if (check(run, cond) == solver::CheckResult::Unsat)
        return false;
    run.pc.push_back(cond);
    return true;
}

std::optional<bool>
PathExplorer::take_branch(RunState &run, const ExprRef &cond,
                          const BranchTargets *targets,
                          analysis::Decision decision)
{
    assert(!cond->is_const());
    // A decided condition is constant over every valuation satisfying
    // the preconditions, so the model (which satisfies them) must
    // already point the decided way.
    assert(decision == analysis::Decision::Unknown ||
           (decision == analysis::Decision::AlwaysTrue) ==
               (cur_model_.eval(cond) != 0));
    const NodeId node = run.path.empty()
        ? tree_.root()
        : tree_.descend(run.path.back().first, run.path.back().second);

    // The direction the current model supports is feasible for free.
    const bool model_dir = cur_model_.eval(cond) != 0;
    tree_.set_feasibility(node, model_dir, Feasibility::Yes);

    const bool can_model = !tree_.direction_done(node, model_dir);
    const bool can_other = !tree_.direction_done(node, !model_dir);
    bool dir;
    if (can_model && can_other) {
        // Frontier scheduling: with both subtrees open the order is a
        // free choice — let the policy spend the path budget on
        // uncovered structure first. No preference (or no policy, or a
        // bit-binding branch) falls back to the seeded flip. Note the
        // RNG is still advanced: the random stream consumed at a node
        // must not depend on the coverage state, or a policy
        // preference here would perturb every later default choice.
        const bool flip_dir = rng_.flip() ? model_dir : !model_dir;
        dir = flip_dir;
        if (config_.policy != nullptr && targets != nullptr) {
            coverage::BranchContext ctx;
            ctx.from = targets->from;
            ctx.target[0] = targets->target[0];
            ctx.target[1] = targets->target[1];
            ctx.depth = tree_.depth(node);
            ctx.model_dir = model_dir;
            if (const auto preferred =
                    config_.policy->prefer(*config_.coverage, ctx)) {
                dir = *preferred;
            }
        }
    } else if (can_model) {
        dir = model_dir;
    } else if (can_other) {
        dir = !model_dir;
    } else {
        // Everything below this node is already explored or infeasible;
        // this prefix is a dead end.
        return std::nullopt;
    }

    const ExprRef polarity = dir ? cond : E::lnot(cond);
    if (dir != model_dir) {
        // Need a model witnessing this direction; feasibility may also
        // still be unknown. When the facts decided this statement, the
        // non-model direction is provably infeasible and probe() may
        // skip the dispatch (prune mode permitting).
        const bool decided = decision != analysis::Decision::Unknown;
        if (probe(run, polarity, decided) == solver::CheckResult::Unsat) {
            tree_.set_feasibility(node, dir, Feasibility::No);
            if (!can_model)
                return std::nullopt;
            dir = model_dir;
            run.path.emplace_back(node, dir);
            run.events_in_segment = 0;
            run.pc.push_back(dir ? cond : E::lnot(cond));
            return dir;
        }
        tree_.set_feasibility(node, dir, Feasibility::Yes);
    }
    run.path.emplace_back(node, dir);
    run.events_in_segment = 0;
    run.pc.push_back(polarity);
    return dir;
}

std::optional<u32>
PathExplorer::concretize_address(RunState &run, const ExprRef &addr,
                                 ir::ConcretizePolicy policy)
{
    if (policy == ir::ConcretizePolicy::Exhaustive) {
        // Bind one bit at a time, most significant first, through the
        // decision tree so all feasible values are eventually visited.
        for (int bit = static_cast<int>(addr->width()) - 1; bit >= 0;
             --bit) {
            const ExprRef b = E::extract(addr, bit, 1);
            if (b->is_const())
                continue;
            if (!take_branch(run, b))
                return std::nullopt;
        }
        return static_cast<u32>(cur_model_.eval(addr));
    }

    // SingleRandom: one feasible value, pinned, cached per tree edge so
    // replayed prefixes concretize identically.
    std::tuple<u32, u8, u32> key{
        run.path.empty() ? kNoEdgeNode : run.path.back().first,
        run.path.empty() ? u8{0} : static_cast<u8>(run.path.back().second),
        run.events_in_segment};
    ++run.events_in_segment;

    auto it = concretization_cache_.find(key);
    u64 value;
    if (it != concretization_cache_.end()) {
        value = it->second;
    } else {
        value = cur_model_.eval(addr);
        concretization_cache_.emplace(key, value);
    }
    const ExprRef pin = E::eq(addr, E::constant(addr->width(), value));
    if (!constrain(run, pin)) {
        panic("explorer: cached concretization became infeasible "
              "(nondeterministic program?)");
    }
    return static_cast<u32>(value);
}

PathExplorer::RunOutcome
PathExplorer::run_one_path(RunState &run, u32 &halt_code)
{
    u32 ip = 0;
    for (;;) {
        if (run.steps >= config_.max_steps)
            return RunOutcome::StepLimit;
        if (config_.deadline.consume())
            return RunOutcome::DeadlineExpired;
        assert(ip < program_.stmts.size());
        if (config_.coverage != nullptr) {
            // Control only ever enters a block at its leader (labels
            // are leaders; fallthrough lands on the next leader), so
            // this records each block entry exactly once — including
            // re-entries of the same block around a loop.
            if (const auto entered = config_.coverage->entered_block(ip))
                run.trace.push_back(*entered);
        }
        const ir::Stmt &s = program_.stmts[ip];
        ++run.steps;
        switch (s.kind) {
          case StmtKind::Assign:
            run.temps[s.temp] = resolve(s.expr, run);
            ++ip;
            break;
          case StmtKind::Load: {
            ExprRef addr = resolve(s.addr, run);
            u32 a;
            if (addr->is_const()) {
                a = static_cast<u32>(addr->value());
            } else {
                auto resolved =
                    concretize_address(run, addr, s.policy);
                if (!resolved)
                    return RunOutcome::Infeasible;
                a = *resolved;
            }
            run.temps[s.temp] = run.memory.load(a, s.size);
            ++ip;
            break;
          }
          case StmtKind::Store: {
            ExprRef addr = resolve(s.addr, run);
            u32 a;
            if (addr->is_const()) {
                a = static_cast<u32>(addr->value());
            } else {
                auto resolved =
                    concretize_address(run, addr, s.policy);
                if (!resolved)
                    return RunOutcome::Infeasible;
                a = *resolved;
            }
            run.memory.store(a, s.size, resolve(s.expr, run));
            ++ip;
            break;
          }
          case StmtKind::CJmp: {
            const ExprRef cond = resolve(s.expr, run);
            bool dir;
            if (cond->is_const()) {
                dir = cond->value() != 0;
            } else {
                BranchTargets targets;
                const BranchTargets *ctx = nullptr;
                if (config_.coverage != nullptr) {
                    const coverage::CoverageMap &cov = *config_.coverage;
                    targets.from = cov.block_of(ip);
                    targets.target[0] = cov.block_of(
                        program_.label_pos[s.target_false]);
                    targets.target[1] = cov.block_of(
                        program_.label_pos[s.target_true]);
                    ctx = &targets;
                }
                auto taken =
                    take_branch(run, cond, ctx, stmt_decision(ip));
                if (!taken)
                    return RunOutcome::Infeasible;
                dir = *taken;
            }
            ip = program_.label_pos[dir ? s.target_true
                                        : s.target_false];
            break;
          }
          case StmtKind::Jmp:
            ip = program_.label_pos[s.target_true];
            break;
          case StmtKind::Assume: {
            const ExprRef cond = resolve(s.expr, run);
            if (!cond->is_const() &&
                stmt_decision(ip) == analysis::Decision::AlwaysFalse) {
                // constrain() would find the model violating cond and
                // dispatch the same probe; an AlwaysTrue decision
                // saves nothing (the model satisfies the condition, so
                // constrain() never queries) and is not special-cased.
                assert(cur_model_.eval(cond) == 0);
                if (probe(run, cond, /*decided=*/true) ==
                    solver::CheckResult::Unsat)
                    return RunOutcome::Infeasible;
                // Only reachable when an Off-mode dispatch contradicts
                // the facts; behave exactly like constrain() after a
                // Sat probe rather than trusting the bad decision.
                run.pc.push_back(cond);
                ++ip;
                break;
            }
            if (!constrain(run, cond))
                return RunOutcome::Infeasible;
            ++ip;
            break;
          }
          case StmtKind::Halt: {
            const ExprRef code = resolve(s.expr, run);
            if (code->is_const()) {
                halt_code = static_cast<u32>(code->value());
            } else {
                const u64 v = cur_model_.eval(code);
                if (!constrain(run,
                               E::eq(code, E::constant(32, v))))
                    panic("explorer: halt-code pin infeasible");
                halt_code = static_cast<u32>(v);
            }
            return RunOutcome::Halted;
          }
          case StmtKind::Comment:
            ++ip;
            break;
        }
    }
}

ExploreStats
PathExplorer::explore(const PathCallback &on_path)
{
    assert(!explored_);
    explored_ = true;

    if (config_.injector) {
        config_.injector->maybe_fail(support::FaultSite::Exploration,
                                     "explorer: " + program_.name);
    }

    ExploreStats stats;
    // Safety valve: dead-end prefixes do not count as paths, but they
    // must not allow unbounded looping either.
    const u64 max_runs = config_.max_paths * 4 + 64;
    u64 runs = 0;

    while (!tree_.exhausted() && stats.paths < config_.max_paths &&
           runs < max_runs) {
        if (config_.deadline.limited() && config_.deadline.expired()) {
            stats.deadline_expired = true;
            break;
        }
        ++runs;
        RunState run(initial_, program_.num_temps());
        u32 halt_code = 0;
        bool precondition_failed = false;
        for (const ir::ExprRef &pre : config_.preconditions) {
            if (!constrain(run, pre)) {
                precondition_failed = true;
                break;
            }
        }
        if (precondition_failed)
            panic("explorer: unsatisfiable precondition");
        const RunOutcome outcome = run_one_path(run, halt_code);
        if (outcome == RunOutcome::DeadlineExpired) {
            // Graceful degradation: the partial path is discarded (it
            // never reached a leaf) but everything completed before it
            // stands. finish_leaf is skipped so a budget-escalation
            // retry re-enters the same subtree.
            stats.deadline_expired = true;
            break;
        }
        tree_.finish_leaf(run.path);

        if (outcome == RunOutcome::Infeasible) {
            ++stats.infeasible;
            continue;
        }

        PathInfo info;
        info.index = stats.paths;
        info.status = outcome == RunOutcome::Halted
            ? PathStatus::Halted
            : PathStatus::StepLimit;
        info.halt_code = halt_code;
        info.path_condition = run.pc;
        info.assignment = cur_model_;
        info.steps = run.steps;
        assert(cur_model_.satisfies(run.pc));
        if (outcome == RunOutcome::StepLimit)
            ++stats.step_limited;
        // Coverage is credited before the callback runs so the next
        // path's frontier decisions already see this path's blocks.
        if (config_.coverage != nullptr)
            config_.coverage->cover_path(run.trace);
        on_path(info, run.memory);
        ++stats.paths;
    }

    stats.complete = tree_.exhausted();
    // Attribute the truncation. Priority: an expired deadline beats
    // the path cap (both can hold when the deadline fires exactly at
    // the cap); an unexhausted tree means the path cap (or the
    // dead-end run valve) stopped the loop; and a "complete" tree
    // with step-limited paths is still truncated — those leaves ended
    // at the step budget, not at a Halt, hiding whatever lay beyond.
    if (stats.deadline_expired) {
        stats.truncation = coverage::TruncationReason::Deadline;
    } else if (!stats.complete) {
        stats.truncation = coverage::TruncationReason::PathCap;
    } else if (stats.step_limited != 0) {
        stats.truncation = coverage::TruncationReason::StepLimit;
    }
    if (config_.coverage != nullptr) {
        const coverage::CoverageStats cov = config_.coverage->stats();
        stats.covered_blocks = cov.covered_blocks;
        stats.total_blocks = cov.total_blocks;
        stats.covered_edges = cov.covered_edges;
        stats.total_edges = cov.total_edges;
    }
    stats.solver_queries = solver_.stats().queries;
    stats.solver_cache_hits = solver_.stats().cache_hits;
    stats.solver_cache_misses = solver_.stats().cache_misses;
    stats.solver_queries_avoided = avoided_;
    stats.crosscheck_queries = crosscheck_queries_;
    if (config_.facts != nullptr && config_.facts->analyzed) {
        stats.static_decisions = config_.facts->decided_cjmps +
                                 config_.facts->decided_assumes;
    }
    stats.tree_nodes = tree_.num_nodes();
    return stats;
}

} // namespace pokeemu::symexec
