/**
 * @file
 * Online symbolic path exploration of IR programs — the core of the
 * FuzzBALL analog (paper §3.1).
 *
 * The explorer interprets a Program over symbolic state, one complete
 * path per run, restarting from the beginning until the decision tree
 * is exhausted or a path cap is reached (§3.1.2: re-execution instead
 * of state forking). Branch feasibility is decided with the bit-vector
 * solver, with two standing optimizations:
 *  - the direction supported by the current model is known feasible
 *    without a query;
 *  - the decision tree caches established (in)feasibility, so replayed
 *    prefixes never re-query.
 *
 * Symbolic load/store addresses are resolved per the statement's
 * ConcretizePolicy: SingleRandom picks one feasible value and pins it
 * (cached per tree edge so replays are deterministic); Exhaustive
 * binds the address one bit at a time, most significant first, through
 * ordinary decision-tree branches (§3.1.2 "Extension to Word-sized
 * Values", §3.3.2 "Indexing Memory and Tables").
 */
#ifndef POKEEMU_SYMEXEC_EXPLORER_H
#define POKEEMU_SYMEXEC_EXPLORER_H

#include <map>
#include <optional>

#include "coverage/coverage.h"
#include "ir/stmt.h"
#include "solver/solver.h"
#include "support/fault.h"
#include "support/rng.h"
#include "symexec/decision_tree.h"
#include "symexec/memory.h"
#include "symexec/varpool.h"

namespace pokeemu::symexec {

/** Limits and seeds for one exploration. */
struct ExplorerConfig
{
    /** Maximum completed paths (the paper's per-instruction cap). */
    u64 max_paths = 8192;
    /** Per-path statement budget. */
    u64 max_steps = 1u << 22;
    /** Seed for random direction choices. */
    u64 seed = 1;
    /**
     * Side constraints added to every path condition before execution
     * (paper §3.3.1: "adding a side constraint that fixes the concrete
     * bits"). Must be satisfiable; paths contradicting them are
     * infeasible.
     */
    std::vector<ir::ExprRef> preconditions;
    /**
     * Whole-exploration budget (wall clock and/or interpreted
     * statements). When it expires the exploration stops gracefully:
     * paths completed so far are kept, `complete` stays false and
     * `deadline_expired` is set. Default: unlimited.
     */
    support::Deadline deadline{};
    /** Per-solver-query budget (0 = unlimited); an over-budget query
     *  throws FaultError(SolverTimeout) out of explore(). */
    u64 solver_query_ms = 0;
    u64 solver_query_steps = 0;
    /** Chaos hook threaded down to the solver (not owned). */
    support::FaultInjector *injector = nullptr;
    /** Query memo threaded down to the solver (not owned; null
     *  disables memoization). The caller is responsible for clearing
     *  it between units of work (QueryMemo::begin_unit). */
    solver::QueryMemo *memo = nullptr;
    /**
     * Block/edge coverage accounting for this program (not owned;
     * null disables both accounting and frontier scheduling). Updated
     * once per completed path; must be fresh (nothing covered) when
     * exploration starts so results stay a pure function of
     * (program, config).
     */
    coverage::CoverageMap *coverage = nullptr;
    /**
     * Frontier scheduling policy consulted at symbolic CJmp branches
     * whose directions are both still open (not owned; null keeps the
     * default seeded-random order). Requires `coverage`.
     */
    const coverage::FrontierPolicy *policy = nullptr;
};

/** How one explored path terminated. */
enum class PathStatus : u8 { Halted, StepLimit };

/** Everything recorded about one completed execution path. */
struct PathInfo
{
    u64 index = 0;                 ///< 0-based completed-path counter.
    PathStatus status = PathStatus::Halted;
    u32 halt_code = 0;             ///< Halt result (status == Halted).
    /** Conjuncts of the path condition, in execution order. */
    std::vector<ir::ExprRef> path_condition;
    /** A satisfying assignment for the path condition. */
    solver::Assignment assignment;
    u64 steps = 0;                 ///< Statements executed on the path.
};

/** Aggregate results of an exploration. */
struct ExploreStats
{
    u64 paths = 0;            ///< Completed paths (callback count).
    u64 infeasible = 0;       ///< Prefixes abandoned at an Assume.
    u64 step_limited = 0;     ///< Paths that hit the step budget.
    bool complete = false;    ///< Decision tree exhausted under cap.
    bool deadline_expired = false; ///< Stopped by config.deadline.
    /** Why exploration stopped short of full path coverage (None when
     *  the tree was exhausted with no path cut short). A tree can be
     *  "complete" yet StepLimit-truncated: step-limited paths finish
     *  their leaf without exploring what lay beyond the budget. */
    coverage::TruncationReason truncation =
        coverage::TruncationReason::None;
    u64 solver_queries = 0;
    u64 solver_cache_hits = 0;   ///< Queries answered by the memo.
    u64 solver_cache_misses = 0; ///< Memo-eligible queries solved.
    u64 tree_nodes = 0;
    /** Coverage over the program's CFG (zeros when config.coverage
     *  was null). */
    u64 covered_blocks = 0;
    u64 total_blocks = 0;
    u64 covered_edges = 0;
    u64 total_edges = 0;
};

/** See file comment. */
class PathExplorer
{
  public:
    /**
     * @param program the IR program to explore (not owned).
     * @param pool variable identities shared with the caller so the
     *        resulting assignments can be mapped back to machine state
     *        (not owned).
     * @param initial initial-contents policy for memory.
     */
    PathExplorer(const ir::Program &program, VarPool &pool,
                 InitialByteFn initial, ExplorerConfig config = {});

    /**
     * Callback invoked once per completed path, with the final
     * symbolic memory still live for inspecting outputs.
     */
    using PathCallback =
        std::function<void(const PathInfo &, SymbolicMemory &)>;

    /** Run to exhaustion or cap. May be called once per instance. */
    ExploreStats explore(const PathCallback &on_path);

    const solver::SolverStats &solver_stats() const
    {
        return solver_.stats();
    }

  private:
    /** Per-run (single-path) mutable state. */
    struct RunState
    {
        SymbolicMemory memory;
        std::vector<ir::ExprRef> temps;
        std::vector<ir::ExprRef> pc; ///< Path condition conjuncts.
        std::vector<std::pair<NodeId, bool>> path;
        /** Blocks entered, in order (coverage accounting only). */
        std::vector<coverage::BlockId> trace;
        u64 steps = 0;
        u32 events_in_segment = 0;

        explicit RunState(const InitialByteFn &initial, u32 num_temps)
            : memory(initial), temps(num_temps)
        {
        }
    };

    enum class RunOutcome : u8 {
        Halted,
        Infeasible,
        StepLimit,
        DeadlineExpired ///< config.deadline ran out mid-path.
    };

    RunOutcome run_one_path(RunState &run, u32 &halt_code);

    /** Substitute temps in a statement expression. */
    ir::ExprRef resolve(const ir::ExprRef &expr, const RunState &run);

    /** CFG successor blocks of a CJmp, per direction (frontier
     *  scheduling context; bit-binding branches pass null). */
    struct BranchTargets
    {
        coverage::BlockId from;
        coverage::BlockId target[2];
    };

    /**
     * Take a symbolic branch: consult/extend the decision tree, pick a
     * direction (the frontier policy decides when @p targets is given
     * and both directions are open), extend the path condition.
     * Returns the direction or nullopt when the branch cannot continue
     * (both sides done).
     */
    std::optional<bool> take_branch(RunState &run,
                                    const ir::ExprRef &cond,
                                    const BranchTargets *targets =
                                        nullptr);

    /** Append @p cond to the path condition, refreshing the model if
     *  the current one violates it. Returns false when infeasible. */
    bool constrain(RunState &run, const ir::ExprRef &cond);

    /** Resolve a symbolic address per @p policy; returns the value. */
    std::optional<u32> concretize_address(RunState &run,
                                          const ir::ExprRef &addr,
                                          ir::ConcretizePolicy policy);

    /** Solver check of run.pc + extra; refreshes cur_model_ on Sat. */
    solver::CheckResult check(const RunState &run,
                              const ir::ExprRef &extra);

    void refresh_model();

    const ir::Program &program_;
    VarPool &pool_;
    InitialByteFn initial_;
    ExplorerConfig config_;
    solver::Solver solver_;
    DecisionTree tree_;
    Rng rng_;
    solver::Assignment cur_model_;
    /** Cached SingleRandom concretizations: (edge, event) -> value. */
    std::map<std::tuple<u32, u8, u32>, u64> concretization_cache_;
    bool explored_ = false;
};

} // namespace pokeemu::symexec

#endif // POKEEMU_SYMEXEC_EXPLORER_H
