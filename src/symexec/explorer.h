/**
 * @file
 * Online symbolic path exploration of IR programs — the core of the
 * FuzzBALL analog (paper §3.1).
 *
 * The explorer interprets a Program over symbolic state, one complete
 * path per run, restarting from the beginning until the decision tree
 * is exhausted or a path cap is reached (§3.1.2: re-execution instead
 * of state forking). Branch feasibility is decided with the bit-vector
 * solver, with two standing optimizations:
 *  - the direction supported by the current model is known feasible
 *    without a query;
 *  - the decision tree caches established (in)feasibility, so replayed
 *    prefixes never re-query.
 *
 * Symbolic load/store addresses are resolved per the statement's
 * ConcretizePolicy: SingleRandom picks one feasible value and pins it
 * (cached per tree edge so replays are deterministic); Exhaustive
 * binds the address one bit at a time, most significant first, through
 * ordinary decision-tree branches (§3.1.2 "Extension to Word-sized
 * Values", §3.3.2 "Indexing Memory and Tables").
 */
#ifndef POKEEMU_SYMEXEC_EXPLORER_H
#define POKEEMU_SYMEXEC_EXPLORER_H

#include <map>
#include <memory>
#include <optional>

#include "analysis/dataflow.h"
#include "analysis/optimize.h"
#include "coverage/coverage.h"
#include "ir/stmt.h"
#include "solver/solver.h"
#include "support/fault.h"
#include "support/rng.h"
#include "symexec/decision_tree.h"
#include "symexec/memory.h"
#include "symexec/varpool.h"

namespace pokeemu::symexec {

/** Limits and seeds for one exploration. */
struct ExplorerConfig
{
    /** Maximum completed paths (the paper's per-instruction cap). */
    u64 max_paths = 8192;
    /** Per-path statement budget. */
    u64 max_steps = 1u << 22;
    /** Seed for random direction choices. */
    u64 seed = 1;
    /**
     * Side constraints added to every path condition before execution
     * (paper §3.3.1: "adding a side constraint that fixes the concrete
     * bits"). Must be satisfiable; paths contradicting them are
     * infeasible.
     */
    std::vector<ir::ExprRef> preconditions;
    /**
     * Whole-exploration budget (wall clock and/or interpreted
     * statements). When it expires the exploration stops gracefully:
     * paths completed so far are kept, `complete` stays false and
     * `deadline_expired` is set. Default: unlimited.
     */
    support::Deadline deadline{};
    /** Per-solver-query budget (0 = unlimited); an over-budget query
     *  throws FaultError(SolverTimeout) out of explore(). */
    u64 solver_query_ms = 0;
    u64 solver_query_steps = 0;
    /** Chaos hook threaded down to the solver (not owned). */
    support::FaultInjector *injector = nullptr;
    /** Query memo threaded down to the solver (not owned; null
     *  disables memoization). The caller is responsible for clearing
     *  it between units of work (QueryMemo::begin_unit). */
    solver::QueryMemo *memo = nullptr;
    /**
     * Block/edge coverage accounting for this program (not owned;
     * null disables both accounting and frontier scheduling). Updated
     * once per completed path; must be fresh (nothing covered) when
     * exploration starts so results stay a pure function of
     * (program, config).
     */
    coverage::CoverageMap *coverage = nullptr;
    /**
     * Frontier scheduling policy consulted at symbolic CJmp branches
     * whose directions are both still open (not owned; null keeps the
     * default seeded-random order). Requires `coverage`.
     */
    const coverage::FrontierPolicy *policy = nullptr;
    /**
     * Dataflow facts for `program` (not owned; null disables static
     * branch decisions). Must have been computed with
     * DataflowConfig::assumes equal to `preconditions` (or a subset),
     * or the decisions are not sound for this exploration.
     */
    const analysis::ProgramFacts *facts = nullptr;
    /**
     * What a statically-decided feasibility probe does (see
     * analysis::PruneMode). Decided probes never change which paths
     * are explored or in what order: the decision tree, the seeded
     * rng stream, frontier-policy consultations and the path
     * condition evolve identically in all three modes — only the
     * solver dispatch for the probe differs.
     */
    analysis::PruneMode prune = analysis::PruneMode::On;
    /**
     * Run the IR optimizer (analysis/optimize.h) over the program and
     * explore the optimized copy (owned by the explorer). Validated
     * behaves like On here. Incompatible with `facts`, `coverage` and
     * `policy`, which were necessarily built against the original
     * program's statement indices — the constructor asserts they are
     * null. Callers that want facts or coverage over optimized IR
     * optimize first (hifi::SemanticsOptions::opt) and pass the
     * optimized program in directly.
     */
    analysis::OptMode opt = analysis::OptMode::Off;
};

/** How one explored path terminated. */
enum class PathStatus : u8 { Halted, StepLimit };

/** Everything recorded about one completed execution path. */
struct PathInfo
{
    u64 index = 0;                 ///< 0-based completed-path counter.
    PathStatus status = PathStatus::Halted;
    u32 halt_code = 0;             ///< Halt result (status == Halted).
    /** Conjuncts of the path condition, in execution order. */
    std::vector<ir::ExprRef> path_condition;
    /** A satisfying assignment for the path condition. */
    solver::Assignment assignment;
    u64 steps = 0;                 ///< Statements executed on the path.
};

/** Aggregate results of an exploration. */
struct ExploreStats
{
    u64 paths = 0;            ///< Completed paths (callback count).
    u64 infeasible = 0;       ///< Prefixes abandoned at an Assume.
    u64 step_limited = 0;     ///< Paths that hit the step budget.
    bool complete = false;    ///< Decision tree exhausted under cap.
    bool deadline_expired = false; ///< Stopped by config.deadline.
    /** Why exploration stopped short of full path coverage (None when
     *  the tree was exhausted with no path cut short). A tree can be
     *  "complete" yet StepLimit-truncated: step-limited paths finish
     *  their leaf without exploring what lay beyond the budget. */
    coverage::TruncationReason truncation =
        coverage::TruncationReason::None;
    u64 solver_queries = 0;
    u64 solver_cache_hits = 0;   ///< Queries answered by the memo.
    u64 solver_cache_misses = 0; ///< Memo-eligible queries solved.
    /** Feasibility probes answered by a static Decision instead of a
     *  solver dispatch (prune On/CrossCheck; always 0 when Off). The
     *  sum solver_queries + solver_queries_avoided is invariant
     *  across prune modes. */
    u64 solver_queries_avoided = 0;
    /** Statically-decided CJmp/Assume statements available to this
     *  exploration (a property of the facts, not of the paths). */
    u64 static_decisions = 0;
    /** Side-solver validations performed (prune CrossCheck only). */
    u64 crosscheck_queries = 0;
    u64 tree_nodes = 0;
    /** Coverage over the program's CFG (zeros when config.coverage
     *  was null). */
    u64 covered_blocks = 0;
    u64 total_blocks = 0;
    u64 covered_edges = 0;
    u64 total_edges = 0;
};

/** See file comment. */
class PathExplorer
{
  public:
    /**
     * @param program the IR program to explore (not owned).
     * @param pool variable identities shared with the caller so the
     *        resulting assignments can be mapped back to machine state
     *        (not owned).
     * @param initial initial-contents policy for memory.
     */
    PathExplorer(const ir::Program &program, VarPool &pool,
                 InitialByteFn initial, ExplorerConfig config = {});

    /**
     * Callback invoked once per completed path, with the final
     * symbolic memory still live for inspecting outputs.
     */
    using PathCallback =
        std::function<void(const PathInfo &, SymbolicMemory &)>;

    /** Run to exhaustion or cap. May be called once per instance. */
    ExploreStats explore(const PathCallback &on_path);

    const solver::SolverStats &solver_stats() const
    {
        return solver_.stats();
    }

  private:
    /** Per-run (single-path) mutable state. */
    struct RunState
    {
        SymbolicMemory memory;
        std::vector<ir::ExprRef> temps;
        std::vector<ir::ExprRef> pc; ///< Path condition conjuncts.
        std::vector<std::pair<NodeId, bool>> path;
        /** Blocks entered, in order (coverage accounting only). */
        std::vector<coverage::BlockId> trace;
        u64 steps = 0;
        u32 events_in_segment = 0;

        explicit RunState(const InitialByteFn &initial, u32 num_temps)
            : memory(initial), temps(num_temps)
        {
        }
    };

    enum class RunOutcome : u8 {
        Halted,
        Infeasible,
        StepLimit,
        DeadlineExpired ///< config.deadline ran out mid-path.
    };

    RunOutcome run_one_path(RunState &run, u32 &halt_code);

    /** Substitute temps in a statement expression. */
    ir::ExprRef resolve(const ir::ExprRef &expr, const RunState &run);

    /** CFG successor blocks of a CJmp, per direction (frontier
     *  scheduling context; bit-binding branches pass null). */
    struct BranchTargets
    {
        coverage::BlockId from;
        coverage::BlockId target[2];
    };

    /**
     * Take a symbolic branch: consult/extend the decision tree, pick a
     * direction (the frontier policy decides when @p targets is given
     * and both directions are open), extend the path condition.
     * Returns the direction or nullopt when the branch cannot continue
     * (both sides done).
     */
    std::optional<bool> take_branch(RunState &run,
                                    const ir::ExprRef &cond,
                                    const BranchTargets *targets = nullptr,
                                    analysis::Decision decision =
                                        analysis::Decision::Unknown);

    /** Append @p cond to the path condition, refreshing the model if
     *  the current one violates it. Returns false when infeasible. */
    bool constrain(RunState &run, const ir::ExprRef &cond);

    /** Resolve a symbolic address per @p policy; returns the value. */
    std::optional<u32> concretize_address(RunState &run,
                                          const ir::ExprRef &addr,
                                          ir::ConcretizePolicy policy);

    /** Solver check of run.pc + extra; refreshes cur_model_ on Sat. */
    solver::CheckResult check(const RunState &run,
                              const ir::ExprRef &extra);

    /**
     * Feasibility probe for run.pc + extra. With @p decided false this
     * is check(). With @p decided true the facts prove the answer is
     * Unsat, and the prune mode picks the mechanism: Off dispatches to
     * the main solver with the memo bypassed (the result is unique to
     * this decision-tree node, so caching it would only skew memo
     * statistics between modes), On returns Unsat outright, CrossCheck
     * returns Unsat after validating it on the side solver.
     */
    solver::CheckResult probe(const RunState &run,
                              const ir::ExprRef &extra, bool decided);

    /** CrossCheck validation: run.pc + extra must be Unsat. */
    void side_check(const RunState &run, const ir::ExprRef &extra);

    /** Static decision for the statement at @p stmt_index. */
    analysis::Decision stmt_decision(u32 stmt_index) const
    {
        return config_.facts != nullptr
            ? config_.facts->decision(stmt_index)
            : analysis::Decision::Unknown;
    }

    void refresh_model();

    /** Optimized copy when config.opt != Off (program_ points here);
     *  empty otherwise. Declared first so program_ can reference it. */
    ir::Program opt_storage_;
    const ir::Program &program_;
    VarPool &pool_;
    InitialByteFn initial_;
    ExplorerConfig config_;
    solver::Solver solver_;
    DecisionTree tree_;
    Rng rng_;
    solver::Assignment cur_model_;
    /** Cached SingleRandom concretizations: (edge, event) -> value. */
    std::map<std::tuple<u32, u8, u32>, u64> concretization_cache_;
    /** CrossCheck-only validation solver, created on first use. Fully
     *  isolated from solver_ (no memo, no injector) so validating a
     *  skipped probe cannot perturb the main query stream. */
    std::unique_ptr<solver::Solver> side_solver_;
    u64 avoided_ = 0;
    u64 crosscheck_queries_ = 0;
    bool explored_ = false;
};

} // namespace pokeemu::symexec

#endif // POKEEMU_SYMEXEC_EXPLORER_H
