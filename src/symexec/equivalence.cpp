#include "symexec/equivalence.h"

namespace pokeemu::symexec {

namespace E = ir::E;

namespace {

struct PathFormula
{
    ir::ExprRef condition;
    std::vector<ir::ExprRef> outputs; ///< Last entry is the halt code.
};

std::vector<PathFormula>
explore_formulas(const ir::Program &program, VarPool &pool,
                 const InitialByteFn &initial,
                 const std::vector<SummaryOutput> &outputs,
                 const ExplorerConfig &config, bool &complete)
{
    std::vector<PathFormula> formulas;
    PathExplorer explorer(program, pool, initial, config);
    const ExploreStats stats = explorer.explore(
        [&](const PathInfo &info, SymbolicMemory &memory) {
            PathFormula f;
            ir::ExprRef cond = E::bool_const(true);
            for (const auto &c : info.path_condition)
                cond = E::land(cond, c);
            f.condition = cond;
            for (const SummaryOutput &out : outputs)
                f.outputs.push_back(memory.load(out.addr, out.size));
            f.outputs.push_back(E::constant(32, info.halt_code));
            formulas.push_back(std::move(f));
        });
    complete = stats.complete;
    return formulas;
}

} // namespace

EquivalenceResult
check_equivalence(const ir::Program &program_a,
                  const ir::Program &program_b, VarPool &pool,
                  const InitialByteFn &initial,
                  const std::vector<SummaryOutput> &outputs,
                  ExplorerConfig config)
{
    EquivalenceResult result;
    bool complete_a = false, complete_b = false;
    const auto paths_a = explore_formulas(program_a, pool, initial,
                                          outputs, config, complete_a);
    config.seed += 1; // Decorrelate the second exploration's choices.
    const auto paths_b = explore_formulas(program_b, pool, initial,
                                          outputs, config, complete_b);
    result.complete = complete_a && complete_b;

    solver::Solver solver;
    for (const PathFormula &pa : paths_a) {
        for (const PathFormula &pb : paths_b) {
            ++result.cross_checks;
            for (std::size_t o = 0; o < pa.outputs.size(); ++o) {
                // C_a ∧ C_b ∧ (O_a != O_b) must be unsatisfiable.
                std::vector<ir::ExprRef> conds = {
                    pa.condition,
                    pb.condition,
                    E::ne(pa.outputs[o], pb.outputs[o]),
                };
                ++result.solver_queries;
                if (solver.check(conds) == solver::CheckResult::Sat) {
                    result.equivalent = false;
                    result.differing_output = o;
                    for (const auto &var : pool.all()) {
                        result.counterexample.set(
                            var->var_id(), solver.model_value(var));
                    }
                    return result;
                }
            }
        }
    }
    result.equivalent = true;
    return result;
}

} // namespace pokeemu::symexec
