#include "symexec/summarize.h"

namespace pokeemu::symexec {

namespace E = ir::E;

Summary
summarize_program(const ir::Program &program, VarPool &pool,
                  InitialByteFn initial,
                  const std::vector<SummaryOutput> &outputs,
                  ExplorerConfig config)
{
    struct PerPath
    {
        ir::ExprRef condition;
        std::vector<ir::ExprRef> values;
    };
    std::vector<PerPath> paths;

    PathExplorer explorer(program, pool, initial, config);
    ExploreStats stats = explorer.explore(
        [&](const PathInfo &info, SymbolicMemory &memory) {
            PerPath p;
            ir::ExprRef cond = E::bool_const(true);
            for (const auto &conjunct : info.path_condition)
                cond = E::land(cond, conjunct);
            p.condition = cond;
            for (const SummaryOutput &out : outputs)
                p.values.push_back(memory.load(out.addr, out.size));
            paths.push_back(std::move(p));
        });

    Summary summary;
    summary.paths = stats.paths;
    summary.complete = stats.complete;
    if (paths.empty())
        return summary;

    // Fold: the last path is the default arm.
    for (std::size_t o = 0; o < outputs.size(); ++o) {
        ir::ExprRef acc = paths.back().values[o];
        for (std::size_t i = paths.size() - 1; i > 0; --i) {
            const PerPath &p = paths[i - 1];
            acc = E::ite(p.condition, p.values[o], acc);
        }
        summary.outputs.push_back(acc);
    }
    return summary;
}

} // namespace pokeemu::symexec
