/**
 * @file
 * Path-summary construction (paper §3.3.2, "Summarizing Common
 * Computations").
 *
 * A multi-path helper computation (e.g. Bochs' segment-descriptor
 * cache refresh, 23 paths) multiplies the whole exploration's path
 * count every time it runs. Instead, the helper is explored once in
 * isolation; every path's (condition, outputs) pair is folded into one
 * nested if-then-else formula per output:
 *     out = p1 ? v1 : (p2 ? v2 : ... : v_n)
 * The main exploration then substitutes the summary instead of
 * descending into the helper's branches.
 */
#ifndef POKEEMU_SYMEXEC_SUMMARIZE_H
#define POKEEMU_SYMEXEC_SUMMARIZE_H

#include "symexec/explorer.h"

namespace pokeemu::symexec {

/** One output location of a summarized computation. */
struct SummaryOutput
{
    u32 addr;      ///< Address the helper writes the output to.
    unsigned size; ///< Bytes (1/2/4).
};

/** The result of summarizing a helper program. */
struct Summary
{
    /**
     * One expression per requested output, over the helper's input
     * variables. Instantiate with ir::substitute, mapping each input
     * variable to the actual argument expression.
     */
    std::vector<ir::ExprRef> outputs;
    u64 paths = 0;           ///< Paths folded into the summary.
    bool complete = false;   ///< Helper exploration was exhaustive.
};

/**
 * Explore @p program and fold all paths into a Summary.
 *
 * @param outputs locations read back from the final memory of each
 *        path. The last explored path serves as the if-then-else
 *        default, which is sound when the helper's paths are total
 *        over the input space (always the case for the helpers we
 *        summarize — they end in a Halt on every input).
 */
Summary summarize_program(const ir::Program &program, VarPool &pool,
                          InitialByteFn initial,
                          const std::vector<SummaryOutput> &outputs,
                          ExplorerConfig config = {});

} // namespace pokeemu::symexec

#endif // POKEEMU_SYMEXEC_SUMMARIZE_H
