/**
 * @file
 * State-difference minimization (paper §3.4).
 *
 * The decision procedure assigns arbitrary values to bits that the
 * path condition does not constrain. Those arbitrary differences from
 * the baseline machine state make tests harder to read and can break
 * test execution (e.g. clobbering the code segment that the test
 * instruction is fetched through). The minimizer greedily restores
 * each differing bit to its baseline value whenever the edited
 * assignment still satisfies the path condition — evaluation-based, no
 * extra solver queries, single pass, exactly as in the paper.
 */
#ifndef POKEEMU_SYMEXEC_MINIMIZE_H
#define POKEEMU_SYMEXEC_MINIMIZE_H

#include "solver/solver.h"
#include "symexec/varpool.h"

namespace pokeemu::symexec {

struct MinimizeStats
{
    u64 bits_different_before = 0;
    u64 bits_different_after = 0;
    u64 bits_tried = 0;
};

/**
 * Minimize @p assignment against @p baseline subject to
 * @p path_condition.
 *
 * @param pool the variables to consider (all of them are visited in id
 *        order; bits are visited LSB first).
 * @return statistics; @p assignment is edited in place.
 */
MinimizeStats
minimize_against_baseline(solver::Assignment &assignment,
                          const solver::Assignment &baseline,
                          const std::vector<ir::ExprRef> &path_condition,
                          const VarPool &pool);

} // namespace pokeemu::symexec

#endif // POKEEMU_SYMEXEC_MINIMIZE_H
