/**
 * @file
 * The decision tree that steers path exploration (paper §3.1.2).
 *
 * Each node records one symbolic-branch occurrence on some execution
 * path. Per direction the tree remembers (a) whether feasibility has
 * been decided and what it is, and (b) whether the subtree below is
 * fully explored. The explorer walks from the root on every run,
 * always staying inside the unexplored region, so each completed run
 * is a new path and exploration terminates exactly when the root is
 * exhausted.
 */
#ifndef POKEEMU_SYMEXEC_DECISION_TREE_H
#define POKEEMU_SYMEXEC_DECISION_TREE_H

#include <vector>

#include "support/common.h"

namespace pokeemu::symexec {

/** Feasibility knowledge for one branch direction. */
enum class Feasibility : u8 { Unknown, Yes, No };

/** Index of a node in the tree; 0 is the root. */
using NodeId = u32;

/** See file comment. */
class DecisionTree
{
  public:
    DecisionTree();

    /** Reset to a single unexplored root. */
    void clear();

    NodeId root() const { return 0; }

    Feasibility feasibility(NodeId n, bool dir) const;
    void set_feasibility(NodeId n, bool dir, Feasibility f);

    /** True when direction @p dir below @p n has nothing left. */
    bool direction_done(NodeId n, bool dir) const;

    /** True when both directions of @p n are done. */
    bool node_done(NodeId n) const;

    /** True when the whole tree has been explored. */
    bool exhausted() const { return node_done(root()); }

    /**
     * Child in direction @p dir, allocating it on first descent.
     * Descending into a direction implies it is feasible.
     */
    NodeId descend(NodeId n, bool dir);

    /** Branch depth of @p n (root is 0); set when first descended to.
     *  Frontier policies use it as the tiebreak context. */
    u32 depth(NodeId n) const { return nodes_[n].depth; }

    /**
     * Mark the current path finished at node @p n going @p dir (the
     * leaf direction has no further symbolic branches), then propagate
     * done-ness up along @p path, a vector of (node, direction) pairs
     * from the root.
     */
    void finish_leaf(const std::vector<std::pair<NodeId, bool>> &path);

    std::size_t num_nodes() const { return nodes_.size(); }

  private:
    struct Node
    {
        s64 child[2] = {-1, -1};
        u32 depth = 0;
        Feasibility feasible[2] = {Feasibility::Unknown,
                                   Feasibility::Unknown};
        bool subtree_done[2] = {false, false};
    };

    std::vector<Node> nodes_;
};

} // namespace pokeemu::symexec

#endif // POKEEMU_SYMEXEC_DECISION_TREE_H
