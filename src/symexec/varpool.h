/**
 * @file
 * Stable identity management for symbolic variables.
 *
 * FuzzBALL re-executes the program under test once per path
 * (paper §3.1.2), and memory locations become symbolic on demand
 * (§3.3.2). For the decision tree and solver caching to work across
 * those re-executions, the *same* location must map to the *same*
 * variable every time. The pool provides that: variables are named,
 * and a name always resolves to the same id (and hence the same
 * solver-level bits).
 */
#ifndef POKEEMU_SYMEXEC_VARPOOL_H
#define POKEEMU_SYMEXEC_VARPOOL_H

#include <string>
#include <unordered_map>
#include <vector>

#include "ir/expr.h"

namespace pokeemu::symexec {

/** See file comment. */
class VarPool
{
  public:
    /**
     * Get or create the variable named @p name. Width must be
     * consistent across calls with the same name.
     */
    ir::ExprRef get(const std::string &name, unsigned width)
    {
        auto it = by_name_.find(name);
        if (it != by_name_.end()) {
            const ir::ExprRef &v = vars_[it->second];
            if (v->width() != width)
                panic("VarPool: width mismatch for " + name);
            return v;
        }
        const u32 id = static_cast<u32>(vars_.size());
        ir::ExprRef v = ir::E::var(id, name, width);
        by_name_[name] = id;
        vars_.push_back(v);
        return v;
    }

    /** All variables created so far, in creation order (id order). */
    const std::vector<ir::ExprRef> &all() const { return vars_; }

    /** Lookup by id; id must be valid. */
    const ir::ExprRef &by_id(u32 id) const { return vars_.at(id); }

    std::size_t size() const { return vars_.size(); }

  private:
    std::unordered_map<std::string, u32> by_name_;
    std::vector<ir::ExprRef> vars_;
};

} // namespace pokeemu::symexec

#endif // POKEEMU_SYMEXEC_VARPOOL_H
