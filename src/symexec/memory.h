/**
 * @file
 * Symbolic memory: the byte-addressed store over which IR programs are
 * symbolically executed.
 *
 * Mirrors FuzzBALL's memory design (paper §3.1.2–§3.3.2):
 *  - a two-level, page-table-like structure where each present page
 *    holds expressions rather than integers;
 *  - values are stored per byte and reassembled on load (the expression
 *    simplifier fuses adjacent extracts back together, so a 32-bit
 *    store followed by a 32-bit load round-trips to the original
 *    expression);
 *  - unwritten locations resolve through an *initial-contents policy*,
 *    which can return a concrete baseline byte or create a fresh
 *    symbolic variable on demand (used for "all of the unused bytes in
 *    physical memory", §3.3.1).
 */
#ifndef POKEEMU_SYMEXEC_MEMORY_H
#define POKEEMU_SYMEXEC_MEMORY_H

#include <array>
#include <functional>
#include <memory>
#include <unordered_map>

#include "ir/expr.h"

namespace pokeemu::symexec {

/**
 * Resolves the initial (pre-execution) contents of a byte. Returning
 * an 8-bit expression; called at most once per address per memory
 * instance (results are cached).
 */
using InitialByteFn = std::function<ir::ExprRef(u32 addr)>;

/** See file comment. */
class SymbolicMemory
{
  public:
    /**
     * @param initial policy for unwritten bytes. Must be deterministic
     *        across paths (same address -> same variable identity);
     *        see VarPool.
     */
    explicit SymbolicMemory(InitialByteFn initial);

    /** Read one byte as an 8-bit expression. */
    ir::ExprRef load_byte(u32 addr);

    /** Little-endian load of @p size bytes (1/2/4). */
    ir::ExprRef load(u32 addr, unsigned size);

    void store_byte(u32 addr, const ir::ExprRef &value);

    /** Little-endian store of the low @p size bytes of @p value. */
    void store(u32 addr, unsigned size, const ir::ExprRef &value);

    /** True if the byte at @p addr was written (or faulted in). */
    bool touched(u32 addr) const;

    /** Invoke @p fn for every touched byte (address order unspecified). */
    void
    for_each_touched(
        const std::function<void(u32, const ir::ExprRef &)> &fn) const;

    /** Number of touched bytes. */
    std::size_t touched_count() const;

  private:
    static constexpr u32 kPageShift = 12;
    static constexpr u32 kPageSize = 1u << kPageShift;

    struct Page
    {
        std::array<ir::ExprRef, kPageSize> bytes;
    };

    Page &page_for(u32 addr);

    InitialByteFn initial_;
    std::unordered_map<u32, std::unique_ptr<Page>> pages_;
};

} // namespace pokeemu::symexec

#endif // POKEEMU_SYMEXEC_MEMORY_H
