#include "symexec/decision_tree.h"

namespace pokeemu::symexec {

DecisionTree::DecisionTree()
{
    clear();
}

void
DecisionTree::clear()
{
    nodes_.clear();
    nodes_.emplace_back();
}

Feasibility
DecisionTree::feasibility(NodeId n, bool dir) const
{
    return nodes_[n].feasible[dir ? 1 : 0];
}

void
DecisionTree::set_feasibility(NodeId n, bool dir, Feasibility f)
{
    Feasibility &slot = nodes_[n].feasible[dir ? 1 : 0];
    assert(slot == Feasibility::Unknown || slot == f);
    slot = f;
}

bool
DecisionTree::direction_done(NodeId n, bool dir) const
{
    const Node &node = nodes_[n];
    const int d = dir ? 1 : 0;
    return node.subtree_done[d] || node.feasible[d] == Feasibility::No;
}

bool
DecisionTree::node_done(NodeId n) const
{
    return direction_done(n, false) && direction_done(n, true);
}

NodeId
DecisionTree::descend(NodeId n, bool dir)
{
    const int d = dir ? 1 : 0;
    assert(nodes_[n].feasible[d] == Feasibility::Yes);
    if (nodes_[n].child[d] < 0) {
        const NodeId child = static_cast<NodeId>(nodes_.size());
        const u32 child_depth = nodes_[n].depth + 1;
        nodes_[n].child[d] = child;
        nodes_.emplace_back();
        nodes_.back().depth = child_depth;
        return child;
    }
    return static_cast<NodeId>(nodes_[n].child[d]);
}

void
DecisionTree::finish_leaf(
    const std::vector<std::pair<NodeId, bool>> &path)
{
    if (path.empty()) {
        // The program had no symbolic branch at all: one path covers
        // everything.
        nodes_[0].subtree_done[0] = true;
        nodes_[0].subtree_done[1] = true;
        return;
    }
    // Mark the final decision's subtree done, then propagate upward as
    // long as the node below each edge is completely done.
    auto [leaf_node, leaf_dir] = path.back();
    nodes_[leaf_node].subtree_done[leaf_dir ? 1 : 0] = true;
    for (std::size_t i = path.size() - 1; i > 0; --i) {
        const auto [node, dir] = path[i];
        if (!node_done(node))
            break;
        const auto [parent, parent_dir] = path[i - 1];
        nodes_[parent].subtree_done[parent_dir ? 1 : 0] = true;
    }
}

} // namespace pokeemu::symexec
