#include "symexec/memory.h"

namespace pokeemu::symexec {

SymbolicMemory::SymbolicMemory(InitialByteFn initial)
    : initial_(std::move(initial))
{
}

SymbolicMemory::Page &
SymbolicMemory::page_for(u32 addr)
{
    const u32 pfn = addr >> kPageShift;
    auto it = pages_.find(pfn);
    if (it == pages_.end())
        it = pages_.emplace(pfn, std::make_unique<Page>()).first;
    return *it->second;
}

ir::ExprRef
SymbolicMemory::load_byte(u32 addr)
{
    Page &page = page_for(addr);
    ir::ExprRef &slot = page.bytes[addr & (kPageSize - 1)];
    if (!slot) {
        slot = initial_(addr);
        assert(slot && slot->width() == 8);
    }
    return slot;
}

ir::ExprRef
SymbolicMemory::load(u32 addr, unsigned size)
{
    assert(size == 1 || size == 2 || size == 4);
    ir::ExprRef value = load_byte(addr);
    for (unsigned i = 1; i < size; ++i)
        value = ir::E::concat(load_byte(addr + i), value);
    return value;
}

void
SymbolicMemory::store_byte(u32 addr, const ir::ExprRef &value)
{
    assert(value && value->width() == 8);
    Page &page = page_for(addr);
    page.bytes[addr & (kPageSize - 1)] = value;
}

void
SymbolicMemory::store(u32 addr, unsigned size, const ir::ExprRef &value)
{
    assert(value && value->width() == size * 8);
    for (unsigned i = 0; i < size; ++i)
        store_byte(addr + i, ir::E::extract(value, i * 8, 8));
}

bool
SymbolicMemory::touched(u32 addr) const
{
    auto it = pages_.find(addr >> kPageShift);
    if (it == pages_.end())
        return false;
    return static_cast<bool>(it->second->bytes[addr & (kPageSize - 1)]);
}

void
SymbolicMemory::for_each_touched(
    const std::function<void(u32, const ir::ExprRef &)> &fn) const
{
    for (const auto &[pfn, page] : pages_) {
        for (u32 off = 0; off < kPageSize; ++off) {
            if (page->bytes[off])
                fn((pfn << kPageShift) | off, page->bytes[off]);
        }
    }
}

std::size_t
SymbolicMemory::touched_count() const
{
    std::size_t n = 0;
    for_each_touched([&](u32, const ir::ExprRef &) { ++n; });
    return n;
}

} // namespace pokeemu::symexec
