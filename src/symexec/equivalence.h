/**
 * @file
 * Path-summary equivalence checking — the paper's §7 extension
 * ("Equivalence Checking"): beyond testing, compare two
 * implementations *for all inputs* with the decision procedure.
 *
 * Both programs are explored over the same input variables; each
 * program's outputs are folded into per-path (condition, value) pairs.
 * The two are equivalent iff for every cross pair of paths (p from A,
 * q from B) the formula  C_p ∧ C_q ∧ (O_p ≠ O_q)  is unsatisfiable.
 * When it is satisfiable, the model is a concrete counterexample input
 * — which can be turned into a test program, closing the loop back to
 * the main methodology. As the paper notes, this "provides a very
 * strong statement about the absence of differences" where it scales.
 */
#ifndef POKEEMU_SYMEXEC_EQUIVALENCE_H
#define POKEEMU_SYMEXEC_EQUIVALENCE_H

#include "symexec/summarize.h"

namespace pokeemu::symexec {

/** Outcome of an equivalence check. */
struct EquivalenceResult
{
    bool equivalent = false;
    /** Both explorations were exhaustive (else the verdict is only
     *  "no difference found within the explored paths"). */
    bool complete = false;
    /** On inequivalence: a witness assignment to the shared inputs. */
    solver::Assignment counterexample;
    /** Which output index differed (on inequivalence). */
    std::size_t differing_output = 0;
    u64 cross_checks = 0;
    u64 solver_queries = 0;
};

/**
 * Check whether @p program_a and @p program_b compute the same outputs
 * for all assignments to the shared symbolic inputs.
 *
 * @param pool shared variable pool: both programs must read their
 *        inputs through the same initial-contents policy.
 * @param outputs locations read back from each path's final memory;
 *        the halt code is always compared as an implicit output.
 */
EquivalenceResult
check_equivalence(const ir::Program &program_a,
                  const ir::Program &program_b, VarPool &pool,
                  const InitialByteFn &initial,
                  const std::vector<SummaryOutput> &outputs,
                  ExplorerConfig config = {});

} // namespace pokeemu::symexec

#endif // POKEEMU_SYMEXEC_EQUIVALENCE_H
