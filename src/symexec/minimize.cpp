#include "symexec/minimize.h"

namespace pokeemu::symexec {

MinimizeStats
minimize_against_baseline(solver::Assignment &assignment,
                          const solver::Assignment &baseline,
                          const std::vector<ir::ExprRef> &path_condition,
                          const VarPool &pool)
{
    MinimizeStats stats;

    // Restrict repeated evaluation to the conjuncts that actually
    // mention the variable being edited: conjunct -> var-id set.
    std::vector<std::vector<u32>> conjunct_vars(path_condition.size());
    std::vector<std::vector<std::size_t>> var_conjuncts(pool.size());
    for (std::size_t c = 0; c < path_condition.size(); ++c) {
        std::vector<ir::ExprRef> vars;
        ir::Expr::collect_vars(path_condition[c], vars);
        for (const auto &v : vars) {
            if (v->var_id() < pool.size())
                var_conjuncts[v->var_id()].push_back(c);
        }
    }

    auto conjuncts_hold = [&](u32 var_id) {
        for (std::size_t c : var_conjuncts[var_id]) {
            if (assignment.eval(path_condition[c]) == 0)
                return false;
        }
        return true;
    };

    for (const ir::ExprRef &var : pool.all()) {
        const u32 id = var->var_id();
        const unsigned width = var->width();
        const u64 base = truncate(baseline.get(id), width);
        u64 cur = truncate(assignment.get(id), width);
        if (cur == base)
            continue;
        stats.bits_different_before += popcount_bits(cur ^ base, width);
        for (unsigned bit = 0; bit < width; ++bit) {
            if (get_bit(cur, bit) == get_bit(base, bit))
                continue;
            ++stats.bits_tried;
            const u64 candidate =
                set_bit(cur, bit, get_bit(base, bit) != 0);
            assignment.set(id, candidate);
            if (conjuncts_hold(id)) {
                cur = candidate;
            } else {
                assignment.set(id, cur);
            }
        }
        stats.bits_different_after += popcount_bits(cur ^ base, width);
    }
    return stats;
}

} // namespace pokeemu::symexec
